#!/usr/bin/env bash
# Build the tree with CMAKE_BUILD_TYPE=Sanitize (ASan + UBSan, fatal
# on first finding) and run the tier-1 unit/integration suite under
# it. A clean exit means the suite is free of memory errors and UB on
# the paths the tests exercise; any sanitizer report fails the run.
#
# With --tsan the build uses CMAKE_BUILD_TYPE=SanitizeThread instead
# and runs the `parity` suite (the serial/sharded PDES byte-parity
# matrix) with IFP_SHARDS_NO_CLAMP=1, so the in-run executor threads
# are real even on single-core hosts: the cross-domain mailboxes, the
# superstep barrier and the stat-shadow folds are exercised under
# ThreadSanitizer with genuine concurrency. ASan and TSan cannot be
# combined, hence the separate flavor (and its own build tree).
#
# The sanitized trees live in their own build directories so they
# never disturb the primary build. Not part of the default ctest run
# (the sanitized simulator is ~5-20x slower); invoke this script
# directly or from CI.
#
# Usage: run_sanitized_tests.sh [--tsan] [BUILD_DIR] [JOBS] [-- CTEST_ARGS...]
#   --tsan     ThreadSanitizer flavor (default: ASan + UBSan)
#   BUILD_DIR  sanitized build tree (default: build-sanitize, or
#              build-tsan with --tsan)
#   JOBS       parallel build/test jobs (default: nproc)
#   CTEST_ARGS extra arguments forwarded to ctest, e.g.
#              `-- -L robustness` to sanitize only the fault suite

set -eu

SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

FLAVOR=asan
if [ "${1:-}" = "--tsan" ]; then
    FLAVOR=tsan
    shift
fi

if [ "$FLAVOR" = tsan ]; then
    DEFAULT_DIR=build-tsan
    BUILD_TYPE=SanitizeThread
else
    DEFAULT_DIR=build-sanitize
    BUILD_TYPE=Sanitize
fi

BUILD_DIR="${1:-$DEFAULT_DIR}"
JOBS="${2:-$(nproc 2>/dev/null || echo 4)}"

shift $(( $# > 2 ? 2 : $# ))
[ "${1:-}" = "--" ] && shift

cmake -S "$SRC_DIR" -B "$BUILD_DIR" \
      -DCMAKE_BUILD_TYPE="$BUILD_TYPE" > /dev/null
cmake --build "$BUILD_DIR" -j "$JOBS"

if [ "$FLAVOR" = tsan ]; then
    # second_deadlock_stack: both stacks on lock-order reports.
    export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
    # Real executor threads even where the hardware budget would
    # clamp them to one: a TSan run that never runs concurrently
    # proves nothing.
    export IFP_SHARDS_NO_CLAMP=1
    ctest --test-dir "$BUILD_DIR/tests" --output-on-failure \
          -j "$JOBS" -L parity "$@"
    exit $?
fi

# abort_on_error: make ASan failures hard exits even under ctest's
# output capture; detect_leaks stays on to catch event-queue and
# harness allocations that outlive a run.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="print_stacktrace=1"

ctest --test-dir "$BUILD_DIR/tests" --output-on-failure -j "$JOBS" "$@"
