#!/usr/bin/env bash
# Build the tree with CMAKE_BUILD_TYPE=Sanitize (ASan + UBSan, fatal
# on first finding) and run the tier-1 unit/integration suite under
# it. A clean exit means the suite is free of memory errors and UB on
# the paths the tests exercise; any sanitizer report fails the run.
#
# The sanitized tree lives in its own build directory so it never
# disturbs the primary build. Not part of the default ctest run (the
# sanitized simulator is ~5-10x slower); invoke this script directly
# or from CI.
#
# Usage: run_sanitized_tests.sh [BUILD_DIR] [JOBS] [-- CTEST_ARGS...]
#   BUILD_DIR  sanitized build tree (default: build-sanitize)
#   JOBS       parallel build/test jobs (default: nproc)
#   CTEST_ARGS extra arguments forwarded to ctest, e.g.
#              `-- -L robustness` to sanitize only the fault suite

set -eu

SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-build-sanitize}"
JOBS="${2:-$(nproc 2>/dev/null || echo 4)}"

shift $(( $# > 2 ? 2 : $# ))
[ "${1:-}" = "--" ] && shift

cmake -S "$SRC_DIR" -B "$BUILD_DIR" \
      -DCMAKE_BUILD_TYPE=Sanitize > /dev/null
cmake --build "$BUILD_DIR" -j "$JOBS"

# abort_on_error: make ASan failures hard exits even under ctest's
# output capture; detect_leaks stays on to catch event-queue and
# harness allocations that outlive a run.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="print_stacktrace=1"

ctest --test-dir "$BUILD_DIR/tests" --output-on-failure -j "$JOBS" "$@"
