/**
 * @file
 * dbg — minimal debugging front end: run one benchmark under AWG with
 * an optional trace flag enabled, and dump the SyncMon / dispatcher /
 * CP statistics. For anything more, use ifpsim.
 *
 * Usage: dbg [workload] [trace-flag]
 *   e.g. dbg TB_LG AWGPred
 */

#include <iostream>

#include "harness/runner.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace ifp;
    if (argc > 2)
        sim::setDebugFlag(argv[2]);

    harness::Experiment exp;
    exp.workload = argc > 1 ? argv[1] : "SPM_G";
    exp.policy = core::Policy::Awg;
    exp.params = harness::defaultEvalParams();

    core::RunResult r = harness::runExperimentWithSystem(
        exp, [](core::GpuSystem &system) {
            if (system.syncMon())
                system.syncMon()->stats().dump(std::cout);
            system.dispatcher().stats().dump(std::cout);
            system.commandProcessor().stats().dump(std::cout);
        });
    std::printf("cycles=%llu\n",
                static_cast<unsigned long long>(r.gpuCycles));
    return 0;
}
