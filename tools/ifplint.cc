/**
 * @file
 * ifplint — static kernel verifier and synchronization-race analyzer.
 *
 * Lints the kernels the benchmark registry generates, in every codegen
 * style, without simulating them: structural well-formedness, barrier
 * divergence, the window-of-vulnerability race, lost wakeups and the
 * static inter-WG progress check (paper Figure 1).
 *
 * Examples:
 *   ifplint --all --Werror          # gate: registry must lint clean
 *   ifplint --workload TB_LG --wgs 128
 *   ifplint --all --json            # deterministic machine output
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/interference.hh"
#include "analysis/lint.hh"
#include "core/gpu_system.hh"
#include "core/policy.hh"
#include "sim/logging.hh"
#include "workloads/registry.hh"

namespace {

struct Options
{
    std::string workload;
    bool all = false;
    bool json = false;
    bool werror = false;
    bool list = false;
    bool interference = false;
    ifp::workloads::WorkloadParams params;
};

const char *
styleName(ifp::core::SyncStyle style)
{
    using ifp::core::SyncStyle;
    switch (style) {
      case SyncStyle::Busy:
        return "Busy";
      case SyncStyle::SleepBackoff:
        return "SleepBackoff";
      case SyncStyle::WaitInstr:
        return "WaitInstr";
      case SyncStyle::WaitAtomic:
        return "WaitAtomic";
    }
    return "?";
}

void
usage()
{
    std::cout <<
        "ifplint — static kernel verifier for the IFP ISA\n"
        "\n"
        "  --workload NAME    lint one benchmark (SPM_G, ...)\n"
        "  --all              lint the full registry\n"
        "  --list             list benchmarks and exit\n"
        "  --wgs N            grid size in work-groups\n"
        "  --group L          WGs per locality group\n"
        "  --wi N             work-items per WG\n"
        "  --iters I          iterations per WG\n"
        "  --interference     inter-WG interference summaries (per-WG\n"
        "                     footprints, wait-for graph, circular\n"
        "                     waits) instead of the lint passes\n"
        "  --json             deterministic JSON report on stdout\n"
        "  --Werror           unsuppressed warnings fail the run\n"
        "                     (with --interference: static circular\n"
        "                     waits fail the run)\n"
        "\n"
        "Each benchmark is linted in all four codegen styles (Busy,\n"
        "SleepBackoff, WaitInstr, WaitAtomic). Exit status is 0 when\n"
        "every kernel is clean, 1 otherwise.\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace ifp;
    Options opt;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            ifp_fatal("missing value after %s", argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            usage();
            return 0;
        } else if (!std::strcmp(a, "--workload")) {
            opt.workload = need(i);
        } else if (!std::strcmp(a, "--all")) {
            opt.all = true;
        } else if (!std::strcmp(a, "--list")) {
            opt.list = true;
        } else if (!std::strcmp(a, "--json")) {
            opt.json = true;
        } else if (!std::strcmp(a, "--interference")) {
            opt.interference = true;
        } else if (!std::strcmp(a, "--Werror")) {
            opt.werror = true;
        } else if (!std::strcmp(a, "--wgs")) {
            opt.params.numWgs = std::atoi(need(i));
        } else if (!std::strcmp(a, "--group")) {
            opt.params.wgsPerGroup = std::atoi(need(i));
        } else if (!std::strcmp(a, "--wi")) {
            opt.params.wiPerWg = std::atoi(need(i));
        } else if (!std::strcmp(a, "--iters")) {
            opt.params.iters = std::atoi(need(i));
        } else {
            usage();
            ifp_fatal("unknown option '%s'", a);
        }
    }

    if (opt.list) {
        for (const auto &w : workloads::makeFullSuite())
            std::cout << w->abbrev() << "\n";
        return 0;
    }
    if (!opt.all && opt.workload.empty()) {
        usage();
        ifp_fatal("pick --workload NAME or --all");
    }

    std::vector<workloads::WorkloadPtr> suite;
    if (opt.all) {
        suite = workloads::makeFullSuite();
    } else {
        suite.push_back(workloads::makeWorkload(opt.workload));
    }

    constexpr core::SyncStyle styles[] = {
        core::SyncStyle::Busy, core::SyncStyle::SleepBackoff,
        core::SyncStyle::WaitInstr, core::SyncStyle::WaitAtomic};

    const gpu::GpuConfig machine;
    std::vector<analysis::Report> reports;
    std::vector<analysis::InterferenceSummary> summaries;
    for (const auto &w : suite) {
        for (core::SyncStyle style : styles) {
            // A scratch system per kernel: workloads allocate and
            // initialize their buffers while emitting code, and the
            // buffer addresses feed the abstract interpretation.
            core::RunConfig cfg;
            cfg.gpu = machine;
            core::GpuSystem scratch(cfg);
            workloads::WorkloadParams params = opt.params;
            params.style = style;
            isa::Kernel kernel = w->build(scratch, params);
            kernel.name += std::string("/") + styleName(style);

            analysis::LaunchContext launch = analysis::makeLaunchContext(
                kernel, machine.numCus, machine.simdsPerCu,
                machine.wavefrontsPerSimd, machine.ldsBytesPerCu);
            if (opt.interference) {
                summaries.push_back(
                    analysis::summarizeInterference(kernel, launch));
            } else {
                reports.push_back(analysis::runLint(kernel, launch));
            }
        }
    }

    if (opt.interference) {
        bool ok = true;
        unsigned circular = 0;
        for (const analysis::InterferenceSummary &s : summaries)
            circular += static_cast<unsigned>(s.circular.size());
        if (opt.werror && circular > 0)
            ok = false;
        if (opt.json) {
            analysis::writeInterferenceSummariesJson(summaries,
                                                     std::cout);
        } else {
            for (const analysis::InterferenceSummary &s : summaries)
                analysis::printInterferenceSummary(s, std::cout);
            std::cout << (ok ? "interference clean"
                             : "interference FAILED")
                      << " (" << summaries.size() << " kernels, "
                      << circular << " circular wait sites"
                      << (opt.werror ? ", -Werror" : "") << ")\n";
        }
        return ok ? 0 : 1;
    }

    bool ok = true;
    for (const analysis::Report &r : reports)
        ok = ok && r.clean(opt.werror);

    if (opt.json) {
        analysis::writeReportsJson(reports, std::cout);
    } else {
        for (const analysis::Report &r : reports)
            analysis::printReport(r, std::cout);
        std::cout << (ok ? "lint clean" : "lint FAILED") << " ("
                  << reports.size() << " kernels"
                  << (opt.werror ? ", -Werror" : "") << ")\n";
    }
    return ok ? 0 : 1;
}
