/**
 * @file
 * ifpsim — command-line front end to the simulator.
 *
 * Examples:
 *   ifpsim --list
 *   ifpsim --workload FAM_G --policy AWG
 *   ifpsim --workload TB_LG --policy MonNR-One --oversubscribed
 *   ifpsim --workload SPM_G --policy AWG --wgs 128 --group 16 \
 *          --stats --json result.json
 *   ifpsim --workload SLM_G --policy MonR-All --debug AWGPred
 *   ifpsim --workload FAM_G --policy AWG --fault-plan kitchen-sink
 *   ifpsim --workload SPM_G --policy MonNR-All --chaos-seed 7
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/fault_plan.hh"
#include "harness/results_io.hh"
#include "harness/runner.hh"
#include "isa/instruction.hh"
#include "sim/logging.hh"
#include "workloads/registry.hh"

namespace {

struct Options
{
    std::string workload = "SPM_G";
    std::string policy = "AWG";
    bool oversubscribed = false;
    bool list = false;
    bool stats = false;
    bool disasm = false;
    std::string jsonPath;
    std::string traceOutPath;
    std::string statsJsonPath;
    std::string faultPlanArg;
    std::uint64_t chaosSeed = 0;
    bool haveChaosSeed = false;
    ifp::workloads::WorkloadParams params =
        ifp::harness::defaultEvalParams();
    ifp::core::RunConfig runCfg;
};

ifp::core::Policy
parsePolicy(const std::string &name)
{
    using ifp::core::Policy;
    for (Policy p :
         {Policy::Baseline, Policy::Sleep, Policy::Timeout,
          Policy::MonRSAll, Policy::MonRAll, Policy::MonNRAll,
          Policy::MonNROne, Policy::Awg, Policy::MinResume}) {
        if (name == ifp::core::policyName(p))
            return p;
    }
    ifp_fatal("unknown policy '%s' (try Baseline, Sleep, Timeout, "
              "MonRS-All, MonR-All, MonNR-All, MonNR-One, MinResume, "
              "AWG)", name.c_str());
}

void
usage()
{
    std::cout <<
        "ifpsim — AWG / Independent Forward Progress simulator\n"
        "\n"
        "  --list                 list benchmarks and exit\n"
        "  --workload NAME        benchmark abbreviation (SPM_G, ...)\n"
        "  --policy NAME          waiting policy (AWG, Baseline, ...)\n"
        "  --oversubscribed       lose one CU mid-run (Sec. VI)\n"
        "  --wgs N / --group L    grid size / WGs per locality group\n"
        "  --wi N / --iters I     WIs per WG / iterations per WG\n"
        "  --timeout-interval C   Timeout policy interval (cycles)\n"
        "  --sleep-max C          Sleep policy max backoff (cycles)\n"
        "  --cu-loss-us U         when the CU is lost (microseconds)\n"
        "  --cu-restore-us U      when the CU comes back (0=never)\n"
        "  --fault-plan P         fault-injection plan: a preset name\n"
        "                         (";

    {
        bool first = true;
        for (const std::string &n :
             ifp::core::faultPlanPresetNames()) {
            std::cout << (first ? "" : ", ") << n;
            first = false;
        }
    }

    std::cout <<
        ")\n"
        "                         or a plan file (see "
        "core/fault_plan.hh)\n"
        "  --chaos-seed N         generate a random survivable fault\n"
        "                         plan from seed N (the chaos-campaign\n"
        "                         generator, so campaign rows can be\n"
        "                         replayed: seed K = plan chaos-K)\n"
        "  --syncmon-sets N       SyncMon condition cache sets\n"
        "  --syncmon-ways N       SyncMon condition cache ways\n"
        "  --waitlist N           SyncMon waiting-WG list capacity\n"
        "  --log-capacity N       Monitor Log entries\n"
        "  --spill-policy P       new | evict-youngest\n"
        "  --no-stall-prediction  disable AWG's stall predictor\n"
        "  --stats                dump per-component statistics\n"
        "  --disasm               print the generated kernel\n"
        "  --json FILE            write the result as JSON\n"
        "  --trace-out FILE       write a Chrome-trace JSON timeline\n"
        "                         (open in Perfetto / chrome://tracing)\n"
        "  --stats-json FILE      write all statistics as JSON\n"
        "  --shards N             parallel-in-run PDES core: N >= 2\n"
        "                         shards the memory system into event\n"
        "                         domains (results byte-identical to\n"
        "                         any other N >= 2; 1 = serial core;\n"
        "                         default: IFP_RUN_SHARDS or 1)\n"
        "  --debug FLAG           enable a trace flag (repeatable)\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace ifp;
    Options opt;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            ifp_fatal("missing value after %s", argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            usage();
            return 0;
        } else if (!std::strcmp(a, "--list")) {
            opt.list = true;
        } else if (!std::strcmp(a, "--workload")) {
            opt.workload = need(i);
        } else if (!std::strcmp(a, "--policy")) {
            opt.policy = need(i);
        } else if (!std::strcmp(a, "--oversubscribed")) {
            opt.oversubscribed = true;
        } else if (!std::strcmp(a, "--wgs")) {
            opt.params.numWgs = std::atoi(need(i));
        } else if (!std::strcmp(a, "--group")) {
            opt.params.wgsPerGroup = std::atoi(need(i));
        } else if (!std::strcmp(a, "--wi")) {
            opt.params.wiPerWg = std::atoi(need(i));
        } else if (!std::strcmp(a, "--iters")) {
            opt.params.iters = std::atoi(need(i));
        } else if (!std::strcmp(a, "--timeout-interval")) {
            opt.runCfg.policy.timeoutIntervalCycles =
                std::atoll(need(i));
        } else if (!std::strcmp(a, "--sleep-max")) {
            opt.runCfg.policy.sleepMaxBackoffCycles =
                std::atoll(need(i));
        } else if (!std::strcmp(a, "--cu-loss-us")) {
            opt.runCfg.cuLossMicroseconds = std::atoll(need(i));
        } else if (!std::strcmp(a, "--cu-restore-us")) {
            opt.runCfg.cuRestoreMicroseconds = std::atoll(need(i));
        } else if (!std::strcmp(a, "--fault-plan")) {
            opt.faultPlanArg = need(i);
        } else if (!std::strcmp(a, "--chaos-seed")) {
            opt.chaosSeed = std::strtoull(need(i), nullptr, 10);
            opt.haveChaosSeed = true;
        } else if (!std::strcmp(a, "--syncmon-sets")) {
            opt.runCfg.policy.syncmon.sets = std::atoi(need(i));
        } else if (!std::strcmp(a, "--syncmon-ways")) {
            opt.runCfg.policy.syncmon.ways = std::atoi(need(i));
        } else if (!std::strcmp(a, "--waitlist")) {
            opt.runCfg.policy.syncmon.waitingListCapacity =
                std::atoi(need(i));
        } else if (!std::strcmp(a, "--log-capacity")) {
            opt.runCfg.cp.monitorLogCapacity = std::atoi(need(i));
        } else if (!std::strcmp(a, "--spill-policy")) {
            std::string p = need(i);
            opt.runCfg.policy.syncmon.spillPolicy =
                p == "evict-youngest"
                    ? syncmon::SpillPolicy::EvictYoungest
                    : syncmon::SpillPolicy::SpillNew;
        } else if (!std::strcmp(a, "--no-stall-prediction")) {
            opt.runCfg.policy.syncmon.stallPredictionEnabled = false;
        } else if (!std::strcmp(a, "--stats")) {
            opt.stats = true;
        } else if (!std::strcmp(a, "--disasm")) {
            opt.disasm = true;
        } else if (!std::strcmp(a, "--json")) {
            opt.jsonPath = need(i);
        } else if (!std::strcmp(a, "--trace-out")) {
            opt.traceOutPath = need(i);
        } else if (!std::strcmp(a, "--stats-json")) {
            opt.statsJsonPath = need(i);
        } else if (!std::strcmp(a, "--shards")) {
            opt.runCfg.shards =
                static_cast<unsigned>(std::atoi(need(i)));
        } else if (!std::strcmp(a, "--debug")) {
            sim::setDebugFlag(need(i));
        } else {
            usage();
            ifp_fatal("unknown option '%s'", a);
        }
    }

    if (opt.list) {
        std::cout << "Benchmarks (Table 2):\n";
        for (const auto &w : workloads::makeFullSuite()) {
            std::printf("  %-10s %-24s %s\n", w->abbrev().c_str(),
                        w->name().c_str(),
                        w->characteristics().description.c_str());
        }
        return 0;
    }

    if (!opt.faultPlanArg.empty() && opt.haveChaosSeed)
        ifp_fatal("--fault-plan and --chaos-seed are exclusive");
    if (opt.haveChaosSeed) {
        core::ChaosSpec spec;
        spec.numCus = opt.runCfg.gpu.numCus;
        opt.runCfg.faultPlan =
            core::generateChaosPlan(spec, opt.chaosSeed);
    } else if (!opt.faultPlanArg.empty()) {
        auto presets = core::faultPlanPresetNames();
        if (std::find(presets.begin(), presets.end(),
                      opt.faultPlanArg) != presets.end()) {
            opt.runCfg.faultPlan =
                core::faultPlanPreset(opt.faultPlanArg);
        } else {
            std::ifstream in(opt.faultPlanArg);
            if (!in) {
                std::string known;
                for (const std::string &n : presets) {
                    if (!known.empty())
                        known += ", ";
                    known += n;
                }
                ifp_fatal("cannot open fault plan '%s': not a "
                          "readable file, and not a preset "
                          "(presets: %s)",
                          opt.faultPlanArg.c_str(), known.c_str());
            }
            std::ostringstream text;
            text << in.rdbuf();
            std::string error;
            auto plan = core::parseFaultPlan(text.str(), error);
            if (!plan)
                ifp_fatal("%s: %s", opt.faultPlanArg.c_str(),
                          error.c_str());
            opt.runCfg.faultPlan = *plan;
        }
    }

    harness::Experiment exp;
    exp.workload = opt.workload;
    exp.policy = parsePolicy(opt.policy);
    exp.oversubscribed = opt.oversubscribed;
    exp.params = opt.params;
    exp.runCfg = opt.runCfg;
    exp.observe.traceOutPath = opt.traceOutPath;
    exp.observe.statsJsonPath = opt.statsJsonPath;

    if (opt.disasm) {
        core::GpuSystem scratch(exp.runCfg);
        workloads::WorkloadPtr w = workloads::makeWorkload(
            exp.workload);
        workloads::WorkloadParams params = exp.params;
        params.style = core::styleFor(exp.policy);
        isa::Kernel kernel = w->build(scratch, params);
        std::cout << "; kernel " << kernel.name << " ("
                  << kernel.code.size() << " instructions, "
                  << kernel.numWgs << " WGs x " << kernel.wiPerWg
                  << " WIs)\n";
        for (std::size_t pc = 0; pc < kernel.code.size(); ++pc) {
            std::printf("%4zu:  %s\n", pc,
                        isa::disassemble(kernel.code[pc]).c_str());
        }
    }

    core::RunResult result;
    if (opt.stats) {
        result = harness::runExperimentWithSystem(
            exp, [](core::GpuSystem &system) {
                system.dumpStats(std::cout);
            });
    } else {
        result = harness::runExperiment(exp);
    }

    std::printf(
        "%s/%s%s: %s cycles, verdict=%s, %llu atomics, "
        "%llu instructions, "
        "%llu saves / %llu restores, validated=%s\n",
        exp.workload.c_str(), core::policyName(exp.policy),
        exp.oversubscribed ? " (oversubscribed)" : "",
        result.statusString().c_str(),
        core::verdictName(result.verdict),
        static_cast<unsigned long long>(result.atomicInstructions),
        static_cast<unsigned long long>(result.instructions),
        static_cast<unsigned long long>(result.contextSaves),
        static_cast<unsigned long long>(result.contextRestores),
        result.validated ? "yes"
                         : (result.completed ? "NO" : "n/a"));

    if (!opt.jsonPath.empty()) {
        std::ofstream out(opt.jsonPath);
        if (!out)
            ifp_fatal("cannot open '%s'", opt.jsonPath.c_str());
        harness::writeResultJson(out, exp, result);
        out << "\n";
        std::cout << "wrote " << opt.jsonPath << "\n";
    }
    return 0;
}
