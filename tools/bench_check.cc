/**
 * @file
 * Perf-baseline gate: compare a freshly generated bench report
 * against a committed baseline and fail on regression.
 *
 * Understands two formats:
 *  - "ifp-bench-v1" documents written by the sweep benches when
 *    IFP_BENCH_JSON_OUT is set (harness/bench_report.hh): the gated
 *    metrics are the per-sweep and total events-per-second and
 *    requests-per-second host rates.
 *  - google-benchmark's native JSON (--benchmark_out_format=json):
 *    the gated metric is items_per_second per benchmark.
 *
 * A metric passes when current >= (1 - tolerance) * baseline. The
 * tolerance is deliberately generous (default 0.40): these are host
 * rates on shared hardware, and the gate is meant to catch the
 * 2x-slower structural regression, not 5% scheduling noise. Override
 * with IFP_BENCH_CHECK_TOLERANCE or the third argument. Metrics that
 * vanished from the current run fail; new metrics are reported and
 * ignored.
 *
 * Usage: bench_check <baseline.json> <current.json> [tolerance]
 * Exit:  0 all gated metrics hold, 1 regression or missing metric,
 *        2 usage / IO / parse error.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "harness/results_io.hh"

namespace {

using ifp::harness::json::Value;

/** One gated metric: higher is better. */
struct Metric
{
    std::string name;
    double value = 0.0;
};

std::optional<Value>
loadJson(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_check: cannot read '%s'\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::optional<Value> doc =
        ifp::harness::json::tryParse(text.str());
    if (!doc) {
        std::fprintf(stderr, "bench_check: '%s' is not valid JSON\n",
                     path.c_str());
    }
    return doc;
}

double
numberOf(const Value &obj, const std::string &key)
{
    const Value *v = obj.find(key);
    return (v != nullptr && v->isNumber()) ? v->number : 0.0;
}

/** Rates gated from an ifp-bench-v1 document. */
void
collectIfpMetrics(const Value &doc, std::vector<Metric> &out)
{
    if (const Value *sweeps = doc.find("sweeps");
        sweeps != nullptr && sweeps->isArray()) {
        for (const Value &sweep : sweeps->array) {
            const Value *label = sweep.find("label");
            std::string name = label != nullptr && label->isString()
                                   ? label->string
                                   : "sweep";
            out.push_back({"sweep:" + name + ":events/s",
                           numberOf(sweep, "eventsPerSecond")});
            out.push_back({"sweep:" + name + ":requests/s",
                           numberOf(sweep, "requestsPerSecond")});
        }
    }
    if (const Value *totals = doc.find("totals");
        totals != nullptr && totals->isObject()) {
        out.push_back({"totals:events/s",
                       numberOf(*totals, "eventsPerSecond")});
        out.push_back({"totals:requests/s",
                       numberOf(*totals, "requestsPerSecond")});
    }
}

/** items_per_second entries from a google-benchmark document. */
void
collectGoogleMetrics(const Value &doc, std::vector<Metric> &out)
{
    const Value *benches = doc.find("benchmarks");
    if (benches == nullptr || !benches->isArray())
        return;
    for (const Value &bench : benches->array) {
        const Value *name = bench.find("name");
        const Value *items = bench.find("items_per_second");
        if (name == nullptr || !name->isString() || items == nullptr ||
            !items->isNumber())
            continue;
        out.push_back({name->string, items->number});
    }
}

std::vector<Metric>
collectMetrics(const Value &doc)
{
    std::vector<Metric> out;
    const Value *schema = doc.find("schema");
    if (schema != nullptr && schema->isString() &&
        schema->string == "ifp-bench-v1") {
        collectIfpMetrics(doc, out);
    } else {
        collectGoogleMetrics(doc, out);
    }
    return out;
}

const Metric *
findMetric(const std::vector<Metric> &metrics, const std::string &name)
{
    for (const Metric &m : metrics)
        if (m.name == name)
            return &m;
    return nullptr;
}

std::string
human(double rate)
{
    char buf[64];
    if (rate >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM/s", rate / 1e6);
    else if (rate >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.2fk/s", rate / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.2f/s", rate);
    return buf;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 3 || argc > 4) {
        std::fprintf(stderr,
                     "usage: bench_check <baseline.json> <current.json>"
                     " [tolerance]\n");
        return 2;
    }

    double tolerance = 0.40;
    if (const char *env = std::getenv("IFP_BENCH_CHECK_TOLERANCE"))
        tolerance = std::atof(env);
    if (argc == 4)
        tolerance = std::atof(argv[3]);
    if (tolerance < 0.0 || tolerance >= 1.0) {
        std::fprintf(stderr,
                     "bench_check: tolerance %.2f out of [0, 1)\n",
                     tolerance);
        return 2;
    }

    std::optional<Value> baseline_doc = loadJson(argv[1]);
    std::optional<Value> current_doc = loadJson(argv[2]);
    if (!baseline_doc || !current_doc)
        return 2;

    std::vector<Metric> baseline = collectMetrics(*baseline_doc);
    std::vector<Metric> current = collectMetrics(*current_doc);
    if (baseline.empty()) {
        std::fprintf(stderr,
                     "bench_check: no gated metrics in baseline '%s'\n",
                     argv[1]);
        return 2;
    }

    int failures = 0;
    for (const Metric &base : baseline) {
        if (base.value <= 0.0)
            continue;  // nothing to defend (empty or rate-less sweep)
        const Metric *cur = findMetric(current, base.name);
        if (cur == nullptr) {
            std::printf("FAIL  %-48s missing from current run\n",
                        base.name.c_str());
            ++failures;
            continue;
        }
        const double floor = (1.0 - tolerance) * base.value;
        const double delta =
            (cur->value - base.value) / base.value * 100.0;
        if (cur->value < floor) {
            std::printf("FAIL  %-48s %s vs baseline %s (%+.1f%%, "
                        "floor %s)\n",
                        base.name.c_str(), human(cur->value).c_str(),
                        human(base.value).c_str(), delta,
                        human(floor).c_str());
            ++failures;
        } else {
            std::printf("ok    %-48s %s vs baseline %s (%+.1f%%)\n",
                        base.name.c_str(), human(cur->value).c_str(),
                        human(base.value).c_str(), delta);
        }
    }
    for (const Metric &cur : current) {
        if (findMetric(baseline, cur.name) == nullptr)
            std::printf("note  %-48s new metric (%s), not gated\n",
                        cur.name.c_str(), human(cur.value).c_str());
    }

    if (failures > 0) {
        std::printf("bench_check: %d metric(s) regressed beyond "
                    "%.0f%% tolerance\n",
                    failures, tolerance * 100.0);
        return 1;
    }
    std::printf("bench_check: %zu metric(s) within %.0f%% tolerance\n",
                baseline.size(), tolerance * 100.0);
    return 0;
}
