/**
 * @file
 * ifpexplore — schedule-space exploration over the litmus suite.
 *
 * Drives every litmus (workloads/litmus.hh) through many legal
 * schedules per waiting policy (src/explore) and cross-validates the
 * observed verdicts against the annotated progress model, plus the
 * static ifplint expectations. Output is deterministic: the same
 * command line produces byte-identical bytes.
 *
 * Examples:
 *   ifpexplore --list
 *   ifpexplore --litmus all --schedules 50 --json
 *   ifpexplore --litmus mutual-pair --policy Timeout --schedules 100
 *   ifpexplore --litmus circular-wait --exhaustive
 *
 * Exit status: 0 when every exercised cell agrees with its
 * annotation (and no Complete run failed validation), 1 otherwise.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "explore/explore.hh"
#include "sim/logging.hh"
#include "workloads/litmus.hh"

namespace {

using ifp::core::Policy;
using ifp::core::SyncStyle;
using ifp::core::Verdict;

struct Options
{
    std::string litmus = "all";
    std::string policy = "all";
    unsigned schedules = 20;
    std::uint64_t seed = 1;
    bool exhaustive = false;
    bool por = false;
    unsigned maxSchedules = 200;
    unsigned maxDepth = 12;
    std::uint64_t maxCycles = 30'000'000;
    bool json = false;
    bool list = false;
    bool noLint = false;
};

Policy
parsePolicy(const std::string &name)
{
    for (Policy p : {Policy::Baseline, Policy::Sleep, Policy::Timeout,
                     Policy::MonRSAll, Policy::MonRAll,
                     Policy::MonNRAll, Policy::MonNROne, Policy::Awg,
                     Policy::MinResume}) {
        if (name == ifp::core::policyName(p))
            return p;
    }
    ifp_fatal("unknown policy '%s' (try Baseline, Sleep, Timeout, "
              "MonRS-All, MonR-All, MonNR-All, MonNR-One, MinResume, "
              "AWG)", name.c_str());
}

const char *
styleName(SyncStyle style)
{
    switch (style) {
      case SyncStyle::Busy: return "Busy";
      case SyncStyle::SleepBackoff: return "SleepBackoff";
      case SyncStyle::WaitInstr: return "WaitInstr";
      case SyncStyle::WaitAtomic: return "WaitAtomic";
    }
    return "?";
}

void
usage()
{
    std::cout <<
        "ifpexplore — litmus schedule-space exploration\n"
        "\n"
        "  --list                 list litmuses and exit\n"
        "  --litmus NAME|all      litmus to explore (default: all)\n"
        "  --policy NAME|all      policy filter (default: all\n"
        "                         annotated policies)\n"
        "  --schedules N          random schedules per cell, on top\n"
        "                         of the stock one (default: 20)\n"
        "  --seed S               random-walk seed (default: 1);\n"
        "                         schedule i of a cell is derived\n"
        "                         from (litmus, policy, S, i)\n"
        "  --exhaustive           bounded exhaustive DFS per cell\n"
        "                         instead of the random walk\n"
        "  --por                  partial-order reduction: skip\n"
        "                         alternatives the static\n"
        "                         interference analysis proves\n"
        "                         commute (exhaustive mode only)\n"
        "  --max-schedules N      exhaustive schedule cap (200)\n"
        "  --max-depth N          exhaustive branch depth cap (12)\n"
        "  --max-cycles N         per-schedule cycle budget\n"
        "                         (default 30000000; unclassifiable\n"
        "                         runs report EXHAUSTED)\n"
        "  --no-lint              skip the static ifplint cross-check\n"
        "  --json                 machine-readable (deterministic)\n";
}

void
printVerdictCounts(std::ostream &os,
                   const ifp::explore::VerdictCounts &counts,
                   bool json)
{
    bool first = true;
    for (std::size_t v = 0; v < counts.size(); ++v) {
        if (counts[v] == 0)
            continue;
        const char *name =
            ifp::core::verdictName(static_cast<Verdict>(v));
        if (json) {
            os << (first ? "" : ", ") << "\"" << name
               << "\": " << counts[v];
        } else {
            os << (first ? "" : " ") << name << "x" << counts[v];
        }
        first = false;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                ifp_fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--litmus") {
            opt.litmus = value();
        } else if (arg == "--policy") {
            opt.policy = value();
        } else if (arg == "--schedules") {
            opt.schedules =
                static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--seed") {
            opt.seed = std::stoull(value());
        } else if (arg == "--exhaustive") {
            opt.exhaustive = true;
        } else if (arg == "--por") {
            opt.por = true;
        } else if (arg == "--max-schedules") {
            opt.maxSchedules =
                static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--max-depth") {
            opt.maxDepth = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--max-cycles") {
            opt.maxCycles = std::stoull(value());
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--no-lint") {
            opt.noLint = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "unknown option " << arg << "\n";
            usage();
            return 2;
        }
    }

    if (opt.list) {
        for (const auto &spec : ifp::workloads::litmusSpecs()) {
            std::cout << spec.name << "  (" << spec.numWgs
                      << " WGs, " << spec.numCus << " CU"
                      << (spec.numCus == 1 ? "" : "s")
                      << ", occupancy " << spec.maxWgsPerCu
                      << ")  " << spec.description << "\n";
        }
        return 0;
    }

    std::vector<std::string> names;
    if (opt.litmus == "all")
        names = ifp::workloads::litmusNames();
    else
        names.push_back(opt.litmus);

    const bool allPolicies = opt.policy == "all";
    const Policy onlyPolicy =
        allPolicies ? Policy::Baseline : parsePolicy(opt.policy);

    bool ok = true;
    std::ostream &os = std::cout;
    if (opt.json)
        os << "{\n  \"litmuses\": [\n";

    for (std::size_t li = 0; li < names.size(); ++li) {
        auto litmus = ifp::workloads::makeLitmus(names[li]);
        const auto &spec = litmus->spec();

        if (opt.json) {
            os << "    {\n      \"name\": \"" << spec.name
               << "\",\n      \"cells\": [\n";
        } else {
            os << "== " << spec.name << " ==\n";
        }

        bool firstCell = true;
        if (opt.exhaustive) {
            ifp::explore::ExhaustiveConfig cfg;
            cfg.maxSchedules = opt.maxSchedules;
            cfg.maxPrefixDepth = opt.maxDepth;
            cfg.por = opt.por;
            cfg.run.maxCycles = opt.maxCycles;
            for (const auto &[policy, expected] : spec.expected) {
                if (!allPolicies && policy != onlyPolicy)
                    continue;
                ifp::explore::ExhaustiveResult r =
                    ifp::explore::exhaustive(*litmus, policy, cfg);
                bool cellOk = true;
                for (std::size_t v = 0; v < r.counts.size(); ++v) {
                    if (r.counts[v] != 0 &&
                        v != static_cast<std::size_t>(expected))
                        cellOk = false;
                }
                ok = ok && cellOk;
                if (opt.json) {
                    os << (firstCell ? "" : ",\n")
                       << "        {\"policy\": \""
                       << ifp::core::policyName(policy)
                       << "\", \"expected\": \""
                       << ifp::core::verdictName(expected)
                       << "\", \"observed\": {";
                    printVerdictCounts(os, r.counts, true);
                    os << "}, \"schedules\": " << r.schedulesRun
                       << ", \"pruned\": " << r.pruned
                       << ", \"porSkipped\": " << r.porSkipped
                       << ", \"frontierExhausted\": "
                       << (r.frontierExhausted ? "true" : "false")
                       << ", \"ok\": " << (cellOk ? "true" : "false")
                       << "}";
                } else {
                    os << "  " << ifp::core::policyName(policy)
                       << ": expected "
                       << ifp::core::verdictName(expected)
                       << ", observed ";
                    printVerdictCounts(os, r.counts, false);
                    os << " over " << r.schedulesRun
                       << " schedules (pruned " << r.pruned
                       << ", por-skipped " << r.porSkipped
                       << (r.frontierExhausted
                               ? ", frontier exhausted"
                               : ", schedule cap hit")
                       << ") -> "
                       << (cellOk ? "OK" : "MISMATCH") << "\n";
                }
                firstCell = false;
            }
        } else {
            ifp::explore::LitmusRunConfig run;
            run.maxCycles = opt.maxCycles;
            auto cells = ifp::explore::crossValidate(
                *litmus, opt.seed, opt.schedules, run);
            for (const auto &cell : cells) {
                if (!allPolicies && cell.policy != onlyPolicy)
                    continue;
                ok = ok && cell.ok;
                if (opt.json) {
                    os << (firstCell ? "" : ",\n")
                       << "        {\"policy\": \""
                       << ifp::core::policyName(cell.policy)
                       << "\", \"expected\": \""
                       << ifp::core::verdictName(cell.expected)
                       << "\", \"observed\": {";
                    printVerdictCounts(os, cell.observed, true);
                    os << "}, \"schedules\": " << cell.schedules
                       << ", \"invalid\": " << cell.invalid
                       << ", \"ok\": "
                       << (cell.ok ? "true" : "false") << "}";
                } else {
                    os << "  " << ifp::core::policyName(cell.policy)
                       << ": expected "
                       << ifp::core::verdictName(cell.expected)
                       << ", observed ";
                    printVerdictCounts(os, cell.observed, false);
                    os << " over " << cell.schedules << " schedules"
                       << " -> " << (cell.ok ? "OK" : "MISMATCH")
                       << "\n";
                }
                firstCell = false;
            }
        }

        if (opt.json)
            os << "\n      ]";

        if (!opt.noLint) {
            auto lintCells = ifp::explore::lintCrossCheck(*litmus);
            if (opt.json)
                os << ",\n      \"lint\": [\n";
            bool firstLint = true;
            for (const auto &cell : lintCells) {
                ok = ok && cell.ok;
                if (opt.json) {
                    os << (firstLint ? "" : ",\n")
                       << "        {\"style\": \""
                       << styleName(cell.style)
                       << "\", \"unexpected\": [";
                    for (std::size_t i = 0;
                         i < cell.unexpected.size(); ++i) {
                        os << (i ? ", " : "") << "\""
                           << cell.unexpected[i] << "\"";
                    }
                    os << "], \"missing\": [";
                    for (std::size_t i = 0; i < cell.missing.size();
                         ++i) {
                        os << (i ? ", " : "") << "\""
                           << cell.missing[i] << "\"";
                    }
                    os << "], \"ok\": "
                       << (cell.ok ? "true" : "false") << "}";
                } else if (!cell.ok) {
                    os << "  lint " << styleName(cell.style) << ":";
                    for (const auto &c : cell.unexpected)
                        os << " unexpected:" << c;
                    for (const auto &c : cell.missing)
                        os << " missing:" << c;
                    os << " -> MISMATCH\n";
                }
                firstLint = false;
            }
            if (opt.json)
                os << "\n      ]";
            else
                os << "  lint: "
                   << (std::all_of(lintCells.begin(),
                                   lintCells.end(),
                                   [](const auto &c) {
                                       return c.ok;
                                   })
                           ? "OK"
                           : "MISMATCH")
                   << " across 4 styles\n";
        }

        if (opt.json)
            os << "\n    }" << (li + 1 < names.size() ? "," : "")
               << "\n";
    }

    if (opt.json) {
        os << "  ],\n  \"ok\": " << (ok ? "true" : "false")
           << "\n}\n";
    } else {
        os << (ok ? "all cells agree with their annotations\n"
                  : "ANNOTATION MISMATCH (see above)\n");
    }
    return ok ? 0 : 1;
}
