#!/usr/bin/env bash
# Sweep-parity harness: run every bench binary serially
# (IFP_BENCH_JOBS=1) and in parallel (IFP_BENCH_JOBS=N) with CSV
# output enabled, and diff the stdout of the two runs. Any difference
# means the parallel sweep changed the evaluation's results and fails
# the run. Wired into ctest as the `sweep-parity` label.
#
# With --trace the second run instead enables structured tracing
# (IFP_BENCH_TRACE=1, serial): tracing must observe, never perturb, so
# the bench tables must stay byte-identical. Wired into ctest as the
# `observability` label.
#
# With --baseline every bench binary runs once with machine-readable
# reporting enabled (IFP_BENCH_JSON_OUT for the sweep benches,
# --benchmark_out for the google-benchmark microbenches) and the
# resulting BENCH_<name>.json files are written into bench/baselines/
# for committing. With --check the same reports are regenerated into a
# temporary directory and tools/bench_check gates each one against the
# committed baseline (tolerance: IFP_BENCH_CHECK_TOLERANCE, default
# 0.40 — generous on purpose; the gate hunts structural slowdowns,
# not scheduling noise).
#
# With --verify the script is instead the one-stop verification entry
# point: configure + build, the tier-1 ctest suite, the static kernel
# verifier gate (ifplint --all --Werror), the litmus and queue-family
# label suites, byte-identity of the
# exploration and interference JSON surfaces, the POR-vs-unreduced
# exhaustive agreement check, clang-tidy (skipped when not installed),
# the sanitized test run (ASan+UBSan), and the perf gate (--check)
# when baselines are committed. This is what CI or a pre-merge check
# should call.
#
# Usage: run_all_benches.sh [--trace] [BENCH_DIR] [JOBS]
#        run_all_benches.sh --baseline [BENCH_DIR] [OUT_DIR]
#        run_all_benches.sh --check [BENCH_DIR]
#        run_all_benches.sh --verify [BUILD_DIR] [JOBS]
#   BENCH_DIR  directory with the bench binaries (default: build/bench)
#   OUT_DIR    where --baseline writes (default: bench/baselines)
#   JOBS       parallel worker count (default: IFP_BENCH_PARITY_JOBS
#              or the machine's core count; unused with --trace)

set -u

SCRIPT_SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

# Run every bench binary in $1 with machine-readable reporting into
# directory $2. Sweep benches honour IFP_BENCH_JSON_OUT; microbenches
# use google-benchmark's native JSON writer.
generate_reports() {
    gen_bench_dir="$1"
    gen_out_dir="$2"
    mkdir -p "$gen_out_dir"
    gen_fail=0
    for bin in "$gen_bench_dir"/*; do
        [ -x "$bin" ] && [ -f "$bin" ] || continue
        name="$(basename "$bin")"
        case "$name" in
            *.cmake|CTestTestfile*|CMakeFiles) continue ;;
            microbench_*)
                if ! "$bin" \
                        --benchmark_out="$gen_out_dir/BENCH_$name.json" \
                        --benchmark_out_format=json \
                        > /dev/null 2>&1; then
                    echo "FAIL  $name: microbench run exited non-zero" >&2
                    gen_fail=1
                    continue
                fi
                ;;
            *)
                if ! IFP_BENCH_CSV=1 \
                        IFP_BENCH_JSON_OUT="$gen_out_dir/BENCH_$name.json" \
                        "$bin" > /dev/null 2>&1; then
                    echo "FAIL  $name: bench run exited non-zero" >&2
                    gen_fail=1
                    continue
                fi
                ;;
        esac
        if [ -f "$gen_out_dir/BENCH_$name.json" ]; then
            echo "wrote $gen_out_dir/BENCH_$name.json"
        else
            echo "note  $name emitted no report (no sweeps)"
        fi
    done
    return $gen_fail
}

if [ "${1:-}" = "--baseline" ]; then
    shift
    BENCH_DIR="${1:-build/bench}"
    OUT_DIR="${2:-$SCRIPT_SRC_DIR/bench/baselines}"
    if [ ! -d "$BENCH_DIR" ]; then
        echo "error: bench dir '$BENCH_DIR' not found (build first)" >&2
        exit 2
    fi
    generate_reports "$BENCH_DIR" "$OUT_DIR"
    exit $?
fi

if [ "${1:-}" = "--check" ]; then
    shift
    BENCH_DIR="${1:-build/bench}"
    BASELINE_DIR="$SCRIPT_SRC_DIR/bench/baselines"
    CHECK_BIN="$BENCH_DIR/../tools/bench_check"
    if [ ! -d "$BENCH_DIR" ]; then
        echo "error: bench dir '$BENCH_DIR' not found (build first)" >&2
        exit 2
    fi
    if [ ! -x "$CHECK_BIN" ]; then
        echo "error: '$CHECK_BIN' not found (build first)" >&2
        exit 2
    fi
    if ! ls "$BASELINE_DIR"/BENCH_*.json > /dev/null 2>&1; then
        echo "error: no baselines in $BASELINE_DIR" \
             "(run --baseline and commit them)" >&2
        exit 2
    fi

    tmpdir="$(mktemp -d)"
    trap 'rm -rf "$tmpdir"' EXIT
    fail=0
    generate_reports "$BENCH_DIR" "$tmpdir" || fail=1
    for base in "$BASELINE_DIR"/BENCH_*.json; do
        name="$(basename "$base")"
        echo "== $name"
        if [ ! -f "$tmpdir/$name" ]; then
            echo "FAIL  $name: current run produced no report" >&2
            fail=1
            continue
        fi
        "$CHECK_BIN" "$base" "$tmpdir/$name" || fail=1
    done
    if [ "$fail" -eq 0 ]; then
        echo "perf gate: all baselines defended"
    fi
    exit $fail
fi

if [ "${1:-}" = "--verify" ]; then
    shift
    SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
    BUILD_DIR="${1:-build}"
    JOBS="${2:-$(nproc 2>/dev/null || echo 4)}"

    set -e
    echo "== configure + build ($BUILD_DIR)"
    cmake -S "$SRC_DIR" -B "$BUILD_DIR" > /dev/null
    cmake --build "$BUILD_DIR" -j "$JOBS"

    echo "== tier-1 tests (ctest)"
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

    echo "== static kernel verifier (ifplint --all --Werror)"
    "$BUILD_DIR/tools/ifplint" --all --Werror > /dev/null
    echo "lint clean"

    echo "== litmus suite (ctest -L litmus)"
    ctest --test-dir "$BUILD_DIR" -L litmus --output-on-failure -j "$JOBS"

    echo "== queue family (ctest -L queues)"
    ctest --test-dir "$BUILD_DIR" -L queues --output-on-failure -j "$JOBS"

    echo "== litmus exploration byte-identity (ifpexplore)"
    explore_tmp="$(mktemp -d)"
    "$BUILD_DIR/tools/ifpexplore" --litmus all --schedules 50 --json \
        > "$explore_tmp/a.json"
    "$BUILD_DIR/tools/ifpexplore" --litmus all --schedules 50 --json \
        > "$explore_tmp/b.json"
    if ! cmp "$explore_tmp/a.json" "$explore_tmp/b.json"; then
        echo "FAIL: ifpexplore --json is not byte-identical" >&2
        rm -rf "$explore_tmp"
        exit 1
    fi
    rm -rf "$explore_tmp"
    echo "exploration deterministic"

    echo "== interference summaries byte-identity (ifplint --interference)"
    interference_tmp="$(mktemp -d)"
    "$BUILD_DIR/tools/ifplint" --all --interference --Werror --json \
        > "$interference_tmp/a.json"
    "$BUILD_DIR/tools/ifplint" --all --interference --Werror --json \
        > "$interference_tmp/b.json"
    if ! cmp "$interference_tmp/a.json" "$interference_tmp/b.json"; then
        echo "FAIL: ifplint --interference --json is not byte-identical" >&2
        rm -rf "$interference_tmp"
        exit 1
    fi
    rm -rf "$interference_tmp"
    echo "interference summaries deterministic"

    echo "== POR agreement (ifpexplore --exhaustive with and without --por)"
    por_tmp="$(mktemp -d)"
    "$BUILD_DIR/tools/ifpexplore" --litmus all --exhaustive \
        --max-schedules 400 --max-depth 8 --max-cycles 2000000 \
        --no-lint --json > "$por_tmp/base.json"
    "$BUILD_DIR/tools/ifpexplore" --litmus all --exhaustive --por \
        --max-schedules 400 --max-depth 8 --max-cycles 2000000 \
        --no-lint --json > "$por_tmp/por.json"
    # Both runs exit 0 above (set -e), so every cell's observed
    # verdicts match the annotation with and without the reduction;
    # on top of that the reduced run must visit no more schedules.
    base_total=$(grep -o '"schedules": [0-9]*' "$por_tmp/base.json" |
                 awk '{ sum += $2 } END { print sum }')
    por_total=$(grep -o '"schedules": [0-9]*' "$por_tmp/por.json" |
                awk '{ sum += $2 } END { print sum }')
    rm -rf "$por_tmp"
    if [ "$por_total" -gt "$base_total" ]; then
        echo "FAIL: POR visited $por_total schedules vs $base_total unreduced" >&2
        exit 1
    fi
    echo "POR agrees ($por_total of $base_total schedules)"

    echo "== clang-tidy"
    "$SRC_DIR/tools/run_clang_tidy.sh" "$BUILD_DIR" "$JOBS"

    echo "== sanitized tests (ASan + UBSan)"
    "$SRC_DIR/tools/run_sanitized_tests.sh" "$BUILD_DIR-sanitize" "$JOBS"

    echo "== sanitized tests (TSan, sharded parity suite)"
    "$SRC_DIR/tools/run_sanitized_tests.sh" --tsan "$BUILD_DIR-tsan" "$JOBS"

    echo "== perf gate (bench_check vs committed baselines)"
    if ls "$SRC_DIR/bench/baselines"/BENCH_*.json > /dev/null 2>&1; then
        "$0" --check "$BUILD_DIR/bench"
    else
        echo "no committed baselines; run '$0 --baseline' to create them"
    fi

    echo "== verify: all checks passed"
    exit 0
fi

MODE=parity
if [ "${1:-}" = "--trace" ]; then
    MODE=trace
    shift
fi

BENCH_DIR="${1:-build/bench}"
JOBS="${2:-${IFP_BENCH_PARITY_JOBS:-$(nproc 2>/dev/null || echo 4)}}"
# Always exercise the thread pool, even on single-core hosts:
# parity is about determinism under concurrency, not speed.
[ "$JOBS" -ge 2 ] 2>/dev/null || JOBS=4

if [ ! -d "$BENCH_DIR" ]; then
    echo "error: bench dir '$BENCH_DIR' not found (build first)" >&2
    exit 2
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

if [ "$MODE" = trace ]; then
    alt_label="traced"
    alt_desc="IFP_BENCH_TRACE=1"
else
    alt_label="parallel"
    alt_desc="jobs=$JOBS"
fi

run_alt() {
    # $1 = binary, $2 = output file
    if [ "$MODE" = trace ]; then
        IFP_BENCH_CSV=1 IFP_BENCH_JOBS=1 IFP_BENCH_TRACE=1 "$1" > "$2" 2>/dev/null
    else
        IFP_BENCH_CSV=1 IFP_BENCH_JOBS="$JOBS" "$1" > "$2" 2>/dev/null
    fi
}

fail=0
total_serial=0
total_alt=0

for bin in "$BENCH_DIR"/*; do
    [ -x "$bin" ] && [ -f "$bin" ] || continue
    name="$(basename "$bin")"
    case "$name" in
        # Google-benchmark binaries measure host time, not sweeps.
        microbench_*) continue ;;
        *.cmake|CTestTestfile*|CMakeFiles) continue ;;
    esac

    t0=$(date +%s.%N)
    if ! IFP_BENCH_CSV=1 IFP_BENCH_JOBS=1 "$bin" \
            > "$tmpdir/$name.serial" 2>/dev/null; then
        echo "FAIL  $name: serial run exited non-zero" >&2
        fail=1
        continue
    fi
    t1=$(date +%s.%N)
    if ! run_alt "$bin" "$tmpdir/$name.$alt_label"; then
        echo "FAIL  $name: $alt_desc run exited non-zero" >&2
        fail=1
        continue
    fi
    t2=$(date +%s.%N)

    serial_s=$(echo "$t1 $t0" | awk '{printf "%.2f", $1 - $2}')
    alt_s=$(echo "$t2 $t1" | awk '{printf "%.2f", $1 - $2}')
    total_serial=$(echo "$total_serial $serial_s" | awk '{print $1 + $2}')
    total_alt=$(echo "$total_alt $alt_s" | awk '{print $1 + $2}')

    if diff -u "$tmpdir/$name.serial" "$tmpdir/$name.$alt_label" \
            > "$tmpdir/$name.diff"; then
        echo "ok    $name (serial ${serial_s}s, $alt_desc ${alt_s}s)"
    else
        echo "FAIL  $name: baseline and $alt_desc output differ:" >&2
        cat "$tmpdir/$name.diff" >&2
        fail=1
    fi
done

if [ "$MODE" = trace ]; then
    echo "total: serial ${total_serial}s, traced ${total_alt}s"
else
    speedup=$(echo "$total_serial $total_alt" | \
              awk '{ if ($2 > 0) printf "%.2f", $1 / $2; else print "n/a" }')
    echo "total: serial ${total_serial}s, jobs=$JOBS ${total_alt}s," \
         "suite speedup ${speedup}x"
fi

exit $fail
