#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy at the repo root) over the
# simulator sources, against a compile_commands.json exported by
# CMake. Degrades gracefully when clang-tidy is not installed — the
# curated container image ships only the base toolchain — so callers
# (run_all_benches.sh --verify) can invoke it unconditionally.
#
# Usage: run_clang_tidy.sh [BUILD_DIR] [JOBS] [-- TIDY_ARGS...]
#   BUILD_DIR  build tree with/for compile_commands.json (default: build)
#   JOBS       parallel clang-tidy processes (default: nproc)
#   TIDY_ARGS  forwarded to clang-tidy, e.g. `-- --fix`

set -u

SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-build}"
JOBS="${2:-$(nproc 2>/dev/null || echo 4)}"
shift $(( $# > 2 ? 2 : $# ))
[ "${1:-}" = "--" ] && shift

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
    echo "run_clang_tidy: clang-tidy not installed; skipping" \
         "(install clang-tidy to enable this check)"
    exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -S "$SRC_DIR" -B "$BUILD_DIR" \
          -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null || exit 2
fi

# run-clang-tidy parallelizes when available; otherwise iterate.
RUNNER="$(command -v run-clang-tidy || true)"
if [ -n "$RUNNER" ]; then
    "$RUNNER" -p "$BUILD_DIR" -j "$JOBS" -quiet "$@" \
        "$SRC_DIR/src/.*\.cc" "$SRC_DIR/tools/.*\.cc"
    exit $?
fi

fail=0
for f in "$SRC_DIR"/src/*/*.cc "$SRC_DIR"/tools/*.cc; do
    [ -f "$f" ] || continue
    "$TIDY" -p "$BUILD_DIR" -quiet "$@" "$f" || fail=1
done
exit $fail
