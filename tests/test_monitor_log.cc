/**
 * @file
 * Tests for the Monitor Log (the SyncMon -> CP virtualization
 * interface): circular-buffer semantics, capacity, and its residence
 * in global memory.
 */

#include <gtest/gtest.h>

#include "cp/monitor_log.hh"

namespace ifp::cp {
namespace {

TEST(MonitorLog, StartsEmpty)
{
    mem::BackingStore store;
    MonitorLog log(0x1000, 8, store);
    EXPECT_TRUE(log.empty());
    EXPECT_FALSE(log.full());
    EXPECT_EQ(log.size(), 0u);
    EXPECT_FALSE(log.pop().has_value());
}

TEST(MonitorLog, FifoOrder)
{
    mem::BackingStore store;
    MonitorLog log(0x1000, 8, store);
    EXPECT_TRUE(log.append({0xA0, 1, 10}));
    EXPECT_TRUE(log.append({0xB0, 2, 20}));
    EXPECT_TRUE(log.append({0xC0, 3, 30}));
    auto e = log.pop();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->addr, 0xA0u);
    EXPECT_EQ(e->expected, 1);
    EXPECT_EQ(e->wgId, 10);
    EXPECT_EQ(log.pop()->wgId, 20);
    EXPECT_EQ(log.pop()->wgId, 30);
    EXPECT_TRUE(log.empty());
}

TEST(MonitorLog, RejectsWhenFull)
{
    mem::BackingStore store;
    MonitorLog log(0x1000, 2, store);
    EXPECT_TRUE(log.append({0xA0, 1, 1}));
    EXPECT_TRUE(log.append({0xB0, 2, 2}));
    EXPECT_TRUE(log.full());
    EXPECT_FALSE(log.append({0xC0, 3, 3}));
    EXPECT_EQ(log.totalRejected(), 1u);
    log.pop();
    EXPECT_TRUE(log.append({0xC0, 3, 3}));
}

TEST(MonitorLog, WrapsAroundTheCircularBuffer)
{
    mem::BackingStore store;
    MonitorLog log(0x1000, 3, store);
    for (int round = 0; round < 5; ++round) {
        EXPECT_TRUE(log.append({0x100, round, round}));
        auto e = log.pop();
        ASSERT_TRUE(e.has_value());
        EXPECT_EQ(e->wgId, round);
    }
    EXPECT_EQ(log.totalAppends(), 5u);
}

TEST(MonitorLog, EntriesResideInGlobalMemory)
{
    mem::BackingStore store;
    MonitorLog log(0x8000, 4, store);
    log.append({0xDEAD00, -7, 42});
    // First entry at the base: addr, expected value, WG id.
    EXPECT_EQ(store.read(0x8000, 8), 0xDEAD00);
    EXPECT_EQ(store.read(0x8008, 8), -7);
    EXPECT_EQ(store.read(0x8010, 8), 42);
}

TEST(MonitorLog, TracksHighWaterMark)
{
    mem::BackingStore store;
    MonitorLog log(0x1000, 8, store);
    log.append({0xA0, 1, 1});
    log.append({0xB0, 2, 2});
    log.append({0xC0, 3, 3});
    log.pop();
    log.pop();
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(log.maxSize(), 3u);
}

TEST(MonitorLog, WraparoundUnderChurn)
{
    // The fault engine's pressure/jam windows drive exactly this
    // pattern: bursts of appends racing pops across the circular
    // boundary, with repeated full -> drain -> empty flips and
    // reject-then-accept cycles at the full edge.
    mem::BackingStore store;
    MonitorLog log(0x2000, 4, store);

    int next_wg = 0;
    int expect_wg = 0;
    std::uint64_t rejects = 0;
    for (int round = 0; round < 8; ++round) {
        // Fill to capacity, then confirm the log-full retry path.
        while (!log.full())
            ASSERT_TRUE(log.append({0x100, round, next_wg++}));
        EXPECT_EQ(log.size(), 4u);
        EXPECT_FALSE(log.append({0x100, round, 999}));
        ++rejects;

        // Partial drain (churn): two out, two in, crossing the
        // wrap point once per round since 4 does not divide evenly
        // into the append bursts.
        for (int i = 0; i < 2; ++i) {
            auto e = log.pop();
            ASSERT_TRUE(e.has_value());
            EXPECT_EQ(e->wgId, expect_wg++);
        }
        ASSERT_TRUE(log.append({0x100, round, next_wg++}));
        ASSERT_TRUE(log.append({0x100, round, next_wg++}));
        EXPECT_TRUE(log.full());

        // Full drain: FIFO order must survive the wraparound.
        while (!log.empty()) {
            auto e = log.pop();
            ASSERT_TRUE(e.has_value());
            EXPECT_EQ(e->wgId, expect_wg++);
        }
        EXPECT_FALSE(log.pop().has_value());
        EXPECT_EQ(expect_wg, next_wg);
    }
    EXPECT_EQ(log.totalAppends(),
              static_cast<std::uint64_t>(next_wg));
    EXPECT_EQ(log.totalRejected(), rejects);
    EXPECT_EQ(log.maxSize(), 4u);
}

TEST(MonitorLog, NegativeExpectedValuesRoundTrip)
{
    mem::BackingStore store;
    MonitorLog log(0x1000, 4, store);
    log.append({0x40, -1, 5});
    auto e = log.pop();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->expected, -1);
}

} // anonymous namespace
} // namespace ifp::cp
