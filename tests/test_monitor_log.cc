/**
 * @file
 * Tests for the Monitor Log (the SyncMon -> CP virtualization
 * interface): circular-buffer semantics, capacity, and its residence
 * in global memory.
 */

#include <gtest/gtest.h>

#include "cp/monitor_log.hh"

namespace ifp::cp {
namespace {

TEST(MonitorLog, StartsEmpty)
{
    mem::BackingStore store;
    MonitorLog log(0x1000, 8, store);
    EXPECT_TRUE(log.empty());
    EXPECT_FALSE(log.full());
    EXPECT_EQ(log.size(), 0u);
    EXPECT_FALSE(log.pop().has_value());
}

TEST(MonitorLog, FifoOrder)
{
    mem::BackingStore store;
    MonitorLog log(0x1000, 8, store);
    EXPECT_TRUE(log.append({0xA0, 1, 10}));
    EXPECT_TRUE(log.append({0xB0, 2, 20}));
    EXPECT_TRUE(log.append({0xC0, 3, 30}));
    auto e = log.pop();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->addr, 0xA0u);
    EXPECT_EQ(e->expected, 1);
    EXPECT_EQ(e->wgId, 10);
    EXPECT_EQ(log.pop()->wgId, 20);
    EXPECT_EQ(log.pop()->wgId, 30);
    EXPECT_TRUE(log.empty());
}

TEST(MonitorLog, RejectsWhenFull)
{
    mem::BackingStore store;
    MonitorLog log(0x1000, 2, store);
    EXPECT_TRUE(log.append({0xA0, 1, 1}));
    EXPECT_TRUE(log.append({0xB0, 2, 2}));
    EXPECT_TRUE(log.full());
    EXPECT_FALSE(log.append({0xC0, 3, 3}));
    EXPECT_EQ(log.totalRejected(), 1u);
    log.pop();
    EXPECT_TRUE(log.append({0xC0, 3, 3}));
}

TEST(MonitorLog, WrapsAroundTheCircularBuffer)
{
    mem::BackingStore store;
    MonitorLog log(0x1000, 3, store);
    for (int round = 0; round < 5; ++round) {
        EXPECT_TRUE(log.append({0x100, round, round}));
        auto e = log.pop();
        ASSERT_TRUE(e.has_value());
        EXPECT_EQ(e->wgId, round);
    }
    EXPECT_EQ(log.totalAppends(), 5u);
}

TEST(MonitorLog, EntriesResideInGlobalMemory)
{
    mem::BackingStore store;
    MonitorLog log(0x8000, 4, store);
    log.append({0xDEAD00, -7, 42});
    // First entry at the base: addr, expected value, WG id.
    EXPECT_EQ(store.read(0x8000, 8), 0xDEAD00);
    EXPECT_EQ(store.read(0x8008, 8), -7);
    EXPECT_EQ(store.read(0x8010, 8), 42);
}

TEST(MonitorLog, TracksHighWaterMark)
{
    mem::BackingStore store;
    MonitorLog log(0x1000, 8, store);
    log.append({0xA0, 1, 1});
    log.append({0xB0, 2, 2});
    log.append({0xC0, 3, 3});
    log.pop();
    log.pop();
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(log.maxSize(), 3u);
}

TEST(MonitorLog, NegativeExpectedValuesRoundTrip)
{
    mem::BackingStore store;
    MonitorLog log(0x1000, 4, store);
    log.append({0x40, -1, 5});
    auto e = log.pop();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->expected, -1);
}

} // anonymous namespace
} // namespace ifp::cp
