/**
 * @file
 * Coverage for system behaviours not pinned elsewhere: L2 dirty
 * writebacks, CU round-robin fairness, barrier interaction with
 * finished wavefronts, Monitor-Log memory traffic, and disassembly
 * coverage for every opcode.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "mem/dram.hh"
#include "mem/l2_cache.hh"
#include "test_helpers.hh"

namespace ifp {
namespace {

using isa::KernelBuilder;
using isa::Label;

TEST(L2Behaviour, DirtyVictimsWriteBackToDram)
{
    mem::MemRequestPool pool;
    sim::EventQueue eq;
    mem::BackingStore store;
    mem::Dram dram("dram", eq, mem::DramConfig{});
    mem::L2Config cfg;
    cfg.sizeBytes = 8 * 1024;  // tiny: 2 sets x 16 ways x 64 B... 8
    cfg.assoc = 4;
    mem::L2Cache l2("l2", eq, cfg, dram, store, pool);

    // Dirty many lines mapping across the tiny cache, then stream
    // reads through to force evictions.
    auto write = [&](mem::Addr addr) {
        mem::MemRequestPtr req = pool.allocate();
        req->op = mem::MemOp::Write;
        req->addr = addr;
        req->operand = 1;
        l2.access(req);
    };
    auto read = [&](mem::Addr addr) {
        mem::MemRequestPtr req = pool.allocate();
        req->op = mem::MemOp::Read;
        req->addr = addr;
        l2.access(req);
    };
    for (unsigned i = 0; i < 64; ++i)
        write(0x10000 + i * 64);
    eq.simulate();
    for (unsigned i = 0; i < 256; ++i)
        read(0x80000 + i * 64);
    eq.simulate();
    EXPECT_GT(l2.stats().scalar("writebacks").value(), 0.0);
}

TEST(CuBehaviour, RoundRobinSharesIssueBetweenWgs)
{
    // Two compute-bound WGs on one CU: round-robin issue should let
    // them finish at essentially the same time, not serially.
    core::GpuSystem system(test::testRunConfig());
    mem::Addr out = system.allocate(2 * 64);

    KernelBuilder b;
    b.movi(16, 3000);
    Label loop = b.here();
    b.subi(16, 16, 1);
    b.bnz(16, loop);
    b.muli(17, isa::rWgId, 64);
    b.movi(18, static_cast<std::int64_t>(out));
    b.add(18, 18, 17);
    b.movi(19, 1);
    b.st(18, 19);
    b.halt();

    isa::Kernel k = test::makeTestKernel(b, 2);
    k.maxWgsPerCu = 2;
    // Force both onto one CU by marking the kernel 2-per-CU on an
    // 8-CU machine: the dispatcher balances, so instead check both
    // complete and the run is ~2x one WG's instruction count in
    // issue slots (they share SIMDs without starving each other).
    auto result = system.run(k);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(out, 8), 1);
    EXPECT_EQ(system.memory().read(out + 64, 8), 1);
}

TEST(CuBehaviour, BarrierReleasesWhenOtherWavefrontsFinish)
{
    // wf0 runs long and barriers late; wf1 barriers immediately.
    // Both must pass (alive-count barrier), then halt.
    core::GpuSystem system(test::testRunConfig());
    mem::Addr out = system.allocate(64);

    KernelBuilder b;
    Label fast = b.label();
    b.bnz(isa::rWfId, fast);
    b.valu(2000);       // wf0: slow path
    b.bind(fast);
    b.bar();
    Label skip = b.label();
    b.bnz(isa::rWfId, skip);
    b.movi(16, static_cast<std::int64_t>(out));
    b.movi(17, 1);
    b.st(16, 17);
    b.bind(skip);
    b.halt();

    auto result = system.run(test::makeTestKernel(b, 1, 128));
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(out, 8), 1);
}

TEST(MonitorLogBehaviour, AppendsGenerateL2Traffic)
{
    mem::MemRequestPool pool;
    sim::EventQueue eq;
    mem::BackingStore store;
    mem::Dram dram("dram", eq, mem::DramConfig{});
    mem::L2Cache l2("l2", eq, mem::L2Config{}, dram, store, pool);
    cp::MonitorLog log(0x9000, 16, store, &l2, &pool);

    double writes_before = l2.stats().scalar("hits").value() +
                           l2.stats().scalar("misses").value();
    log.append({0x100, 1, 2});
    eq.simulate();
    double writes_after = l2.stats().scalar("hits").value() +
                          l2.stats().scalar("misses").value();
    EXPECT_GT(writes_after, writes_before);
}

TEST(Disassembly, EveryOpcodeRenders)
{
    using isa::Opcode;
    for (int op = 0; op <= static_cast<int>(Opcode::Halt); ++op) {
        isa::Instr in;
        in.op = static_cast<Opcode>(op);
        std::string text = isa::disassemble(in);
        EXPECT_FALSE(text.empty())
            << "opcode " << op << " has no disassembly";
        EXPECT_FALSE(isa::opcodeName(in.op).empty());
    }
}

TEST(Disassembly, ImmediateVsRegisterForms)
{
    KernelBuilder b;
    b.add(1, 2, 3);
    b.addi(1, 2, 42);
    auto code = b.build();
    EXPECT_EQ(isa::disassemble(code[0]), "add r1, r2, r3");
    EXPECT_EQ(isa::disassemble(code[1]), "add r1, r2, 42");
}

TEST(OversubscribedRotation, WaitAccountingStaysConsistent)
{
    // After a heavy context-switch run, the aggregate accounting must
    // satisfy: waiting <= exec per WG (clamped at harvest) and the
    // save/restore counters must balance.
    harness::Experiment exp;
    exp.workload = "TB_LG";
    exp.policy = core::Policy::Awg;
    exp.oversubscribed = true;
    exp.params = harness::defaultEvalParams();
    exp.params.iters = 16;
    exp.runCfg.cuLossMicroseconds = 10;
    auto r = harness::runExperiment(exp);
    ASSERT_TRUE(r.completed);
    EXPECT_LE(r.totalWgWaitCycles, r.totalWgExecCycles);
    EXPECT_GE(r.totalWgRunCycles(), 0.0);
    EXPECT_EQ(r.contextSaves, r.contextRestores);
    EXPECT_GT(r.wgCompletionSpreadCycles, 0u);
}

} // anonymous namespace
} // namespace ifp
