/**
 * @file
 * Unit tests for harness::SweepRunner — the thread-pool executor the
 * bench binaries submit their evaluation sweeps through.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/sweep.hh"
#include "test_helpers.hh"

namespace ifp {
namespace {

using core::Policy;

harness::Experiment
smallExperiment(const std::string &w, Policy policy)
{
    harness::Experiment exp;
    exp.workload = w;
    exp.policy = policy;
    exp.params = test::smallParams();
    return exp;
}

TEST(SweepRunner, EnqueueReturnsSubmissionIndices)
{
    harness::SweepRunner sweep(2);
    EXPECT_EQ(sweep.enqueue(smallExperiment("SPM_G", Policy::Awg)), 0u);
    EXPECT_EQ(sweep.enqueue(smallExperiment("FAM_G", Policy::Awg)), 1u);
    EXPECT_EQ(sweep.size(), 2u);
}

TEST(SweepRunner, ResultsComeBackInSubmissionOrder)
{
    // Mix long (contended mutex) and short runs so parallel workers
    // finish out of submission order; results must not.
    const std::vector<std::pair<std::string, Policy>> runs = {
        {"SPM_G", Policy::Baseline}, {"TB_LG", Policy::Awg},
        {"FAM_G", Policy::MonNROne}, {"SPM_G", Policy::Awg},
        {"SLM_L", Policy::Sleep},    {"FAM_G", Policy::Awg}};

    harness::SweepRunner sweep(3);
    for (const auto &[w, p] : runs)
        sweep.enqueue(smallExperiment(w, p));
    const auto &results = sweep.run();

    ASSERT_EQ(results.size(), runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const core::RunResult expected = harness::runExperiment(
            smallExperiment(runs[i].first, runs[i].second));
        EXPECT_EQ(results[i].gpuCycles, expected.gpuCycles)
            << "run " << i << " (" << runs[i].first << ")";
        EXPECT_EQ(results[i].instructions, expected.instructions);
        EXPECT_TRUE(results[i].completed);
    }
}

TEST(SweepRunner, RunIsIdempotent)
{
    harness::SweepRunner sweep(2);
    sweep.enqueue(smallExperiment("SPM_G", Policy::Awg));
    const auto &first = sweep.run();
    const std::uint64_t cycles = first[0].gpuCycles;
    const auto &second = sweep.run();
    EXPECT_EQ(&first, &second);
    EXPECT_EQ(second[0].gpuCycles, cycles);
}

TEST(SweepRunner, EmptySweepRunsCleanly)
{
    harness::SweepRunner sweep(4);
    EXPECT_TRUE(sweep.run().empty());
}

TEST(SweepRunner, SerialPathUsesNoWorkersAndMatchesParallel)
{
    harness::SweepRunner serial(1);
    harness::SweepRunner parallel(4);
    for (const char *w : {"SPM_G", "FAM_G"}) {
        serial.enqueue(smallExperiment(w, Policy::Awg));
        parallel.enqueue(smallExperiment(w, Policy::Awg));
    }
    const auto &a = serial.run();
    const auto &b = parallel.run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].gpuCycles, b[i].gpuCycles);
}

TEST(SweepRunner, RecordsWallAndSerialSeconds)
{
    harness::SweepRunner sweep(2);
    sweep.enqueue(smallExperiment("SPM_G", Policy::Awg));
    sweep.enqueue(smallExperiment("FAM_G", Policy::Awg));
    sweep.run();
    EXPECT_GT(sweep.wallSeconds(), 0.0);
    EXPECT_GT(sweep.serialSeconds(), 0.0);
}

class JobsFromEnv : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (const char *old = std::getenv("IFP_BENCH_JOBS"))
            saved = old;
        unsetenv("IFP_BENCH_JOBS");
    }

    void
    TearDown() override
    {
        if (saved.empty())
            unsetenv("IFP_BENCH_JOBS");
        else
            setenv("IFP_BENCH_JOBS", saved.c_str(), 1);
    }

    std::string saved;
};

TEST_F(JobsFromEnv, UnsetFallsBackToHardwareConcurrency)
{
    EXPECT_GE(harness::SweepRunner::jobsFromEnv(), 1u);
}

TEST_F(JobsFromEnv, ParsesExplicitJobCount)
{
    setenv("IFP_BENCH_JOBS", "3", 1);
    EXPECT_EQ(harness::SweepRunner::jobsFromEnv(), 3u);
    EXPECT_EQ(harness::SweepRunner(0).jobs(), 3u);
}

TEST_F(JobsFromEnv, RejectsInvalidValues)
{
    for (const char *bad : {"0", "-2", "abc", "4x", ""}) {
        setenv("IFP_BENCH_JOBS", bad, 1);
        EXPECT_GE(harness::SweepRunner::jobsFromEnv(), 1u)
            << "IFP_BENCH_JOBS='" << bad << "'";
    }
}

TEST_F(JobsFromEnv, ExplicitConstructorArgWinsOverEnv)
{
    setenv("IFP_BENCH_JOBS", "7", 1);
    EXPECT_EQ(harness::SweepRunner(2).jobs(), 2u);
}

} // anonymous namespace
} // namespace ifp
