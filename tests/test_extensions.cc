/**
 * @file
 * Tests for the extensions beyond the paper's baseline design:
 * the evict-youngest Monitor Log replacement policy (the fairness
 * study §V.A defers to future work) and the stall-prediction ablation
 * switch.
 */

#include <gtest/gtest.h>

#include "cp/command_processor.hh"
#include "mem/dram.hh"
#include "mem/l2_cache.hh"
#include "test_helpers.hh"

namespace ifp {
namespace {

using syncmon::SpillPolicy;
using syncmon::SyncMonConfig;
using syncmon::SyncMonController;
using syncmon::SyncMonMode;

class StubScheduler : public gpu::WgScheduler
{
  public:
    bool hasStarvedWork() const override { return starved; }
    void resumeWg(int wg_id) override { resumed.push_back(wg_id); }
    unsigned numWaitingWgs() const override { return 0; }

    bool starved = false;
    std::vector<int> resumed;
};

struct SpillFixture : public ::testing::Test
{
    void
    build(SpillPolicy policy)
    {
        SyncMonConfig cfg;
        cfg.sets = 1;
        cfg.ways = 1;  // one hardware condition: conflicts guaranteed
        cfg.spillPolicy = policy;
        dram = std::make_unique<mem::Dram>("dram", eq,
                                           mem::DramConfig{});
        l2 = std::make_unique<mem::L2Cache>("l2", eq,
                                            mem::L2Config{}, *dram,
                                            store, pool);
        dma = std::make_unique<mem::DmaEngine>("dma", eq,
                                               mem::DmaConfig{});
        cp = std::make_unique<cp::CommandProcessor>(
            "cp", eq, cp::CpConfig{}, *dma, store);
        cp->setScheduler(&sched);
        mon = std::make_unique<SyncMonController>("mon", eq,
                                                  SyncMonMode::MonNRAll,
                                                  cfg, *l2, store,
                                                  *cp);
        mon->setScheduler(&sched);
    }

    void
    waitingLoad(mem::Addr addr, mem::MemValue expected, int wg)
    {
        mem::MemRequestPtr req = pool.allocate();
        req->op = mem::MemOp::Atomic;
        req->aop = mem::AtomicOpcode::Load;
        req->addr = addr;
        req->waiting = true;
        req->expected = expected;
        req->wgId = wg;
        l2->access(req);
        settle();
    }

    void
    atomicStore(mem::Addr addr, mem::MemValue value)
    {
        mem::MemRequestPtr req = pool.allocate();
        req->op = mem::MemOp::Atomic;
        req->aop = mem::AtomicOpcode::Store;
        req->addr = addr;
        req->operand = value;
        l2->access(req);
        settle();
    }

    void
    settle(sim::Tick ticks = 100'000'000)
    {
        eq.simulate(eq.curTick() + ticks);
    }

    mem::MemRequestPool pool;
    sim::EventQueue eq;
    mem::BackingStore store;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::L2Cache> l2;
    std::unique_ptr<mem::DmaEngine> dma;
    std::unique_ptr<cp::CommandProcessor> cp;
    std::unique_ptr<SyncMonController> mon;
    StubScheduler sched;
};

TEST_F(SpillFixture, SpillNewKeepsTheOlderConditionInHardware)
{
    build(SpillPolicy::SpillNew);
    waitingLoad(0x1000, 7, 1);  // older: in hardware
    waitingLoad(0x2000, 8, 2);  // conflicts: spilled to the log
    EXPECT_GE(cp->monitorLog().totalAppends(), 1u);
    // The hardware-monitored (older) condition resumes instantly.
    atomicStore(0x1000, 7);
    ASSERT_GE(sched.resumed.size(), 1u);
    EXPECT_EQ(sched.resumed[0], 1);
}

TEST_F(SpillFixture, EvictYoungestDemotesTheNewerCondition)
{
    build(SpillPolicy::EvictYoungest);
    waitingLoad(0x1000, 7, 1);
    waitingLoad(0x2000, 8, 2);  // conflicts: resident is demoted
    waitingLoad(0x3000, 9, 3);  // conflicts again
    // With a single way the youngest resident is always the previous
    // newcomer, so each conflict demotes it and the arriving
    // condition takes the hardware slot (with more ways, older
    // conditions survive and only the youngest is demoted).
    EXPECT_GE(mon->stats().scalar("evictionsToLog").value(), 2.0);
    // All three conditions still fire (hardware or CP-checked).
    atomicStore(0x1000, 7);
    atomicStore(0x2000, 8);
    atomicStore(0x3000, 9);
    settle();
    std::vector<int> resumed = sched.resumed;
    std::sort(resumed.begin(), resumed.end());
    EXPECT_EQ(resumed, (std::vector<int>{1, 2, 3}));
}

TEST_F(SpillFixture, EvictYoungestFallsBackWhenLogIsFull)
{
    SyncMonConfig cfg;
    cfg.sets = 1;
    cfg.ways = 1;
    cfg.spillPolicy = SpillPolicy::EvictYoungest;
    cp::CpConfig cp_cfg;
    cp_cfg.monitorLogCapacity = 1;
    dram = std::make_unique<mem::Dram>("dram", eq, mem::DramConfig{});
    l2 = std::make_unique<mem::L2Cache>("l2", eq, mem::L2Config{},
                                        *dram, store, pool);
    dma = std::make_unique<mem::DmaEngine>("dma", eq,
                                           mem::DmaConfig{});
    cp = std::make_unique<cp::CommandProcessor>("cp", eq, cp_cfg,
                                                *dma, store);
    cp->setScheduler(&sched);
    mon = std::make_unique<SyncMonController>(
        "mon", eq, SyncMonMode::MonNRAll, cfg, *l2, store, *cp);
    mon->setScheduler(&sched);

    waitingLoad(0x1000, 7, 1);
    waitingLoad(0x2000, 8, 2);
    waitingLoad(0x3000, 9, 3);
    // No crash, registrations accounted, and at least one Mesa retry
    // or spill happened; the system stays functional.
    atomicStore(0x1000, 7);
    settle();
    EXPECT_FALSE(sched.resumed.empty());
}

TEST(StallPredictionKnob, DisablingItSwitchesImmediately)
{
    harness::Experiment exp;
    exp.workload = "TB_LG";
    exp.policy = core::Policy::Awg;
    exp.oversubscribed = true;
    exp.params = test::smallParams();
    exp.params.iters = 12;
    exp.params.wgsPerGroup = 2;  // capacity 16 = G: truly oversub
    exp.runCfg.cuLossMicroseconds = 5;

    exp.runCfg.policy.syncmon.stallPredictionEnabled = true;
    auto with = harness::runExperiment(exp);
    exp.runCfg.policy.syncmon.stallPredictionEnabled = false;
    auto without = harness::runExperiment(exp);

    ASSERT_TRUE(with.completed);
    ASSERT_TRUE(without.completed);
    // Without the stall window, every failed wait under starvation
    // pays a context switch: strictly more switching traffic.
    EXPECT_GT(without.contextSaves, with.contextSaves);
}

TEST(SpillPolicyEndToEnd, BothPoliciesCompleteWithTinyHardware)
{
    for (SpillPolicy policy :
         {SpillPolicy::SpillNew, SpillPolicy::EvictYoungest}) {
        harness::Experiment exp;
        exp.workload = "FAM_G";
        exp.policy = core::Policy::Awg;
        exp.params = test::smallParams();
        exp.runCfg.policy.syncmon.sets = 1;
        exp.runCfg.policy.syncmon.ways = 2;
        exp.runCfg.policy.syncmon.spillPolicy = policy;
        auto result = harness::runExperiment(exp);
        EXPECT_TRUE(result.completed);
        EXPECT_TRUE(result.validated) << result.validationError;
        EXPECT_GT(result.spills, 0u);
    }
}

} // anonymous namespace
} // namespace ifp
