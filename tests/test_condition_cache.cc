/**
 * @file
 * Tests for the SyncMon condition cache and waiting-WG list,
 * including the paper's 26112-bit hardware budget.
 */

#include <gtest/gtest.h>

#include "syncmon/condition_cache.hh"

namespace ifp::syncmon {
namespace {

TEST(WaitingWgList, AllocateAndRelease)
{
    WaitingWgList list(4);
    int a = list.allocate(Waiter{1, 10});
    int b = list.allocate(Waiter{2, 20});
    ASSERT_GE(a, 0);
    ASSERT_GE(b, 0);
    EXPECT_EQ(list.inUse(), 2u);
    EXPECT_EQ(list.node(a).wgId, 1);
    EXPECT_EQ(list.node(b).registeredTick, 20u);
    list.release(a);
    EXPECT_EQ(list.inUse(), 1u);
    int c = list.allocate(Waiter{3, 30});
    ASSERT_GE(c, 0);
    EXPECT_EQ(list.maxInUse(), 2u);
}

TEST(WaitingWgList, CapacityExhaustionReturnsMinusOne)
{
    WaitingWgList list(2);
    EXPECT_GE(list.allocate(Waiter{1, 0}), 0);
    EXPECT_GE(list.allocate(Waiter{2, 0}), 0);
    EXPECT_EQ(list.allocate(Waiter{3, 0}), -1);
    list.release(0);
    EXPECT_GE(list.allocate(Waiter{3, 0}), 0);
}

TEST(WaitingWgList, LinkManipulation)
{
    WaitingWgList list(8);
    int a = list.allocate(Waiter{1, 0});
    int b = list.allocate(Waiter{2, 0});
    list.setNext(a, b);
    EXPECT_EQ(list.next(a), b);
    EXPECT_EQ(list.next(b), -1);
}

TEST(ConditionCache, InsertAndFind)
{
    ConditionCache cc;
    EXPECT_EQ(cc.find(0x1000, 5, false), nullptr);
    ConditionCache::Entry *e = cc.insert(0x1000, 5, false, 100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(cc.find(0x1000, 5, false), e);
    EXPECT_EQ(cc.find(0x1000, 6, false), nullptr);
    EXPECT_EQ(cc.numValid(), 1u);
}

TEST(ConditionCache, ValueDistinguishesConditions)
{
    ConditionCache cc;
    ConditionCache::Entry *a = cc.insert(0x1000, 1, false, 0);
    ConditionCache::Entry *b = cc.insert(0x1000, 2, false, 0);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    EXPECT_EQ(cc.numConditionsOn(0x1000), 2u);
}

TEST(ConditionCache, AddrOnlyMode)
{
    ConditionCache cc;
    ConditionCache::Entry *e = cc.insert(0x2000, 0, true, 0);
    ASSERT_NE(e, nullptr);
    // MonRS lookups ignore the value.
    EXPECT_EQ(cc.find(0x2000, 12345, true), e);
    // A value-keyed lookup does not alias the addr-only condition.
    EXPECT_EQ(cc.find(0x2000, 0, false), nullptr);
}

TEST(ConditionCache, SetConflictReturnsNull)
{
    // 1 set x 2 ways: the third distinct condition cannot be held.
    ConditionCache cc(1, 2, 64);
    EXPECT_NE(cc.insert(0x1000, 1, false, 0), nullptr);
    EXPECT_NE(cc.insert(0x2000, 2, false, 0), nullptr);
    EXPECT_EQ(cc.insert(0x3000, 3, false, 0), nullptr);
    EXPECT_EQ(cc.numValid(), 2u);
}

TEST(ConditionCache, RemoveFreesTheWay)
{
    ConditionCache cc(1, 1, 64);
    ConditionCache::Entry *e = cc.insert(0x1000, 1, false, 0);
    ASSERT_NE(e, nullptr);
    cc.remove(e);
    EXPECT_EQ(cc.numValid(), 0u);
    EXPECT_EQ(cc.numConditionsOn(0x1000), 0u);
    EXPECT_NE(cc.insert(0x4000, 4, false, 0), nullptr);
}

TEST(ConditionCache, ForEachOnAddrVisitsAllConditions)
{
    ConditionCache cc;
    cc.insert(0x1000, 1, false, 0);
    cc.insert(0x1000, 2, false, 0);
    cc.insert(0x2000, 3, false, 0);
    int visited = 0;
    cc.forEachOnAddr(0x1000, [&](ConditionCache::Entry &e) {
        EXPECT_EQ(e.addr, 0x1000u);
        ++visited;
    });
    EXPECT_EQ(visited, 2);
}

TEST(ConditionCache, TracksHighWaterMark)
{
    ConditionCache cc;
    ConditionCache::Entry *a = cc.insert(0x1000, 1, false, 0);
    cc.insert(0x2000, 2, false, 0);
    cc.remove(a);
    EXPECT_EQ(cc.numValid(), 1u);
    EXPECT_EQ(cc.maxValid(), 2u);
}

TEST(ConditionCache, PaperGeometryAndBudget)
{
    ConditionCache cc(256, 4, 64);
    EXPECT_EQ(cc.capacity(), 1024u);
    // Section V.C: condition cache + waiting-WG list = 26112 bits
    // (3.18 KB after rounding).
    EXPECT_EQ(cc.hardwareBits(512), 26112u);
}

TEST(ConditionCache, HoldsManyDistinctConditions)
{
    ConditionCache cc(256, 4, 64);
    unsigned inserted = 0;
    for (unsigned i = 0; i < 600; ++i) {
        if (cc.insert(0x10000 + i * 64, static_cast<int>(i), false, 0))
            ++inserted;
    }
    // With universal hashing the 1024-entry cache should hold the
    // bulk of 600 uniformly spread conditions.
    EXPECT_GT(inserted, 550u);
}

} // anonymous namespace
} // namespace ifp::syncmon
