/**
 * @file
 * Tests for AWG's counting Bloom filters, including the paper's
 * hardware budget (512 filters x 24 bits = 12288 bits) and a
 * property-style false-positive check.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "syncmon/bloom_filter.hh"

namespace ifp::syncmon {
namespace {

TEST(BloomFilter, EmptyContainsNothing)
{
    CountingBloomFilter f;
    EXPECT_FALSE(f.mayContain(0));
    EXPECT_FALSE(f.mayContain(123456));
    EXPECT_EQ(f.uniqueCount(), 0u);
}

TEST(BloomFilter, ObserveThenContains)
{
    CountingBloomFilter f;
    EXPECT_TRUE(f.observe(42));
    EXPECT_TRUE(f.mayContain(42));
    EXPECT_EQ(f.uniqueCount(), 1u);
}

TEST(BloomFilter, DuplicatesDoNotIncreaseUniqueCount)
{
    CountingBloomFilter f;
    f.observe(7);
    EXPECT_FALSE(f.observe(7));
    f.observe(7);
    EXPECT_EQ(f.uniqueCount(), 1u);
}

TEST(BloomFilter, CountsDistinctValues)
{
    CountingBloomFilter f;
    // Barrier-like pattern: monotonically increasing counter values.
    for (int v = 1; v <= 8; ++v)
        f.observe(v);
    EXPECT_GE(f.uniqueCount(), 6u);  // allow rare false positives
    EXPECT_LE(f.uniqueCount(), 8u);
}

TEST(BloomFilter, MutexPatternStaysAtTwoUniques)
{
    // Lock values alternate between 0 (free) and 1 (held): AWG must
    // classify this as mutex-like (<= 2 uniques).
    CountingBloomFilter f;
    for (int i = 0; i < 50; ++i) {
        f.observe(i % 2);
    }
    EXPECT_EQ(f.uniqueCount(), 2u);
}

TEST(BloomFilter, ResetClearsState)
{
    CountingBloomFilter f;
    f.observe(1);
    f.observe(2);
    f.reset();
    EXPECT_EQ(f.uniqueCount(), 0u);
    EXPECT_FALSE(f.mayContain(1));
}

TEST(BloomFilter, FalsePositiveRateIsSmallAtPaperOccupancy)
{
    // The paper configures 24 cells / 6 hashes for ~2.1% false
    // positives at its expected occupancy (a couple of values).
    sim::Rng rng(42);
    int false_positives = 0;
    constexpr int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        CountingBloomFilter f(24, 6);
        f.observe(static_cast<std::int64_t>(rng.next()));
        f.observe(static_cast<std::int64_t>(rng.next()));
        auto probe = static_cast<std::int64_t>(rng.next());
        false_positives += f.mayContain(probe) ? 1 : 0;
    }
    double rate = static_cast<double>(false_positives) / trials;
    EXPECT_LT(rate, 0.05);
}

TEST(BloomFilter, CountersSaturateWithoutWrapping)
{
    CountingBloomFilter f(4, 2);  // tiny filter, heavy aliasing
    for (int i = 0; i < 100000; ++i)
        f.observe(i);
    // No crash and membership still reports positives.
    EXPECT_TRUE(f.mayContain(99999));
}

TEST(BloomFilter, CellsSaturateAtMaxWithoutForgetting)
{
    // A wrapping 8-bit counter would pass through 0 at the 256th
    // observation and "forget" the value; saturating cells must park
    // at the ceiling instead. The queue family's drain counters hit
    // exactly this regime (hundreds of updates on one filter).
    CountingBloomFilter f(4, 2);
    for (int i = 0; i < 256; ++i)
        f.observe(42);
    EXPECT_TRUE(f.mayContain(42));
    EXPECT_EQ(f.uniqueCount(), 1u);
    for (int i = 0; i < 300; ++i)  // push well past saturation
        f.observe(42);
    EXPECT_TRUE(f.mayContain(42));
    EXPECT_EQ(f.uniqueCount(), 1u);
}

TEST(BloomFilter, ResetClearsSaturatedCellsAndUniqueCount)
{
    CountingBloomFilter f(8, 3);
    for (int i = 0; i < 1000; ++i)
        f.observe(i);  // saturates every cell
    EXPECT_GT(f.uniqueCount(), 0u);
    f.reset();
    EXPECT_EQ(f.uniqueCount(), 0u);
    for (std::int64_t v : {0, 1, 42, 999})
        EXPECT_FALSE(f.mayContain(v));
    EXPECT_TRUE(f.observe(5));  // fresh again after the reset
}

TEST(BloomBank, PaperHardwareBudget)
{
    BloomFilterBank bank(512, 24, 6);
    EXPECT_EQ(bank.numFilters(), 512u);
    // 12288 bits = 1.5 KB (paper Section V.C).
    EXPECT_EQ(bank.sizeBits(), 12288u);
}

TEST(BloomBank, StableAddressToFilterMapping)
{
    BloomFilterBank bank(512, 24, 6);
    CountingBloomFilter &f1 = bank.filterFor(0xABC000);
    CountingBloomFilter &f2 = bank.filterFor(0xABC000);
    EXPECT_EQ(&f1, &f2);
    f1.observe(5);
    EXPECT_EQ(bank.filterFor(0xABC000).uniqueCount(), 1u);
    bank.resetFor(0xABC000);
    EXPECT_EQ(bank.filterFor(0xABC000).uniqueCount(), 0u);
}

TEST(BloomBank, DifferentAddressesUsuallyDifferentFilters)
{
    BloomFilterBank bank(512, 24, 6);
    int collisions = 0;
    for (int i = 0; i < 100; ++i) {
        if (&bank.filterFor(0x1000 + i * 64) == &bank.filterFor(0x9000))
            ++collisions;
    }
    EXPECT_LT(collisions, 5);
}

} // anonymous namespace
} // namespace ifp::syncmon
