/**
 * @file
 * Integration matrix: every benchmark under every policy must
 * complete and pass its own semantic validation (mutual exclusion,
 * barrier completion, balance conservation, ...). This is the broad
 * correctness net for the whole stack.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"
#include "workloads/queues.hh"

namespace ifp {
namespace {

using core::Policy;

struct MatrixCase
{
    std::string workload;
    Policy policy;
};

void
PrintTo(const MatrixCase &c, std::ostream *os)
{
    *os << "workload=" << c.workload << " ";
}


std::string
caseName(const ::testing::TestParamInfo<MatrixCase> &info)
{
    std::string name = info.param.workload + "_" +
                       core::policyName(info.param.policy);
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class WorkloadMatrix : public ::testing::TestWithParam<MatrixCase>
{
};

TEST_P(WorkloadMatrix, CompletesAndValidates)
{
    const MatrixCase &c = GetParam();
    core::RunResult result = test::runSmall(c.workload, c.policy);
    EXPECT_TRUE(result.completed)
        << c.workload << "/" << core::policyName(c.policy) << ": "
        << result.statusString();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.validated) << result.validationError;
    EXPECT_GT(result.atomicInstructions, 0u);
}

std::vector<MatrixCase>
allCases()
{
    std::vector<MatrixCase> cases;
    std::vector<std::string> workloads =
        workloads::heteroSyncAbbrevs();
    workloads.push_back("HT");
    workloads.push_back("BA");
    for (const std::string &q : workloads::queueAbbrevs())
        workloads.push_back(q);
    for (Policy policy :
         {Policy::Baseline, Policy::Sleep, Policy::Timeout,
          Policy::MonRSAll, Policy::MonRAll, Policy::MonNRAll,
          Policy::MonNROne, Policy::Awg, Policy::MinResume}) {
        for (const std::string &w : workloads)
            cases.push_back({w, policy});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarksAllPolicies, WorkloadMatrix,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(WorkloadRegistry, SuiteMatchesFigureAxis)
{
    auto names = workloads::heteroSyncAbbrevs();
    std::vector<std::string> expected = {
        "SPM_G", "SPMBO_G", "FAM_G", "SLM_G", "SPM_L", "SPMBO_L",
        "FAM_L", "SLM_L", "TB_LG", "LFTB_LG", "TBEX_LG", "LFTBEX_LG"};
    EXPECT_EQ(names, expected);
}

TEST(WorkloadRegistry, FullSuiteIncludesApps)
{
    auto suite = workloads::makeFullSuite();
    EXPECT_EQ(suite.size(), 17u);
    EXPECT_EQ(suite[12]->abbrev(), "HT");
    EXPECT_EQ(suite[13]->abbrev(), "BA");
    EXPECT_EQ(suite[14]->abbrev(), "MPMCQ");
    EXPECT_EQ(suite[15]->abbrev(), "PIPE");
    EXPECT_EQ(suite[16]->abbrev(), "WSD");
}

TEST(WorkloadRegistry, LookupIsCaseStable)
{
    EXPECT_EQ(workloads::makeWorkload("MPMCQ")->abbrev(), "MPMCQ");
    EXPECT_EQ(workloads::makeWorkload("mpmcq")->abbrev(), "MPMCQ");
    EXPECT_EQ(workloads::makeWorkload("spm_g")->abbrev(), "SPM_G");
    EXPECT_EQ(workloads::makeWorkload("Wsd")->abbrev(), "WSD");
}

TEST(WorkloadRegistryDeathTest, UnknownNameListsValidAbbrevs)
{
    // The error must carry the full valid-name list so a mistyped
    // --workload flag is self-correcting at the CLI.
    EXPECT_DEATH(workloads::makeWorkload("no-such-workload"),
                 "valid:.*SPM_G.*MPMCQ.*WSD");
}

TEST(WorkloadRegistry, Table2CharacteristicsArePopulated)
{
    for (const auto &w : workloads::makeFullSuite()) {
        workloads::Table2Row row = w->characteristics();
        EXPECT_EQ(row.abbrev, w->abbrev());
        EXPECT_FALSE(row.description.empty());
        EXPECT_FALSE(row.numSyncVars.empty());
        EXPECT_FALSE(row.waitersPerCond.empty());
        EXPECT_EQ(row.granularity, "n");
    }
}

TEST(WorkloadRegistry, ContextSizesSpanThePaperRange)
{
    // Figure 5: contexts roughly between 2 and 10 KB, and they vary
    // across benchmarks.
    core::GpuSystem system(test::testRunConfig());
    workloads::WorkloadParams params = test::smallParams();
    std::uint64_t min_ctx = ~0ULL, max_ctx = 0;
    for (const auto &w : workloads::makeFullSuite()) {
        isa::Kernel k = w->build(system, params);
        std::uint64_t ctx = k.contextBytes();
        min_ctx = std::min(min_ctx, ctx);
        max_ctx = std::max(max_ctx, ctx);
    }
    EXPECT_LE(min_ctx, 4 * 1024u);
    EXPECT_GE(max_ctx, 8 * 1024u);
    EXPECT_GE(min_ctx, 1024u);
    EXPECT_LE(max_ctx, 16 * 1024u);
}

TEST(Workloads, MutualExclusionHoldsUnderHeavyContention)
{
    // Stress variant: many iterations on one global lock.
    harness::Experiment exp;
    exp.workload = "SPM_G";
    exp.policy = core::Policy::Awg;
    exp.params = test::smallParams();
    exp.params.iters = 16;
    auto result = harness::runExperiment(exp);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.validated) << result.validationError;
}

TEST(Workloads, BarrierRoundsScaleLinearly)
{
    auto run_iters = [](unsigned iters) {
        harness::Experiment exp;
        exp.workload = "TB_LG";
        exp.policy = core::Policy::MonNRAll;
        exp.params = test::smallParams();
        exp.params.iters = iters;
        return harness::runExperiment(exp).gpuCycles;
    };
    sim::Cycles two = run_iters(2);
    sim::Cycles eight = run_iters(8);
    EXPECT_GT(eight, 2 * two);
    EXPECT_LT(eight, 8 * two);
}

TEST(Workloads, StyleFollowsPolicy)
{
    EXPECT_EQ(core::styleFor(Policy::Baseline),
              core::SyncStyle::Busy);
    EXPECT_EQ(core::styleFor(Policy::Sleep),
              core::SyncStyle::SleepBackoff);
    EXPECT_EQ(core::styleFor(Policy::MonRSAll),
              core::SyncStyle::WaitInstr);
    EXPECT_EQ(core::styleFor(Policy::MonRAll),
              core::SyncStyle::WaitInstr);
    EXPECT_EQ(core::styleFor(Policy::Timeout),
              core::SyncStyle::WaitAtomic);
    EXPECT_EQ(core::styleFor(Policy::Awg),
              core::SyncStyle::WaitAtomic);
}

TEST(Workloads, WaitingAtomicsOnlyInWaitAtomicStyles)
{
    auto baseline = test::runSmall("SPM_G", Policy::Baseline);
    EXPECT_EQ(baseline.waitingAtomics, 0u);
    EXPECT_EQ(baseline.armWaits, 0u);

    auto awg = test::runSmall("SPM_G", Policy::Awg);
    EXPECT_GT(awg.waitingAtomics, 0u);
    EXPECT_EQ(awg.armWaits, 0u);

    auto monr = test::runSmall("SPM_G", Policy::MonRAll);
    EXPECT_GT(monr.armWaits, 0u);
    EXPECT_EQ(monr.waitingAtomics, 0u);

    auto sleep = test::runSmall("SPM_G", Policy::Sleep);
    EXPECT_GT(sleep.sleeps, 0u);
}

} // anonymous namespace
} // namespace ifp
