/**
 * @file
 * Unit tests for the functional backing store, including the
 * mutation-counter semantics the deadlock detector depends on.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"

namespace ifp::mem {
namespace {

TEST(BackingStore, ReadsZeroInitially)
{
    BackingStore s;
    EXPECT_EQ(s.read(0x1000, 8), 0);
    EXPECT_EQ(s.read(0xFFFF'0000ULL, 8), 0);
    EXPECT_EQ(s.numPages(), 0u);
}

TEST(BackingStore, WriteReadRoundTrip)
{
    BackingStore s;
    s.write(0x2000, 0x1122334455667788LL, 8);
    EXPECT_EQ(s.read(0x2000, 8), 0x1122334455667788LL);
    // Partial reads see the little-endian low bytes.
    EXPECT_EQ(s.read(0x2000, 1), static_cast<MemValue>(
        static_cast<std::int8_t>(0x88)));
}

TEST(BackingStore, SignExtensionOnNarrowReads)
{
    BackingStore s;
    s.write(0x100, -1, 4);
    EXPECT_EQ(s.read(0x100, 4), -1);
    s.write(0x200, -2, 8);
    EXPECT_EQ(s.read(0x200, 8), -2);
}

TEST(BackingStore, NegativeValuesRoundTrip)
{
    BackingStore s;
    s.write(0x300, -123456789LL, 8);
    EXPECT_EQ(s.read(0x300, 8), -123456789LL);
}

TEST(BackingStore, MutationCounterOnlyAdvancesOnChange)
{
    BackingStore s;
    EXPECT_EQ(s.mutations(), 0u);
    s.write(0x100, 5, 8);
    EXPECT_EQ(s.mutations(), 1u);
    s.write(0x100, 5, 8);  // same value: spin loops must not count
    EXPECT_EQ(s.mutations(), 1u);
    s.write(0x100, 6, 8);
    EXPECT_EQ(s.mutations(), 2u);
}

TEST(BackingStore, AtomicRmwRoundTrip)
{
    BackingStore s;
    s.write(0x400, 10, 8);
    AtomicResult r = s.atomic(0x400, AtomicOpcode::Add, 5, 0, 8);
    EXPECT_EQ(r.oldValue, 10);
    EXPECT_EQ(r.newValue, 15);
    EXPECT_EQ(s.read(0x400, 8), 15);
}

TEST(BackingStore, FailedCasDoesNotMutate)
{
    BackingStore s;
    s.write(0x500, 1, 8);
    std::uint64_t before = s.mutations();
    AtomicResult r = s.atomic(0x500, AtomicOpcode::Cas, 9, 7, 8);
    EXPECT_FALSE(r.wrote);
    EXPECT_EQ(s.read(0x500, 8), 1);
    EXPECT_EQ(s.mutations(), before);
}

TEST(BackingStore, ExchangeOfSameValueDoesNotMutate)
{
    // A failed test-and-set (exchanging 1 over 1) must not look like
    // progress to the deadlock detector.
    BackingStore s;
    s.write(0x600, 1, 8);
    std::uint64_t before = s.mutations();
    s.atomic(0x600, AtomicOpcode::Exch, 1, 0, 8);
    EXPECT_EQ(s.mutations(), before);
}

TEST(BackingStore, IndependentAddresses)
{
    BackingStore s;
    s.write(0x1000, 1, 8);
    s.write(0x1008, 2, 8);
    s.write(0x2000, 3, 8);
    EXPECT_EQ(s.read(0x1000, 8), 1);
    EXPECT_EQ(s.read(0x1008, 8), 2);
    EXPECT_EQ(s.read(0x2000, 8), 3);
}

TEST(BackingStore, SparsePageAllocation)
{
    BackingStore s;
    s.write(0x0, 1, 8);
    s.write(0x10'0000, 1, 8);
    EXPECT_EQ(s.numPages(), 2u);
}

} // anonymous namespace
} // namespace ifp::mem
