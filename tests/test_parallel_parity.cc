/**
 * @file
 * Serial/sharded parity suite (ctest -L parity).
 *
 * The PDES core's determinism contract, enforced end-to-end: for any
 * shards >= 2 setting the domain decomposition is fixed, so every
 * RunResult field, every stats-JSON byte and every trace byte must be
 * identical across shard counts and executor thread counts — thread
 * scheduling may never leak into simulated results. Against the
 * legacy single-queue core the domain core is macro-equivalent
 * (completion, verdict, validation): the canonical (tick, domain,
 * sequence) merge is a valid same-tick event order but not always the
 * seed's insertion order, so byte-level equality is only guaranteed
 * within the domain core (see DESIGN.md §9).
 *
 * The matrix covers the full 12-workload suite under the policies the
 * paper centers on ({Baseline, Timeout, AWG}) crossed with two fault
 * presets, so cross-domain traffic is exercised under CU churn and
 * under combined pressure.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fault_plan.hh"
#include "harness/runner.hh"
#include "test_helpers.hh"
#include "workloads/queues.hh"

namespace ifp {
namespace {

using core::Policy;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing artifact " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

struct Artifacts
{
    core::RunResult result;
    std::string statsJson;
    std::string trace;
    bool usedDomainCore = false;
    unsigned executorThreads = 0;
};

/** Run one (workload, policy, preset) point at a given shard count. */
Artifacts
runPoint(const std::string &workload, Policy policy,
         const std::string &preset, unsigned shards,
         bool want_trace = false)
{
    // ctest -j runs many filtered instances of this binary at once;
    // the pid keeps their scratch artifacts from colliding in TempDir.
    static int unique = 0;
    std::string base = ::testing::TempDir() + "parity_" +
                       std::to_string(static_cast<long>(::getpid())) + "_" +
                       std::to_string(++unique) + "_s" +
                       std::to_string(shards);

    harness::Experiment exp;
    exp.workload = workload;
    exp.policy = policy;
    exp.params = test::smallParams();
    exp.runCfg.faultPlan = core::faultPlanPreset(preset);
    exp.runCfg.shards = shards;
    exp.observe.statsJsonPath = base + ".stats.json";
    if (want_trace)
        exp.observe.traceOutPath = base + ".trace.json";

    Artifacts a;
    a.result = harness::runExperimentWithSystem(
        exp, [&](core::GpuSystem &system) {
            if (sim::DomainScheduler *s = system.domainScheduler()) {
                a.usedDomainCore = true;
                a.executorThreads = s->threads();
            }
        });
    a.statsJson = slurp(exp.observe.statsJsonPath);
    if (want_trace)
        a.trace = slurp(exp.observe.traceOutPath);
    std::remove(exp.observe.statsJsonPath.c_str());
    if (want_trace)
        std::remove(exp.observe.traceOutPath.c_str());
    return a;
}

/** Every RunResult field that simulation determinism covers. */
void
expectIdenticalResults(const core::RunResult &a,
                       const core::RunResult &b, const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.deadlocked, b.deadlocked);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.runTicks, b.runTicks);
    EXPECT_EQ(a.gpuCycles, b.gpuCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.atomicInstructions, b.atomicInstructions);
    EXPECT_EQ(a.waitingAtomics, b.waitingAtomics);
    EXPECT_EQ(a.armWaits, b.armWaits);
    EXPECT_EQ(a.sleeps, b.sleeps);
    EXPECT_EQ(a.totalWgExecCycles, b.totalWgExecCycles);
    EXPECT_EQ(a.totalWgWaitCycles, b.totalWgWaitCycles);
    EXPECT_EQ(a.wgLifetimeCycles, b.wgLifetimeCycles);
    EXPECT_EQ(a.contextSaves, b.contextSaves);
    EXPECT_EQ(a.contextRestores, b.contextRestores);
    EXPECT_EQ(a.condResumesAll, b.condResumesAll);
    EXPECT_EQ(a.condResumesOne, b.condResumesOne);
    EXPECT_EQ(a.cpRescues, b.cpRescues);
    EXPECT_EQ(a.forcedPreemptions, b.forcedPreemptions);
    EXPECT_EQ(a.maxConditions, b.maxConditions);
    EXPECT_EQ(a.maxWaiters, b.maxWaiters);
    EXPECT_EQ(a.maxMonitoredLines, b.maxMonitoredLines);
    EXPECT_EQ(a.maxLogEntries, b.maxLogEntries);
    EXPECT_EQ(a.maxSpilledConds, b.maxSpilledConds);
    EXPECT_EQ(a.maxContextStoreBytes, b.maxContextStoreBytes);
    EXPECT_EQ(a.spills, b.spills);
    EXPECT_EQ(a.logFullRetries, b.logFullRetries);
    EXPECT_EQ(a.droppedResumes, b.droppedResumes);
    EXPECT_EQ(a.delayedResumes, b.delayedResumes);
    EXPECT_EQ(a.lostWakeups.size(), b.lostWakeups.size());
    EXPECT_EQ(a.faultRecoveries.size(), b.faultRecoveries.size());
    EXPECT_EQ(a.injectedFaults, b.injectedFaults);
    EXPECT_EQ(a.wgCompletionSpreadCycles, b.wgCompletionSpreadCycles);
    EXPECT_EQ(a.maxWgWaitCycles, b.maxWgWaitCycles);
    EXPECT_EQ(a.hostEvents, b.hostEvents);
    EXPECT_EQ(a.memRequests, b.memRequests);
    EXPECT_EQ(a.validated, b.validated);
    EXPECT_EQ(a.validationError, b.validationError);
    for (std::size_t r = 0; r < sim::numStallReasons; ++r)
        EXPECT_EQ(a.wgCycleBreakdown[r], b.wgCycleBreakdown[r]);
}

struct ParityCase
{
    std::string workload;
    Policy policy;
    std::string preset;
};

std::string
parityName(const ::testing::TestParamInfo<ParityCase> &info)
{
    std::string name = info.param.workload + "_" +
                       core::policyName(info.param.policy) + "_" +
                       info.param.preset;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class ShardParity : public ::testing::TestWithParam<ParityCase>
{
};

TEST_P(ShardParity, ShardCountsAreByteIdenticalAndLegacyMacroEquivalent)
{
    const ParityCase &c = GetParam();

    Artifacts legacy = runPoint(c.workload, c.policy, c.preset, 1);
    Artifacts s2 = runPoint(c.workload, c.policy, c.preset, 2);
    Artifacts s4 = runPoint(c.workload, c.policy, c.preset, 4);

    EXPECT_FALSE(legacy.usedDomainCore);
    EXPECT_TRUE(s2.usedDomainCore);
    EXPECT_TRUE(s4.usedDomainCore);

    // The hard guarantee: shard count never changes a single byte.
    expectIdenticalResults(s2.result, s4.result, "shards 2 vs 4");
    EXPECT_EQ(s2.statsJson, s4.statsJson)
        << "stats-JSON bytes diverge between shard counts";

    // Against the legacy core: same outcome, same validation.
    EXPECT_EQ(legacy.result.completed, s4.result.completed);
    EXPECT_EQ(legacy.result.deadlocked, s4.result.deadlocked);
    EXPECT_EQ(legacy.result.verdict, s4.result.verdict);
    EXPECT_EQ(legacy.result.validated, s4.result.validated);
    EXPECT_EQ(legacy.result.injectedFaults, s4.result.injectedFaults);
}

std::vector<ParityCase>
parityMatrix()
{
    std::vector<ParityCase> cases;
    for (const std::string &w : workloads::heteroSyncAbbrevs()) {
        for (Policy p : {Policy::Baseline, Policy::Timeout, Policy::Awg})
            for (const char *f : {"cu-churn", "kitchen-sink"})
                cases.push_back({w, p, f});
    }
    // The queue family's data-condition waits ride the same parity
    // contract; the waiting-atomic policies are the interesting ones
    // (Busy parity is already covered twelve-fold above).
    for (const std::string &w : workloads::queueAbbrevs()) {
        for (Policy p : {Policy::Timeout, Policy::Awg})
            for (const char *f : {"cu-churn", "kitchen-sink"})
                cases.push_back({w, p, f});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(FullSuite, ShardParity,
                         ::testing::ValuesIn(parityMatrix()),
                         parityName);

/** Scoped environment override that restores the old value. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : varName(name)
    {
        if (const char *old = std::getenv(name)) {
            hadOld = true;
            oldValue = old;
        }
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadOld)
            ::setenv(varName.c_str(), oldValue.c_str(), 1);
        else
            ::unsetenv(varName.c_str());
    }

  private:
    std::string varName;
    bool hadOld = false;
    std::string oldValue;
};

// Forcing real executor threads (bypassing the hardware-budget clamp)
// must not change a byte either: on a small CI box the clamp would
// otherwise reduce every run to one executor and the test would prove
// nothing about cross-thread determinism.
TEST(ShardParityThreads, ForcedExecutorThreadsAreByteIdentical)
{
    Artifacts clamped =
        runPoint("TB_LG", Policy::Awg, "kitchen-sink", 4, true);

    ScopedEnv no_clamp("IFP_SHARDS_NO_CLAMP", "1");
    Artifacts threaded =
        runPoint("TB_LG", Policy::Awg, "kitchen-sink", 5, true);

    EXPECT_TRUE(threaded.usedDomainCore);
    EXPECT_EQ(threaded.executorThreads, 5u);
    expectIdenticalResults(clamped.result, threaded.result,
                           "clamped vs forced threads");
    EXPECT_EQ(clamped.statsJson, threaded.statsJson);
    EXPECT_EQ(clamped.trace, threaded.trace)
        << "Chrome-trace bytes diverge under forced threads";
}

// The merged Chrome trace must be byte-identical across shard counts
// (the TraceSink is root-confined; see sim/trace_sink.hh).
TEST(ShardParityTrace, TraceBytesIdenticalAcrossShardCounts)
{
    Artifacts s2 = runPoint("SPM_G", Policy::Awg, "cu-churn", 2, true);
    Artifacts s4 = runPoint("SPM_G", Policy::Awg, "cu-churn", 4, true);
    EXPECT_FALSE(s2.trace.empty());
    EXPECT_EQ(s2.trace, s4.trace);
}

// RunConfig::shards == 0 resolves through IFP_RUN_SHARDS (default 1),
// mirroring the IFP_BENCH_JOBS pattern of the sweep runner.
TEST(ShardEnvResolution, DefaultsToSerialCore)
{
    ScopedEnv unset("IFP_RUN_SHARDS", nullptr);
    EXPECT_EQ(harness::runShardsFromEnv(), 1u);

    harness::Experiment exp;
    exp.workload = "SPM_G";
    exp.policy = Policy::Awg;
    exp.params = test::smallParams();
    bool domain_core = false;
    harness::runExperimentWithSystem(exp, [&](core::GpuSystem &system) {
        domain_core = system.domainScheduler() != nullptr;
        EXPECT_EQ(system.config().shards, 1u);
    });
    EXPECT_FALSE(domain_core);
}

TEST(ShardEnvResolution, EnvEnablesDomainCore)
{
    ScopedEnv four("IFP_RUN_SHARDS", "4");
    EXPECT_EQ(harness::runShardsFromEnv(), 4u);

    harness::Experiment exp;
    exp.workload = "SPM_G";
    exp.policy = Policy::Awg;
    exp.params = test::smallParams();
    bool domain_core = false;
    harness::runExperimentWithSystem(exp, [&](core::GpuSystem &system) {
        domain_core = system.domainScheduler() != nullptr;
        EXPECT_EQ(system.config().shards, 4u);
    });
    EXPECT_TRUE(domain_core);
}

TEST(ShardEnvResolution, InvalidValuesFallBackToSerial)
{
    ScopedEnv bogus("IFP_RUN_SHARDS", "zero");
    EXPECT_EQ(harness::runShardsFromEnv(), 1u);
    ScopedEnv negative("IFP_RUN_SHARDS", "-2");
    EXPECT_EQ(harness::runShardsFromEnv(), 1u);
}

// An explicit Experiment-level shard count wins over the environment.
TEST(ShardEnvResolution, ExplicitConfigBeatsEnv)
{
    ScopedEnv four("IFP_RUN_SHARDS", "4");
    harness::Experiment exp;
    exp.workload = "SPM_G";
    exp.policy = Policy::Awg;
    exp.params = test::smallParams();
    exp.runCfg.shards = 1;
    harness::runExperimentWithSystem(exp, [&](core::GpuSystem &system) {
        EXPECT_EQ(system.domainScheduler(), nullptr);
        EXPECT_EQ(system.config().shards, 1u);
    });
}

} // anonymous namespace
} // namespace ifp
