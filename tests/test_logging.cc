/**
 * @file
 * Unit tests for the trace-flag facility and the waiting-CAS
 * instruction end-to-end (the paper's "CAS is a perfect candidate
 * for a waiting atomic").
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "test_helpers.hh"

namespace ifp {
namespace {

TEST(DebugFlags, EnableDisable)
{
    EXPECT_FALSE(sim::debugFlagEnabled("TestFlag"));
    sim::setDebugFlag("TestFlag");
    EXPECT_TRUE(sim::debugFlagEnabled("TestFlag"));
    sim::clearDebugFlag("TestFlag");
    EXPECT_FALSE(sim::debugFlagEnabled("TestFlag"));
}

TEST(DebugFlags, FlagsAreIndependent)
{
    sim::setDebugFlag("A");
    EXPECT_TRUE(sim::debugFlagEnabled("A"));
    EXPECT_FALSE(sim::debugFlagEnabled("B"));
    sim::clearDebugFlag("A");
}

TEST(DebugFlags, TracePrintfIsNoOpWhenDisabled)
{
    // Must not crash or emit with the flag off (output goes to
    // stderr; here we only check it does not blow up).
    sim::tracePrintf("DisabledFlag", "value=%d", 42);
    sim::setDebugFlag("EnabledFlag");
    sim::tracePrintf("EnabledFlag", "value=%d", 42);
    sim::clearDebugFlag("EnabledFlag");
}

TEST(TraceTickScope, InstallsAndRestoresOnDestruction)
{
    EXPECT_EQ(sim::traceCurrentTick(), 0u);
    std::uint64_t ticks = 42;
    {
        sim::TraceTickScope scope(&ticks);
        EXPECT_EQ(sim::traceCurrentTick(), 42u);
        ticks = 43;
        EXPECT_EQ(sim::traceCurrentTick(), 43u);
    }
    EXPECT_EQ(sim::traceCurrentTick(), 0u);
}

TEST(TraceTickScope, NestedScopesRestoreTheOuterSource)
{
    std::uint64_t outer = 1, inner = 2;
    sim::TraceTickScope outer_scope(&outer);
    {
        sim::TraceTickScope inner_scope(&inner);
        EXPECT_EQ(sim::traceCurrentTick(), 2u);
    }
    EXPECT_EQ(sim::traceCurrentTick(), 1u);
}

TEST(WaitingCas, ProducerConsumerViaWaitingCompareAndSwap)
{
    // Consumer claims a token with a *waiting CAS* (expected value is
    // the CAS compare operand): wait until the flag holds 7, then
    // atomically swap in 9.
    core::GpuSystem system(test::testRunConfig());
    mem::Addr flag = system.allocate(64);
    mem::Addr out = system.allocate(64);

    isa::KernelBuilder b;
    b.movi(16, static_cast<std::int64_t>(flag));
    isa::Label consumer = b.label();
    isa::Label done = b.label();
    b.bz(isa::rWgId, consumer);

    // Producer (wg1): publish 7 after some work.
    b.valu(2000);
    b.movi(17, 7);
    b.atom(20, mem::AtomicOpcode::Exch, 16, 0, 17, 0, false, true);
    b.br(done);

    // Consumer (wg0): waiting CAS 7 -> 9.
    b.bind(consumer);
    b.movi(17, 9);   // swap-in value
    b.movi(18, 7);   // compare / expected
    isa::Label retry = b.here();
    b.atomWait(20, mem::AtomicOpcode::Cas, 16, 0, 17, 18, true);
    b.cmpEq(21, 20, 18);
    b.bz(21, retry);
    b.movi(22, static_cast<std::int64_t>(out));
    b.st(22, 20);   // record the observed old value (7)

    b.bind(done);
    b.halt();

    isa::Kernel k = test::makeTestKernel(b, 2);
    auto result = system.run(k);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(out, 8), 7);
    EXPECT_EQ(system.memory().read(flag, 8), 9);  // swap happened
    EXPECT_GT(result.waitingAtomics, 0u);
}

TEST(WaitingCas, FailedCasDoesNotModifyMemory)
{
    // A waiting CAS never "half-fires": until the expected value is
    // observed, memory is untouched.
    core::GpuSystem system(test::testRunConfig());
    mem::Addr flag = system.allocate(64);
    system.memory().write(flag, 5, 8);

    isa::KernelBuilder b;
    b.movi(16, static_cast<std::int64_t>(flag));
    b.movi(17, 9);
    b.movi(18, 5);
    b.atomWait(20, mem::AtomicOpcode::Cas, 16, 0, 17, 18, true);
    b.halt();

    auto result = system.run(test::makeTestKernel(b, 1));
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(flag, 8), 9);  // matched: swapped
}

} // anonymous namespace
} // namespace ifp
