/**
 * @file
 * Tests for the SyncMon controller: condition registration, the
 * resume policies of each mode, AWG's predictor, spilling, and stall
 * timeouts. Drives a real L2 so ordering matches the system.
 */

#include <gtest/gtest.h>

#include "cp/command_processor.hh"
#include "mem/dram.hh"
#include "mem/l2_cache.hh"
#include "sim/event_queue.hh"
#include "syncmon/sync_monitor.hh"

namespace ifp::syncmon {
namespace {

class StubScheduler : public gpu::WgScheduler
{
  public:
    bool hasStarvedWork() const override { return starved; }
    void resumeWg(int wg_id) override { resumed.push_back(wg_id); }
    unsigned numWaitingWgs() const override { return 0; }

    bool starved = false;
    std::vector<int> resumed;
};

struct SyncMonFixture : public ::testing::Test
{
    void
    build(SyncMonMode mode, SyncMonConfig cfg = SyncMonConfig{})
    {
        dram = std::make_unique<mem::Dram>("dram", eq,
                                           mem::DramConfig{});
        l2 = std::make_unique<mem::L2Cache>("l2", eq,
                                            mem::L2Config{}, *dram,
                                            store, pool);
        dma = std::make_unique<mem::DmaEngine>("dma", eq,
                                               mem::DmaConfig{});
        cp = std::make_unique<cp::CommandProcessor>(
            "cp", eq, cp::CpConfig{}, *dma, store);
        cp->setScheduler(&sched);
        mon = std::make_unique<SyncMonController>("mon", eq, mode,
                                                  cfg, *l2, store,
                                                  *cp);
        mon->setScheduler(&sched);
        cp->setSpillObserver(mon.get());
    }

    /** Issue a waiting atomic and run to completion. */
    mem::MemRequestPtr
    waitingLoad(mem::Addr addr, mem::MemValue expected, int wg)
    {
        mem::MemRequestPtr req = pool.allocate();
        req->op = mem::MemOp::Atomic;
        req->aop = mem::AtomicOpcode::Load;
        req->addr = addr;
        req->waiting = true;
        req->expected = expected;
        req->wgId = wg;
        l2->access(req);
        settle();
        return req;
    }

    void
    atomicStore(mem::Addr addr, mem::MemValue value)
    {
        mem::MemRequestPtr req = pool.allocate();
        req->op = mem::MemOp::Atomic;
        req->aop = mem::AtomicOpcode::Store;
        req->addr = addr;
        req->operand = value;
        req->wgId = 99;
        l2->access(req);
        settle();
    }

    void
    armWait(mem::Addr addr, mem::MemValue expected, int wg)
    {
        mem::MemRequestPtr req = pool.allocate();
        req->op = mem::MemOp::ArmWait;
        req->addr = addr;
        req->expected = expected;
        req->wgId = wg;
        l2->access(req);
        settle();
    }

    /** Bounded settling: housekeeping may re-schedule indefinitely. */
    void
    settle(sim::Tick ticks = 200'000'000)
    {
        eq.simulate(eq.curTick() + ticks);
    }

    mem::MemRequestPool pool;
    sim::EventQueue eq;
    mem::BackingStore store;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::L2Cache> l2;
    std::unique_ptr<mem::DmaEngine> dma;
    std::unique_ptr<cp::CommandProcessor> cp;
    std::unique_ptr<SyncMonController> mon;
    StubScheduler sched;
};

TEST_F(SyncMonFixture, FailedWaitRegistersAndMonitors)
{
    build(SyncMonMode::MonNRAll);
    store.write(0x1000, 0, 8);
    auto req = waitingLoad(0x1000, /*expected=*/7, /*wg=*/1);
    EXPECT_TRUE(req->waitFailed);
    EXPECT_EQ(req->decision.kind, mem::WaitKind::Stall);
    EXPECT_TRUE(l2->isMonitored(0x1000));
    EXPECT_EQ(mon->maxConditions(), 1u);
    EXPECT_EQ(mon->maxWaiters(), 1u);
}

TEST_F(SyncMonFixture, MonNrAllResumesAllOnConditionMet)
{
    build(SyncMonMode::MonNRAll);
    for (int wg = 0; wg < 3; ++wg)
        waitingLoad(0x1000, 7, wg);
    atomicStore(0x1000, 7);
    ASSERT_EQ(sched.resumed.size(), 3u);
}

TEST_F(SyncMonFixture, MonNrAllIgnoresNonMatchingUpdates)
{
    build(SyncMonMode::MonNRAll);
    waitingLoad(0x1000, 7, 1);
    atomicStore(0x1000, 6);
    EXPECT_TRUE(sched.resumed.empty());
    atomicStore(0x1000, 7);
    EXPECT_EQ(sched.resumed.size(), 1u);
}

TEST_F(SyncMonFixture, MonNrOneResumesOneAtATime)
{
    build(SyncMonMode::MonNROne);
    for (int wg = 0; wg < 3; ++wg)
        waitingLoad(0x2000, 1, wg);
    atomicStore(0x2000, 1);
    ASSERT_EQ(sched.resumed.size(), 1u);
    EXPECT_EQ(sched.resumed[0], 0);  // FIFO order
    // A later matching update resumes the next waiter.
    atomicStore(0x2000, 0);
    atomicStore(0x2000, 1);
    EXPECT_EQ(sched.resumed.size(), 2u);
    EXPECT_EQ(sched.resumed[1], 1);
}

TEST_F(SyncMonFixture, MonRsSporadicResumesOnAnyAccess)
{
    build(SyncMonMode::MonRSAll);
    armWait(0x3000, 5, 1);
    armWait(0x3000, 6, 2);
    EXPECT_TRUE(l2->isMonitored(0x3000));
    // A non-matching update still notifies (sporadic, no check).
    atomicStore(0x3000, 1);
    EXPECT_EQ(sched.resumed.size(), 2u);
}

TEST_F(SyncMonFixture, MonRChecksConditionOnUpdate)
{
    build(SyncMonMode::MonRAll);
    armWait(0x3000, 5, 1);
    atomicStore(0x3000, 4);
    EXPECT_TRUE(sched.resumed.empty());
    atomicStore(0x3000, 5);
    EXPECT_EQ(sched.resumed.size(), 1u);
}

TEST_F(SyncMonFixture, AwgResumesOneForMutexPattern)
{
    build(SyncMonMode::Awg);
    // Lock-like: values alternate 0/1 -> at most 2 uniques.
    store.write(0x4000, 1, 8);
    for (int wg = 0; wg < 4; ++wg)
        waitingLoad(0x4000, 0, wg);
    atomicStore(0x4000, 1);
    atomicStore(0x4000, 0);  // release: condition met
    ASSERT_EQ(sched.resumed.size(), 1u);
    EXPECT_DOUBLE_EQ(mon->stats().scalar("predictOne").value(), 1.0);
}

TEST_F(SyncMonFixture, AwgResumesAllForBarrierPattern)
{
    build(SyncMonMode::Awg);
    // Register waiters first so the monitored line observes the
    // arrival-counter updates (values 1..6 on the same line).
    for (int wg = 0; wg < 4; ++wg)
        waitingLoad(0x5008, 9, wg);
    for (int v = 1; v <= 6; ++v)
        atomicStore(0x5000, v);  // same line, different word
    atomicStore(0x5008, 9);  // release
    ASSERT_EQ(sched.resumed.size(), 4u);
    EXPECT_DOUBLE_EQ(mon->stats().scalar("predictAll").value(), 1.0);
}

TEST_F(SyncMonFixture, AwgStallTimeoutSwitchesOnlyWhenStarved)
{
    build(SyncMonMode::Awg);
    mem::WaitDecision d = mon->onStallTimeout(1, 0x100, 5);
    EXPECT_EQ(d.kind, mem::WaitKind::Proceed);
    sched.starved = true;
    d = mon->onStallTimeout(1, 0x100, 5);
    EXPECT_EQ(d.kind, mem::WaitKind::Switch);
}

TEST_F(SyncMonFixture, NonAwgStallTimeoutResumes)
{
    build(SyncMonMode::MonNRAll);
    waitingLoad(0x1000, 7, 1);
    mem::WaitDecision d = mon->onStallTimeout(1, 0x1000, 7);
    EXPECT_EQ(d.kind, mem::WaitKind::Proceed);
    // The waiter registration was dropped: a met condition later
    // resumes nobody.
    atomicStore(0x1000, 7);
    EXPECT_TRUE(sched.resumed.empty());
}

TEST_F(SyncMonFixture, SwitchDecisionWhenWorkIsStarved)
{
    build(SyncMonMode::MonNRAll);
    sched.starved = true;
    auto req = waitingLoad(0x1000, 7, 1);
    EXPECT_EQ(req->decision.kind, mem::WaitKind::Switch);
}

TEST_F(SyncMonFixture, DuplicateRegistrationDoesNotGrowTheList)
{
    build(SyncMonMode::MonNRAll);
    waitingLoad(0x1000, 7, 1);
    waitingLoad(0x1000, 7, 1);  // Mesa retry re-registers
    EXPECT_EQ(mon->maxWaiters(), 1u);
    atomicStore(0x1000, 7);
    EXPECT_EQ(sched.resumed.size(), 1u);
}

TEST_F(SyncMonFixture, SetConflictSpillsToMonitorLog)
{
    SyncMonConfig tiny;
    tiny.sets = 1;
    tiny.ways = 1;
    build(SyncMonMode::MonNRAll, tiny);
    store.write(0x1000, 0, 8);
    store.write(0x2000, 0, 8);
    waitingLoad(0x1000, 7, 1);
    auto req = waitingLoad(0x2000, 8, 2);  // conflicts: spills
    EXPECT_NE(req->decision.kind, mem::WaitKind::Retry);
    EXPECT_DOUBLE_EQ(mon->stats().scalar("spills").value(), 1.0);
    // The spilled condition is honored by the CP when met.
    store.write(0x2000, 8, 8);
    waitingLoad(0x3000, 1, 3);  // keeps the system busy
    settle();
    bool resumed_2 = false;
    for (int wg : sched.resumed)
        resumed_2 |= wg == 2;
    EXPECT_TRUE(resumed_2);
}

TEST_F(SyncMonFixture, WaiterListExhaustionSpills)
{
    SyncMonConfig tiny;
    tiny.waitingListCapacity = 2;
    build(SyncMonMode::MonNRAll, tiny);
    waitingLoad(0x1000, 7, 1);
    waitingLoad(0x1000, 7, 2);
    waitingLoad(0x1000, 7, 3);  // no list node: spilled
    EXPECT_DOUBLE_EQ(mon->stats().scalar("spills").value(), 1.0);
}

TEST_F(SyncMonFixture, MonitoredBitClearsLazilyAfterRetire)
{
    build(SyncMonMode::MonNRAll);
    waitingLoad(0x1000, 7, 1);
    // Retire the condition, but only simulate a short distance so the
    // idle-cleanup timer has not fired yet.
    mem::MemRequestPtr req = pool.allocate();
    req->op = mem::MemOp::Atomic;
    req->aop = mem::AtomicOpcode::Store;
    req->addr = 0x1000;
    req->operand = 7;
    l2->access(req);
    eq.simulate(eq.curTick() + 1000 * l2->config().clockPeriod);
    ASSERT_EQ(sched.resumed.size(), 1u);
    EXPECT_TRUE(l2->isMonitored(0x1000));  // lazy cleanup grace
    settle();                              // let the idle timer fire
    EXPECT_FALSE(l2->isMonitored(0x1000));
}

TEST_F(SyncMonFixture, MinResumeOnlyWakesWaitersWhoseConditionHolds)
{
    build(SyncMonMode::MinResume);
    store.write(0x6000, 0, 8);
    waitingLoad(0x6000, 3, 1);
    waitingLoad(0x6000, 4, 2);
    atomicStore(0x6000, 3);
    ASSERT_EQ(sched.resumed.size(), 1u);
    EXPECT_EQ(sched.resumed[0], 1);
    atomicStore(0x6000, 4);
    ASSERT_EQ(sched.resumed.size(), 2u);
    EXPECT_EQ(sched.resumed[1], 2);
}

TEST_F(SyncMonFixture, SpillKeepsLineAccountingAndPredictorState)
{
    // Regression: a condition that spills to the Monitor Log must
    // keep its line's refcount, monitored bit and AWG Bloom state
    // alive until the CP resolves it. (Both used to be torn down by
    // the idle-cleanup timer as soon as the cached conditions
    // retired, which silently disabled the predictor for the spill's
    // whole log residency.)
    SyncMonConfig tiny;
    tiny.waitingListCapacity = 1;
    build(SyncMonMode::Awg, tiny);
    store.write(0xA000, 0, 8);
    waitingLoad(0xA000, 100, 1);  // cached condition
    waitingLoad(0xA000, 200, 2);  // list full: spills to the log
    EXPECT_DOUBLE_EQ(mon->stats().scalar("spills").value(), 1.0);
    EXPECT_EQ(mon->lineCondCount(0xA000), 2u);

    // The spilled record reached global memory intact: the timed
    // append must not clobber its own record words (its first word
    // is the monitored address, not the expected value).
    mem::Addr rec = cp->monitorLog().baseAddr();
    EXPECT_EQ(store.read(rec, 8), 0xA000);
    EXPECT_EQ(store.read(rec + 8, 8), 200);
    EXPECT_EQ(store.read(rec + 16, 8), 2);

    // Accumulate predictor observations on the monitored line.
    for (int v = 1; v <= 5; ++v)
        atomicStore(0xA000, v);
    unsigned uniques = mon->bloomUniquesFor(0xA000);
    EXPECT_GE(uniques, 3u);

    // Retire the cached condition; only the spilled one remains.
    atomicStore(0xA000, 100);
    EXPECT_EQ(mon->lineCondCount(0xA000), 1u);
    settle();  // well past the idle-cleanup window
    EXPECT_TRUE(l2->isMonitored(0xA000));
    EXPECT_GE(mon->bloomUniquesFor(0xA000), uniques);

    // Meet the spilled condition: the CP's housekeeping check (not a
    // rescue timeout) must resume the waiter and release the line.
    atomicStore(0xA000, 200);
    waitingLoad(0xB000, 1, 7);  // keeps the system busy
    settle();
    bool resumed_2 = false;
    for (int wg : sched.resumed)
        resumed_2 |= wg == 2;
    EXPECT_TRUE(resumed_2);
    EXPECT_GE(cp->stats().scalar("spilledResumes").value(), 1.0);
    EXPECT_EQ(mon->lineCondCount(0xA000), 0u);

    // Only now may the lazy cleanup fire and recycle the predictor.
    settle();
    EXPECT_FALSE(l2->isMonitored(0xA000));
    EXPECT_EQ(mon->bloomUniquesFor(0xA000), 0u);
    EXPECT_GE(mon->stats().scalar("bloomResets").value(), 1.0);
}

TEST_F(SyncMonFixture, AwgTracksMispredictedResumes)
{
    build(SyncMonMode::Awg);
    store.write(0x4000, 1, 8);
    for (int wg = 0; wg < 4; ++wg)
        waitingLoad(0x4000, 0, wg);
    atomicStore(0x4000, 1);
    atomicStore(0x4000, 0);  // release: mutex-like, resume-one
    ASSERT_EQ(sched.resumed.size(), 1u);
    int winner = sched.resumed[0];
    EXPECT_DOUBLE_EQ(mon->stats().scalar("predictedResumes").value(),
                     1.0);
    EXPECT_DOUBLE_EQ(
        mon->stats().scalar("mispredictedResumes").value(), 0.0);

    // Another WG takes the lock before the resumed waiter's atomic
    // re-executes; the waiter re-registers the same condition, which
    // is exactly a mispredicted resume.
    atomicStore(0x4000, 1);
    waitingLoad(0x4000, 0, winner);
    EXPECT_DOUBLE_EQ(
        mon->stats().scalar("mispredictedResumes").value(), 1.0);
}

TEST_F(SyncMonFixture, HardwareBudgetMatchesPaper)
{
    build(SyncMonMode::Awg);
    EXPECT_EQ(mon->conditionCacheBits(), 26112u);
    EXPECT_EQ(mon->bloomBits(), 12288u);
}

} // anonymous namespace
} // namespace ifp::syncmon
