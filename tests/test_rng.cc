/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

namespace ifp::sim {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.uniform(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, RoughUniformity)
{
    Rng r(13);
    std::array<int, 8> buckets{};
    constexpr int n = 80000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.uniform(8)];
    for (int count : buckets) {
        EXPECT_GT(count, n / 8 - n / 40);
        EXPECT_LT(count, n / 8 + n / 40);
    }
}

TEST(Rng, ProducesManyDistinctValues)
{
    Rng r(17);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.next());
    EXPECT_EQ(seen.size(), 1000u);
}

} // anonymous namespace
} // namespace ifp::sim
