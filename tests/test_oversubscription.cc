/**
 * @file
 * The paper's oversubscribed experiment (Section VI): mid-run loss of
 * a CU. Policies without WG swap-in firmware (Baseline, Sleep) must
 * deadlock; every monitor/timeout policy must recover, complete and
 * still satisfy the workload's semantic validation.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace ifp {
namespace {

using core::Policy;

struct OverCase
{
    std::string workload;
    Policy policy;
    bool expectDeadlock;
};

void
PrintTo(const OverCase &c, std::ostream *os)
{
    *os << "workload=" << c.workload << " " << "expectDeadlock=" << c.expectDeadlock << " ";
}


std::string
overName(const ::testing::TestParamInfo<OverCase> &info)
{
    std::string name = info.param.workload + "_" +
                       core::policyName(info.param.policy);
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class Oversubscribed : public ::testing::TestWithParam<OverCase>
{
};

TEST_P(Oversubscribed, MatchesExpectedOutcome)
{
    const OverCase &c = GetParam();
    core::RunResult result =
        test::runSmall(c.workload, c.policy, /*oversubscribed=*/true);
    if (c.expectDeadlock) {
        EXPECT_TRUE(result.deadlocked)
            << c.workload << "/" << core::policyName(c.policy)
            << " was expected to deadlock but "
            << (result.completed ? "completed" : "timed out");
    } else {
        EXPECT_TRUE(result.completed)
            << c.workload << "/" << core::policyName(c.policy) << ": "
            << result.statusString();
        EXPECT_TRUE(result.validated) << result.validationError;
    }
}

std::vector<OverCase>
overCases()
{
    std::vector<OverCase> cases;
    // A contention-heavy subset keeps the matrix fast while covering
    // mutexes (centralized + decentralized) and both barrier shapes.
    std::vector<std::string> workloads = {"SPM_G", "FAM_G", "SLM_G",
                                          "TB_LG", "LFTB_LG"};
    for (const std::string &w : workloads) {
        cases.push_back({w, Policy::Baseline, true});
        cases.push_back({w, Policy::Sleep, true});
        cases.push_back({w, Policy::Timeout, false});
        cases.push_back({w, Policy::MonNRAll, false});
        cases.push_back({w, Policy::MonNROne, false});
        cases.push_back({w, Policy::Awg, false});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(FigFifteen, Oversubscribed,
                         ::testing::ValuesIn(overCases()), overName);

TEST(OversubscribedDetail, RecoveryUsesContextSwitches)
{
    // Full evaluation geometry: the kernel exactly fills the machine,
    // so after the CU loss it is truly oversubscribed and recovery
    // requires waiting WGs to *voluntarily* yield their resources.
    harness::Experiment exp;
    exp.workload = "FAM_G";
    exp.policy = Policy::Awg;
    exp.oversubscribed = true;
    exp.params = harness::defaultEvalParams();
    exp.params.iters = 16;
    exp.runCfg.cuLossMicroseconds = 10;
    auto result = harness::runExperiment(exp);
    ASSERT_TRUE(result.completed);
    EXPECT_GT(result.forcedPreemptions, 0u);
    EXPECT_GT(result.contextSaves, result.forcedPreemptions)
        << "recovery requires voluntary context switches too";
    EXPECT_EQ(result.contextSaves, result.contextRestores);
}

TEST(OversubscribedDetail, BaselineStrandsPreemptedWgs)
{
    auto result = test::runSmall("FAM_G", Policy::Baseline, true);
    ASSERT_TRUE(result.deadlocked);
    EXPECT_GT(result.forcedPreemptions, 0u);
    // Pre-emption saved contexts, but nothing ever restored them:
    // current GPUs have no WG-granularity swap-in.
    EXPECT_EQ(result.contextRestores, 0u);
}

TEST(OversubscribedDetail, WaitTimeDominatesWhenOversubscribed)
{
    auto normal = test::runSmall("FAM_G", Policy::Awg, false);
    auto over = test::runSmall("FAM_G", Policy::Awg, true);
    ASSERT_TRUE(normal.completed);
    ASSERT_TRUE(over.completed);
    // Losing an eighth of the machine mid-run cannot make it faster.
    EXPECT_GT(over.gpuCycles, normal.gpuCycles);
}

TEST(OversubscribedDetail, AwgBeatsTimeoutOnCentralizedLocks)
{
    auto timeout = test::runSmall("FAM_G", Policy::Timeout, true);
    auto awg = test::runSmall("FAM_G", Policy::Awg, true);
    ASSERT_TRUE(timeout.completed);
    ASSERT_TRUE(awg.completed);
    EXPECT_LT(awg.gpuCycles, timeout.gpuCycles);
}

TEST(DynamicResources, RestoredCuSpeedsUpRecovery)
{
    // Figure 2's scenario: resources vary across time slices. The CU
    // comes back mid-run; AWG should finish faster than when it is
    // gone for good.
    auto run = [](std::uint64_t restore_us) {
        harness::Experiment exp;
        exp.workload = "FAM_G";
        exp.policy = Policy::Awg;
        exp.oversubscribed = true;
        exp.params = harness::defaultEvalParams();
        exp.params.iters = 16;
        exp.runCfg.cuLossMicroseconds = 10;
        exp.runCfg.cuRestoreMicroseconds = restore_us;
        return harness::runExperiment(exp);
    };
    auto gone = run(0);
    auto back = run(40);
    ASSERT_TRUE(gone.completed);
    ASSERT_TRUE(back.completed);
    EXPECT_TRUE(back.validated) << back.validationError;
    EXPECT_LT(back.gpuCycles, gone.gpuCycles);
}

class RestoredCu : public ::testing::TestWithParam<OverCase>
{
};

TEST_P(RestoredCu, OnlyRescuePoliciesExploitTheReturnedCu)
{
    // cuRestoreMicroseconds across the full policy matrix: the CU
    // comes back mid-run, but only policies with swap-in firmware can
    // use it. Baseline and Sleep stay stranded (their saved contexts
    // are never restored); every rescue-capable policy completes and
    // swaps WGs back in.
    const OverCase &c = GetParam();
    harness::Experiment exp;
    exp.workload = c.workload;
    exp.policy = c.policy;
    exp.oversubscribed = true;
    exp.params = test::smallParams();
    exp.params.iters = 12;
    exp.runCfg.cuLossMicroseconds = 5;
    exp.runCfg.cuRestoreMicroseconds = 20;
    auto result = harness::runExperiment(exp);
    if (c.expectDeadlock) {
        EXPECT_TRUE(result.deadlocked);
        EXPECT_EQ(result.contextRestores, 0u);
        // The liveness oracle separates the two stranded shapes:
        // Baseline blocks cold, Sleep spins its backoff forever.
        EXPECT_EQ(result.verdict, c.policy == Policy::Sleep
                                      ? core::Verdict::Livelock
                                      : core::Verdict::Deadlock);
    } else {
        EXPECT_TRUE(result.completed)
            << core::policyName(c.policy) << ": "
            << result.verdictString();
        EXPECT_TRUE(result.validated) << result.validationError;
        EXPECT_EQ(result.verdict, core::Verdict::Complete);
        EXPECT_GT(result.contextRestores, 0u);
    }
}

std::vector<OverCase>
restoreCases()
{
    std::vector<OverCase> cases;
    for (Policy p : {Policy::Baseline, Policy::Sleep})
        cases.push_back({"FAM_G", p, true});
    for (Policy p : {Policy::Timeout, Policy::MonRSAll,
                     Policy::MonRAll, Policy::MonNRAll,
                     Policy::MonNROne, Policy::Awg,
                     Policy::MinResume}) {
        cases.push_back({"FAM_G", p, false});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(FigTwo, RestoredCu,
                         ::testing::ValuesIn(restoreCases()),
                         overName);

TEST(DynamicResources, RestorationDoesNotSaveTheBaseline)
{
    // Even with the CU back, the Baseline machine has no firmware to
    // swap its pre-empted WGs back in: still a deadlock.
    harness::Experiment exp;
    exp.workload = "FAM_G";
    exp.policy = Policy::Baseline;
    exp.oversubscribed = true;
    exp.params = test::smallParams();
    exp.params.iters = 12;
    exp.runCfg.cuLossMicroseconds = 5;
    exp.runCfg.cuRestoreMicroseconds = 20;
    auto result = harness::runExperiment(exp);
    EXPECT_TRUE(result.deadlocked);
}

} // anonymous namespace
} // namespace ifp
