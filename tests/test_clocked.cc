/**
 * @file
 * Unit tests for SimObject/Clocked time arithmetic.
 */

#include <gtest/gtest.h>

#include "sim/clocked.hh"

namespace ifp::sim {
namespace {

struct ClockedFixture : public ::testing::Test
{
    ClockedFixture() : obj("obj", eq, 500) {}  // 2 GHz -> 500 ticks

    EventQueue eq;
    Clocked obj;
};

TEST_F(ClockedFixture, NameAndPeriod)
{
    EXPECT_EQ(obj.name(), "obj");
    EXPECT_EQ(obj.clockPeriod(), 500u);
    EXPECT_EQ(&obj.eventq(), &eq);
}

TEST_F(ClockedFixture, CycleConversions)
{
    EXPECT_EQ(obj.cyclesToTicks(0), 0u);
    EXPECT_EQ(obj.cyclesToTicks(7), 3500u);
    EXPECT_EQ(obj.ticksToCycles(3500), 7u);
    EXPECT_EQ(obj.ticksToCycles(3999), 7u);  // truncates
}

TEST_F(ClockedFixture, ClockEdgeOnBoundary)
{
    // curTick == 0 sits exactly on an edge.
    EXPECT_EQ(obj.clockEdge(0), 0u);
    EXPECT_EQ(obj.clockEdge(1), 500u);
    EXPECT_EQ(obj.clockEdge(10), 5000u);
}

TEST_F(ClockedFixture, ClockEdgeOffBoundaryRoundsUp)
{
    bool checked = false;
    eq.schedule(501, [&] {
        // 501 is just past an edge: next edge is 1000.
        EXPECT_EQ(obj.clockEdge(0), 1000u);
        EXPECT_EQ(obj.clockEdge(2), 2000u);
        EXPECT_EQ(obj.curCycle(), 1u);
        checked = true;
    });
    eq.simulate();
    EXPECT_TRUE(checked);
}

TEST_F(ClockedFixture, DifferentDomainsDisagreeOnCycles)
{
    Clocked slow("slow", eq, 1000);  // 1 GHz
    bool checked = false;
    eq.schedule(4000, [&] {
        EXPECT_EQ(obj.curCycle(), 8u);
        EXPECT_EQ(slow.curCycle(), 4u);
        checked = true;
    });
    eq.simulate();
    EXPECT_TRUE(checked);
}

} // anonymous namespace
} // namespace ifp::sim
