/**
 * @file
 * Shared fixtures and helpers for the test suite.
 */

#ifndef IFP_TESTS_TEST_HELPERS_HH
#define IFP_TESTS_TEST_HELPERS_HH

#include <gtest/gtest.h>

#include "core/gpu_system.hh"
#include "harness/runner.hh"
#include "isa/builder.hh"
#include "workloads/registry.hh"

namespace ifp::test {

/** Small-but-contended geometry for fast integration tests. */
inline workloads::WorkloadParams
smallParams()
{
    workloads::WorkloadParams params;
    params.numWgs = 16;
    params.wgsPerGroup = 4;
    params.wiPerWg = 64;
    params.iters = 2;
    params.csValuCycles = 20;
    return params;
}

/** Run one (workload, policy) experiment with small geometry. */
inline core::RunResult
runSmall(const std::string &workload, core::Policy policy,
         bool oversubscribed = false)
{
    harness::Experiment exp;
    exp.workload = workload;
    exp.policy = policy;
    exp.oversubscribed = oversubscribed;
    exp.params = smallParams();
    if (oversubscribed) {
        exp.params.iters = 12;
        exp.runCfg.cuLossMicroseconds = 5;
    }
    return harness::runExperiment(exp);
}

/** A RunConfig sized for unit tests (fewer deadlock-window cycles). */
inline core::RunConfig
testRunConfig(core::Policy policy = core::Policy::Awg)
{
    core::RunConfig cfg;
    cfg.policy.policy = policy;
    cfg.deadlockWindowCycles = 200'000;
    cfg.maxCycles = 50'000'000;
    return cfg;
}

/**
 * Assemble a single-WG kernel from a builder (convenience for
 * execution tests).
 */
inline isa::Kernel
makeTestKernel(isa::KernelBuilder &b, unsigned num_wgs = 1,
               unsigned wi_per_wg = 64)
{
    isa::Kernel k;
    k.name = "test";
    k.code = b.build();
    k.numWgs = num_wgs;
    k.wiPerWg = wi_per_wg;
    k.ldsBytes = 1024;
    k.maxWgsPerCu = 8;
    return k;
}

/**
 * The Figure 10 window-of-vulnerability kernel, shared between the
 * dynamic race reproduction (test_window_of_vulnerability.cc) and the
 * static analyzer's cross-check (test_analysis.cc).
 *
 * Two WGs. WG0 (consumer) waits for flag == 1; WG1 (producer) sets
 * the flag after @p producer_delay cycles of work. With
 * @p use_waiting_atomic false the consumer checks and then arms the
 * monitor as separate steps, and the check-to-arm distance is
 * inflated by @p gap_cycles so the producer's update can land inside
 * the window.
 */
inline isa::Kernel
wovRaceKernel(mem::Addr flag, mem::Addr done, bool use_waiting_atomic,
              std::int64_t gap_cycles, std::int64_t producer_delay)
{
    isa::KernelBuilder b;
    b.movi(16, static_cast<std::int64_t>(flag));
    b.movi(17, 1);

    isa::Label consumer = b.label();
    isa::Label finish = b.label();
    b.bz(isa::rWgId, consumer);

    // ---- producer (wg1)
    b.valu(producer_delay);
    b.atom(20, mem::AtomicOpcode::Exch, 16, 0, 17, 0, false, true);
    b.br(finish);

    // ---- consumer (wg0)
    b.bind(consumer);
    if (use_waiting_atomic) {
        // Figure 10 bottom: compare-and-wait, no race.
        isa::Label retry = b.here();
        b.atomWait(20, mem::AtomicOpcode::Load, 16, 0, 0, 17, true);
        b.cmpEq(21, 20, 17);
        b.bz(21, retry);
    } else {
        // Figure 10 top: check, then arm. The valu models the
        // distance between the check and the wait reaching the L2.
        isa::Label poll = b.here();
        isa::Label got = b.label();
        b.atom(20, mem::AtomicOpcode::Load, 16, 0, 0, 0, true);
        b.cmpEq(21, 20, 17);
        b.bnz(21, got);
        b.valu(gap_cycles);
        b.armWait(16, 0, 17);
        b.br(poll);
        b.bind(got);
    }

    b.bind(finish);
    b.movi(22, static_cast<std::int64_t>(done));
    b.atom(23, mem::AtomicOpcode::Inc, 22, 0, 0);
    b.halt();

    isa::Kernel k;
    k.name = "race";
    k.code = b.build();
    k.numWgs = 2;
    k.wiPerWg = 64;
    k.maxWgsPerCu = 8;
    return k;
}

} // namespace ifp::test

#endif // IFP_TESTS_TEST_HELPERS_HH
