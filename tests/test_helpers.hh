/**
 * @file
 * Shared fixtures and helpers for the test suite.
 */

#ifndef IFP_TESTS_TEST_HELPERS_HH
#define IFP_TESTS_TEST_HELPERS_HH

#include <gtest/gtest.h>

#include "core/gpu_system.hh"
#include "harness/runner.hh"
#include "isa/builder.hh"
#include "workloads/registry.hh"

namespace ifp::test {

/** Small-but-contended geometry for fast integration tests. */
inline workloads::WorkloadParams
smallParams()
{
    workloads::WorkloadParams params;
    params.numWgs = 16;
    params.wgsPerGroup = 4;
    params.wiPerWg = 64;
    params.iters = 2;
    params.csValuCycles = 20;
    return params;
}

/** Run one (workload, policy) experiment with small geometry. */
inline core::RunResult
runSmall(const std::string &workload, core::Policy policy,
         bool oversubscribed = false)
{
    harness::Experiment exp;
    exp.workload = workload;
    exp.policy = policy;
    exp.oversubscribed = oversubscribed;
    exp.params = smallParams();
    if (oversubscribed) {
        exp.params.iters = 12;
        exp.runCfg.cuLossMicroseconds = 5;
    }
    return harness::runExperiment(exp);
}

/** A RunConfig sized for unit tests (fewer deadlock-window cycles). */
inline core::RunConfig
testRunConfig(core::Policy policy = core::Policy::Awg)
{
    core::RunConfig cfg;
    cfg.policy.policy = policy;
    cfg.deadlockWindowCycles = 200'000;
    cfg.maxCycles = 50'000'000;
    return cfg;
}

/**
 * Assemble a single-WG kernel from a builder (convenience for
 * execution tests).
 */
inline isa::Kernel
makeTestKernel(isa::KernelBuilder &b, unsigned num_wgs = 1,
               unsigned wi_per_wg = 64)
{
    isa::Kernel k;
    k.name = "test";
    k.code = b.build();
    k.numWgs = num_wgs;
    k.wiPerWg = wi_per_wg;
    k.ldsBytes = 1024;
    k.maxWgsPerCu = 8;
    return k;
}

} // namespace ifp::test

#endif // IFP_TESTS_TEST_HELPERS_HH
