/**
 * @file
 * Property-style sweeps: the correctness invariants (mutual
 * exclusion, barrier completion, conservation) must hold for *every*
 * geometry — grid sizes, locality-group sizes, iteration counts and
 * multi-wavefront work-groups — under representative policies.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace ifp {
namespace {

using core::Policy;

struct SweepCase
{
    std::string workload;
    Policy policy;
    unsigned numWgs;
    unsigned group;
    unsigned wiPerWg;
    unsigned iters;
};

void
PrintTo(const SweepCase &c, std::ostream *os)
{
    *os << "workload=" << c.workload << " " << "numWgs=" << c.numWgs << " " << "group=" << c.group << " " << "wiPerWg=" << c.wiPerWg << " " << "iters=" << c.iters << " ";
}


std::string
sweepName(const ::testing::TestParamInfo<SweepCase> &info)
{
    const SweepCase &c = info.param;
    std::string name = c.workload + "_" + core::policyName(c.policy) +
                       "_G" + std::to_string(c.numWgs) + "_L" +
                       std::to_string(c.group) + "_n" +
                       std::to_string(c.wiPerWg) + "_i" +
                       std::to_string(c.iters);
    for (char &ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    }
    return name;
}

class GeometrySweep : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(GeometrySweep, InvariantsHold)
{
    const SweepCase &c = GetParam();
    harness::Experiment exp;
    exp.workload = c.workload;
    exp.policy = c.policy;
    exp.params.numWgs = c.numWgs;
    exp.params.wgsPerGroup = c.group;
    exp.params.wiPerWg = c.wiPerWg;
    exp.params.iters = c.iters;
    exp.params.csValuCycles = 20;

    core::RunResult result = harness::runExperiment(exp);
    EXPECT_TRUE(result.completed) << result.statusString();
    EXPECT_TRUE(result.validated) << result.validationError;
}

std::vector<SweepCase>
sweepCases()
{
    std::vector<SweepCase> cases;
    // Geometry axis (one wavefront per WG).
    for (auto [wgs, group] : std::initializer_list<
             std::pair<unsigned, unsigned>>{{8, 2},
                                            {12, 3},
                                            {16, 4},
                                            {32, 8},
                                            {48, 6}}) {
        for (const char *w : {"SPM_G", "FAM_L", "SLM_G", "TB_LG",
                              "LFTB_LG"}) {
            cases.push_back(
                {w, Policy::Awg, wgs, group, 64, 2});
        }
    }
    // Iteration axis.
    for (unsigned iters : {1u, 3u, 8u}) {
        cases.push_back({"FAM_G", Policy::Awg, 16, 4, 64, iters});
        cases.push_back({"TB_LG", Policy::MonNRAll, 16, 4, 64,
                         iters});
    }
    // Multi-wavefront WGs (n > 64): the master wavefront
    // synchronizes; the others join through the WG barrier.
    for (unsigned wi : {128u, 192u, 256u}) {
        cases.push_back({"SPM_G", Policy::Awg, 16, 4, wi, 2});
        cases.push_back({"TB_LG", Policy::Awg, 16, 4, wi, 2});
        cases.push_back({"TBEX_LG", Policy::MonNRAll, 16, 4, wi, 2});
        cases.push_back({"HT", Policy::Baseline, 16, 4, wi, 2});
    }
    // Policy axis on an irregular geometry.
    for (Policy p : {Policy::Baseline, Policy::Timeout,
                     Policy::MonRSAll, Policy::MonNROne,
                     Policy::MinResume}) {
        cases.push_back({"BA", p, 24, 4, 64, 3});
        cases.push_back({"LFTBEX_LG", p, 24, 4, 64, 2});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllGeometries, GeometrySweep,
                         ::testing::ValuesIn(sweepCases()),
                         sweepName);

TEST(GeometryProperties, RuntimeMonotoneInIterations)
{
    auto cycles = [](unsigned iters) {
        harness::Experiment exp;
        exp.workload = "FAM_G";
        exp.policy = Policy::Awg;
        exp.params = ifp::test::smallParams();
        exp.params.iters = iters;
        return harness::runExperiment(exp).gpuCycles;
    };
    sim::Cycles c1 = cycles(1), c2 = cycles(2), c4 = cycles(4);
    EXPECT_LT(c1, c2);
    EXPECT_LT(c2, c4);
}

TEST(GeometryProperties, MoreContendersMoreBaselinePain)
{
    auto baseline_cycles = [](unsigned wgs) {
        harness::Experiment exp;
        exp.workload = "SPM_G";
        exp.policy = Policy::Baseline;
        exp.params = ifp::test::smallParams();
        exp.params.numWgs = wgs;
        exp.params.wgsPerGroup = wgs / 4;
        return static_cast<double>(
                   harness::runExperiment(exp).gpuCycles) /
               wgs;  // per-WG cost
    };
    // Per-acquisition cost grows superlinearly with contention.
    EXPECT_GT(baseline_cycles(32), 1.5 * baseline_cycles(8));
}

TEST(GeometryProperties, MultiWavefrontWgsUseMoreContext)
{
    core::GpuSystem system(ifp::test::testRunConfig());
    workloads::WorkloadParams params = ifp::test::smallParams();
    workloads::WorkloadPtr w = workloads::makeWorkload("SPM_G");
    params.wiPerWg = 64;
    std::uint64_t one_wf = w->build(system, params).contextBytes();
    params.wiPerWg = 256;
    std::uint64_t four_wf = w->build(system, params).contextBytes();
    EXPECT_GT(four_wf, 3 * one_wf);
}

} // anonymous namespace
} // namespace ifp
