/**
 * @file
 * Determinism: identical experiments must produce bit-identical
 * results — cycle counts, instruction counts and scheduling activity.
 * The whole evaluation methodology depends on this.
 */

#include <gtest/gtest.h>

#include "harness/sweep.hh"
#include "test_helpers.hh"

namespace ifp {
namespace {

using core::Policy;

struct DetCase
{
    std::string workload;
    Policy policy;
    bool oversubscribed;
};

void
PrintTo(const DetCase &c, std::ostream *os)
{
    *os << "workload=" << c.workload << " " << "oversubscribed=" << c.oversubscribed << " ";
}


std::string
detName(const ::testing::TestParamInfo<DetCase> &info)
{
    std::string name = info.param.workload + "_" +
                       core::policyName(info.param.policy) +
                       (info.param.oversubscribed ? "_over" : "");
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class Determinism : public ::testing::TestWithParam<DetCase>
{
};

TEST_P(Determinism, RepeatedRunsAreIdentical)
{
    const DetCase &c = GetParam();
    core::RunResult a =
        test::runSmall(c.workload, c.policy, c.oversubscribed);
    core::RunResult b =
        test::runSmall(c.workload, c.policy, c.oversubscribed);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.deadlocked, b.deadlocked);
    EXPECT_EQ(a.gpuCycles, b.gpuCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.atomicInstructions, b.atomicInstructions);
    EXPECT_EQ(a.contextSaves, b.contextSaves);
    EXPECT_EQ(a.contextRestores, b.contextRestores);
    EXPECT_EQ(a.condResumesAll, b.condResumesAll);
    EXPECT_EQ(a.condResumesOne, b.condResumesOne);
}

INSTANTIATE_TEST_SUITE_P(
    RepresentativeRuns, Determinism,
    ::testing::Values(DetCase{"SPM_G", Policy::Baseline, false},
                      DetCase{"SPM_G", Policy::Awg, false},
                      DetCase{"FAM_G", Policy::MonNROne, false},
                      DetCase{"TB_LG", Policy::MonNRAll, false},
                      DetCase{"SLM_L", Policy::Sleep, false},
                      DetCase{"LFTB_LG", Policy::Timeout, false},
                      DetCase{"FAM_G", Policy::Awg, true},
                      DetCase{"TB_LG", Policy::Timeout, true}),
    detName);

void
expectIdentical(const core::RunResult &a, const core::RunResult &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.deadlocked, b.deadlocked);
    EXPECT_EQ(a.runTicks, b.runTicks);
    EXPECT_EQ(a.gpuCycles, b.gpuCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.atomicInstructions, b.atomicInstructions);
    EXPECT_EQ(a.waitingAtomics, b.waitingAtomics);
    EXPECT_EQ(a.armWaits, b.armWaits);
    EXPECT_EQ(a.sleeps, b.sleeps);
    EXPECT_EQ(a.totalWgExecCycles, b.totalWgExecCycles);
    EXPECT_EQ(a.totalWgWaitCycles, b.totalWgWaitCycles);
    EXPECT_EQ(a.contextSaves, b.contextSaves);
    EXPECT_EQ(a.contextRestores, b.contextRestores);
    EXPECT_EQ(a.condResumesAll, b.condResumesAll);
    EXPECT_EQ(a.condResumesOne, b.condResumesOne);
    EXPECT_EQ(a.cpRescues, b.cpRescues);
    EXPECT_EQ(a.forcedPreemptions, b.forcedPreemptions);
    EXPECT_EQ(a.maxConditions, b.maxConditions);
    EXPECT_EQ(a.maxWaiters, b.maxWaiters);
    EXPECT_EQ(a.maxMonitoredLines, b.maxMonitoredLines);
    EXPECT_EQ(a.maxLogEntries, b.maxLogEntries);
    EXPECT_EQ(a.maxSpilledConds, b.maxSpilledConds);
    EXPECT_EQ(a.spills, b.spills);
    EXPECT_EQ(a.logFullRetries, b.logFullRetries);
    EXPECT_EQ(a.wgCompletionSpreadCycles, b.wgCompletionSpreadCycles);
    EXPECT_EQ(a.maxWgWaitCycles, b.maxWgWaitCycles);
    EXPECT_EQ(a.validated, b.validated);
    EXPECT_EQ(a.validationError, b.validationError);
}

// The whole parallel-sweep design rests on this: a sweep run on four
// workers must be bit-identical — every counter, every stat — to the
// same sweep run serially, in the same submission order.
TEST(SweepDeterminism, ParallelSweepMatchesSerialBitForBit)
{
    std::vector<harness::Experiment> exps;
    auto add = [&](const std::string &w, Policy policy,
                   bool oversubscribed) {
        harness::Experiment exp;
        exp.workload = w;
        exp.policy = policy;
        exp.oversubscribed = oversubscribed;
        exp.params = test::smallParams();
        if (oversubscribed) {
            exp.params.iters = 12;
            exp.runCfg.cuLossMicroseconds = 5;
        }
        exps.push_back(std::move(exp));
    };
    add("SPM_G", Policy::Baseline, false);
    add("SPM_G", Policy::Awg, false);
    add("FAM_G", Policy::MonNROne, false);
    add("TB_LG", Policy::MonNRAll, false);
    add("SLM_L", Policy::Sleep, false);
    add("LFTB_LG", Policy::Timeout, false);
    add("FAM_G", Policy::Awg, true);
    add("TB_LG", Policy::Timeout, true);

    std::vector<core::RunResult> serial = harness::runSweep(exps, 1);
    std::vector<core::RunResult> parallel = harness::runSweep(exps, 4);

    ASSERT_EQ(serial.size(), exps.size());
    ASSERT_EQ(parallel.size(), exps.size());
    for (std::size_t i = 0; i < exps.size(); ++i) {
        expectIdentical(serial[i], parallel[i],
                        exps[i].workload + "/" +
                            core::policyName(exps[i].policy) +
                            (exps[i].oversubscribed ? "/over" : ""));
    }
}

} // anonymous namespace
} // namespace ifp
