/**
 * @file
 * Determinism: identical experiments must produce bit-identical
 * results — cycle counts, instruction counts and scheduling activity.
 * The whole evaluation methodology depends on this.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace ifp {
namespace {

using core::Policy;

struct DetCase
{
    std::string workload;
    Policy policy;
    bool oversubscribed;
};

void
PrintTo(const DetCase &c, std::ostream *os)
{
    *os << "workload=" << c.workload << " " << "oversubscribed=" << c.oversubscribed << " ";
}


std::string
detName(const ::testing::TestParamInfo<DetCase> &info)
{
    std::string name = info.param.workload + "_" +
                       core::policyName(info.param.policy) +
                       (info.param.oversubscribed ? "_over" : "");
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class Determinism : public ::testing::TestWithParam<DetCase>
{
};

TEST_P(Determinism, RepeatedRunsAreIdentical)
{
    const DetCase &c = GetParam();
    core::RunResult a =
        test::runSmall(c.workload, c.policy, c.oversubscribed);
    core::RunResult b =
        test::runSmall(c.workload, c.policy, c.oversubscribed);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.deadlocked, b.deadlocked);
    EXPECT_EQ(a.gpuCycles, b.gpuCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.atomicInstructions, b.atomicInstructions);
    EXPECT_EQ(a.contextSaves, b.contextSaves);
    EXPECT_EQ(a.contextRestores, b.contextRestores);
    EXPECT_EQ(a.condResumesAll, b.condResumesAll);
    EXPECT_EQ(a.condResumesOne, b.condResumesOne);
}

INSTANTIATE_TEST_SUITE_P(
    RepresentativeRuns, Determinism,
    ::testing::Values(DetCase{"SPM_G", Policy::Baseline, false},
                      DetCase{"SPM_G", Policy::Awg, false},
                      DetCase{"FAM_G", Policy::MonNROne, false},
                      DetCase{"TB_LG", Policy::MonNRAll, false},
                      DetCase{"SLM_L", Policy::Sleep, false},
                      DetCase{"LFTB_LG", Policy::Timeout, false},
                      DetCase{"FAM_G", Policy::Awg, true},
                      DetCase{"TB_LG", Policy::Timeout, true}),
    detName);

} // anonymous namespace
} // namespace ifp
