/**
 * @file
 * Tests for the virtualization interface (Section V.A): undersized
 * SyncMon structures must spill into the Monitor Log, a full log must
 * force Mesa retries, and in every case the kernel still completes
 * and validates — hardware capacity never limits correctness.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace ifp {
namespace {

core::RunResult
runWithTinyHardware(const std::string &workload, unsigned sets,
                    unsigned ways, unsigned waiting_list,
                    unsigned log_capacity,
                    core::GpuSystem **out_system = nullptr)
{
    harness::Experiment exp;
    exp.workload = workload;
    exp.policy = core::Policy::Awg;
    exp.params = test::smallParams();
    exp.runCfg.policy.syncmon.sets = sets;
    exp.runCfg.policy.syncmon.ways = ways;
    exp.runCfg.policy.syncmon.waitingListCapacity = waiting_list;
    exp.runCfg.cp.monitorLogCapacity = log_capacity;
    (void)out_system;
    return harness::runExperiment(exp);
}

TEST(Virtualization, FullSizeHardwareDoesNotSpill)
{
    harness::Experiment exp;
    exp.workload = "FAM_G";
    exp.policy = core::Policy::Awg;
    exp.params = test::smallParams();
    auto result = harness::runExperiment(exp);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.spills, 0u);
    EXPECT_LE(result.maxConditions, 1024u);
    EXPECT_LE(result.maxWaiters, 512u);
}

TEST(Virtualization, TinyConditionCacheSpillsButCompletes)
{
    // One condition in hardware; everything else virtualizes.
    auto result = runWithTinyHardware("FAM_G", 1, 1, 512, 4096);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.validated) << result.validationError;
    EXPECT_GT(result.spills, 0u);
    EXPECT_GT(result.maxLogEntries, 0u);
}

TEST(Virtualization, TinyWaitingListSpillsButCompletes)
{
    auto result = runWithTinyHardware("SPM_G", 256, 4, 2, 4096);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.validated) << result.validationError;
    EXPECT_GT(result.spills, 0u);
    EXPECT_LE(result.maxWaiters, 2u);
}

TEST(Virtualization, FullMonitorLogForcesMesaRetries)
{
    // No hardware conditions AND a nearly-empty log: waiting atomics
    // must sometimes fail without entering a waiting state and retry.
    auto result = runWithTinyHardware("SPM_G", 1, 1, 2, 2);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.validated) << result.validationError;
    EXPECT_GT(result.logFullRetries, 0u);
}

TEST(Virtualization, BarrierSurvivesTinyHardware)
{
    auto result = runWithTinyHardware("TB_LG", 1, 2, 4, 8);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.validated) << result.validationError;
}

TEST(Virtualization, OversubscribedRunSurvivesTinyHardware)
{
    harness::Experiment exp;
    exp.workload = "FAM_G";
    exp.policy = core::Policy::Awg;
    exp.oversubscribed = true;
    exp.params = test::smallParams();
    exp.params.iters = 12;
    exp.runCfg.cuLossMicroseconds = 5;
    exp.runCfg.policy.syncmon.sets = 1;
    exp.runCfg.policy.syncmon.ways = 2;
    exp.runCfg.policy.syncmon.waitingListCapacity = 4;
    exp.runCfg.cp.monitorLogCapacity = 64;
    auto result = harness::runExperiment(exp);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.validated) << result.validationError;
    EXPECT_GT(result.spills, 0u);
}

} // anonymous namespace
} // namespace ifp
