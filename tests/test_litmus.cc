/**
 * @file
 * Litmus suite + schedule exploration (`ctest -L litmus`).
 *
 * The contract under test: every (litmus, policy) cell's observed
 * core::Verdict — over the stock schedule, seeded random walks and
 * the bounded exhaustive frontier — equals the annotation in
 * workloads/litmus.cc, the walks are reproducible from
 * (litmus, policy, seed), the static ifplint expectations hold, and
 * an oracle that always takes the preferred choice is byte-identical
 * to running with no oracle at all.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "explore/explore.hh"
#include "workloads/litmus.hh"

namespace {

using ifp::core::Policy;
using ifp::core::Verdict;
using ifp::explore::LitmusRunConfig;
using ifp::workloads::LitmusWorkload;

/** Stats-bearing variant of runLitmusSchedule for parity checks. */
struct FullRun
{
    ifp::core::RunResult result;
    std::string stats;
};

FullRun
runWithStats(const LitmusWorkload &litmus, Policy policy,
             ifp::sim::SchedOracle *oracle)
{
    const ifp::workloads::LitmusSpec &spec = litmus.spec();
    ifp::core::RunConfig cfg;
    cfg.gpu.numCus = spec.numCus;
    cfg.policy.policy = policy;
    cfg.deadlockWindowCycles = 200'000;
    cfg.maxCycles = 30'000'000;
    cfg.shards = 1;
    cfg.schedOracle = oracle;

    ifp::core::GpuSystem system(cfg);
    ifp::workloads::WorkloadParams params;
    params.numWgs = spec.numWgs;
    params.wgsPerGroup = spec.maxWgsPerCu;
    params.wiPerWg = 1;
    params.iters = 1;
    params.style = ifp::core::styleFor(policy);

    ifp::isa::Kernel kernel = litmus.build(system, params);
    FullRun full;
    full.result = system.run(
        kernel,
        [&](const ifp::mem::BackingStore &store, std::string &err) {
            return litmus.validate(store, params, err);
        });
    std::ostringstream os;
    system.dumpStats(os);
    full.stats = os.str();
    return full;
}

std::string
countsToString(const ifp::explore::VerdictCounts &counts)
{
    std::ostringstream os;
    for (std::size_t v = 0; v < counts.size(); ++v) {
        if (counts[v]) {
            os << ifp::core::verdictName(static_cast<Verdict>(v))
               << "x" << counts[v] << " ";
        }
    }
    return os.str();
}

TEST(Litmus, RegistryIsWellFormed)
{
    const auto &specs = ifp::workloads::litmusSpecs();
    ASSERT_GE(specs.size(), 5u);
    std::set<std::string> names;
    for (const auto &spec : specs) {
        EXPECT_TRUE(names.insert(spec.name).second)
            << "duplicate litmus name " << spec.name;
        EXPECT_LE(spec.numWgs, 8u)
            << spec.name << ": litmuses must stay exhaustively "
            << "explorable (<= 8 WGs, and above 4 only with a "
            << "POR-friendly shape)";
        // Every cell of the policy matrix must be annotated.
        for (Policy p : ifp::workloads::litmusPolicies()) {
            auto litmus = ifp::workloads::makeLitmus(spec.name);
            EXPECT_NE(litmus->expectedVerdict(p), Verdict::Unknown);
        }
    }
}

TEST(Litmus, AnnotationsSeparatePolicies)
{
    // The suite exists to show the progress models differ: at least
    // one litmus must annotate different verdicts for different
    // policies (mutual-pair: Deadlock / Livelock / Complete).
    bool separated = false;
    for (const auto &spec : ifp::workloads::litmusSpecs()) {
        std::set<Verdict> verdicts;
        for (const auto &[policy, verdict] : spec.expected)
            verdicts.insert(verdict);
        if (verdicts.size() > 1)
            separated = true;
    }
    EXPECT_TRUE(separated);
}

TEST(Litmus, FullMatrixAgreesWithAnnotations)
{
    for (const std::string &name : ifp::workloads::litmusNames()) {
        auto litmus = ifp::workloads::makeLitmus(name);
        auto cells = ifp::explore::crossValidate(
            *litmus, /*seed=*/1, /*schedules=*/3);
        ASSERT_EQ(cells.size(), litmus->spec().expected.size());
        for (const auto &cell : cells) {
            EXPECT_TRUE(cell.ok)
                << cell.litmus << " under "
                << ifp::core::policyName(cell.policy)
                << ": expected "
                << ifp::core::verdictName(cell.expected)
                << ", observed " << countsToString(cell.observed)
                << "(invalid=" << cell.invalid << ")";
        }
    }
}

TEST(Litmus, StockVerdictsDifferAcrossPolicies)
{
    // Observed (not just annotated) separation: the same mutual-pair
    // kernel deadlocks on Baseline and completes under Timeout/AWG.
    auto litmus = ifp::workloads::makeLitmus("mutual-pair");
    auto baseline = ifp::explore::runLitmusSchedule(
        *litmus, Policy::Baseline, nullptr);
    auto timeout = ifp::explore::runLitmusSchedule(
        *litmus, Policy::Timeout, nullptr);
    EXPECT_EQ(baseline.verdict, Verdict::Deadlock);
    EXPECT_EQ(timeout.verdict, Verdict::Complete);
    EXPECT_TRUE(timeout.validated);
}

TEST(Litmus, BudgetExpiryMidRetryWindowIsExhausted)
{
    // A Sleep-policy mutual pair is a livelock: the resident WG
    // keeps sleep-spinning while its partner is stranded. With a
    // generous budget the oracle needs two stalled-window samples to
    // see the retry delta and says Livelock; if the cycle budget
    // expires before that second window completes, the run must
    // honestly report Exhausted — the machine was still retrying,
    // never classified.
    auto litmus = ifp::workloads::makeLitmus("mutual-pair");

    LitmusRunConfig generous;
    generous.deadlockWindowCycles = 200'000;
    generous.maxCycles = 30'000'000;
    auto livelock = ifp::explore::runLitmusSchedule(
        *litmus, Policy::Sleep, nullptr, generous);
    EXPECT_EQ(livelock.verdict, Verdict::Livelock);

    LitmusRunConfig tight;
    tight.deadlockWindowCycles = 200'000;
    tight.maxCycles = 300'000;  // expires mid second window
    auto exhausted = ifp::explore::runLitmusSchedule(
        *litmus, Policy::Sleep, nullptr, tight);
    EXPECT_EQ(exhausted.verdict, Verdict::Exhausted);
}

TEST(Litmus, RandomWalkReproducible)
{
    auto litmus = ifp::workloads::makeLitmus("mutual-pair");
    auto a = ifp::explore::randomWalk(*litmus, Policy::Timeout,
                                      /*seed=*/7, /*schedules=*/5);
    auto b = ifp::explore::randomWalk(*litmus, Policy::Timeout,
                                      /*seed=*/7, /*schedules=*/5);
    ASSERT_EQ(a.schedules.size(), b.schedules.size());
    for (std::size_t i = 0; i < a.schedules.size(); ++i) {
        EXPECT_EQ(a.schedules[i].verdict, b.schedules[i].verdict);
        EXPECT_EQ(a.schedules[i].gpuCycles, b.schedules[i].gpuCycles);
        EXPECT_EQ(a.schedules[i].choicePoints,
                  b.schedules[i].choicePoints);
    }
    EXPECT_EQ(a.counts, b.counts);
}

TEST(Litmus, ScheduleSeedsAreCellAndIndexSpecific)
{
    using ifp::explore::scheduleSeed;
    EXPECT_EQ(scheduleSeed("mutual-pair", Policy::Awg, 1, 0),
              scheduleSeed("mutual-pair", Policy::Awg, 1, 0));
    EXPECT_NE(scheduleSeed("mutual-pair", Policy::Awg, 1, 0),
              scheduleSeed("mutual-pair", Policy::Awg, 1, 1));
    EXPECT_NE(scheduleSeed("mutual-pair", Policy::Awg, 1, 0),
              scheduleSeed("mutual-pair", Policy::Timeout, 1, 0));
    EXPECT_NE(scheduleSeed("mutual-pair", Policy::Awg, 1, 0),
              scheduleSeed("occ-barrier", Policy::Awg, 1, 0));
    EXPECT_NE(scheduleSeed("mutual-pair", Policy::Awg, 1, 0),
              scheduleSeed("mutual-pair", Policy::Awg, 2, 0));
}

TEST(Litmus, ExhaustiveTerminatesAndAgrees)
{
    ifp::explore::ExhaustiveConfig small;
    small.maxSchedules = 40;
    small.maxPrefixDepth = 8;

    // The >= 6-WG litmuses are only tractable under partial-order
    // reduction; a tighter cycle budget tames their Exhausted cells
    // (AWG on ring-6) without changing any classification — livelock
    // needs ~3 deadlock windows, well under the 2M-cycle budget.
    ifp::explore::ExhaustiveConfig big = small;
    big.maxSchedules = 400;
    big.por = true;
    big.run.maxCycles = 2'000'000;

    for (const std::string &name : ifp::workloads::litmusNames()) {
        auto litmus = ifp::workloads::makeLitmus(name);
        const ifp::explore::ExhaustiveConfig &cfg =
            litmus->spec().numWgs > 4 ? big : small;
        for (const auto &[policy, expected] :
             litmus->spec().expected) {
            auto r = ifp::explore::exhaustive(*litmus, policy, cfg);
            EXPECT_GE(r.schedulesRun, 1u);
            EXPECT_TRUE(r.frontierExhausted)
                << name << "/" << ifp::core::policyName(policy)
                << " hit the schedule cap — grow maxSchedules or "
                << "shrink the litmus";
            for (std::size_t v = 0; v < r.counts.size(); ++v) {
                if (v == static_cast<std::size_t>(expected))
                    continue;
                EXPECT_EQ(r.counts[v], 0u)
                    << name << "/" << ifp::core::policyName(policy)
                    << ": observed " << countsToString(r.counts)
                    << "but annotation says "
                    << ifp::core::verdictName(expected);
            }
        }
    }
}

TEST(Litmus, PorAgreesAndReduces)
{
    // The partial-order reduction contract: on every (litmus, policy)
    // cell the POR DFS observes exactly the verdicts the unreduced
    // DFS observes, over no more schedules — and strictly fewer in
    // aggregate (the >= 6-WG shapes guarantee real commuting pairs).
    ifp::explore::ExhaustiveConfig base;
    base.maxSchedules = 4000;
    base.maxPrefixDepth = 8;
    base.run.maxCycles = 2'000'000;
    ifp::explore::ExhaustiveConfig por = base;
    por.por = true;

    std::uint64_t total_base = 0;
    std::uint64_t total_por = 0;
    std::uint64_t total_skipped = 0;
    for (const std::string &name : ifp::workloads::litmusNames()) {
        auto litmus = ifp::workloads::makeLitmus(name);
        for (const auto &[policy, expected] :
             litmus->spec().expected) {
            auto full = ifp::explore::exhaustive(*litmus, policy,
                                                 base);
            auto reduced = ifp::explore::exhaustive(*litmus, policy,
                                                    por);
            ASSERT_TRUE(full.frontierExhausted)
                << name << "/" << ifp::core::policyName(policy);
            ASSERT_TRUE(reduced.frontierExhausted)
                << name << "/" << ifp::core::policyName(policy);
            for (std::size_t v = 0; v < full.counts.size(); ++v) {
                EXPECT_EQ(full.counts[v] != 0,
                          reduced.counts[v] != 0)
                    << name << "/" << ifp::core::policyName(policy)
                    << ": verdict support differs at "
                    << ifp::core::verdictName(
                           static_cast<Verdict>(v))
                    << " (full " << countsToString(full.counts)
                    << ", por " << countsToString(reduced.counts)
                    << ")";
            }
            EXPECT_LE(reduced.schedulesRun, full.schedulesRun)
                << name << "/" << ifp::core::policyName(policy);
            total_base += full.schedulesRun;
            total_por += reduced.schedulesRun;
            total_skipped += reduced.porSkipped;
        }
    }
    EXPECT_LT(total_por, total_base)
        << "POR never skipped anything across the whole suite";
    EXPECT_GT(total_skipped, 0u);
    std::cout << "[          ] POR: " << total_por << " of "
              << total_base << " schedules ("
              << total_skipped << " alternatives skipped)\n";
}

TEST(Litmus, PorMakesBigLitmusesTractable)
{
    // pair-grid-6's unreduced schedule space outgrows a small cap at
    // depth 24; POR collapses the cross-pair interleavings and
    // exhausts the frontier within it.
    auto litmus = ifp::workloads::makeLitmus("pair-grid-6");
    ifp::explore::ExhaustiveConfig cfg;
    cfg.maxSchedules = 50;
    cfg.maxPrefixDepth = 24;

    auto full = ifp::explore::exhaustive(*litmus, Policy::Baseline,
                                         cfg);
    EXPECT_FALSE(full.frontierExhausted)
        << "unreduced exploration fit the cap; deepen the litmus so "
        << "the tractability claim stays meaningful";

    cfg.por = true;
    auto reduced = ifp::explore::exhaustive(*litmus, Policy::Baseline,
                                            cfg);
    EXPECT_TRUE(reduced.frontierExhausted);
    EXPECT_GT(reduced.porSkipped, 0u);
    for (std::size_t v = 0; v < reduced.counts.size(); ++v) {
        if (v == static_cast<std::size_t>(Verdict::Complete))
            continue;
        EXPECT_EQ(reduced.counts[v], 0u);
    }
}

TEST(Litmus, PreferredOracleIsByteIdenticalToNoOracle)
{
    // The oracle plumbing itself must not perturb the machine: an
    // oracle that always takes the preferred choice reproduces the
    // stock schedule bit for bit (same verdict, cycles and full
    // stats dump), while proving the choice sites actually fire.
    std::uint64_t total_decisions = 0;
    for (const std::string &name : ifp::workloads::litmusNames()) {
        auto litmus = ifp::workloads::makeLitmus(name);
        for (const auto &[policy, expected] :
             litmus->spec().expected) {
            FullRun stock = runWithStats(*litmus, policy, nullptr);
            ifp::explore::PreferredOracle oracle;
            FullRun steered = runWithStats(*litmus, policy, &oracle);
            EXPECT_EQ(stock.result.verdict, steered.result.verdict)
                << name << "/" << ifp::core::policyName(policy);
            EXPECT_EQ(stock.result.gpuCycles,
                      steered.result.gpuCycles)
                << name << "/" << ifp::core::policyName(policy);
            EXPECT_EQ(stock.stats, steered.stats)
                << name << "/" << ifp::core::policyName(policy);
            total_decisions += oracle.decisions;
        }
    }
    EXPECT_GT(total_decisions, 0u)
        << "no choice point ever had more than one candidate — the "
        << "exploration surface is dead";
}

TEST(Litmus, LintExpectationsHold)
{
    for (const std::string &name : ifp::workloads::litmusNames()) {
        auto litmus = ifp::workloads::makeLitmus(name);
        for (const auto &cell :
             ifp::explore::lintCrossCheck(*litmus)) {
            std::ostringstream os;
            for (const auto &c : cell.unexpected)
                os << " unexpected:" << c;
            for (const auto &c : cell.missing)
                os << " missing:" << c;
            EXPECT_TRUE(cell.ok)
                << name << " style "
                << static_cast<int>(cell.style) << ":" << os.str();
        }
    }
}

TEST(Litmus, UnknownLitmusNameDies)
{
    EXPECT_DEATH(ifp::workloads::makeLitmus("no-such-litmus"),
                 "mutual-pair");
}

} // namespace
