/**
 * @file
 * Tests for the experiment harness utilities (tables, geomean) and
 * for paper-shape properties the benches rely on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/table.hh"
#include "test_helpers.hh"

namespace ifp::harness {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Numeric, FormatDouble)
{
    EXPECT_EQ(formatDouble(1.2345, 2), "1.23");
    EXPECT_EQ(formatDouble(12.0, 1), "12.0");
    EXPECT_EQ(formatDouble(0.5, 0), "0");  // round-half-even of 0.5
}

TEST(Numeric, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({8.0}), 8.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    // Non-positive entries (deadlocks) are skipped.
    EXPECT_DOUBLE_EQ(geomean({4.0, 0.0, 1.0}), 2.0);
}

TEST(PaperShape, AwgBeatsBaselineOnContendedLocks)
{
    auto baseline =
        ifp::test::runSmall("SPM_G", core::Policy::Baseline);
    auto awg = ifp::test::runSmall("SPM_G", core::Policy::Awg);
    ASSERT_TRUE(baseline.completed);
    ASSERT_TRUE(awg.completed);
    EXPECT_GT(baseline.gpuCycles, 2 * awg.gpuCycles);
}

TEST(PaperShape, AwgExecutesFarFewerAtomicsThanBusyWaiting)
{
    auto baseline =
        ifp::test::runSmall("FAM_G", core::Policy::Baseline);
    auto awg = ifp::test::runSmall("FAM_G", core::Policy::Awg);
    EXPECT_GT(baseline.atomicInstructions,
              3 * awg.atomicInstructions);
}

TEST(PaperShape, MonNrOneHandlesMutexContentionBetterThanAll)
{
    auto all = ifp::test::runSmall("SPM_G", core::Policy::MonNRAll);
    auto one = ifp::test::runSmall("SPM_G", core::Policy::MonNROne);
    ASSERT_TRUE(all.completed);
    ASSERT_TRUE(one.completed);
    EXPECT_LT(one.gpuCycles, all.gpuCycles);
    EXPECT_LE(one.atomicInstructions, all.atomicInstructions);
}

TEST(PaperShape, MonNrAllHandlesBarriersBetterThanOne)
{
    auto all = ifp::test::runSmall("TB_LG", core::Policy::MonNRAll);
    auto one = ifp::test::runSmall("TB_LG", core::Policy::MonNROne);
    ASSERT_TRUE(all.completed);
    ASSERT_TRUE(one.completed);
    EXPECT_LT(all.gpuCycles, one.gpuCycles);
}

TEST(PaperShape, AwgTracksTheBetterFixedPolicy)
{
    // The headline behavioural claim: AWG's predictor matches
    // MonNR-One on mutexes and MonNR-All on barriers (within a small
    // tolerance for predictor warm-up).
    auto awg_mutex = ifp::test::runSmall("SPM_G", core::Policy::Awg);
    auto one_mutex =
        ifp::test::runSmall("SPM_G", core::Policy::MonNROne);
    EXPECT_LE(awg_mutex.gpuCycles,
              one_mutex.gpuCycles + one_mutex.gpuCycles / 4);

    auto awg_barrier = ifp::test::runSmall("TB_LG", core::Policy::Awg);
    auto all_barrier =
        ifp::test::runSmall("TB_LG", core::Policy::MonNRAll);
    EXPECT_LE(awg_barrier.gpuCycles,
              all_barrier.gpuCycles + all_barrier.gpuCycles / 2);
}

TEST(PaperShape, MinResumeIsTheWaitEfficiencyFloor)
{
    for (const char *w : {"SPM_G", "FAM_G", "TB_LG"}) {
        auto oracle =
            ifp::test::runSmall(w, core::Policy::MinResume);
        auto sporadic =
            ifp::test::runSmall(w, core::Policy::MonRSAll);
        ASSERT_TRUE(oracle.completed) << w;
        ASSERT_TRUE(sporadic.completed) << w;
        EXPECT_LE(oracle.atomicInstructions,
                  sporadic.atomicInstructions)
            << w;
    }
}

} // anonymous namespace
} // namespace ifp::harness
