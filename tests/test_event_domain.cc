/**
 * @file
 * EventDomain / DomainScheduler unit tests: canonical mailbox merge
 * order at equal ticks, conservative window pipelining, idle-gap
 * fast-forward, and thread-count independence of the executed
 * sequence. These cover the PDES layer in isolation; the end-to-end
 * byte-parity of whole simulations lives in test_parallel_parity.cc
 * (ctest -L parity).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_domain.hh"

namespace ifp {
namespace {

constexpr sim::Tick kLookahead = 1000;

/** One executed cross-domain message: (tick it ran at, payload id). */
using Trace = std::vector<std::pair<sim::Tick, int>>;

/**
 * Two stage-1 domains send upward messages that land on the root at
 * the *same* tick; the canonical (when, src, seq) merge must order
 * them by sender id then send order, independent of which executor
 * ran which domain first.
 */
Trace
runEqualTickScenario(unsigned threads)
{
    sim::DomainScheduler sched(kLookahead, threads);
    sim::EventDomain &root = sched.addDomain("root", 0);
    sim::EventDomain &mem0 = sched.addDomain("mem0", 1);
    sim::EventDomain &mem1 = sched.addDomain("mem1", 1);

    Trace trace;
    auto record = [&trace, &root](int id) {
        trace.emplace_back(root.queue().curTick(), id);
    };

    // mem0 fires at tick 10 and sends two messages stamped exactly
    // one lookahead later (the minimum legal upward latency).
    mem0.queue().schedule(10, [&] {
        mem0.send(root, 10 + kLookahead, [&, record] { record(0); },
                  "t.up0");
        mem0.send(root, 10 + kLookahead, [&, record] { record(1); },
                  "t.up1");
    }, "t.mem0");
    // mem1 fires earlier but stamps the same arrival tick; the merge
    // must still put it after mem0's messages (higher domain id).
    mem1.queue().schedule(5, [&] {
        mem1.send(root, 10 + kLookahead, [&, record] { record(2); },
                  "t.up2");
    }, "t.mem1");

    sched.start();
    sched.runUntil(10 + 2 * kLookahead);
    EXPECT_TRUE(sched.allIdle());
    return trace;
}

TEST(EventDomain, EqualTickMessagesMergeInCanonicalOrder)
{
    Trace trace = runEqualTickScenario(1);
    ASSERT_EQ(trace.size(), 3u);
    for (const auto &[tick, id] : trace)
        EXPECT_EQ(tick, 10 + kLookahead);
    EXPECT_EQ(trace[0].second, 0);
    EXPECT_EQ(trace[1].second, 1);
    EXPECT_EQ(trace[2].second, 2);
}

TEST(EventDomain, MergeOrderIsThreadCountIndependent)
{
    Trace serial = runEqualTickScenario(1);
    for (unsigned threads : {2u, 3u, 5u}) {
        Trace parallel = runEqualTickScenario(threads);
        EXPECT_EQ(parallel, serial) << "threads=" << threads;
    }
}

TEST(EventDomain, DownwardMessagesMayCarryZeroLatency)
{
    sim::DomainScheduler sched(kLookahead, 1);
    sim::EventDomain &root = sched.addDomain("root", 0);
    sim::EventDomain &mem0 = sched.addDomain("mem0", 1);

    Trace trace;
    root.queue().schedule(100, [&] {
        // A later pipeline stage may receive at the sender's own
        // tick: conservatism only constrains upward messages.
        root.send(mem0, 100, [&] {
            trace.emplace_back(mem0.queue().curTick(), 0);
        }, "t.down0");
        root.send(mem0, 250, [&] {
            trace.emplace_back(mem0.queue().curTick(), 1);
        }, "t.down1");
    }, "t.root");

    sched.start();
    sched.runUntil(5000);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0], std::make_pair(sim::Tick{100}, 0));
    EXPECT_EQ(trace[1], std::make_pair(sim::Tick{250}, 1));
    EXPECT_TRUE(sched.allIdle());
}

TEST(EventDomain, IdleGapsAreJumpedNotStepped)
{
    sim::DomainScheduler sched(kLookahead, 1);
    sim::EventDomain &root = sched.addDomain("root", 0);
    sched.addDomain("mem0", 1);

    bool ran = false;
    const sim::Tick far = 1'000'000'000;
    root.queue().schedule(far, [&] { ran = true; }, "t.far");

    sched.start();
    sched.runUntil(far + 1);
    EXPECT_TRUE(ran);
    // Stepping lookahead-sized windows across the gap would need
    // ~far/kLookahead supersteps; the horizon jump needs a handful.
    EXPECT_LE(sched.supersteps(), 8u);
    EXPECT_EQ(sched.numExecuted(), 1u);
}

TEST(EventDomain, RunUntilBoundsExecutionAndResumes)
{
    sim::DomainScheduler sched(kLookahead, 1);
    sim::EventDomain &root = sched.addDomain("root", 0);
    sched.addDomain("mem0", 1);

    bool ran = false;
    root.queue().schedule(30'000, [&] { ran = true; }, "t.later");

    sched.start();
    sched.runUntil(20'000);
    EXPECT_FALSE(ran);
    EXPECT_FALSE(sched.allIdle());
    sched.runUntil(40'000);
    EXPECT_TRUE(ran);
    EXPECT_TRUE(sched.allIdle());
}

TEST(EventDomain, DomainIdsFollowConstructionOrder)
{
    sim::DomainScheduler sched(kLookahead, 1);
    sim::EventDomain &root = sched.addDomain("root", 0);
    sim::EventDomain &a = sched.addDomain("mem0", 1);
    sim::EventDomain &b = sched.addDomain("mem1", 1);
    EXPECT_EQ(root.id(), 0u);
    EXPECT_EQ(a.id(), 1u);
    EXPECT_EQ(b.id(), 2u);
    EXPECT_EQ(sched.numDomains(), 3u);
    EXPECT_EQ(sched.lookaheadTicks(), kLookahead);
}

} // anonymous namespace
} // namespace ifp
