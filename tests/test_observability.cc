/**
 * @file
 * The observability layer end to end: Chrome-trace export validity,
 * stats-JSON round-tripping, and the stall-reason accounting
 * invariant (the per-reason buckets partition every WG's lifetime).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "harness/observe.hh"
#include "harness/results_io.hh"
#include "harness/runner.hh"

using namespace ifp;
using harness::json::Value;

namespace {

/** A tiny 2-CU experiment that still exercises synchronization. */
harness::Experiment
tinyExperiment(core::Policy policy)
{
    harness::Experiment exp;
    exp.workload = "SPM_G";
    exp.policy = policy;
    exp.params.numWgs = 8;
    exp.params.wgsPerGroup = 4;
    exp.params.wiPerWg = 16;
    exp.params.iters = 2;
    exp.runCfg.gpu.numCus = 2;
    exp.observe.captureTrace = true;
    return exp;
}

/** Run @p exp and return the Chrome-trace JSON text. */
std::string
chromeTraceOf(const harness::Experiment &exp)
{
    std::ostringstream os;
    harness::runExperimentWithSystem(exp,
                                     [&](core::GpuSystem &system) {
                                         harness::writeChromeTrace(
                                             os, system);
                                     });
    return os.str();
}

double
sumBreakdown(const core::RunResult &r)
{
    double sum = 0.0;
    for (double cycles : r.wgCycleBreakdown)
        sum += cycles;
    return sum;
}

} // anonymous namespace

TEST(ChromeTrace, TinyRunProducesValidTrace)
{
    std::string text = chromeTraceOf(tinyExperiment(core::Policy::Awg));

    std::optional<Value> doc = harness::json::tryParse(text);
    ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";
    ASSERT_TRUE(doc->isObject());

    const Value *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_FALSE(events->array.empty());

    // Every event carries the required Chrome-trace fields; async
    // begin/end streams must pair up per (cat, id).
    std::map<std::pair<std::string, double>, int> open_spans;
    bool saw_instant = false;
    for (const Value &ev : events->array) {
        ASSERT_TRUE(ev.isObject());
        const Value *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_TRUE(ph->isString());
        const Value *pid = ev.find("pid");
        ASSERT_NE(pid, nullptr);
        EXPECT_TRUE(pid->isNumber());
        if (ph->string == "M")
            continue;
        const Value *ts = ev.find("ts");
        ASSERT_NE(ts, nullptr);
        EXPECT_TRUE(ts->isNumber());
        if (ph->string == "i") {
            saw_instant = true;
        } else if (ph->string == "b" || ph->string == "e") {
            const Value *cat = ev.find("cat");
            const Value *id = ev.find("id");
            ASSERT_NE(cat, nullptr);
            ASSERT_NE(id, nullptr);
            auto key = std::make_pair(cat->string, id->number);
            open_spans[key] += ph->string == "b" ? 1 : -1;
            EXPECT_GE(open_spans[key], 0)
                << "async 'e' before its 'b' for cat="
                << cat->string;
        }
    }
    EXPECT_TRUE(saw_instant);
    for (const auto &[key, open] : open_spans) {
        EXPECT_EQ(open, 0) << "unclosed async span, cat=" << key.first
                           << " id=" << key.second;
    }
}

TEST(ChromeTrace, ExportIsDeterministic)
{
    harness::Experiment exp = tinyExperiment(core::Policy::Awg);
    EXPECT_EQ(chromeTraceOf(exp), chromeTraceOf(exp));
}

TEST(ChromeTrace, UntracedRunHasNoSink)
{
    harness::Experiment exp = tinyExperiment(core::Policy::Awg);
    exp.observe = harness::ObserveOptions{};
    ASSERT_FALSE(exp.observe.wantsCapture());
    harness::runExperimentWithSystem(exp,
                                     [](core::GpuSystem &system) {
                                         EXPECT_EQ(system.traceSink(),
                                                   nullptr);
                                     });
}

TEST(StatsJson, FileExportRoundTrips)
{
    harness::Experiment exp = tinyExperiment(core::Policy::MonNRAll);
    std::string path =
        testing::TempDir() + "ifp_stats_{policy}.json";
    exp.observe.statsJsonPath = path;
    harness::runExperiment(exp);

    std::string expanded = harness::expandObservePath(path, exp);
    std::ifstream in(expanded);
    ASSERT_TRUE(in.good()) << "stats file missing: " << expanded;
    std::stringstream buf;
    buf << in.rdbuf();

    std::optional<Value> doc = harness::json::tryParse(buf.str());
    ASSERT_TRUE(doc.has_value()) << "stats-JSON is not valid JSON";

    const Value *res = doc->find("experiment-result");
    ASSERT_NE(res, nullptr);
    ASSERT_TRUE(res->isObject());
    EXPECT_NE(res->find("gpuCycles"), nullptr);
    const Value *stalls = res->find("stallCycles");
    ASSERT_NE(stalls, nullptr);
    ASSERT_TRUE(stalls->isObject());
    EXPECT_EQ(stalls->object.size(), sim::numStallReasons);
    for (std::size_t i = 0; i < sim::numStallReasons; ++i) {
        EXPECT_NE(stalls->find(sim::stallReasonName(
                      static_cast<sim::StallReason>(i))),
                  nullptr);
    }

    const Value *groups = doc->find("groups");
    ASSERT_NE(groups, nullptr);
    ASSERT_TRUE(groups->isArray());
    EXPECT_FALSE(groups->array.empty());

    // Round trip: write the parsed document and parse it again.
    std::ostringstream rewritten;
    harness::json::write(rewritten, *doc);
    std::optional<Value> doc2 =
        harness::json::tryParse(rewritten.str());
    ASSERT_TRUE(doc2.has_value());
    EXPECT_TRUE(*doc == *doc2);
}

TEST(StallBreakdown, PartitionsLifetimeWhenOversubscribed)
{
    // The acceptance scenario: an oversubscribed AWG run with context
    // switching. Every WG-lifetime tick must land in exactly one
    // bucket.
    harness::Experiment exp;
    exp.workload = "SPM_G";
    exp.policy = core::Policy::Awg;
    exp.oversubscribed = true;
    exp.params = harness::defaultEvalParams();
    exp.params.iters = 2;
    // Lose the CU early enough that this short run actually swaps.
    exp.runCfg.cuLossMicroseconds = 10;

    core::RunResult r = harness::runExperiment(exp);
    ASSERT_GT(r.contextSaves, 0u);
    ASSERT_TRUE(r.completed);
    ASSERT_GT(r.wgLifetimeCycles, 0.0);

    EXPECT_NEAR(sumBreakdown(r), r.wgLifetimeCycles,
                1e-6 * r.wgLifetimeCycles + 1.0);

    // Oversubscription forces context save/restore traffic and keeps
    // WGs parked in the dispatch queue.
    EXPECT_GT(r.stallCycles(sim::StallReason::SaveRestore), 0.0);
    EXPECT_GT(r.stallCycles(sim::StallReason::DispatchQueue), 0.0);
    EXPECT_GT(r.stallCycles(sim::StallReason::Running), 0.0);
}

TEST(StallBreakdown, PartitionsLifetimeAcrossPolicies)
{
    for (core::Policy policy :
         {core::Policy::Baseline, core::Policy::Sleep,
          core::Policy::Timeout, core::Policy::MonNRAll,
          core::Policy::MonNROne}) {
        harness::Experiment exp = tinyExperiment(policy);
        exp.observe = harness::ObserveOptions{};
        core::RunResult r = harness::runExperiment(exp);
        ASSERT_TRUE(r.completed)
            << "policy " << core::policyName(policy);
        EXPECT_NEAR(sumBreakdown(r), r.wgLifetimeCycles,
                    1e-6 * r.wgLifetimeCycles + 1.0)
            << "policy " << core::policyName(policy);
    }
}

TEST(StallBreakdown, WaitingBucketAgreesWithFig11Accounting)
{
    // Cross-check against the Figure 11 metric: sync-wait time seen
    // by the stall buckets (Waiting + Spin) can never exceed the
    // fig11 totalWgWaitCycles, which runs whenever any wavefront
    // waits (a superset of the bucket conditions) clipped to the
    // dispatch..end window (also a superset of the bucket window).
    harness::Experiment exp = tinyExperiment(core::Policy::MonNRAll);
    exp.observe = harness::ObserveOptions{};
    core::RunResult r = harness::runExperiment(exp);
    ASSERT_TRUE(r.completed);

    double bucket_wait = r.stallCycles(sim::StallReason::Waiting) +
                         r.stallCycles(sim::StallReason::Spin);
    EXPECT_GT(r.totalWgWaitCycles, 0.0);
    EXPECT_GT(bucket_wait, 0.0);
    EXPECT_LE(bucket_wait, r.totalWgWaitCycles * (1.0 + 1e-6) + 1.0);
}

TEST(Observe, ExpandsPathPlaceholders)
{
    harness::Experiment exp;
    exp.workload = "FAM_G";
    exp.policy = core::Policy::MonNROne;
    exp.oversubscribed = true;
    EXPECT_EQ(harness::expandObservePath(
                  "out/{workload}-{policy}-{scenario}.json", exp),
              "out/FAM_G-MonNR-One-oversub.json");
    exp.oversubscribed = false;
    EXPECT_EQ(harness::expandObservePath("t-{scenario}", exp),
              "t-steady");
}

TEST(Observe, TraceFileExportMatchesInMemoryExport)
{
    harness::Experiment exp = tinyExperiment(core::Policy::Awg);
    std::string path = testing::TempDir() + "ifp_trace_test.json";
    exp.observe.traceOutPath = path;

    std::ostringstream inline_os;
    harness::runExperimentWithSystem(
        exp, [&](core::GpuSystem &system) {
            harness::writeChromeTrace(inline_os, system);
        });

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "trace file missing: " << path;
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), inline_os.str());
}

TEST(JsonParser, RejectsMalformedInput)
{
    using harness::json::tryParse;
    EXPECT_FALSE(tryParse("").has_value());
    EXPECT_FALSE(tryParse("{").has_value());
    EXPECT_FALSE(tryParse("[1,]").has_value());
    EXPECT_FALSE(tryParse("{\"a\":}").has_value());
    EXPECT_FALSE(tryParse("tru").has_value());
    EXPECT_FALSE(tryParse("{} trailing").has_value());
}

TEST(JsonParser, ParsesScalarsAndNesting)
{
    using harness::json::tryParse;
    std::optional<Value> v =
        tryParse("{\"a\":[1,2.5,-3],\"b\":{\"c\":true,"
                 "\"d\":null,\"e\":\"x\\ny\"}}");
    ASSERT_TRUE(v.has_value());
    const Value *a = v->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
    EXPECT_DOUBLE_EQ(a->array[2].number, -3.0);
    const Value *b = v->find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->find("c")->boolean);
    EXPECT_TRUE(b->find("d")->isNull());
    EXPECT_EQ(b->find("e")->string, "x\ny");
}
