/**
 * @file
 * Unit tests for the set-associative tag array.
 */

#include <gtest/gtest.h>

#include "mem/cache_tags.hh"

namespace ifp::mem {
namespace {

TEST(CacheTags, LineAlignment)
{
    CacheTags tags(1024, 2, 64);
    EXPECT_EQ(tags.lineOf(0x1234), 0x1200u | 0x00u);
    EXPECT_EQ(tags.lineOf(0x1240), 0x1240u);
    EXPECT_EQ(tags.lineOf(0x127F), 0x1240u);
}

TEST(CacheTags, MissThenHitAfterInsert)
{
    CacheTags tags(1024, 2, 64);
    EXPECT_EQ(tags.lookup(0x1000), nullptr);
    tags.insert(0x1000);
    CacheTags::Line *line = tags.lookup(0x1010);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->lineAddr, 0x1000u);
}

TEST(CacheTags, LruEviction)
{
    // 2-way, 64B lines, 2 sets (256 B total).
    CacheTags tags(256, 2, 64);
    // Three lines mapping to set 0 (stride = sets * line = 128).
    tags.insert(0x0000);
    tags.insert(0x0080);
    tags.touch(*tags.lookup(0x0000));  // make 0x0080 the LRU
    CacheTags::Victim victim = tags.insert(0x0100);
    EXPECT_TRUE(victim.evicted);
    EXPECT_EQ(victim.lineAddr, 0x0080u);
    EXPECT_NE(tags.lookup(0x0000), nullptr);
    EXPECT_EQ(tags.lookup(0x0080), nullptr);
    EXPECT_NE(tags.lookup(0x0100), nullptr);
}

TEST(CacheTags, PinnedLinesAreNotVictims)
{
    CacheTags tags(256, 2, 64);
    tags.insert(0x0000);
    tags.insert(0x0080);
    tags.lookup(0x0000)->pinned = true;
    tags.lookup(0x0080)->pinned = true;
    CacheTags::Victim victim = tags.insert(0x0100);
    EXPECT_TRUE(victim.noWayFree);
    EXPECT_EQ(tags.lookup(0x0100), nullptr);

    tags.lookup(0x0080)->pinned = false;
    victim = tags.insert(0x0100);
    EXPECT_FALSE(victim.noWayFree);
    EXPECT_EQ(victim.lineAddr, 0x0080u);
}

TEST(CacheTags, DirtyVictimReported)
{
    CacheTags tags(256, 1, 64);  // direct-mapped, 4 sets
    tags.insert(0x0000);
    tags.lookup(0x0000)->dirty = true;
    CacheTags::Victim victim = tags.insert(0x0100);  // same set
    EXPECT_TRUE(victim.evicted);
    EXPECT_TRUE(victim.wasDirty);
}

TEST(CacheTags, InvalidateAllAndOne)
{
    CacheTags tags(1024, 2, 64);
    tags.insert(0x0000);
    tags.insert(0x1000);
    EXPECT_EQ(tags.numValid(), 2u);
    tags.invalidate(0x0000);
    EXPECT_EQ(tags.numValid(), 1u);
    EXPECT_EQ(tags.lookup(0x0000), nullptr);
    tags.invalidateAll();
    EXPECT_EQ(tags.numValid(), 0u);
}

TEST(CacheTags, GeometryAccessors)
{
    CacheTags tags(512 * 1024, 16, 64);
    EXPECT_EQ(tags.sets(), 512u);
    EXPECT_EQ(tags.ways(), 16u);
    EXPECT_EQ(tags.lineSize(), 64u);
}

TEST(CacheTags, FillsWholeSetBeforeEvicting)
{
    CacheTags tags(512, 4, 64);  // 2 sets, 4 ways
    for (int i = 0; i < 4; ++i) {
        CacheTags::Victim victim = tags.insert(0x0000 + i * 0x80);
        EXPECT_FALSE(victim.evicted);
    }
    CacheTags::Victim victim = tags.insert(4 * 0x80);
    EXPECT_TRUE(victim.evicted);
}

} // anonymous namespace
} // namespace ifp::mem
