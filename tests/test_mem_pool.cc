/**
 * @file
 * Unit tests for the MemRequest slab pool and the typed-responder
 * lifecycle: intrusive refcounting, slab recycling, the parent-handle
 * teardown path, the exactly-once response contract, and the
 * leaked-request destructor assert that catches the callback-capture
 * bug class structurally.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "mem/request.hh"

namespace ifp::mem {
namespace {

/** Responder recording every (address, tag) completion it sees. */
struct Recorder : MemResponder
{
    void
    onMemResponse(MemRequest &req, std::uint64_t tag) override
    {
        seen.emplace_back(req.addr, tag);
    }

    std::vector<std::pair<Addr, std::uint64_t>> seen;
};

TEST(MemRequestPool, AllocateRecycleReuse)
{
    MemRequestPool pool(4);
    EXPECT_EQ(pool.inUse(), 0u);
    EXPECT_EQ(pool.capacity(), 0u);
    {
        MemRequestPtr req = pool.allocate();
        EXPECT_EQ(pool.inUse(), 1u);
        EXPECT_EQ(pool.capacity(), 4u);
        req->addr = 0x1234;
    }
    EXPECT_EQ(pool.inUse(), 0u);

    // The recycled slot comes back with default-constructed fields.
    MemRequestPtr again = pool.allocate();
    EXPECT_EQ(again->addr, 0u);
    EXPECT_EQ(again->op, MemOp::Read);
    EXPECT_FALSE(again->waiting);
    EXPECT_EQ(pool.totalAllocations(), 2u);
    EXPECT_EQ(pool.capacity(), 4u);  // no second slab needed
}

TEST(MemRequestPool, HandleCopiesShareOneRequest)
{
    MemRequestPool pool;
    MemRequestPtr a = pool.allocate();
    a->addr = 0x40;
    MemRequestPtr b = a;             // copy retains
    MemRequestPtr c = std::move(a);  // move transfers
    EXPECT_FALSE(a);
    EXPECT_EQ(b.get(), c.get());
    EXPECT_EQ(pool.inUse(), 1u);
    b.reset();
    EXPECT_EQ(pool.inUse(), 1u);     // c still holds it
    c.reset();
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(MemRequestPool, GrowsBySlabsAndTracksHighWater)
{
    MemRequestPool pool(2);
    std::vector<MemRequestPtr> held;
    for (int i = 0; i < 5; ++i)
        held.push_back(pool.allocate());
    EXPECT_EQ(pool.inUse(), 5u);
    EXPECT_EQ(pool.capacity(), 6u);  // three slabs of two
    held.clear();
    EXPECT_EQ(pool.inUse(), 0u);
    EXPECT_EQ(pool.maxInUse(), 5u);
    EXPECT_EQ(pool.totalAllocations(), 5u);

    // Steady-state churn reuses the slabs: capacity is sticky.
    for (int i = 0; i < 1000; ++i)
        pool.allocate();
    EXPECT_EQ(pool.capacity(), 6u);
    EXPECT_EQ(pool.maxInUse(), 5u);
    EXPECT_EQ(pool.totalAllocations(), 1005u);
}

TEST(MemRequestPool, ParentChainReleasesOnRecycle)
{
    // The L2-fill pattern: a fill owns its blocked original through
    // the parent slot. Dropping the outermost handle must unwind the
    // whole chain back into the pool (mid-flight teardown).
    MemRequestPool pool;
    MemRequestPtr original = pool.allocate();
    MemRequestPtr l2_fill = pool.allocate();
    MemRequestPtr l1_fill = pool.allocate();
    l2_fill->parent = original;
    l1_fill->parent = l2_fill;
    original.reset();
    l2_fill.reset();
    EXPECT_EQ(pool.inUse(), 3u);  // chain keeps everything alive
    l1_fill.reset();
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(MemRequestResponder, ChainedSlotFiresBeforePrimary)
{
    MemRequestPool pool;
    Recorder primary, chained;
    MemRequestPtr req = pool.allocate();
    req->addr = 0x80;
    req->setResponder(&primary, 1);
    req->chainResponder(&chained, 2);
    req->respond();
    ASSERT_EQ(chained.seen.size(), 1u);
    ASSERT_EQ(primary.seen.size(), 1u);
    EXPECT_EQ(chained.seen[0], (std::pair<Addr, std::uint64_t>{0x80, 2}));
    EXPECT_EQ(primary.seen[0], (std::pair<Addr, std::uint64_t>{0x80, 1}));
}

TEST(MemRequestResponder, RespondFiresEachSlotExactlyOnce)
{
    MemRequestPool pool;
    Recorder primary;
    MemRequestPtr req = pool.allocate();
    req->setResponder(&primary);
    req->respond();
    req->respond();  // second call must be a structural no-op
    EXPECT_EQ(primary.seen.size(), 1u);
}

TEST(MemRequestResponder, RecycledRequestCarriesNoStaleResponder)
{
    MemRequestPool pool(1);
    Recorder primary, chained;
    {
        MemRequestPtr req = pool.allocate();
        req->setResponder(&primary);
        req->chainResponder(&chained);
        // Dropped without responding (a torn-down in-flight request).
    }
    // The same slot, reallocated, must not re-fire the old responders.
    MemRequestPtr req = pool.allocate();
    req->respond();
    EXPECT_TRUE(primary.seen.empty());
    EXPECT_TRUE(chained.seen.empty());
}

using MemRequestPoolDeathTest = ::testing::Test;

TEST(MemRequestPoolDeathTest, LeakedRequestFatalsOnPoolDestruction)
{
    // A handle (or a callback capturing one) that outlives the pool is
    // exactly the self-cycle bug class; the pool must refuse to die
    // quietly. The leaked handle is declared before the pool so its
    // release would run after the pool's destructor fires the assert.
    EXPECT_DEATH(
        {
            MemRequestPtr leaked;
            MemRequestPool pool;
            leaked = pool.allocate();
        },
        "leaked");
}

} // anonymous namespace
} // namespace ifp::mem
