/**
 * @file
 * Golden-diagnostic tests for the static kernel verifier
 * (src/analysis): one minimal kernel per defect class, a clean kernel
 * asserting zero diagnostics, the static/dynamic cross-check against
 * the window-of-vulnerability race kernel, the suppression mechanics,
 * the KernelBuilder build()-time label validation, and the
 * lintBeforeDispatch hook.
 */

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "analysis/interference.hh"
#include "analysis/lint.hh"
#include "test_helpers.hh"

namespace ifp {
namespace {

using isa::KernelBuilder;
using isa::Label;
using isa::Opcode;
using mem::AtomicOpcode;

/** Lint @p k against the default Table 1 machine. */
analysis::Report
lint(const isa::Kernel &k)
{
    analysis::LaunchContext launch =
        analysis::makeLaunchContext(k, /*num_cus=*/8,
                                    /*simds_per_cu=*/2,
                                    /*wavefronts_per_simd=*/20,
                                    /*lds_bytes_per_cu=*/64 * 1024);
    return analysis::runLint(k, launch);
}

/** Diagnostics in @p r carrying @p code (suppressed ones included). */
unsigned
countCode(const analysis::Report &r, const std::string &code)
{
    unsigned n = 0;
    for (const analysis::Diagnostic &d : r.diagnostics)
        n += d.code == code ? 1 : 0;
    return n;
}

isa::Kernel
wrap(std::vector<isa::Instr> code, unsigned num_wgs = 4)
{
    isa::Kernel k;
    k.name = "golden";
    k.code = std::move(code);
    k.numWgs = num_wgs;
    k.wiPerWg = 64;
    k.maxWgsPerCu = 8;
    return k;
}

TEST(Lint, CleanKernelHasZeroDiagnostics)
{
    KernelBuilder b;
    b.movi(16, 0x1000);
    b.muli(17, isa::rWgId, 8);
    b.add(16, 16, 17);
    b.ld(18, 16);
    b.addi(18, 18, 1);
    b.st(16, 18);
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b, 4));
    EXPECT_TRUE(r.diagnostics.empty());
    EXPECT_TRUE(r.clean(/*werror=*/true));
}

TEST(Lint, BranchOutOfRangeIsAnError)
{
    isa::Instr branch;
    branch.op = Opcode::Bz;
    branch.src0 = isa::rWgId;
    branch.imm = 99;
    isa::Instr halt;
    halt.op = Opcode::Halt;
    analysis::Report r = lint(wrap({branch, halt}));
    EXPECT_EQ(countCode(r, "branch-range"), 1u);
    EXPECT_FALSE(r.clean(false));
}

TEST(Lint, MissingHaltAndFallOffEnd)
{
    KernelBuilder b;
    b.movi(16, 1);
    b.addi(16, 16, 1);
    analysis::Report r = lint(test::makeTestKernel(b));
    EXPECT_EQ(countCode(r, "no-halt"), 1u);
    EXPECT_EQ(countCode(r, "fall-off-end"), 1u);
    EXPECT_FALSE(r.clean(false));
}

TEST(Lint, UnreachableCodeIsAWarning)
{
    KernelBuilder b;
    Label end = b.label();
    b.br(end);
    b.movi(16, 7);  // dead
    b.bind(end);
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b));
    EXPECT_EQ(countCode(r, "unreachable"), 1u);
    EXPECT_TRUE(r.clean(/*werror=*/false));
    EXPECT_FALSE(r.clean(/*werror=*/true));
}

TEST(Lint, UseBeforeDefIsAWarning)
{
    KernelBuilder b;
    b.addi(16, 17, 1);  // r17 never written, not launch-defined
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b));
    EXPECT_EQ(countCode(r, "use-before-def"), 1u);
}

TEST(Lint, WritingR0IsAWarning)
{
    KernelBuilder b;
    b.movi(isa::rZero, 5);
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b));
    EXPECT_EQ(countCode(r, "writes-r0"), 1u);
}

TEST(Lint, MalformedAtomOperandShape)
{
    KernelBuilder b;
    b.movi(16, 0x1000);
    b.movi(17, 1);
    // cas_compare on a non-CAS atomic is dead and almost surely a bug.
    b.atom(20, AtomicOpcode::Add, 16, 0, 17, /*cas_compare=*/5);
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b));
    EXPECT_EQ(countCode(r, "atom-shape"), 1u);
}

TEST(Lint, NonPositiveValuCyclesIsAnError)
{
    // The builder refuses valu(0); build the raw instruction.
    isa::Instr valu;
    valu.op = Opcode::Valu;
    valu.imm = 0;
    isa::Instr halt;
    halt.op = Opcode::Halt;
    analysis::Report r = lint(wrap({valu, halt}));
    EXPECT_EQ(countCode(r, "valu-cycles"), 1u);
}

TEST(Lint, ConstantZeroDivisorIsAnError)
{
    KernelBuilder b;
    b.movi(16, 42);
    b.divi(17, 16, 0);
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b));
    EXPECT_EQ(countCode(r, "div-zero"), 1u);
}

TEST(Lint, NonPositiveSleepIsAnError)
{
    KernelBuilder b;
    b.movi(16, 0);
    b.sleepR(16);
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b));
    EXPECT_EQ(countCode(r, "sleep-cycles"), 1u);
}

TEST(Lint, DivergentBarrierIsFlagged)
{
    // Wavefront 0 skips the barrier: the WG's wavefronts disagree.
    KernelBuilder b;
    Label skip = b.label();
    b.bz(isa::rWfId, skip);
    b.bar();
    b.bind(skip);
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b, 4, 128));
    EXPECT_EQ(countCode(r, "bar-divergence"), 1u);
}

TEST(Lint, UniformBranchAroundBarrierIsClean)
{
    // Same shape, but the condition is WG-uniform (wgId): every
    // wavefront of a WG takes the same path.
    KernelBuilder b;
    Label skip = b.label();
    b.bz(isa::rWgId, skip);
    b.bar();
    b.bind(skip);
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b, 4, 128));
    EXPECT_EQ(countCode(r, "bar-divergence"), 0u);
}

TEST(Lint, FlagsTheDynamicWovRaceKernel)
{
    // Static/dynamic cross-check: the exact kernel
    // test_window_of_vulnerability.cc proves deadlocks under MonR is
    // flagged by the wov pass without running it.
    isa::Kernel racy = test::wovRaceKernel(0x1000, 0x2000,
                                           /*use_waiting_atomic=*/false,
                                           2000, 1000);
    analysis::Report r = lint(racy);
    EXPECT_EQ(countCode(r, "wov"), 1u);
    EXPECT_FALSE(r.clean(/*werror=*/true));

    // The diagnostic lands on the ArmWait instruction itself.
    for (const analysis::Diagnostic &d : r.diagnostics) {
        if (d.code == "wov") {
            ASSERT_GE(d.pc, 0);
            EXPECT_EQ(racy.code[d.pc].op, Opcode::ArmWait);
        }
    }
}

TEST(Lint, WaitingAtomicVariantHasNoWov)
{
    // Figure 10 bottom: check and wait fused — nothing to flag.
    isa::Kernel safe = test::wovRaceKernel(0x1000, 0x2000,
                                           /*use_waiting_atomic=*/true,
                                           2000, 1000);
    analysis::Report r = lint(safe);
    EXPECT_EQ(countCode(r, "wov"), 0u);
}

TEST(Lint, PlainStoreToWaitedAddressIsLostWakeup)
{
    KernelBuilder b;
    b.movi(16, 0x1000);
    b.movi(17, 1);
    Label consumer = b.label();
    Label finish = b.label();
    b.bz(isa::rWgId, consumer);
    b.st(16, 17);  // plain store: does not notify the monitor
    b.br(finish);
    b.bind(consumer);
    Label poll = b.here();
    Label got = b.label();
    b.atom(20, AtomicOpcode::Load, 16, 0, isa::rZero, 0, true);
    b.cmpEq(21, 20, 17);
    b.bnz(21, got);
    b.armWait(16, 0, 17);
    b.br(poll);
    b.bind(got);
    b.bind(finish);
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b, 2));
    EXPECT_EQ(countCode(r, "lost-wakeup"), 1u);
}

/**
 * A minimal single-level busy-wait barrier: every WG bumps the
 * arrival counter; the last arrival (gate: old == G-1) stores the
 * release flag everyone spins on. Needs all G WGs concurrently
 * resident — the paper's Figure 1 deadlock when G exceeds occupancy.
 */
isa::Kernel
spinBarrierKernel(unsigned num_wgs)
{
    KernelBuilder b;
    b.movi(16, 0x1000);
    b.movi(17, 1);
    b.atom(20, AtomicOpcode::Add, 16, 0, 17);
    b.cmpEqi(21, 20, static_cast<std::int64_t>(num_wgs) - 1);
    Label spin = b.label();
    b.bz(21, spin);
    b.st(16, 17, 8);  // last arrival releases
    b.bind(spin);
    Label poll = b.here();
    b.ld(22, 16, 8);
    b.cmpEq(23, 22, 17);
    b.bz(23, poll);
    b.halt();

    isa::Kernel k;
    k.name = "spin-barrier";
    k.code = b.build();
    k.numWgs = num_wgs;
    k.wiPerWg = 64;
    k.ldsBytes = 1024;
    k.maxWgsPerCu = 8;
    return k;
}

TEST(Lint, OversubscribedSpinBarrierIsInsufficientResidency)
{
    // 128 WGs, but Baseline occupancy sustains 8 CUs x 8 = 64.
    analysis::Report r = lint(spinBarrierKernel(128));
    EXPECT_EQ(countCode(r, "insufficient-residency"), 1u);
    EXPECT_FALSE(r.clean(false));
}

TEST(Lint, ResidentSpinBarrierPassesTheProgressCheck)
{
    // 64 WGs fit exactly: the same kernel is statically safe.
    analysis::Report r = lint(spinBarrierKernel(64));
    EXPECT_EQ(countCode(r, "insufficient-residency"), 0u);
}

TEST(Lint, SpinOnNeverWrittenAddressIsWaitNoNotify)
{
    KernelBuilder b;
    b.movi(16, 0x1000);
    Label poll = b.here();
    b.ld(20, 16);
    b.cmpEqi(21, 20, 1);
    b.bz(21, poll);
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b, 4));
    EXPECT_EQ(countCode(r, "wait-no-notify"), 1u);
}

TEST(Lint, SuppressionDemotesToNoteAndKeepsTheRecord)
{
    isa::Kernel racy = test::wovRaceKernel(0x1000, 0x2000, false,
                                           2000, 1000);
    racy.lintSuppressions.push_back(
        {"wov", "intentional: exercises the race"});
    analysis::Report r = lint(racy);
    ASSERT_EQ(countCode(r, "wov"), 1u);
    for (const analysis::Diagnostic &d : r.diagnostics) {
        if (d.code == "wov") {
            EXPECT_TRUE(d.suppressed);
            EXPECT_EQ(d.severity, analysis::Severity::Note);
            EXPECT_EQ(d.suppressReason,
                      "intentional: exercises the race");
        }
    }
    EXPECT_TRUE(r.clean(/*werror=*/true));
}

TEST(Lint, JsonSerializationIsDeterministic)
{
    std::vector<analysis::Report> reports;
    reports.push_back(lint(test::wovRaceKernel(0x1000, 0x2000, false,
                                               2000, 1000)));
    reports.push_back(lint(spinBarrierKernel(128)));
    std::ostringstream a, b;
    analysis::writeReportsJson(reports, a);
    analysis::writeReportsJson(reports, b);
    EXPECT_FALSE(a.str().empty());
    EXPECT_EQ(a.str(), b.str());
}

TEST(Dataflow, WideningSaturatesInsteadOfWrapping)
{
    // A loop counter with no provable bound widens to the +inf
    // sentinel; arithmetic on the widened interval must saturate at
    // the sentinel, never wrap past INT64_MAX into a bogus bounded
    // (negative) range that downstream address checks would trust.
    KernelBuilder b;
    b.movi(16, 0);
    Label loop = b.here();
    b.addi(16, 16, 1);
    b.cmpEqi(21, 16, 1000);
    b.bz(21, loop);
    b.addi(17, 16, 5);
    b.muli(18, 16, 8);
    b.halt();
    isa::Kernel k = test::makeTestKernel(b, 4);

    analysis::Cfg cfg(k.code);
    analysis::LaunchContext launch =
        analysis::makeLaunchContext(k, 8, 2, 20, 64 * 1024);
    analysis::Dataflow df(cfg, launch);

    const std::size_t halt_pc = k.code.size() - 1;
    analysis::Interval counter = df.value(halt_pc, 16);
    EXPECT_FALSE(counter.bounded());
    EXPECT_EQ(counter.hi, std::numeric_limits<std::int64_t>::max());
    EXPECT_GE(counter.lo, 0) << "widening lost the stable lower bound";

    analysis::Interval plus = df.value(halt_pc, 17);
    EXPECT_EQ(plus.hi, std::numeric_limits<std::int64_t>::max())
        << "add on a widened interval wrapped instead of saturating";
    analysis::Interval scaled = df.value(halt_pc, 18);
    EXPECT_EQ(scaled.hi, std::numeric_limits<std::int64_t>::max())
        << "mul on a widened interval wrapped instead of saturating";
}

TEST(Dataflow, PinnedWgMakesWgIdConstant)
{
    KernelBuilder b;
    b.muli(16, isa::rWgId, 8);
    b.halt();
    isa::Kernel k = test::makeTestKernel(b, 8);

    analysis::Cfg cfg(k.code);
    analysis::LaunchContext launch =
        analysis::makeLaunchContext(k, 8, 2, 20, 64 * 1024);
    launch.pinnedWg = 3;
    analysis::Dataflow df(cfg, launch);
    EXPECT_EQ(df.value(0, isa::rWgId),
              analysis::Interval::constant(3));
    EXPECT_EQ(df.value(k.code.size() - 1, 16),
              analysis::Interval::constant(24));
}

/** flags[wg] published, flags[pair partner] read; 4 WGs, 2 pairs. */
isa::Kernel
pairedFlagsKernel()
{
    KernelBuilder b;
    b.movi(16, 0x1000);
    b.muli(17, isa::rWgId, 8);
    b.add(17, 16, 17);          // &flags[wg]
    b.remi(18, isa::rWgId, 2);
    b.muli(18, 18, 2);
    b.addi(19, isa::rWgId, 1);
    b.sub(18, 19, 18);
    b.muli(18, 18, 8);
    b.add(18, 16, 18);          // &flags[wg + 1 - 2*(wg%2)]
    b.movi(20, 1);
    b.st(17, 20);               // publish mine
    b.ld(21, 18);               // read my partner's
    b.halt();
    return test::makeTestKernel(b, 4);
}

TEST(Interference, PinnedFootprintsSeparatePairs)
{
    isa::Kernel k = pairedFlagsKernel();
    analysis::InterferenceAnalysis ia(
        k, analysis::makeLaunchContext(k, 8, 2, 20, 64 * 1024));
    ASSERT_FALSE(ia.capped());
    ASSERT_EQ(ia.numWgs(), 4u);
    EXPECT_TRUE(ia.footprint(0).bounded());
    EXPECT_TRUE(ia.mayConflict(0, 1));   // same pair: shared flags
    EXPECT_TRUE(ia.mayConflict(2, 3));
    EXPECT_FALSE(ia.mayConflict(0, 2));  // cross-pair: disjoint
    EXPECT_FALSE(ia.mayConflict(1, 3));
}

TEST(Interference, CommutativityOracleRespectsFootprints)
{
    isa::Kernel k = pairedFlagsKernel();
    analysis::CommutativityOracle oracle(
        k, analysis::makeLaunchContext(k, 8, 2, 20, 64 * 1024));

    auto action = [](int wg) {
        analysis::SchedAction a;
        a.site = ifp::sim::ChoicePoint::WavefrontIssue;
        a.wg = wg;
        a.pc = 0;
        return a;
    };
    EXPECT_TRUE(oracle.independent(action(0), action(2)));
    EXPECT_FALSE(oracle.independent(action(0), action(1)));
    EXPECT_FALSE(oracle.independent(action(0), action(0)));

    analysis::SchedAction unknown;
    unknown.site = ifp::sim::ChoicePoint::WavefrontIssue;
    EXPECT_FALSE(unknown.known());
    EXPECT_FALSE(oracle.independent(action(0), unknown));

    // Placement-changing sites never commute, whatever the actors.
    analysis::SchedAction host = action(0);
    host.site = ifp::sim::ChoicePoint::HostCu;
    analysis::SchedAction host2 = action(2);
    host2.site = ifp::sim::ChoicePoint::HostCu;
    EXPECT_FALSE(oracle.independent(host, host2));
}

TEST(Interference, WidenedAddressFallsBackToUnbounded)
{
    // The loop counter widens; feeding it into address math makes the
    // footprint unbounded, and unbounded footprints conflict with
    // everything — the POR fallback-to-dependent rule.
    KernelBuilder b;
    b.movi(16, 0);
    Label loop = b.here();
    b.addi(16, 16, 1);
    b.cmpEqi(21, 16, 1000);
    b.bz(21, loop);
    b.muli(17, 16, 8);
    b.movi(18, 0x1000);
    b.add(17, 18, 17);
    b.ld(20, 17);
    b.st(17, 20);
    b.halt();
    isa::Kernel k = test::makeTestKernel(b, 4);
    analysis::InterferenceAnalysis ia(
        k, analysis::makeLaunchContext(k, 8, 2, 20, 64 * 1024));
    ASSERT_FALSE(ia.capped());
    EXPECT_TRUE(ia.footprint(0).reads.unbounded);
    EXPECT_TRUE(ia.footprint(0).writes.unbounded);
    EXPECT_FALSE(ia.footprint(0).bounded());
    EXPECT_TRUE(ia.mayConflict(0, 1));
}

TEST(Interference, CircularWaitPairIsFlagged)
{
    // Each WG spins on the other's flag before publishing its own:
    // both notifies are guarded by stuck waits, so the wait-for
    // fixpoint keeps both wait sites and the lint pass reports the
    // static circular wait.
    KernelBuilder b;
    b.movi(16, 0x1000);
    b.muli(17, isa::rWgId, 8);
    b.add(17, 16, 17);          // &flags[wg]
    b.movi(18, 1);
    b.sub(18, 18, isa::rWgId);
    b.muli(18, 18, 8);
    b.add(18, 16, 18);          // &flags[1 - wg]
    b.movi(20, 1);
    Label poll = b.here();
    b.ld(21, 18);
    b.cmpEq(22, 21, 20);
    b.bz(22, poll);             // wait for the partner first...
    b.st(17, 20);               // ...then publish
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b, 2));
    EXPECT_EQ(countCode(r, "static-circular-wait"), 1u);
}

TEST(Interference, WaitForZeroIsNeverACircularWaitCandidate)
{
    // Memory starts zeroed, so a wait whose expected value may be 0
    // (TAS "lock free" polls) is satisfiable at launch and must not
    // be reported even though nobody ever writes the address.
    KernelBuilder b;
    b.movi(16, 0x1000);
    b.muli(17, isa::rWgId, 8);
    b.add(17, 16, 17);
    Label poll = b.here();
    b.ld(21, 17);
    b.cmpEqi(22, 21, 0);
    b.bz(22, poll);             // spin until flags[wg] == 0
    b.halt();
    analysis::Report r = lint(test::makeTestKernel(b, 2));
    EXPECT_EQ(countCode(r, "static-circular-wait"), 0u);
}

TEST(Interference, SummaryJsonIsDeterministic)
{
    isa::Kernel k = pairedFlagsKernel();
    analysis::LaunchContext launch =
        analysis::makeLaunchContext(k, 8, 2, 20, 64 * 1024);
    std::vector<analysis::InterferenceSummary> summaries;
    summaries.push_back(analysis::summarizeInterference(k, launch));
    std::ostringstream a, c;
    analysis::writeInterferenceSummariesJson(summaries, a);
    analysis::writeInterferenceSummariesJson(summaries, c);
    EXPECT_FALSE(a.str().empty());
    EXPECT_EQ(a.str(), c.str());
}

TEST(BuilderValidation, UnboundLabelFailsBuildWithClearError)
{
    EXPECT_EXIT(
        {
            KernelBuilder b;
            Label l = b.label();
            b.br(l);
            b.halt();
            b.build();
        },
        ::testing::ExitedWithCode(1), "never bound");
}

TEST(BuilderValidation, LabelBoundPastTheEndFailsBuild)
{
    EXPECT_EXIT(
        {
            KernelBuilder b;
            Label l = b.label();
            b.br(l);
            b.bind(l);  // bound, but no instruction follows
            b.build();
        },
        ::testing::ExitedWithCode(1), "past the last instruction");
}

TEST(DispatchLint, RejectsMalformedKernelBeforeLaunch)
{
    core::RunConfig cfg;
    cfg.dispatch.lintBeforeDispatch = true;
    core::GpuSystem system(cfg);
    KernelBuilder b;
    b.movi(16, 1);  // no halt: falls off the end (a structural error)
    EXPECT_THROW(system.run(test::makeTestKernel(b)),
                 std::invalid_argument);
}

TEST(DispatchLint, CleanKernelStillRuns)
{
    core::RunConfig cfg;
    cfg.dispatch.lintBeforeDispatch = true;
    cfg.dispatch.lintWerror = true;
    core::GpuSystem system(cfg);
    mem::Addr buf = system.allocate(64);
    KernelBuilder b;
    b.movi(16, static_cast<std::int64_t>(buf));
    b.movi(17, 7);
    b.st(16, 17);
    b.halt();
    core::RunResult r = system.run(test::makeTestKernel(b));
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(system.memory().read(buf, 8), 7);
}

} // anonymous namespace
} // namespace ifp
