/**
 * @file
 * The zero-steady-state-allocation gate (own binary: it replaces the
 * global operator new/delete with counting versions, which must not
 * leak into the main test suite).
 *
 * The pooled-request overhaul promises that the warmed-up
 * CU-facing round trip — L1 hit, L1-bypassed atomic at the L2, and
 * the event-queue one-shots that carry them — touches the heap not at
 * all: requests come from the MemRequestPool, completions go through
 * typed responders, events recycle through the queue's free-list,
 * device queues are RingQueues, and event descriptions stay in SSO.
 * These tests pin that property exactly, so any future change that
 * sneaks a per-request allocation back in fails here instead of
 * showing up as a slow bench three PRs later.
 *
 * Cold paths (first touch of a line, MSHR creation, pool/slab growth)
 * are warm-up by definition and excluded by design.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "mem/backing_store.hh"
#include "mem/dram.hh"
#include "mem/l1_cache.hh"
#include "mem/l2_cache.hh"
#include "sim/event_queue.hh"

namespace {

std::atomic<std::uint64_t> g_newCalls{0};

std::uint64_t
allocCount()
{
    return g_newCalls.load(std::memory_order_relaxed);
}

} // anonymous namespace

void *
operator new(std::size_t size)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    std::size_t al = static_cast<std::size_t>(align);
    if (void *p = std::aligned_alloc(al, (size + al - 1) / al * al))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace ifp {
namespace {

/** The CU-facing memory stack, as in bench/microbench_mem_path.cc. */
struct MemPath : mem::MemResponder
{
    mem::MemRequestPool pool;
    sim::EventQueue eq;
    mem::BackingStore store;
    mem::Dram dram{"dram", eq, mem::DramConfig{}};
    mem::L2Cache l2{"l2", eq, mem::L2Config{}, dram, store, pool};
    mem::L1Cache l1{"cu0.l1", eq, mem::L1Config{}, l2, pool};

    std::uint64_t completed = 0;

    void
    onMemResponse(mem::MemRequest &, std::uint64_t) override
    {
        ++completed;
    }

    void
    issueRead(mem::Addr addr)
    {
        mem::MemRequestPtr req = pool.allocate();
        req->op = mem::MemOp::Read;
        req->addr = addr;
        req->setResponder(this);
        l1.access(req);
    }

    void
    issueAtomic(mem::Addr addr)
    {
        mem::MemRequestPtr req = pool.allocate();
        req->op = mem::MemOp::Atomic;
        req->aop = mem::AtomicOpcode::Add;
        req->addr = addr;
        req->operand = 1;
        req->setResponder(this);
        l1.access(req);
    }

    /** One warm-up/measurement round: hits + atomics over 64 lines. */
    void
    round()
    {
        for (int i = 0; i < 64; ++i)
            issueRead(0x4000);
        for (int i = 0; i < 64; ++i)
            issueAtomic(0x2000 + (i % 64) * 64);
        eq.simulate();
    }
};

TEST(AllocGate, WarmMemoryRoundTripAllocatesNothing)
{
    MemPath path;
    // Two warm-up rounds: fill the touched lines, size the pool, the
    // event free-list and heap, the bank/channel rings, and the
    // per-line RMW turnaround map.
    path.round();
    path.round();
    const std::uint64_t warm_completed = path.completed;

    const std::uint64_t before = allocCount();
    for (int i = 0; i < 10; ++i)
        path.round();
    const std::uint64_t after = allocCount();

    EXPECT_EQ(after - before, 0u)
        << "the warmed L1-hit + L2-atomic round trip touched the heap";
    EXPECT_EQ(path.completed, warm_completed + 10 * 128);
}

TEST(AllocGate, RequestLifecycleAllocatesNothingAfterWarmup)
{
    mem::MemRequestPool pool;
    { mem::MemRequestPtr warm = pool.allocate(); }

    const std::uint64_t before = allocCount();
    for (int i = 0; i < 10'000; ++i) {
        mem::MemRequestPtr req = pool.allocate();
        req->respond();
    }
    const std::uint64_t after = allocCount();
    EXPECT_EQ(after - before, 0u)
        << "pool allocate/respond/release touched the heap";
}

TEST(AllocGate, EventQueueOneShotsAllocateNothingAfterWarmup)
{
    sim::EventQueue eq;
    int hits = 0;
    // Warm-up wave sizes the owned pool, free-list, and heap vector.
    for (int i = 0; i < 256; ++i)
        eq.schedule(eq.curTick() + i + 1, [&hits] { ++hits; },
                    "cu0.l1.hit");
    eq.simulate();

    const std::uint64_t before = allocCount();
    for (int wave = 0; wave < 10; ++wave) {
        for (int i = 0; i < 256; ++i)
            eq.schedule(eq.curTick() + i + 1, [&hits] { ++hits; },
                        "cu0.l1.hit");
        eq.simulate();
    }
    const std::uint64_t after = allocCount();
    EXPECT_EQ(after - before, 0u)
        << "recycled one-shot scheduling touched the heap";
    EXPECT_EQ(hits, 256 * 11);
}

TEST(AllocGate, SquashedOneShotsRecycleWithoutTheHeap)
{
    sim::EventQueue eq;
    int fired = 0;
    // Warm-up: one schedule/squash/replace cycle. Draining fully each
    // cycle also clears the squashed occurrence's stale heap entry,
    // so the heap never grows across cycles.
    sim::Event *warm = eq.schedule(eq.curTick() + 100, [] {});
    eq.deschedule(warm);
    eq.schedule(eq.curTick() + 1, [&fired] { ++fired; });
    eq.simulate();

    const std::uint64_t before = allocCount();
    for (int i = 0; i < 1000; ++i) {
        sim::Event *ev = eq.schedule(eq.curTick() + 100, [] {});
        eq.deschedule(ev);
        eq.schedule(eq.curTick() + 1, [&fired] { ++fired; });
        eq.simulate();
    }
    const std::uint64_t after = allocCount();
    EXPECT_EQ(after - before, 0u)
        << "squash/recycle of owned one-shots touched the heap";
    EXPECT_EQ(fired, 1001);
}

} // anonymous namespace
} // namespace ifp
