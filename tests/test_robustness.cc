/**
 * @file
 * Fault-injection engine and liveness oracles: plan model and
 * serialization, scenario validation, chaos-campaign determinism,
 * and the verdicts that refine DEADLOCK (LIVELOCK, LOST_WAKEUP).
 * Run with `ctest -L robustness`.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/fault_plan.hh"
#include "core/liveness.hh"
#include "harness/campaign.hh"
#include "test_helpers.hh"

namespace ifp {
namespace {

using core::FaultKind;
using core::FaultPlan;
using core::Policy;
using core::Verdict;

// ---------------------------------------------------------------
// Plan model and serialization
// ---------------------------------------------------------------

TEST(FaultPlanModel, GeneratorIsDeterministic)
{
    core::ChaosSpec spec;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        FaultPlan a = core::generateChaosPlan(spec, seed);
        FaultPlan b = core::generateChaosPlan(spec, seed);
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_FALSE(a.empty());
    }
    EXPECT_NE(core::generateChaosPlan(spec, 1),
              core::generateChaosPlan(spec, 2));
}

TEST(FaultPlanModel, GeneratorEmitsSurvivablePlans)
{
    core::ChaosSpec spec;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        FaultPlan plan = core::generateChaosPlan(spec, seed);
        for (std::size_t i = 0; i < plan.events.size(); ++i) {
            const core::FaultEvent &ev = plan.events[i];
            if (ev.kind != FaultKind::CuOffline)
                continue;
            ASSERT_GE(ev.cuId, 0);
            ASSERT_LT(ev.cuId, static_cast<int>(spec.numCus));
            // Every offline edge has a later online edge for the
            // same CU: no plan strands a CU forever.
            bool restored = false;
            for (std::size_t j = 0; j < plan.events.size(); ++j) {
                const core::FaultEvent &on = plan.events[j];
                if (on.kind == FaultKind::CuOnline &&
                    on.cuId == ev.cuId && on.atUs > ev.atUs) {
                    restored = true;
                    break;
                }
            }
            EXPECT_TRUE(restored)
                << "seed " << seed << ": cu" << ev.cuId
                << " offlined at " << ev.atUs << "us never restored";
        }
    }
}

TEST(FaultPlanModel, TextRoundTripsEveryPreset)
{
    for (const std::string &name : core::faultPlanPresetNames()) {
        FaultPlan plan = core::faultPlanPreset(name);
        EXPECT_FALSE(plan.empty()) << name;
        std::string error;
        auto parsed = core::parseFaultPlan(core::writeFaultPlan(plan),
                                           error);
        ASSERT_TRUE(parsed.has_value()) << name << ": " << error;
        EXPECT_EQ(*parsed, plan) << name;
    }
}

TEST(FaultPlanModel, TextRoundTripsGeneratedPlans)
{
    FaultPlan plan = core::generateChaosPlan(core::ChaosSpec{}, 42);
    std::string error;
    auto parsed =
        core::parseFaultPlan(core::writeFaultPlan(plan), error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(*parsed, plan);
}

TEST(FaultPlanModel, ParserReportsErrorsWithLineNumbers)
{
    std::string error;
    EXPECT_FALSE(core::parseFaultPlan("cu-offline cu=3\n", error));
    EXPECT_NE(error.find("line 1"), std::string::npos) << error;
    EXPECT_NE(error.find("at="), std::string::npos) << error;

    EXPECT_FALSE(core::parseFaultPlan(
        "plan ok\nwarp-drive at=5\n", error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;

    // Windowed kinds need a duration.
    EXPECT_FALSE(core::parseFaultPlan("log-jam at=5\n", error));
    EXPECT_NE(error.find("dur="), std::string::npos) << error;

    EXPECT_FALSE(core::parseFaultPlan("cu-offline at 5\n", error));
    EXPECT_NE(error.find("key=value"), std::string::npos) << error;
}

TEST(FaultPlanModel, ParserIgnoresCommentsAndBlanks)
{
    std::string error;
    auto plan = core::parseFaultPlan(
        "# a comment\n\nplan demo\ncu-offline at=10 cu=2  # inline\n",
        error);
    ASSERT_TRUE(plan.has_value()) << error;
    EXPECT_EQ(plan->name, "demo");
    ASSERT_EQ(plan->events.size(), 1u);
    EXPECT_EQ(plan->events[0].cuId, 2);
}

// ---------------------------------------------------------------
// Construction-time validation
// ---------------------------------------------------------------

TEST(ScenarioValidation, RejectsOutOfRangeOfflineCuId)
{
    core::RunConfig cfg = test::testRunConfig();
    cfg.offlineCuId = static_cast<int>(cfg.gpu.numCus);
    EXPECT_THROW(core::GpuSystem bad(cfg), std::invalid_argument);
    cfg.offlineCuId = -2;
    EXPECT_THROW(core::GpuSystem bad(cfg), std::invalid_argument);

    cfg.offlineCuId = -1;  // last CU, valid
    EXPECT_NO_THROW(core::GpuSystem ok(cfg));
    cfg.offlineCuId = static_cast<int>(cfg.gpu.numCus) - 1;
    EXPECT_NO_THROW(core::GpuSystem ok(cfg));
}

TEST(ScenarioValidation, RejectsOutOfRangePlanChurnTarget)
{
    core::RunConfig cfg = test::testRunConfig();
    cfg.faultPlan.events = {
        {FaultKind::CuOffline, 10, 0, 12, 0}};
    EXPECT_THROW(core::GpuSystem bad(cfg), std::invalid_argument);

    cfg.faultPlan.events = {{FaultKind::CuOffline, 10, 0, -1, 0},
                            {FaultKind::CuOnline, 20, 0, -1, 0}};
    EXPECT_NO_THROW(core::GpuSystem ok(cfg));
}

// ---------------------------------------------------------------
// Liveness verdicts
// ---------------------------------------------------------------

TEST(Verdicts, CompletedRunsReportComplete)
{
    auto result = test::runSmall("SPM_G", Policy::Awg);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.verdict, Verdict::Complete);
    EXPECT_NE(result.verdictString().find("COMPLETE"),
              std::string::npos);
}

TEST(Verdicts, StrandedBaselineIsDeadlock)
{
    // Busy-wait spinning uses plain atomics (no retry signal), so the
    // stranded oversubscribed Baseline is a clean DEADLOCK.
    auto result = test::runSmall("FAM_G", Policy::Baseline, true);
    ASSERT_TRUE(result.deadlocked);
    EXPECT_EQ(result.verdict, Verdict::Deadlock);
    // Legacy status strings are part of the table format and must
    // not change with the verdict refinement.
    EXPECT_EQ(result.statusString(), "DEADLOCK");
}

TEST(Verdicts, SleepBackoffClassifiesAsLivelock)
{
    // The stranded WGs hold the lock, but resident WGs keep waking
    // from s_sleep and retrying: busy, not blocked.
    auto result = test::runSmall("FAM_G", Policy::Sleep, true);
    ASSERT_TRUE(result.deadlocked);
    EXPECT_EQ(result.verdict, Verdict::Livelock);
    EXPECT_EQ(result.statusString(), "DEADLOCK");
}

/**
 * Producer/consumer pair for the dropped-resume scenario. WG0 waits
 * for the flag; WG1 raises it after some work. The wait uses the
 * MonR-style check + arm-wait sequence with no gap, so without fault
 * injection the monitor resume always arrives.
 */
isa::Kernel
flagKernel(mem::Addr flag, bool wait_instr)
{
    isa::KernelBuilder b;
    b.movi(16, static_cast<std::int64_t>(flag));
    b.movi(17, 1);

    isa::Label consumer = b.label();
    isa::Label finish = b.label();
    b.bz(isa::rWgId, consumer);

    b.valu(5'000);  // producer: work, then raise the flag
    b.atom(20, mem::AtomicOpcode::Exch, 16, 0, 17, 0, false, true);
    b.br(finish);

    b.bind(consumer);
    if (wait_instr) {
        isa::Label poll = b.here();
        isa::Label got = b.label();
        b.atom(20, mem::AtomicOpcode::Load, 16, 0, 0, 0, true);
        b.cmpEq(21, 20, 17);
        b.bnz(21, got);
        b.armWait(16, 0, 17);
        b.br(poll);
        b.bind(got);
    } else {
        isa::Label retry = b.here();
        b.atomWait(20, mem::AtomicOpcode::Load, 16, 0, 0, 17, true);
        b.cmpEq(21, 20, 17);
        b.bz(21, retry);
    }
    b.bind(finish);
    b.halt();

    isa::Kernel k;
    k.name = "flag";
    k.code = b.build();
    k.numWgs = 2;
    k.wiPerWg = 64;
    k.maxWgsPerCu = 8;
    return k;
}

core::RunResult
runFlagKernel(Policy policy, const FaultPlan &plan,
              sim::Cycles rescue_cycles)
{
    core::RunConfig cfg;
    cfg.policy.policy = policy;
    cfg.policy.syncmon.rescueIntervalCycles = rescue_cycles;
    cfg.faultPlan = plan;
    cfg.deadlockWindowCycles = 100'000;
    core::GpuSystem system(cfg);
    mem::Addr flag = system.allocate(64);
    return system.run(
        flagKernel(flag, core::styleFor(policy) ==
                             core::SyncStyle::WaitInstr));
}

FaultPlan
dropResumePlan()
{
    FaultPlan plan;
    plan.name = "drop-everything";
    plan.events = {{FaultKind::DropResume, 0, 10'000, -1, 0}};
    return plan;
}

TEST(Verdicts, DroppedResumeOnMonRWithoutRescueIsLostWakeup)
{
    // The acceptance scenario: the producer's update fires the MonR
    // condition, the notification is dropped, and no rescue timeout
    // exists to Mesa-retry the waiter. The flag *holds* in memory
    // while WG0 sleeps — a lost wakeup, not a deadlock.
    core::RunResult r = runFlagKernel(Policy::MonRAll,
                                      dropResumePlan(),
                                      /*rescue=*/50'000'000);
    ASSERT_TRUE(r.deadlocked);
    EXPECT_EQ(r.verdict, Verdict::LostWakeup);
    EXPECT_GE(r.droppedResumes, 1u);
    ASSERT_FALSE(r.lostWakeups.empty());
    EXPECT_EQ(r.lostWakeups[0].wgId, 0);
    EXPECT_GT(r.lostWakeups[0].heldCycles, 0u);
}

TEST(Verdicts, DroppedResumeOnMonNRWithoutRescueIsLostWakeup)
{
    // Waiting atomics close the arm race but cannot survive a
    // dropped notification either once the backstop is gone.
    core::RunResult r = runFlagKernel(Policy::MonNRAll,
                                      dropResumePlan(),
                                      /*rescue=*/50'000'000);
    ASSERT_TRUE(r.deadlocked);
    EXPECT_EQ(r.verdict, Verdict::LostWakeup);
}

TEST(Verdicts, RescueBackstopSurvivesDroppedResumes)
{
    // Same fault, realistic rescue interval: the CP re-activates the
    // waiter, it re-checks the (held) condition and completes. This
    // is the paper's IFP argument under fault injection.
    core::RunResult r = runFlagKernel(Policy::MonRAll,
                                      dropResumePlan(),
                                      /*rescue=*/20'000);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.verdict, Verdict::Complete);
    EXPECT_GE(r.droppedResumes, 1u);
}

// ---------------------------------------------------------------
// Fault application
// ---------------------------------------------------------------

harness::Experiment
faultedExperiment(const std::string &workload, Policy policy,
                  const FaultPlan &plan)
{
    harness::Experiment exp;
    exp.workload = workload;
    exp.policy = policy;
    exp.params = test::smallParams();
    exp.params.iters = 12;
    exp.runCfg = test::testRunConfig(policy);
    exp.runCfg.faultPlan = plan;
    return exp;
}

TEST(FaultApplication, CuChurnDuringDispatchIsSafe)
{
    // An offline edge at t=0 lands inside the dispatch latency of
    // the initial WG wave: the victims are still Dispatching and must
    // be re-queued, not crashed on or stranded.
    FaultPlan plan;
    plan.name = "churn-at-dispatch";
    plan.events = {{FaultKind::CuOffline, 0, 0, -1, 0},
                   {FaultKind::CuOnline, 10, 0, -1, 0}};
    auto result = harness::runExperiment(
        faultedExperiment("SPM_G", Policy::Awg, plan));
    ASSERT_TRUE(result.completed) << result.verdictString();
    EXPECT_TRUE(result.validated) << result.validationError;
    EXPECT_GT(result.forcedPreemptions, 0u);
    EXPECT_EQ(result.injectedFaults, 2u);
}

TEST(FaultApplication, RepeatedChurnCompletesOnRescuePolicies)
{
    FaultPlan plan = core::faultPlanPreset("cu-churn");
    for (Policy policy : {Policy::Timeout, Policy::Awg}) {
        auto result = harness::runExperiment(
            faultedExperiment("FAM_G", policy, plan));
        EXPECT_TRUE(result.completed)
            << core::policyName(policy) << ": "
            << result.verdictString();
        EXPECT_TRUE(result.validated) << result.validationError;
    }
}

TEST(FaultApplication, PressureWindowForcesSpills)
{
    FaultPlan plan = core::faultPlanPreset("syncmon-pressure");
    auto result = harness::runExperiment(
        faultedExperiment("SPM_G", Policy::MonNRAll, plan));
    ASSERT_TRUE(result.completed) << result.verdictString();
    EXPECT_GT(result.spills, 0u)
        << "pressure window never forced the virtualization path";
}

TEST(FaultApplication, LogJamForcesMesaRetries)
{
    FaultPlan plan = core::faultPlanPreset("log-jam");
    auto result = harness::runExperiment(
        faultedExperiment("SPM_G", Policy::MonNRAll, plan));
    ASSERT_TRUE(result.completed) << result.verdictString();
    EXPECT_GT(result.logFullRetries, 0u)
        << "jam window never rejected a spill into a Mesa retry";
}

TEST(FaultApplication, DelayedResumesAreCountedAndSurvived)
{
    FaultPlan plan = core::faultPlanPreset("delayed-resume");
    auto result = harness::runExperiment(
        faultedExperiment("SPM_G", Policy::MonNRAll, plan));
    ASSERT_TRUE(result.completed) << result.verdictString();
    EXPECT_GT(result.delayedResumes, 0u);
}

TEST(FaultApplication, CpStallDefersHousekeeping)
{
    FaultPlan plan = core::faultPlanPreset("cp-stall");
    double deferrals = 0;
    auto result = harness::runExperimentWithSystem(
        faultedExperiment("FAM_G", Policy::Timeout, plan),
        [&](core::GpuSystem &system) {
            deferrals = system.commandProcessor()
                            .stats()
                            .scalar("stallDeferrals")
                            .value();
        });
    ASSERT_TRUE(result.completed) << result.verdictString();
    EXPECT_GT(deferrals, 0.0)
        << "stall window never intercepted a housekeeping pass";
}

TEST(FaultApplication, TraceRecordsEveryInjectedFault)
{
    harness::Experiment exp = faultedExperiment(
        "SPM_G", Policy::Awg, core::faultPlanPreset("kitchen-sink"));
    exp.observe.captureTrace = true;
    std::uint64_t traced = 0;
    auto result = harness::runExperimentWithSystem(
        exp, [&](core::GpuSystem &system) {
            ASSERT_NE(system.traceSink(), nullptr);
            for (const sim::TraceEvent &ev :
                 system.traceSink()->events()) {
                if (ev.kind == sim::TraceEventKind::FaultInjected)
                    ++traced;
            }
        });
    EXPECT_GT(result.injectedFaults, 0u);
    EXPECT_EQ(traced, result.injectedFaults);
}

TEST(FaultApplication, RecoveryAccountingMeasuresRestoreToSwapIn)
{
    harness::Experiment exp;
    exp.workload = "FAM_G";
    exp.policy = Policy::Awg;
    exp.oversubscribed = true;
    exp.params = test::smallParams();
    exp.params.iters = 12;
    // Two CUs, one lost: the survivor cannot host all 16 WGs, so
    // swap traffic persists long past the restore and the restored
    // CU demonstrably re-enters rotation.
    exp.runCfg.gpu.numCus = 2;
    exp.runCfg.cuLossMicroseconds = 5;
    exp.runCfg.cuRestoreMicroseconds = 15;
    auto result = harness::runExperiment(exp);
    ASSERT_TRUE(result.completed);
    ASSERT_FALSE(result.faultRecoveries.empty());
    // 15 us at 2 GHz.
    EXPECT_EQ(result.faultRecoveries[0].restoreCycle, 30'000u);
    EXPECT_LT(result.faultRecoveries[0].cyclesToFirstSwapIn,
              result.gpuCycles);
}

// ---------------------------------------------------------------
// Determinism: (plan, seed) -> byte-identical artifacts
// ---------------------------------------------------------------

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(ChaosDeterminism, StatsJsonIsByteIdenticalForSamePlanAndSeed)
{
    core::ChaosSpec spec;
    FaultPlan plan = core::generateChaosPlan(spec, 7);
    auto run_to = [&](const std::string &path) {
        harness::Experiment exp =
            faultedExperiment("SPM_G", Policy::MonNRAll, plan);
        exp.observe.statsJsonPath = path;
        harness::runExperiment(exp);
    };
    std::string a = ::testing::TempDir() + "chaos_stats_a.json";
    std::string b = ::testing::TempDir() + "chaos_stats_b.json";
    run_to(a);
    run_to(b);
    std::string ja = readFile(a);
    std::string jb = readFile(b);
    ASSERT_FALSE(ja.empty());
    EXPECT_EQ(ja, jb)
        << "same (plan, seed) produced different stats-JSON bytes";
    // The fault fields made it into the artifact.
    EXPECT_NE(ja.find("\"faultPlan\":\"chaos-7\""), std::string::npos);
    EXPECT_NE(ja.find("\"chaosSeed\":7"), std::string::npos);
    EXPECT_NE(ja.find("\"verdict\":"), std::string::npos);
}

harness::CampaignConfig
testCampaignConfig(unsigned jobs)
{
    harness::CampaignConfig cfg;
    cfg.workload = "SPM_G";
    cfg.policies = {Policy::Timeout, Policy::Awg, Policy::MonNRAll};
    cfg.numPlans = 20;
    cfg.baseSeed = 1;
    cfg.params = test::smallParams();
    cfg.params.iters = 8;
    cfg.runCfg.deadlockWindowCycles = 200'000;
    cfg.jobs = jobs;
    return cfg;
}

TEST(ChaosCampaign, TwentyPlansDeterministicAcrossWorkerCounts)
{
    // The acceptance campaign: >= 20 seeded plans x {Timeout, AWG,
    // MonNR-All}, byte-identical CSV between a serial and a parallel
    // execution of the same campaign.
    harness::CampaignReport serial =
        runChaosCampaign(testCampaignConfig(1));
    harness::CampaignReport parallel =
        runChaosCampaign(testCampaignConfig(4));

    std::ostringstream csv_serial, csv_parallel;
    serial.writeCsv(csv_serial);
    parallel.writeCsv(csv_parallel);
    ASSERT_FALSE(csv_serial.str().empty());
    EXPECT_EQ(csv_serial.str(), csv_parallel.str());

    for (const harness::CampaignRun &run : serial.runs)
        EXPECT_NE(run.result.verdict, Verdict::Unknown);

    // Forward-progress ordering: AWG completes every plan Timeout
    // completes.
    EXPECT_TRUE(
        serial.completesAllOf(Policy::Awg, Policy::Timeout));
}

TEST(ChaosCampaign, ServingMixRunsPlansThroughServe)
{
    harness::CampaignConfig cfg = testCampaignConfig(1);
    cfg.numPlans = 3;
    cfg.policies = {Policy::Timeout, Policy::Awg};
    cfg.servingMix = true;

    harness::CampaignReport report = runChaosCampaign(cfg);
    ASSERT_EQ(report.servingRuns.size(),
              cfg.numPlans * cfg.policies.size());
    for (const harness::CampaignServingRun &cell :
         report.servingRuns) {
        EXPECT_NE(cell.verdict, Verdict::Unknown);
        // The chaos generator only emits survivable plans: the
        // swap-capable policies must finish both kernels of the mix
        // with valid memory images.
        EXPECT_EQ(cell.kernelsCompleted, 2u)
            << cell.plan->name << "/"
            << core::policyName(cell.policy);
        EXPECT_TRUE(cell.validated)
            << cell.plan->name << "/"
            << core::policyName(cell.policy);
    }

    // Byte-stable rows: the same campaign produces the same CSV.
    harness::CampaignReport again = runChaosCampaign(cfg);
    std::ostringstream csv_a, csv_b;
    report.writeServingCsv(csv_a);
    again.writeServingCsv(csv_b);
    ASSERT_FALSE(csv_a.str().empty());
    EXPECT_EQ(csv_a.str(), csv_b.str());

    // Opt-in contract: without the flag the section is absent and
    // the classic CSV is unchanged by the new field.
    harness::CampaignConfig off = testCampaignConfig(1);
    off.numPlans = 3;
    off.policies = cfg.policies;
    harness::CampaignReport plain = runChaosCampaign(off);
    EXPECT_TRUE(plain.servingRuns.empty());
    std::ostringstream empty_csv;
    plain.writeServingCsv(empty_csv);
    EXPECT_TRUE(empty_csv.str().empty());
}

// ---------------------------------------------------------------
// Liveness-oracle boundaries
// ---------------------------------------------------------------

TEST(LivenessOracleBounds, AutoLostWakeupBoundTracksWindowSize)
{
    // lostWakeupBoundCycles = 0 means "one deadlock window": a
    // condition that held across exactly one full window is flagged,
    // at any window size.
    for (sim::Cycles window : {50'000ULL, 500'000ULL, 2'000'000ULL}) {
        core::LivenessConfig cfg;
        cfg.lostWakeupBoundCycles = 0;  // auto
        core::LivenessOracle oracle(cfg, /*clock_period=*/1, window);

        core::WaiterProbe probe;
        probe.wgId = 3;
        probe.addr = 0x40;
        probe.expected = 1;
        probe.conditionHolds = true;

        oracle.sample(window, {probe}, 0);
        EXPECT_TRUE(oracle.lostWakeups().empty())
            << "window " << window
            << ": flagged before the bound elapsed";
        oracle.sample(2 * window, {probe}, 0);
        ASSERT_EQ(oracle.lostWakeups().size(), 1u)
            << "window " << window;
        EXPECT_EQ(oracle.lostWakeups()[0].heldCycles, window);
        EXPECT_EQ(oracle.finalizeStall(false),
                  Verdict::LostWakeup);
    }
}

TEST(LivenessOracleBounds, ExplicitBoundOverridesWindow)
{
    const sim::Cycles window = 100'000;
    core::LivenessConfig cfg;
    cfg.lostWakeupBoundCycles = 3 * window;
    core::LivenessOracle oracle(cfg, /*clock_period=*/1, window);

    core::WaiterProbe probe;
    probe.wgId = 0;
    probe.conditionHolds = true;
    oracle.sample(1 * window, {probe}, 0);
    oracle.sample(2 * window, {probe}, 0);
    oracle.sample(3 * window, {probe}, 0);
    EXPECT_TRUE(oracle.lostWakeups().empty());
    // Held for 3 windows (since the first sample) only at t = 4w.
    oracle.sample(4 * window, {probe}, 0);
    ASSERT_EQ(oracle.lostWakeups().size(), 1u);
    EXPECT_EQ(oracle.lostWakeups()[0].heldCycles, 3 * window);
}

} // anonymous namespace
} // namespace ifp
