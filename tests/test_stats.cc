/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace ifp::sim {
namespace {

TEST(Stats, ScalarArithmetic)
{
    StatGroup g("g");
    Scalar &s = g.addScalar("s", "a scalar");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s = 7.0;
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, VectorIndexingAndTotal)
{
    StatGroup g("g");
    Vector &v = g.addVector("v", 4);
    v[0] = 1.0;
    v[2] = 2.0;
    v[3] += 3.0;
    EXPECT_DOUBLE_EQ(v.total(), 6.0);
    EXPECT_EQ(v.size(), 4u);
    EXPECT_DOUBLE_EQ(v.at(1), 0.0);
    v.reset();
    EXPECT_DOUBLE_EQ(v.total(), 0.0);
}

TEST(Stats, HistogramBuckets)
{
    StatGroup g("g");
    Histogram &h = g.addHistogram("h", 0.0, 100.0, 10);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.0);
    h.sample(99.9);
    h.sample(-1.0);
    h.sample(100.0);
    EXPECT_EQ(h.samples(), 6u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 1u);
    EXPECT_DOUBLE_EQ(h.minSeen(), -1.0);
    EXPECT_DOUBLE_EQ(h.maxSeen(), 100.0);
}

TEST(Stats, HistogramMean)
{
    StatGroup g("g");
    Histogram &h = g.addHistogram("h", 0.0, 10.0, 5);
    h.sample(2.0);
    h.sample(4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    h.sample(6.0, 2);  // weighted sample
    EXPECT_DOUBLE_EQ(h.mean(), 4.5);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup g("g");
    Scalar &num = g.addScalar("num");
    Scalar &den = g.addScalar("den");
    g.addFormula("ratio", [&] {
        return den.value() == 0 ? 0.0 : num.value() / den.value();
    });
    EXPECT_DOUBLE_EQ(g.formulaValue("ratio"), 0.0);
    num = 6;
    den = 3;
    EXPECT_DOUBLE_EQ(g.formulaValue("ratio"), 2.0);
}

TEST(Stats, LookupByName)
{
    StatGroup g("grp");
    g.addScalar("a");
    g.addScalar("b");
    EXPECT_TRUE(g.hasScalar("a"));
    EXPECT_FALSE(g.hasScalar("c"));
    const Scalar &b = g.scalar("b");
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, DumpContainsGroupPrefixAndValues)
{
    StatGroup g("mygroup");
    Scalar &s = g.addScalar("counter", "counts things");
    s = 42;
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("mygroup.counter"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("counts things"), std::string::npos);
}

TEST(Stats, StableReferencesAcrossRegistration)
{
    // Stat references must stay valid as more stats are added.
    StatGroup g("g");
    Scalar &first = g.addScalar("first");
    for (int i = 0; i < 100; ++i)
        g.addScalar("s" + std::to_string(i));
    first = 5;
    EXPECT_DOUBLE_EQ(g.scalar("first").value(), 5.0);
}

TEST(Stats, TryLookupReturnsNullOnMiss)
{
    StatGroup g("g");
    Scalar &s = g.addScalar("present");
    s = 7;
    Vector &v = g.addVector("vec", 3);
    v[1] = 2;

    const Scalar *found = g.tryScalar("present");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->value(), 7.0);
    EXPECT_EQ(g.tryScalar("absent"), nullptr);
    // Kind mismatches miss too: a vector is not a scalar.
    EXPECT_EQ(g.tryScalar("vec"), nullptr);

    const Vector *vec = g.tryVector("vec");
    ASSERT_NE(vec, nullptr);
    EXPECT_DOUBLE_EQ(vec->at(1), 2.0);
    EXPECT_EQ(g.tryVector("present"), nullptr);
    EXPECT_EQ(g.tryVector("absent"), nullptr);
}

TEST(Stats, DumpJsonIsParseableShape)
{
    StatGroup g("grp");
    Scalar &s = g.addScalar("count", "a counter");
    s = 3;
    Vector &v = g.addVector("vec", 2);
    v[0] = 1;
    v[1] = 2.5;
    Histogram &h = g.addHistogram("hist", 0, 10, 2);
    h.sample(1);
    h.sample(9);

    std::ostringstream os;
    g.dumpJson(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"name\":\"grp\""), std::string::npos);
    EXPECT_NE(out.find("\"count\":3"), std::string::npos);
    EXPECT_NE(out.find("\"vec\":[1,2.5]"), std::string::npos);
    EXPECT_NE(out.find("\"hist\""), std::string::npos);
}

TEST(Stats, GroupReset)
{
    StatGroup g("g");
    Scalar &s = g.addScalar("s");
    Vector &v = g.addVector("v", 2);
    Histogram &h = g.addHistogram("h", 0, 10, 2);
    s = 1;
    v[0] = 2;
    h.sample(5);
    g.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_DOUBLE_EQ(v.total(), 0.0);
    EXPECT_EQ(h.samples(), 0u);
}

} // anonymous namespace
} // namespace ifp::sim
