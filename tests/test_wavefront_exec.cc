/**
 * @file
 * Execution tests: small hand-written kernels run on a full
 * GpuSystem, checking ALU semantics, control flow, memory, LDS,
 * barriers and the launch ABI.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace ifp {
namespace {

using isa::KernelBuilder;
using isa::Label;

core::RunResult
runKernel(core::GpuSystem &system, isa::Kernel kernel)
{
    return system.run(kernel);
}

TEST(WavefrontExec, AluAndStore)
{
    core::GpuSystem system(test::testRunConfig());
    mem::Addr out = system.allocate(64);

    KernelBuilder b;
    b.movi(16, 6);
    b.muli(16, 16, 7);       // 42
    b.addi(16, 16, -2);      // 40
    b.xori(16, 16, 0xF);     // 0b101000 ^ 0b001111 = 39
    b.movi(17, static_cast<std::int64_t>(out));
    b.st(17, 16);
    b.halt();

    auto result = runKernel(system, test::makeTestKernel(b));
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(out, 8), 39);
}

TEST(WavefrontExec, DivRemShift)
{
    core::GpuSystem system(test::testRunConfig());
    mem::Addr out = system.allocate(64);

    KernelBuilder b;
    b.movi(16, 100);
    b.divi(17, 16, 7);       // 14
    b.remi(18, 16, 7);       // 2
    b.shli(19, 17, 2);       // 56
    b.shri(20, 19, 1);       // 28
    b.add(21, 18, 20);       // 30
    b.movi(22, static_cast<std::int64_t>(out));
    b.st(22, 21);
    b.halt();

    auto result = runKernel(system, test::makeTestKernel(b));
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(out, 8), 30);
}

TEST(WavefrontExec, LoopComputesTriangularNumber)
{
    core::GpuSystem system(test::testRunConfig());
    mem::Addr out = system.allocate(64);

    KernelBuilder b;
    b.movi(16, 0);   // sum
    b.movi(17, 1);   // i
    Label loop = b.here();
    b.add(16, 16, 17);
    b.addi(17, 17, 1);
    b.cmpLei(18, 17, 10);
    b.bnz(18, loop);
    b.movi(19, static_cast<std::int64_t>(out));
    b.st(19, 16);
    b.halt();

    auto result = runKernel(system, test::makeTestKernel(b));
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(out, 8), 55);
}

TEST(WavefrontExec, LoadSeesStoredValue)
{
    core::GpuSystem system(test::testRunConfig());
    mem::Addr buf = system.allocate(128);
    system.memory().write(buf, 123, 8);

    KernelBuilder b;
    b.movi(16, static_cast<std::int64_t>(buf));
    b.ld(17, 16);
    b.addi(17, 17, 1);
    b.st(16, 17, 64);
    b.halt();

    auto result = runKernel(system, test::makeTestKernel(b));
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(buf + 64, 8), 124);
}

TEST(WavefrontExec, LaunchAbiRegisters)
{
    core::GpuSystem system(test::testRunConfig());
    mem::Addr out = system.allocate(64 * 64);

    KernelBuilder b;
    // out[wgId] = wgId * 1000 + numWgs * 10 + arg0
    b.muli(16, isa::rWgId, 1000);
    b.muli(17, isa::rNumWgs, 10);
    b.add(16, 16, 17);
    b.add(16, 16, isa::rArg0);
    b.muli(18, isa::rWgId, 64);
    b.movi(19, static_cast<std::int64_t>(out));
    b.add(19, 19, 18);
    b.st(19, 16);
    b.halt();

    isa::Kernel k = test::makeTestKernel(b, /*num_wgs=*/4);
    k.args = {7};
    auto result = runKernel(system, k);
    ASSERT_TRUE(result.completed);
    for (int wg = 0; wg < 4; ++wg) {
        EXPECT_EQ(system.memory().read(out + wg * 64, 8),
                  wg * 1000 + 4 * 10 + 7);
    }
}

TEST(WavefrontExec, LdsRoundTripWithinWg)
{
    core::GpuSystem system(test::testRunConfig());
    mem::Addr out = system.allocate(64);

    KernelBuilder b;
    b.movi(16, 77);
    b.movi(17, 128);         // LDS offset
    b.stLds(17, 16);
    b.ldLds(18, 17);
    b.movi(19, static_cast<std::int64_t>(out));
    b.st(19, 18);
    b.halt();

    auto result = runKernel(system, test::makeTestKernel(b));
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(out, 8), 77);
}

TEST(WavefrontExec, MultiWavefrontBarrierExchange)
{
    // 128 WIs -> 2 wavefronts; each publishes to LDS, barriers, and
    // reads the other's slot.
    core::GpuSystem system(test::testRunConfig());
    mem::Addr out = system.allocate(128);

    KernelBuilder b;
    b.addi(16, isa::rWfId, 100);      // value = 100 + wfId
    b.muli(17, isa::rWfId, 8);        // my LDS slot
    b.stLds(17, 16);
    b.bar();
    // neighbour = (wfId + 1) % 2
    b.addi(18, isa::rWfId, 1);
    b.remi(18, 18, 2);
    b.muli(18, 18, 8);
    b.ldLds(19, 18);
    b.muli(20, isa::rWfId, 64);
    b.movi(21, static_cast<std::int64_t>(out));
    b.add(21, 21, 20);
    b.st(21, 19);
    b.halt();

    auto result =
        runKernel(system, test::makeTestKernel(b, 1, /*wi=*/128));
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(out, 8), 101);       // wf0 sees wf1
    EXPECT_EQ(system.memory().read(out + 64, 8), 100);  // wf1 sees wf0
}

TEST(WavefrontExec, AtomicsSerializeCorrectlyAcrossWgs)
{
    core::GpuSystem system(test::testRunConfig());
    mem::Addr counter = system.allocate(64);

    KernelBuilder b;
    b.movi(16, 1);
    b.movi(17, static_cast<std::int64_t>(counter));
    for (int i = 0; i < 10; ++i)
        b.atom(18, mem::AtomicOpcode::Add, 17, 0, 16);
    b.halt();

    auto result = runKernel(system, test::makeTestKernel(b, 8));
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(counter, 8), 80);
    EXPECT_EQ(result.atomicInstructions, 80u);
}

TEST(WavefrontExec, ValuAndSleepAdvanceTime)
{
    core::GpuSystem system(test::testRunConfig());

    KernelBuilder b;
    b.valu(500);
    b.movi(16, 1000);
    b.sleepR(16);
    b.halt();

    auto result = runKernel(system, test::makeTestKernel(b));
    ASSERT_TRUE(result.completed);
    EXPECT_GE(result.gpuCycles, 1500u);
    EXPECT_EQ(result.sleeps, 1u);
}

TEST(WavefrontExec, InstructionCountsAreExact)
{
    core::GpuSystem system(test::testRunConfig());

    KernelBuilder b;
    b.movi(16, 5);
    Label loop = b.here();
    b.subi(16, 16, 1);
    b.bnz(16, loop);
    b.halt();

    auto result = runKernel(system, test::makeTestKernel(b));
    ASSERT_TRUE(result.completed);
    // movi + 5x(sub+bnz) + halt = 12
    EXPECT_EQ(result.instructions, 12u);
}

} // anonymous namespace
} // namespace ifp
