/**
 * @file
 * Unit tests for atomic-operation semantics, including the waiting
 * forms (parameterized over the opcode space).
 */

#include <gtest/gtest.h>

#include "mem/atomic_op.hh"

namespace ifp::mem {
namespace {

struct AtomicCase
{
    AtomicOpcode op;
    MemValue old_value;
    MemValue operand;
    MemValue compare;
    MemValue expected_new;
    bool expected_wrote;
};

class AtomicOpTest : public ::testing::TestWithParam<AtomicCase>
{
};

TEST_P(AtomicOpTest, AppliesSemantics)
{
    const AtomicCase &c = GetParam();
    AtomicResult r = applyAtomic(c.op, c.old_value, c.operand,
                                 c.compare);
    EXPECT_EQ(r.oldValue, c.old_value);
    EXPECT_EQ(r.newValue, c.expected_new);
    EXPECT_EQ(r.wrote, c.expected_wrote);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, AtomicOpTest,
    ::testing::Values(
        AtomicCase{AtomicOpcode::Load, 5, 99, 0, 5, false},
        AtomicCase{AtomicOpcode::Store, 5, 9, 0, 9, true},
        AtomicCase{AtomicOpcode::Store, 5, 5, 0, 5, false},
        AtomicCase{AtomicOpcode::Add, 5, 3, 0, 8, true},
        AtomicCase{AtomicOpcode::Add, 5, 0, 0, 5, false},
        AtomicCase{AtomicOpcode::Sub, 5, 3, 0, 2, true},
        AtomicCase{AtomicOpcode::Exch, 5, 7, 0, 7, true},
        AtomicCase{AtomicOpcode::Exch, 5, 5, 0, 5, false},
        AtomicCase{AtomicOpcode::Cas, 5, 9, 5, 9, true},
        AtomicCase{AtomicOpcode::Cas, 5, 9, 4, 5, false},
        AtomicCase{AtomicOpcode::Min, 5, 3, 0, 3, true},
        AtomicCase{AtomicOpcode::Min, 5, 8, 0, 5, false},
        AtomicCase{AtomicOpcode::Max, 5, 8, 0, 8, true},
        AtomicCase{AtomicOpcode::Max, 5, 3, 0, 5, false},
        AtomicCase{AtomicOpcode::And, 6, 3, 0, 2, true},
        AtomicCase{AtomicOpcode::Or, 6, 1, 0, 7, true},
        AtomicCase{AtomicOpcode::Xor, 6, 3, 0, 5, true},
        AtomicCase{AtomicOpcode::Inc, 5, 0, 0, 6, true},
        AtomicCase{AtomicOpcode::Dec, 5, 0, 0, 4, true},
        AtomicCase{AtomicOpcode::Add, -5, -3, 0, -8, true},
        AtomicCase{AtomicOpcode::Min, -5, -8, 0, -8, true}));

TEST(WaitingAtomic, SucceedsOnExpectedValue)
{
    EXPECT_TRUE(waitingAtomicSucceeded(AtomicOpcode::Load, 7, 7));
    EXPECT_FALSE(waitingAtomicSucceeded(AtomicOpcode::Load, 7, 8));
    EXPECT_TRUE(waitingAtomicSucceeded(AtomicOpcode::Exch, 0, 0));
    EXPECT_FALSE(waitingAtomicSucceeded(AtomicOpcode::Exch, 1, 0));
    // Waiting CAS: expectation is the compare operand.
    EXPECT_TRUE(waitingAtomicSucceeded(AtomicOpcode::Cas, 5, 5));
    EXPECT_FALSE(waitingAtomicSucceeded(AtomicOpcode::Cas, 6, 5));
}

TEST(AtomicOp, NamesAreDistinct)
{
    EXPECT_EQ(atomicOpcodeName(AtomicOpcode::Add), "add");
    EXPECT_EQ(atomicOpcodeName(AtomicOpcode::Cas), "cas");
    EXPECT_NE(atomicOpcodeName(AtomicOpcode::Min),
              atomicOpcodeName(AtomicOpcode::Max));
}

} // anonymous namespace
} // namespace ifp::mem
