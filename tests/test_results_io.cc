/**
 * @file
 * Tests for the JSON result serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/results_io.hh"
#include "test_helpers.hh"

namespace ifp::harness {
namespace {

TEST(ResultsJson, ContainsAllKeyFields)
{
    Experiment exp;
    exp.workload = "SPM_G";
    exp.policy = core::Policy::Awg;
    exp.params = ifp::test::smallParams();
    core::RunResult r = runExperiment(exp);

    std::ostringstream os;
    writeResultJson(os, exp, r);
    std::string json = os.str();

    for (const char *key :
         {"\"workload\":\"SPM_G\"", "\"policy\":\"AWG\"",
          "\"completed\":true", "\"validated\":true", "\"gpuCycles\":",
          "\"atomicInstructions\":", "\"contextSaves\":",
          "\"maxConditions\":"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(ResultsJson, DeadlockSerializesAsFlags)
{
    Experiment exp;
    exp.workload = "FAM_G";
    exp.policy = core::Policy::Baseline;
    exp.oversubscribed = true;
    exp.params = ifp::test::smallParams();
    exp.params.iters = 12;
    exp.runCfg.cuLossMicroseconds = 5;
    core::RunResult r = runExperiment(exp);
    ASSERT_TRUE(r.deadlocked);

    std::ostringstream os;
    writeResultJson(os, exp, r);
    EXPECT_NE(os.str().find("\"deadlocked\":true"),
              std::string::npos);
    EXPECT_NE(os.str().find("\"oversubscribed\":true"),
              std::string::npos);
}

TEST(ResultsJson, ArrayFormat)
{
    Experiment exp;
    exp.workload = "HT";
    exp.policy = core::Policy::Awg;
    exp.params = ifp::test::smallParams();
    core::RunResult r = runExperiment(exp);

    std::ostringstream os;
    writeResultsJson(os, {{exp, r}, {exp, r}});
    std::string text = os.str();
    EXPECT_EQ(text.front(), '[');

    std::optional<json::Value> doc = json::tryParse(text);
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isArray());
    ASSERT_EQ(doc->array.size(), 2u);
    for (const json::Value &entry : doc->array) {
        ASSERT_TRUE(entry.isObject());
        EXPECT_NE(entry.find("gpuCycles"), nullptr);
        const json::Value *stalls = entry.find("stallCycles");
        ASSERT_NE(stalls, nullptr);
        EXPECT_TRUE(stalls->isObject());
    }
}

} // anonymous namespace
} // namespace ifp::harness
