/**
 * @file
 * Timing and behaviour tests for the per-CU L1 cache.
 */

#include <gtest/gtest.h>

#include "mem/l1_cache.hh"
#include "sim/event_queue.hh"

namespace ifp::mem {
namespace {

/** Next-level stub: responds after a fixed delay and logs accesses. */
class StubLevel : public MemDevice
{
  public:
    StubLevel(sim::EventQueue &eq, sim::Tick delay)
        : eq(eq), delay(delay)
    {}

    void
    access(const MemRequestPtr &req) override
    {
        accesses.push_back(req);
        eq.schedule(eq.curTick() + delay, [req] { req->respond(); });
    }

    sim::EventQueue &eq;
    sim::Tick delay;
    std::vector<MemRequestPtr> accesses;
};

struct L1Fixture : public ::testing::Test, public MemResponder
{
    L1Fixture()
        : cfg(), stub(eq, 100 * cfg.clockPeriod),
          l1("l1", eq, cfg, stub, pool)
    {}

    void
    onMemResponse(MemRequest &, std::uint64_t) override
    {
        completions.push_back(eq.curTick());
    }

    MemRequestPtr
    makeReq(MemOp op, Addr addr)
    {
        MemRequestPtr req = pool.allocate();
        req->op = op;
        req->addr = addr;
        req->setResponder(this);
        return req;
    }

    MemRequestPool pool;
    sim::EventQueue eq;
    L1Config cfg;
    StubLevel stub;
    L1Cache l1;
    std::vector<sim::Tick> completions;
};

TEST_F(L1Fixture, ColdReadMissesAndFills)
{
    l1.access(makeReq(MemOp::Read, 0x1000));
    eq.simulate();
    ASSERT_EQ(completions.size(), 1u);
    // Miss: fill (100 cy stub) + hit latency after fill.
    sim::Tick expected =
        (100 + cfg.hitLatency) * cfg.clockPeriod;
    EXPECT_EQ(completions[0], expected);
    EXPECT_DOUBLE_EQ(l1.stats().scalar("misses").value(), 1.0);
    // The fill fetched the whole line.
    ASSERT_EQ(stub.accesses.size(), 1u);
    EXPECT_EQ(stub.accesses[0]->size, cfg.lineBytes);
}

TEST_F(L1Fixture, WarmReadHitsLocally)
{
    l1.access(makeReq(MemOp::Read, 0x1000));
    eq.simulate();
    completions.clear();
    stub.accesses.clear();

    sim::Tick start = eq.curTick();
    l1.access(makeReq(MemOp::Read, 0x1008));  // same line
    eq.simulate();
    ASSERT_EQ(completions.size(), 1u);
    EXPECT_TRUE(stub.accesses.empty());  // no next-level traffic
    EXPECT_LE(completions[0] - start,
              (cfg.hitLatency + 1) * cfg.clockPeriod);
    EXPECT_DOUBLE_EQ(l1.stats().scalar("hits").value(), 1.0);
}

TEST_F(L1Fixture, MshrMergesConcurrentMisses)
{
    l1.access(makeReq(MemOp::Read, 0x2000));
    l1.access(makeReq(MemOp::Read, 0x2010));
    l1.access(makeReq(MemOp::Read, 0x2020));
    eq.simulate();
    EXPECT_EQ(completions.size(), 3u);
    EXPECT_EQ(stub.accesses.size(), 1u);  // one fill for all three
}

TEST_F(L1Fixture, WritesAreWriteThrough)
{
    auto wr = makeReq(MemOp::Write, 0x3000);
    wr->operand = 42;
    l1.access(wr);
    eq.simulate();
    ASSERT_EQ(stub.accesses.size(), 1u);
    EXPECT_EQ(stub.accesses[0]->op, MemOp::Write);
    EXPECT_DOUBLE_EQ(l1.stats().scalar("writethroughs").value(), 1.0);
    // No write-allocate: a subsequent read still misses.
    stub.accesses.clear();
    l1.access(makeReq(MemOp::Read, 0x3000));
    eq.simulate();
    EXPECT_EQ(stub.accesses.size(), 1u);
}

TEST_F(L1Fixture, AtomicsBypassToNextLevel)
{
    auto at = makeReq(MemOp::Atomic, 0x4000);
    l1.access(at);
    eq.simulate();
    ASSERT_EQ(stub.accesses.size(), 1u);
    EXPECT_EQ(stub.accesses[0]->op, MemOp::Atomic);
    EXPECT_DOUBLE_EQ(l1.stats().scalar("bypasses").value(), 1.0);
}

TEST_F(L1Fixture, AcquireAtomicInvalidatesL1)
{
    // Warm a line.
    l1.access(makeReq(MemOp::Read, 0x1000));
    eq.simulate();
    stub.accesses.clear();

    auto at = makeReq(MemOp::Atomic, 0x9000);
    at->acquire = true;
    l1.access(at);
    eq.simulate();
    EXPECT_DOUBLE_EQ(l1.stats().scalar("invalidations").value(), 1.0);

    // The previously warm line now misses again.
    stub.accesses.clear();
    l1.access(makeReq(MemOp::Read, 0x1000));
    eq.simulate();
    EXPECT_EQ(stub.accesses.size(), 1u);
}

TEST_F(L1Fixture, NoRequestsLeakAcrossRuns)
{
    l1.access(makeReq(MemOp::Read, 0x1000));
    l1.access(makeReq(MemOp::Read, 0x1008));
    auto at = makeReq(MemOp::Atomic, 0x2000);
    at->acquire = true;
    l1.access(at);
    at.reset();
    eq.simulate();
    stub.accesses.clear();
    EXPECT_EQ(pool.inUse(), 0u);
}

} // anonymous namespace
} // namespace ifp::mem
