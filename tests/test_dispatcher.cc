/**
 * @file
 * Tests for WG dispatch, occupancy limits, completion tracking and
 * the context-switch flows, exercised through a real GpuSystem.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace ifp {
namespace {

using isa::KernelBuilder;

/** Kernel: every WG bumps a counter, does some work, and halts. */
isa::Kernel
countingKernel(core::GpuSystem &system, unsigned num_wgs,
               unsigned max_wgs_per_cu, mem::Addr counter)
{
    KernelBuilder b;
    b.movi(16, 1);
    b.movi(17, static_cast<std::int64_t>(counter));
    b.valu(200);
    b.atom(18, mem::AtomicOpcode::Add, 17, 0, 16);
    b.halt();
    isa::Kernel k = test::makeTestKernel(b, num_wgs);
    k.maxWgsPerCu = max_wgs_per_cu;
    return k;
}

TEST(Dispatcher, AllWgsRunAndComplete)
{
    core::GpuSystem system(test::testRunConfig());
    mem::Addr counter = system.allocate(64);
    auto result =
        system.run(countingKernel(system, 32, 8, counter));
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(counter, 8), 32);
    EXPECT_EQ(system.dispatcher().numCompleted(), 32u);
}

/** Independent compute kernel: each WG stores to its own line. */
isa::Kernel
computeKernel(mem::Addr out, unsigned num_wgs,
              unsigned max_wgs_per_cu)
{
    KernelBuilder b;
    b.valu(2000);
    b.muli(16, isa::rWgId, 64);
    b.movi(17, static_cast<std::int64_t>(out));
    b.add(17, 17, 16);
    b.movi(18, 1);
    b.st(17, 18);
    b.halt();
    isa::Kernel k = test::makeTestKernel(b, num_wgs);
    k.maxWgsPerCu = max_wgs_per_cu;
    return k;
}

TEST(Dispatcher, OccupancyLimitSerializesWaves)
{
    // 64 independent WGs, only 1 per CU: dispatch happens in 8 waves
    // and runtime scales; with 8 per CU everything runs in parallel.
    core::GpuSystem sys_tight(test::testRunConfig());
    mem::Addr o1 = sys_tight.allocate(64 * 64);
    auto tight = sys_tight.run(computeKernel(o1, 64, 1));

    core::GpuSystem sys_loose(test::testRunConfig());
    mem::Addr o2 = sys_loose.allocate(64 * 64);
    auto loose = sys_loose.run(computeKernel(o2, 64, 8));

    ASSERT_TRUE(tight.completed);
    ASSERT_TRUE(loose.completed);
    EXPECT_GT(tight.gpuCycles, 2 * loose.gpuCycles);
    for (int wg = 0; wg < 64; ++wg)
        ASSERT_EQ(sys_tight.memory().read(o1 + wg * 64, 8), 1);
}

TEST(Dispatcher, LdsBoundsOccupancy)
{
    core::GpuSystem system(test::testRunConfig());
    mem::Addr counter = system.allocate(64);
    isa::Kernel k = countingKernel(system, 16, 8, counter);
    // Each WG asks for half the CU's LDS: only 2 fit per CU.
    k.ldsBytes = system.config().gpu.ldsBytesPerCu / 2;
    auto result = system.run(k);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(counter, 8), 16);
}

TEST(Dispatcher, ForcedPreemptionSavesContexts)
{
    // Long-running WGs, one CU taken offline mid-run.
    core::RunConfig cfg = test::testRunConfig();
    cfg.oversubscribed = true;
    cfg.cuLossMicroseconds = 1;
    core::GpuSystem system(cfg);
    mem::Addr counter = system.allocate(64);

    KernelBuilder b;
    b.movi(16, 1);
    b.movi(17, static_cast<std::int64_t>(counter));
    for (int i = 0; i < 6; ++i)
        b.valu(1000);
    b.atom(18, mem::AtomicOpcode::Add, 17, 0, 16);
    b.halt();
    isa::Kernel k = test::makeTestKernel(b, 16);
    k.maxWgsPerCu = 2;

    auto result = system.run(k);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(system.memory().read(counter, 8), 16);
    EXPECT_GT(result.forcedPreemptions, 0u);
    EXPECT_EQ(result.contextSaves, result.contextRestores);
    EXPECT_GT(result.contextSaves, 0u);
}

TEST(Dispatcher, PreemptedWgsRestartOnOtherCus)
{
    // With swap-in capability, WGs pre-empted from the lost CU finish
    // on the remaining ones even though the kernel initially filled
    // the whole machine.
    core::RunConfig cfg = test::testRunConfig(core::Policy::Awg);
    cfg.oversubscribed = true;
    cfg.cuLossMicroseconds = 1;
    core::GpuSystem system(cfg);
    mem::Addr marks = system.allocate(64 * 64);

    KernelBuilder b;
    for (int i = 0; i < 8; ++i)
        b.valu(1000);
    b.muli(16, isa::rWgId, 64);
    b.movi(17, static_cast<std::int64_t>(marks));
    b.add(17, 17, 16);
    b.movi(18, 1);
    b.st(17, 18);
    b.halt();
    isa::Kernel k = test::makeTestKernel(b, 16);
    k.maxWgsPerCu = 2;  // 8 CUs x 2 = exactly 16 resident

    auto result = system.run(k);
    ASSERT_TRUE(result.completed);
    for (int wg = 0; wg < 16; ++wg)
        EXPECT_EQ(system.memory().read(marks + wg * 64, 8), 1)
            << "wg " << wg;
}

TEST(Dispatcher, StatsCountDispatches)
{
    core::GpuSystem system(test::testRunConfig());
    mem::Addr counter = system.allocate(64);
    system.run(countingKernel(system, 24, 8, counter));
    EXPECT_DOUBLE_EQ(
        system.dispatcher().stats().scalar("dispatches").value(),
        24.0);
}

TEST(GpuSystem, AllocatorAlignsAndSeparates)
{
    core::GpuSystem system(test::testRunConfig());
    mem::Addr a = system.allocate(10, 64);
    mem::Addr b = system.allocate(100, 64);
    mem::Addr c = system.allocate(8, 4096);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_EQ(c % 4096, 0u);
    EXPECT_GE(b, a + 10);
    EXPECT_GE(c, b + 100);
}

TEST(GpuSystem, DeadlockDetectorFlagsNonProgressingKernel)
{
    // A kernel spinning on a value nobody ever writes: no memory
    // mutations, no completions -> deadlock, not a hang.
    core::RunConfig cfg = test::testRunConfig(core::Policy::Baseline);
    cfg.deadlockWindowCycles = 20'000;
    core::GpuSystem system(cfg);
    mem::Addr flag = system.allocate(64);

    KernelBuilder b;
    b.movi(16, static_cast<std::int64_t>(flag));
    auto spin = b.here();
    b.atom(17, mem::AtomicOpcode::Load, 16, 0, 0);
    b.bz(17, spin);
    b.halt();

    auto result = system.run(test::makeTestKernel(b, 4));
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(result.deadlocked);
}

TEST(GpuSystem, StatsDumpIsNonEmpty)
{
    core::GpuSystem system(test::testRunConfig());
    mem::Addr counter = system.allocate(64);
    system.run(countingKernel(system, 8, 8, counter));
    std::ostringstream os;
    system.dumpStats(os);
    EXPECT_NE(os.str().find("l2.atomics"), std::string::npos);
    EXPECT_NE(os.str().find("cu0.instructions"), std::string::npos);
}

} // anonymous namespace
} // namespace ifp
