/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace ifp::sim {
namespace {

class Recorder : public Event
{
  public:
    Recorder(std::vector<int> &log, int id) : log(log), id(id) {}

    void process() override { log.push_back(id); }

  private:
    std::vector<int> &log;
    int id;
};

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&b, 200);
    eq.schedule(&a, 100);
    eq.schedule(&c, 300);
    eq.simulate();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&a, 50);
    eq.schedule(&b, 50);
    eq.schedule(&c, 50);
    eq.simulate();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.simulate();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.simulate();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, LambdaEventsRunAndAreReclaimed)
{
    EventQueue eq;
    int hits = 0;
    for (int i = 0; i < 200; ++i)
        eq.schedule(i + 1, [&hits] { ++hits; });
    eq.simulate();
    EXPECT_EQ(hits, 200);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, SimulateRespectsLimit)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2);
    eq.schedule(&a, 100);
    eq.schedule(&b, 500);
    eq.simulate(250);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_TRUE(b.scheduled());
    eq.simulate();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.schedule(eq.curTick() + 5, chain);
    };
    eq.schedule(5, chain);
    eq.simulate();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.curTick(), 50u);
}

TEST(EventQueue, SchedulingAtCurrentTickRunsAfterCurrentEvent)
{
    EventQueue eq;
    std::vector<int> log;
    eq.schedule(10, [&] {
        log.push_back(1);
        eq.schedule(10, [&] { log.push_back(2); });
    });
    eq.simulate();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i + 1, [] {});
    eq.simulate();
    EXPECT_EQ(eq.numExecuted(), 7u);
}

TEST(EventQueue, DescheduledEventCanBeDestroyedSafely)
{
    EventQueue eq;
    std::vector<int> log;
    {
        Recorder a(log, 1);
        eq.schedule(&a, 10);
        eq.deschedule(&a);
        // 'a' destroyed here while a stale heap entry remains.
    }
    eq.simulate();
    EXPECT_TRUE(log.empty());
}

TEST(EventQueue, RescheduleLeavesOnlyOneLiveOccurrence)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    eq.schedule(&a, 10);
    eq.reschedule(&a, 20);
    eq.reschedule(&a, 15);
    eq.simulate();
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(eq.curTick(), 15u);
}

TEST(EventQueueFreeList, FiredOneShotsAreRecycledNotReallocated)
{
    EventQueue eq;
    int hits = 0;
    for (int i = 0; i < 100; ++i)
        eq.schedule(i + 1, [&hits] { ++hits; });
    EXPECT_EQ(eq.ownedPoolSize(), 100u);
    EXPECT_EQ(eq.freeListSize(), 0u);
    eq.simulate();
    EXPECT_EQ(hits, 100);
    EXPECT_EQ(eq.freeListSize(), 100u);

    // A second wave must be served entirely from the free-list.
    for (int i = 0; i < 100; ++i)
        eq.schedule(eq.curTick() + i + 1, [&hits] { ++hits; });
    EXPECT_EQ(eq.ownedPoolSize(), 100u);
    EXPECT_EQ(eq.freeListSize(), 0u);
    eq.simulate();
    EXPECT_EQ(hits, 200);
    EXPECT_EQ(eq.freeListSize(), 100u);
}

TEST(EventQueueFreeList, PoolGrowsOnlyWithConcurrentlyPendingOneShots)
{
    EventQueue eq;
    int hits = 0;
    // Interleave schedule-one/fire-one 500 times: one lambda event
    // should be allocated once and recycled 499 times.
    for (int i = 0; i < 500; ++i) {
        eq.schedule(eq.curTick() + 1, [&hits] { ++hits; });
        eq.step();
    }
    EXPECT_EQ(hits, 500);
    EXPECT_EQ(eq.ownedPoolSize(), 1u);
}

TEST(EventQueueFreeList, RecycledOneShotsNeverDoubleFire)
{
    EventQueue eq;
    std::vector<int> log;
    // Wave 1 leaves stale heap entries for nothing: all fire.
    for (int i = 0; i < 8; ++i)
        eq.schedule(i + 1, [&log, i] { log.push_back(i); });
    eq.simulate();
    // Wave 2 reuses the same event objects with fresh sequence
    // numbers; each callback must run exactly once.
    for (int i = 0; i < 8; ++i)
        eq.schedule(eq.curTick() + i + 1,
                    [&log, i] { log.push_back(100 + i); });
    eq.simulate();
    ASSERT_EQ(log.size(), 16u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(log[i], i);
        EXPECT_EQ(log[8 + i], 100 + i);
    }
}

TEST(EventQueueFreeList, OneShotSchedulingFromRecycledEventWorks)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 50)
            eq.schedule(eq.curTick() + 1, chain);
    };
    eq.schedule(1, chain);
    eq.simulate();
    EXPECT_EQ(depth, 50);
    // The chain schedules the next link from inside the previous
    // one, so at least two lambda events overlap; the pool must stay
    // far below one-allocation-per-link.
    EXPECT_LE(eq.ownedPoolSize(), 4u);
}

TEST(EventQueueFreeList, DestructionWithPendingOneShotsIsClean)
{
    int hits = 0;
    {
        EventQueue eq;
        for (int i = 0; i < 32; ++i)
            eq.schedule(i + 1, [&hits] { ++hits; });
        eq.simulate(10);   // fire 10, leave 22 pending
    }
    // Destroying the queue with live one-shots must neither fire
    // them nor trip the Event destructor assert (no leak under ASan).
    EXPECT_EQ(hits, 10);
}

TEST(EventQueueFreeList, CapturedResourcesReleaseAfterFiring)
{
    EventQueue eq;
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> observer = token;
    eq.schedule(1, [t = std::move(token)] { (void)*t; });
    eq.simulate();
    // The recycled event must have dropped its callback (and the
    // captured shared_ptr) when it was parked on the free-list.
    EXPECT_TRUE(observer.expired());
}

// Regression: descheduling a queue-owned one-shot used to strand the
// LambdaEvent behind its stale heap entry — its captured resources
// stayed alive and the object never returned to the free-list. A
// squashed one-shot is now released and recycled immediately.
TEST(EventQueueFreeList, SquashedOneShotsAreRecycledImmediately)
{
    EventQueue eq;
    int hits = 0;
    Event *ev = eq.schedule(10, [&hits] { ++hits; });
    EXPECT_EQ(eq.size(), 1u);
    EXPECT_EQ(eq.freeListSize(), 0u);
    eq.deschedule(ev);
    // Back on the free-list right away, not at drain time.
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_EQ(eq.freeListSize(), 1u);
    // The next one-shot reuses the object instead of allocating.
    eq.schedule(20, [&hits] { hits += 10; });
    EXPECT_EQ(eq.ownedPoolSize(), 1u);
    eq.simulate();
    EXPECT_EQ(hits, 10);
}

TEST(EventQueueFreeList, SquashedOneShotReleasesCapturedResources)
{
    EventQueue eq;
    auto token = std::make_shared<int>(7);
    std::weak_ptr<int> observer = token;
    Event *ev = eq.schedule(5, [t = std::move(token)] { (void)*t; });
    eq.deschedule(ev);
    // Captured resources drop at squash time, not when the slot is
    // eventually reused.
    EXPECT_TRUE(observer.expired());
    eq.simulate();   // the stale heap entry must be skipped cleanly
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueFreeList, ScheduleSquashDrainKeepsInvariants)
{
    EventQueue eq;
    int hits = 0;
    std::vector<Event *> one_shots;
    for (int i = 0; i < 16; ++i)
        one_shots.push_back(eq.schedule(i + 1, [&hits] { ++hits; }));
    // Squash every other one...
    for (int i = 1; i < 16; i += 2)
        eq.deschedule(one_shots[i]);
    EXPECT_EQ(eq.size(), 8u);
    EXPECT_EQ(eq.freeListSize(), 8u);
    // ...drain the rest, and every object must be parked for reuse.
    eq.simulate();
    EXPECT_EQ(hits, 8);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_EQ(eq.ownedPoolSize(), 16u);
    EXPECT_EQ(eq.freeListSize(), 16u);
}

TEST(EventQueueFreeList, SquashedSlotsServeNewWorkWithinTheSameTick)
{
    // A device pattern: schedule a drain, cancel it, schedule a
    // replacement at a different tick, repeatedly. The pool must stay
    // at one object and each replacement must run exactly once.
    EventQueue eq;
    int fired = 0;
    for (int round = 0; round < 64; ++round) {
        Event *ev = eq.schedule(eq.curTick() + 100, [] { FAIL(); });
        eq.deschedule(ev);
        eq.schedule(eq.curTick() + 1, [&fired] { ++fired; });
        eq.step();
    }
    eq.simulate();
    EXPECT_EQ(fired, 64);
    EXPECT_EQ(eq.ownedPoolSize(), 1u);
}

// Regression: constructing a second EventQueue used to overwrite the
// trace tick hook for the whole process, so an older queue's traces
// reported the younger queue's ticks. The hook is now a TraceTickScope
// held only across step()/simulate(), so interleaved queues report
// their own time.
TEST(EventQueueTraceTick, ConcurrentlyLiveQueuesTraceTheirOwnTicks)
{
    EventQueue a;
    EventQueue b;   // would cross-wire 'a' before the fix
    std::uint64_t seen_a = ~0ull, seen_b = ~0ull;
    a.schedule(100, [&] { seen_a = traceCurrentTick(); });
    b.schedule(7, [&] { seen_b = traceCurrentTick(); });
    a.step();
    b.step();
    EXPECT_EQ(seen_a, 100u);
    EXPECT_EQ(seen_b, 7u);
    // And again in the other order, after both queues advanced.
    a.schedule(200, [&] { seen_a = traceCurrentTick(); });
    b.schedule(30, [&] { seen_b = traceCurrentTick(); });
    b.step();
    a.step();
    EXPECT_EQ(seen_a, 200u);
    EXPECT_EQ(seen_b, 30u);
}

TEST(EventQueueTraceTick, DyingQueueDoesNotUnhookSibling)
{
    auto a = std::make_unique<EventQueue>();
    std::uint64_t seen = ~0ull;
    a->schedule(100, [&] { seen = traceCurrentTick(); });
    {
        EventQueue b;   // scopes the hook to its own simulate()...
        b.schedule(1, [] {});
        b.simulate();
    }                   // ...and must leave no trace of itself on death
    a->step();
    EXPECT_EQ(seen, 100u);
}

} // anonymous namespace
} // namespace ifp::sim
