/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace ifp::sim {
namespace {

class Recorder : public Event
{
  public:
    Recorder(std::vector<int> &log, int id) : log(log), id(id) {}

    void process() override { log.push_back(id); }

  private:
    std::vector<int> &log;
    int id;
};

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&b, 200);
    eq.schedule(&a, 100);
    eq.schedule(&c, 300);
    eq.simulate();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&a, 50);
    eq.schedule(&b, 50);
    eq.schedule(&c, 50);
    eq.simulate();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.simulate();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.simulate();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, LambdaEventsRunAndAreReclaimed)
{
    EventQueue eq;
    int hits = 0;
    for (int i = 0; i < 200; ++i)
        eq.schedule(i + 1, [&hits] { ++hits; });
    eq.simulate();
    EXPECT_EQ(hits, 200);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, SimulateRespectsLimit)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1), b(log, 2);
    eq.schedule(&a, 100);
    eq.schedule(&b, 500);
    eq.simulate(250);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_TRUE(b.scheduled());
    eq.simulate();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.schedule(eq.curTick() + 5, chain);
    };
    eq.schedule(5, chain);
    eq.simulate();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.curTick(), 50u);
}

TEST(EventQueue, SchedulingAtCurrentTickRunsAfterCurrentEvent)
{
    EventQueue eq;
    std::vector<int> log;
    eq.schedule(10, [&] {
        log.push_back(1);
        eq.schedule(10, [&] { log.push_back(2); });
    });
    eq.simulate();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i + 1, [] {});
    eq.simulate();
    EXPECT_EQ(eq.numExecuted(), 7u);
}

TEST(EventQueue, DescheduledEventCanBeDestroyedSafely)
{
    EventQueue eq;
    std::vector<int> log;
    {
        Recorder a(log, 1);
        eq.schedule(&a, 10);
        eq.deschedule(&a);
        // 'a' destroyed here while a stale heap entry remains.
    }
    eq.simulate();
    EXPECT_TRUE(log.empty());
}

TEST(EventQueue, RescheduleLeavesOnlyOneLiveOccurrence)
{
    EventQueue eq;
    std::vector<int> log;
    Recorder a(log, 1);
    eq.schedule(&a, 10);
    eq.reschedule(&a, 20);
    eq.reschedule(&a, 15);
    eq.simulate();
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(eq.curTick(), 15u);
}

} // anonymous namespace
} // namespace ifp::sim
