/**
 * @file
 * Property tests for the Carter-Wegman universal hashing behind the
 * SyncMon condition cache and Bloom filters, plus a randomized
 * model check of the event queue (schedule/deschedule against a
 * reference implementation).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "syncmon/universal_hash.hh"

namespace ifp {
namespace {

TEST(UniversalHash, Deterministic)
{
    syncmon::UniversalHash h;
    EXPECT_EQ(h(12345), h(12345));
    EXPECT_EQ(h(0), h(0));
}

TEST(UniversalHash, DifferentInstancesDiffer)
{
    syncmon::UniversalHash a(3, 5), b(7, 11);
    int same = 0;
    for (std::uint64_t x = 0; x < 200; ++x)
        same += a(x) == b(x) ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(UniversalHash, SpreadsSequentialAddresses)
{
    // Sync variables are typically line-strided; the condition cache
    // must not alias them into a few sets.
    syncmon::UniversalHash h(0x2545F4914F6CDD1DULL, 0x9E3779B9ULL);
    std::array<int, 64> buckets{};
    for (std::uint64_t i = 0; i < 4096; ++i)
        ++buckets[h(0x10000000 + i * 64) % 64];
    auto [mn, mx] = std::minmax_element(buckets.begin(),
                                        buckets.end());
    EXPECT_GT(*mn, 20);   // expected 64 per bucket
    EXPECT_LT(*mx, 160);
}

TEST(UniversalHash, ConditionKeyMixesAddressAndValue)
{
    // Distinct (addr, value) pairs should give distinct keys in the
    // common case (FAM: many values on one address).
    std::set<std::uint64_t> keys;
    for (int v = 0; v < 256; ++v)
        keys.insert(syncmon::conditionKey(0x1000, v, 10, 6));
    EXPECT_EQ(keys.size(), 256u);
}

TEST(UniversalHash, StaysBelowMersennePrime)
{
    syncmon::UniversalHash h;
    sim::Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(h(rng.next()), syncmon::UniversalHash::prime);
}

/**
 * Randomized model check: drive the event queue with random
 * schedule/deschedule/reschedule operations and verify execution
 * order against a multimap reference model.
 */
TEST(EventQueueModel, RandomizedAgainstReference)
{
    sim::Rng rng(2020);

    for (int round = 0; round < 20; ++round) {
        sim::EventQueue eq;
        std::vector<int> executed;

        struct Rec : sim::Event
        {
            std::vector<int> *log = nullptr;
            int id = 0;
            void process() override { log->push_back(id); }
        };

        constexpr int n = 64;
        std::vector<Rec> events(n);
        // Reference: id -> scheduled tick (present iff scheduled).
        std::map<int, sim::Tick> model;
        // Insertion order for same-tick FIFO tie-breaking.
        std::map<int, std::uint64_t> order;
        std::uint64_t seq = 0;

        for (int i = 0; i < n; ++i) {
            events[i].log = &executed;
            events[i].id = i;
        }

        for (int op = 0; op < 300; ++op) {
            int idx = static_cast<int>(rng.uniform(n));
            Rec &ev = events[idx];
            if (!ev.scheduled()) {
                sim::Tick when = 1 + rng.uniform(1000);
                eq.schedule(&ev, when);
                model[idx] = when;
                order[idx] = seq++;
            } else if (rng.uniform(2) == 0) {
                eq.deschedule(&ev);
                model.erase(idx);
            } else {
                sim::Tick when = 1 + rng.uniform(1000);
                eq.reschedule(&ev, when);
                model[idx] = when;
                order[idx] = seq++;
            }
        }

        EXPECT_EQ(eq.size(), model.size());
        eq.simulate();

        // Expected order: by tick, then by (re)schedule sequence.
        std::vector<int> expected;
        for (const auto &[idx, when] : model)
            expected.push_back(idx);
        std::sort(expected.begin(), expected.end(),
                  [&](int a, int b) {
                      if (model[a] != model[b])
                          return model[a] < model[b];
                      return order[a] < order[b];
                  });
        EXPECT_EQ(executed, expected) << "round " << round;
    }
}

} // anonymous namespace
} // namespace ifp
