/**
 * @file
 * Timing tests for the DRAM channel model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "sim/event_queue.hh"

namespace ifp::mem {
namespace {

/** Records the completion tick of every response it receives. */
struct Recorder : MemResponder
{
    explicit Recorder(sim::EventQueue &eq) : eq(eq) {}

    void
    onMemResponse(MemRequest &, std::uint64_t) override
    {
        done.push_back(eq.curTick());
    }

    sim::EventQueue &eq;
    std::vector<sim::Tick> done;
};

MemRequestPtr
makeRead(MemRequestPool &pool, Addr addr, Recorder *rec)
{
    MemRequestPtr req = pool.allocate();
    req->op = MemOp::Read;
    req->addr = addr;
    if (rec)
        req->setResponder(rec);
    return req;
}

TEST(Dram, SingleAccessLatency)
{
    MemRequestPool pool;
    sim::EventQueue eq;
    DramConfig cfg;
    Dram dram("dram", eq, cfg);
    Recorder rec(eq);

    dram.access(makeRead(pool, 0x40, &rec));
    eq.simulate();
    ASSERT_EQ(rec.done.size(), 1u);
    EXPECT_EQ(rec.done[0], cfg.accessLatency * cfg.clockPeriod);
}

TEST(Dram, SameChannelSerializesAtBurstRate)
{
    MemRequestPool pool;
    sim::EventQueue eq;
    DramConfig cfg;
    Dram dram("dram", eq, cfg);
    Recorder rec(eq);

    // Same channel: addresses separated by channels*interleave.
    for (int i = 0; i < 3; ++i) {
        Addr addr = 0x40 + i * cfg.channels * cfg.interleaveBytes;
        dram.access(makeRead(pool, addr, &rec));
    }
    eq.simulate();
    ASSERT_EQ(rec.done.size(), 3u);
    sim::Tick burst = cfg.burstCycles * cfg.clockPeriod;
    EXPECT_EQ(rec.done[1] - rec.done[0], burst);
    EXPECT_EQ(rec.done[2] - rec.done[1], burst);
}

TEST(Dram, DifferentChannelsProceedInParallel)
{
    MemRequestPool pool;
    sim::EventQueue eq;
    DramConfig cfg;
    Dram dram("dram", eq, cfg);
    Recorder rec(eq);

    for (unsigned i = 0; i < cfg.channels; ++i)
        dram.access(makeRead(pool, i * cfg.interleaveBytes, &rec));
    eq.simulate();
    ASSERT_EQ(rec.done.size(), cfg.channels);
    for (sim::Tick t : rec.done)
        EXPECT_EQ(t, cfg.accessLatency * cfg.clockPeriod);
}

TEST(Dram, CountsReadsAndWrites)
{
    MemRequestPool pool;
    sim::EventQueue eq;
    DramConfig cfg;
    Dram dram("dram", eq, cfg);

    dram.access(makeRead(pool, 0x0, nullptr));
    MemRequestPtr wr = pool.allocate();
    wr->op = MemOp::Write;
    wr->addr = 0x40;
    dram.access(wr);
    wr.reset();
    eq.simulate();
    EXPECT_DOUBLE_EQ(dram.stats().scalar("reads").value(), 1.0);
    EXPECT_DOUBLE_EQ(dram.stats().scalar("writes").value(), 1.0);
    // Responder-less requests are recycled by refcount alone.
    EXPECT_EQ(pool.inUse(), 0u);
}

} // anonymous namespace
} // namespace ifp::mem
