/**
 * @file
 * Timing tests for the DRAM channel model.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "sim/event_queue.hh"

namespace ifp::mem {
namespace {

MemRequestPtr
makeRead(Addr addr, std::function<void()> cb)
{
    auto req = std::make_shared<MemRequest>();
    req->op = MemOp::Read;
    req->addr = addr;
    req->onResponse = std::move(cb);
    return req;
}

TEST(Dram, SingleAccessLatency)
{
    sim::EventQueue eq;
    DramConfig cfg;
    Dram dram("dram", eq, cfg);

    sim::Tick done = 0;
    dram.access(makeRead(0x40, [&] { done = eq.curTick(); }));
    eq.simulate();
    EXPECT_EQ(done, cfg.accessLatency * cfg.clockPeriod);
}

TEST(Dram, SameChannelSerializesAtBurstRate)
{
    sim::EventQueue eq;
    DramConfig cfg;
    Dram dram("dram", eq, cfg);

    // Same channel: addresses separated by channels*interleave.
    std::vector<sim::Tick> done;
    for (int i = 0; i < 3; ++i) {
        Addr addr = 0x40 + i * cfg.channels * cfg.interleaveBytes;
        dram.access(makeRead(addr, [&] {
            done.push_back(eq.curTick());
        }));
    }
    eq.simulate();
    ASSERT_EQ(done.size(), 3u);
    sim::Tick burst = cfg.burstCycles * cfg.clockPeriod;
    EXPECT_EQ(done[1] - done[0], burst);
    EXPECT_EQ(done[2] - done[1], burst);
}

TEST(Dram, DifferentChannelsProceedInParallel)
{
    sim::EventQueue eq;
    DramConfig cfg;
    Dram dram("dram", eq, cfg);

    std::vector<sim::Tick> done;
    for (unsigned i = 0; i < cfg.channels; ++i) {
        dram.access(makeRead(i * cfg.interleaveBytes, [&] {
            done.push_back(eq.curTick());
        }));
    }
    eq.simulate();
    ASSERT_EQ(done.size(), cfg.channels);
    for (sim::Tick t : done)
        EXPECT_EQ(t, cfg.accessLatency * cfg.clockPeriod);
}

TEST(Dram, CountsReadsAndWrites)
{
    sim::EventQueue eq;
    DramConfig cfg;
    Dram dram("dram", eq, cfg);

    dram.access(makeRead(0x0, nullptr));
    auto wr = std::make_shared<MemRequest>();
    wr->op = MemOp::Write;
    wr->addr = 0x40;
    dram.access(wr);
    eq.simulate();
    EXPECT_DOUBLE_EQ(dram.stats().scalar("reads").value(), 1.0);
    EXPECT_DOUBLE_EQ(dram.stats().scalar("writes").value(), 1.0);
}

} // anonymous namespace
} // namespace ifp::mem
