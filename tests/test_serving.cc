/**
 * @file
 * Multi-tenant serving layer: per-kernel dispatch contexts, the CP
 * admission/preemption scheduler, the serving harness and the legacy
 * compatibility contracts around them.
 *
 *  - determinism: the same (config, seed) serving scenario produces a
 *    byte-identical ifp-serving-v1 JSON report on every rerun, and
 *    across --shards settings,
 *  - priority preemption: a high-priority arrival evicts running WGs
 *    of a resident low-priority kernel through the WG drain /
 *    context-save machinery,
 *  - legacy equivalence: run() and a single-kernel enqueue+serve()
 *    produce byte-identical stats-JSON for all 12 workloads,
 *  - admission: "serial" admission serializes kernels,
 *  - the FaultPlan::cuLoss factory and the deprecated RunConfig
 *    quartet forwarding to it.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/observe.hh"
#include "harness/serving.hh"
#include "test_helpers.hh"

namespace ifp {
namespace {

/** A small two-tenant mix that overlaps heavily in time. */
harness::ServingConfig
twoTenantConfig()
{
    harness::ServingConfig cfg;
    cfg.policy = core::Policy::Awg;
    cfg.admission = "priority";
    cfg.numLaunches = 8;
    cfg.seed = 7;
    cfg.meanInterarrivalUs = 3.0;
    cfg.params = harness::defaultServingParams();
    cfg.tenants = {
        harness::ServingTenant{"fg", "HT", 2, 1'000'000, 1.0},
        harness::ServingTenant{"bg", "BA", 0, 0, 1.0},
    };
    return cfg;
}

std::string
servingJson(const harness::ServingReport &report)
{
    std::ostringstream os;
    harness::writeServingJson(os, report);
    return os.str();
}

TEST(Serving, TwoTenantRerunIsByteIdentical)
{
    harness::ServingConfig cfg = twoTenantConfig();
    std::string a = servingJson(harness::runServingScenario(cfg));
    std::string b = servingJson(harness::runServingScenario(cfg));
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"schema\": \"ifp-serving-v1\""),
              std::string::npos);
}

TEST(Serving, SeedChangesTheSchedule)
{
    harness::ServingConfig cfg = twoTenantConfig();
    std::string a = servingJson(harness::runServingScenario(cfg));
    cfg.seed = 8;
    std::string b = servingJson(harness::runServingScenario(cfg));
    EXPECT_NE(a, b);
}

TEST(Serving, ShardedServeMatchesSerial)
{
    harness::ServingConfig cfg = twoTenantConfig();
    cfg.numLaunches = 4;
    cfg.runCfg.shards = 1;
    std::string serial = servingJson(harness::runServingScenario(cfg));
    cfg.runCfg.shards = 2;
    std::string sharded = servingJson(harness::runServingScenario(cfg));
    EXPECT_EQ(serial, sharded);
}

TEST(Serving, PriorityArrivalPreemptsResidentLowPriority)
{
    // One low-priority kernel owns the whole machine; a high-priority
    // kernel arrives mid-run. Pure priority carving (floor 0) hands
    // every CU to the newcomer, which requires evicting running WGs
    // of the resident kernel via drain + context save.
    core::RunConfig rc = test::testRunConfig(core::Policy::Awg);
    rc.cp.admission.maxResidentKernels = 4;
    rc.cp.admission.cuShareFloor = 0;
    core::GpuSystem system(rc);

    workloads::WorkloadParams params = test::smallParams();
    params.style = core::styleFor(core::Policy::Awg);
    params.iters = 6;

    auto low = workloads::makeWorkload("BA");
    isa::Kernel low_k = low->build(system, params);
    gpu::LaunchOptions low_opts;
    low_opts.tenant = "batch";
    low_opts.priority = 0;
    int low_id = system.enqueueKernel(low_k, low_opts);

    auto high = workloads::makeWorkload("HT");
    isa::Kernel high_k = high->build(system, params);
    gpu::LaunchOptions high_opts;
    high_opts.tenant = "latency";
    high_opts.priority = 5;
    int high_id =
        system.enqueueKernelAt(high_k, high_opts,
                               sim::ticksFromMicroseconds(3));

    core::ServeResult res = system.serve();
    ASSERT_TRUE(res.run.completed) << res.run.statusString();

    const core::KernelRunStat &lo = res.kernels[low_id];
    const core::KernelRunStat &hi = res.kernels[high_id];
    ASSERT_TRUE(lo.completed);
    ASSERT_TRUE(hi.completed);
    EXPECT_GT(lo.preemptions, 0u)
        << "the resident low-priority kernel was never evicted";
    EXPECT_EQ(hi.preemptions, 0u);
    EXPECT_GT(lo.cusLost, 0u);
    // The preempted WGs must come back and finish.
    EXPECT_EQ(lo.wgsCompleted, lo.numWgs);
    EXPECT_GT(lo.swapIns, 0u);

    std::string err;
    EXPECT_TRUE(low->validate(system.memory(), params, err)) << err;
    EXPECT_TRUE(high->validate(system.memory(), params, err)) << err;
}

TEST(Serving, SerialAdmissionSerializes)
{
    core::RunConfig rc = test::testRunConfig(core::Policy::Awg);
    rc.cp.admission.maxResidentKernels = 1;
    rc.cp.admission.cuShareFloor = 0;
    core::GpuSystem system(rc);

    workloads::WorkloadParams params = test::smallParams();
    params.style = core::styleFor(core::Policy::Awg);

    auto a = workloads::makeWorkload("SPM_G");
    isa::Kernel a_k = a->build(system, params);
    int a_id = system.enqueueKernel(a_k, {});
    auto b = workloads::makeWorkload("SPM_G");
    isa::Kernel b_k = b->build(system, params);
    gpu::LaunchOptions b_opts;
    b_opts.priority = 9;  // priority must not bypass the residency cap
    int b_id = system.enqueueKernelAt(b_k, b_opts,
                                      sim::ticksFromMicroseconds(1));

    core::ServeResult res = system.serve();
    ASSERT_TRUE(res.run.completed) << res.run.statusString();
    const core::KernelRunStat &first = res.kernels[a_id];
    const core::KernelRunStat &second = res.kernels[b_id];
    ASSERT_TRUE(first.completed);
    ASSERT_TRUE(second.completed);
    EXPECT_GE(second.admitCycle, first.completeCycle)
        << "serial admission must not overlap kernels";
    EXPECT_GT(second.queueCycles, 0u);
    EXPECT_EQ(first.preemptions, 0u);
    EXPECT_EQ(second.preemptions, 0u);

    std::string err;
    EXPECT_TRUE(a->validate(system.memory(), params, err)) << err;
    EXPECT_TRUE(b->validate(system.memory(), params, err)) << err;
}

TEST(Serving, ConcurrentKernelsShareCusUnderFloor)
{
    harness::ServingConfig cfg = twoTenantConfig();
    cfg.admission = "share";
    harness::ServingReport report = harness::runServingScenario(cfg);
    EXPECT_TRUE(report.allCompleted) << report.verdict;
    EXPECT_GT(report.preemptions, 0u)
        << "a contended mix must preempt under CU carving";
    EXPECT_GT(report.cuReassignments, 0u);
    EXPECT_GT(report.admissionPasses, 0u);
    EXPECT_GT(report.fairness, 0.0);
    EXPECT_LE(report.fairness, 1.0);
    EXPECT_EQ(report.completionOrder.size(), cfg.numLaunches);
}

// ---------------------------------------------------------------------
// Legacy equivalence: run() == single-kernel enqueue + serve()
// ---------------------------------------------------------------------

std::string
statsJsonFor(const std::string &workload, bool via_serve)
{
    harness::Experiment exp;
    exp.workload = workload;
    exp.policy = core::Policy::Awg;
    exp.params = test::smallParams();
    exp.params.style = core::styleFor(exp.policy);

    core::RunConfig rc = test::testRunConfig(exp.policy);
    core::GpuSystem system(rc);
    auto w = workloads::makeWorkload(workload);
    isa::Kernel k = w->build(system, exp.params);

    core::RunResult result;
    if (via_serve) {
        system.enqueueKernel(k, {});
        result = system.serve().run;
    } else {
        result = system.run(k);
    }
    EXPECT_TRUE(result.completed) << workload << ": "
                                  << result.statusString();

    std::ostringstream os;
    harness::writeStatsJson(os, exp, system, result);
    return os.str();
}

TEST(Serving, LegacyRunEqualsSingleKernelServe)
{
    for (const std::string &w : workloads::heteroSyncAbbrevs()) {
        EXPECT_EQ(statsJsonFor(w, false), statsJsonFor(w, true))
            << w << ": run() and enqueue+serve() diverged";
    }
}

// ---------------------------------------------------------------------
// FaultPlan::cuLoss factory and the deprecated quartet shim
// ---------------------------------------------------------------------

TEST(CuLossFactory, BuildsTheLossRestorePair)
{
    core::FaultPlan plan = core::FaultPlan::cuLoss(10, 40, 2);
    EXPECT_EQ(plan.name, "cuLoss");
    ASSERT_EQ(plan.events.size(), 2u);
    EXPECT_EQ(plan.events[0].kind, core::FaultKind::CuOffline);
    EXPECT_EQ(plan.events[0].atUs, 10u);
    EXPECT_EQ(plan.events[0].cuId, 2);
    EXPECT_EQ(plan.events[1].kind, core::FaultKind::CuOnline);
    EXPECT_EQ(plan.events[1].atUs, 40u);
    EXPECT_EQ(plan.events[1].cuId, 2);
}

TEST(CuLossFactory, OmitsARestoreThatNeverHappens)
{
    core::FaultPlan never = core::FaultPlan::cuLoss(50);
    ASSERT_EQ(never.events.size(), 1u);
    EXPECT_EQ(never.events[0].kind, core::FaultKind::CuOffline);
    EXPECT_EQ(never.events[0].cuId, -1);

    // A restore at or before the loss is no restore at all.
    core::FaultPlan bogus = core::FaultPlan::cuLoss(50, 50);
    EXPECT_EQ(bogus.events.size(), 1u);
}

TEST(CuLossFactory, LegacyQuartetStillDrivesTheScenario)
{
    // The deprecated fields must keep producing the §VI behaviour:
    // mid-run CU loss forces preemptions, AWG recovers and completes.
    core::RunResult result =
        test::runSmall("FAM_G", core::Policy::Awg,
                       /*oversubscribed=*/true);
    ASSERT_TRUE(result.completed) << result.statusString();
    EXPECT_TRUE(result.validated) << result.validationError;
    EXPECT_GT(result.forcedPreemptions, 0u);
}

TEST(CuLossFactory, PlanPathCountsItsFaults)
{
    // The modern path applies the same scenario through the fault
    // engine, which (unlike the legacy shim) counts applied events.
    harness::Experiment exp;
    exp.workload = "FAM_G";
    exp.policy = core::Policy::Awg;
    exp.params = test::smallParams();
    exp.params.iters = 12;
    exp.runCfg.faultPlan = core::FaultPlan::cuLoss(5);
    core::RunResult result = harness::runExperiment(exp);
    ASSERT_TRUE(result.completed) << result.statusString();
    EXPECT_TRUE(result.validated) << result.validationError;
    EXPECT_GT(result.forcedPreemptions, 0u);
    EXPECT_EQ(result.injectedFaults, 1u);
}

} // namespace
} // namespace ifp
