/**
 * @file
 * Unit tests for the RingQueue used by the L2 bank and DRAM channel
 * queues: FIFO order across wrap-around, amortized growth that stops
 * once the high-water mark is reached, and prompt payload release on
 * pop (refcounted MemRequestPtrs must return to their pool at pop
 * time, not when the slot is reused).
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/ring_queue.hh"

namespace ifp::sim {
namespace {

TEST(RingQueue, StartsEmptyWithNoAllocation)
{
    RingQueue<int> q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.capacity(), 0u);
}

TEST(RingQueue, FifoOrderAcrossWrapAround)
{
    RingQueue<int> q;
    // Drift the head cursor through many wrap-arounds while keeping
    // the queue shallow: order must hold and capacity must not grow.
    for (int i = 0; i < 4; ++i)
        q.push_back(i);
    const std::size_t settled = q.capacity();
    int expect = 0;
    for (int i = 4; i < 1000; ++i) {
        EXPECT_EQ(q.front(), expect++);
        q.pop_front();
        q.push_back(i);
    }
    EXPECT_EQ(q.capacity(), settled);
    while (!q.empty()) {
        EXPECT_EQ(q.front(), expect++);
        q.pop_front();
    }
    EXPECT_EQ(expect, 1000);
}

TEST(RingQueue, GrowthPreservesOrderFromAnyCursor)
{
    RingQueue<int> q;
    // Misalign the cursor, then overflow capacity to force a grow
    // mid-ring: elements must come out in insertion order.
    for (int i = 0; i < 8; ++i)
        q.push_back(i);
    for (int i = 0; i < 5; ++i)
        q.pop_front();
    for (int i = 8; i < 40; ++i)
        q.push_back(i);
    for (int i = 5; i < 40; ++i) {
        ASSERT_FALSE(q.empty());
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, PopReleasesPayloadImmediately)
{
    RingQueue<std::shared_ptr<int>> q;
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> observer = token;
    q.push_back(std::move(token));
    q.pop_front();
    // The slot still exists in the ring, but the payload must be gone.
    EXPECT_TRUE(observer.expired());
}

TEST(RingQueue, ClearDrainsEverything)
{
    RingQueue<int> q;
    for (int i = 0; i < 20; ++i)
        q.push_back(i);
    q.clear();
    EXPECT_TRUE(q.empty());
    q.push_back(7);
    EXPECT_EQ(q.front(), 7);
}

} // anonymous namespace
} // namespace ifp::sim
