/**
 * @file
 * Queue-family gates (DESIGN.md §14): the per-policy verdict
 * annotations over the full (queue workload x policy) matrix at the
 * paper's default geometry, AWG resume-prediction accounting on the
 * high-unique-update-rate counters, constructor-parameter variants
 * through the Experiment workload factory, and the family's wiring
 * into the fault-injection campaign and the multi-tenant serving
 * scenario. Separate binary so `ctest -L queues` runs exactly this
 * surface.
 */

#include <cctype>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/campaign.hh"
#include "harness/serving.hh"
#include "test_helpers.hh"
#include "workloads/queues.hh"

namespace ifp {
namespace {

using core::Policy;
using core::Verdict;

const std::vector<Policy> allPolicies = {
    Policy::Baseline, Policy::Sleep,    Policy::Timeout,
    Policy::MonRSAll, Policy::MonRAll,  Policy::MonNRAll,
    Policy::MonNROne, Policy::Awg,      Policy::MinResume};

core::RunResult
runQueueDefault(const std::string &workload, Policy policy)
{
    harness::Experiment exp;
    exp.workload = workload;
    exp.policy = policy;
    exp.params = harness::defaultEvalParams();
    return harness::runExperiment(exp);
}

struct QueueCell
{
    std::string workload;
    Policy policy;
};

std::string
cellName(const ::testing::TestParamInfo<QueueCell> &info)
{
    std::string name = info.param.workload + "_" +
                       core::policyName(info.param.policy);
    for (char &ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    }
    return name;
}

class QueueVerdictMatrix : public ::testing::TestWithParam<QueueCell>
{};

/**
 * The annotation contract of the family: every (queue workload,
 * policy) cell's observed verdict at the default all-resident
 * geometry must match queueExpectedVerdict(), and completed runs
 * must produce valid memory images (checksums, final counter
 * values, slot sequences).
 */
TEST_P(QueueVerdictMatrix, ObservedVerdictMatchesAnnotation)
{
    const QueueCell &c = GetParam();
    core::RunResult r = runQueueDefault(c.workload, c.policy);
    EXPECT_EQ(r.verdict,
              workloads::queueExpectedVerdict(c.workload, c.policy))
        << c.workload << "/" << core::policyName(c.policy) << ": "
        << r.verdictString();
    if (r.completed) {
        EXPECT_TRUE(r.validated) << r.validationError;
    }
    EXPECT_GT(r.atomicInstructions, 0u);
}

std::vector<QueueCell>
allQueueCells()
{
    std::vector<QueueCell> cells;
    for (const std::string &w : workloads::queueAbbrevs())
        for (Policy policy : allPolicies)
            cells.push_back({w, policy});
    return cells;
}

INSTANTIATE_TEST_SUITE_P(AllQueuesAllPolicies, QueueVerdictMatrix,
                         ::testing::ValuesIn(allQueueCells()),
                         cellName);

TEST(QueueFamily, AwgPredictsResumesOnQueueCounters)
{
    // The queue counters take many distinct values before any
    // expectation is met — the predictor must still fire (waiters
    // park, updates hit monitored lines) and its misprediction
    // accounting must stay within the predicted total.
    for (const std::string &w : workloads::queueAbbrevs()) {
        core::RunResult r = runQueueDefault(w, Policy::Awg);
        ASSERT_TRUE(r.completed) << w << ": " << r.verdictString();
        EXPECT_GT(r.predictedResumes, 0u) << w;
        EXPECT_LE(r.mispredictedResumes, r.predictedResumes) << w;
    }
}

TEST(QueueFamily, DepthAndRatioVariantsComplete)
{
    // Constructor-parameter variants via the Experiment factory: a
    // shallow ring under a 3:1 producer:consumer imbalance (Timeout
    // must ride out full-queue stalls) and a shallow pipeline under
    // AWG.
    harness::Experiment mpmc;
    mpmc.workload = "MPMCQ";
    mpmc.policy = Policy::Timeout;
    mpmc.params = harness::defaultEvalParams();
    mpmc.makeWorkload = [] {
        return std::make_unique<workloads::MpmcQueueWorkload>(
            /*depth=*/4, /*producer_share=*/3, /*consumer_share=*/1);
    };
    core::RunResult r = harness::runExperiment(mpmc);
    EXPECT_TRUE(r.completed) << r.verdictString();
    EXPECT_TRUE(r.validated) << r.validationError;

    harness::Experiment pipe;
    pipe.workload = "PIPE";
    pipe.policy = Policy::Awg;
    pipe.params = harness::defaultEvalParams();
    pipe.makeWorkload = [] {
        return std::make_unique<workloads::PipelineWorkload>(
            /*stages=*/3, /*depth=*/4);
    };
    r = harness::runExperiment(pipe);
    EXPECT_TRUE(r.completed) << r.verdictString();
    EXPECT_TRUE(r.validated) << r.validationError;
}

TEST(QueueFamily, ChaosCampaignSurvivesFaultPlans)
{
    // Fault-injection wiring: seeded chaos plans against the MPMC
    // ring. The generator only emits survivable plans, so the
    // swap-capable policies must complete every plan with a valid
    // memory image, and AWG must preserve the forward-progress
    // ordering over Timeout.
    harness::CampaignConfig cfg;
    cfg.workload = "MPMCQ";
    cfg.policies = {Policy::Timeout, Policy::Awg};
    cfg.numPlans = 6;
    cfg.baseSeed = 1;
    cfg.params = test::smallParams();
    cfg.params.iters = 4;
    cfg.runCfg.deadlockWindowCycles = 200'000;
    cfg.jobs = 1;

    harness::CampaignReport report = harness::runChaosCampaign(cfg);
    ASSERT_EQ(report.runs.size(), cfg.numPlans * cfg.policies.size());
    for (const harness::CampaignRun &run : report.runs) {
        EXPECT_NE(run.result.verdict, Verdict::Unknown);
        EXPECT_TRUE(run.result.completed)
            << core::policyName(run.policy) << ": "
            << run.result.verdictString();
        EXPECT_TRUE(run.result.validated)
            << run.result.validationError;
    }
    EXPECT_TRUE(report.completesAllOf(Policy::Awg, Policy::Timeout));

    std::ostringstream csv;
    report.writeCsv(csv);
    EXPECT_FALSE(csv.str().empty());
}

TEST(QueueFamily, ServesAsLatencyAndThroughputTenants)
{
    // Serving wiring: queue kernels as tenants of the admission
    // scheduler — the MPMC ring as the latency tenant, the
    // work-stealing drain as the throughput tenant.
    harness::ServingConfig cfg;
    cfg.policy = Policy::Awg;
    cfg.admission = "share";
    cfg.numLaunches = 8;
    cfg.seed = 7;
    cfg.meanInterarrivalUs = 3.0;
    cfg.params = harness::defaultServingParams();
    cfg.tenants = {
        harness::ServingTenant{"latency", "MPMCQ", 2, 1'000'000, 1.0},
        harness::ServingTenant{"throughput", "WSD", 0, 0, 1.0},
    };

    harness::ServingReport report = harness::runServingScenario(cfg);
    EXPECT_TRUE(report.allCompleted) << report.verdict;
    EXPECT_EQ(report.completionOrder.size(), cfg.numLaunches);
    EXPECT_GT(report.fairness, 0.0);
    EXPECT_LE(report.fairness, 1.0);

    // Deterministic like every other serving mix: same (config,
    // seed), byte-identical report.
    std::ostringstream a, b;
    harness::writeServingJson(a, report);
    harness::writeServingJson(b, harness::runServingScenario(cfg));
    EXPECT_EQ(a.str(), b.str());
}

} // anonymous namespace
} // namespace ifp
