/**
 * @file
 * Tests for the Command Processor firmware model: context switch
 * timing via the DMA engine, rescue timers, and spilled-condition
 * checking (Mesa semantics).
 */

#include <gtest/gtest.h>

#include "cp/command_processor.hh"
#include "gpu/workgroup.hh"
#include "mem/backing_store.hh"
#include "mem/dma.hh"
#include "sim/event_queue.hh"

namespace ifp::cp {
namespace {

/** Scheduler stub that records resume requests. */
class StubScheduler : public gpu::WgScheduler
{
  public:
    bool hasStarvedWork() const override { return starved; }
    void resumeWg(int wg_id) override { resumed.push_back(wg_id); }
    unsigned numWaitingWgs() const override { return 0; }

    bool starved = false;
    std::vector<int> resumed;
};

struct CpFixture : public ::testing::Test
{
    CpFixture()
        : dma("dma", eq, mem::DmaConfig{}),
          cp("cp", eq, CpConfig{}, dma, store)
    {
        cp.setScheduler(&sched);
        kernel.wiPerWg = 64;
        kernel.vgprsPerWi = 16;
        kernel.ldsBytes = 1024;
        kernel.numWgs = 4;
    }

    /**
     * Run forward a bounded amount of time: CP housekeeping
     * legitimately re-schedules forever while unmet spilled
     * conditions exist.
     */
    void
    settle(sim::Tick ticks = 200'000'000)
    {
        eq.simulate(eq.curTick() + ticks);
    }

    sim::EventQueue eq;
    mem::BackingStore store;
    mem::DmaEngine dma;
    CommandProcessor cp;
    StubScheduler sched;
    isa::Kernel kernel;
};

TEST_F(CpFixture, ContextSaveTakesDmaTime)
{
    gpu::WorkGroup wg(0, kernel);
    sim::Tick done = 0;
    cp.saveContext(&wg, [&] { done = eq.curTick(); });
    settle();
    mem::DmaConfig dma_cfg;
    std::uint64_t bytes = kernel.contextBytes();
    sim::Cycles expect = dma_cfg.setupCycles +
                         (bytes + dma_cfg.bytesPerCycle - 1) /
                             dma_cfg.bytesPerCycle;
    EXPECT_GE(done, expect * dma_cfg.clockPeriod);
    EXPECT_EQ(cp.maxContextStoreBytes(), bytes);
}

TEST_F(CpFixture, RestoreReleasesContextStore)
{
    gpu::WorkGroup wg(0, kernel);
    cp.saveContext(&wg, nullptr);
    settle();
    bool restored = false;
    cp.restoreContext(&wg, [&] { restored = true; });
    settle();
    EXPECT_TRUE(restored);
    EXPECT_EQ(cp.maxContextStoreBytes(), kernel.contextBytes());
    // Save again: the high-water mark should not double.
    cp.saveContext(&wg, nullptr);
    settle();
    EXPECT_EQ(cp.maxContextStoreBytes(), kernel.contextBytes());
}

TEST_F(CpFixture, ConcurrentSavesSerializeOnTheDmaEngine)
{
    gpu::WorkGroup wg0(0, kernel), wg1(1, kernel);
    std::vector<sim::Tick> done;
    cp.saveContext(&wg0, [&] { done.push_back(eq.curTick()); });
    cp.saveContext(&wg1, [&] { done.push_back(eq.curTick()); });
    settle();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_GT(done[1], done[0]);
    EXPECT_EQ(cp.maxContextStoreBytes(), 2 * kernel.contextBytes());
}

TEST_F(CpFixture, RescueFiresAfterTimeout)
{
    cp.armRescue(3, 1000);
    settle();
    ASSERT_EQ(sched.resumed.size(), 1u);
    EXPECT_EQ(sched.resumed[0], 3);
    EXPECT_EQ(cp.rescueResumes(), 1u);
}

TEST_F(CpFixture, CancelledRescueDoesNotFire)
{
    cp.armRescue(3, 1000);
    cp.cancelRescue(3);
    settle();
    EXPECT_TRUE(sched.resumed.empty());
}

TEST_F(CpFixture, RearmReplacesDeadline)
{
    cp.armRescue(3, 1000);
    cp.armRescue(3, 5000);
    settle();
    EXPECT_EQ(sched.resumed.size(), 1u);
}

TEST_F(CpFixture, SpilledConditionResumesWhenMet)
{
    store.write(0x7000, 1, 8);
    ASSERT_TRUE(cp.spillCondition(0x7000, /*expected=*/5, /*wg=*/9));
    settle();
    EXPECT_TRUE(sched.resumed.empty());  // condition not met

    // Meet the condition; the periodic check picks it up.
    store.write(0x7000, 5, 8);
    cp.spillCondition(0x7008, 1, 11);  // keeps housekeeping alive
    settle();
    ASSERT_GE(sched.resumed.size(), 1u);
    EXPECT_EQ(sched.resumed[0], 9);
}

TEST_F(CpFixture, LogOverflowReportsFailure)
{
    CpConfig tiny;
    tiny.monitorLogCapacity = 2;
    CommandProcessor small_cp("cp2", eq, tiny, dma, store);
    EXPECT_TRUE(small_cp.spillCondition(0x100, 1, 1));
    EXPECT_TRUE(small_cp.spillCondition(0x140, 2, 2));
    EXPECT_FALSE(small_cp.spillCondition(0x180, 3, 3));
}

TEST_F(CpFixture, DropSpilledForRemovesStaleConditions)
{
    cp.spillCondition(0x9000, 5, 21);
    settle();  // drained into the monitor table, still unmet
    cp.dropSpilledFor(21);
    store.write(0x9000, 5, 8);
    cp.spillCondition(0x9040, 1, 22);
    settle();
    for (int wg : sched.resumed)
        EXPECT_NE(wg, 21);
}

} // anonymous namespace
} // namespace ifp::cp
