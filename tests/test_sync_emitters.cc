/**
 * @file
 * Codegen verification for the style-parameterized sync emitters:
 * each policy's style must emit exactly the instruction classes the
 * paper's corresponding machine supports (no waiting atomics on the
 * Baseline, no s_sleep outside the Sleep policy, ...).
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"
#include "workloads/sync_emitters.hh"

namespace ifp::workloads {
namespace {

using core::SyncStyle;
using isa::KernelBuilder;
using isa::Opcode;

struct OpcodeCensus
{
    unsigned atomics = 0;
    unsigned waitingAtomics = 0;
    unsigned armWaits = 0;
    unsigned sleeps = 0;
    unsigned branches = 0;
};

OpcodeCensus
census(const std::vector<isa::Instr> &code)
{
    OpcodeCensus c;
    for (const isa::Instr &in : code) {
        switch (in.op) {
          case Opcode::Atom: ++c.atomics; break;
          case Opcode::AtomWait: ++c.waitingAtomics; break;
          case Opcode::ArmWait: ++c.armWaits; break;
          case Opcode::SleepR: ++c.sleeps; break;
          case Opcode::Bz:
          case Opcode::Bnz:
          case Opcode::Br: ++c.branches; break;
          default: break;
        }
    }
    return c;
}

std::vector<isa::Instr>
emitAcquireRelease(SyncStyle style, bool software_backoff = false)
{
    KernelBuilder b;
    StyleParams sp;
    sp.style = style;
    sp.softwareBackoff = software_backoff;
    emitSyncProlog(b, sp);
    emitTasAcquire(b, sp, rSyncAddr);
    emitTasRelease(b, rSyncAddr);
    b.halt();
    return b.build();
}

std::vector<isa::Instr>
emitWait(SyncStyle style)
{
    KernelBuilder b;
    StyleParams sp;
    sp.style = style;
    emitSyncProlog(b, sp);
    emitWaitEq(b, sp, rSyncAddr, 0, rDataVal);
    b.halt();
    return b.build();
}

TEST(SyncEmitters, BusyStyleUsesOnlyRegularAtomics)
{
    for (auto code : {emitAcquireRelease(SyncStyle::Busy),
                      emitWait(SyncStyle::Busy)}) {
        OpcodeCensus c = census(code);
        EXPECT_GT(c.atomics, 0u);
        EXPECT_EQ(c.waitingAtomics, 0u);
        EXPECT_EQ(c.armWaits, 0u);
        EXPECT_EQ(c.sleeps, 0u);
        EXPECT_GT(c.branches, 0u);  // the spin loop
    }
}

TEST(SyncEmitters, SleepStyleAddsBackoff)
{
    OpcodeCensus c = census(emitAcquireRelease(SyncStyle::SleepBackoff));
    EXPECT_GT(c.atomics, 0u);
    EXPECT_EQ(c.waitingAtomics, 0u);
    EXPECT_EQ(c.sleeps, 1u);
    c = census(emitWait(SyncStyle::SleepBackoff));
    EXPECT_EQ(c.sleeps, 1u);
}

TEST(SyncEmitters, SoftwareBackoffAvoidsSleepInstructions)
{
    // SPMBO on the Baseline machine: delay loops, no s_sleep.
    OpcodeCensus c =
        census(emitAcquireRelease(SyncStyle::Busy, true));
    EXPECT_EQ(c.sleeps, 0u);
    EXPECT_GT(c.branches, 1u);  // retry loop + delay loop
}

TEST(SyncEmitters, WaitAtomicStyleUsesWaitingAtomics)
{
    for (auto code : {emitAcquireRelease(SyncStyle::WaitAtomic),
                      emitWait(SyncStyle::WaitAtomic)}) {
        OpcodeCensus c = census(code);
        EXPECT_GT(c.waitingAtomics, 0u);
        EXPECT_EQ(c.armWaits, 0u);
        EXPECT_EQ(c.sleeps, 0u);
    }
}

TEST(SyncEmitters, WaitInstrStyleArmsAfterChecking)
{
    // Figure 10 (top): a regular check followed by a separate arm —
    // the window-of-vulnerability pattern.
    auto code = emitWait(SyncStyle::WaitInstr);
    OpcodeCensus c = census(code);
    EXPECT_GT(c.atomics, 0u);
    EXPECT_EQ(c.armWaits, 1u);
    EXPECT_EQ(c.waitingAtomics, 0u);
    // The arm must come after the checking atomic in program order.
    int check_pc = -1, arm_pc = -1;
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        if (code[pc].op == Opcode::Atom && check_pc < 0)
            check_pc = static_cast<int>(pc);
        if (code[pc].op == Opcode::ArmWait)
            arm_pc = static_cast<int>(pc);
    }
    EXPECT_GE(check_pc, 0);
    EXPECT_GT(arm_pc, check_pc);
}

TEST(SyncEmitters, ReleaseCarriesReleaseSemantics)
{
    KernelBuilder b;
    StyleParams sp;
    sp.style = SyncStyle::Busy;
    emitTasRelease(b, rSyncAddr);
    auto code = b.build();
    ASSERT_EQ(code.size(), 1u);
    EXPECT_TRUE(code[0].release);
    EXPECT_FALSE(code[0].acquire);
}

TEST(SyncEmitters, AcquireCarriesAcquireSemantics)
{
    for (SyncStyle style :
         {SyncStyle::Busy, SyncStyle::SleepBackoff,
          SyncStyle::WaitAtomic, SyncStyle::WaitInstr}) {
        auto code = emitAcquireRelease(style);
        bool saw_acquire = false;
        for (const isa::Instr &in : code) {
            if ((in.op == Opcode::Atom ||
                 in.op == Opcode::AtomWait) &&
                in.acquire) {
                saw_acquire = true;
            }
        }
        EXPECT_TRUE(saw_acquire)
            << "style " << static_cast<int>(style);
    }
}

TEST(SyncEmitters, AllWorkloadsEmitPolicyConsistentCode)
{
    // Cross-check at the workload level: building any benchmark in a
    // given style yields code whose opcode census matches the style.
    core::GpuSystem system(ifp::test::testRunConfig());
    workloads::WorkloadParams params = ifp::test::smallParams();
    for (const auto &w : makeFullSuite()) {
        params.style = core::SyncStyle::WaitAtomic;
        OpcodeCensus c = census(w->build(system, params).code);
        EXPECT_GT(c.waitingAtomics, 0u) << w->abbrev();
        EXPECT_EQ(c.armWaits, 0u) << w->abbrev();

        params.style = core::SyncStyle::Busy;
        c = census(w->build(system, params).code);
        EXPECT_EQ(c.waitingAtomics, 0u) << w->abbrev();
        EXPECT_EQ(c.sleeps, 0u) << w->abbrev();
    }
}

} // anonymous namespace
} // namespace ifp::workloads
