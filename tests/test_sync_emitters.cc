/**
 * @file
 * Codegen verification for the style-parameterized sync emitters:
 * each policy's style must emit exactly the instruction classes the
 * paper's corresponding machine supports (no waiting atomics on the
 * Baseline, no s_sleep outside the Sleep policy, ...).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "analysis/lint.hh"
#include "test_helpers.hh"
#include "workloads/sync_emitters.hh"

namespace ifp::workloads {
namespace {

using core::SyncStyle;
using isa::KernelBuilder;
using isa::Opcode;

struct OpcodeCensus
{
    unsigned atomics = 0;
    unsigned waitingAtomics = 0;
    unsigned armWaits = 0;
    unsigned sleeps = 0;
    unsigned branches = 0;
};

OpcodeCensus
census(const std::vector<isa::Instr> &code)
{
    OpcodeCensus c;
    for (const isa::Instr &in : code) {
        switch (in.op) {
          case Opcode::Atom: ++c.atomics; break;
          case Opcode::AtomWait: ++c.waitingAtomics; break;
          case Opcode::ArmWait: ++c.armWaits; break;
          case Opcode::SleepR: ++c.sleeps; break;
          case Opcode::Bz:
          case Opcode::Bnz:
          case Opcode::Br: ++c.branches; break;
          default: break;
        }
    }
    return c;
}

std::vector<isa::Instr>
emitAcquireRelease(SyncStyle style, bool software_backoff = false)
{
    KernelBuilder b;
    StyleParams sp;
    sp.style = style;
    sp.softwareBackoff = software_backoff;
    emitSyncProlog(b, sp);
    emitTasAcquire(b, sp, rSyncAddr);
    emitTasRelease(b, rSyncAddr);
    b.halt();
    return b.build();
}

std::vector<isa::Instr>
emitWait(SyncStyle style)
{
    KernelBuilder b;
    StyleParams sp;
    sp.style = style;
    emitSyncProlog(b, sp);
    emitWaitEq(b, sp, rSyncAddr, 0, rDataVal);
    b.halt();
    return b.build();
}

TEST(SyncEmitters, BusyStyleUsesOnlyRegularAtomics)
{
    for (auto code : {emitAcquireRelease(SyncStyle::Busy),
                      emitWait(SyncStyle::Busy)}) {
        OpcodeCensus c = census(code);
        EXPECT_GT(c.atomics, 0u);
        EXPECT_EQ(c.waitingAtomics, 0u);
        EXPECT_EQ(c.armWaits, 0u);
        EXPECT_EQ(c.sleeps, 0u);
        EXPECT_GT(c.branches, 0u);  // the spin loop
    }
}

TEST(SyncEmitters, SleepStyleAddsBackoff)
{
    OpcodeCensus c = census(emitAcquireRelease(SyncStyle::SleepBackoff));
    EXPECT_GT(c.atomics, 0u);
    EXPECT_EQ(c.waitingAtomics, 0u);
    EXPECT_EQ(c.sleeps, 1u);
    c = census(emitWait(SyncStyle::SleepBackoff));
    EXPECT_EQ(c.sleeps, 1u);
}

TEST(SyncEmitters, SoftwareBackoffAvoidsSleepInstructions)
{
    // SPMBO on the Baseline machine: delay loops, no s_sleep.
    OpcodeCensus c =
        census(emitAcquireRelease(SyncStyle::Busy, true));
    EXPECT_EQ(c.sleeps, 0u);
    EXPECT_GT(c.branches, 1u);  // retry loop + delay loop
}

TEST(SyncEmitters, WaitAtomicStyleUsesWaitingAtomics)
{
    for (auto code : {emitAcquireRelease(SyncStyle::WaitAtomic),
                      emitWait(SyncStyle::WaitAtomic)}) {
        OpcodeCensus c = census(code);
        EXPECT_GT(c.waitingAtomics, 0u);
        EXPECT_EQ(c.armWaits, 0u);
        EXPECT_EQ(c.sleeps, 0u);
    }
}

TEST(SyncEmitters, WaitInstrStyleArmsAfterChecking)
{
    // Figure 10 (top): a regular check followed by a separate arm —
    // the window-of-vulnerability pattern.
    auto code = emitWait(SyncStyle::WaitInstr);
    OpcodeCensus c = census(code);
    EXPECT_GT(c.atomics, 0u);
    EXPECT_EQ(c.armWaits, 1u);
    EXPECT_EQ(c.waitingAtomics, 0u);
    // The arm must come after the checking atomic in program order.
    int check_pc = -1, arm_pc = -1;
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        if (code[pc].op == Opcode::Atom && check_pc < 0)
            check_pc = static_cast<int>(pc);
        if (code[pc].op == Opcode::ArmWait)
            arm_pc = static_cast<int>(pc);
    }
    EXPECT_GE(check_pc, 0);
    EXPECT_GT(arm_pc, check_pc);
}

TEST(SyncEmitters, ReleaseCarriesReleaseSemantics)
{
    KernelBuilder b;
    StyleParams sp;
    sp.style = SyncStyle::Busy;
    emitTasRelease(b, rSyncAddr);
    auto code = b.build();
    ASSERT_EQ(code.size(), 1u);
    EXPECT_TRUE(code[0].release);
    EXPECT_FALSE(code[0].acquire);
}

TEST(SyncEmitters, AcquireCarriesAcquireSemantics)
{
    for (SyncStyle style :
         {SyncStyle::Busy, SyncStyle::SleepBackoff,
          SyncStyle::WaitAtomic, SyncStyle::WaitInstr}) {
        auto code = emitAcquireRelease(style);
        bool saw_acquire = false;
        for (const isa::Instr &in : code) {
            if ((in.op == Opcode::Atom ||
                 in.op == Opcode::AtomWait) &&
                in.acquire) {
                saw_acquire = true;
            }
        }
        EXPECT_TRUE(saw_acquire)
            << "style " << static_cast<int>(style);
    }
}

/**
 * A linteable miniature kernel around one value-predicate wait: WG 0
 * waits, WGs 1..3 publish (a release exchange for the slot-sequence
 * wait, release increments for the ceiling counter), so the static
 * progress passes can discharge the wait.
 */
isa::Kernel
valueWaitKernel(SyncStyle style, bool counter)
{
    using mem::AtomicOpcode;
    KernelBuilder b;
    StyleParams sp;
    sp.style = style;
    emitSyncProlog(b, sp);
    b.movi(rSyncAddr, 0x1000);
    b.movi(rDataVal, counter ? 3 : 1);
    isa::Label wait = b.label();
    isa::Label end = b.label();
    b.bz(isa::rWgId, wait);
    b.atom(rAtomResult, counter ? AtomicOpcode::Add : AtomicOpcode::Exch,
           rSyncAddr, 0, rOne, 0, /*acquire=*/false, /*release=*/true);
    b.br(end);
    b.bind(wait);
    if (counter)
        emitWaitCounterReach(b, sp, rSyncAddr, 0, rDataVal);
    else
        emitWaitSeqEq(b, sp, rSyncAddr, 0, rDataVal);
    b.bind(end);
    b.halt();
    isa::Kernel k = ifp::test::makeTestKernel(b, 4);
    k.lintSuppressions = b.suppressions();
    return k;
}

analysis::Report
lintValueWait(SyncStyle style, bool counter)
{
    isa::Kernel k = valueWaitKernel(style, counter);
    analysis::LaunchContext launch = analysis::makeLaunchContext(
        k, /*num_cus=*/8, /*simds_per_cu=*/2,
        /*wavefronts_per_simd=*/20, /*lds_bytes_per_cu=*/64 * 1024);
    return analysis::runLint(k, launch);
}

TEST(SyncEmitters, ValuePredicateWaitsFollowStyleCensus)
{
    for (bool counter : {false, true}) {
        OpcodeCensus busy =
            census(valueWaitKernel(SyncStyle::Busy, counter).code);
        EXPECT_GT(busy.atomics, 0u);
        EXPECT_EQ(busy.waitingAtomics, 0u);
        EXPECT_EQ(busy.armWaits, 0u);
        EXPECT_EQ(busy.sleeps, 0u);

        OpcodeCensus sleep = census(
            valueWaitKernel(SyncStyle::SleepBackoff, counter).code);
        EXPECT_EQ(sleep.sleeps, 1u);
        EXPECT_EQ(sleep.waitingAtomics, 0u);

        OpcodeCensus wa = census(
            valueWaitKernel(SyncStyle::WaitAtomic, counter).code);
        EXPECT_GT(wa.waitingAtomics, 0u);
        EXPECT_EQ(wa.armWaits, 0u);
        EXPECT_EQ(wa.sleeps, 0u);

        OpcodeCensus wi = census(
            valueWaitKernel(SyncStyle::WaitInstr, counter).code);
        EXPECT_EQ(wi.armWaits, 1u);
        EXPECT_EQ(wi.waitingAtomics, 0u);
    }
}

TEST(SyncEmitters, WaitAtomicValueWaitsHaveNoWindow)
{
    // Figure 10 (bottom): the WaitAtomic form of both value-predicate
    // waits fuses the check into the waiting access itself — there is
    // no regular atomic on the waiter's path whose result a separate
    // arm could race with (the single Atom is the publisher's release).
    for (bool counter : {false, true}) {
        OpcodeCensus c = census(
            valueWaitKernel(SyncStyle::WaitAtomic, counter).code);
        EXPECT_EQ(c.atomics, 1u);
        EXPECT_GT(c.waitingAtomics, 0u);
        EXPECT_EQ(c.armWaits, 0u);
    }
}

TEST(SyncEmitters, ValuePredicateWaitsLintCleanAcrossStyles)
{
    // Static cross-check: every style of both waits passes the
    // verifier under --Werror. The WaitInstr forms carry their
    // annotated check-then-arm ("wov") suppression — the finding must
    // still be present, demoted, with the annotation attached.
    for (bool counter : {false, true}) {
        for (SyncStyle style :
             {SyncStyle::Busy, SyncStyle::SleepBackoff,
              SyncStyle::WaitAtomic, SyncStyle::WaitInstr}) {
            analysis::Report r = lintValueWait(style, counter);
            std::ostringstream dump;
            analysis::printReport(r, dump);
            EXPECT_TRUE(r.clean(/*werror=*/true))
                << "counter=" << counter << " style "
                << static_cast<int>(style) << "\n" << dump.str();
        }
        analysis::Report wi = lintValueWait(SyncStyle::WaitInstr,
                                            counter);
        bool saw_suppressed_wov = false;
        for (const analysis::Diagnostic &d : wi.diagnostics) {
            if (d.code == "wov") {
                EXPECT_TRUE(d.suppressed);
                EXPECT_FALSE(d.suppressReason.empty());
                saw_suppressed_wov = true;
            }
        }
        EXPECT_TRUE(saw_suppressed_wov) << "counter=" << counter;

        analysis::Report wa = lintValueWait(SyncStyle::WaitAtomic,
                                            counter);
        for (const analysis::Diagnostic &d : wa.diagnostics)
            EXPECT_NE(d.code, "wov");  // genuinely window-free
    }
}

TEST(SyncEmitters, AllWorkloadsEmitPolicyConsistentCode)
{
    // Cross-check at the workload level: building any benchmark in a
    // given style yields code whose opcode census matches the style.
    core::GpuSystem system(ifp::test::testRunConfig());
    workloads::WorkloadParams params = ifp::test::smallParams();
    for (const auto &w : makeFullSuite()) {
        params.style = core::SyncStyle::WaitAtomic;
        OpcodeCensus c = census(w->build(system, params).code);
        EXPECT_GT(c.waitingAtomics, 0u) << w->abbrev();
        EXPECT_EQ(c.armWaits, 0u) << w->abbrev();

        params.style = core::SyncStyle::Busy;
        c = census(w->build(system, params).code);
        EXPECT_EQ(c.waitingAtomics, 0u) << w->abbrev();
        EXPECT_EQ(c.sleeps, 0u) << w->abbrev();
    }
}

} // anonymous namespace
} // namespace ifp::workloads
