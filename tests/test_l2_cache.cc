/**
 * @file
 * Tests for the shared L2: atomics, waiting atomics, monitored-bit
 * notifications, pinning, and the same-line RMW serialization that
 * drives the paper's contention results.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.hh"
#include "mem/dram.hh"
#include "mem/l2_cache.hh"
#include "sim/event_queue.hh"

namespace ifp::mem {
namespace {

/** Observer recording everything the L2 reports. */
class RecordingObserver : public SyncObserver
{
  public:
    WaitDecision
    onWaitFail(const MemRequest &req, MemValue observed) override
    {
        waitFails.push_back({req.addr, observed});
        return decision;
    }

    WaitDecision
    onArmWait(const MemRequest &req) override
    {
        armWaits.push_back({req.addr, req.expected});
        return decision;
    }

    void
    onMonitoredAccess(Addr addr, MemValue new_value, bool is_update,
                      int by_wg) override
    {
        (void)by_wg;
        notifies.push_back({addr, new_value, is_update});
    }

    struct Notify
    {
        Addr addr;
        MemValue value;
        bool isUpdate;
    };

    WaitDecision decision{WaitKind::Stall, 1000};
    std::vector<std::pair<Addr, MemValue>> waitFails;
    std::vector<std::pair<Addr, MemValue>> armWaits;
    std::vector<Notify> notifies;
};

struct L2Fixture : public ::testing::Test, public MemResponder
{
    L2Fixture()
        : dram("dram", eq, DramConfig{}),
          l2("l2", eq, L2Config{}, dram, store, pool)
    {
        l2.setSyncObserver(&observer);
    }

    void
    onMemResponse(MemRequest &, std::uint64_t) override
    {
        completions.push_back(eq.curTick());
    }

    MemRequestPtr
    issue(MemOp op, Addr addr,
          AtomicOpcode aop = AtomicOpcode::Load, MemValue operand = 0,
          bool waiting = false, MemValue expected = 0)
    {
        MemRequestPtr req = pool.allocate();
        req->op = op;
        req->addr = addr;
        req->aop = aop;
        req->operand = operand;
        req->waiting = waiting;
        req->expected = expected;
        req->setResponder(this);
        l2.access(req);
        return req;
    }

    MemRequestPool pool;
    sim::EventQueue eq;
    BackingStore store;
    Dram dram;
    L2Cache l2;
    RecordingObserver observer;
    std::vector<sim::Tick> completions;
};

TEST_F(L2Fixture, AtomicExecutesAtL2AndReturnsOldValue)
{
    store.write(0x1000, 7, 8);
    auto req = issue(MemOp::Atomic, 0x1000, AtomicOpcode::Add, 3);
    eq.simulate();
    EXPECT_EQ(req->result, 7);
    EXPECT_EQ(store.read(0x1000, 8), 10);
}

TEST_F(L2Fixture, SuccessfulWaitingAtomicProceeds)
{
    store.write(0x1000, 0, 8);
    auto req = issue(MemOp::Atomic, 0x1000, AtomicOpcode::Exch, 1,
                     /*waiting=*/true, /*expected=*/0);
    eq.simulate();
    EXPECT_FALSE(req->waitFailed);
    EXPECT_EQ(req->result, 0);
    EXPECT_EQ(store.read(0x1000, 8), 1);  // exchange happened
    EXPECT_TRUE(observer.waitFails.empty());
}

TEST_F(L2Fixture, FailedWaitingAtomicConsultsObserverAndDoesNotWrite)
{
    store.write(0x1000, 1, 8);  // lock held
    auto req = issue(MemOp::Atomic, 0x1000, AtomicOpcode::Exch, 1,
                     /*waiting=*/true, /*expected=*/0);
    eq.simulate();
    EXPECT_TRUE(req->waitFailed);
    EXPECT_EQ(req->result, 1);
    EXPECT_EQ(store.read(0x1000, 8), 1);  // no modification
    ASSERT_EQ(observer.waitFails.size(), 1u);
    EXPECT_EQ(req->decision.kind, WaitKind::Stall);
    EXPECT_EQ(req->decision.timeoutCycles, 1000u);
}

TEST_F(L2Fixture, ArmWaitConsultsObserver)
{
    auto req = issue(MemOp::ArmWait, 0x2000, AtomicOpcode::Load, 0,
                     false, 5);
    req->expected = 5;
    eq.simulate();
    ASSERT_EQ(observer.armWaits.size(), 1u);
    EXPECT_EQ(observer.armWaits[0].second, 5);
}

TEST_F(L2Fixture, MonitoredLineNotifiesOnUpdate)
{
    l2.setMonitored(0x3000, true);
    EXPECT_TRUE(l2.isMonitored(0x3008));  // same line
    auto wr = issue(MemOp::Write, 0x3000);
    wr->operand = 9;
    eq.simulate();
    ASSERT_GE(observer.notifies.size(), 1u);
    EXPECT_EQ(observer.notifies.back().value, 9);
    EXPECT_TRUE(observer.notifies.back().isUpdate);
}

TEST_F(L2Fixture, UnmonitoredLineDoesNotNotify)
{
    auto wr = issue(MemOp::Write, 0x4000);
    wr->operand = 9;
    eq.simulate();
    EXPECT_TRUE(observer.notifies.empty());
}

TEST_F(L2Fixture, AtomicUpdateToMonitoredLineReportsNewValue)
{
    l2.setMonitored(0x5000, true);
    store.write(0x5000, 10, 8);
    issue(MemOp::Atomic, 0x5000, AtomicOpcode::Add, 5);
    eq.simulate();
    ASSERT_EQ(observer.notifies.size(), 1u);
    EXPECT_EQ(observer.notifies[0].value, 15);
    EXPECT_TRUE(observer.notifies[0].isUpdate);
}

TEST_F(L2Fixture, MonitoredBitClearStopsNotifications)
{
    l2.setMonitored(0x5000, true);
    l2.setMonitored(0x5000, false);
    auto wr = issue(MemOp::Write, 0x5000);
    wr->operand = 1;
    eq.simulate();
    EXPECT_TRUE(observer.notifies.empty());
}

TEST_F(L2Fixture, SameLineAtomicsSerializeAtRmwTurnaround)
{
    // Warm the line so the first atomic's DRAM fill does not overlap
    // the turnaround being measured.
    issue(MemOp::Read, 0x6000);
    eq.simulate();
    completions.clear();
    std::vector<sim::Tick> &done = completions;
    for (int i = 0; i < 3; ++i) {
        MemRequestPtr req = pool.allocate();
        req->op = MemOp::Atomic;
        req->addr = 0x6000;
        req->aop = AtomicOpcode::Add;
        req->operand = 1;
        req->setResponder(this);
        l2.access(req);
    }
    eq.simulate();
    ASSERT_EQ(done.size(), 3u);
    sim::Tick gap = l2.config().sameLineAtomicGapCycles *
                    l2.config().clockPeriod;
    EXPECT_EQ(done[1] - done[0], gap);
    EXPECT_EQ(done[2] - done[1], gap);
    EXPECT_EQ(store.read(0x6000, 8), 3);
}

TEST_F(L2Fixture, DifferentLineAtomicsPipelineFaster)
{
    std::vector<sim::Tick> &done = completions;
    for (int i = 0; i < 2; ++i) {
        MemRequestPtr req = pool.allocate();
        req->op = MemOp::Atomic;
        // Same bank (banks stride by line), different lines.
        req->addr = 0x6000 + static_cast<Addr>(i) * 64 *
                                 l2.config().banks;
        req->aop = AtomicOpcode::Add;
        req->operand = 1;
        req->setResponder(this);
        l2.access(req);
    }
    eq.simulate();
    ASSERT_EQ(done.size(), 2u);
    sim::Tick spacing = done[1] - done[0];
    sim::Tick gap = l2.config().sameLineAtomicGapCycles *
                    l2.config().clockPeriod;
    EXPECT_LT(spacing, gap);
}

TEST_F(L2Fixture, MonitoredLinesArePinned)
{
    // Warm the monitored line, then stream enough lines through its
    // set to evict everything else; the monitored line must survive.
    issue(MemOp::Read, 0x10000);
    eq.simulate();
    l2.setMonitored(0x10000, true);
    completions.clear();

    const L2Config &cfg = l2.config();
    std::size_t sets = cfg.sizeBytes / (cfg.assoc * cfg.lineBytes);
    Addr stride = static_cast<Addr>(sets) * cfg.lineBytes;
    for (unsigned i = 1; i <= cfg.assoc + 4; ++i)
        issue(MemOp::Read, 0x10000 + i * stride);
    eq.simulate();

    // A read of the monitored line is still a hit (no DRAM access).
    double misses_before = l2.stats().scalar("misses").value();
    issue(MemOp::Read, 0x10000);
    eq.simulate();
    EXPECT_DOUBLE_EQ(l2.stats().scalar("misses").value(),
                     misses_before);
}

TEST_F(L2Fixture, TracksMaxMonitoredLines)
{
    l2.setMonitored(0x1000, true);
    l2.setMonitored(0x2000, true);
    l2.setMonitored(0x1000, false);
    EXPECT_EQ(l2.numMonitored(), 1u);
    EXPECT_EQ(l2.maxMonitored(), 2u);
}

TEST_F(L2Fixture, DrainedRunLeavesNoLiveRequests)
{
    // Misses (fills), hits, atomics and writebacks all recycle.
    for (int i = 0; i < 8; ++i)
        issue(MemOp::Atomic, 0x7000 + i * 256, AtomicOpcode::Add, 1);
    eq.simulate();
    EXPECT_EQ(pool.inUse(), 0u);
    EXPECT_GT(pool.totalAllocations(), 8u);  // includes the fills
}

} // anonymous namespace
} // namespace ifp::mem
