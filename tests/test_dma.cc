/**
 * @file
 * Unit tests for the DMA engine (WG context save/restore transport).
 */

#include <gtest/gtest.h>

#include "mem/dma.hh"
#include "sim/event_queue.hh"

namespace ifp::mem {
namespace {

struct DmaFixture : public ::testing::Test
{
    DmaFixture() : dma("dma", eq, cfg) {}

    sim::EventQueue eq;
    DmaConfig cfg;
    DmaEngine dma;
};

TEST_F(DmaFixture, TransferCyclesModel)
{
    // setup + ceil(bytes / bandwidth)
    EXPECT_EQ(dma.transferCycles(0), cfg.setupCycles);
    EXPECT_EQ(dma.transferCycles(1), cfg.setupCycles + 1);
    EXPECT_EQ(dma.transferCycles(cfg.bytesPerCycle),
              cfg.setupCycles + 1);
    EXPECT_EQ(dma.transferCycles(cfg.bytesPerCycle * 10),
              cfg.setupCycles + 10);
    EXPECT_EQ(dma.transferCycles(cfg.bytesPerCycle * 10 + 1),
              cfg.setupCycles + 11);
}

TEST_F(DmaFixture, CompletionAtModeledTime)
{
    sim::Tick done = 0;
    dma.transfer(4096, [&] { done = eq.curTick(); });
    eq.simulate();
    EXPECT_EQ(done, dma.transferCycles(4096) * cfg.clockPeriod);
    EXPECT_TRUE(dma.idle());
}

TEST_F(DmaFixture, TransfersSerialize)
{
    std::vector<sim::Tick> done;
    dma.transfer(1024, [&] { done.push_back(eq.curTick()); });
    dma.transfer(1024, [&] { done.push_back(eq.curTick()); });
    dma.transfer(1024, [&] { done.push_back(eq.curTick()); });
    EXPECT_FALSE(dma.idle());
    eq.simulate();
    ASSERT_EQ(done.size(), 3u);
    sim::Tick unit = dma.transferCycles(1024) * cfg.clockPeriod;
    EXPECT_EQ(done[0], unit);
    EXPECT_EQ(done[1], 2 * unit);
    EXPECT_EQ(done[2], 3 * unit);
}

TEST_F(DmaFixture, StatsAccumulate)
{
    dma.transfer(100, nullptr);
    dma.transfer(200, nullptr);
    eq.simulate();
    EXPECT_DOUBLE_EQ(dma.stats().scalar("transfers").value(), 2.0);
    EXPECT_DOUBLE_EQ(dma.stats().scalar("bytes").value(), 300.0);
    EXPECT_GT(dma.stats().scalar("busyTicks").value(), 0.0);
}

TEST_F(DmaFixture, CallbackMayEnqueueMoreWork)
{
    int chained = 0;
    dma.transfer(64, [&] {
        ++chained;
        dma.transfer(64, [&] { ++chained; });
    });
    eq.simulate();
    EXPECT_EQ(chained, 2);
    EXPECT_TRUE(dma.idle());
}

} // anonymous namespace
} // namespace ifp::mem
