/**
 * @file
 * Tests for the mini ISA: builder, labels, disassembly and kernel
 * resource/context accounting.
 */

#include <gtest/gtest.h>

#include "isa/builder.hh"
#include "isa/instruction.hh"
#include "isa/kernel.hh"

namespace ifp::isa {
namespace {

TEST(Builder, EmitsSequentialCode)
{
    KernelBuilder b;
    b.movi(1, 42);
    b.addi(2, 1, 8);
    b.halt();
    auto code = b.build();
    ASSERT_EQ(code.size(), 3u);
    EXPECT_EQ(code[0].op, Opcode::Movi);
    EXPECT_EQ(code[0].imm, 42);
    EXPECT_EQ(code[1].op, Opcode::Add);
    EXPECT_TRUE(code[1].useImm);
    EXPECT_EQ(code[2].op, Opcode::Halt);
}

TEST(Builder, BackwardBranchTargets)
{
    KernelBuilder b;
    b.movi(1, 3);
    Label loop = b.here();
    b.subi(1, 1, 1);
    b.bnz(1, loop);
    b.halt();
    auto code = b.build();
    ASSERT_EQ(code.size(), 4u);
    EXPECT_EQ(code[2].op, Opcode::Bnz);
    EXPECT_EQ(code[2].imm, 1);  // points at the subi
}

TEST(Builder, ForwardBranchFixups)
{
    KernelBuilder b;
    Label done = b.label();
    b.bz(1, done);
    b.movi(2, 1);
    b.bind(done);
    b.halt();
    auto code = b.build();
    EXPECT_EQ(code[0].imm, 2);  // resolved to the halt
}

TEST(Builder, MultipleReferencesToOneLabel)
{
    KernelBuilder b;
    Label target = b.label();
    b.bz(1, target);
    b.bnz(2, target);
    b.br(target);
    b.bind(target);
    b.halt();
    auto code = b.build();
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(code[i].imm, 3);
}

TEST(Builder, AtomicEncodings)
{
    KernelBuilder b;
    b.atom(5, mem::AtomicOpcode::Cas, 6, 16, 7, 8, true, false);
    b.atomWait(5, mem::AtomicOpcode::Load, 6, 0, 0, 9);
    b.armWait(6, 8, 10);
    auto code = b.build();
    EXPECT_EQ(code[0].op, Opcode::Atom);
    EXPECT_EQ(code[0].aop, mem::AtomicOpcode::Cas);
    EXPECT_EQ(code[0].src2, 8);
    EXPECT_TRUE(code[0].acquire);
    EXPECT_EQ(code[1].op, Opcode::AtomWait);
    EXPECT_EQ(code[1].src2, 9);
    EXPECT_EQ(code[2].op, Opcode::ArmWait);
    EXPECT_EQ(code[2].src1, 10);
    EXPECT_EQ(code[2].imm, 8);
}

TEST(Instruction, Classification)
{
    Instr ld;
    ld.op = Opcode::Ld;
    EXPECT_TRUE(accessesGlobalMemory(ld));
    Instr lds;
    lds.op = Opcode::LdLds;
    EXPECT_FALSE(accessesGlobalMemory(lds));
    Instr br;
    br.op = Opcode::Br;
    EXPECT_TRUE(isBranch(br));
    Instr add;
    add.op = Opcode::Add;
    EXPECT_FALSE(isBranch(add));
}

TEST(Disassembly, RendersRepresentativeInstructions)
{
    KernelBuilder b;
    b.movi(1, 42);
    b.add(2, 1, 3);
    b.addi(2, 1, 5);
    b.ld(4, 5, 16);
    b.atomWait(5, mem::AtomicOpcode::Exch, 6, 0, 7, 8, true);
    b.bar();
    auto code = b.build();
    EXPECT_EQ(disassemble(code[0]), "movi r1, 42");
    EXPECT_EQ(disassemble(code[1]), "add r2, r1, r3");
    EXPECT_EQ(disassemble(code[2]), "add r2, r1, 5");
    EXPECT_EQ(disassemble(code[3]), "ld r4, [r5+16]");
    EXPECT_EQ(disassemble(code[4]),
              "atom.wait.exch r5, [r6+0], r7, r8 acq");
    EXPECT_EQ(disassemble(code[5]), "bar.wg");
}

TEST(Kernel, WavefrontGeometry)
{
    Kernel k;
    k.wiPerWg = 64;
    EXPECT_EQ(k.wavefrontsPerWg(), 1u);
    k.wiPerWg = 65;
    EXPECT_EQ(k.wavefrontsPerWg(), 2u);
    k.wiPerWg = 256;
    EXPECT_EQ(k.wavefrontsPerWg(), 4u);
}

TEST(Kernel, ContextSizeScalesWithResources)
{
    Kernel small;
    small.wiPerWg = 64;
    small.vgprsPerWi = 8;
    small.ldsBytes = 0;
    Kernel big = small;
    big.vgprsPerWi = 40;
    EXPECT_GT(big.contextBytes(), small.contextBytes());
    // 64 WIs x 32 extra VGPRs x 4 B = 8 KB difference.
    EXPECT_EQ(big.contextBytes() - small.contextBytes(), 8192u);
}

TEST(Kernel, ContextSizeInPaperRange)
{
    // Figure 5: WG contexts between ~2 and ~10 KB.
    Kernel k;
    k.wiPerWg = 64;
    k.vgprsPerWi = 12;
    k.ldsBytes = 1024;
    EXPECT_GE(k.contextBytes(), 2 * 1024u);
    k.vgprsPerWi = 38;
    k.ldsBytes = 2048;
    EXPECT_LE(k.contextBytes(), 12 * 1024u);
}

} // anonymous namespace
} // namespace ifp::isa
