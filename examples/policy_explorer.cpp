/**
 * @file
 * Policy explorer: run any benchmark under every waiting policy, in
 * both scenarios, and print the comparison table plus (optionally)
 * the full per-component statistics of one run.
 *
 * Run:
 *   ./build/examples/policy_explorer [benchmark] [--stats POLICY]
 * e.g.
 *   ./build/examples/policy_explorer SLM_G
 *   ./build/examples/policy_explorer TB_LG --stats AWG
 */

#include <cstring>
#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

namespace {

const std::pair<const char *, ifp::core::Policy> kPolicies[] = {
    {"Baseline", ifp::core::Policy::Baseline},
    {"Sleep", ifp::core::Policy::Sleep},
    {"Timeout", ifp::core::Policy::Timeout},
    {"MonRS-All", ifp::core::Policy::MonRSAll},
    {"MonR-All", ifp::core::Policy::MonRAll},
    {"MonNR-All", ifp::core::Policy::MonNRAll},
    {"MonNR-One", ifp::core::Policy::MonNROne},
    {"MinResume", ifp::core::Policy::MinResume},
    {"AWG", ifp::core::Policy::Awg},
};

ifp::harness::Experiment
makeExperiment(const std::string &workload, ifp::core::Policy policy,
               bool oversubscribed)
{
    ifp::harness::Experiment exp;
    exp.workload = workload;
    exp.policy = policy;
    exp.params = ifp::harness::defaultEvalParams();
    exp.oversubscribed = oversubscribed;
    if (oversubscribed) {
        exp.params.iters = 16;
        exp.runCfg.cuLossMicroseconds = 10;
    }
    return exp;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace ifp;

    std::string workload = argc > 1 ? argv[1] : "SPM_G";
    std::string stats_policy;
    for (int i = 2; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--stats") == 0)
            stats_policy = argv[i + 1];
    }

    std::cout << "Policy design space for " << workload << "\n\n";
    harness::TextTable t({"Policy", "Cycles", "Atomics",
                          "CtxSaves", "Oversub cycles",
                          "Oversub saves"});
    for (const auto &[name, policy] : kPolicies) {
        core::RunResult normal = harness::runExperiment(
            makeExperiment(workload, policy, false));
        core::RunResult over = harness::runExperiment(
            makeExperiment(workload, policy, true));
        t.addRow({name, normal.statusString(),
                  std::to_string(normal.atomicInstructions),
                  std::to_string(normal.contextSaves),
                  over.statusString(),
                  std::to_string(over.contextSaves)});
    }
    t.print(std::cout);
    std::cout << "\n(Oversubscribed: one CU pre-empted at t=10us; "
                 "DEADLOCK means the kernel can never finish.)\n";

    if (!stats_policy.empty()) {
        for (const auto &[name, policy] : kPolicies) {
            if (stats_policy != name)
                continue;
            std::cout << "\nFull statistics for " << name << ":\n";
            harness::runExperimentWithSystem(
                makeExperiment(workload, policy, false),
                [](core::GpuSystem &system) {
                    system.dumpStats(std::cout);
                });
        }
    }
    return 0;
}
