/**
 * @file
 * Quickstart: simulate one HeteroSync benchmark under the AWG policy
 * and under the busy-waiting Baseline, and compare.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [benchmark] [iters]
 */

#include <cstdio>
#include <iostream>

#include "harness/runner.hh"

int
main(int argc, char **argv)
{
    using namespace ifp;

    std::string benchmark = argc > 1 ? argv[1] : "FAM_G";
    unsigned iters = argc > 2 ? std::atoi(argv[2]) : 4;

    std::cout << "AWG quickstart: benchmark " << benchmark << ", "
              << iters << " iterations per WG\n\n";

    // 1. Describe the experiment: workload geometry follows the
    //    paper's evaluation setup (G=64 WGs, L=8 per CU, n=64 WIs).
    harness::Experiment exp;
    exp.workload = benchmark;
    exp.params = harness::defaultEvalParams();
    exp.params.iters = iters;

    // 2. Run it under the busy-waiting Baseline...
    exp.policy = core::Policy::Baseline;
    core::RunResult baseline = harness::runExperiment(exp);

    // 3. ...and under AWG (waiting atomics + SyncMon + CP firmware).
    exp.policy = core::Policy::Awg;
    core::RunResult awg = harness::runExperiment(exp);

    // 4. Compare. Both runs validated their final memory image
    //    (mutual exclusion / barrier semantics held).
    auto report = [](const char *name, const core::RunResult &r) {
        std::printf("%-10s %10s cycles  %8llu atomics  "
                    "%7llu instr  validated=%s\n",
                    name, r.statusString().c_str(),
                    static_cast<unsigned long long>(
                        r.atomicInstructions),
                    static_cast<unsigned long long>(r.instructions),
                    r.validated ? "yes" : "no");
    };
    report("Baseline", baseline);
    report("AWG", awg);

    if (baseline.completed && awg.completed) {
        std::printf("\nAWG speedup over busy-waiting: %.2fx\n",
                    static_cast<double>(baseline.gpuCycles) /
                        static_cast<double>(awg.gpuCycles));
        std::printf("Atomic traffic removed: %.1f%%\n",
                    100.0 *
                        (1.0 - static_cast<double>(
                                   awg.atomicInstructions) /
                                   static_cast<double>(
                                       baseline.atomicInstructions)));
    }
    return 0;
}
