/**
 * @file
 * The paper's headline scenario: a kernel using inter-WG
 * synchronization loses a CU mid-run (kernel-level pre-emption).
 *
 * On a current GPU (Baseline) the pre-empted WGs can never be
 * switched back in; if any of them is needed — a ticket holder, a
 * barrier participant — the kernel deadlocks even though the code is
 * correct. AWG's cooperative scheduling recovers: waiting WGs yield
 * their resources, the stranded WGs rotate back in, and the kernel
 * completes.
 *
 * Run: ./build/examples/oversubscription [benchmark]
 */

#include <cstdio>
#include <iostream>

#include "harness/runner.hh"

namespace {

ifp::core::RunResult
runScenario(const std::string &benchmark, ifp::core::Policy policy)
{
    ifp::harness::Experiment exp;
    exp.workload = benchmark;
    exp.policy = policy;
    exp.oversubscribed = true;
    exp.params = ifp::harness::defaultEvalParams();
    exp.params.iters = 16;               // long enough to be mid-run
    exp.runCfg.cuLossMicroseconds = 10;  // when CU 7 is lost
    return ifp::harness::runExperiment(exp);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace ifp;
    std::string benchmark = argc > 1 ? argv[1] : "FAM_G";

    std::cout
        << "Scenario: " << benchmark << " on 8 CUs; at t=10us the\n"
        << "kernel scheduler pre-empts every WG resident on CU 7\n"
        << "and takes the CU away (higher-priority work).\n\n";

    core::RunResult base = runScenario(benchmark,
                                       core::Policy::Baseline);
    std::cout << "Current GPU (busy-waiting, no WG swap-in):\n";
    if (base.deadlocked) {
        std::cout << "  DEADLOCK after "
                  << base.forcedPreemptions
                  << " WGs were pre-empted; their contexts were "
                     "saved\n  but nothing can ever restore them ("
                  << base.contextRestores << " restores).\n";
    } else {
        std::cout << "  finished in " << base.gpuCycles
                  << " cycles (pre-emption missed the window)\n";
    }

    core::RunResult awg = runScenario(benchmark, core::Policy::Awg);
    std::cout << "\nAWG (waiting atomics + SyncMon + CP firmware):\n";
    if (awg.completed) {
        std::cout << "  completed in " << awg.gpuCycles
                  << " cycles, validated="
                  << (awg.validated ? "yes" : "no") << "\n"
                  << "  " << awg.contextSaves
                  << " context switches out, " << awg.contextRestores
                  << " back in ("
                  << awg.forcedPreemptions
                  << " forced by the kernel scheduler, the rest\n"
                  << "  cooperative yields by waiting WGs)\n";
    } else {
        std::cout << "  unexpected: " << awg.statusString() << "\n";
    }

    core::RunResult timeout = runScenario(benchmark,
                                          core::Policy::Timeout);
    if (awg.completed && timeout.completed) {
        std::printf("\nAWG vs fixed-interval Timeout rotation: "
                    "%.2fx faster\n",
                    static_cast<double>(timeout.gpuCycles) /
                        static_cast<double>(awg.gpuCycles));
    }
    return 0;
}
