/**
 * @file
 * Writing your own kernel against the public API: a pipelined
 * producer/consumer chain built from *waiting atomics* (the paper's
 * C++20-atomic-wait-style instructions).
 *
 * WG 0 produces items into a ring of mailboxes; each consumer WG k
 * waits — without burning the GPU — until mailbox k holds a value,
 * processes it, and acknowledges. The kernel is emitted with the
 * KernelBuilder assembler; no benchmark-suite code involved.
 *
 * Run: ./build/examples/custom_kernel [num_consumers] [items]
 */

#include <cstdio>
#include <iostream>

#include "core/gpu_system.hh"
#include "isa/builder.hh"

int
main(int argc, char **argv)
{
    using namespace ifp;
    using isa::KernelBuilder;
    using isa::Label;
    using mem::AtomicOpcode;

    unsigned consumers = argc > 1 ? std::atoi(argv[1]) : 8;
    unsigned items = argc > 2 ? std::atoi(argv[2]) : 6;

    core::RunConfig cfg;
    cfg.policy.policy = core::Policy::Awg;
    core::GpuSystem system(cfg);

    // One mailbox line and one accumulator line per consumer.
    mem::Addr mailbox = system.allocate((consumers + 1) * 64ULL);
    mem::Addr sums = system.allocate((consumers + 1) * 64ULL);

    KernelBuilder b;
    Label consumer = b.label();
    Label done = b.label();
    b.bnz(isa::rWgId, consumer);

    {
        // ---- producer (WG 0): round-robin items to the mailboxes.
        b.movi(16, 0);  // item counter
        Label next = b.here();
        // target = 1 + item % consumers; value = item + 1 (non-zero)
        b.remi(17, 16, consumers);
        b.addi(17, 17, 1);
        b.muli(18, 17, 64);
        b.movi(19, static_cast<std::int64_t>(mailbox));
        b.add(18, 18, 19);
        b.addi(20, 16, 1);
        // Wait until the mailbox is empty (== 0), then fill it: a
        // waiting exchange expresses "swap in my value once it is 0".
        Label put = b.here();
        b.atomWait(21, AtomicOpcode::Exch, 18, 0, 20, isa::rZero,
                   false, true);
        b.bnz(21, put);
        b.addi(16, 16, 1);
        b.cmpLti(22, 16, static_cast<std::int64_t>(items) * consumers);
        b.bnz(22, next);
        b.br(done);
    }

    b.bind(consumer);
    {
        // ---- consumer k: drain `items` values from mailbox k.
        b.muli(18, isa::rWgId, 64);
        b.movi(19, static_cast<std::int64_t>(mailbox));
        b.add(18, 18, 19);
        b.muli(23, isa::rWgId, 64);
        b.movi(24, static_cast<std::int64_t>(sums));
        b.add(23, 23, 24);
        b.movi(16, 0);   // received
        b.movi(25, 0);   // running sum
        Label recv = b.here();
        // Round-robin delivery means consumer k knows the value it
        // will receive next: k + received * consumers. A waiting
        // exchange expresses "once the mailbox holds exactly that
        // value, atomically take it and mark the mailbox empty" —
        // the WG yields instead of burning the GPU until then.
        b.muli(26, 16, consumers);
        b.add(26, 26, isa::rWgId);
        Label take = b.here();
        b.atomWait(21, AtomicOpcode::Exch, 18, 0, isa::rZero, 26,
                   true);
        b.cmpEq(22, 21, 26);
        b.bz(22, take);
        b.add(25, 25, 21);
        b.addi(16, 16, 1);
        b.cmpLti(22, 16, items);
        b.bnz(22, recv);
        b.st(23, 25);
    }

    b.bind(done);
    b.bar();
    b.halt();

    isa::Kernel kernel;
    kernel.name = "mailbox-pipeline";
    kernel.code = b.build();
    kernel.numWgs = consumers + 1;
    kernel.wiPerWg = 64;
    kernel.maxWgsPerCu = 4;

    core::RunResult result = system.run(kernel);
    if (!result.completed) {
        std::cout << "run did not complete: " << result.statusString()
                  << "\n";
        return 1;
    }

    std::cout << "mailbox pipeline: " << consumers << " consumers x "
              << items << " items in " << result.gpuCycles
              << " cycles\n\n";
    long long total = 0;
    for (unsigned k = 1; k <= consumers; ++k) {
        long long sum = system.memory().read(sums + k * 64, 8);
        std::printf("  consumer %2u received sum %lld\n", k, sum);
        total += sum;
    }
    long long n = static_cast<long long>(items) * consumers;
    std::printf("\ntotal %lld (expected %lld) -> %s\n", total,
                n * (n + 1) / 2,
                total == n * (n + 1) / 2 ? "OK" : "MISMATCH");
    return total == n * (n + 1) / 2 ? 0 : 1;
}
