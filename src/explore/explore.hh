/**
 * @file
 * Schedule-space exploration over the SchedOracle choice points.
 *
 * Two drivers turn the litmus workloads (workloads/litmus.hh) into a
 * tested specification of each waiting policy's progress model:
 *
 *  - randomWalk(): N independent schedules, each steered by a
 *    RandomOracle seeded from (litmus, policy, seed, i). Byte
 *    reproducible from the triple.
 *  - exhaustive(): bounded DFS over schedule prefixes. Every run
 *    replays a prescription of explicit choices and takes the stock
 *    pick beyond it; the frontier grows one alternative at a time
 *    from the recorded branching, and a state-hash memo prunes
 *    alternatives already taken from an identical machine state
 *    (restart-based stateless exploration, GPUMC-style).
 *
 * crossValidate() drives every (litmus, policy) cell through both
 * the stock schedule and a random walk and compares each observed
 * core::Verdict with the litmus annotation; lintCrossCheck() does
 * the static half, comparing ifplint's unsuppressed findings against
 * the annotated expectations so the two analyses police each other.
 */

#ifndef IFP_EXPLORE_EXPLORE_HH
#define IFP_EXPLORE_EXPLORE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/gpu_system.hh"
#include "sim/rng.hh"
#include "sim/sched_oracle.hh"
#include "workloads/litmus.hh"

namespace ifp::explore {

/** Verdict histogram indexed by core::Verdict. */
using VerdictCounts = std::array<std::uint64_t, 6>;

/** Oracle that always takes the stock pick, through the oracle path. */
class PreferredOracle : public sim::SchedOracle
{
  public:
    unsigned
    choose(sim::ChoicePoint site, unsigned n, unsigned preferred)
        override
    {
        (void)site;
        (void)n;
        ++decisions;
        return preferred;
    }

    std::uint64_t decisions = 0;
};

/** Uniformly random schedule choices from a seeded xoshiro stream. */
class RandomOracle : public sim::SchedOracle
{
  public:
    explicit RandomOracle(std::uint64_t seed) : rng(seed) {}

    unsigned
    choose(sim::ChoicePoint site, unsigned n, unsigned preferred)
        override
    {
        (void)site;
        (void)preferred;
        ++decisions;
        return static_cast<unsigned>(rng.uniform(n));
    }

    std::uint64_t decisions = 0;

  private:
    sim::Rng rng;
};

/**
 * Replays a prescription of explicit choices, then takes the stock
 * pick; records the branch structure (site, arity, taken choice and
 * the state hash just before the decision) up to @p max_trace
 * entries for the exhaustive driver's frontier expansion.
 */
class PrefixOracle : public sim::SchedOracle
{
  public:
    struct Branch
    {
        sim::ChoicePoint site;
        unsigned n = 0;
        unsigned taken = 0;
        std::uint64_t stateHash = 0;
        /** Candidate WG ids in choice order (empty: actors unknown,
         * e.g. HostCu picks a CU). */
        std::vector<int> actors;
        /** Each actor's current pc at choice time (-1 unknown). */
        std::vector<int> actorPcs;
    };

    PrefixOracle(std::vector<unsigned> prescription,
                 std::size_t max_trace)
        : prefix(std::move(prescription)), maxTrace(max_trace)
    {}

    /** Machine-state probe consulted before each recorded choice. */
    void
    setStateProbe(std::function<std::uint64_t()> probe)
    {
        stateProbe = std::move(probe);
    }

    /** Actor-pc probe (wg id -> its current pc, -1 unknown). */
    void
    setActorPcProbe(std::function<int(int)> probe)
    {
        actorPcProbe = std::move(probe);
    }

    unsigned
    choose(sim::ChoicePoint site, unsigned n, unsigned preferred)
        override
    {
        return record(site, n, preferred, nullptr);
    }

    unsigned
    chooseWithActors(sim::ChoicePoint site, unsigned n,
                     unsigned preferred, const int *actor_wgs) override
    {
        return record(site, n, preferred, actor_wgs);
    }

    const std::vector<Branch> &branches() const { return trace; }

    std::uint64_t decisions = 0;

  private:
    unsigned
    record(sim::ChoicePoint site, unsigned n, unsigned preferred,
           const int *actor_wgs)
    {
        unsigned pick = preferred;
        if (decisions < prefix.size() && prefix[decisions] < n)
            pick = prefix[decisions];
        if (trace.size() < maxTrace) {
            Branch b;
            b.site = site;
            b.n = n;
            b.taken = pick;
            b.stateHash = stateProbe ? stateProbe() : 0;
            if (actor_wgs) {
                b.actors.assign(actor_wgs, actor_wgs + n);
                b.actorPcs.reserve(n);
                for (unsigned k = 0; k < n; ++k) {
                    b.actorPcs.push_back(
                        actorPcProbe ? actorPcProbe(actor_wgs[k]) : -1);
                }
            }
            trace.push_back(std::move(b));
        }
        ++decisions;
        return pick;
    }

    std::vector<unsigned> prefix;
    std::size_t maxTrace;
    std::vector<Branch> trace;
    std::function<std::uint64_t()> stateProbe;
    std::function<int(int)> actorPcProbe;
};

/** Liveness-window sizing of one litmus run (small shapes, small
 * windows: verdicts arrive in well under a second of host time). */
struct LitmusRunConfig
{
    sim::Cycles deadlockWindowCycles = 200'000;
    sim::Cycles maxCycles = 30'000'000;
};

/** Outcome of one schedule. */
struct ScheduleResult
{
    core::Verdict verdict = core::Verdict::Unknown;
    sim::Cycles gpuCycles = 0;
    /** Oracle decisions made during the run (0 for the stock run). */
    std::uint64_t choicePoints = 0;
    /** Memory image valid (checked on Complete runs only). */
    bool validated = false;
};

/**
 * Deterministic FNV-1a-based seed for schedule @p index of the
 * (litmus, policy, seed) walk — the reproducibility contract.
 */
std::uint64_t scheduleSeed(const std::string &litmus,
                           core::Policy policy, std::uint64_t seed,
                           std::uint64_t index);

/**
 * Hash of the scheduling-relevant machine state: every WG's
 * lifecycle state, residency and wait condition, plus the progress
 * counters. Two runs in identical hashed states that make the same
 * choice continue identically (the machine is deterministic), which
 * is what makes the exhaustive memo sound.
 */
std::uint64_t machineStateHash(core::GpuSystem &system);

/**
 * Run one litmus schedule under @p policy steered by @p oracle
 * (null = the stock schedule). @p on_system, when set, runs after
 * machine construction and before the kernel launches — the hook
 * the exhaustive driver uses to bind its state probe.
 */
ScheduleResult
runLitmusSchedule(const workloads::LitmusWorkload &litmus,
                  core::Policy policy, sim::SchedOracle *oracle,
                  const LitmusRunConfig &cfg = {},
                  const std::function<void(core::GpuSystem &)>
                      &on_system = nullptr);

/** Result of a random walk over one (litmus, policy) cell. */
struct WalkResult
{
    /** Index 0 is the stock schedule; 1..N the random schedules. */
    std::vector<ScheduleResult> schedules;
    VerdictCounts counts{};
};

WalkResult randomWalk(const workloads::LitmusWorkload &litmus,
                      core::Policy policy, std::uint64_t seed,
                      unsigned num_schedules,
                      const LitmusRunConfig &cfg = {});

/** Caps of the bounded exhaustive driver. */
struct ExhaustiveConfig
{
    /** Stop after this many schedules even if the frontier remains. */
    unsigned maxSchedules = 200;
    /** Only branch within the first this-many choice points. */
    unsigned maxPrefixDepth = 12;
    /**
     * Partial-order reduction: skip alternatives the static
     * commutativity oracle (analysis/interference.hh) proves
     * independent of every dependent action at the branch, and
     * maintain sleep sets across sibling expansions. Off by default;
     * with POR on, the DFS must observe the same verdict *support*
     * as the unreduced run while visiting no more schedules.
     */
    bool por = false;
    LitmusRunConfig run;
};

struct ExhaustiveResult
{
    std::uint64_t schedulesRun = 0;
    /** Frontier entries skipped by the state-hash memo. */
    std::uint64_t pruned = 0;
    /** Alternatives skipped by the partial-order reduction. */
    std::uint64_t porSkipped = 0;
    /** The frontier emptied before the schedule cap was hit. */
    bool frontierExhausted = false;
    VerdictCounts counts{};
    /** Longest prescription explored. */
    std::size_t maxPrefixSeen = 0;
};

ExhaustiveResult exhaustive(const workloads::LitmusWorkload &litmus,
                            core::Policy policy,
                            const ExhaustiveConfig &cfg = {});

/** One (litmus, policy) cell of the dynamic cross-validation. */
struct CellReport
{
    std::string litmus;
    core::Policy policy = core::Policy::Baseline;
    core::Verdict expected = core::Verdict::Unknown;
    VerdictCounts observed{};
    std::uint64_t schedules = 0;
    /** Complete runs whose memory image failed validation. */
    std::uint64_t invalid = 0;
    /** Every observed verdict matched the annotation (and no
     * Complete run failed validation). */
    bool ok = false;
};

/**
 * Drive @p litmus through the stock schedule plus @p schedules
 * random ones under every annotated policy.
 */
std::vector<CellReport>
crossValidate(const workloads::LitmusWorkload &litmus,
              std::uint64_t seed, unsigned schedules,
              const LitmusRunConfig &cfg = {});

/** One (litmus, style) cell of the static cross-check. */
struct LintCellReport
{
    std::string litmus;
    core::SyncStyle style = core::SyncStyle::Busy;
    /** Unsuppressed findings not annotated in the spec. */
    std::vector<std::string> unexpected;
    /** Annotated findings that did not fire. */
    std::vector<std::string> missing;
    bool ok = false;
};

/**
 * Lint @p litmus in all four codegen styles on its own machine
 * geometry and compare the unsuppressed findings against the spec's
 * annotated expectations.
 */
std::vector<LintCellReport>
lintCrossCheck(const workloads::LitmusWorkload &litmus);

} // namespace ifp::explore

#endif // IFP_EXPLORE_EXPLORE_HH
