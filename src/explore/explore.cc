#include "explore/explore.hh"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>
#include <tuple>

#include "analysis/interference.hh"
#include "analysis/lint.hh"
#include "sim/logging.hh"

namespace ifp::explore {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t
fnvMix(std::uint64_t hash, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (i * 8)) & 0xff;
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t
fnvString(std::uint64_t hash, const std::string &s)
{
    for (unsigned char c : s) {
        hash ^= c;
        hash *= kFnvPrime;
    }
    return hash;
}

/** splitmix64 finalizer: decorrelates consecutive walk indices. */
std::uint64_t
splitmix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

core::RunConfig
litmusRunConfig(const workloads::LitmusSpec &spec, core::Policy policy,
                const LitmusRunConfig &cfg)
{
    core::RunConfig run;
    run.gpu.numCus = spec.numCus;
    run.policy.policy = policy;
    run.deadlockWindowCycles = cfg.deadlockWindowCycles;
    run.maxCycles = cfg.maxCycles;
    run.shards = 1;  // schedule exploration needs the serial core
    return run;
}

workloads::WorkloadParams
litmusParams(const workloads::LitmusSpec &spec, core::Policy policy)
{
    workloads::WorkloadParams params;
    params.numWgs = spec.numWgs;
    params.wgsPerGroup = spec.maxWgsPerCu;
    params.wiPerWg = 1;
    params.iters = 1;
    params.style = core::styleFor(policy);
    return params;
}

void
countVerdict(VerdictCounts &counts, core::Verdict verdict)
{
    auto idx = static_cast<std::size_t>(verdict);
    ifp_assert(idx < counts.size(), "verdict out of histogram range");
    ++counts[idx];
}

} // namespace

std::uint64_t
scheduleSeed(const std::string &litmus, core::Policy policy,
             std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t h = fnvString(kFnvOffset, litmus);
    h = fnvString(h, core::policyName(policy));
    h = fnvMix(h, seed);
    return splitmix(h + index);
}

std::uint64_t
machineStateHash(core::GpuSystem &system)
{
    std::uint64_t h = kFnvOffset;
    for (const auto &wg : system.dispatcher().workgroups()) {
        h = fnvMix(h, static_cast<std::uint64_t>(wg->id));
        h = fnvMix(h, static_cast<std::uint64_t>(wg->state));
        h = fnvMix(h, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(wg->cuId)));
        h = fnvMix(h, wg->hasWaitCond ? 1 : 0);
        h = fnvMix(h, wg->waitAddr);
        h = fnvMix(h, static_cast<std::uint64_t>(wg->waitExpected));
        h = fnvMix(h, wg->resumePending ? 1 : 0);
        h = fnvMix(h, wg->doneWfs);
    }
    h = fnvMix(h, system.memory().mutations());
    h = fnvMix(h, system.dispatcher().numCompleted());
    return h;
}

ScheduleResult
runLitmusSchedule(const workloads::LitmusWorkload &litmus,
                  core::Policy policy, sim::SchedOracle *oracle,
                  const LitmusRunConfig &cfg,
                  const std::function<void(core::GpuSystem &)>
                      &on_system)
{
    const workloads::LitmusSpec &spec = litmus.spec();
    core::RunConfig run_cfg = litmusRunConfig(spec, policy, cfg);
    run_cfg.schedOracle = oracle;

    core::GpuSystem system(run_cfg);
    if (on_system)
        on_system(system);

    workloads::WorkloadParams params = litmusParams(spec, policy);
    isa::Kernel kernel = litmus.build(system, params);

    core::RunResult run = system.run(
        kernel,
        [&](const mem::BackingStore &store, std::string &err) {
            return litmus.validate(store, params, err);
        });

    ScheduleResult result;
    result.verdict = run.verdict;
    result.gpuCycles = run.gpuCycles;
    result.validated = run.validated;
    return result;
}

WalkResult
randomWalk(const workloads::LitmusWorkload &litmus,
           core::Policy policy, std::uint64_t seed,
           unsigned num_schedules, const LitmusRunConfig &cfg)
{
    WalkResult walk;
    walk.schedules.reserve(num_schedules + 1);

    ScheduleResult stock =
        runLitmusSchedule(litmus, policy, nullptr, cfg);
    countVerdict(walk.counts, stock.verdict);
    walk.schedules.push_back(stock);

    for (unsigned i = 0; i < num_schedules; ++i) {
        RandomOracle oracle(scheduleSeed(litmus.spec().name, policy,
                                         seed, i));
        ScheduleResult r =
            runLitmusSchedule(litmus, policy, &oracle, cfg);
        r.choicePoints = oracle.decisions;
        countVerdict(walk.counts, r.verdict);
        walk.schedules.push_back(r);
    }
    return walk;
}

namespace {

/** One pending exploration: a prescription plus its sleep set. */
struct PendingRun
{
    std::vector<unsigned> prescription;
    std::vector<analysis::SchedAction> sleep;
};

/** The scheduling action behind alternative @p k of branch @p b. */
analysis::SchedAction
branchAction(const PrefixOracle::Branch &b, unsigned k)
{
    analysis::SchedAction a;
    a.site = b.site;
    if (b.actors.size() == b.n && k < b.n) {
        a.wg = b.actors[k];
        if (b.actorPcs.size() == b.n)
            a.pc = b.actorPcs[k];
    }
    return a;
}

} // namespace

ExhaustiveResult
exhaustive(const workloads::LitmusWorkload &litmus,
           core::Policy policy, const ExhaustiveConfig &cfg)
{
    ExhaustiveResult result;

    // With POR on, build the static commutativity oracle once from
    // the same kernel image every schedule of this cell executes
    // (build() is deterministic for a fixed spec and style).
    std::unique_ptr<analysis::CommutativityOracle> commut;
    if (cfg.por) {
        core::RunConfig run_cfg =
            litmusRunConfig(litmus.spec(), policy, cfg.run);
        core::GpuSystem scratch(run_cfg);
        isa::Kernel kernel =
            litmus.build(scratch, litmusParams(litmus.spec(), policy));
        const gpu::GpuConfig &gpu = run_cfg.gpu;
        commut = std::make_unique<analysis::CommutativityOracle>(
            kernel, analysis::makeLaunchContext(
                        kernel, gpu.numCus, gpu.simdsPerCu,
                        gpu.wavefrontsPerSimd, gpu.ldsBytesPerCu));
    }
    auto independent = [&](const analysis::SchedAction &x,
                           const analysis::SchedAction &y) {
        return commut && commut->independent(x, y);
    };

    // Restart-based DFS: each frontier entry is a prescription of
    // explicit choices; the run replays it and takes the stock pick
    // everywhere after, recording the branch structure it crossed.
    // Since the machine is deterministic, (state hash, site, arity,
    // alternative) identifies a subtree — the memo set prunes
    // re-entries from equivalent states reached along different
    // prefixes.
    std::deque<PendingRun> frontier;
    frontier.push_back({});
    std::set<std::tuple<std::uint64_t, sim::ChoicePoint, unsigned,
                        unsigned>>
        visited;

    while (!frontier.empty() &&
           result.schedulesRun < cfg.maxSchedules) {
        PendingRun entry = std::move(frontier.front());
        frontier.pop_front();
        const std::vector<unsigned> &prescription = entry.prescription;
        result.maxPrefixSeen =
            std::max(result.maxPrefixSeen, prescription.size());

        PrefixOracle oracle(prescription, cfg.maxPrefixDepth);
        ScheduleResult r = runLitmusSchedule(
            litmus, policy, &oracle, cfg.run,
            [&](core::GpuSystem &system) {
                oracle.setStateProbe(
                    [&system] { return machineStateHash(system); });
                oracle.setActorPcProbe([&system](int wg_id) -> int {
                    for (const auto &wg :
                         system.dispatcher().workgroups()) {
                        if (wg->id != wg_id)
                            continue;
                        if (wg->wavefronts.size() != 1)
                            return -1;
                        return static_cast<int>(
                            wg->wavefronts[0]->pc);
                    }
                    return -1;
                });
            });
        r.choicePoints = oracle.decisions;
        ++result.schedulesRun;
        countVerdict(result.counts, r.verdict);

        // Branch on every choice point past the prescription (the
        // replayed prefix was already expanded by its parent run).
        // The sleep set inherited from the parent travels down the
        // stock continuation, shedding members that conflict with
        // each taken action.
        std::vector<analysis::SchedAction> sleep =
            std::move(entry.sleep);
        const auto &branches = oracle.branches();
        for (std::size_t i = prescription.size();
             i < branches.size(); ++i) {
            const PrefixOracle::Branch &b = branches[i];
            const analysis::SchedAction taken_action =
                branchAction(b, b.taken);

            // Persistent-set closure of {taken} over this branch's
            // candidates: start from the stock pick and add every
            // candidate dependent with a member. Unknown actors are
            // dependent with everything, so any identification gap
            // degrades to the full (unreduced) set.
            std::vector<char> in_closure(b.n, 0);
            in_closure[b.taken] = 1;
            if (cfg.por) {
                std::vector<analysis::SchedAction> acts;
                acts.reserve(b.n);
                for (unsigned k = 0; k < b.n; ++k)
                    acts.push_back(branchAction(b, k));
                bool grown = true;
                while (grown) {
                    grown = false;
                    for (unsigned k = 0; k < b.n; ++k) {
                        if (in_closure[k])
                            continue;
                        for (unsigned j = 0; j < b.n; ++j) {
                            if (in_closure[j] &&
                                !independent(acts[k], acts[j])) {
                                in_closure[k] = 1;
                                grown = true;
                                break;
                            }
                        }
                    }
                }
            }

            // Alternatives expanded earlier at this branch; later
            // siblings need not re-explore orders that only commute
            // with them.
            std::vector<analysis::SchedAction> enqueued;
            for (unsigned alt = 0; alt < b.n; ++alt) {
                if (alt == b.taken)
                    continue;
                const analysis::SchedAction alt_action =
                    branchAction(b, alt);
                if (cfg.por) {
                    bool asleep = alt_action.known() &&
                        std::find(sleep.begin(), sleep.end(),
                                  alt_action) != sleep.end();
                    if (asleep || !in_closure[alt]) {
                        ++result.porSkipped;
                        continue;
                    }
                }
                if (!visited
                         .emplace(b.stateHash, b.site, b.n, alt)
                         .second) {
                    ++result.pruned;
                    continue;
                }
                PendingRun child;
                child.prescription.reserve(i + 1);
                for (std::size_t j = 0; j < i; ++j)
                    child.prescription.push_back(branches[j].taken);
                child.prescription.push_back(alt);
                if (cfg.por) {
                    for (const analysis::SchedAction &s : sleep) {
                        if (independent(s, alt_action))
                            child.sleep.push_back(s);
                    }
                    if (independent(taken_action, alt_action))
                        child.sleep.push_back(taken_action);
                    for (const analysis::SchedAction &s : enqueued) {
                        if (independent(s, alt_action))
                            child.sleep.push_back(s);
                    }
                    enqueued.push_back(alt_action);
                }
                frontier.push_back(std::move(child));
            }

            // Continue down the stock pick: sleep-set members that
            // conflict with the action just taken wake up (are
            // dropped). An unknown taken action conflicts with
            // everything and clears the set.
            if (cfg.por && !sleep.empty()) {
                std::vector<analysis::SchedAction> kept;
                for (const analysis::SchedAction &s : sleep) {
                    if (independent(s, taken_action))
                        kept.push_back(s);
                }
                sleep = std::move(kept);
            }
        }
    }

    result.frontierExhausted = frontier.empty();
    return result;
}

std::vector<CellReport>
crossValidate(const workloads::LitmusWorkload &litmus,
              std::uint64_t seed, unsigned schedules,
              const LitmusRunConfig &cfg)
{
    std::vector<CellReport> cells;
    for (const auto &[policy, expected] : litmus.spec().expected) {
        CellReport cell;
        cell.litmus = litmus.spec().name;
        cell.policy = policy;
        cell.expected = expected;

        WalkResult walk =
            randomWalk(litmus, policy, seed, schedules, cfg);
        cell.observed = walk.counts;
        cell.schedules = walk.schedules.size();
        for (const ScheduleResult &r : walk.schedules) {
            if (r.verdict == core::Verdict::Complete && !r.validated)
                ++cell.invalid;
        }

        cell.ok = cell.invalid == 0;
        for (std::size_t v = 0; v < cell.observed.size(); ++v) {
            if (cell.observed[v] != 0 &&
                v != static_cast<std::size_t>(expected))
                cell.ok = false;
        }
        cells.push_back(std::move(cell));
    }
    return cells;
}

std::vector<LintCellReport>
lintCrossCheck(const workloads::LitmusWorkload &litmus)
{
    const workloads::LitmusSpec &spec = litmus.spec();
    static const core::SyncStyle kStyles[] = {
        core::SyncStyle::Busy,
        core::SyncStyle::SleepBackoff,
        core::SyncStyle::WaitInstr,
        core::SyncStyle::WaitAtomic,
    };

    std::vector<LintCellReport> cells;
    for (core::SyncStyle style : kStyles) {
        LintCellReport cell;
        cell.litmus = spec.name;
        cell.style = style;

        // Scratch machine: build() needs a system for its buffer
        // allocations, exactly like tools/ifplint.
        core::RunConfig run_cfg;
        run_cfg.gpu.numCus = spec.numCus;
        run_cfg.shards = 1;
        core::GpuSystem scratch(run_cfg);

        workloads::WorkloadParams params;
        params.numWgs = spec.numWgs;
        params.wgsPerGroup = spec.maxWgsPerCu;
        params.wiPerWg = 1;
        params.iters = 1;
        params.style = style;
        isa::Kernel kernel = litmus.build(scratch, params);

        const gpu::GpuConfig &gpu = run_cfg.gpu;
        analysis::Report report = analysis::runLint(
            kernel, analysis::makeLaunchContext(
                        kernel, gpu.numCus, gpu.simdsPerCu,
                        gpu.wavefrontsPerSimd, gpu.ldsBytesPerCu));

        std::vector<std::string> found;
        for (const analysis::Diagnostic &d : report.diagnostics) {
            if (!d.suppressed)
                found.push_back(d.code);
        }
        std::sort(found.begin(), found.end());
        found.erase(std::unique(found.begin(), found.end()),
                    found.end());

        std::vector<std::string> expected;
        for (const workloads::LitmusLintExpectation &e : spec.lint) {
            if (e.style == style)
                expected.push_back(e.code);
        }
        std::sort(expected.begin(), expected.end());

        for (const std::string &code : found) {
            if (!std::binary_search(expected.begin(), expected.end(),
                                    code))
                cell.unexpected.push_back(code);
        }
        for (const std::string &code : expected) {
            if (!std::binary_search(found.begin(), found.end(), code))
                cell.missing.push_back(code);
        }
        cell.ok = cell.unexpected.empty() && cell.missing.empty();
        cells.push_back(std::move(cell));
    }
    return cells;
}

} // namespace ifp::explore
