/**
 * @file
 * Liveness oracles: refining DEADLOCK into what actually went wrong.
 *
 * The deadlock detector in GpuSystem::run() only knows that the
 * progress signature (memory mutations + completions + context
 * switches) stood still for a whole detection window. The oracle
 * layer samples the machine at every window boundary and classifies
 * such a stall:
 *
 *  - LOST_WAKEUP: a WG is waiting on a condition that has *held* in
 *    functional memory longer than a bound — the wakeup existed but
 *    never reached the waiter (e.g. a dropped resume notification on
 *    MonR with rescue timeouts disabled).
 *  - LIVELOCK: retry-ish activity (Mesa retries of spilled waits,
 *    sleep backoff spins, stall-timeout wakeups) kept accumulating
 *    during the stalled window, but no WG retired — the machine is
 *    busy, not blocked.
 *  - DEADLOCK: neither of the above; the classic circular/stranded
 *    wait.
 *
 * The oracle also carries per-fault recovery accounting: the time
 * from a CU restoration to the first WG swap-in after it.
 */

#ifndef IFP_CORE_LIVENESS_HH
#define IFP_CORE_LIVENESS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace ifp::core {

/** Final classification of a run. */
enum class Verdict : std::uint8_t
{
    Unknown,     //!< run not classified (should not escape run())
    Complete,    //!< every WG retired
    Deadlock,    //!< no progress, no retry activity, no held condition
    Livelock,    //!< no progress but retries/spins kept accumulating
    LostWakeup,  //!< a waiter's condition held in memory past the bound
    Exhausted,   //!< simulation budget ran out while still progressing
};

/** Printable verdict name ("COMPLETE", "LOST_WAKEUP", ...). */
const char *verdictName(Verdict verdict);

/** Oracle configuration. */
struct LivenessConfig
{
    bool enabled = true;
    /**
     * How long a waiter's condition may hold in memory before the
     * waiter counts as lost, in GPU cycles. 0 = auto: one deadlock
     * detection window, which guarantees detection after a single
     * stalled window at any window size.
     */
    sim::Cycles lostWakeupBoundCycles = 0;
};

/** One waiting WG observed at a sample point. */
struct WaiterProbe
{
    int wgId = -1;
    std::uint64_t addr = 0;
    std::int64_t expected = 0;
    /** Whether functional memory satisfies the condition right now. */
    bool conditionHolds = false;
};

/** A waiter whose condition held past the bound. */
struct LostWakeupRecord
{
    int wgId = -1;
    std::uint64_t addr = 0;
    std::int64_t expected = 0;
    /** How long the condition had held when flagged, in cycles. */
    sim::Cycles heldCycles = 0;
};

/** Recovery accounting for one CU restoration. */
struct FaultRecovery
{
    /** When the CU came back, in GPU cycles. */
    sim::Cycles restoreCycle = 0;
    /** CU restore to the first WG swap-in, in GPU cycles. */
    sim::Cycles cyclesToFirstSwapIn = 0;
};

/**
 * Stall classifier fed once per deadlock-detection window.
 * All inputs come from the caller (GpuSystem), so this layer depends
 * on nothing but sim types and stays cheap to include.
 */
class LivenessOracle
{
  public:
    LivenessOracle(const LivenessConfig &cfg, sim::Tick clock_period,
                   sim::Cycles deadlock_window_cycles);

    /**
     * Record one detection-window sample.
     * @p waiters       every WG currently waiting on a condition
     * @p retryActivity monotone counter of Mesa retries / spins /
     *                  stall timeouts observed so far
     */
    void sample(sim::Tick now, const std::vector<WaiterProbe> &waiters,
                std::uint64_t retry_activity);

    /**
     * Classify a run that stopped making progress at the last sample.
     * @p queue_empty marks the terminal stall where the event queue
     * drained completely: a held condition then proves a lost wakeup
     * outright (nothing can ever deliver it), regardless of bound —
     * such waiters are flagged into lostWakeups() here.
     */
    Verdict finalizeStall(bool queue_empty);

    /** Waiters flagged as lost (stable, in flagging order). */
    const std::vector<LostWakeupRecord> &lostWakeups() const
    {
        return lost;
    }

  private:
    struct HeldClock
    {
        sim::Tick since = 0;
        std::uint64_t addr = 0;
        std::int64_t expected = 0;
        bool flagged = false;
    };

    LivenessConfig config;
    sim::Tick period;
    sim::Cycles boundCycles;

    /** Condition-held clocks, keyed by WG id. */
    std::unordered_map<int, HeldClock> held;
    std::vector<LostWakeupRecord> lost;

    std::uint64_t lastRetryActivity = 0;
    sim::Tick lastSampleTick = 0;
    bool retryInLastWindow = false;
    bool haveSample = false;
};

} // namespace ifp::core

#endif // IFP_CORE_LIVENESS_HH
