/**
 * @file
 * Result record of one simulated kernel run.
 */

#ifndef IFP_CORE_RUN_RESULT_HH
#define IFP_CORE_RUN_RESULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/liveness.hh"
#include "sim/trace_sink.hh"
#include "sim/types.hh"

namespace ifp::core {

/** Everything the harness and benches need from one run. */
struct RunResult
{
    bool completed = false;
    bool deadlocked = false;

    /**
     * Liveness-oracle refinement of the flags above: `deadlocked`
     * stays true for every stalled run (tables and legacy checks keep
     * their meaning), while the verdict distinguishes DEADLOCK from
     * LIVELOCK and LOST_WAKEUP.
     */
    Verdict verdict = Verdict::Unknown;

    /// @name Time
    /// @{
    sim::Tick runTicks = 0;
    sim::Cycles gpuCycles = 0;   //!< runTicks in GPU clock cycles
    /// @}

    /// @name Host-side work (perf baselines)
    /// @{
    /** Simulation events executed by the run's event queue. */
    std::uint64_t hostEvents = 0;
    /** MemRequests allocated from the run's request pool. */
    std::uint64_t memRequests = 0;
    /// @}

    /// @name Dynamic instruction counts
    /// @{
    std::uint64_t instructions = 0;
    std::uint64_t atomicInstructions = 0;   //!< Figure 9's metric
    std::uint64_t waitingAtomics = 0;
    std::uint64_t armWaits = 0;
    std::uint64_t sleeps = 0;
    /// @}

    /// @name WG execution break-down (Figure 11)
    /// @{
    double totalWgExecCycles = 0.0;
    double totalWgWaitCycles = 0.0;
    double
    totalWgRunCycles() const
    {
        return totalWgExecCycles - totalWgWaitCycles;
    }
    /// @}

    /// @name Stall-reason breakdown (observability layer)
    ///
    /// Per-reason WG-lifetime cycles summed over all WGs, indexed by
    /// sim::StallReason. The buckets partition each WG's lifetime
    /// from creation to completion (or end of run), so
    /// sum(wgCycleBreakdown) == wgLifetimeCycles.
    /// @{
    std::array<double, sim::numStallReasons> wgCycleBreakdown{};
    double wgLifetimeCycles = 0.0;
    double
    stallCycles(sim::StallReason reason) const
    {
        return wgCycleBreakdown[sim::stallIndex(reason)];
    }
    /// @}

    /// @name Scheduling activity
    /// @{
    std::uint64_t contextSaves = 0;
    std::uint64_t contextRestores = 0;
    std::uint64_t condResumesAll = 0;
    std::uint64_t condResumesOne = 0;
    std::uint64_t cpRescues = 0;
    std::uint64_t forcedPreemptions = 0;
    /** Waiters resumed by the AWG predictor. */
    std::uint64_t predictedResumes = 0;
    /** Predicted resumes that re-registered the same condition. */
    std::uint64_t mispredictedResumes = 0;
    /// @}

    /// @name Virtualization / hardware occupancy maxima (Figure 13)
    /// @{
    std::uint64_t maxConditions = 0;       //!< SyncMon condition cache
    std::uint64_t maxWaiters = 0;          //!< SyncMon waiting-WG list
    std::uint64_t maxMonitoredLines = 0;   //!< monitored L2 lines
    std::uint64_t maxLogEntries = 0;       //!< Monitor Log high water
    std::uint64_t maxSpilledConds = 0;     //!< CP monitor table
    std::uint64_t maxContextStoreBytes = 0;
    std::uint64_t spills = 0;
    std::uint64_t logFullRetries = 0;
    /// @}

    /// @name Fairness (WG completion spread)
    /// @{
    /** Cycles between the first and last WG completion. */
    sim::Cycles wgCompletionSpreadCycles = 0;
    /** Largest per-WG sync-wait time, in cycles. */
    sim::Cycles maxWgWaitCycles = 0;
    /// @}

    /// @name Fault injection (core/fault_plan.hh)
    /// @{
    /** Fault events that actually fired during the run. */
    std::uint64_t injectedFaults = 0;
    /** Resume notifications suppressed by DropResume windows. */
    std::uint64_t droppedResumes = 0;
    /** Resume notifications deferred by DelayResume windows. */
    std::uint64_t delayedResumes = 0;
    /** Waiters the oracle flagged as lost (see verdict). */
    std::vector<LostWakeupRecord> lostWakeups;
    /** CU-restore to first-swap-in latencies, one per restoration. */
    std::vector<FaultRecovery> faultRecoveries;
    /// @}

    /// @name Validation
    /// @{
    bool validated = false;
    std::string validationError;
    /// @}

    /** Wall status string for tables: cycles or DEADLOCK. */
    std::string statusString() const;

    /** Oracle verdict name plus cycles for completed runs. */
    std::string verdictString() const;
};

} // namespace ifp::core

#endif // IFP_CORE_RUN_RESULT_HH
