/**
 * @file
 * Deterministic fault-injection plans.
 *
 * A FaultPlan generalizes the one-shot oversubscription scenario into
 * scripted campaigns: repeated CU offline/online churn, SyncMon
 * capacity-pressure windows (conditions forced through the Monitor
 * Log), Monitor-Log jam windows (sustained log-full Mesa retries),
 * dropped/delayed resume notifications (widening the MonR window of
 * vulnerability), and CP firmware stall windows.
 *
 * Every fault is applied as an ordinary event-queue event, so a run
 * remains byte-reproducible from its `(plan, seed)` pair: the same
 * plan against the same configuration produces the same event
 * sequence, statistics and trace. Plans come from three sources —
 * hand-written text (parseFaultPlan), named presets
 * (faultPlanPreset), or the seeded chaos generator
 * (generateChaosPlan), which only emits survivable plans: every
 * offlined CU comes back, at least one CU stays online throughout,
 * and rescue timeouts are never disabled.
 */

#ifndef IFP_CORE_FAULT_PLAN_HH
#define IFP_CORE_FAULT_PLAN_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace ifp::core {

/** The injectable fault classes. */
enum class FaultKind : std::uint8_t
{
    CuOffline,        //!< CU lost to kernel-level scheduling
    CuOnline,         //!< CU restored to the schedulable pool
    SyncMonPressure,  //!< window: registrations bypass the condition
                      //!< cache and spill straight to the Monitor Log
    LogJam,           //!< window: Monitor Log rejects appends, so
                      //!< spilling waits fail into Mesa retries
    DropResume,       //!< window: SyncMon resume notifications vanish
    DelayResume,      //!< window: SyncMon resumes arrive late
    CpStall,          //!< CP firmware housekeeping frozen for a window
};

/** Printable (and serialized) name of a FaultKind. */
const char *faultKindName(FaultKind kind);

/** Whether @p kind describes a window with an explicit end edge. */
bool faultKindWindowed(FaultKind kind);

/** One scheduled fault. */
struct FaultEvent
{
    FaultKind kind = FaultKind::CuOffline;
    /** Injection time, microseconds after launch. */
    std::uint64_t atUs = 0;
    /** Window length for windowed kinds, microseconds. */
    std::uint64_t durationUs = 0;
    /** Target CU for churn kinds; -1 means the last CU. */
    int cuId = -1;
    /** Kind-specific parameter (DelayResume: delay in GPU cycles). */
    std::uint64_t param = 0;

    bool operator==(const FaultEvent &) const = default;
};

/** A named, reproducible fault campaign. */
struct FaultPlan
{
    std::string name = "none";
    /** Generator seed (0 for hand-written plans). */
    std::uint64_t seed = 0;
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Largest CU id referenced by a churn event, or -1. */
    int maxCuId() const;

    bool operator==(const FaultPlan &) const = default;

    /**
     * The §VI oversubscription scenario as a plan: CU @p cu_id (-1 =
     * last) goes offline @p loss_us microseconds after launch and,
     * when @p restore_us > @p loss_us, comes back at @p restore_us.
     * This factory replaces the legacy RunConfig quartet
     * (oversubscribed / cuLossMicroseconds / cuRestoreMicroseconds /
     * offlineCuId); the old fields still work as a deprecated
     * forwarding shim built on this factory.
     */
    static FaultPlan cuLoss(std::uint64_t loss_us,
                            std::uint64_t restore_us = 0,
                            int cu_id = -1);
};

/** Knobs of the seeded chaos generator. */
struct ChaosSpec
{
    /** CUs of the target machine (bounds churn targets). */
    unsigned numCus = 8;
    /** Earliest fault injection time, microseconds. */
    std::uint64_t startUs = 5;
    /** Latest fault injection time, microseconds. */
    std::uint64_t horizonUs = 120;
    /** Offline/online churn pairs to attempt. */
    unsigned churnPairs = 3;
    /** CU offline window bounds, microseconds. */
    std::uint64_t minOfflineUs = 10;
    std::uint64_t maxOfflineUs = 40;
    /** Per-plan probabilities of the non-churn fault windows. */
    double pressureProb = 0.5;
    double logJamProb = 0.35;
    double dropResumeProb = 0.5;
    double delayResumeProb = 0.35;
    double cpStallProb = 0.35;
};

/**
 * Generate a survivable random plan from @p seed. Deterministic:
 * the same (spec, seed) always yields the same plan. Churn pairs
 * that would leave fewer than one CU online are dropped, and every
 * offline edge has a matching later online edge, so policies with
 * swap-in firmware and live rescue timeouts can always finish.
 */
FaultPlan generateChaosPlan(const ChaosSpec &spec, std::uint64_t seed);

/** Named preset plans for the CLI; fatal on an unknown name. */
FaultPlan faultPlanPreset(const std::string &name);

/** Names accepted by faultPlanPreset(). */
std::vector<std::string> faultPlanPresetNames();

/** Serialize @p plan to the text format parseFaultPlan() reads. */
std::string writeFaultPlan(const FaultPlan &plan);

/**
 * Parse the line-based plan format:
 *
 *   plan <name>
 *   seed <n>
 *   cu-offline at=<us> cu=<id>
 *   cu-online at=<us> cu=<id>
 *   syncmon-pressure at=<us> dur=<us>
 *   log-jam at=<us> dur=<us>
 *   drop-resume at=<us> dur=<us>
 *   delay-resume at=<us> dur=<us> cycles=<n>
 *   cp-stall at=<us> dur=<us>
 *
 * Blank lines and `#` comments are ignored. On malformed input
 * returns nullopt and sets @p error.
 */
std::optional<FaultPlan> parseFaultPlan(const std::string &text,
                                        std::string &error);

} // namespace ifp::core

#endif // IFP_CORE_FAULT_PLAN_HH
