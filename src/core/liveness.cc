#include "core/liveness.hh"

#include <algorithm>

namespace ifp::core {

const char *
verdictName(Verdict verdict)
{
    switch (verdict) {
      case Verdict::Unknown: return "UNKNOWN";
      case Verdict::Complete: return "COMPLETE";
      case Verdict::Deadlock: return "DEADLOCK";
      case Verdict::Livelock: return "LIVELOCK";
      case Verdict::LostWakeup: return "LOST_WAKEUP";
      case Verdict::Exhausted: return "EXHAUSTED";
    }
    return "?";
}

LivenessOracle::LivenessOracle(const LivenessConfig &cfg,
                               sim::Tick clock_period,
                               sim::Cycles deadlock_window_cycles)
    : config(cfg),
      period(clock_period),
      boundCycles(cfg.lostWakeupBoundCycles > 0
                      ? cfg.lostWakeupBoundCycles
                      : deadlock_window_cycles)
{
}

void
LivenessOracle::sample(sim::Tick now,
                       const std::vector<WaiterProbe> &waiters,
                       std::uint64_t retry_activity)
{
    if (!config.enabled)
        return;

    lastSampleTick = now;
    for (const WaiterProbe &probe : waiters) {
        if (!probe.conditionHolds) {
            held.erase(probe.wgId);
            continue;
        }
        auto [it, fresh] = held.try_emplace(
            probe.wgId,
            HeldClock{now, probe.addr, probe.expected, false});
        if (fresh || it->second.flagged)
            continue;
        sim::Cycles held_cycles =
            static_cast<sim::Cycles>((now - it->second.since) / period);
        if (held_cycles >= boundCycles) {
            it->second.flagged = true;
            lost.push_back({probe.wgId, probe.addr, probe.expected,
                            held_cycles});
        }
    }
    // Clocks of WGs that stopped waiting: drop them so a later wait
    // on the same WG starts fresh. (Probes are the full waiter set.)
    std::erase_if(held, [&](const auto &kv) {
        return std::none_of(waiters.begin(), waiters.end(),
                            [&](const WaiterProbe &p) {
                                return p.wgId == kv.first &&
                                       p.conditionHolds;
                            });
    });

    retryInLastWindow = haveSample &&
                        retry_activity != lastRetryActivity;
    lastRetryActivity = retry_activity;
    haveSample = true;
}

Verdict
LivenessOracle::finalizeStall(bool queue_empty)
{
    if (!config.enabled)
        return Verdict::Deadlock;
    if (queue_empty) {
        // The queue drained with satisfied conditions outstanding:
        // nothing can ever deliver those wakeups, so the bound does
        // not apply. Flag the holders in WG-id order (the held map is
        // unordered; results must not depend on its layout).
        std::vector<int> ids;
        for (const auto &[wg_id, clock] : held) {
            if (!clock.flagged)
                ids.push_back(wg_id);
        }
        std::sort(ids.begin(), ids.end());
        for (int wg_id : ids) {
            HeldClock &clock = held[wg_id];
            clock.flagged = true;
            lost.push_back(
                {wg_id, clock.addr, clock.expected,
                 static_cast<sim::Cycles>(
                     (lastSampleTick - clock.since) / period)});
        }
    }
    if (!lost.empty())
        return Verdict::LostWakeup;
    if (retryInLastWindow)
        return Verdict::Livelock;
    return Verdict::Deadlock;
}

} // namespace ifp::core
