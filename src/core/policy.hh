/**
 * @file
 * The waiting-policy design space the paper evaluates.
 *
 * A Policy selects (a) how workload kernels express waiting (the
 * codegen style) and (b) which hardware controller is installed:
 *
 *   Policy     codegen style   controller          IFP when oversub.?
 *   Baseline   busy-wait       none                no (deadlocks)
 *   Sleep      s_sleep backoff none                no (deadlocks)
 *   Timeout    waiting atomics fixed interval      yes
 *   MonRS-All  wait instrs     SyncMon (sporadic)  yes
 *   MonR-All   wait instrs     SyncMon (check)     yes (racy arm)
 *   MonNR-All  waiting atomics SyncMon (all)       yes
 *   MonNR-One  waiting atomics SyncMon (one)       yes
 *   AWG        waiting atomics SyncMon (predict)   yes
 *   MinResume  waiting atomics oracle              yes (Figure 9)
 */

#ifndef IFP_CORE_POLICY_HH
#define IFP_CORE_POLICY_HH

#include <string>

#include "sim/types.hh"
#include "syncmon/sync_monitor.hh"

namespace ifp::core {

/** The evaluated waiting policies. */
enum class Policy
{
    Baseline,
    Sleep,
    Timeout,
    MonRSAll,
    MonRAll,
    MonNRAll,
    MonNROne,
    Awg,
    MinResume,
};

/** How kernels express waiting for a given policy. */
enum class SyncStyle
{
    Busy,          //!< spin on regular atomics
    SleepBackoff,  //!< spin with exponential-backoff s_sleep
    WaitInstr,     //!< check + wait-instruction (MonR/MonRS)
    WaitAtomic,    //!< waiting atomics (Timeout/MonNR/AWG)
};

/** Parameters of a policy instance. */
struct PolicyConfig
{
    Policy policy = Policy::Awg;
    /** Timeout policy: the fixed stall/switch interval. */
    sim::Cycles timeoutIntervalCycles = 20'000;
    /** Sleep policy: maximum backoff interval. */
    sim::Cycles sleepMaxBackoffCycles = 16'384;
    /** Sleep policy: initial backoff interval. */
    sim::Cycles sleepMinBackoffCycles = 64;
    syncmon::SyncMonConfig syncmon;
};

/** The codegen style a policy requires. */
constexpr SyncStyle
styleFor(Policy policy)
{
    switch (policy) {
      case Policy::Baseline:
        return SyncStyle::Busy;
      case Policy::Sleep:
        return SyncStyle::SleepBackoff;
      case Policy::MonRSAll:
      case Policy::MonRAll:
        return SyncStyle::WaitInstr;
      case Policy::Timeout:
      case Policy::MonNRAll:
      case Policy::MonNROne:
      case Policy::Awg:
      case Policy::MinResume:
        return SyncStyle::WaitAtomic;
    }
    return SyncStyle::Busy;
}

/**
 * Whether the policy strands switched-out WGs. Current GPUs can
 * pre-empt WGs but lack firmware to switch an individual WG back in —
 * exactly the capability the paper's CP extension adds. Without it,
 * oversubscribed runs deadlock.
 */
constexpr bool
deadlockProne(Policy policy)
{
    return policy == Policy::Baseline || policy == Policy::Sleep;
}

/** The SyncMon mode implementing a monitor-based policy. */
constexpr syncmon::SyncMonMode
syncMonModeFor(Policy policy)
{
    switch (policy) {
      case Policy::MonRSAll: return syncmon::SyncMonMode::MonRSAll;
      case Policy::MonRAll: return syncmon::SyncMonMode::MonRAll;
      case Policy::MonNRAll: return syncmon::SyncMonMode::MonNRAll;
      case Policy::MonNROne: return syncmon::SyncMonMode::MonNROne;
      case Policy::Awg: return syncmon::SyncMonMode::Awg;
      case Policy::MinResume: return syncmon::SyncMonMode::MinResume;
      default: break;
    }
    return syncmon::SyncMonMode::Awg;
}

/** True for the policies driven by a SyncMonController. */
constexpr bool
usesSyncMon(Policy policy)
{
    switch (policy) {
      case Policy::MonRSAll:
      case Policy::MonRAll:
      case Policy::MonNRAll:
      case Policy::MonNROne:
      case Policy::Awg:
      case Policy::MinResume:
        return true;
      default:
        return false;
    }
}

/** Printable name, matching the paper's figures. */
const char *policyName(Policy policy);

} // namespace ifp::core

#endif // IFP_CORE_POLICY_HH
