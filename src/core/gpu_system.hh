/**
 * @file
 * GpuSystem: the fully composed simulated APU.
 *
 * Builds the Table 1 machine (CUs with L1s, banked shared L2, DRAM,
 * DMA, Command Processor, WG dispatcher), installs the selected
 * waiting-policy controller, runs one kernel, and harvests a
 * RunResult. Also implements:
 *
 *  - the oversubscription scenario (§VI): after a configurable delay
 *    one CU is taken offline and its resident WGs are pre-empted,
 *  - deadlock detection: the kernel is declared deadlocked when no
 *    memory value changes, no WG completes and no context switch
 *    happens for a whole detection window (busy-wait spinning does
 *    not advance any of these),
 *  - a bump allocator for workload buffers in global memory.
 */

#ifndef IFP_CORE_GPU_SYSTEM_HH
#define IFP_CORE_GPU_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/fault_plan.hh"
#include "core/liveness.hh"
#include "core/policy.hh"
#include "core/run_result.hh"
#include "cp/command_processor.hh"
#include "gpu/compute_unit.hh"
#include "gpu/dispatcher.hh"
#include "gpu/gpu_config.hh"
#include "mem/backing_store.hh"
#include "mem/dma.hh"
#include "mem/dram.hh"
#include "mem/l1_cache.hh"
#include "mem/l2_cache.hh"
#include "sim/event_domain.hh"
#include "sim/event_queue.hh"
#include "sim/sched_oracle.hh"
#include "sim/trace_sink.hh"
#include "syncmon/sync_monitor.hh"
#include "syncmon/timeout_controller.hh"

namespace ifp::core {

/** Pre-dispatch verification knobs. */
struct DispatchOptions
{
    /**
     * Run the static kernel verifier (analysis/lint — the same passes
     * tools/ifplint exposes) before dispatch. Diagnostics are printed
     * through warn(); an unsuppressed error throws
     * std::invalid_argument instead of launching a kernel the
     * verifier can prove malformed. Off by default: the registry is
     * gated by the ifplint ctest instead, and ad-hoc test kernels may
     * deliberately be broken.
     */
    bool lintBeforeDispatch = false;
    /** With lintBeforeDispatch: unsuppressed warnings throw, too. */
    bool lintWerror = false;
};

/** Scenario and machine configuration of one run. */
struct RunConfig
{
    gpu::GpuConfig gpu;
    cp::CpConfig cp;
    PolicyConfig policy;
    DispatchOptions dispatch;

    /**
     * @name Deprecated §VI oversubscription quartet
     *
     * Superseded by `faultPlan = FaultPlan::cuLoss(lossUs, restoreUs,
     * cuId)`. The fields keep working as a forwarding shim (built on
     * that factory, scheduled exactly as the historic scenario so old
     * runs stay byte-identical) and emit a single deprecation warn()
     * per process.
     * @{
     */
    /** Deprecated: run the §VI oversubscribed experiment. */
    bool oversubscribed = false;
    /** Deprecated: when the CU is lost, in µs after launch (paper: 50). */
    std::uint64_t cuLossMicroseconds = 50;
    /**
     * Deprecated: when the lost CU becomes schedulable again (0 =
     * never). Baseline machines still cannot recover their pre-empted
     * WGs — restoring the CU only helps machines with WG swap-in
     * firmware.
     */
    std::uint64_t cuRestoreMicroseconds = 0;
    /** Deprecated: which CU goes offline (default: the last one). */
    int offlineCuId = -1;
    /// @}

    /**
     * Scripted fault-injection campaign (core/fault_plan.hh), applied
     * on top of (and independently of) the legacy oversubscribed
     * scenario. Every event is scheduled on the event queue before
     * simulation starts, so runs stay byte-reproducible.
     */
    FaultPlan faultPlan;

    /** Liveness-oracle configuration (core/liveness.hh). */
    LivenessConfig liveness;

    /**
     * Schedule-choice oracle (sim/sched_oracle.hh), non-owning; must
     * outlive the run. Null (the default) keeps the stock
     * deterministic schedule with zero overhead — every decision
     * site is byte-identical to the pre-oracle simulator. The
     * explore drivers (src/explore) install random-walk / replay
     * oracles here to steer the dispatcher, the CU wavefront
     * arbiters, SyncMon resume ordering and CP housekeeping through
     * alternative legal schedules.
     */
    sim::SchedOracle *schedOracle = nullptr;

    /** No-progress window that declares deadlock, in GPU cycles. */
    sim::Cycles deadlockWindowCycles = 1'000'000;
    /** Absolute simulation budget, in GPU cycles. */
    sim::Cycles maxCycles = 400'000'000;

    /**
     * Collect structured TraceEvents during the run (see
     * sim/trace_sink.hh). Off by default: every emission site then
     * reduces to a null-pointer test, so untraced runs pay nothing.
     */
    bool traceEnabled = false;

    /**
     * In-run parallelism (sim/event_domain.hh). 0 means "unset": the
     * harness resolves it from IFP_RUN_SHARDS (default 1). A value of
     * 1 or less runs the classic serial core, byte-identical to the
     * pre-shard simulator. 2 or more runs the conservative PDES core:
     * the decomposition is fixed (the root domain plus one fused
     * L2-bank/DRAM-channel domain each) and only the executor thread
     * count varies with the value, so stats, traces and RunResults
     * are byte-identical across every shards >= 2 setting. Executor
     * threads are clamped to the hardware budget divided by the
     * process's external concurrency (the sweep worker count).
     */
    unsigned shards = 0;
};

/** Checks the final memory image of a run. */
using Validator =
    std::function<bool(const mem::BackingStore &, std::string &)>;

/** Per-kernel outcome of a multi-kernel serve() run. */
struct KernelRunStat
{
    int ctxId = -1;
    std::string kernelName;
    std::string tenant;
    int priority = 0;
    bool completed = false;

    /// @name Lifecycle, in GPU cycles from simulation start
    /// @{
    sim::Cycles enqueueCycle = 0;
    sim::Cycles admitCycle = 0;
    sim::Cycles firstDispatchCycle = 0;   //!< 0 when never dispatched
    sim::Cycles completeCycle = 0;        //!< 0 when not completed
    /** Admission queueing delay (admit - enqueue). */
    sim::Cycles queueCycles = 0;
    /** Turnaround (complete - enqueue); 0 when not completed. */
    sim::Cycles turnaroundCycles = 0;
    /** Deadline given and missed (or the kernel never completed). */
    bool sloMissed = false;
    /// @}

    /// @name Per-kernel scheduling activity
    /// @{
    std::uint64_t dispatches = 0;
    std::uint64_t swapOuts = 0;
    std::uint64_t swapIns = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t cusGained = 0;
    std::uint64_t cusLost = 0;
    /// @}

    unsigned wgsCompleted = 0;
    unsigned numWgs = 0;
};

/** Result of a multi-kernel serve() run. */
struct ServeResult
{
    RunResult run;
    /** One entry per enqueued kernel, in ctx-id (creation) order. */
    std::vector<KernelRunStat> kernels;
};

/** The composed simulated APU. */
class GpuSystem : private gpu::KernelListener
{
  public:
    /**
     * Composes the machine. Throws std::invalid_argument when the
     * scenario references a CU the machine does not have
     * (RunConfig::offlineCuId or a fault-plan churn target out of
     * range) — the one construction-time error a caller can usefully
     * catch, unlike the internal ifp_fatal paths.
     */
    explicit GpuSystem(const RunConfig &cfg);
    ~GpuSystem();

    GpuSystem(const GpuSystem &) = delete;
    GpuSystem &operator=(const GpuSystem &) = delete;

    /** Allocate zero-initialized global memory for workload buffers. */
    mem::Addr allocate(std::uint64_t bytes, std::uint64_t align = 64);

    /** Functional memory (workload initialization / validation). */
    mem::BackingStore &memory() { return store; }

    /**
     * Run @p kernel to completion, deadlock or budget exhaustion.
     * Thin wrapper over enqueueKernel() + the shared run loop; a
     * single-kernel run is byte-identical to the pre-multi-tenant
     * simulator.
     */
    RunResult run(const isa::Kernel &kernel,
                  const Validator &validator = nullptr);

    /// @name Multi-kernel serving
    /// @{

    /**
     * Enqueue @p kernel at the current tick (before serve(): time 0).
     * The context arrives synchronously. @return the context id.
     */
    int enqueueKernel(const isa::Kernel &kernel,
                      const gpu::LaunchOptions &opts = {});

    /**
     * Enqueue @p kernel arriving at absolute tick @p at (>= now). The
     * context is pre-created so the id is available immediately; the
     * arrival fires as an ordinary event, keeping runs deterministic.
     */
    int enqueueKernelAt(const isa::Kernel &kernel,
                        const gpu::LaunchOptions &opts, sim::Tick at);

    /**
     * Run every enqueued kernel to completion, deadlock or budget
     * exhaustion, and report per-kernel turnaround/preemption stats
     * alongside the machine-level RunResult.
     */
    ServeResult serve(const Validator &validator = nullptr);
    /// @}

    /// @name Introspection (tests, examples)
    /// @{
    gpu::Dispatcher &dispatcher() { return *dispatch; }
    cp::CommandProcessor &commandProcessor() { return *cp; }
    mem::L2Cache &l2() { return *l2cache; }
    sim::EventQueue &eventq() { return eq; }
    syncmon::SyncMonController *syncMon() { return monitor.get(); }
    const RunConfig &config() const { return cfg; }

    /** The PDES core, or nullptr when running the serial core. */
    sim::DomainScheduler *domainScheduler() { return scheduler.get(); }

    /** The run's trace sink, or nullptr when tracing is disabled. */
    const sim::TraceSink *traceSink() const { return sink.get(); }
    /// @}

    /** Dump every component's statistics. */
    void dumpStats(std::ostream &os) const;

    /** Visit every component's StatGroup (exporters, stats-JSON). */
    void forEachStatGroup(
        const std::function<void(const sim::StatGroup &)> &fn) const;

  private:
    RunConfig cfg;
    /**
     * Slab pool backing every MemRequest of the run. Declared before
     * the event queue (and thus destroyed after it): pending events
     * and device queues may hold MemRequestPtrs whose final release
     * recycles into the pool. Its destructor asserts nothing leaked.
     */
    mem::MemRequestPool pool;
    /**
     * One pool per memory domain in shard mode (fills and writebacks
     * born in bank context). Declared before the scheduler so the
     * domain queues — which may hold events owning requests — are
     * destroyed first.
     */
    std::vector<std::unique_ptr<mem::MemRequestPool>> shardPools;
    sim::EventQueue eq;
    /**
     * The PDES core (null in the classic serial mode). Declared after
     * the queue and the pools it references, before the devices whose
     * destructors must not outlive their event context; its own
     * destructor joins the executor threads on this thread.
     */
    std::unique_ptr<sim::DomainScheduler> scheduler;
    mem::BackingStore store;

    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<mem::L2Cache> l2cache;
    std::vector<std::unique_ptr<mem::L1Cache>> l1s;
    std::vector<std::unique_ptr<gpu::ComputeUnit>> cus;
    std::unique_ptr<mem::DmaEngine> dma;
    std::unique_ptr<cp::CommandProcessor> cp;
    std::unique_ptr<gpu::Dispatcher> dispatch;
    std::unique_ptr<syncmon::SyncMonController> monitor;
    std::unique_ptr<syncmon::TimeoutController> timeout;
    std::unique_ptr<sim::TraceSink> sink;

    mem::Addr heapNext = 0x1000'0000ULL;
    bool kernelDone = false;
    sim::Tick completionTick = 0;
    std::uint64_t faultsApplied = 0;
    /** Contexts whose arrival fired (progress-signature component). */
    std::uint64_t arrivedContexts = 0;

    /// @name gpu::KernelListener (the run loop's completion hook)
    /// @{
    void kernelEnqueued(const gpu::DispatchContext &ctx) override;
    void kernelCompleted(const gpu::DispatchContext &ctx) override;
    /// @}

    /** Pre-dispatch lint gate (DispatchOptions). */
    void lintKernel(const isa::Kernel &kernel) const;

    /**
     * The shared run loop: schedule faults, simulate until every
     * enqueued context completes (or deadlock / budget), close the
     * books and harvest. run() and serve() both end here.
     */
    RunResult finishRun(const Validator &validator);

    /** Resolve a plan CU id (-1 = last CU) to a concrete index. */
    unsigned resolveCuId(int cu_id) const;

    /**
     * Build the domain decomposition when cfg.shards >= 2: the root
     * domain adopts eq; each L2 bank fuses with its DRAM channel into
     * a stage-1 domain. Falls back to the serial core (with a
     * warning) when the memory geometry cannot be sharded.
     */
    void setupShardDomains();

    /** Schedule the legacy scenario and cfg.faultPlan on the queue. */
    void scheduleFaults();

    /** Apply one fault edge (begin or end of a window). */
    void applyFault(const FaultEvent &event, bool begin);

    /** Snapshot every waiting WG for the liveness oracle. */
    std::vector<WaiterProbe> waiterProbes() const;

    /** Monotone Mesa-retry/spin counter (livelock signal). */
    std::uint64_t retryActivity() const;

    void harvest(RunResult &result) const;
};

} // namespace ifp::core

#endif // IFP_CORE_GPU_SYSTEM_HH
