#include "core/gpu_system.hh"

#include <algorithm>
#include <ostream>

#include "sim/logging.hh"

namespace ifp::core {

const char *
policyName(Policy policy)
{
    switch (policy) {
      case Policy::Baseline: return "Baseline";
      case Policy::Sleep: return "Sleep";
      case Policy::Timeout: return "Timeout";
      case Policy::MonRSAll: return "MonRS-All";
      case Policy::MonRAll: return "MonR-All";
      case Policy::MonNRAll: return "MonNR-All";
      case Policy::MonNROne: return "MonNR-One";
      case Policy::Awg: return "AWG";
      case Policy::MinResume: return "MinResume";
    }
    return "?";
}

std::string
RunResult::statusString() const
{
    if (deadlocked)
        return "DEADLOCK";
    if (!completed)
        return "TIMEOUT";
    return std::to_string(gpuCycles);
}

GpuSystem::GpuSystem(const RunConfig &run_cfg)
    : cfg(run_cfg)
{
    dram = std::make_unique<mem::Dram>("dram", eq, cfg.gpu.dram);
    l2cache = std::make_unique<mem::L2Cache>("l2", eq, cfg.gpu.l2,
                                             *dram, store);
    dma = std::make_unique<mem::DmaEngine>("dma", eq, cfg.gpu.dma);
    cp = std::make_unique<cp::CommandProcessor>("cp", eq, cfg.cp, *dma,
                                                store, l2cache.get());
    dispatch = std::make_unique<gpu::Dispatcher>("dispatcher", eq,
                                                 cfg.gpu);

    for (unsigned i = 0; i < cfg.gpu.numCus; ++i) {
        std::string cu_name = "cu" + std::to_string(i);
        l1s.push_back(std::make_unique<mem::L1Cache>(
            cu_name + ".l1", eq, cfg.gpu.l1, *l2cache));
        cus.push_back(std::make_unique<gpu::ComputeUnit>(
            cu_name, eq, i, cfg.gpu, *l1s.back(), store));
    }

    std::vector<gpu::ComputeUnit *> cu_ptrs;
    for (auto &cu : cus)
        cu_ptrs.push_back(cu.get());
    dispatch->setCus(std::move(cu_ptrs));
    dispatch->setContextSwitcher(cp.get());
    cp->setScheduler(dispatch.get());

    Policy policy = cfg.policy.policy;
    dispatch->setSwapInCapable(!deadlockProne(policy));
    if (policy == Policy::Timeout) {
        dispatch->setDefaultRescueCycles(
            cfg.policy.timeoutIntervalCycles);
    } else if (usesSyncMon(policy)) {
        dispatch->setDefaultRescueCycles(
            cfg.policy.syncmon.rescueIntervalCycles);
    }

    mem::SyncObserver *observer = nullptr;
    if (usesSyncMon(policy)) {
        monitor = std::make_unique<syncmon::SyncMonController>(
            "syncmon", eq, syncMonModeFor(policy), cfg.policy.syncmon,
            *l2cache, store, *cp);
        monitor->setScheduler(dispatch.get());
        observer = monitor.get();
    } else if (policy == Policy::Timeout) {
        timeout = std::make_unique<syncmon::TimeoutController>(
            cfg.policy.timeoutIntervalCycles);
        timeout->setScheduler(dispatch.get());
        l2cache->setSyncObserver(timeout.get());
        observer = timeout.get();
    }
    // Baseline / Sleep: no controller; waiting atomics would busy
    // retry, but their codegen styles never emit them.

    for (auto &cu : cus)
        cu->setSyncObserver(observer);

    if (cfg.traceEnabled) {
        sink = std::make_unique<sim::TraceSink>();
        dispatch->setTraceSink(sink.get());
        cp->setTraceSink(sink.get());
        for (auto &cu : cus)
            cu->setTraceSink(sink.get());
        if (monitor)
            monitor->setTraceSink(sink.get());
    }
}

GpuSystem::~GpuSystem() = default;

mem::Addr
GpuSystem::allocate(std::uint64_t bytes, std::uint64_t align)
{
    ifp_assert(align > 0 && (align & (align - 1)) == 0,
               "alignment must be a power of two");
    heapNext = (heapNext + align - 1) & ~(align - 1);
    mem::Addr base = heapNext;
    heapNext += bytes;
    return base;
}

RunResult
GpuSystem::run(const isa::Kernel &kernel, const Validator &validator)
{
    RunResult result;
    kernelDone = false;

    dispatch->setOnComplete([this] {
        kernelDone = true;
        completionTick = eq.curTick();
    });
    dispatch->launch(kernel);

    if (cfg.oversubscribed) {
        unsigned victim = cfg.offlineCuId >= 0
                              ? static_cast<unsigned>(cfg.offlineCuId)
                              : cfg.gpu.numCus - 1;
        sim::Tick when =
            sim::ticksFromMicroseconds(cfg.cuLossMicroseconds);
        eq.schedule(when, [this, victim] {
            dispatch->offlineCu(victim);
        }, "cuLoss");
        if (cfg.cuRestoreMicroseconds > cfg.cuLossMicroseconds) {
            sim::Tick back = sim::ticksFromMicroseconds(
                cfg.cuRestoreMicroseconds);
            eq.schedule(back, [this, victim] {
                dispatch->onlineCu(victim);
            }, "cuRestore");
        }
    }

    const sim::Tick window =
        cfg.deadlockWindowCycles * cfg.gpu.clockPeriod;
    const sim::Tick budget = cfg.maxCycles * cfg.gpu.clockPeriod;

    auto progress_sig = [this] {
        return store.mutations() + dispatch->numCompleted() +
               static_cast<std::uint64_t>(
                   dispatch->stats().scalar("swapOuts").value()) +
               static_cast<std::uint64_t>(
                   dispatch->stats().scalar("swapIns").value());
    };

    std::uint64_t last_sig = progress_sig();
    sim::Tick next_check = window;
    while (!kernelDone) {
        eq.simulate(next_check);
        if (kernelDone)
            break;
        if (eq.empty()) {
            // Nothing can ever happen again: stranded WGs.
            result.deadlocked = true;
            break;
        }
        std::uint64_t sig = progress_sig();
        if (sig == last_sig) {
            result.deadlocked = true;
            break;
        }
        last_sig = sig;
        next_check += window;
        if (next_check > budget) {
            // Simulation budget exhausted: report as non-completion.
            break;
        }
    }

    if (kernelDone) {
        result.completed = true;
        result.runTicks = completionTick;
    } else {
        result.runTicks = eq.curTick();
    }
    result.gpuCycles = result.runTicks / cfg.gpu.clockPeriod;

    // Close the stall-reason books (completed WGs already closed at
    // their completeTick; survivors are charged up to the run's end)
    // and publish the per-reason totals as dispatcher stats.
    dispatch->accumulateWgCycleStats(result.runTicks);

    harvest(result);

    if (result.completed && validator) {
        std::string err;
        result.validated = validator(store, err);
        result.validationError = std::move(err);
    }
    return result;
}

void
GpuSystem::harvest(RunResult &result) const
{
    for (const auto &cu : cus) {
        const sim::StatGroup &s = cu->stats();
        result.instructions += static_cast<std::uint64_t>(
            s.scalar("instructions").value());
        result.atomicInstructions += static_cast<std::uint64_t>(
            s.scalar("atomics").value());
        result.waitingAtomics += static_cast<std::uint64_t>(
            s.scalar("waitingAtomics").value());
        result.armWaits += static_cast<std::uint64_t>(
            s.scalar("armWaits").value());
        result.sleeps += static_cast<std::uint64_t>(
            s.scalar("sleeps").value());
    }

    sim::Tick period = cfg.gpu.clockPeriod;
    sim::Tick first_done = sim::maxTick, last_done = 0;
    for (const auto &wg : dispatch->workgroups()) {
        if (wg->completeTick > 0) {
            first_done = std::min(first_done, wg->completeTick);
            last_done = std::max(last_done, wg->completeTick);
        }
        sim::Tick end = wg->completeTick > 0 ? wg->completeTick
                                             : result.runTicks;
        sim::Tick exec =
            end > wg->dispatchTick ? end - wg->dispatchTick : 0;
        sim::Tick waiting = wg->waitingTicks;
        if (wg->waitingWfs > 0 && end > wg->waitStartTick)
            waiting += end - wg->waitStartTick;
        result.totalWgExecCycles +=
            static_cast<double>(exec) / period;
        result.totalWgWaitCycles +=
            static_cast<double>(std::min(waiting, exec)) / period;
        result.contextSaves += wg->contextSaves;
        result.contextRestores += wg->contextRestores;
        result.maxWgWaitCycles = std::max(
            result.maxWgWaitCycles,
            static_cast<sim::Cycles>(waiting / period));
    }
    if (last_done > first_done) {
        result.wgCompletionSpreadCycles =
            (last_done - first_done) / period;
    }

    // Stall-reason breakdown published by accumulateWgCycleStats().
    // Per-WG lifetimes run from creation (launch, tick 0) to
    // completion or end of run, so the breakdown partitions them.
    if (const sim::Vector *v =
            dispatch->stats().tryVector("wgCycles")) {
        for (std::size_t r = 0;
             r < std::min<std::size_t>(v->size(),
                                       sim::numStallReasons); ++r) {
            result.wgCycleBreakdown[r] = v->at(r);
        }
    }
    for (const auto &wg : dispatch->workgroups()) {
        sim::Tick end = wg->completeTick > 0 ? wg->completeTick
                                             : result.runTicks;
        result.wgLifetimeCycles += static_cast<double>(end) / period;
    }

    result.forcedPreemptions = static_cast<std::uint64_t>(
        dispatch->stats().scalar("forcedPreemptions").value());
    result.cpRescues = cp->rescueResumes();
    result.maxLogEntries = cp->monitorLog().maxSize();
    result.maxSpilledConds = cp->maxSpilledConditions();
    result.maxContextStoreBytes = cp->maxContextStoreBytes();
    result.maxMonitoredLines = l2cache->maxMonitored();

    if (monitor) {
        const sim::StatGroup &s = monitor->stats();
        result.condResumesAll = static_cast<std::uint64_t>(
            s.scalar("resumesAll").value());
        result.condResumesOne = static_cast<std::uint64_t>(
            s.scalar("resumesOne").value());
        result.spills = static_cast<std::uint64_t>(
            s.scalar("spills").value());
        result.logFullRetries = static_cast<std::uint64_t>(
            s.scalar("logFullRetries").value());
        result.maxConditions = monitor->maxConditions();
        result.maxWaiters = monitor->maxWaiters();
    }
}

void
GpuSystem::dumpStats(std::ostream &os) const
{
    dram->stats().dump(os);
    l2cache->stats().dump(os);
    dma->stats().dump(os);
    cp->stats().dump(os);
    dispatch->stats().dump(os);
    for (const auto &l1 : l1s)
        l1->stats().dump(os);
    for (const auto &cu : cus)
        cu->stats().dump(os);
    if (monitor)
        monitor->stats().dump(os);
}

void
GpuSystem::forEachStatGroup(
    const std::function<void(const sim::StatGroup &)> &fn) const
{
    fn(dram->stats());
    fn(l2cache->stats());
    fn(dma->stats());
    fn(cp->stats());
    fn(dispatch->stats());
    for (const auto &l1 : l1s)
        fn(l1->stats());
    for (const auto &cu : cus)
        fn(cu->stats());
    if (monitor)
        fn(monitor->stats());
}

} // namespace ifp::core
