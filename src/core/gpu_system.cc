#include "core/gpu_system.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "analysis/lint.hh"
#include "sim/logging.hh"

namespace ifp::core {

const char *
policyName(Policy policy)
{
    switch (policy) {
      case Policy::Baseline: return "Baseline";
      case Policy::Sleep: return "Sleep";
      case Policy::Timeout: return "Timeout";
      case Policy::MonRSAll: return "MonRS-All";
      case Policy::MonRAll: return "MonR-All";
      case Policy::MonNRAll: return "MonNR-All";
      case Policy::MonNROne: return "MonNR-One";
      case Policy::Awg: return "AWG";
      case Policy::MinResume: return "MinResume";
    }
    return "?";
}

std::string
RunResult::statusString() const
{
    if (deadlocked)
        return "DEADLOCK";
    if (!completed)
        return "TIMEOUT";
    return std::to_string(gpuCycles);
}

std::string
RunResult::verdictString() const
{
    if (verdict == Verdict::Complete)
        return std::string(verdictName(verdict)) + "(" +
               std::to_string(gpuCycles) + ")";
    return verdictName(verdict);
}

GpuSystem::GpuSystem(const RunConfig &run_cfg)
    : cfg(run_cfg)
{
    int num_cus = static_cast<int>(cfg.gpu.numCus);
    if (cfg.offlineCuId < -1 || cfg.offlineCuId >= num_cus) {
        throw std::invalid_argument(
            "RunConfig::offlineCuId " +
            std::to_string(cfg.offlineCuId) + " out of range for a " +
            std::to_string(num_cus) + "-CU machine (-1 = last CU)");
    }
    for (const FaultEvent &ev : cfg.faultPlan.events) {
        if (ev.kind != FaultKind::CuOffline &&
            ev.kind != FaultKind::CuOnline)
            continue;
        if (ev.cuId < -1 || ev.cuId >= num_cus) {
            throw std::invalid_argument(
                "fault plan '" + cfg.faultPlan.name + "': " +
                faultKindName(ev.kind) + " targets CU " +
                std::to_string(ev.cuId) + " on a " +
                std::to_string(num_cus) + "-CU machine");
        }
    }

    dram = std::make_unique<mem::Dram>("dram", eq, cfg.gpu.dram);
    l2cache = std::make_unique<mem::L2Cache>("l2", eq, cfg.gpu.l2,
                                             *dram, store, pool);
    dma = std::make_unique<mem::DmaEngine>("dma", eq, cfg.gpu.dma);
    cp = std::make_unique<cp::CommandProcessor>("cp", eq, cfg.cp, *dma,
                                                store, l2cache.get(),
                                                &pool);
    dispatch = std::make_unique<gpu::Dispatcher>("dispatcher", eq,
                                                 cfg.gpu);

    for (unsigned i = 0; i < cfg.gpu.numCus; ++i) {
        std::string cu_name = "cu" + std::to_string(i);
        l1s.push_back(std::make_unique<mem::L1Cache>(
            cu_name + ".l1", eq, cfg.gpu.l1, *l2cache, pool));
        cus.push_back(std::make_unique<gpu::ComputeUnit>(
            cu_name, eq, i, cfg.gpu, *l1s.back(), store, pool));
    }

    std::vector<gpu::ComputeUnit *> cu_ptrs;
    for (auto &cu : cus)
        cu_ptrs.push_back(cu.get());
    dispatch->setCus(std::move(cu_ptrs));
    dispatch->setContextSwitcher(cp.get());
    cp->setScheduler(dispatch.get());
    dispatch->setKernelListener(this);
    cp->admissionScheduler().setDispatcher(dispatch.get());
    dispatch->setAdmissionPolicy(&cp->admissionScheduler());

    Policy policy = cfg.policy.policy;
    dispatch->setSwapInCapable(!deadlockProne(policy));
    if (policy == Policy::Timeout) {
        dispatch->setDefaultRescueCycles(
            cfg.policy.timeoutIntervalCycles);
    } else if (usesSyncMon(policy)) {
        dispatch->setDefaultRescueCycles(
            cfg.policy.syncmon.rescueIntervalCycles);
    }

    mem::SyncObserver *observer = nullptr;
    if (usesSyncMon(policy)) {
        monitor = std::make_unique<syncmon::SyncMonController>(
            "syncmon", eq, syncMonModeFor(policy), cfg.policy.syncmon,
            *l2cache, store, *cp);
        monitor->setScheduler(dispatch.get());
        cp->setSpillObserver(monitor.get());
        observer = monitor.get();
    } else if (policy == Policy::Timeout) {
        timeout = std::make_unique<syncmon::TimeoutController>(
            cfg.policy.timeoutIntervalCycles);
        timeout->setScheduler(dispatch.get());
        l2cache->setSyncObserver(timeout.get());
        observer = timeout.get();
    }
    // Baseline / Sleep: no controller; waiting atomics would busy
    // retry, but their codegen styles never emit them.

    for (auto &cu : cus)
        cu->setSyncObserver(observer);

    if (cfg.traceEnabled) {
        sink = std::make_unique<sim::TraceSink>();
        dispatch->setTraceSink(sink.get());
        cp->setTraceSink(sink.get());
        for (auto &cu : cus)
            cu->setTraceSink(sink.get());
        if (monitor)
            monitor->setTraceSink(sink.get());
    }

    if (cfg.schedOracle) {
        dispatch->setSchedOracle(cfg.schedOracle);
        cp->setSchedOracle(cfg.schedOracle);
        for (auto &cu : cus)
            cu->setSchedOracle(cfg.schedOracle);
        if (monitor)
            monitor->setSchedOracle(cfg.schedOracle);
    }

    setupShardDomains();
}

void
GpuSystem::setupShardDomains()
{
    if (cfg.shards <= 1)
        return;

    const mem::L2Config &l2 = cfg.gpu.l2;
    const mem::DramConfig &dr = cfg.gpu.dram;
    std::size_t sets =
        l2.sizeBytes / (std::size_t{l2.assoc} * l2.lineBytes);
    if (l2.banks != dr.channels || l2.lineBytes != dr.interleaveBytes ||
        sets % l2.banks != 0) {
        sim::warnImpl(
            "shards=%u requested but the memory geometry does not "
            "shard (L2 banks=%u DRAM channels=%u, lineBytes=%u "
            "interleaveBytes=%u, sets=%zu): running the serial core",
            cfg.shards, l2.banks, dr.channels, l2.lineBytes,
            dr.interleaveBytes, sets);
        return;
    }

    // Lookahead: every bank->root message is a finish edge carrying
    // the L2 hit latency, so that latency (in ticks) is the minimum
    // upward delay the conservative scheduler may rely on.
    sim::Tick lookahead = l2.hitLatency * l2.clockPeriod;

    // Executor threads: no more than one per domain, and never more
    // than the hardware budget left after the sweep workers took
    // their share. Thread count never changes simulated results, so
    // clamping is purely a scheduling decision.
    unsigned threads = std::min(cfg.shards, l2.banks + 1);
    if (std::getenv("IFP_SHARDS_NO_CLAMP") == nullptr) {
        unsigned hw = std::max(1u, std::thread::hardware_concurrency());
        unsigned ext = std::max(1u, sim::externalConcurrency());
        unsigned budget = std::max(1u, hw / ext);
        if (threads > budget) {
            static std::atomic<bool> noted{false};
            if (!noted.exchange(true)) {
                std::fprintf(stderr,
                             "[shards] clamping in-run executors from "
                             "%u to %u (%u hardware threads / %u "
                             "sweep workers)\n",
                             threads, budget, hw, ext);
            }
            threads = budget;
        }
    }

    scheduler =
        std::make_unique<sim::DomainScheduler>(lookahead, threads);
    sim::EventDomain &root = scheduler->addDomain("root", 0, &eq);
    std::vector<sim::EventDomain *> bank_domains;
    std::vector<sim::EventQueue *> channel_queues;
    std::vector<mem::MemRequestPool *> bank_pools;
    for (unsigned b = 0; b < l2.banks; ++b) {
        sim::EventDomain &d =
            scheduler->addDomain("mem" + std::to_string(b), 1);
        bank_domains.push_back(&d);
        channel_queues.push_back(&d.queue());
        shardPools.push_back(std::make_unique<mem::MemRequestPool>());
        bank_pools.push_back(shardPools.back().get());
    }
    l2cache->bindShardDomains(root, bank_domains, bank_pools);
    dram->bindShardQueues(channel_queues);
    scheduler->start();
}

GpuSystem::~GpuSystem() = default;

mem::Addr
GpuSystem::allocate(std::uint64_t bytes, std::uint64_t align)
{
    ifp_assert(align > 0 && (align & (align - 1)) == 0,
               "alignment must be a power of two");
    heapNext = (heapNext + align - 1) & ~(align - 1);
    mem::Addr base = heapNext;
    heapNext += bytes;
    return base;
}

void
GpuSystem::lintKernel(const isa::Kernel &kernel) const
{
    if (cfg.dispatch.lintBeforeDispatch) {
        analysis::LaunchContext launch = analysis::makeLaunchContext(
            kernel, cfg.gpu.numCus, cfg.gpu.simdsPerCu,
            cfg.gpu.wavefrontsPerSimd, cfg.gpu.ldsBytesPerCu);
        analysis::Report report = analysis::runLint(kernel, launch);
        if (!report.diagnostics.empty()) {
            std::ostringstream os;
            analysis::printReport(report, os);
            sim::warnImpl("pre-dispatch lint of kernel '%s':\n%s",
                          kernel.name.c_str(), os.str().c_str());
        }
        if (!report.clean(cfg.dispatch.lintWerror)) {
            throw std::invalid_argument(
                "kernel '" + kernel.name +
                "' failed pre-dispatch lint (see warnings above)");
        }
    }
}

void
GpuSystem::kernelEnqueued(const gpu::DispatchContext &)
{
    ++arrivedContexts;
}

void
GpuSystem::kernelCompleted(const gpu::DispatchContext &)
{
    if (dispatch->allContextsComplete()) {
        kernelDone = true;
        completionTick = eq.curTick();
    }
}

int
GpuSystem::enqueueKernel(const isa::Kernel &kernel,
                         const gpu::LaunchOptions &opts)
{
    lintKernel(kernel);
    int ctx_id = dispatch->createContext(kernel, opts, eq.curTick());
    dispatch->contextArrived(ctx_id);
    return ctx_id;
}

int
GpuSystem::enqueueKernelAt(const isa::Kernel &kernel,
                           const gpu::LaunchOptions &opts, sim::Tick at)
{
    ifp_assert(at >= eq.curTick(),
               "kernel arrival scheduled in the past");
    lintKernel(kernel);
    int ctx_id = dispatch->createContext(kernel, opts, at);
    eq.schedule(at, [this, ctx_id] {
        dispatch->contextArrived(ctx_id);
    }, "kernel.arrival");
    return ctx_id;
}

RunResult
GpuSystem::run(const isa::Kernel &kernel, const Validator &validator)
{
    enqueueKernel(kernel);
    return finishRun(validator);
}

ServeResult
GpuSystem::serve(const Validator &validator)
{
    ServeResult serve_result;
    serve_result.run = finishRun(validator);

    sim::Tick period = cfg.gpu.clockPeriod;
    for (const auto &ctx : dispatch->dispatchContexts()) {
        KernelRunStat ks;
        ks.ctxId = ctx->id;
        ks.kernelName = ctx->kernel.name;
        ks.tenant = ctx->opts.tenant;
        ks.priority = ctx->opts.priority;
        ks.completed = ctx->state == gpu::ContextState::Complete;
        ks.enqueueCycle = ctx->enqueueTick / period;
        ks.admitCycle = ctx->admitTick / period;
        if (ctx->firstDispatchTick != sim::maxTick)
            ks.firstDispatchCycle = ctx->firstDispatchTick / period;
        if (ks.completed) {
            ks.completeCycle = ctx->completeTick / period;
            ks.turnaroundCycles =
                (ctx->completeTick - ctx->enqueueTick) / period;
        }
        if (ctx->admitTick >= ctx->enqueueTick &&
            ctx->state != gpu::ContextState::Created &&
            ctx->state != gpu::ContextState::Queued) {
            ks.queueCycles =
                (ctx->admitTick - ctx->enqueueTick) / period;
        }
        if (ctx->opts.deadlineCycles > 0) {
            ks.sloMissed = !ks.completed ||
                           ks.turnaroundCycles > ctx->opts.deadlineCycles;
        }
        ks.dispatches = ctx->dispatches;
        ks.swapOuts = ctx->swapOuts;
        ks.swapIns = ctx->swapIns;
        ks.preemptions = ctx->preemptions;
        ks.cusGained = ctx->cusGained;
        ks.cusLost = ctx->cusLost;
        ks.wgsCompleted = ctx->completed;
        ks.numWgs = ctx->numWgs;
        serve_result.kernels.push_back(std::move(ks));
    }
    return serve_result;
}

RunResult
GpuSystem::finishRun(const Validator &validator)
{
    RunResult result;
    kernelDone = dispatch->allContextsComplete();
    scheduleFaults();

    const sim::Tick window =
        cfg.deadlockWindowCycles * cfg.gpu.clockPeriod;
    const sim::Tick budget = cfg.maxCycles * cfg.gpu.clockPeriod;

    // arrivedContexts keeps serving runs with sparse arrivals from
    // tripping the deadlock detector: a kernel arriving inside a
    // window is progress. Constant (one) in single-kernel runs, so
    // legacy deltas are unchanged.
    auto progress_sig = [this] {
        return store.mutations() + dispatch->numCompleted() +
               static_cast<std::uint64_t>(
                   dispatch->stats().scalar("swapOuts").value()) +
               static_cast<std::uint64_t>(
                   dispatch->stats().scalar("swapIns").value()) +
               arrivedContexts;
    };

    LivenessOracle oracle(cfg.liveness, cfg.gpu.clockPeriod,
                          cfg.deadlockWindowCycles);

    std::uint64_t last_sig = progress_sig();
    sim::Tick next_check = window;
    while (!kernelDone) {
        if (scheduler)
            scheduler->runUntil(next_check);
        else
            eq.simulate(next_check);
        if (kernelDone)
            break;
        // Sample at the window boundary, not curTick(): the queue's
        // clock only advances when events execute, so a fully asleep
        // machine would otherwise freeze the oracle's held-clocks.
        // In shard mode the executors are parked between runUntil()
        // calls, so the probes read a quiescent, serial-consistent
        // machine state.
        oracle.sample(next_check, waiterProbes(), retryActivity());
        if (scheduler ? scheduler->allIdle() : eq.empty()) {
            // Nothing can ever happen again: stranded WGs.
            result.deadlocked = true;
            result.verdict = oracle.finalizeStall(true);
            break;
        }
        std::uint64_t sig = progress_sig();
        if (sig == last_sig) {
            result.deadlocked = true;
            result.verdict = oracle.finalizeStall(false);
            break;
        }
        last_sig = sig;
        next_check += window;
        if (next_check > budget) {
            // Simulation budget exhausted: report as non-completion.
            break;
        }
    }

    if (kernelDone)
        result.verdict = Verdict::Complete;
    else if (!result.deadlocked)
        result.verdict = Verdict::Exhausted;
    result.lostWakeups = oracle.lostWakeups();

    if (kernelDone) {
        result.completed = true;
        result.runTicks = completionTick;
    } else {
        result.runTicks = eq.curTick();
    }
    result.gpuCycles = result.runTicks / cfg.gpu.clockPeriod;

    // Close the stall-reason books (completed WGs already closed at
    // their completeTick; survivors are charged up to the run's end)
    // and publish the per-reason totals as dispatcher stats.
    dispatch->accumulateWgCycleStats(result.runTicks);

    if (scheduler) {
        // Executors are parked; fold the bank/channel-context stat
        // shadows into the root Scalars before anyone reads them.
        l2cache->foldShardStats();
        dram->foldShardStats();
    }

    harvest(result);

    if (result.completed && validator) {
        std::string err;
        result.validated = validator(store, err);
        result.validationError = std::move(err);
    }
    return result;
}

unsigned
GpuSystem::resolveCuId(int cu_id) const
{
    return cu_id >= 0 ? static_cast<unsigned>(cu_id)
                      : cfg.gpu.numCus - 1;
}

void
GpuSystem::scheduleFaults()
{
    faultsApplied = 0;
    if (cfg.oversubscribed) {
        static std::atomic<bool> deprecationWarned{false};
        if (!deprecationWarned.exchange(true)) {
            sim::warnImpl(
                "RunConfig::oversubscribed / cuLossMicroseconds / "
                "cuRestoreMicroseconds / offlineCuId are deprecated; "
                "use RunConfig::faultPlan = FaultPlan::cuLoss(lossUs, "
                "restoreUs, cuId)");
        }
        // Forwarding shim: the quartet folds into the cuLoss()
        // factory, but the events are scheduled exactly as before the
        // fault engine existed (same descriptions, no fault counting,
        // no FaultInjected trace) so historic runs stay byte-identical.
        FaultPlan legacy = FaultPlan::cuLoss(cfg.cuLossMicroseconds,
                                             cfg.cuRestoreMicroseconds,
                                             cfg.offlineCuId);
        for (const FaultEvent &ev : legacy.events) {
            unsigned victim = resolveCuId(ev.cuId);
            sim::Tick when = sim::ticksFromMicroseconds(ev.atUs);
            if (ev.kind == FaultKind::CuOffline) {
                eq.schedule(when, [this, victim] {
                    dispatch->offlineCu(victim);
                }, "cuLoss");
            } else {
                eq.schedule(when, [this, victim] {
                    dispatch->onlineCu(victim);
                }, "cuRestore");
            }
        }
    }
    for (const FaultEvent &ev : cfg.faultPlan.events) {
        sim::Tick at = sim::ticksFromMicroseconds(ev.atUs);
        eq.schedule(at, [this, ev] { applyFault(ev, true); },
                    "fault.begin");
        // CpStall needs no end edge: the CP checks the stall deadline
        // itself. CU churn events are instantaneous by definition.
        if (faultKindWindowed(ev.kind) &&
            ev.kind != FaultKind::CpStall) {
            sim::Tick end =
                sim::ticksFromMicroseconds(ev.atUs + ev.durationUs);
            eq.schedule(end, [this, ev] { applyFault(ev, false); },
                        "fault.end");
        }
    }
}

void
GpuSystem::applyFault(const FaultEvent &ev, bool begin)
{
    if (begin) {
        ++faultsApplied;
        sim::emitTrace(sink.get(), eq.curTick(),
                       sim::TraceEventKind::FaultInjected, -1, ev.cuId,
                       sim::StallReason::Running, ev.param,
                       static_cast<std::int64_t>(ev.kind));
    }
    switch (ev.kind) {
      case FaultKind::CuOffline:
        dispatch->offlineCu(resolveCuId(ev.cuId));
        return;
      case FaultKind::CuOnline:
        dispatch->onlineCu(resolveCuId(ev.cuId));
        return;
      case FaultKind::SyncMonPressure:
        // Monitor faults are no-ops for policies without a SyncMon.
        if (monitor) {
            begin ? monitor->beginCapacityPressure()
                  : monitor->endCapacityPressure();
        }
        return;
      case FaultKind::LogJam:
        begin ? cp->beginLogJam() : cp->endLogJam();
        return;
      case FaultKind::DropResume:
        if (monitor) {
            begin ? monitor->beginResumeDrop()
                  : monitor->endResumeDrop();
        }
        return;
      case FaultKind::DelayResume:
        if (monitor) {
            if (begin)
                monitor->beginResumeDelay(ev.param);
            else
                monitor->endResumeDelay();
        }
        return;
      case FaultKind::CpStall:
        cp->stallFirmware(
            eq.curTick() +
            sim::ticksFromMicroseconds(ev.durationUs));
        return;
    }
}

std::vector<WaiterProbe>
GpuSystem::waiterProbes() const
{
    std::vector<WaiterProbe> probes;
    for (const auto &wg : dispatch->workgroups()) {
        if (wg->state == gpu::WgState::Done || !wg->hasWaitCond)
            continue;
        WaiterProbe probe;
        probe.wgId = wg->id;
        probe.addr = wg->waitAddr;
        probe.expected = wg->waitExpected;
        probe.conditionHolds =
            store.read(wg->waitAddr, 8) == wg->waitExpected;
        probes.push_back(probe);
    }
    return probes;
}

std::uint64_t
GpuSystem::retryActivity() const
{
    // Activity that does not advance the progress signature (failed
    // compares mutate nothing) but proves the machine is executing:
    // waiting-atomic retries, wait re-arms, sleep backoff spins and
    // stall-timeout wakeups. Baseline's plain-atomic busy wait is
    // deliberately absent — a spinning Baseline machine is the
    // paper's deadlock, not a livelock of the added mechanisms.
    std::uint64_t activity = 0;
    for (const auto &cu : cus) {
        const sim::StatGroup &s = cu->stats();
        activity += static_cast<std::uint64_t>(
            s.scalar("waitingAtomics").value());
        activity += static_cast<std::uint64_t>(
            s.scalar("armWaits").value());
        activity += static_cast<std::uint64_t>(
            s.scalar("sleeps").value());
        activity += static_cast<std::uint64_t>(
            s.scalar("stallRescues").value());
    }
    if (monitor) {
        const sim::StatGroup &s = monitor->stats();
        activity += static_cast<std::uint64_t>(
            s.scalar("logFullRetries").value());
        activity += static_cast<std::uint64_t>(
            s.scalar("stallTimeouts").value());
    }
    return activity;
}

void
GpuSystem::harvest(RunResult &result) const
{
    for (const auto &cu : cus) {
        const sim::StatGroup &s = cu->stats();
        result.instructions += static_cast<std::uint64_t>(
            s.scalar("instructions").value());
        result.atomicInstructions += static_cast<std::uint64_t>(
            s.scalar("atomics").value());
        result.waitingAtomics += static_cast<std::uint64_t>(
            s.scalar("waitingAtomics").value());
        result.armWaits += static_cast<std::uint64_t>(
            s.scalar("armWaits").value());
        result.sleeps += static_cast<std::uint64_t>(
            s.scalar("sleeps").value());
    }

    sim::Tick period = cfg.gpu.clockPeriod;
    sim::Tick first_done = sim::maxTick, last_done = 0;
    for (const auto &wg : dispatch->workgroups()) {
        if (wg->completeTick > 0) {
            first_done = std::min(first_done, wg->completeTick);
            last_done = std::max(last_done, wg->completeTick);
        }
        sim::Tick end = wg->completeTick > 0 ? wg->completeTick
                                             : result.runTicks;
        sim::Tick exec =
            end > wg->dispatchTick ? end - wg->dispatchTick : 0;
        sim::Tick waiting = wg->waitingTicks;
        if (wg->waitingWfs > 0 && end > wg->waitStartTick)
            waiting += end - wg->waitStartTick;
        result.totalWgExecCycles +=
            static_cast<double>(exec) / period;
        result.totalWgWaitCycles +=
            static_cast<double>(std::min(waiting, exec)) / period;
        result.contextSaves += wg->contextSaves;
        result.contextRestores += wg->contextRestores;
        result.maxWgWaitCycles = std::max(
            result.maxWgWaitCycles,
            static_cast<sim::Cycles>(waiting / period));
    }
    if (last_done > first_done) {
        result.wgCompletionSpreadCycles =
            (last_done - first_done) / period;
    }

    // Stall-reason breakdown published by accumulateWgCycleStats().
    // Per-WG lifetimes run from creation (launch, tick 0) to
    // completion or end of run, so the breakdown partitions them.
    if (const sim::Vector *v =
            dispatch->stats().tryVector("wgCycles")) {
        for (std::size_t r = 0;
             r < std::min<std::size_t>(v->size(),
                                       sim::numStallReasons); ++r) {
            result.wgCycleBreakdown[r] = v->at(r);
        }
    }
    for (const auto &wg : dispatch->workgroups()) {
        sim::Tick end = wg->completeTick > 0 ? wg->completeTick
                                             : result.runTicks;
        result.wgLifetimeCycles += static_cast<double>(end) / period;
    }

    result.forcedPreemptions = static_cast<std::uint64_t>(
        dispatch->stats().scalar("forcedPreemptions").value());
    result.cpRescues = cp->rescueResumes();
    result.maxLogEntries = cp->monitorLog().maxSize();
    result.maxSpilledConds = cp->maxSpilledConditions();
    result.maxContextStoreBytes = cp->maxContextStoreBytes();
    result.maxMonitoredLines = l2cache->maxMonitored();

    if (monitor) {
        const sim::StatGroup &s = monitor->stats();
        result.condResumesAll = static_cast<std::uint64_t>(
            s.scalar("resumesAll").value());
        result.condResumesOne = static_cast<std::uint64_t>(
            s.scalar("resumesOne").value());
        result.spills = static_cast<std::uint64_t>(
            s.scalar("spills").value());
        result.logFullRetries = static_cast<std::uint64_t>(
            s.scalar("logFullRetries").value());
        result.maxConditions = monitor->maxConditions();
        result.maxWaiters = monitor->maxWaiters();
        result.droppedResumes = static_cast<std::uint64_t>(
            s.scalar("droppedResumes").value());
        result.delayedResumes = static_cast<std::uint64_t>(
            s.scalar("delayedResumes").value());
        result.predictedResumes = static_cast<std::uint64_t>(
            s.scalar("predictedResumes").value());
        result.mispredictedResumes = static_cast<std::uint64_t>(
            s.scalar("mispredictedResumes").value());
    }

    result.hostEvents =
        scheduler ? scheduler->numExecuted() : eq.numExecuted();
    result.memRequests = pool.totalAllocations();
    for (const auto &p : shardPools)
        result.memRequests += p->totalAllocations();

    result.injectedFaults = faultsApplied;
    for (const auto &rec : dispatch->cuRecoveries()) {
        FaultRecovery recovery;
        recovery.restoreCycle = rec.restoreTick / period;
        recovery.cyclesToFirstSwapIn =
            (rec.firstSwapInTick - rec.restoreTick) / period;
        result.faultRecoveries.push_back(recovery);
    }
}

void
GpuSystem::dumpStats(std::ostream &os) const
{
    dram->stats().dump(os);
    l2cache->stats().dump(os);
    dma->stats().dump(os);
    cp->stats().dump(os);
    dispatch->stats().dump(os);
    for (const auto &l1 : l1s)
        l1->stats().dump(os);
    for (const auto &cu : cus)
        cu->stats().dump(os);
    if (monitor)
        monitor->stats().dump(os);
}

void
GpuSystem::forEachStatGroup(
    const std::function<void(const sim::StatGroup &)> &fn) const
{
    fn(dram->stats());
    fn(l2cache->stats());
    fn(dma->stats());
    fn(cp->stats());
    fn(dispatch->stats());
    for (const auto &l1 : l1s)
        fn(l1->stats());
    for (const auto &cu : cus)
        fn(cu->stats());
    if (monitor)
        fn(monitor->stats());
}

} // namespace ifp::core
