#include "core/fault_plan.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace ifp::core {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::CuOffline: return "cu-offline";
      case FaultKind::CuOnline: return "cu-online";
      case FaultKind::SyncMonPressure: return "syncmon-pressure";
      case FaultKind::LogJam: return "log-jam";
      case FaultKind::DropResume: return "drop-resume";
      case FaultKind::DelayResume: return "delay-resume";
      case FaultKind::CpStall: return "cp-stall";
    }
    return "?";
}

bool
faultKindWindowed(FaultKind kind)
{
    switch (kind) {
      case FaultKind::CuOffline:
      case FaultKind::CuOnline:
        return false;
      case FaultKind::SyncMonPressure:
      case FaultKind::LogJam:
      case FaultKind::DropResume:
      case FaultKind::DelayResume:
      case FaultKind::CpStall:
        return true;
    }
    return false;
}

int
FaultPlan::maxCuId() const
{
    int max_id = -1;
    for (const FaultEvent &ev : events) {
        if (ev.kind == FaultKind::CuOffline ||
            ev.kind == FaultKind::CuOnline) {
            max_id = std::max(max_id, ev.cuId);
        }
    }
    return max_id;
}

FaultPlan
FaultPlan::cuLoss(std::uint64_t loss_us, std::uint64_t restore_us,
                  int cu_id)
{
    FaultPlan plan;
    plan.name = "cuLoss";
    plan.events.push_back(
        FaultEvent{FaultKind::CuOffline, loss_us, 0, cu_id, 0});
    if (restore_us > loss_us) {
        plan.events.push_back(
            FaultEvent{FaultKind::CuOnline, restore_us, 0, cu_id, 0});
    }
    return plan;
}

FaultPlan
generateChaosPlan(const ChaosSpec &spec, std::uint64_t seed)
{
    ifp_assert(spec.numCus > 0, "chaos plan for a zero-CU machine");
    ifp_assert(spec.horizonUs > spec.startUs,
               "chaos horizon before its start");
    sim::Rng rng(seed);

    FaultPlan plan;
    plan.name = "chaos-" + std::to_string(seed);
    plan.seed = seed;

    // CU churn: random (cu, offline window) pairs. A pair is dropped
    // when its window would overlap enough other offline windows on
    // distinct CUs to leave no CU online — the generator only emits
    // survivable plans.
    struct Churn
    {
        unsigned cu;
        std::uint64_t from;
        std::uint64_t to;
    };
    std::vector<Churn> churn;
    for (unsigned i = 0; i < spec.churnPairs; ++i) {
        Churn c;
        c.cu = static_cast<unsigned>(rng.uniform(spec.numCus));
        c.from = rng.range(spec.startUs, spec.horizonUs);
        c.to = c.from + rng.range(spec.minOfflineUs, spec.maxOfflineUs);

        bool overlap_self = false;
        std::vector<unsigned> overlapping;
        for (const Churn &o : churn) {
            if (c.from >= o.to || c.to <= o.from)
                continue;
            if (o.cu == c.cu) {
                // Overlapping windows on one CU make the pairing of
                // offline and online edges ambiguous; keep the first.
                overlap_self = true;
                break;
            }
            if (std::find(overlapping.begin(), overlapping.end(),
                          o.cu) == overlapping.end())
                overlapping.push_back(o.cu);
        }
        if (overlap_self)
            continue;
        if (overlapping.size() + 2 > spec.numCus)
            continue;  // would leave no CU online
        churn.push_back(c);
    }
    for (const Churn &c : churn) {
        plan.events.push_back({FaultKind::CuOffline, c.from, 0,
                               static_cast<int>(c.cu), 0});
        plan.events.push_back({FaultKind::CuOnline, c.to, 0,
                               static_cast<int>(c.cu), 0});
    }

    auto window = [&](FaultKind kind, double prob, std::uint64_t min_dur,
                      std::uint64_t max_dur, std::uint64_t param) {
        // Consume the randomness unconditionally so each fault class
        // draws from a fixed position in the stream.
        double roll = rng.real();
        std::uint64_t at = rng.range(spec.startUs, spec.horizonUs);
        std::uint64_t dur = rng.range(min_dur, max_dur);
        if (roll < prob)
            plan.events.push_back({kind, at, dur, -1, param});
    };
    window(FaultKind::SyncMonPressure, spec.pressureProb, 20, 60, 0);
    window(FaultKind::LogJam, spec.logJamProb, 10, 30, 0);
    window(FaultKind::DropResume, spec.dropResumeProb, 10, 30, 0);
    window(FaultKind::DelayResume, spec.delayResumeProb, 10, 30,
           rng.range(2'000, 16'000));
    window(FaultKind::CpStall, spec.cpStallProb, 5, 20, 0);

    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.atUs < b.atUs;
                     });
    return plan;
}

FaultPlan
faultPlanPreset(const std::string &name)
{
    FaultPlan plan;
    plan.name = name;
    if (name == "legacy-cu-loss") {
        // The paper's §VI scenario as a plan: lose the last CU at
        // 50 us, never restore it.
        plan.events = {{FaultKind::CuOffline, 50, 0, -1, 0}};
    } else if (name == "cu-churn") {
        plan.events = {{FaultKind::CuOffline, 10, 0, -1, 0},
                       {FaultKind::CuOnline, 40, 0, -1, 0},
                       {FaultKind::CuOffline, 50, 0, 0, 0},
                       {FaultKind::CuOffline, 60, 0, -1, 0},
                       {FaultKind::CuOnline, 80, 0, 0, 0},
                       {FaultKind::CuOnline, 90, 0, -1, 0}};
    } else if (name == "syncmon-pressure") {
        plan.events = {{FaultKind::SyncMonPressure, 10, 60, -1, 0}};
    } else if (name == "log-jam") {
        plan.events = {{FaultKind::SyncMonPressure, 10, 80, -1, 0},
                       {FaultKind::LogJam, 20, 40, -1, 0}};
    } else if (name == "dropped-resume") {
        plan.events = {{FaultKind::DropResume, 5, 40, -1, 0}};
    } else if (name == "delayed-resume") {
        plan.events = {{FaultKind::DelayResume, 5, 40, -1, 8'000}};
    } else if (name == "cp-stall") {
        plan.events = {{FaultKind::CuOffline, 10, 0, -1, 0},
                       {FaultKind::CpStall, 15, 30, -1, 0},
                       {FaultKind::CuOnline, 60, 0, -1, 0}};
    } else if (name == "kitchen-sink") {
        plan.events = {{FaultKind::SyncMonPressure, 5, 80, -1, 0},
                       {FaultKind::CuOffline, 10, 0, -1, 0},
                       {FaultKind::LogJam, 20, 30, -1, 0},
                       {FaultKind::DropResume, 25, 25, -1, 0},
                       {FaultKind::CpStall, 30, 20, -1, 0},
                       {FaultKind::CuOnline, 70, 0, -1, 0},
                       {FaultKind::DelayResume, 75, 20, -1, 8'000}};
    } else {
        ifp_fatal("unknown fault-plan preset '%s' (presets: %s)",
                  name.c_str(), [] {
                      std::string all;
                      for (const std::string &p : faultPlanPresetNames())
                          all += (all.empty() ? "" : ", ") + p;
                      return all;
                  }().c_str());
    }
    return plan;
}

std::vector<std::string>
faultPlanPresetNames()
{
    return {"legacy-cu-loss", "cu-churn",       "syncmon-pressure",
            "log-jam",        "dropped-resume", "delayed-resume",
            "cp-stall",       "kitchen-sink"};
}

std::string
writeFaultPlan(const FaultPlan &plan)
{
    std::ostringstream os;
    os << "plan " << plan.name << "\n";
    if (plan.seed != 0)
        os << "seed " << plan.seed << "\n";
    for (const FaultEvent &ev : plan.events) {
        os << faultKindName(ev.kind) << " at=" << ev.atUs;
        if (faultKindWindowed(ev.kind))
            os << " dur=" << ev.durationUs;
        else
            os << " cu=" << ev.cuId;
        if (ev.kind == FaultKind::DelayResume)
            os << " cycles=" << ev.param;
        os << "\n";
    }
    return os.str();
}

namespace {

std::optional<FaultKind>
kindFromName(const std::string &name)
{
    for (FaultKind kind :
         {FaultKind::CuOffline, FaultKind::CuOnline,
          FaultKind::SyncMonPressure, FaultKind::LogJam,
          FaultKind::DropResume, FaultKind::DelayResume,
          FaultKind::CpStall}) {
        if (name == faultKindName(kind))
            return kind;
    }
    return std::nullopt;
}

} // anonymous namespace

std::optional<FaultPlan>
parseFaultPlan(const std::string &text, std::string &error)
{
    FaultPlan plan;
    plan.name = "parsed";
    std::istringstream is(text);
    std::string line;
    unsigned line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (std::size_t hash = line.find('#');
            hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word))
            continue;  // blank / comment-only line

        auto fail = [&](const std::string &what) {
            error = "line " + std::to_string(line_no) + ": " + what;
            return std::nullopt;
        };

        if (word == "plan") {
            if (!(ls >> plan.name))
                return fail("missing plan name");
            continue;
        }
        if (word == "seed") {
            if (!(ls >> plan.seed))
                return fail("missing seed value");
            continue;
        }

        std::optional<FaultKind> kind = kindFromName(word);
        if (!kind)
            return fail("unknown fault kind '" + word + "'");

        FaultEvent ev;
        ev.kind = *kind;
        bool have_at = false;
        std::string field;
        while (ls >> field) {
            std::size_t eq = field.find('=');
            if (eq == std::string::npos)
                return fail("expected key=value, got '" + field + "'");
            std::string key = field.substr(0, eq);
            std::string value = field.substr(eq + 1);
            std::istringstream vs(value);
            if (key == "at") {
                if (!(vs >> ev.atUs))
                    return fail("bad at= value '" + value + "'");
                have_at = true;
            } else if (key == "dur") {
                if (!(vs >> ev.durationUs))
                    return fail("bad dur= value '" + value + "'");
            } else if (key == "cu") {
                if (!(vs >> ev.cuId))
                    return fail("bad cu= value '" + value + "'");
            } else if (key == "cycles") {
                if (!(vs >> ev.param))
                    return fail("bad cycles= value '" + value + "'");
            } else {
                return fail("unknown key '" + key + "'");
            }
        }
        if (!have_at)
            return fail("missing at=");
        if (faultKindWindowed(ev.kind) && ev.durationUs == 0)
            return fail(std::string(faultKindName(ev.kind)) +
                        " needs dur=");
        plan.events.push_back(ev);
    }
    error.clear();
    return plan;
}

} // namespace ifp::core
