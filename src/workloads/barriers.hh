/**
 * @file
 * HeteroSync inter-WG tree barriers.
 *
 * All variants run `iters` barrier rounds with per-lane work between
 * rounds. The two-level structure groups L WGs per first-level
 * barrier with a second level across group leaders:
 *
 *  - TB_LG     : centralized atomic tree barrier (shared arrival
 *                counters + broadcast release flags).
 *  - LFTB_LG   : decentralized ("lock-free") tree barrier — every WG
 *                owns its arrive/release flags; leaders poll members.
 *  - TBEX_LG / LFTBEX_LG : the LocalExch variants add an LDS data
 *                exchange between wavefronts each round.
 */

#ifndef IFP_WORKLOADS_BARRIERS_HH
#define IFP_WORKLOADS_BARRIERS_HH

#include "workloads/workload.hh"

namespace ifp::workloads {

/** Centralized two-level atomic tree barrier (TB / TBEX). */
class TreeBarrierWorkload : public Workload
{
  public:
    explicit TreeBarrierWorkload(bool exchange) : exchange(exchange) {}

    std::string name() const override;
    std::string abbrev() const override;
    Table2Row characteristics() const override;
    isa::Kernel build(core::GpuSystem &system,
                      const WorkloadParams &params) const override;
    bool validate(const mem::BackingStore &store,
                  const WorkloadParams &params,
                  std::string &error) const override;

  private:
    bool exchange;
    mutable mem::Addr localCountBase = 0;
    mutable mem::Addr localReleaseBase = 0;
    mutable mem::Addr globalBase = 0;   //!< count at +0, release at +64
    mutable mem::Addr doneBase = 0;
};

/** Decentralized two-level tree barrier (LFTB / LFTBEX). */
class LfTreeBarrierWorkload : public Workload
{
  public:
    explicit LfTreeBarrierWorkload(bool exchange) : exchange(exchange)
    {}

    std::string name() const override;
    std::string abbrev() const override;
    Table2Row characteristics() const override;
    isa::Kernel build(core::GpuSystem &system,
                      const WorkloadParams &params) const override;
    bool validate(const mem::BackingStore &store,
                  const WorkloadParams &params,
                  std::string &error) const override;

  private:
    bool exchange;
    mutable mem::Addr arriveBase = 0;        //!< one line per WG
    mutable mem::Addr releaseBase = 0;       //!< one line per WG
    mutable mem::Addr groupArriveBase = 0;   //!< one line per group
    mutable mem::Addr groupReleaseBase = 0;  //!< one line per group
    mutable mem::Addr doneBase = 0;
};

} // namespace ifp::workloads

#endif // IFP_WORKLOADS_BARRIERS_HH
