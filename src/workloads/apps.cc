#include "workloads/apps.hh"

#include "sim/logging.hh"
#include "workloads/sync_emitters.hh"

namespace ifp::workloads {

using isa::KernelBuilder;
using isa::Label;
using mem::AtomicOpcode;

namespace {

constexpr isa::Reg rBucket = 28;
constexpr isa::Reg rSrc = 28;
constexpr isa::Reg rDst = 29;
constexpr isa::Reg rLoAddr = 30;
constexpr isa::Reg rHiAddr = 31;
constexpr isa::Reg rScratch = 26;
constexpr isa::Reg rScratch2 = 27;

isa::Kernel
finishKernel(KernelBuilder &b, const std::string &name,
             const WorkloadParams &params, unsigned vgprs)
{
    isa::Kernel k;
    k.name = name;
    k.code = b.build();
    k.lintSuppressions = b.suppressions();
    k.wiPerWg = params.wiPerWg;
    k.numWgs = params.numWgs;
    k.vgprsPerWi = vgprs;
    k.sgprsPerWf = 32;
    k.ldsBytes = 1024;
    k.maxWgsPerCu = params.wgsPerGroup;
    return k;
}

/**
 * Emit dst = (wgId * mul1 + iter * mul2) % modulus into @p dst.
 * A cheap deterministic mixing function for data-dependent indices.
 */
void
emitMixedIndex(KernelBuilder &b, isa::Reg dst, std::int64_t mul1,
               std::int64_t mul2, unsigned modulus)
{
    b.muli(dst, isa::rWgId, mul1);
    b.muli(rTmp1, rIter, mul2);
    b.add(dst, dst, rTmp1);
    b.remi(dst, dst, static_cast<std::int64_t>(modulus));
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Hash table (HT)
// ---------------------------------------------------------------------

std::string
HashTableWorkload::name() const
{
    return "HashTable";
}

std::string
HashTableWorkload::abbrev() const
{
    return "HT";
}

Table2Row
HashTableWorkload::characteristics() const
{
    Table2Row row;
    row.abbrev = abbrev();
    row.description = "Per-bucket locked hash table (d buckets)";
    row.granularity = "n";
    row.numSyncVars = "d";
    row.condsPerVar = "1";
    row.waitersPerCond = "G/d";
    row.updatesUntilMet = "2";
    return row;
}

isa::Kernel
HashTableWorkload::build(core::GpuSystem &system,
                         const WorkloadParams &params) const
{
    locksBase = system.allocate(buckets * 64ULL);
    countsBase = system.allocate(buckets * 64ULL);

    StyleParams sp{params.style, params.backoffMinCycles,
                   params.backoffMaxCycles, false};

    KernelBuilder b;
    Label l_end = b.label();
    b.bnz(isa::rWfId, l_end);
    emitSyncProlog(b, sp);
    b.movi(rIter, 0);

    Label loop = b.here();
    // bucket = mix(wgId, iter) % buckets
    emitMixedIndex(b, rBucket, 40503, 2654435761LL, buckets);
    b.muli(rSyncAddr, rBucket, 64);
    b.movi(rTmp1, static_cast<std::int64_t>(locksBase));
    b.add(rSyncAddr, rSyncAddr, rTmp1);
    b.muli(rDataAddr, rBucket, 64);
    b.movi(rTmp1, static_cast<std::int64_t>(countsBase));
    b.add(rDataAddr, rDataAddr, rTmp1);

    emitTasAcquire(b, sp, rSyncAddr);
    b.valu(params.csValuCycles);
    b.ld(rDataVal, rDataAddr);
    b.addi(rDataVal, rDataVal, 1);
    b.st(rDataAddr, rDataVal);
    emitTasRelease(b, rSyncAddr);

    b.addi(rIter, rIter, 1);
    b.cmpLti(rTmp0, rIter, params.iters);
    b.bnz(rTmp0, loop);

    b.bind(l_end);
    b.bar();
    b.halt();
    return finishKernel(b, abbrev(), params, 22);
}

bool
HashTableWorkload::validate(const mem::BackingStore &store,
                            const WorkloadParams &params,
                            std::string &error) const
{
    std::int64_t total = 0;
    for (unsigned i = 0; i < buckets; ++i) {
        total += store.read(countsBase + i * 64, 8);
        if (store.read(locksBase + i * 64, 8) != 0) {
            error = "bucket lock " + std::to_string(i) + " left held";
            return false;
        }
    }
    auto expected = static_cast<std::int64_t>(
        std::uint64_t(params.numWgs) * params.iters);
    if (total != expected) {
        error = "inserted " + std::to_string(total) + ", expected " +
                std::to_string(expected);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Bank accounts (BA)
// ---------------------------------------------------------------------

std::string
BankAccountWorkload::name() const
{
    return "BankAccount";
}

std::string
BankAccountWorkload::abbrev() const
{
    return "BA";
}

Table2Row
BankAccountWorkload::characteristics() const
{
    Table2Row row;
    row.abbrev = abbrev();
    row.description = "Two-lock ordered account transfers (d accts)";
    row.granularity = "n";
    row.numSyncVars = "d";
    row.condsPerVar = "1";
    row.waitersPerCond = "2G/d";
    row.updatesUntilMet = "2";
    return row;
}

isa::Kernel
BankAccountWorkload::build(core::GpuSystem &system,
                           const WorkloadParams &params) const
{
    locksBase = system.allocate(accounts * 64ULL);
    balancesBase = system.allocate(accounts * 64ULL);
    for (unsigned i = 0; i < accounts; ++i)
        system.memory().write(balancesBase + i * 64, initialBalance, 8);

    StyleParams sp{params.style, params.backoffMinCycles,
                   params.backoffMaxCycles, false};

    KernelBuilder b;
    Label l_end = b.label();
    b.bnz(isa::rWfId, l_end);
    emitSyncProlog(b, sp);
    b.movi(rIter, 0);

    Label loop = b.here();
    // Pick src/dst accounts; force them distinct.
    emitMixedIndex(b, rSrc, 48611, 2654435761LL, accounts);
    emitMixedIndex(b, rDst, 88711, 40503, accounts);
    {
        Label distinct = b.label();
        b.cmpNe(rTmp0, rSrc, rDst);
        b.bnz(rTmp0, distinct);
        b.addi(rDst, rDst, 1);
        b.remi(rDst, rDst, static_cast<std::int64_t>(accounts));
        b.bind(distinct);
    }
    // Ordered locking: lo = min(src, dst), hi = max(src, dst).
    {
        Label src_lo = b.label();
        Label ordered = b.label();
        b.cmpLt(rTmp0, rSrc, rDst);
        b.bnz(rTmp0, src_lo);
        b.mov(rLoAddr, rDst);
        b.mov(rHiAddr, rSrc);
        b.br(ordered);
        b.bind(src_lo);
        b.mov(rLoAddr, rSrc);
        b.mov(rHiAddr, rDst);
        b.bind(ordered);
    }
    b.muli(rLoAddr, rLoAddr, 64);
    b.movi(rTmp1, static_cast<std::int64_t>(locksBase));
    b.add(rLoAddr, rLoAddr, rTmp1);
    b.muli(rHiAddr, rHiAddr, 64);
    b.add(rHiAddr, rHiAddr, rTmp1);

    emitTasAcquire(b, sp, rLoAddr);
    emitTasAcquire(b, sp, rHiAddr);

    // balances[src] -= 1; balances[dst] += 1
    b.muli(rScratch, rSrc, 64);
    b.movi(rTmp1, static_cast<std::int64_t>(balancesBase));
    b.add(rScratch, rScratch, rTmp1);
    b.ld(rDataVal, rScratch);
    b.subi(rDataVal, rDataVal, 1);
    b.st(rScratch, rDataVal);
    b.muli(rScratch2, rDst, 64);
    b.add(rScratch2, rScratch2, rTmp1);
    b.ld(rDataVal, rScratch2);
    b.addi(rDataVal, rDataVal, 1);
    b.st(rScratch2, rDataVal);
    b.valu(params.csValuCycles);

    emitTasRelease(b, rHiAddr);
    emitTasRelease(b, rLoAddr);

    b.addi(rIter, rIter, 1);
    b.cmpLti(rTmp0, rIter, params.iters);
    b.bnz(rTmp0, loop);

    b.bind(l_end);
    b.bar();
    b.halt();
    return finishKernel(b, abbrev(), params, 26);
}

bool
BankAccountWorkload::validate(const mem::BackingStore &store,
                              const WorkloadParams &params,
                              std::string &error) const
{
    (void)params;
    std::int64_t total = 0;
    for (unsigned i = 0; i < accounts; ++i) {
        total += store.read(balancesBase + i * 64, 8);
        if (store.read(locksBase + i * 64, 8) != 0) {
            error = "account lock " + std::to_string(i) + " left held";
            return false;
        }
    }
    std::int64_t expected =
        initialBalance * static_cast<std::int64_t>(accounts);
    if (total != expected) {
        error = "total balance " + std::to_string(total) +
                ", expected " + std::to_string(expected);
        return false;
    }
    return true;
}

} // namespace ifp::workloads
