#include "workloads/queues.hh"

#include "sim/logging.hh"
#include "workloads/sync_emitters.hh"

namespace ifp::workloads {

using isa::KernelBuilder;
using isa::Label;
using mem::AtomicOpcode;

namespace {

/// @name Family register conventions (survive the emitters)
/// @{
constexpr isa::Reg rExpected = 26;  //!< wait expectation
constexpr isa::Reg rVal = 27;       //!< sequence-advance operand
constexpr isa::Reg rTicket = 28;    //!< consume/source ticket
constexpr isa::Reg rPTick = 29;     //!< produce ticket (pipeline)
constexpr isa::Reg rStage = 30;     //!< pipeline stage id
constexpr isa::Reg rRing = 31;      //!< pipeline ring base scratch
constexpr isa::Reg rIdx = 28;       //!< WSD slot index
constexpr isa::Reg rVict = 29;      //!< WSD victim distance
constexpr isa::Reg rVictim = 30;    //!< WSD victim WG id
/// @}

isa::Kernel
finishKernel(KernelBuilder &b, const std::string &name,
             const WorkloadParams &params, unsigned vgprs)
{
    isa::Kernel k;
    k.name = name;
    k.code = b.build();
    k.lintSuppressions = b.suppressions();
    k.wiPerWg = params.wiPerWg;
    k.numWgs = params.numWgs;
    k.vgprsPerWi = vgprs;
    k.sgprsPerWf = 32;
    k.ldsBytes = 1024;
    k.maxWgsPerCu = params.wgsPerGroup;
    return k;
}

/**
 * Load r[rSyncAddr] with the address of ring slot (ticket % depth):
 * ring_base + (ticket % depth) * 64. Clobbers rTmp1.
 */
void
emitSlotAddr(KernelBuilder &b, isa::Reg ticket_reg, unsigned depth,
             mem::Addr ring_base)
{
    b.remi(rSyncAddr, ticket_reg, static_cast<std::int64_t>(depth));
    b.muli(rSyncAddr, rSyncAddr, 64);
    b.movi(rTmp1, static_cast<std::int64_t>(ring_base));
    b.add(rSyncAddr, rSyncAddr, rTmp1);
}

} // anonymous namespace

// ---------------------------------------------------------------------
// MPMC broker queue (MPMCQ)
// ---------------------------------------------------------------------

std::string
MpmcQueueWorkload::name() const
{
    return "MpmcQueue";
}

std::string
MpmcQueueWorkload::abbrev() const
{
    return "MPMCQ";
}

Table2Row
MpmcQueueWorkload::characteristics() const
{
    Table2Row row;
    row.abbrev = abbrev();
    row.description = "Bounded MPMC broker queue (q slot-sequence vars)";
    row.granularity = "n";
    row.numSyncVars = "q+2";
    row.condsPerVar = "GI/q";
    row.waitersPerCond = "1";
    row.updatesUntilMet = "1-2";
    return row;
}

unsigned
MpmcQueueWorkload::numProducers(unsigned num_wgs) const
{
    unsigned p = num_wgs * producerShare / (producerShare + consumerShare);
    return std::max(1u, std::min(num_wgs - 1, p));
}

isa::Kernel
MpmcQueueWorkload::build(core::GpuSystem &system,
                         const WorkloadParams &params) const
{
    ifp_assert(params.numWgs >= 2,
               "MPMCQ needs at least one producer and one consumer");
    const unsigned producers = numProducers(params.numWgs);
    const auto total = static_cast<std::int64_t>(totalItems(params));

    slotsBase = system.allocate(depth * 64ULL);
    ticketsBase = system.allocate(128);
    checksumBase = system.allocate(64);
    // Slot protocol: slot i starts its sequence at i, so the producer
    // of ticket t owns slot t % depth the moment seq == t.
    for (unsigned i = 0; i < depth; ++i)
        system.memory().write(slotsBase + i * 64ULL, i, 8);

    StyleParams sp{params.style, params.backoffMinCycles,
                   params.backoffMaxCycles, false};

    KernelBuilder b;
    Label l_end = b.label();
    b.bnz(isa::rWfId, l_end);
    emitSyncProlog(b, sp);

    Label consumer = b.label();
    b.cmpLti(rTmp0, isa::rWgId, producers);
    b.bz(rTmp0, consumer);

    // Producer: t = tail++; overshoot past the item total ends the
    // role (and makes the final tail value exact: total + producers).
    Label prod_loop = b.here();
    Label prod_done = b.label();
    b.movi(rTmp1, static_cast<std::int64_t>(ticketsBase));
    b.atom(rTicket, AtomicOpcode::Add, rTmp1, 0, rOne);
    b.cmpLti(rTmp0, rTicket, total);
    b.bz(rTmp0, prod_done);
    emitSlotAddr(b, rTicket, depth, slotsBase);
    b.mov(rExpected, rTicket);
    emitWaitSeqEq(b, sp, rSyncAddr, 0, rExpected);
    b.valu(params.csValuCycles);
    // The payload store shares the slot line with the monitored
    // sequence word but carries no wait condition: the releasing
    // sequence exchange below is the notification.
    b.suppressLint("lost-wakeup",
                   "slot payload store shares the line with the "
                   "sequence word; waits are on the sequence value, "
                   "which only the releasing exchange advances");
    b.st(rSyncAddr, rTicket, 8);
    b.addi(rVal, rTicket, 1);
    b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0, rVal, 0,
           /*acquire=*/false, /*release=*/true);
    b.br(prod_loop);
    b.bind(prod_done);
    b.br(l_end);

    // Consumer: t = head++; waits for seq == t+1, folds the payload
    // into the checksum and recycles the slot for ticket t + depth.
    b.bind(consumer);
    Label cons_loop = b.here();
    Label cons_done = b.label();
    b.movi(rTmp1, static_cast<std::int64_t>(ticketsBase));
    b.atom(rTicket, AtomicOpcode::Add, rTmp1, 64, rOne);
    b.cmpLti(rTmp0, rTicket, total);
    b.bz(rTmp0, cons_done);
    emitSlotAddr(b, rTicket, depth, slotsBase);
    b.addi(rExpected, rTicket, 1);
    emitWaitSeqEq(b, sp, rSyncAddr, 0, rExpected);
    b.ld(rDataVal, rSyncAddr, 8);
    b.movi(rTmp1, static_cast<std::int64_t>(checksumBase));
    b.atom(rAtomResult, AtomicOpcode::Add, rTmp1, 0, rDataVal);
    b.addi(rVal, rTicket, static_cast<std::int64_t>(depth));
    b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0, rVal, 0,
           /*acquire=*/false, /*release=*/true);
    b.br(cons_loop);
    b.bind(cons_done);

    b.bind(l_end);
    b.bar();
    b.halt();
    return finishKernel(b, abbrev(), params, 24);
}

bool
MpmcQueueWorkload::validate(const mem::BackingStore &store,
                            const WorkloadParams &params,
                            std::string &error) const
{
    const unsigned producers = numProducers(params.numWgs);
    const unsigned consumers = params.numWgs - producers;
    const auto total = static_cast<std::int64_t>(totalItems(params));

    std::int64_t tail = store.read(ticketsBase, 8);
    if (tail != total + producers) {
        error = "tail ticket " + std::to_string(tail) + ", expected " +
                std::to_string(total + producers);
        return false;
    }
    std::int64_t head = store.read(ticketsBase + 64, 8);
    if (head != total + consumers) {
        error = "head ticket " + std::to_string(head) + ", expected " +
                std::to_string(total + consumers);
        return false;
    }
    std::int64_t sum = store.read(checksumBase, 8);
    std::int64_t expected = total * (total - 1) / 2;
    if (sum != expected) {
        error = "checksum " + std::to_string(sum) + ", expected " +
                std::to_string(expected);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Multi-stage pipeline (PIPE)
// ---------------------------------------------------------------------

std::string
PipelineWorkload::name() const
{
    return "Pipeline";
}

std::string
PipelineWorkload::abbrev() const
{
    return "PIPE";
}

Table2Row
PipelineWorkload::characteristics() const
{
    Table2Row row;
    row.abbrev = abbrev();
    row.description = "s-stage pipeline over bounded rings (empty/full)";
    row.granularity = "n";
    row.numSyncVars = "(s-1)q+2s";
    row.condsPerVar = "GI/q";
    row.waitersPerCond = "1";
    row.updatesUntilMet = "1-2";
    return row;
}

unsigned
PipelineWorkload::stageWgs(unsigned s, unsigned num_wgs) const
{
    return num_wgs / stages + (s < num_wgs % stages ? 1 : 0);
}

isa::Kernel
PipelineWorkload::build(core::GpuSystem &system,
                        const WorkloadParams &params) const
{
    ifp_assert(stages >= 2, "a pipeline needs at least two stages");
    ifp_assert(params.numWgs >= stages,
               "PIPE needs at least one WG per stage");
    const unsigned rings = stages - 1;
    const auto total = static_cast<std::int64_t>(totalItems(params));
    const std::uint64_t ring_stride = std::uint64_t(depth) * 64;

    ringsBase = system.allocate(rings * ring_stride);
    ticketsBase = system.allocate(rings * 128ULL);
    sourceBase = system.allocate(64);
    checksumBase = system.allocate(64);
    for (unsigned r = 0; r < rings; ++r)
        for (unsigned i = 0; i < depth; ++i)
            system.memory().write(ringsBase + r * ring_stride + i * 64,
                                  i, 8);

    StyleParams sp{params.style, params.backoffMinCycles,
                   params.backoffMaxCycles, false};

    KernelBuilder b;
    Label l_end = b.label();
    b.bnz(isa::rWfId, l_end);
    emitSyncProlog(b, sp);
    b.remi(rStage, isa::rWgId, static_cast<std::int64_t>(stages));

    Label source_stage = b.label();
    Label sink_stage = b.label();
    b.bz(rStage, source_stage);
    b.cmpEqi(rTmp0, rStage, static_cast<std::int64_t>(stages - 1));
    b.bnz(rTmp0, sink_stage);

    // Interior stage s: consume ring s-1, transform (+1), forward
    // into ring s. The ring bases are register-computed so one code
    // body serves every interior stage.
    {
        Label m_loop = b.here();
        Label m_done = b.label();
        b.subi(rRing, rStage, 1);
        b.muli(rRing, rRing, 128);
        b.movi(rTmp1, static_cast<std::int64_t>(ticketsBase));
        b.add(rRing, rRing, rTmp1);
        b.atom(rTicket, AtomicOpcode::Add, rRing, 64, rOne);
        b.cmpLti(rTmp0, rTicket, total);
        b.bz(rTmp0, m_done);
        // Input slot of ring s-1: wait not-empty (seq == t+1).
        b.subi(rRing, rStage, 1);
        b.muli(rRing, rRing, static_cast<std::int64_t>(ring_stride));
        b.movi(rTmp1, static_cast<std::int64_t>(ringsBase));
        b.add(rRing, rRing, rTmp1);
        b.remi(rSyncAddr, rTicket, static_cast<std::int64_t>(depth));
        b.muli(rSyncAddr, rSyncAddr, 64);
        b.add(rSyncAddr, rSyncAddr, rRing);
        b.addi(rExpected, rTicket, 1);
        emitWaitSeqEq(b, sp, rSyncAddr, 0, rExpected);
        b.ld(rDataVal, rSyncAddr, 8);
        b.addi(rVal, rTicket, static_cast<std::int64_t>(depth));
        b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0, rVal, 0,
               /*acquire=*/false, /*release=*/true);
        b.addi(rDataVal, rDataVal, 1);
        // Output slot of ring s: wait not-full (seq == produce ticket).
        b.muli(rRing, rStage, 128);
        b.movi(rTmp1, static_cast<std::int64_t>(ticketsBase));
        b.add(rRing, rRing, rTmp1);
        b.atom(rPTick, AtomicOpcode::Add, rRing, 0, rOne);
        b.muli(rRing, rStage, static_cast<std::int64_t>(ring_stride));
        b.movi(rTmp1, static_cast<std::int64_t>(ringsBase));
        b.add(rRing, rRing, rTmp1);
        b.remi(rSyncAddr, rPTick, static_cast<std::int64_t>(depth));
        b.muli(rSyncAddr, rSyncAddr, 64);
        b.add(rSyncAddr, rSyncAddr, rRing);
        b.mov(rExpected, rPTick);
        emitWaitSeqEq(b, sp, rSyncAddr, 0, rExpected);
        // Kernel-scoped: covers every stage's payload store — all
        // rings use the same slot protocol, where the releasing
        // sequence exchange is the notification.
        b.suppressLint("lost-wakeup",
                       "slot payload store shares the line with the "
                       "sequence word; waits are on the sequence "
                       "value, which only the releasing exchange "
                       "advances");
        b.st(rSyncAddr, rDataVal, 8);
        b.addi(rVal, rPTick, 1);
        b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0, rVal, 0,
               /*acquire=*/false, /*release=*/true);
        b.br(m_loop);
        b.bind(m_done);
        b.br(l_end);
    }

    // Stage 0: source numbered items into ring 0.
    {
        b.bind(source_stage);
        Label s0_loop = b.here();
        Label s0_done = b.label();
        b.movi(rTmp1, static_cast<std::int64_t>(sourceBase));
        b.atom(rTicket, AtomicOpcode::Add, rTmp1, 0, rOne);
        b.cmpLti(rTmp0, rTicket, total);
        b.bz(rTmp0, s0_done);
        b.valu(params.csValuCycles);
        b.movi(rTmp1, static_cast<std::int64_t>(ticketsBase));
        b.atom(rPTick, AtomicOpcode::Add, rTmp1, 0, rOne);
        emitSlotAddr(b, rPTick, depth, ringsBase);
        b.mov(rExpected, rPTick);
        emitWaitSeqEq(b, sp, rSyncAddr, 0, rExpected);
        b.st(rSyncAddr, rTicket, 8);
        b.addi(rVal, rPTick, 1);
        b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0, rVal, 0,
               /*acquire=*/false, /*release=*/true);
        b.br(s0_loop);
        b.bind(s0_done);
        b.br(l_end);
    }

    // Final stage: drain ring stages-2 into the checksum.
    {
        b.bind(sink_stage);
        const mem::Addr sink_tickets = ticketsBase + (rings - 1) * 128ULL;
        const mem::Addr sink_ring = ringsBase + (rings - 1) * ring_stride;
        Label sk_loop = b.here();
        Label sk_done = b.label();
        b.movi(rTmp1, static_cast<std::int64_t>(sink_tickets));
        b.atom(rTicket, AtomicOpcode::Add, rTmp1, 64, rOne);
        b.cmpLti(rTmp0, rTicket, total);
        b.bz(rTmp0, sk_done);
        emitSlotAddr(b, rTicket, depth, sink_ring);
        b.addi(rExpected, rTicket, 1);
        emitWaitSeqEq(b, sp, rSyncAddr, 0, rExpected);
        b.ld(rDataVal, rSyncAddr, 8);
        b.movi(rTmp1, static_cast<std::int64_t>(checksumBase));
        b.atom(rAtomResult, AtomicOpcode::Add, rTmp1, 0, rDataVal);
        b.addi(rVal, rTicket, static_cast<std::int64_t>(depth));
        b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0, rVal, 0,
               /*acquire=*/false, /*release=*/true);
        b.br(sk_loop);
        b.bind(sk_done);
    }

    b.bind(l_end);
    b.bar();
    b.halt();
    return finishKernel(b, abbrev(), params, 28);
}

bool
PipelineWorkload::validate(const mem::BackingStore &store,
                           const WorkloadParams &params,
                           std::string &error) const
{
    const unsigned rings = stages - 1;
    const auto total = static_cast<std::int64_t>(totalItems(params));

    std::int64_t source = store.read(sourceBase, 8);
    std::int64_t source_want = total + stageWgs(0, params.numWgs);
    if (source != source_want) {
        error = "source ticket " + std::to_string(source) +
                ", expected " + std::to_string(source_want);
        return false;
    }
    for (unsigned r = 0; r < rings; ++r) {
        std::int64_t tail = store.read(ticketsBase + r * 128ULL, 8);
        if (tail != total) {
            error = "ring " + std::to_string(r) + " tail " +
                    std::to_string(tail) + ", expected " +
                    std::to_string(total);
            return false;
        }
        std::int64_t head = store.read(ticketsBase + r * 128ULL + 64, 8);
        std::int64_t head_want =
            total + stageWgs(r + 1, params.numWgs);
        if (head != head_want) {
            error = "ring " + std::to_string(r) + " head " +
                    std::to_string(head) + ", expected " +
                    std::to_string(head_want);
            return false;
        }
    }
    std::int64_t sum = store.read(checksumBase, 8);
    std::int64_t expected = total * (total - 1) / 2 +
                            total * static_cast<std::int64_t>(stages - 2);
    if (sum != expected) {
        error = "checksum " + std::to_string(sum) + ", expected " +
                std::to_string(expected);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Work-stealing task graph (WSD)
// ---------------------------------------------------------------------

std::string
WorkStealWorkload::name() const
{
    return "WorkSteal";
}

std::string
WorkStealWorkload::abbrev() const
{
    return "WSD";
}

Table2Row
WorkStealWorkload::characteristics() const
{
    Table2Row row;
    row.abbrev = abbrev();
    row.description = "Work-stealing deques + ceiling drain counter";
    row.granularity = "n";
    row.numSyncVars = "GI+1";
    row.condsPerVar = "1";
    row.waitersPerCond = "G";
    row.updatesUntilMet = "GI";
    return row;
}

isa::Kernel
WorkStealWorkload::build(core::GpuSystem &system,
                         const WorkloadParams &params) const
{
    const auto total = static_cast<std::int64_t>(totalTasks(params));
    const auto tasks_per_wg = static_cast<std::int64_t>(params.iters);

    tasksBase = system.allocate(static_cast<std::uint64_t>(total) * 64);
    doneBase = system.allocate(64);
    checksumBase = system.allocate(64);
    for (std::int64_t g = 0; g < total; ++g) {
        system.memory().write(tasksBase + g * 64, 0, 8);      // claim
        system.memory().write(tasksBase + g * 64 + 8, g, 8);  // value
    }

    StyleParams sp{params.style, params.backoffMinCycles,
                   params.backoffMaxCycles, false};

    KernelBuilder b;
    Label l_end = b.label();
    b.bnz(isa::rWfId, l_end);
    emitSyncProlog(b, sp);

    // One deque scan: claim-and-run every task of r[rVictim]'s deque.
    // Shared between the own-deque drain and the steal sweep.
    auto emit_deque_scan = [&](Label &next) {
        b.movi(rIdx, 0);
        Label scan = b.here();
        Label skip = b.label();
        b.muli(rSyncAddr, rVictim, tasks_per_wg);
        b.add(rSyncAddr, rSyncAddr, rIdx);
        b.muli(rSyncAddr, rSyncAddr, 64);
        b.movi(rTmp1, static_cast<std::int64_t>(tasksBase));
        b.add(rSyncAddr, rSyncAddr, rTmp1);
        b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0, rOne, 0,
               /*acquire=*/true);
        b.bnz(rAtomResult, skip);
        b.ld(rDataVal, rSyncAddr, 8);
        b.valu(params.csValuCycles);
        // WG 0's deque holds heavy tasks (8x): the other WGs drain,
        // sweep and then PARK on the done counter while the heavy
        // tasks finish — that parked crowd, watching a counter that
        // climbs through G*iters distinct values, is the predictor
        // stress this workload exists for.
        Label light = b.label();
        b.divi(rTmp0, rDataVal, tasks_per_wg);
        b.bnz(rTmp0, light);
        b.valu(params.csValuCycles * 512);
        b.bind(light);
        b.movi(rTmp1, static_cast<std::int64_t>(checksumBase));
        b.atom(rAtomResult, AtomicOpcode::Add, rTmp1, 0, rDataVal);
        b.movi(rTmp1, static_cast<std::int64_t>(doneBase));
        b.atom(rAtomResult, AtomicOpcode::Add, rTmp1, 0, rOne, 0,
               /*acquire=*/false, /*release=*/true);
        b.bind(skip);
        b.addi(rIdx, rIdx, 1);
        b.cmpLti(rTmp0, rIdx, tasks_per_wg);
        b.bnz(rTmp0, scan);
        (void)next;
    };

    // Drain the own deque first...
    Label own_done = b.label();
    b.mov(rVictim, isa::rWgId);
    emit_deque_scan(own_done);

    // ...then probe a few neighbours' deques for leftovers. The probe
    // span is deliberately short (real stealers probe, they don't
    // scan the world): WGs far from the heavy deque finish their
    // probes quickly and park on the drain counter below. Every task
    // still runs — its owner attempts every own slot unconditionally.
    const std::int64_t steal_span =
        std::min<std::int64_t>(4, params.numWgs - 1);
    b.movi(rVict, 1);
    Label sweep = b.here();
    b.add(rVictim, isa::rWgId, rVict);
    b.remi(rVictim, rVictim, static_cast<std::int64_t>(params.numWgs));
    Label sweep_next = b.label();
    emit_deque_scan(sweep_next);
    b.addi(rVict, rVict, 1);
    b.cmpLei(rTmp0, rVict, steal_span);
    b.bnz(rTmp0, sweep);

    // Park until every task has been run: done parks at the total, so
    // the ceiling wait is safe in every style.
    b.movi(rExpected, total);
    b.movi(rDataAddr, static_cast<std::int64_t>(doneBase));
    emitWaitCounterReach(b, sp, rDataAddr, 0, rExpected);

    b.bind(l_end);
    b.bar();
    b.halt();
    return finishKernel(b, abbrev(), params, 26);
}

bool
WorkStealWorkload::validate(const mem::BackingStore &store,
                            const WorkloadParams &params,
                            std::string &error) const
{
    const auto total = static_cast<std::int64_t>(totalTasks(params));
    std::int64_t done = store.read(doneBase, 8);
    if (done != total) {
        error = "done counter " + std::to_string(done) +
                ", expected " + std::to_string(total);
        return false;
    }
    for (std::int64_t g = 0; g < total; ++g) {
        if (store.read(tasksBase + g * 64, 8) != 1) {
            error = "task " + std::to_string(g) + " left unclaimed";
            return false;
        }
    }
    std::int64_t sum = store.read(checksumBase, 8);
    std::int64_t expected = total * (total - 1) / 2;
    if (sum != expected) {
        error = "checksum " + std::to_string(sum) + ", expected " +
                std::to_string(expected);
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Registry glue + verdict annotations
// ---------------------------------------------------------------------

std::vector<std::string>
queueAbbrevs()
{
    return {"MPMCQ", "PIPE", "WSD"};
}

core::Verdict
queueExpectedVerdict(const std::string &abbrev, core::Policy policy)
{
    (void)policy;
    // At the default all-resident geometry every WG keeps its CU, so
    // the whole family completes under every policy — including the
    // IFP-less busy/sleep baselines, whose spinning peers stay
    // scheduled. Oversubscribed geometries are a different contract
    // (and are exercised by the parity/fault gates instead).
    for (const std::string &a : queueAbbrevs()) {
        if (a == abbrev)
            return core::Verdict::Complete;
    }
    ifp_fatal("no verdict annotation for workload '%s'",
              abbrev.c_str());
}

} // namespace ifp::workloads
