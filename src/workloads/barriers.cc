#include "workloads/barriers.hh"

#include "sim/logging.hh"
#include "workloads/sync_emitters.hh"

namespace ifp::workloads {

using isa::KernelBuilder;
using isa::Label;
using mem::AtomicOpcode;

namespace {

constexpr isa::Reg rLocalRelAddr = 26;
constexpr isa::Reg rAddrScratch = 27;
constexpr isa::Reg rGroup = 28;
constexpr isa::Reg rGroupFirst = 29;
constexpr isa::Reg rArriveOld = 30;
constexpr isa::Reg rIdx = 31;

isa::Kernel
finishKernel(KernelBuilder &b, const std::string &name,
             const WorkloadParams &params, unsigned vgprs,
             unsigned lds_bytes)
{
    isa::Kernel k;
    k.name = name;
    k.code = b.build();
    k.lintSuppressions = b.suppressions();
    k.wiPerWg = params.wiPerWg;
    k.numWgs = params.numWgs;
    k.vgprsPerWi = vgprs;
    k.sgprsPerWf = 32;
    k.ldsBytes = lds_bytes;
    k.maxWgsPerCu = params.wgsPerGroup;
    return k;
}

/** Per-round LDS exchange performed by every wavefront (EX variants). */
void
emitLdsExchange(KernelBuilder &b, const WorkloadParams &params)
{
    // Publish my round value, sync, read a neighbour's slot, work.
    b.muli(rTmp1, isa::rWfId, 8);
    b.stLds(rTmp1, rIter);
    b.bar();
    b.ldLds(rDataVal, rTmp1);
    b.valu(params.csValuCycles);
}

/** Per-round compute between barrier episodes (all variants). */
void
emitRoundWork(KernelBuilder &b, const WorkloadParams &params)
{
    b.valu(params.csValuCycles);
}

/**
 * Data-dependent startup skew: real kernels never reach their first
 * barrier in lockstep, and the skew is what lets early waiters arm
 * the monitor while the rest of their group is still arriving. The
 * spread is largest *within* a group (whose members contend on one
 * line) and smaller across groups.
 */
void
emitStartupSkew(KernelBuilder &b, unsigned members)
{
    auto m = static_cast<std::int64_t>(members);
    b.remi(rTmp1, isa::rWgId, m);
    b.muli(rTmp1, rTmp1, 75);
    b.divi(rTmp0, isa::rWgId, m);
    b.muli(rTmp0, rTmp0, 50);
    b.add(rTmp1, rTmp1, rTmp0);
    b.addi(rTmp1, rTmp1, 1);
    Label skew = b.here();
    b.subi(rTmp1, rTmp1, 1);
    b.bnz(rTmp1, skew);
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Centralized two-level atomic tree barrier (TB_LG / TBEX_LG)
// ---------------------------------------------------------------------

std::string
TreeBarrierWorkload::name() const
{
    return exchange ? "AtomicTreeBarrLocalExch" : "AtomicTreeBarr";
}

std::string
TreeBarrierWorkload::abbrev() const
{
    return exchange ? "TBEX_LG" : "TB_LG";
}

Table2Row
TreeBarrierWorkload::characteristics() const
{
    Table2Row row;
    row.abbrev = abbrev();
    row.description = exchange
                          ? "Two-level tree barrier w/ LDS exchange"
                          : "Two-level tree barrier";
    row.granularity = "n";
    row.numSyncVars = "G/L";
    row.condsPerVar = "1";
    row.waitersPerCond = "L";
    row.updatesUntilMet = "L";
    return row;
}

isa::Kernel
TreeBarrierWorkload::build(core::GpuSystem &system,
                           const WorkloadParams &params) const
{
    unsigned members = params.wgsPerGroup;
    unsigned groups = (params.numWgs + members - 1) / members;
    ifp_assert(params.numWgs % members == 0,
               "TB requires G to be a multiple of L");

    // One line per group: arrival counter at +0, release flag at +8.
    // Colocating them is what HeteroSync's atomic tree barrier does:
    // the release waiters' monitored line receives every arrival
    // update, so AWG's per-line Bloom filter observes many unique
    // values and predicts resume-all (barrier-like), while the flag
    // itself stays stable for the whole round (no ABA hazard for
    // equality-waiting atomics).
    localCountBase = system.allocate(groups * 64ULL);
    localReleaseBase = localCountBase + 8;
    globalBase = system.allocate(64);
    doneBase = system.allocate(64);

    StyleParams sp{params.style, params.backoffMinCycles,
                   params.backoffMaxCycles, false};

    KernelBuilder b;
    emitSyncProlog(b, sp);
    b.divi(rGroup, isa::rWgId, members);
    b.muli(rTmp1, rGroup, 64);
    b.movi(rSyncAddr, static_cast<std::int64_t>(localCountBase));
    b.add(rSyncAddr, rSyncAddr, rTmp1);
    emitStartupSkew(b, members);
    b.movi(rIter, 0);

    Label round = b.here();
    b.addi(rIter, rIter, 1);  // round number (1-based)
    if (exchange)
        emitLdsExchange(b, params);
    else
        emitRoundWork(b, params);

    Label skip_sync = b.label();
    b.bnz(isa::rWfId, skip_sync);  // master wavefront only

    {
        Label last_local = b.label();
        Label round_done = b.label();

        // First level: arrive at the group's counter.
        b.atom(rArriveOld, AtomicOpcode::Add, rSyncAddr, 0, rOne, 0,
               /*acquire=*/true);
        b.cmpEqi(rTmp0, rArriveOld,
                 static_cast<std::int64_t>(members) - 1);
        b.bnz(rTmp0, last_local);
        // Not last: wait for this round's release broadcast (+8).
        emitWaitEq(b, sp, rSyncAddr, 8, rIter);
        b.br(round_done);

        b.bind(last_local);
        // Group leader: reset the counter, go up to the second level.
        b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0,
               isa::rZero);
        b.movi(rAddrScratch, static_cast<std::int64_t>(globalBase));
        b.atom(rArriveOld, AtomicOpcode::Add, rAddrScratch, 0, rOne,
               0, /*acquire=*/true);
        b.cmpEqi(rTmp0, rArriveOld,
                 static_cast<std::int64_t>(groups) - 1);
        Label last_global = b.label();
        Label release_group = b.label();
        b.bnz(rTmp0, last_global);
        // Wait for the global release flag (+8 on the global line).
        emitWaitEq(b, sp, rAddrScratch, 8, rIter);
        b.br(release_group);

        b.bind(last_global);
        b.atom(rAtomResult, AtomicOpcode::Exch, rAddrScratch, 0,
               isa::rZero);
        b.atom(rAtomResult, AtomicOpcode::Exch, rAddrScratch, 8,
               rIter, 0, /*acquire=*/false, /*release=*/true);

        b.bind(release_group);
        // Broadcast the round to the group's members.
        b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 8, rIter,
               0, /*acquire=*/false, /*release=*/true);
        b.bind(round_done);
    }

    b.bind(skip_sync);
    b.bar();
    b.cmpLti(rTmp0, rIter, params.iters);
    b.bnz(rTmp0, round);

    // Completion counter (master only).
    Label l_end = b.label();
    b.bnz(isa::rWfId, l_end);
    b.movi(rAddrScratch, static_cast<std::int64_t>(doneBase));
    b.atom(rAtomResult, AtomicOpcode::Inc, rAddrScratch, 0,
           isa::rZero);
    b.bind(l_end);
    b.bar();
    b.halt();

    return finishKernel(b, abbrev(), params, exchange ? 34 : 24,
                        exchange ? 2048 : 1024);
}

bool
TreeBarrierWorkload::validate(const mem::BackingStore &store,
                              const WorkloadParams &params,
                              std::string &error) const
{
    unsigned members = params.wgsPerGroup;
    unsigned groups = params.numWgs / members;
    std::int64_t done = store.read(doneBase, 8);
    if (done != static_cast<std::int64_t>(params.numWgs)) {
        error = "done counter " + std::to_string(done);
        return false;
    }
    for (unsigned g = 0; g < groups; ++g) {
        if (store.read(localCountBase + g * 64, 8) != 0) {
            error = "local count " + std::to_string(g) + " not reset";
            return false;
        }
        std::int64_t rel = store.read(localReleaseBase + g * 64, 8);
        if (rel != static_cast<std::int64_t>(params.iters)) {
            error = "local release " + std::to_string(g) + " = " +
                    std::to_string(rel);
            return false;
        }
    }
    if (store.read(globalBase, 8) != 0) {
        error = "global count not reset";
        return false;
    }
    if (store.read(globalBase + 8, 8) !=
        static_cast<std::int64_t>(params.iters)) {
        error = "global release wrong";
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Decentralized two-level tree barrier (LFTB_LG / LFTBEX_LG)
// ---------------------------------------------------------------------

std::string
LfTreeBarrierWorkload::name() const
{
    return exchange ? "LFTreeBarrLocalExch" : "LFTreeBarr";
}

std::string
LfTreeBarrierWorkload::abbrev() const
{
    return exchange ? "LFTBEX_LG" : "LFTB_LG";
}

Table2Row
LfTreeBarrierWorkload::characteristics() const
{
    Table2Row row;
    row.abbrev = abbrev();
    row.description =
        exchange ? "Decentralized tree barrier w/ LDS exchange"
                 : "Decentralized two-level tree barrier";
    row.granularity = "n";
    row.numSyncVars = "G";
    row.condsPerVar = "1";
    row.waitersPerCond = "1";
    row.updatesUntilMet = "1";
    return row;
}

isa::Kernel
LfTreeBarrierWorkload::build(core::GpuSystem &system,
                             const WorkloadParams &params) const
{
    unsigned members = params.wgsPerGroup;
    unsigned groups = (params.numWgs + members - 1) / members;
    ifp_assert(params.numWgs % members == 0,
               "LFTB requires G to be a multiple of L");

    arriveBase = system.allocate(params.numWgs * 64ULL);
    releaseBase = system.allocate(params.numWgs * 64ULL);
    groupArriveBase = system.allocate(groups * 64ULL);
    groupReleaseBase = system.allocate(groups * 64ULL);
    doneBase = system.allocate(64);

    StyleParams sp{params.style, params.backoffMinCycles,
                   params.backoffMaxCycles, false};

    KernelBuilder b;
    emitSyncProlog(b, sp);
    b.divi(rGroup, isa::rWgId, members);
    b.muli(rGroupFirst, rGroup, members);
    emitStartupSkew(b, members);
    b.movi(rIter, 0);

    Label round = b.here();
    b.addi(rIter, rIter, 1);
    if (exchange)
        emitLdsExchange(b, params);
    else
        emitRoundWork(b, params);

    Label skip_sync = b.label();
    b.bnz(isa::rWfId, skip_sync);

    {
        Label leader_path = b.label();
        Label sync_done = b.label();

        b.sub(rTmp1, isa::rWgId, rGroupFirst);
        b.bz(rTmp1, leader_path);

        // ---- member: publish arrival, wait for my private release.
        b.muli(rSyncAddr, isa::rWgId, 64);
        b.movi(rTmp1, static_cast<std::int64_t>(arriveBase));
        b.add(rSyncAddr, rSyncAddr, rTmp1);
        b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0, rIter,
               0, /*acquire=*/false, /*release=*/true);
        b.muli(rSyncAddr, isa::rWgId, 64);
        b.movi(rTmp1, static_cast<std::int64_t>(releaseBase));
        b.add(rSyncAddr, rSyncAddr, rTmp1);
        emitWaitEq(b, sp, rSyncAddr, 0, rIter);
        b.br(sync_done);

        // ---- leader: gather members, synchronize leaders, release.
        b.bind(leader_path);
        {
            // Wait for each member's arrive flag.
            Label gather_done = b.label();
            b.movi(rIdx, 1);
            b.cmpLti(rTmp0, rIdx, members);
            b.bz(rTmp0, gather_done);
            Label gather = b.here();
            b.add(rSyncAddr, rGroupFirst, rIdx);
            b.muli(rSyncAddr, rSyncAddr, 64);
            b.movi(rTmp1, static_cast<std::int64_t>(arriveBase));
            b.add(rSyncAddr, rSyncAddr, rTmp1);
            emitWaitEq(b, sp, rSyncAddr, 0, rIter);
            b.addi(rIdx, rIdx, 1);
            b.cmpLti(rTmp0, rIdx, members);
            b.bnz(rTmp0, gather);
            b.bind(gather_done);

            // Second level across group leaders.
            Label root_path = b.label();
            Label level2_done = b.label();
            b.bz(rGroup, root_path);
            // Non-root leader: publish group arrival, await release.
            b.muli(rSyncAddr, rGroup, 64);
            b.movi(rTmp1,
                   static_cast<std::int64_t>(groupArriveBase));
            b.add(rSyncAddr, rSyncAddr, rTmp1);
            b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0,
                   rIter, 0, /*acquire=*/false, /*release=*/true);
            b.muli(rSyncAddr, rGroup, 64);
            b.movi(rTmp1,
                   static_cast<std::int64_t>(groupReleaseBase));
            b.add(rSyncAddr, rSyncAddr, rTmp1);
            emitWaitEq(b, sp, rSyncAddr, 0, rIter);
            b.br(level2_done);

            // Root: gather the other leaders, then release them.
            b.bind(root_path);
            {
                Label root_gather_done = b.label();
                b.movi(rIdx, 1);
                b.cmpLti(rTmp0, rIdx,
                         static_cast<std::int64_t>(groups));
                b.bz(rTmp0, root_gather_done);
                Label root_gather = b.here();
                b.muli(rSyncAddr, rIdx, 64);
                b.movi(rTmp1,
                       static_cast<std::int64_t>(groupArriveBase));
                b.add(rSyncAddr, rSyncAddr, rTmp1);
                emitWaitEq(b, sp, rSyncAddr, 0, rIter);
                b.addi(rIdx, rIdx, 1);
                b.cmpLti(rTmp0, rIdx,
                         static_cast<std::int64_t>(groups));
                b.bnz(rTmp0, root_gather);
                b.bind(root_gather_done);

                Label root_release_done = b.label();
                b.movi(rIdx, 1);
                b.cmpLti(rTmp0, rIdx,
                         static_cast<std::int64_t>(groups));
                b.bz(rTmp0, root_release_done);
                Label root_release = b.here();
                b.muli(rSyncAddr, rIdx, 64);
                b.movi(rTmp1,
                       static_cast<std::int64_t>(groupReleaseBase));
                b.add(rSyncAddr, rSyncAddr, rTmp1);
                b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0,
                       rIter, 0, /*acquire=*/false, /*release=*/true);
                b.addi(rIdx, rIdx, 1);
                b.cmpLti(rTmp0, rIdx,
                         static_cast<std::int64_t>(groups));
                b.bnz(rTmp0, root_release);
                b.bind(root_release_done);
            }
            b.bind(level2_done);

            // Release my group's members.
            Label release_done = b.label();
            b.movi(rIdx, 1);
            b.cmpLti(rTmp0, rIdx, members);
            b.bz(rTmp0, release_done);
            Label release = b.here();
            b.add(rSyncAddr, rGroupFirst, rIdx);
            b.muli(rSyncAddr, rSyncAddr, 64);
            b.movi(rTmp1, static_cast<std::int64_t>(releaseBase));
            b.add(rSyncAddr, rSyncAddr, rTmp1);
            b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0,
                   rIter, 0, /*acquire=*/false, /*release=*/true);
            b.addi(rIdx, rIdx, 1);
            b.cmpLti(rTmp0, rIdx, members);
            b.bnz(rTmp0, release);
            b.bind(release_done);
        }
        b.bind(sync_done);
    }

    b.bind(skip_sync);
    b.bar();
    b.cmpLti(rTmp0, rIter, params.iters);
    b.bnz(rTmp0, round);

    Label l_end = b.label();
    b.bnz(isa::rWfId, l_end);
    b.movi(rTmp1, static_cast<std::int64_t>(doneBase));
    b.atom(rAtomResult, AtomicOpcode::Inc, rTmp1, 0, isa::rZero);
    b.bind(l_end);
    b.bar();
    b.halt();

    return finishKernel(b, abbrev(), params, exchange ? 38 : 28,
                        exchange ? 2048 : 1024);
}

bool
LfTreeBarrierWorkload::validate(const mem::BackingStore &store,
                                const WorkloadParams &params,
                                std::string &error) const
{
    unsigned members = params.wgsPerGroup;
    unsigned groups = params.numWgs / members;
    std::int64_t done = store.read(doneBase, 8);
    if (done != static_cast<std::int64_t>(params.numWgs)) {
        error = "done counter " + std::to_string(done);
        return false;
    }
    auto rounds = static_cast<std::int64_t>(params.iters);
    for (unsigned w = 0; w < params.numWgs; ++w) {
        bool leader = w % members == 0;
        if (leader)
            continue;
        if (store.read(arriveBase + w * 64, 8) != rounds) {
            error = "arrive flag wg" + std::to_string(w);
            return false;
        }
        if (store.read(releaseBase + w * 64, 8) != rounds) {
            error = "release flag wg" + std::to_string(w);
            return false;
        }
    }
    for (unsigned g = 1; g < groups; ++g) {
        if (store.read(groupArriveBase + g * 64, 8) != rounds) {
            error = "group arrive " + std::to_string(g);
            return false;
        }
        if (store.read(groupReleaseBase + g * 64, 8) != rounds) {
            error = "group release " + std::to_string(g);
            return false;
        }
    }
    return true;
}

} // namespace ifp::workloads
