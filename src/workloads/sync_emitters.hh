/**
 * @file
 * Style-parameterized synchronization code emitters.
 *
 * The same benchmark compiles into four waiting styles (Table of
 * core/policy.hh): busy spinning, software exponential backoff with
 * s_sleep, check + wait-instruction (which reproduces Figure 10's
 * window-of-vulnerability pattern), and waiting atomics (the paper's
 * new instruction family, Figure 10 bottom).
 *
 * Register conventions used by the emitters (callers must respect):
 *   r0        always zero
 *   r16       constant 1
 *   r17       current backoff (SleepBackoff style, clobbered)
 *   r18       maximum backoff (SleepBackoff style, preloaded)
 *   r22       atomic result (clobbered)
 *   r24..r25  emitter scratch (clobbered)
 */

#ifndef IFP_WORKLOADS_SYNC_EMITTERS_HH
#define IFP_WORKLOADS_SYNC_EMITTERS_HH

#include "core/policy.hh"
#include "isa/builder.hh"

namespace ifp::workloads {

/// @name Emitter register conventions
/// @{
constexpr isa::Reg rOne = 16;
constexpr isa::Reg rBackoff = 17;
constexpr isa::Reg rBackoffMax = 18;
constexpr isa::Reg rIter = 19;
constexpr isa::Reg rSyncAddr = 20;
constexpr isa::Reg rDataAddr = 21;
constexpr isa::Reg rAtomResult = 22;
constexpr isa::Reg rDataVal = 23;
constexpr isa::Reg rTmp0 = 24;
constexpr isa::Reg rTmp1 = 25;
/// @}

/** Parameters shared by the emitters. */
struct StyleParams
{
    core::SyncStyle style = core::SyncStyle::Busy;
    std::int64_t backoffMin = 64;
    std::int64_t backoffMax = 16'384;
    /** SPMBO: software delay-loop backoff instead of s_sleep. */
    bool softwareBackoff = false;
};

/**
 * Emit the per-kernel prologue the emitters rely on (loads the
 * constant registers). Call once before any other emitter.
 */
void emitSyncProlog(isa::KernelBuilder &b, const StyleParams &sp);

/**
 * Acquire a test-and-set lock at [addr_reg + offset] (0 = free,
 * 1 = held). Clobbers rAtomResult, rTmp0, rBackoff.
 */
void emitTasAcquire(isa::KernelBuilder &b, const StyleParams &sp,
                    isa::Reg addr_reg, std::int64_t offset = 0);

/** Release a test-and-set lock (store 0 with release semantics). */
void emitTasRelease(isa::KernelBuilder &b, isa::Reg addr_reg,
                    std::int64_t offset = 0);

/**
 * Wait until the value at [addr_reg + offset] equals r[expected_reg]
 * (ticket locks, barrier flags). Clobbers rAtomResult, rTmp0,
 * rBackoff.
 */
void emitWaitEq(isa::KernelBuilder &b, const StyleParams &sp,
                isa::Reg addr_reg, std::int64_t offset,
                isa::Reg expected_reg);

/**
 * Value-predicate wait on a per-slot sequence word (the queue
 * family): wait until [addr_reg + offset] equals r[expected_reg].
 *
 * Contract: the expected value must be PERSISTENT — once the slot's
 * sequence reaches it, it stays there until the waiting party itself
 * advances it (the bounded-MPMC slot protocol: producer of ticket t
 * waits seq == t, consumer waits seq == t+1, each advances it after
 * acting). A sequence that can run PAST the expected value would
 * livelock the WaitAtomic style, whose hardware re-execute loop never
 * returns to software for a re-check. Clobbers rAtomResult, rTmp0,
 * rBackoff.
 */
void emitWaitSeqEq(isa::KernelBuilder &b, const StyleParams &sp,
                   isa::Reg addr_reg, std::int64_t offset,
                   isa::Reg expected_reg);

/**
 * Ceiling-counter wait: wait until the monotonic counter at
 * [addr_reg + offset] reaches r[target_reg] (work-queue drain:
 * done == totalTasks).
 *
 * Contract: the counter must never EXCEED the target (the target is
 * its terminal value). The polling styles re-check with >= so they
 * tolerate coarse schedules; the WaitAtomic style waits on equality
 * with the terminal value, which is only safe because the counter
 * stops there. Clobbers rAtomResult, rTmp0, rBackoff.
 */
void emitWaitCounterReach(isa::KernelBuilder &b, const StyleParams &sp,
                          isa::Reg addr_reg, std::int64_t offset,
                          isa::Reg target_reg);

} // namespace ifp::workloads

#endif // IFP_WORKLOADS_SYNC_EMITTERS_HH
