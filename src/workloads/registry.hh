/**
 * @file
 * Benchmark registry: the evaluated suite, by figure-axis order.
 */

#ifndef IFP_WORKLOADS_REGISTRY_HH
#define IFP_WORKLOADS_REGISTRY_HH

#include <vector>

#include "workloads/workload.hh"

namespace ifp::workloads {

/**
 * The 12 benchmarks of Figures 14/15, in axis order:
 * SPM_G, SPMBO_G, FAM_G, SLM_G, SPM_L, SPMBO_L, FAM_L, SLM_L,
 * TB_LG, LFTB_LG, TBEX_LG, LFTBEX_LG.
 */
std::vector<WorkloadPtr> makeHeteroSyncSuite();

/**
 * The full Table 2 set: the suite plus HashTable, BankAccount and the
 * concurrent-queue family (MPMCQ, PIPE, WSD).
 */
std::vector<WorkloadPtr> makeFullSuite();

/**
 * A single benchmark by abbreviation. Lookup is case-stable (exact
 * match wins, then a case-folded match); unknown names panic with the
 * list of valid abbreviations.
 */
WorkloadPtr makeWorkload(const std::string &abbrev);

/** Abbreviations of the 12-suite, in axis order. */
std::vector<std::string> heteroSyncAbbrevs();

} // namespace ifp::workloads

#endif // IFP_WORKLOADS_REGISTRY_HH
