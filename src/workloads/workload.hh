/**
 * @file
 * Workload interface: the HeteroSync-style benchmark suite.
 *
 * A Workload allocates and initializes its buffers in a GpuSystem,
 * emits its kernel in one of the four synchronization styles (per the
 * active policy), validates the final memory image, and reports its
 * Table 2 characteristics.
 */

#ifndef IFP_WORKLOADS_WORKLOAD_HH
#define IFP_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "core/gpu_system.hh"
#include "core/policy.hh"
#include "isa/kernel.hh"

namespace ifp::workloads {

/** Synchronization-variable scope, in the HeteroSync sense. */
enum class Scope
{
    Global,  //!< one variable set contended by all G WGs
    Local,   //!< one variable set per group of L WGs ("per CU")
};

/** Geometry and behaviour knobs of one benchmark run. */
struct WorkloadParams
{
    unsigned numWgs = 64;        //!< G
    unsigned wgsPerGroup = 8;    //!< L (WGs per CU)
    unsigned wiPerWg = 64;       //!< n
    unsigned iters = 4;          //!< acquisitions / barrier rounds
    unsigned csValuCycles = 60;  //!< per-lane critical-section work
    core::SyncStyle style = core::SyncStyle::Busy;
    std::int64_t backoffMinCycles = 64;
    std::int64_t backoffMaxCycles = 16'384;

    /** Number of locality groups. */
    unsigned
    numGroups(Scope scope) const
    {
        return scope == Scope::Global
                   ? 1
                   : (numWgs + wgsPerGroup - 1) / wgsPerGroup;
    }

    /** WGs sharing one variable set. */
    unsigned
    groupSize(Scope scope) const
    {
        return scope == Scope::Global ? numWgs : wgsPerGroup;
    }
};

/** One row of the paper's Table 2 (symbolic, in terms of G/L/n). */
struct Table2Row
{
    std::string abbrev;
    std::string description;
    std::string granularity;       //!< WIs per sync var
    std::string numSyncVars;
    std::string condsPerVar;
    std::string waitersPerCond;
    std::string updatesUntilMet;
};

/** Base class of every benchmark. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Long name, e.g. "SpinMutex". */
    virtual std::string name() const = 0;

    /** Figure-axis abbreviation, e.g. "SPM_G". */
    virtual std::string abbrev() const = 0;

    /** Table 2 characteristics. */
    virtual Table2Row characteristics() const = 0;

    /**
     * Allocate + initialize buffers in @p system and emit the kernel
     * in the style @p params.style.
     */
    virtual isa::Kernel build(core::GpuSystem &system,
                              const WorkloadParams &params) const = 0;

    /** Check the final memory image of a completed run. */
    virtual bool validate(const mem::BackingStore &store,
                          const WorkloadParams &params,
                          std::string &error) const = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

} // namespace ifp::workloads

#endif // IFP_WORKLOADS_WORKLOAD_HH
