#include "workloads/litmus.hh"

#include <sstream>

#include "sim/logging.hh"
#include "workloads/sync_emitters.hh"

namespace ifp::workloads {

using core::Policy;
using core::SyncStyle;
using core::Verdict;
using isa::KernelBuilder;
using isa::Label;
using mem::AtomicOpcode;

namespace {

/// @name Litmus register conventions (beyond the emitters')
/// @{
constexpr isa::Reg rConst = 27;
constexpr isa::Reg rMyFlag = 28;
constexpr isa::Reg rOtherFlag = 29;
constexpr isa::Reg rScratch = 30;
/// @}

constexpr std::int64_t kPayload = 7;

/** &flags[wg] and &flags[1 - wg] into rMyFlag / rOtherFlag. */
void
emitPairFlagAddrs(KernelBuilder &b, mem::Addr sync_base)
{
    b.movi(rSyncAddr, static_cast<std::int64_t>(sync_base));
    b.muli(rScratch, isa::rWgId, 8);
    b.add(rMyFlag, rSyncAddr, rScratch);
    b.movi(rScratch, 1);
    b.sub(rScratch, rScratch, isa::rWgId);
    b.muli(rScratch, rScratch, 8);
    b.add(rOtherFlag, rSyncAddr, rScratch);
}

/** done[wg] = r[value_reg]; the completion marker validate() checks. */
void
emitDone(KernelBuilder &b, mem::Addr done_base, isa::Reg value_reg)
{
    b.movi(rDataAddr, static_cast<std::int64_t>(done_base));
    b.muli(rScratch, isa::rWgId, 8);
    b.add(rDataAddr, rDataAddr, rScratch);
    b.st(rDataAddr, value_reg);
}

} // anonymous namespace

LitmusWorkload::LitmusWorkload(LitmusSpec spec) : litmus(std::move(spec))
{}

std::string
LitmusWorkload::name() const
{
    return "Litmus/" + litmus.name;
}

std::string
LitmusWorkload::abbrev() const
{
    return litmus.name;
}

Table2Row
LitmusWorkload::characteristics() const
{
    Table2Row row;
    row.abbrev = litmus.name;
    row.description = litmus.description;
    row.granularity = "WG";
    row.numSyncVars = "1-2";
    row.condsPerVar = "1";
    row.waitersPerCond = "1-" + std::to_string(litmus.numWgs - 1);
    row.updatesUntilMet = "1";
    return row;
}

isa::Kernel
LitmusWorkload::build(core::GpuSystem &system,
                      const WorkloadParams &params) const
{
    // Geometry comes from the spec, not the params: a litmus IS its
    // shape. Only the codegen style (and backoff knobs) vary.
    syncBase = system.allocate(64);
    doneBase = system.allocate(litmus.numWgs * 8);

    StyleParams sp;
    sp.style = params.style;
    sp.backoffMin = params.backoffMinCycles;
    sp.backoffMax = params.backoffMaxCycles;

    KernelBuilder b;
    emitSyncProlog(b, sp);

    switch (litmus.shape) {
      case LitmusShape::MutualPair: {
        emitPairFlagAddrs(b, syncBase);
        // Publish my flag (release), then wait for the other's.
        b.atom(rAtomResult, AtomicOpcode::Exch, rMyFlag, 0, rOne, 0,
               /*acquire=*/false, /*release=*/true);
        emitWaitEq(b, sp, rOtherFlag, 0, rOne);
        emitDone(b, doneBase, rOne);
        break;
      }
      case LitmusShape::OccBarrier: {
        // Arrive at the counter, then wait for everyone.
        b.movi(rSyncAddr, static_cast<std::int64_t>(syncBase));
        b.atom(rAtomResult, AtomicOpcode::Add, rSyncAddr, 0, rOne, 0,
               /*acquire=*/false, /*release=*/true);
        b.movi(rConst, litmus.numWgs);
        emitWaitEq(b, sp, rSyncAddr, 0, rConst);
        emitDone(b, doneBase, rOne);
        break;
      }
      case LitmusShape::ProdCons: {
        // flag at syncBase+0, payload at syncBase+8.
        b.movi(rSyncAddr, static_cast<std::int64_t>(syncBase));
        Label consumer = b.label();
        Label tail = b.label();
        b.bnz(isa::rWgId, consumer);
        // WG0, producer: payload first, then release-publish the
        // flag with an atomic the monitors can observe.
        b.valu(200);
        b.movi(rDataVal, kPayload);
        b.st(rSyncAddr, rDataVal, 8);
        b.atom(rAtomResult, AtomicOpcode::Exch, rSyncAddr, 0, rOne, 0,
               /*acquire=*/false, /*release=*/true);
        b.movi(rDataVal, 1);
        b.br(tail);
        // WG1, consumer: wait for the flag, read the payload.
        b.bind(consumer);
        emitWaitEq(b, sp, rSyncAddr, 0, rOne);
        b.ld(rDataVal, rSyncAddr, 8);
        b.bind(tail);
        emitDone(b, doneBase, rDataVal);
        break;
      }
      case LitmusShape::SpinNotify: {
        b.movi(rSyncAddr, static_cast<std::int64_t>(syncBase));
        Label waiter = b.label();
        Label tail = b.label();
        b.bnz(isa::rWgId, waiter);
        // WG0, notifier: compute, then a PLAIN store to the waited
        // flag — the static lost-wakeup hazard this litmus exists
        // to pin down.
        b.valu(500);
        b.st(rSyncAddr, rOne);
        b.br(tail);
        // WG1: spin/wait until notified.
        b.bind(waiter);
        emitWaitEq(b, sp, rSyncAddr, 0, rOne);
        b.bind(tail);
        emitDone(b, doneBase, rOne);
        break;
      }
      case LitmusShape::PairGrid: {
        // rMyFlag = &flags[wg]; partner of WG w is w + 1 - 2*(w % 2),
        // i.e. the other member of w's pair. The rem form keeps the
        // unpinned interval of the partner index within the flag
        // array (no aliasing with the done array for the lint
        // passes); pinned, it is exact and each pair's footprint is
        // two concrete addresses disjoint from every other pair's.
        b.movi(rSyncAddr, static_cast<std::int64_t>(syncBase));
        b.muli(rScratch, isa::rWgId, 8);
        b.add(rMyFlag, rSyncAddr, rScratch);
        b.remi(rScratch, isa::rWgId, 2);
        b.muli(rScratch, rScratch, 2);
        b.addi(rConst, isa::rWgId, 1);
        b.sub(rScratch, rConst, rScratch);
        b.muli(rScratch, rScratch, 8);
        b.add(rOtherFlag, rSyncAddr, rScratch);
        // Publish my flag (release), then wait for my partner's.
        b.atom(rAtomResult, AtomicOpcode::Exch, rMyFlag, 0, rOne, 0,
               /*acquire=*/false, /*release=*/true);
        emitWaitEq(b, sp, rOtherFlag, 0, rOne);
        emitDone(b, doneBase, rOne);
        break;
      }
      case LitmusShape::Ring: {
        // rMyFlag = &flags[wg], rOtherFlag = &flags[(wg + N - 1) % N].
        b.movi(rSyncAddr, static_cast<std::int64_t>(syncBase));
        b.muli(rScratch, isa::rWgId, 8);
        b.add(rMyFlag, rSyncAddr, rScratch);
        b.addi(rScratch, isa::rWgId, litmus.numWgs - 1);
        b.remi(rScratch, rScratch, litmus.numWgs);
        b.muli(rScratch, rScratch, 8);
        b.add(rOtherFlag, rSyncAddr, rScratch);
        // "Started" marker, as in CircularWait: one mutation per WG
        // pushes stall classification past the first deadlock window.
        b.movi(rScratch, 2);
        emitDone(b, doneBase, rScratch);
        // Wait for the predecessor FIRST, publish after: an N-cycle.
        emitWaitEq(b, sp, rOtherFlag, 0, rOne);
        b.atom(rAtomResult, AtomicOpcode::Exch, rMyFlag, 0, rOne, 0,
               /*acquire=*/false, /*release=*/true);
        emitDone(b, doneBase, rOne);
        break;
      }
      case LitmusShape::CircularWait: {
        emitPairFlagAddrs(b, syncBase);
        // Observable "started" marker (done[wg] = 2). Without at
        // least one mutation the very first deadlock window already
        // sees a frozen progress signature, and the liveness oracle
        // conservatively reports Deadlock before it has two retry
        // samples to tell a livelock apart (core/liveness.cc). The
        // marker pushes stall detection past the first window so each
        // policy's steady-state failure mode is what gets classified.
        b.movi(rScratch, 2);
        emitDone(b, doneBase, rScratch);
        // Wait FIRST, publish after: the cycle no schedule breaks.
        emitWaitEq(b, sp, rOtherFlag, 0, rOne);
        b.atom(rAtomResult, AtomicOpcode::Exch, rMyFlag, 0, rOne, 0,
               /*acquire=*/false, /*release=*/true);
        emitDone(b, doneBase, rOne);
        break;
      }
    }
    b.halt();

    isa::Kernel k;
    k.name = name();
    k.code = b.build();
    k.lintSuppressions = b.suppressions();
    k.wiPerWg = 1;
    k.numWgs = litmus.numWgs;
    k.vgprsPerWi = 8;
    k.sgprsPerWf = 32;
    k.ldsBytes = 0;
    k.maxWgsPerCu = litmus.maxWgsPerCu;
    return k;
}

bool
LitmusWorkload::validate(const mem::BackingStore &store,
                         const WorkloadParams &params,
                         std::string &error) const
{
    (void)params;
    for (unsigned wg = 0; wg < litmus.numWgs; ++wg) {
        std::int64_t want = 1;
        if (litmus.shape == LitmusShape::ProdCons && wg == 1)
            want = kPayload;
        std::int64_t got = store.read(doneBase + wg * 8, 8);
        if (got != want) {
            error = litmus.name + ": done[" + std::to_string(wg) +
                    "] expected " + std::to_string(want) + ", got " +
                    std::to_string(got);
            return false;
        }
    }
    return true;
}

core::Verdict
LitmusWorkload::expectedVerdict(core::Policy policy) const
{
    for (const auto &[p, v] : litmus.expected) {
        if (p == policy)
            return v;
    }
    ifp_fatal("litmus '%s' has no verdict annotation for policy %s",
              litmus.name.c_str(), core::policyName(policy));
}

const std::vector<core::Policy> &
litmusPolicies()
{
    static const std::vector<Policy> policies = {
        Policy::Baseline, Policy::Sleep, Policy::Timeout, Policy::Awg};
    return policies;
}

const std::vector<LitmusSpec> &
litmusSpecs()
{
    static const std::vector<LitmusSpec> specs = [] {
        std::vector<LitmusSpec> s;

        LitmusSpec mutual_pair;
        mutual_pair.name = "mutual-pair";
        mutual_pair.description =
            "Occupancy-bound mutual blocking pair (publish, then wait)";
        mutual_pair.shape = LitmusShape::MutualPair;
        mutual_pair.numWgs = 2;
        mutual_pair.maxWgsPerCu = 1;
        mutual_pair.numCus = 1;
        mutual_pair.expected = {
            {Policy::Baseline, Verdict::Deadlock},
            {Policy::Sleep, Verdict::Livelock},
            {Policy::Timeout, Verdict::Complete},
            {Policy::Awg, Verdict::Complete},
        };
        mutual_pair.lint = {
            {SyncStyle::Busy, "insufficient-residency",
             "only 1 of 2 WGs fits and busy-waiting never yields the "
             "CU: the static residency pass correctly predicts the "
             "Baseline deadlock the dynamic annotation records"},
            {SyncStyle::SleepBackoff, "insufficient-residency",
             "s_sleep frees issue slots but never the WG's resources; "
             "the stranded partner still can't dispatch, matching the "
             "Sleep livelock annotation"},
        };
        s.push_back(std::move(mutual_pair));

        LitmusSpec occ_barrier;
        occ_barrier.name = "occ-barrier";
        occ_barrier.description =
            "Counter barrier of 3 WGs on a machine hosting 2";
        occ_barrier.shape = LitmusShape::OccBarrier;
        occ_barrier.numWgs = 3;
        occ_barrier.maxWgsPerCu = 2;
        occ_barrier.numCus = 1;
        occ_barrier.expected = {
            {Policy::Baseline, Verdict::Deadlock},
            {Policy::Sleep, Verdict::Livelock},
            {Policy::Timeout, Verdict::Complete},
            {Policy::Awg, Verdict::Complete},
        };
        s.push_back(std::move(occ_barrier));

        LitmusSpec prod_cons;
        prod_cons.name = "prod-cons";
        prod_cons.description =
            "Producer release-publishes a flag; resident consumer waits";
        prod_cons.shape = LitmusShape::ProdCons;
        prod_cons.numWgs = 2;
        prod_cons.maxWgsPerCu = 2;
        prod_cons.numCus = 1;
        prod_cons.expected = {
            {Policy::Baseline, Verdict::Complete},
            {Policy::Sleep, Verdict::Complete},
            {Policy::Timeout, Verdict::Complete},
            {Policy::Awg, Verdict::Complete},
        };
        s.push_back(std::move(prod_cons));

        LitmusSpec spin_notify;
        spin_notify.name = "spin-notify";
        spin_notify.description =
            "Waiter notified by a PLAIN store (static lost-wakeup "
            "hazard)";
        spin_notify.shape = LitmusShape::SpinNotify;
        spin_notify.numWgs = 2;
        spin_notify.maxWgsPerCu = 2;
        spin_notify.numCus = 1;
        spin_notify.expected = {
            {Policy::Baseline, Verdict::Complete},
            {Policy::Sleep, Verdict::Complete},
            {Policy::Timeout, Verdict::Complete},
            {Policy::Awg, Verdict::Complete},
        };
        spin_notify.lint = {
            {SyncStyle::WaitInstr, "lost-wakeup",
             "the notifier's plain St can slip past a monitor that "
             "only observes atomics; the simulated L2 sees every "
             "store and the CP rescue backstop re-checks spilled "
             "waiters, so the run still completes"},
            {SyncStyle::WaitAtomic, "lost-wakeup",
             "same hazard as WaitInstr: static analysis is right to "
             "warn, the dynamic machine survives by rescue backstop"},
        };
        s.push_back(std::move(spin_notify));

        LitmusSpec circular;
        circular.name = "circular-wait";
        circular.description =
            "Each WG waits for the other's flag before setting its own";
        circular.shape = LitmusShape::CircularWait;
        circular.numWgs = 2;
        circular.maxWgsPerCu = 2;
        circular.numCus = 1;
        circular.expected = {
            {Policy::Baseline, Verdict::Deadlock},
            {Policy::Sleep, Verdict::Livelock},
            {Policy::Timeout, Verdict::Livelock},
            {Policy::Awg, Verdict::Livelock},
        };
        const char *circ_why =
            "both waits sit before the only writes that could satisfy "
            "them; the static wait-for graph's greatest fixpoint keeps "
            "every wait stuck, matching the no-schedule-completes "
            "annotation";
        for (SyncStyle style :
             {SyncStyle::Busy, SyncStyle::SleepBackoff,
              SyncStyle::WaitInstr, SyncStyle::WaitAtomic}) {
            circular.lint.push_back(
                {style, "static-circular-wait", circ_why});
        }
        s.push_back(std::move(circular));

        LitmusSpec pair_grid;
        pair_grid.name = "pair-grid-6";
        pair_grid.description =
            "Three disjoint publish-then-wait pairs, all resident";
        pair_grid.shape = LitmusShape::PairGrid;
        pair_grid.numWgs = 6;
        pair_grid.maxWgsPerCu = 6;
        pair_grid.numCus = 1;
        pair_grid.expected = {
            {Policy::Baseline, Verdict::Complete},
            {Policy::Sleep, Verdict::Complete},
            {Policy::Timeout, Verdict::Complete},
            {Policy::Awg, Verdict::Complete},
        };
        s.push_back(std::move(pair_grid));

        LitmusSpec ring;
        ring.name = "ring-6";
        ring.description =
            "Six-WG wait-before-publish ring (N-cycle circular wait)";
        ring.shape = LitmusShape::Ring;
        ring.numWgs = 6;
        ring.maxWgsPerCu = 6;
        ring.numCus = 1;
        // AWG never classifies: swapping waiters in and out of the
        // ring keeps perturbing the progress signature, so the
        // liveness oracle sees neither a frozen window (Deadlock) nor
        // a stable retry delta (Livelock) and the run honestly burns
        // its whole cycle budget — on every schedule.
        ring.expected = {
            {Policy::Baseline, Verdict::Deadlock},
            {Policy::Sleep, Verdict::Livelock},
            {Policy::Timeout, Verdict::Livelock},
            {Policy::Awg, Verdict::Exhausted},
        };
        const char *ring_why =
            "every WG's publish is dominated by its wait for the "
            "predecessor, so the wait-for graph is a 6-cycle with no "
            "unguarded notify; the fixpoint keeps all six waits stuck";
        for (SyncStyle style :
             {SyncStyle::Busy, SyncStyle::SleepBackoff,
              SyncStyle::WaitInstr, SyncStyle::WaitAtomic}) {
            ring.lint.push_back(
                {style, "static-circular-wait", ring_why});
        }
        s.push_back(std::move(ring));

        return s;
    }();
    return specs;
}

std::vector<std::string>
litmusNames()
{
    std::vector<std::string> names;
    for (const LitmusSpec &spec : litmusSpecs())
        names.push_back(spec.name);
    return names;
}

std::unique_ptr<LitmusWorkload>
makeLitmus(const std::string &name)
{
    for (const LitmusSpec &spec : litmusSpecs()) {
        if (spec.name == name)
            return std::make_unique<LitmusWorkload>(spec);
    }
    std::ostringstream known;
    bool first = true;
    for (const std::string &n : litmusNames()) {
        known << (first ? "" : ", ") << n;
        first = false;
    }
    ifp_fatal("unknown litmus '%s' (litmuses: %s)", name.c_str(),
              known.str().c_str());
}

} // namespace ifp::workloads
