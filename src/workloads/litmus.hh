/**
 * @file
 * Progress-model litmus tests.
 *
 * Tiny kernels — two to four work-groups, one wavefront each — that
 * isolate a single inter-WG progress question, in the spirit of
 * "Specifying and Testing GPU Workgroup Progress Models" (Sorensen
 * et al.): does this shape complete under a given waiting policy, or
 * does it deadlock / livelock? Each litmus carries its machine
 * geometry (CU count, occupancy bound) and an annotated verdict per
 * policy; src/explore drives every litmus through many legal
 * schedules and fails when an observed core::Verdict contradicts the
 * annotation.
 *
 * The litmuses deliberately live in their own registry, NOT in
 * makeFullSuite(): the benchmark registry feeds `ifplint --all`,
 * the bench sweeps and the campaign, whose outputs are byte-stable
 * contracts. `tools/ifpexplore` and `ctest -L litmus` are the
 * litmus surfaces.
 */

#ifndef IFP_WORKLOADS_LITMUS_HH
#define IFP_WORKLOADS_LITMUS_HH

#include <string>
#include <utility>
#include <vector>

#include "core/run_result.hh"
#include "workloads/workload.hh"

namespace ifp::workloads {

/** The litmus shapes (paper patterns ported to the mini ISA). */
enum class LitmusShape
{
    /**
     * Occupancy-bound mutual blocking pair: each WG publishes its
     * flag, then waits for the other's — but only one WG fits on the
     * machine. Completes exactly when the machine can context-switch
     * a waiting WG out (the paper's central scenario, Figure 1).
     */
    MutualPair,
    /**
     * Occupancy-bound barrier: G WGs arrive at a counter barrier on
     * a machine that hosts G-1. The resident WGs wait on a count the
     * stranded WG can never contribute.
     */
    OccBarrier,
    /**
     * Producer/consumer flag handoff with both WGs resident: the
     * consumer waits on a flag the producer release-publishes after
     * writing the payload. Completes under every policy — the
     * all-complete control cell.
     */
    ProdCons,
    /**
     * Spin-then-notify where the notifier uses a PLAIN store to the
     * waited flag — the static lost-wakeup hazard (a monitor could
     * miss a non-atomic update). The simulated L2 observes plain
     * stores and the CP rescue backstop re-checks spilled waiters,
     * so the shape completes dynamically; ifplint still flags it.
     */
    SpinNotify,
    /**
     * Circular wait: each WG waits for the other's flag BEFORE
     * setting its own. No schedule completes it; policies differ
     * only in how the failure manifests (silent deadlock vs. visible
     * retry livelock).
     */
    CircularWait,
    /**
     * Three disjoint mutual-blocking pairs, all resident: WG 2k and
     * 2k+1 publish-then-wait on each other's flag and never touch the
     * other pairs' state. Completes under every policy; its schedule
     * space is the product of the pairs', which is what partial-order
     * reduction collapses — cross-pair scheduler picks commute.
     */
    PairGrid,
    /**
     * Wait-before-publish ring: WG i waits for WG (i-1)'s flag before
     * publishing its own — an N-WG circular wait no schedule breaks.
     * Adjacent WGs share a flag but WGs at ring distance >= 2 are
     * disjoint, so POR still collapses most interleavings.
     */
    Ring,
};

/** One expected unsuppressed ifplint finding, with its reason. */
struct LitmusLintExpectation
{
    core::SyncStyle style;
    std::string code;           //!< diagnostic code, e.g. "lost-wakeup"
    std::string justification;  //!< why static and dynamic may differ
};

/** Full specification + annotation of one litmus. */
struct LitmusSpec
{
    std::string name;         //!< registry key, e.g. "mutual-pair"
    std::string description;
    LitmusShape shape;
    unsigned numWgs;
    /** Occupancy bound (isa::Kernel::maxWgsPerCu). */
    unsigned maxWgsPerCu;
    /** Machine geometry the annotation assumes. */
    unsigned numCus;
    /**
     * Annotated verdict per waiting policy. The harness drives every
     * (litmus, policy) cell through N schedules and fails on any
     * observed verdict not equal to the annotation.
     */
    std::vector<std::pair<core::Policy, core::Verdict>> expected;
    /**
     * Unsuppressed ifplint findings this shape is EXPECTED to raise
     * (empirically validated). Any unexpected finding — or an
     * expected one that stops firing — is a test failure: the static
     * and dynamic analyses police each other.
     */
    std::vector<LitmusLintExpectation> lint;
};

/** A litmus as a Workload (buildable in every codegen style). */
class LitmusWorkload : public Workload
{
  public:
    explicit LitmusWorkload(LitmusSpec spec);

    std::string name() const override;
    std::string abbrev() const override;
    Table2Row characteristics() const override;
    isa::Kernel build(core::GpuSystem &system,
                      const WorkloadParams &params) const override;
    bool validate(const mem::BackingStore &store,
                  const WorkloadParams &params,
                  std::string &error) const override;

    const LitmusSpec &spec() const { return litmus; }

    /** The annotated verdict for @p policy (fatal when unannotated). */
    core::Verdict expectedVerdict(core::Policy policy) const;

  private:
    LitmusSpec litmus;
    /** Buffer layout chosen by build(), needed by validate(). */
    mutable mem::Addr syncBase = 0;
    mutable mem::Addr doneBase = 0;
};

/** The litmus registry, in fixed order. */
const std::vector<LitmusSpec> &litmusSpecs();

/** Names of every litmus, in registry order. */
std::vector<std::string> litmusNames();

/** One litmus by name (fatal on unknown names, listing the valid ones). */
std::unique_ptr<LitmusWorkload> makeLitmus(const std::string &name);

/** The policies every litmus annotates, in matrix order. */
const std::vector<core::Policy> &litmusPolicies();

} // namespace ifp::workloads

#endif // IFP_WORKLOADS_LITMUS_HH
