/**
 * @file
 * Application-style benchmarks from Table 2: a lock-protected hash
 * table and a bank-account transfer workload. Both exercise the same
 * sync-primitive emitters as the microbenchmarks but with data-
 * dependent lock selection (HT) and two-lock ordered acquisition (BA).
 */

#ifndef IFP_WORKLOADS_APPS_HH
#define IFP_WORKLOADS_APPS_HH

#include "workloads/workload.hh"

namespace ifp::workloads {

/** Hash table with one test-and-set lock per bucket (HT). */
class HashTableWorkload : public Workload
{
  public:
    explicit HashTableWorkload(unsigned buckets = 16)
        : buckets(buckets)
    {}

    std::string name() const override;
    std::string abbrev() const override;
    Table2Row characteristics() const override;
    isa::Kernel build(core::GpuSystem &system,
                      const WorkloadParams &params) const override;
    bool validate(const mem::BackingStore &store,
                  const WorkloadParams &params,
                  std::string &error) const override;

  private:
    unsigned buckets;
    mutable mem::Addr locksBase = 0;
    mutable mem::Addr countsBase = 0;
};

/**
 * Bank-account transfers (BA): each transfer locks two accounts in
 * ascending order (deadlock-free ordering), moves one unit, and
 * unlocks. The validator checks conservation of the total balance.
 */
class BankAccountWorkload : public Workload
{
  public:
    BankAccountWorkload(unsigned accounts = 16,
                        std::int64_t initial_balance = 1000)
        : accounts(accounts), initialBalance(initial_balance)
    {}

    std::string name() const override;
    std::string abbrev() const override;
    Table2Row characteristics() const override;
    isa::Kernel build(core::GpuSystem &system,
                      const WorkloadParams &params) const override;
    bool validate(const mem::BackingStore &store,
                  const WorkloadParams &params,
                  std::string &error) const override;

  private:
    unsigned accounts;
    std::int64_t initialBalance;
    mutable mem::Addr locksBase = 0;
    mutable mem::Addr balancesBase = 0;
};

} // namespace ifp::workloads

#endif // IFP_WORKLOADS_APPS_HH
