#include "workloads/mutexes.hh"

#include "sim/logging.hh"
#include "workloads/sync_emitters.hh"

namespace ifp::workloads {

using isa::KernelBuilder;
using isa::Label;
using mem::AtomicOpcode;

namespace {

/// @name Workload-level register conventions (beyond the emitters')
/// @{
constexpr isa::Reg rGroup = 28;
constexpr isa::Reg rScratchA = 29;
constexpr isa::Reg rScratchB = 30;
constexpr isa::Reg rScratchC = 31;
constexpr isa::Reg rMyTicket = 26;
constexpr isa::Reg rConst = 27;
/// @}

/** Shared kernel metadata assembly. */
isa::Kernel
finishKernel(KernelBuilder &b, const std::string &name,
             const WorkloadParams &params, unsigned vgprs,
             unsigned lds_bytes)
{
    isa::Kernel k;
    k.name = name;
    k.code = b.build();
    k.lintSuppressions = b.suppressions();
    k.wiPerWg = params.wiPerWg;
    k.numWgs = params.numWgs;
    k.vgprsPerWi = vgprs;
    k.sgprsPerWf = 32;
    k.ldsBytes = lds_bytes;
    k.maxWgsPerCu = params.wgsPerGroup;
    return k;
}

/** Emit group index and per-group addresses into the fixed regs. */
void
emitGroupAddrs(KernelBuilder &b, unsigned group_size,
               mem::Addr sync_base, std::uint64_t sync_stride,
               mem::Addr data_base)
{
    b.divi(rGroup, isa::rWgId, group_size);
    b.muli(rScratchA, rGroup, static_cast<std::int64_t>(sync_stride));
    b.movi(rSyncAddr, static_cast<std::int64_t>(sync_base));
    b.add(rSyncAddr, rSyncAddr, rScratchA);
    b.muli(rScratchA, rGroup, 64);
    b.movi(rDataAddr, static_cast<std::int64_t>(data_base));
    b.add(rDataAddr, rDataAddr, rScratchA);
}

/** Critical section: per-lane work plus a guarded counter update. */
void
emitCriticalSection(KernelBuilder &b, const WorkloadParams &params)
{
    b.valu(params.csValuCycles);
    b.ld(rDataVal, rDataAddr);
    b.addi(rDataVal, rDataVal, 1);
    b.st(rDataAddr, rDataVal);
}

/** Standard iteration-loop tail. */
void
emitLoopTail(KernelBuilder &b, const WorkloadParams &params,
             const Label &loop_head)
{
    b.addi(rIter, rIter, 1);
    b.cmpLti(rTmp0, rIter, params.iters);
    b.bnz(rTmp0, loop_head);
}

bool
checkGroupCounters(const mem::BackingStore &store, mem::Addr data_base,
                   unsigned groups, std::uint64_t expected,
                   std::string &error, const char *what)
{
    for (unsigned g = 0; g < groups; ++g) {
        std::int64_t got = store.read(data_base + g * 64, 8);
        if (got != static_cast<std::int64_t>(expected)) {
            error = std::string(what) + " group " + std::to_string(g) +
                    ": expected " + std::to_string(expected) +
                    ", got " + std::to_string(got);
            return false;
        }
    }
    return true;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// SpinMutex (test-and-set), optionally with software backoff (SPMBO)
// ---------------------------------------------------------------------

std::string
SpinMutexWorkload::name() const
{
    return backoff ? "SpinMutexBackoff" : "SpinMutex";
}

std::string
SpinMutexWorkload::abbrev() const
{
    std::string base = backoff ? "SPMBO" : "SPM";
    return base + (scope == Scope::Global ? "_G" : "_L");
}

Table2Row
SpinMutexWorkload::characteristics() const
{
    Table2Row row;
    row.abbrev = abbrev();
    row.description = backoff
                          ? "Test-and-set lock w/ backoff"
                          : "Test-and-set lock";
    row.granularity = "n";
    row.numSyncVars = scope == Scope::Global ? "1" : "G/L";
    row.condsPerVar = "1";
    row.waitersPerCond = scope == Scope::Global ? "G" : "L";
    row.updatesUntilMet = "2";
    return row;
}

isa::Kernel
SpinMutexWorkload::build(core::GpuSystem &system,
                         const WorkloadParams &params) const
{
    unsigned groups = params.numGroups(scope);
    locksBase = system.allocate(groups * 64ULL);
    dataBase = system.allocate(groups * 64ULL);

    StyleParams sp{params.style, params.backoffMinCycles,
                   params.backoffMaxCycles,
                   backoff && params.style == core::SyncStyle::Busy};

    KernelBuilder b;
    Label l_end = b.label();
    b.bnz(isa::rWfId, l_end);
    emitSyncProlog(b, sp);
    emitGroupAddrs(b, params.groupSize(scope), locksBase, 64, dataBase);
    b.movi(rIter, 0);

    Label loop = b.here();
    emitTasAcquire(b, sp, rSyncAddr);
    emitCriticalSection(b, params);
    emitTasRelease(b, rSyncAddr);
    emitLoopTail(b, params, loop);

    b.bind(l_end);
    b.bar();
    b.halt();
    return finishKernel(b, abbrev(), params, backoff ? 14 : 10, 1024);
}

bool
SpinMutexWorkload::validate(const mem::BackingStore &store,
                            const WorkloadParams &params,
                            std::string &error) const
{
    unsigned groups = params.numGroups(scope);
    std::uint64_t expected =
        std::uint64_t(params.groupSize(scope)) * params.iters;
    if (!checkGroupCounters(store, dataBase, groups, expected, error,
                            "counter")) {
        return false;
    }
    for (unsigned g = 0; g < groups; ++g) {
        if (store.read(locksBase + g * 64, 8) != 0) {
            error = "lock " + std::to_string(g) + " left held";
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// FAMutex (centralized ticket lock)
// ---------------------------------------------------------------------

std::string
FaMutexWorkload::name() const
{
    return "FAMutex";
}

std::string
FaMutexWorkload::abbrev() const
{
    return scope == Scope::Global ? "FAM_G" : "FAM_L";
}

Table2Row
FaMutexWorkload::characteristics() const
{
    Table2Row row;
    row.abbrev = abbrev();
    row.description = "Centralized ticket lock";
    row.granularity = "n";
    row.numSyncVars = scope == Scope::Global ? "1" : "G/L";
    row.condsPerVar = scope == Scope::Global ? "G" : "L";
    row.waitersPerCond = "1";
    row.updatesUntilMet = "1";
    return row;
}

isa::Kernel
FaMutexWorkload::build(core::GpuSystem &system,
                       const WorkloadParams &params) const
{
    unsigned groups = params.numGroups(scope);
    // Per group: line 0 = ticket counter, line 1 = now-serving.
    syncBase = system.allocate(groups * 128ULL);
    dataBase = system.allocate(groups * 64ULL);

    StyleParams sp{params.style, params.backoffMinCycles,
                   params.backoffMaxCycles, false};

    KernelBuilder b;
    Label l_end = b.label();
    b.bnz(isa::rWfId, l_end);
    emitSyncProlog(b, sp);
    emitGroupAddrs(b, params.groupSize(scope), syncBase, 128, dataBase);
    b.movi(rIter, 0);

    Label loop = b.here();
    // ticket = fetch-and-add(ticket counter)
    b.atom(rMyTicket, AtomicOpcode::Add, rSyncAddr, 0, rOne, 0,
           /*acquire=*/true);
    // wait until now-serving == ticket
    emitWaitEq(b, sp, rSyncAddr, 64, rMyTicket);
    emitCriticalSection(b, params);
    // now-serving++ hands the lock to the next ticket holder
    b.atom(rAtomResult, AtomicOpcode::Add, rSyncAddr, 64, rOne, 0,
           /*acquire=*/false, /*release=*/true);
    emitLoopTail(b, params, loop);

    b.bind(l_end);
    b.bar();
    b.halt();
    return finishKernel(b, abbrev(), params, 16, 1024);
}

bool
FaMutexWorkload::validate(const mem::BackingStore &store,
                          const WorkloadParams &params,
                          std::string &error) const
{
    unsigned groups = params.numGroups(scope);
    std::uint64_t expected =
        std::uint64_t(params.groupSize(scope)) * params.iters;
    if (!checkGroupCounters(store, dataBase, groups, expected, error,
                            "counter")) {
        return false;
    }
    for (unsigned g = 0; g < groups; ++g) {
        std::int64_t tickets = store.read(syncBase + g * 128, 8);
        std::int64_t serving = store.read(syncBase + g * 128 + 64, 8);
        if (tickets != static_cast<std::int64_t>(expected) ||
            serving != static_cast<std::int64_t>(expected)) {
            error = "ticket state group " + std::to_string(g) +
                    ": tickets " + std::to_string(tickets) +
                    ", serving " + std::to_string(serving);
            return false;
        }
    }
    return true;
}

// ---------------------------------------------------------------------
// SleepMutex (decentralized ticket lock, Figure 10)
// ---------------------------------------------------------------------

std::string
SleepMutexWorkload::name() const
{
    return "SleepMutex";
}

std::string
SleepMutexWorkload::abbrev() const
{
    return scope == Scope::Global ? "SLM_G" : "SLM_L";
}

Table2Row
SleepMutexWorkload::characteristics() const
{
    Table2Row row;
    row.abbrev = abbrev();
    row.description = "Decentralized ticket lock";
    row.granularity = "n";
    row.numSyncVars = "G";
    row.condsPerVar = "1";
    row.waitersPerCond = "1";
    row.updatesUntilMet = "1";
    return row;
}

isa::Kernel
SleepMutexWorkload::build(core::GpuSystem &system,
                          const WorkloadParams &params) const
{
    unsigned groups = params.numGroups(scope);
    unsigned members = params.groupSize(scope);
    unsigned slots = members * params.iters + 1;
    queueStride = std::uint64_t(slots) * 64;

    tailBase = system.allocate(groups * 64ULL);
    queueBase = system.allocate(groups * queueStride);
    dataBase = system.allocate(groups * 64ULL);

    // Slot 0 of every group's queue starts unlocked.
    for (unsigned g = 0; g < groups; ++g)
        system.memory().write(queueBase + g * queueStride, 1, 8);

    StyleParams sp{params.style, params.backoffMinCycles,
                   params.backoffMaxCycles, false};

    KernelBuilder b;
    Label l_end = b.label();
    b.bnz(isa::rWfId, l_end);
    emitSyncProlog(b, sp);
    emitGroupAddrs(b, members, tailBase, 64, dataBase);
    // rScratchC = this group's queue base
    b.muli(rScratchB, rGroup,
           static_cast<std::int64_t>(queueStride));
    b.movi(rScratchC, static_cast<std::int64_t>(queueBase));
    b.add(rScratchC, rScratchC, rScratchB);
    b.movi(rConst, -1);
    b.movi(rScratchB, 64);  // queue-slot stride operand
    b.movi(rIter, 0);

    Label loop = b.here();
    // my slot = fetch-and-add(tail, 64) + queue base
    b.atom(rMyTicket, AtomicOpcode::Add, rSyncAddr, 0, rScratchB, 0,
           /*acquire=*/true);
    b.add(rMyTicket, rMyTicket, rScratchC);
    // wait for my slot to be unlocked (== 1)
    emitWaitEq(b, sp, rMyTicket, 0, rOne);
    emitCriticalSection(b, params);
    // retire my slot and unlock my successor's
    b.atom(rAtomResult, AtomicOpcode::Exch, rMyTicket, 0, rConst);
    b.atom(rAtomResult, AtomicOpcode::Exch, rMyTicket, 64, rOne, 0,
           /*acquire=*/false, /*release=*/true);
    emitLoopTail(b, params, loop);

    b.bind(l_end);
    b.bar();
    b.halt();
    return finishKernel(b, abbrev(), params, 18, 1024);
}

bool
SleepMutexWorkload::validate(const mem::BackingStore &store,
                             const WorkloadParams &params,
                             std::string &error) const
{
    unsigned groups = params.numGroups(scope);
    unsigned members = params.groupSize(scope);
    std::uint64_t acquisitions = std::uint64_t(members) * params.iters;
    if (!checkGroupCounters(store, dataBase, groups, acquisitions,
                            error, "counter")) {
        return false;
    }
    for (unsigned g = 0; g < groups; ++g) {
        std::int64_t tail = store.read(tailBase + g * 64, 8);
        if (tail != static_cast<std::int64_t>(acquisitions * 64)) {
            error = "tail group " + std::to_string(g) + ": " +
                    std::to_string(tail);
            return false;
        }
        std::int64_t last = store.read(
            queueBase + g * queueStride + acquisitions * 64, 8);
        if (last != 1) {
            error = "final queue slot group " + std::to_string(g) +
                    " not unlocked";
            return false;
        }
    }
    return true;
}

} // namespace ifp::workloads
