#include "workloads/registry.hh"

#include "sim/logging.hh"
#include "workloads/apps.hh"
#include "workloads/barriers.hh"
#include "workloads/mutexes.hh"

namespace ifp::workloads {

std::vector<WorkloadPtr>
makeHeteroSyncSuite()
{
    std::vector<WorkloadPtr> suite;
    suite.push_back(
        std::make_unique<SpinMutexWorkload>(Scope::Global, false));
    suite.push_back(
        std::make_unique<SpinMutexWorkload>(Scope::Global, true));
    suite.push_back(std::make_unique<FaMutexWorkload>(Scope::Global));
    suite.push_back(
        std::make_unique<SleepMutexWorkload>(Scope::Global));
    suite.push_back(
        std::make_unique<SpinMutexWorkload>(Scope::Local, false));
    suite.push_back(
        std::make_unique<SpinMutexWorkload>(Scope::Local, true));
    suite.push_back(std::make_unique<FaMutexWorkload>(Scope::Local));
    suite.push_back(std::make_unique<SleepMutexWorkload>(Scope::Local));
    suite.push_back(std::make_unique<TreeBarrierWorkload>(false));
    suite.push_back(std::make_unique<LfTreeBarrierWorkload>(false));
    suite.push_back(std::make_unique<TreeBarrierWorkload>(true));
    suite.push_back(std::make_unique<LfTreeBarrierWorkload>(true));
    return suite;
}

std::vector<WorkloadPtr>
makeFullSuite()
{
    std::vector<WorkloadPtr> suite = makeHeteroSyncSuite();
    suite.push_back(std::make_unique<HashTableWorkload>());
    suite.push_back(std::make_unique<BankAccountWorkload>());
    return suite;
}

WorkloadPtr
makeWorkload(const std::string &abbrev)
{
    for (WorkloadPtr &w : makeFullSuite()) {
        if (w->abbrev() == abbrev)
            return std::move(w);
    }
    ifp_fatal("unknown workload '%s'", abbrev.c_str());
}

std::vector<std::string>
heteroSyncAbbrevs()
{
    std::vector<std::string> names;
    for (const WorkloadPtr &w : makeHeteroSyncSuite())
        names.push_back(w->abbrev());
    return names;
}

} // namespace ifp::workloads
