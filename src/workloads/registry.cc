#include "workloads/registry.hh"

#include <algorithm>
#include <cctype>

#include "sim/logging.hh"
#include "workloads/apps.hh"
#include "workloads/barriers.hh"
#include "workloads/mutexes.hh"
#include "workloads/queues.hh"

namespace ifp::workloads {

std::vector<WorkloadPtr>
makeHeteroSyncSuite()
{
    std::vector<WorkloadPtr> suite;
    suite.push_back(
        std::make_unique<SpinMutexWorkload>(Scope::Global, false));
    suite.push_back(
        std::make_unique<SpinMutexWorkload>(Scope::Global, true));
    suite.push_back(std::make_unique<FaMutexWorkload>(Scope::Global));
    suite.push_back(
        std::make_unique<SleepMutexWorkload>(Scope::Global));
    suite.push_back(
        std::make_unique<SpinMutexWorkload>(Scope::Local, false));
    suite.push_back(
        std::make_unique<SpinMutexWorkload>(Scope::Local, true));
    suite.push_back(std::make_unique<FaMutexWorkload>(Scope::Local));
    suite.push_back(std::make_unique<SleepMutexWorkload>(Scope::Local));
    suite.push_back(std::make_unique<TreeBarrierWorkload>(false));
    suite.push_back(std::make_unique<LfTreeBarrierWorkload>(false));
    suite.push_back(std::make_unique<TreeBarrierWorkload>(true));
    suite.push_back(std::make_unique<LfTreeBarrierWorkload>(true));
    return suite;
}

std::vector<WorkloadPtr>
makeFullSuite()
{
    std::vector<WorkloadPtr> suite = makeHeteroSyncSuite();
    suite.push_back(std::make_unique<HashTableWorkload>());
    suite.push_back(std::make_unique<BankAccountWorkload>());
    suite.push_back(std::make_unique<MpmcQueueWorkload>());
    suite.push_back(std::make_unique<PipelineWorkload>());
    suite.push_back(std::make_unique<WorkStealWorkload>());
    return suite;
}

namespace {

std::string
upperCased(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return out;
}

} // anonymous namespace

WorkloadPtr
makeWorkload(const std::string &abbrev)
{
    std::vector<WorkloadPtr> suite = makeFullSuite();
    for (WorkloadPtr &w : suite) {
        if (w->abbrev() == abbrev)
            return std::move(w);
    }
    // Case-stable fallback: abbreviations are canonically upper-case,
    // so "spm_g" means SPM_G. Exact matches above keep priority.
    std::string wanted = upperCased(abbrev);
    for (WorkloadPtr &w : suite) {
        if (upperCased(w->abbrev()) == wanted)
            return std::move(w);
    }
    std::string valid;
    for (const WorkloadPtr &w : suite) {
        if (!valid.empty())
            valid += ", ";
        valid += w->abbrev();
    }
    ifp_fatal("unknown workload '%s' (valid: %s)", abbrev.c_str(),
              valid.c_str());
}

std::vector<std::string>
heteroSyncAbbrevs()
{
    std::vector<std::string> names;
    for (const WorkloadPtr &w : makeHeteroSyncSuite())
        names.push_back(w->abbrev());
    return names;
}

} // namespace ifp::workloads
