#include "workloads/sync_emitters.hh"

#include "sim/logging.hh"

namespace ifp::workloads {

using core::SyncStyle;
using isa::KernelBuilder;
using isa::Label;
using isa::Reg;
using mem::AtomicOpcode;

void
emitSyncProlog(KernelBuilder &b, const StyleParams &sp)
{
    b.movi(rOne, 1);
    if (sp.style == SyncStyle::SleepBackoff || sp.softwareBackoff)
        b.movi(rBackoffMax, sp.backoffMax);
}

namespace {

/**
 * Emit the backoff step shared by the SleepBackoff style and the
 * software-backoff (SPMBO) variant: pause for rBackoff cycles, then
 * double rBackoff up to rBackoffMax.
 */
void
emitBackoffStep(KernelBuilder &b, const StyleParams &sp)
{
    if (sp.softwareBackoff) {
        // Software delay loop: no s_sleep on the Baseline machine.
        // Each iteration is ~2 issue cycles; rTmp1 counts down.
        b.shri(rTmp1, rBackoff, 1);
        b.addi(rTmp1, rTmp1, 1);
        Label delay = b.here();
        b.subi(rTmp1, rTmp1, 1);
        b.bnz(rTmp1, delay);
    } else {
        b.sleepR(rBackoff);
    }
    // backoff = min(2 * backoff, backoffMax)
    b.shli(rBackoff, rBackoff, 1);
    Label capped = b.label();
    b.cmpLe(rTmp1, rBackoff, rBackoffMax);
    b.bnz(rTmp1, capped);
    b.mov(rBackoff, rBackoffMax);
    b.bind(capped);
}

} // anonymous namespace

void
emitTasAcquire(KernelBuilder &b, const StyleParams &sp, Reg addr_reg,
               std::int64_t offset)
{
    switch (sp.style) {
      case SyncStyle::Busy: {
        if (sp.softwareBackoff)
            b.movi(rBackoff, sp.backoffMin);
        Label retry = b.here();
        Label done = b.label();
        b.atom(rAtomResult, AtomicOpcode::Exch, addr_reg, offset, rOne,
               0, /*acquire=*/true);
        if (sp.softwareBackoff) {
            b.bz(rAtomResult, done);
            emitBackoffStep(b, sp);
            b.br(retry);
        } else {
            b.bnz(rAtomResult, retry);
        }
        b.bind(done);
        return;
      }
      case SyncStyle::SleepBackoff: {
        b.movi(rBackoff, sp.backoffMin);
        Label retry = b.here();
        Label done = b.label();
        b.atom(rAtomResult, AtomicOpcode::Exch, addr_reg, offset, rOne,
               0, /*acquire=*/true);
        b.bz(rAtomResult, done);
        emitBackoffStep(b, sp);
        b.br(retry);
        b.bind(done);
        return;
      }
      case SyncStyle::WaitAtomic: {
        // The waiting exchange re-executes in hardware until it
        // observes the expected free value (Mesa semantics); the
        // branch guards against spurious resumes.
        Label retry = b.here();
        b.atomWait(rAtomResult, AtomicOpcode::Exch, addr_reg, offset,
                   rOne, isa::rZero, /*acquire=*/true);
        b.bnz(rAtomResult, retry);
        return;
      }
      case SyncStyle::WaitInstr: {
        // Figure 10 (top): the wait arms the monitor *after* the
        // failed attempt — the window-of-vulnerability pattern.
        // ifplint flags it (test_window_of_vulnerability.cc provokes
        // it dynamically); that is the point of the MonR variant.
        b.suppressLint("wov", "MonR arms the monitor after the failed "
                              "attempt by design (Figure 10 top); the "
                              "runtime re-check tolerates the race");
        Label retry = b.here();
        Label done = b.label();
        b.atom(rAtomResult, AtomicOpcode::Exch, addr_reg, offset, rOne,
               0, /*acquire=*/true);
        b.bz(rAtomResult, done);
        b.armWait(addr_reg, offset, isa::rZero);
        b.br(retry);
        b.bind(done);
        return;
      }
    }
    ifp_panic("unknown sync style");
}

void
emitTasRelease(KernelBuilder &b, Reg addr_reg, std::int64_t offset)
{
    b.atom(rAtomResult, AtomicOpcode::Exch, addr_reg, offset,
           isa::rZero, 0, /*acquire=*/false, /*release=*/true);
}

void
emitWaitEq(KernelBuilder &b, const StyleParams &sp, Reg addr_reg,
           std::int64_t offset, Reg expected_reg)
{
    switch (sp.style) {
      case SyncStyle::Busy: {
        if (sp.softwareBackoff)
            b.movi(rBackoff, sp.backoffMin);
        Label poll = b.here();
        Label done = b.label();
        b.atom(rAtomResult, AtomicOpcode::Load, addr_reg, offset,
               isa::rZero, 0, /*acquire=*/true);
        b.cmpEq(rTmp0, rAtomResult, expected_reg);
        if (sp.softwareBackoff) {
            b.bnz(rTmp0, done);
            emitBackoffStep(b, sp);
            b.br(poll);
        } else {
            b.bz(rTmp0, poll);
        }
        b.bind(done);
        return;
      }
      case SyncStyle::SleepBackoff: {
        b.movi(rBackoff, sp.backoffMin);
        Label poll = b.here();
        Label done = b.label();
        b.atom(rAtomResult, AtomicOpcode::Load, addr_reg, offset,
               isa::rZero, 0, /*acquire=*/true);
        b.cmpEq(rTmp0, rAtomResult, expected_reg);
        b.bnz(rTmp0, done);
        emitBackoffStep(b, sp);
        b.br(poll);
        b.bind(done);
        return;
      }
      case SyncStyle::WaitAtomic: {
        // compare-and-wait: the paper's new load-class waiting atomic
        // (Figure 10, bottom).
        Label retry = b.here();
        b.atomWait(rAtomResult, AtomicOpcode::Load, addr_reg, offset,
                   isa::rZero, expected_reg, /*acquire=*/true);
        b.cmpEq(rTmp0, rAtomResult, expected_reg);
        b.bz(rTmp0, retry);
        return;
      }
      case SyncStyle::WaitInstr: {
        // Same split check/arm window as emitTasAcquire above.
        b.suppressLint("wov", "MonR arms the monitor after the failed "
                              "attempt by design (Figure 10 top); the "
                              "runtime re-check tolerates the race");
        Label poll = b.here();
        Label done = b.label();
        b.atom(rAtomResult, AtomicOpcode::Load, addr_reg, offset,
               isa::rZero, 0, /*acquire=*/true);
        b.cmpEq(rTmp0, rAtomResult, expected_reg);
        b.bnz(rTmp0, done);
        b.armWait(addr_reg, offset, expected_reg);
        b.br(poll);
        b.bind(done);
        return;
      }
    }
    ifp_panic("unknown sync style");
}

void
emitWaitSeqEq(KernelBuilder &b, const StyleParams &sp, Reg addr_reg,
              std::int64_t offset, Reg expected_reg)
{
    if (sp.style == SyncStyle::WaitInstr) {
        // The check-then-arm window on a slot sequence word: a peer
        // can advance the slot between the failed check and the arm.
        // Benign here — the expected sequence value is persistent
        // (only the waiting party advances it past the expectation),
        // so the post-resume re-check settles it.
        b.suppressLint("wov",
                       "slot-sequence check-then-arm: the expected "
                       "sequence value persists until this waiter "
                       "consumes it, so the re-check after resume "
                       "closes the window");
    }
    // The slot protocol's waits are plain equality waits; only the
    // ownership contract (header comment) differs from emitWaitEq.
    emitWaitEq(b, sp, addr_reg, offset, expected_reg);
}

void
emitWaitCounterReach(KernelBuilder &b, const StyleParams &sp,
                     Reg addr_reg, std::int64_t offset, Reg target_reg)
{
    switch (sp.style) {
      case SyncStyle::Busy: {
        if (sp.softwareBackoff)
            b.movi(rBackoff, sp.backoffMin);
        Label poll = b.here();
        Label done = b.label();
        b.atom(rAtomResult, AtomicOpcode::Load, addr_reg, offset,
               isa::rZero, 0, /*acquire=*/true);
        b.cmpLe(rTmp0, target_reg, rAtomResult);
        if (sp.softwareBackoff) {
            b.bnz(rTmp0, done);
            emitBackoffStep(b, sp);
            b.br(poll);
        } else {
            b.bz(rTmp0, poll);
        }
        b.bind(done);
        return;
      }
      case SyncStyle::SleepBackoff: {
        b.movi(rBackoff, sp.backoffMin);
        Label poll = b.here();
        Label done = b.label();
        b.atom(rAtomResult, AtomicOpcode::Load, addr_reg, offset,
               isa::rZero, 0, /*acquire=*/true);
        b.cmpLe(rTmp0, target_reg, rAtomResult);
        b.bnz(rTmp0, done);
        emitBackoffStep(b, sp);
        b.br(poll);
        b.bind(done);
        return;
      }
      case SyncStyle::WaitAtomic: {
        // Equality wait on the terminal value; safe because the
        // counter never exceeds the target (ceiling contract). The
        // >= guard tolerates spurious resumes.
        Label retry = b.here();
        b.atomWait(rAtomResult, AtomicOpcode::Load, addr_reg, offset,
                   isa::rZero, target_reg, /*acquire=*/true);
        b.cmpLe(rTmp0, target_reg, rAtomResult);
        b.bz(rTmp0, retry);
        return;
      }
      case SyncStyle::WaitInstr: {
        // Check-then-arm on the terminal counter value: an increment
        // between check and arm is benign because the counter parks
        // at the target, so the armed equality still fires (or the
        // rescue re-check observes >= target).
        b.suppressLint("wov",
                       "ceiling-counter check-then-arm: the counter "
                       "parks at the armed target value, so a missed "
                       "increment still leaves the condition true for "
                       "the re-check");
        Label poll = b.here();
        Label done = b.label();
        b.atom(rAtomResult, AtomicOpcode::Load, addr_reg, offset,
               isa::rZero, 0, /*acquire=*/true);
        b.cmpLe(rTmp0, target_reg, rAtomResult);
        b.bnz(rTmp0, done);
        b.armWait(addr_reg, offset, target_reg);
        b.br(poll);
        b.bind(done);
        return;
      }
    }
    ifp_panic("unknown sync style");
}

} // namespace ifp::workloads
