/**
 * @file
 * HeteroSync mutex microbenchmarks.
 *
 * Every work-group performs `iters` lock / critical-section / unlock
 * rounds on the synchronization variables of its locality group (one
 * group for globally scoped variants, groups of L WGs for locally
 * scoped ones). The critical section increments a shared counter,
 * which the validator checks for mutual exclusion (a lost update
 * means the lock was broken).
 */

#ifndef IFP_WORKLOADS_MUTEXES_HH
#define IFP_WORKLOADS_MUTEXES_HH

#include "workloads/workload.hh"

namespace ifp::workloads {

/** Test-and-set lock (SPM_G / SPM_L / SPMBO_G / SPMBO_L). */
class SpinMutexWorkload : public Workload
{
  public:
    SpinMutexWorkload(Scope scope, bool backoff)
        : scope(scope), backoff(backoff)
    {}

    std::string name() const override;
    std::string abbrev() const override;
    Table2Row characteristics() const override;
    isa::Kernel build(core::GpuSystem &system,
                      const WorkloadParams &params) const override;
    bool validate(const mem::BackingStore &store,
                  const WorkloadParams &params,
                  std::string &error) const override;

  private:
    Scope scope;
    bool backoff;
    mutable mem::Addr locksBase = 0;
    mutable mem::Addr dataBase = 0;
};

/** Centralized ticket lock via fetch-and-add (FAM_G / FAM_L). */
class FaMutexWorkload : public Workload
{
  public:
    explicit FaMutexWorkload(Scope scope) : scope(scope) {}

    std::string name() const override;
    std::string abbrev() const override;
    Table2Row characteristics() const override;
    isa::Kernel build(core::GpuSystem &system,
                      const WorkloadParams &params) const override;
    bool validate(const mem::BackingStore &store,
                  const WorkloadParams &params,
                  std::string &error) const override;

  private:
    Scope scope;
    mutable mem::Addr syncBase = 0;   //!< ticket + now-serving lines
    mutable mem::Addr dataBase = 0;
};

/**
 * Decentralized ticket lock (SLM_G / SLM_L): the queue-based
 * "sleep mutex" of Figure 10. Each acquirer takes a private queue
 * slot and waits for its own slot to be unlocked by its predecessor.
 */
class SleepMutexWorkload : public Workload
{
  public:
    explicit SleepMutexWorkload(Scope scope) : scope(scope) {}

    std::string name() const override;
    std::string abbrev() const override;
    Table2Row characteristics() const override;
    isa::Kernel build(core::GpuSystem &system,
                      const WorkloadParams &params) const override;
    bool validate(const mem::BackingStore &store,
                  const WorkloadParams &params,
                  std::string &error) const override;

  private:
    Scope scope;
    mutable mem::Addr tailBase = 0;
    mutable mem::Addr queueBase = 0;
    mutable mem::Addr dataBase = 0;
    mutable std::uint64_t queueStride = 0;
};

} // namespace ifp::workloads

#endif // IFP_WORKLOADS_MUTEXES_HH
