/**
 * @file
 * Concurrent-queue and producer/consumer workloads (DESIGN.md §14).
 *
 * Unlike the HeteroSync suite — whose waits target a handful of lock
 * and barrier words — this family blocks work-groups on DATA
 * conditions: queue-slot sequence numbers (empty/full) and drain
 * counters. Many distinct addresses carry waits whose expected values
 * climb monotonically, which stresses exactly the SyncMon paths the
 * mutex workloads leave cold: the AWG resume predictor's counting
 * Bloom filters at high unique-update rates and the Monitor Log
 * spill/refill machinery.
 *
 * Every hardware wait in the family awaits a PERSISTENT value (the
 * WaitAtomic re-execute loop never returns to software for a
 * re-check, see sync_emitters.hh):
 *  - slot-sequence waits (the bounded-MPMC protocol): the expected
 *    sequence stays put until the waiting party itself advances it;
 *  - ceiling-counter waits: the counter's terminal value is the
 *    expectation, and the counter parks there.
 */

#ifndef IFP_WORKLOADS_QUEUES_HH
#define IFP_WORKLOADS_QUEUES_HH

#include "core/policy.hh"
#include "core/liveness.hh"
#include "workloads/workload.hh"

namespace ifp::workloads {

/**
 * MPMC broker queue (MPMCQ): a bounded multi-producer/multi-consumer
 * ring with ticket-based head/tail counters and one 64-byte line per
 * slot (sequence word at +0, payload at +8), the classic bounded-MPMC
 * slot protocol. Producer WGs fetch-add the tail ticket and wait for
 * their slot's sequence to equal the ticket; consumers fetch-add the
 * head ticket and wait for ticket+1. Both break once their ticket
 * reaches the item total, so the final counter values are exact.
 */
class MpmcQueueWorkload : public Workload
{
  public:
    /**
     * @param depth           ring slots
     * @param producer_share  producer:consumer WG ratio, producers
     * @param consumer_share  ... and consumers (e.g. 1:1, 3:1)
     */
    explicit MpmcQueueWorkload(unsigned depth = 8,
                               unsigned producer_share = 1,
                               unsigned consumer_share = 1)
        : depth(depth), producerShare(producer_share),
          consumerShare(consumer_share)
    {}

    std::string name() const override;
    std::string abbrev() const override;
    Table2Row characteristics() const override;
    isa::Kernel build(core::GpuSystem &system,
                      const WorkloadParams &params) const override;
    bool validate(const mem::BackingStore &store,
                  const WorkloadParams &params,
                  std::string &error) const override;

    /** Producer WG count for a grid of @p num_wgs. */
    unsigned numProducers(unsigned num_wgs) const;

    /** Items transported in one run. */
    static std::uint64_t
    totalItems(const WorkloadParams &params)
    {
        return std::uint64_t(params.numWgs) * params.iters;
    }

  private:
    unsigned depth;
    unsigned producerShare;
    unsigned consumerShare;
    mutable mem::Addr slotsBase = 0;
    mutable mem::Addr ticketsBase = 0;  //!< tail at +0, head at +64
    mutable mem::Addr checksumBase = 0;
};

/**
 * Multi-stage pipeline (PIPE): stage-0 WGs source numbered items,
 * interior stages transform (+1) and forward, the final stage folds
 * items into a checksum. Adjacent stages are connected by bounded
 * rings of the same slot protocol as MPMCQ, so stages block on
 * empty/full DATA conditions, never on mutexes. Stage role is
 * wgId % numStages.
 */
class PipelineWorkload : public Workload
{
  public:
    explicit PipelineWorkload(unsigned stages = 3, unsigned depth = 8)
        : stages(stages), depth(depth)
    {}

    std::string name() const override;
    std::string abbrev() const override;
    Table2Row characteristics() const override;
    isa::Kernel build(core::GpuSystem &system,
                      const WorkloadParams &params) const override;
    bool validate(const mem::BackingStore &store,
                  const WorkloadParams &params,
                  std::string &error) const override;

    static std::uint64_t
    totalItems(const WorkloadParams &params)
    {
        return std::uint64_t(params.numWgs) * params.iters;
    }

  private:
    /** WGs running stage @p s of a @p num_wgs grid. */
    unsigned stageWgs(unsigned s, unsigned num_wgs) const;

    unsigned stages;
    unsigned depth;
    mutable mem::Addr ringsBase = 0;    //!< stages-1 rings of slots
    mutable mem::Addr ticketsBase = 0;  //!< per ring: tail +0, head +64
    mutable mem::Addr sourceBase = 0;
    mutable mem::Addr checksumBase = 0;
};

/**
 * Work-stealing task graph (WSD): each WG owns a deque of iters
 * tasks (one 64-byte line per task: claim word at +0, value at +8).
 * A WG drains its own deque, sweeps every other WG's deque stealing
 * unclaimed tasks (atomic exchange claims), then parks on a ceiling
 * wait until the global done counter reaches the task total. The
 * done counter takes G*iters distinct values before the expectation
 * is met — the highest unique-update rate in the registry, which is
 * what drives the AWG Bloom predictor into its saturating regime.
 */
class WorkStealWorkload : public Workload
{
  public:
    WorkStealWorkload() = default;

    std::string name() const override;
    std::string abbrev() const override;
    Table2Row characteristics() const override;
    isa::Kernel build(core::GpuSystem &system,
                      const WorkloadParams &params) const override;
    bool validate(const mem::BackingStore &store,
                  const WorkloadParams &params,
                  std::string &error) const override;

    static std::uint64_t
    totalTasks(const WorkloadParams &params)
    {
        return std::uint64_t(params.numWgs) * params.iters;
    }

  private:
    mutable mem::Addr tasksBase = 0;
    mutable mem::Addr doneBase = 0;
    mutable mem::Addr checksumBase = 0;
};

/** Abbreviations of the queue family, in registry order. */
std::vector<std::string> queueAbbrevs();

/**
 * Annotated verdict for a queue workload under @p policy at the
 * default all-resident geometry (every WG resident, so even the
 * IFP-less busy/sleep policies complete). Mirrors the litmus
 * annotation contract: tests drive each (workload, policy) cell and
 * fail on any observed verdict that contradicts the annotation.
 */
core::Verdict queueExpectedVerdict(const std::string &abbrev,
                                   core::Policy policy);

} // namespace ifp::workloads

#endif // IFP_WORKLOADS_QUEUES_HH
