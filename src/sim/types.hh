/**
 * @file
 * Fundamental simulation types: ticks, cycles and addresses.
 *
 * The simulator counts time in abstract "ticks". Every clocked component
 * converts its local cycle count into ticks through its clock period
 * (see sim/clocked.hh). With the default GPU clock of 2 GHz and a tick
 * resolution of 1 ps, one GPU cycle equals 500 ticks.
 */

#ifndef IFP_SIM_TYPES_HH
#define IFP_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace ifp::sim {

/** Absolute simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** Relative time expressed in cycles of some clock domain. */
using Cycles = std::uint64_t;

/** Largest representable tick; used as "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Ticks per second: 1 ps resolution. */
constexpr Tick ticksPerSecond = 1'000'000'000'000ULL;

/** Convert a frequency in Hz into a clock period in ticks. */
constexpr Tick
periodFromFrequency(std::uint64_t hz)
{
    return ticksPerSecond / hz;
}

/** Convert microseconds of simulated time into ticks. */
constexpr Tick
ticksFromMicroseconds(std::uint64_t us)
{
    return us * (ticksPerSecond / 1'000'000ULL);
}

} // namespace ifp::sim

namespace ifp::mem {

/** Physical/virtual address within the simulated memory space. */
using Addr = std::uint64_t;

/** The value type transported by memory operations. */
using MemValue = std::int64_t;

} // namespace ifp::mem

#endif // IFP_SIM_TYPES_HH
