#include "sim/stats.hh"

#include <iomanip>
#include <memory>

namespace ifp::sim {

double
Vector::total() const
{
    double sum = 0.0;
    for (double v : vals)
        sum += v;
    return sum;
}

void
Histogram::init(double min, double max, std::size_t buckets)
{
    ifp_assert(max > min, "histogram range must be non-empty");
    ifp_assert(buckets > 0, "histogram needs at least one bucket");
    lo = min;
    hi = max;
    counts.assign(buckets, 0);
    bucketWidth = (hi - lo) / static_cast<double>(buckets);
    reset();
}

void
Histogram::sample(double value, std::uint64_t n)
{
    if (count == 0) {
        observedMin = value;
        observedMax = value;
    } else {
        observedMin = std::min(observedMin, value);
        observedMax = std::max(observedMax, value);
    }
    count += n;
    sum += value * static_cast<double>(n);

    if (value < lo) {
        underflow += n;
    } else if (value >= hi) {
        overflow += n;
    } else {
        auto idx = static_cast<std::size_t>((value - lo) / bucketWidth);
        if (idx >= counts.size())
            idx = counts.size() - 1;
        counts[idx] += n;
    }
}

void
Histogram::reset()
{
    counts.assign(counts.size(), 0);
    underflow = 0;
    overflow = 0;
    count = 0;
    sum = 0.0;
    observedMin = 0.0;
    observedMax = 0.0;
}

Scalar &
StatGroup::addScalar(const std::string &name, std::string desc)
{
    scalars.push_back({name, std::move(desc),
                       std::make_unique<Scalar>()});
    return *scalars.back().stat;
}

Vector &
StatGroup::addVector(const std::string &name, std::size_t size,
                     std::string desc)
{
    vectors.push_back({name, std::move(desc),
                       std::make_unique<Vector>()});
    vectors.back().stat->init(size);
    return *vectors.back().stat;
}

Histogram &
StatGroup::addHistogram(const std::string &name, double min, double max,
                        std::size_t buckets, std::string desc)
{
    histograms.push_back({name, std::move(desc),
                          std::make_unique<Histogram>()});
    histograms.back().stat->init(min, max, buckets);
    return *histograms.back().stat;
}

Formula &
StatGroup::addFormula(const std::string &name, Formula::Fn fn,
                      std::string desc)
{
    formulas.push_back({name, std::move(desc),
                        std::make_unique<Formula>(std::move(fn))});
    return *formulas.back().stat;
}

const Scalar *
StatGroup::tryScalar(const std::string &name) const
{
    for (const auto &entry : scalars) {
        if (entry.name == name)
            return entry.stat.get();
    }
    return nullptr;
}

const Vector *
StatGroup::tryVector(const std::string &name) const
{
    for (const auto &entry : vectors) {
        if (entry.name == name)
            return entry.stat.get();
    }
    return nullptr;
}

const Scalar &
StatGroup::scalar(const std::string &name) const
{
    if (const Scalar *s = tryScalar(name))
        return *s;
    ifp_panic("no scalar stat '%s' in group '%s'", name.c_str(),
              groupName.c_str());
}

bool
StatGroup::hasScalar(const std::string &name) const
{
    return tryScalar(name) != nullptr;
}

const Vector &
StatGroup::vector(const std::string &name) const
{
    if (const Vector *v = tryVector(name))
        return *v;
    ifp_panic("no vector stat '%s' in group '%s'", name.c_str(),
              groupName.c_str());
}

const Histogram &
StatGroup::histogram(const std::string &name) const
{
    for (const auto &entry : histograms) {
        if (entry.name == name)
            return *entry.stat;
    }
    ifp_panic("no histogram stat '%s' in group '%s'", name.c_str(),
              groupName.c_str());
}

double
StatGroup::formulaValue(const std::string &name) const
{
    for (const auto &entry : formulas) {
        if (entry.name == name)
            return entry.stat->value();
    }
    ifp_panic("no formula stat '%s' in group '%s'", name.c_str(),
              groupName.c_str());
}

void
StatGroup::dump(std::ostream &os) const
{
    auto emit = [&](const std::string &name, double value,
                    const std::string &desc) {
        os << groupName << '.' << std::left << std::setw(32) << name
           << ' ' << std::right << std::setw(16) << value;
        if (!desc.empty())
            os << "  # " << desc;
        os << '\n';
    };

    for (const auto &entry : scalars)
        emit(entry.name, entry.stat->value(), entry.desc);
    for (const auto &entry : vectors) {
        for (std::size_t i = 0; i < entry.stat->size(); ++i) {
            emit(entry.name + "[" + std::to_string(i) + "]",
                 entry.stat->at(i), entry.desc);
        }
        emit(entry.name + ".total", entry.stat->total(), entry.desc);
    }
    for (const auto &entry : histograms) {
        emit(entry.name + ".samples",
             static_cast<double>(entry.stat->samples()), entry.desc);
        emit(entry.name + ".mean", entry.stat->mean(), entry.desc);
        emit(entry.name + ".min", entry.stat->minSeen(), entry.desc);
        emit(entry.name + ".max", entry.stat->maxSeen(), entry.desc);
    }
    for (const auto &entry : formulas)
        emit(entry.name, entry.stat->value(), entry.desc);
}

namespace {

// JSON number formatting: integral values as integers (the common
// case for counters) and %.17g otherwise, so dumps are deterministic
// and doubles round-trip exactly.
void
emitJsonNumber(std::ostream &os, double value)
{
    char buf[40];
    if (value == static_cast<double>(static_cast<long long>(value))) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    }
    os << buf;
}

} // anonymous namespace

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{\"name\":\"" << groupName << "\",\"scalars\":{";
    bool first = true;
    for (const auto &entry : scalars) {
        os << (first ? "" : ",") << "\"" << entry.name << "\":";
        emitJsonNumber(os, entry.stat->value());
        first = false;
    }
    os << "},\"vectors\":{";
    first = true;
    for (const auto &entry : vectors) {
        os << (first ? "" : ",") << "\"" << entry.name << "\":[";
        for (std::size_t i = 0; i < entry.stat->size(); ++i) {
            if (i)
                os << ",";
            emitJsonNumber(os, entry.stat->at(i));
        }
        os << "]";
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &entry : histograms) {
        os << (first ? "" : ",") << "\"" << entry.name
           << "\":{\"samples\":"
           << entry.stat->samples() << ",\"mean\":";
        emitJsonNumber(os, entry.stat->mean());
        os << ",\"min\":";
        emitJsonNumber(os, entry.stat->minSeen());
        os << ",\"max\":";
        emitJsonNumber(os, entry.stat->maxSeen());
        os << ",\"underflows\":" << entry.stat->underflows()
           << ",\"overflows\":" << entry.stat->overflows()
           << ",\"buckets\":[";
        for (std::size_t i = 0; i < entry.stat->numBuckets(); ++i)
            os << (i ? "," : "") << entry.stat->bucket(i);
        os << "]}";
        first = false;
    }
    os << "},\"formulas\":{";
    first = true;
    for (const auto &entry : formulas) {
        os << (first ? "" : ",") << "\"" << entry.name << "\":";
        emitJsonNumber(os, entry.stat->value());
        first = false;
    }
    os << "}}";
}

void
StatGroup::reset()
{
    for (auto &entry : scalars)
        entry.stat->reset();
    for (auto &entry : vectors)
        entry.stat->reset();
    for (auto &entry : histograms)
        entry.stat->reset();
}

} // namespace ifp::sim
