/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The EventQueue keeps a min-heap of (tick, sequence, event) triples and
 * executes them in order. Events scheduled for the same tick run in the
 * order they were scheduled, which keeps the simulator deterministic.
 *
 * Two event flavours are provided:
 *  - Event: subclass and override process().
 *  - LambdaEvent / EventQueue::schedule(tick, fn): wrap a callable.
 *
 * An event object is owned by its creator and must outlive its scheduled
 * occurrence; the queue never deletes events. LambdaEvents created via
 * the schedule(tick, fn) convenience are owned by the queue and are
 * recycled through a free-list once they fire: a one-shot allocates at
 * most once per *concurrently pending* lambda, not once per schedule.
 *
 * Reentrancy contract: an EventQueue is confined to one thread at a
 * time, but any number of queues may be live concurrently on
 * different threads (one per parallel-sweep worker). The only global
 * the queue touches — the trace-tick hook — is thread-local and is
 * held via an RAII TraceTickScope opened around step()/simulate(), so
 * interleaved queues on one thread and concurrent queues on many
 * threads both trace their own ticks, and a dying queue never leaves
 * a hook behind.
 */

#ifndef IFP_SIM_EVENT_QUEUE_HH
#define IFP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/small_func.hh"
#include "sim/types.hh"

namespace ifp::sim {

class EventQueue;

/**
 * Base class for all schedulable events.
 */
class Event
{
  public:
    virtual ~Event();

    /** Callback invoked when the event's tick is reached. */
    virtual void process() = 0;

    /** Human-readable description, used in traces. */
    virtual std::string description() const { return "generic event"; }

    /** True while the event sits in some queue. */
    bool scheduled() const { return _scheduled; }

    /** Tick this event is scheduled for (valid only when scheduled). */
    Tick when() const { return _when; }

  private:
    friend class EventQueue;

    bool _scheduled = false;
    bool _squashed = false;
    bool _owned = false;   //!< queue-owned one-shot, recyclable
    Tick _when = 0;
    std::uint64_t _sequence = 0;
};

/** Event wrapping an arbitrary callable. */
class LambdaEvent : public Event
{
  public:
    /**
     * Retained description capacity cap: a recycled one-shot keeps
     * its desc string's buffer for reuse, but not past this size, so
     * a single verbose scheduler cannot pin large buffers in the
     * free-list forever. The cap is above libstdc++'s SSO threshold;
     * the hot-path device descriptions all fit inline.
     */
    static constexpr std::size_t descCapacityCap = 32;

    explicit LambdaEvent(SmallFunc fn, std::string desc = "")
        : callback(std::move(fn)), desc(std::move(desc))
    {}

    void process() override { callback(); }

    /** Re-arm a recycled one-shot with a new callable. */
    void
    reset(SmallFunc fn, std::string d)
    {
        callback = std::move(fn);
        desc = std::move(d);
    }

    /** Drop the callable so captured resources release promptly. */
    void
    release()
    {
        callback = nullptr;
        if (desc.capacity() > descCapacityCap)
            std::string().swap(desc);
        else
            desc.clear();
    }

    std::string
    description() const override
    {
        return desc.empty() ? "lambda event" : desc;
    }

  private:
    SmallFunc callback;
    std::string desc;
};

/**
 * The global ordering structure of the simulation.
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Schedule @p event at absolute tick @p when (>= curTick). */
    void schedule(Event *event, Tick when);

    /**
     * Remove a scheduled event from the queue. A queue-owned one-shot
     * (from schedule(Tick, fn)) is released and recycled immediately:
     * its captured resources drop now and the LambdaEvent returns to
     * the free-list instead of being stranded behind its stale heap
     * entry. The handle must not be used again after descheduling.
     */
    void deschedule(Event *event);

    /** Deschedule (if needed) and reschedule at a new tick. */
    void reschedule(Event *event, Tick when);

    /**
     * Convenience: schedule a one-shot callable. The queue owns the
     * temporary event and recycles it after execution. The returned
     * handle stays valid until the event fires or is descheduled —
     * use it only to deschedule() the one-shot early.
     */
    Event *schedule(Tick when, SmallFunc fn, std::string desc = "");

    /** True when no events remain. */
    bool empty() const { return heap.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return liveEvents; }

    /**
     * Run until the queue drains or @p limit is exceeded.
     * @return the tick of the last executed event.
     */
    Tick simulate(Tick limit = maxTick);

    /**
     * Tick of the earliest live event, or maxTick when drained.
     * Prunes stale heap entries (deschedule leftovers) on the way, so
     * the answer reflects live events only.
     */
    Tick nextEventTick();

    /** Execute exactly one event, if any. @return true if one ran. */
    bool step();

    /** Total number of events executed so far. */
    std::uint64_t numExecuted() const { return executed; }

    /** Distinct one-shot LambdaEvents ever allocated by this queue. */
    std::size_t ownedPoolSize() const { return owned.size(); }

    /** Fired one-shots currently parked for reuse. */
    std::size_t freeListSize() const { return freeList.size(); }

  private:
    /** step() minus the trace-tick scope; simulate() loops on this. */
    bool stepOne();

    /**
     * @p recycleOwned false keeps a queue-owned one-shot out of the
     * free-list (reschedule() re-arms the same object immediately).
     */
    void descheduleImpl(Event *event, bool recycleOwned);

    struct HeapEntry
    {
        Tick when;
        std::uint64_t sequence;
        Event *event;

        bool
        operator>(const HeapEntry &other) const
        {
            return when != other.when ? when > other.when
                                      : sequence > other.sequence;
        }
    };

    using Heap = std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                     std::greater<HeapEntry>>;

    Heap heap;
    /** Owns every one-shot this queue ever allocated (pool + live). */
    std::vector<std::unique_ptr<LambdaEvent>> owned;
    /** Fired one-shots ready for the next schedule(Tick, fn). */
    std::vector<LambdaEvent *> freeList;
    Tick _curTick = 0;
    std::uint64_t nextSequence = 0;
    std::uint64_t executed = 0;
    std::size_t liveEvents = 0;
};

} // namespace ifp::sim

#endif // IFP_SIM_EVENT_QUEUE_HH
