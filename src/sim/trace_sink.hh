/**
 * @file
 * Structured tracing: typed per-run event streams and exporters.
 *
 * Components emit TraceEvents (WG lifecycle transitions, SyncMon
 * condition activity, CP Monitor-Log traffic) into a per-run
 * TraceSink instead of printf-style text. The sink is replayed by the
 * exporters:
 *
 *  - writeChromeTrace(): Chrome-trace / Perfetto-loadable JSON with
 *    one track per CU (instant events) and async spans per WG
 *    (lifetime plus lifecycle phase segments),
 *  - the stats-JSON path (harness/observe.hh) for machine-readable
 *    end-of-run statistics.
 *
 * Tracing must be zero-cost when disabled: every emission site goes
 * through the inline emitTrace() helper, which compiles down to a
 * single null-pointer test when no sink is installed. A run enables
 * tracing via core::RunConfig::traceEnabled; each GpuSystem owns its
 * sink, so parallel sweep workers never share trace state.
 *
 * StallReason also keys the per-WG stall-cycle accounting (the
 * observability twin of Figure 11): every tick of a WG's life between
 * creation and completion is attributed to exactly one reason, so the
 * per-reason totals partition the WG's lifetime.
 */

#ifndef IFP_SIM_TRACE_SINK_HH
#define IFP_SIM_TRACE_SINK_HH

#include <cstdint>
#include <ostream>
#include <thread>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ifp::sim {

/**
 * Where a work-group's cycles go. Running means useful work; every
 * other value is a stall. The enum indexes the per-WG accounting
 * arrays and the per-policy breakdown vectors.
 */
enum class StallReason : std::uint8_t
{
    Running,        //!< issuing useful work
    Spin,           //!< s_sleep backoff spinning between retries
    Waiting,        //!< waiting on a sync condition (stalled/swapped)
    SaveRestore,    //!< context save or restore in flight
    DispatchQueue,  //!< runnable but waiting for CU resources
    Memory,         //!< all live wavefronts blocked on memory
};

constexpr std::size_t numStallReasons = 6;

/** Printable name of a StallReason. */
const char *stallReasonName(StallReason reason);

/** Array index of a StallReason. */
constexpr std::size_t
stallIndex(StallReason reason)
{
    return static_cast<std::size_t>(reason);
}

/** The typed events components emit. */
enum class TraceEventKind : std::uint8_t
{
    WgDispatched,   //!< fresh WG placed on a CU
    WgActivated,    //!< wavefronts became runnable (fresh or restored)
    WgStalled,      //!< waiting policy put the WG into WaitSync
    WgSwitchOut,    //!< context save started (drain begins)
    WgSwitchedOut,  //!< context saved, resources freed
    WgResumed,      //!< condition met / rescue resumed the WG
    WgSwapIn,       //!< context restore started
    WgCompleted,    //!< all wavefronts halted
    WgPreempted,    //!< forcibly pre-empted (CU loss)
    CondArmed,      //!< SyncMon registered a waiting condition
    CondFired,      //!< SyncMon resumed waiters of a met condition
    CondSpilled,    //!< condition spilled towards the Monitor Log
    LogAbsorb,      //!< CP Monitor Log absorbed a spilled condition
    LogDrain,       //!< CP drained log entries into the monitor table
    CuOffline,      //!< CU lost to kernel-level scheduling
    CuOnline,       //!< CU restored to the schedulable pool
    FaultInjected,  //!< fault-plan event fired (value = FaultKind)
    KernelEnqueued,   //!< dispatch context arrived (value = ctx id)
    KernelAdmitted,   //!< context made resident (value = ctx id)
    KernelPreempted,  //!< a context's WG was evicted (value = ctx id)
    KernelCompleted,  //!< every WG of the context done (value = ctx id)
};

/** Printable name of a TraceEventKind. */
const char *traceEventKindName(TraceEventKind kind);

/** One structured trace record. */
struct TraceEvent
{
    Tick tick = 0;
    TraceEventKind kind{};
    StallReason reason = StallReason::Running;
    std::int32_t wg = -1;     //!< work-group id, -1 when n/a
    std::int32_t cu = -1;     //!< compute unit id, -1 when n/a
    std::uint64_t addr = 0;   //!< condition address, 0 when n/a
    std::int64_t value = 0;   //!< expected value / count payload
};

/**
 * Per-run collector of TraceEvents. One sink per GpuSystem. Every
 * emitter (dispatcher, CUs, CP, SyncMon) lives in the root event
 * domain, which the PDES core always executes on the thread that
 * built the system — so the sink needs no locking even under
 * --shards N, and events arrive in tick order because root events
 * execute in tick order. record() asserts that confinement: an
 * emitter migrating into a bank domain would corrupt the stream
 * silently otherwise.
 */
class TraceSink
{
  public:
    TraceSink() : owner(std::this_thread::get_id()) {}

    void
    record(const TraceEvent &event)
    {
        ifp_assert(std::this_thread::get_id() == owner,
                   "TraceEvent recorded off the owning thread "
                   "(emitter outside the root domain?)");
        eventsVec.push_back(event);
    }

    const std::vector<TraceEvent> &events() const { return eventsVec; }
    std::size_t size() const { return eventsVec.size(); }
    void clear() { eventsVec.clear(); }

    /**
     * Export as Chrome-trace JSON (load in Perfetto / chrome://tracing
     * or ui.perfetto.dev): one named track per CU carrying instant
     * events, one pair of async span streams per WG (lifetime and
     * lifecycle phases), and separate SyncMon / CP processes.
     * Timestamps are microseconds of simulated time.
     */
    void writeChromeTrace(std::ostream &os, unsigned num_cus) const;

  private:
    std::vector<TraceEvent> eventsVec;
    /** The thread that built the run; the only one allowed to emit. */
    std::thread::id owner;
};

/**
 * The emission helper every instrumentation site uses. With tracing
 * disabled @p sink is null and this inlines to one predictable branch
 * — the "compile-time-inlined null sink" that keeps traced builds
 * free when the feature is off.
 */
inline void
emitTrace(TraceSink *sink, Tick tick, TraceEventKind kind, int wg = -1,
          int cu = -1, StallReason reason = StallReason::Running,
          std::uint64_t addr = 0, std::int64_t value = 0)
{
    if (sink) {
        sink->record(TraceEvent{tick, kind, reason,
                                static_cast<std::int32_t>(wg),
                                static_cast<std::int32_t>(cu), addr,
                                value});
    }
}

} // namespace ifp::sim

#endif // IFP_SIM_TRACE_SINK_HH
