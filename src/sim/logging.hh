/**
 * @file
 * Error and status reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  - an internal simulator invariant was violated; aborts.
 * fatal()  - the user asked for something unsupported; exits cleanly.
 * warn()   - something is questionable but simulation continues.
 * inform() - plain status output.
 *
 * A lightweight trace facility (debug flags + tracePrintf) stands in for
 * gem5's DPRINTF. Flags are enabled by name at runtime, so unit tests and
 * examples can turn on per-module tracing without recompiling.
 */

#ifndef IFP_SIM_LOGGING_HH
#define IFP_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace ifp::sim {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

#define ifp_panic(...) \
    ::ifp::sim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define ifp_fatal(...) \
    ::ifp::sim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define ifp_assert(cond, ...)                                         \
    do {                                                              \
        if (!(cond))                                                  \
            ::ifp::sim::panicImpl(__FILE__, __LINE__, __VA_ARGS__);   \
    } while (0)

/** Enable a debug/trace flag by name (e.g. "SyncMon", "CU"). */
void setDebugFlag(const std::string &flag);

/** Disable a previously enabled debug flag. */
void clearDebugFlag(const std::string &flag);

/**
 * True when the given trace flag has been enabled. Flags are shared
 * across threads (guarded internally); the no-flags-enabled fast path
 * is a single relaxed atomic load so tracing costs nothing when off.
 */
bool debugFlagEnabled(const std::string &flag);

/**
 * Emit one trace line, prefixed with the current tick and the flag name,
 * if the flag is enabled. Mirrors gem5's DPRINTF.
 */
void tracePrintf(const std::string &flag, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * RAII hook used by tracePrintf to learn the current simulated time.
 * The tick source is *thread-local*: each worker thread of a parallel
 * sweep traces against the EventQueue it is currently stepping, and
 * concurrently-live queues never cross-wire.
 *
 * A scope installs @p tick_counter for the calling thread on
 * construction and restores the previously installed source on
 * destruction. Scopes must nest like stack frames within a thread
 * (which they do naturally as locals); EventQueue opens one around
 * each step so traces always report the stepping queue's time. With
 * no scope open, traceCurrentTick() reports 0.
 */
class TraceTickScope
{
  public:
    explicit TraceTickScope(const std::uint64_t *tick_counter);
    ~TraceTickScope();

    TraceTickScope(const TraceTickScope &) = delete;
    TraceTickScope &operator=(const TraceTickScope &) = delete;

  private:
    const std::uint64_t *prev;
    const std::uint64_t *mine;
};

/** Tick the calling thread's trace facility would print right now. */
std::uint64_t traceCurrentTick();

} // namespace ifp::sim

#endif // IFP_SIM_LOGGING_HH
