/**
 * @file
 * Named simulation objects and clock-domain helpers.
 *
 * SimObject gives every model a name for tracing and stats registration.
 * Clocked adds a clock period and the cycle/tick conversions every
 * timing model needs (mirrors gem5's ClockedObject).
 */

#ifndef IFP_SIM_CLOCKED_HH
#define IFP_SIM_CLOCKED_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace ifp::sim {

/**
 * Base class for every named component in the simulated system.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : _name(std::move(name)), _eventq(eq)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Hierarchical instance name, e.g. "gpu.cu3.l1". */
    const std::string &name() const { return _name; }

    /** The event queue this object schedules on. */
    EventQueue &eventq() const { return _eventq; }

    /** Current simulated time. */
    Tick curTick() const { return _eventq.curTick(); }

  private:
    std::string _name;
    EventQueue &_eventq;
};

/**
 * A SimObject that belongs to a clock domain.
 */
class Clocked : public SimObject
{
  public:
    Clocked(std::string name, EventQueue &eq, Tick clock_period)
        : SimObject(std::move(name), eq), period(clock_period)
    {
        ifp_assert(period > 0, "clock period must be positive");
    }

    /** Length of one clock cycle in ticks. */
    Tick clockPeriod() const { return period; }

    /** Current time expressed in local cycles (truncating). */
    Cycles curCycle() const { return curTick() / period; }

    /**
     * The tick of the next clock edge at least @p cycles cycles in the
     * future. clockEdge(0) is the current edge if we sit exactly on one,
     * otherwise the next edge.
     */
    Tick
    clockEdge(Cycles cycles = 0) const
    {
        Tick now = curTick();
        Tick edge = ((now + period - 1) / period) * period;
        return edge + cycles * period;
    }

    /** Convert a cycle count of this domain into ticks. */
    Tick cyclesToTicks(Cycles cycles) const { return cycles * period; }

    /** Convert ticks into (truncated) cycles of this domain. */
    Cycles ticksToCycles(Tick ticks) const { return ticks / period; }

  private:
    Tick period;
};

} // namespace ifp::sim

#endif // IFP_SIM_CLOCKED_HH
