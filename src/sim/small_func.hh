/**
 * @file
 * Move-only callable wrapper with a large inline buffer.
 *
 * The event queue's one-shot lambdas are the hottest allocation site
 * in the simulator: libstdc++'s std::function only stores trivially
 * copyable callables of <= 16 bytes inline, so almost every scheduled
 * lambda (captures of `this` plus a request handle or a few scalars)
 * heap-allocates. SmallFunc stores any nothrow-movable callable of up
 * to inlineBytes in place — large enough for every lambda the devices
 * schedule — and falls back to the heap only beyond that, keeping the
 * steady-state simulation loop allocation-free.
 *
 * Move-only on purpose: a scheduled callback has exactly one owner
 * (the LambdaEvent), and copyability is what forces std::function to
 * reject move-only captures like pooled request handles.
 */

#ifndef IFP_SIM_SMALL_FUNC_HH
#define IFP_SIM_SMALL_FUNC_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ifp::sim {

/** Move-only void() callable with inline storage. */
class SmallFunc
{
  public:
    /** Inline capture budget; larger callables heap-allocate. */
    static constexpr std::size_t inlineBytes = 64;

    SmallFunc() = default;
    SmallFunc(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFunc>>>
    SmallFunc(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "SmallFunc wraps void() callables");
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(fn));
            ops = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(static_cast<void *>(buf)) =
                new Fn(std::forward<F>(fn));
            ops = &heapOps<Fn>;
        }
    }

    SmallFunc(SmallFunc &&other) noexcept { moveFrom(other); }

    SmallFunc &
    operator=(SmallFunc &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    SmallFunc &
    operator=(std::nullptr_t)
    {
        destroy();
        ops = nullptr;
        return *this;
    }

    SmallFunc(const SmallFunc &) = delete;
    SmallFunc &operator=(const SmallFunc &) = delete;

    ~SmallFunc() { destroy(); }

    void operator()() { ops->invoke(buf); }

    explicit operator bool() const { return ops != nullptr; }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct dst's payload from src and destroy src's. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, void *src) {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p) { (**static_cast<Fn **>(p))(); },
        [](void *dst, void *src) {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        },
        [](void *p) { delete *static_cast<Fn **>(p); },
    };

    void
    moveFrom(SmallFunc &other) noexcept
    {
        ops = other.ops;
        if (ops)
            ops->relocate(buf, other.buf);
        other.ops = nullptr;
    }

    void
    destroy()
    {
        if (ops)
            ops->destroy(buf);
    }

    alignas(std::max_align_t) unsigned char buf[inlineBytes];
    const Ops *ops = nullptr;
};

} // namespace ifp::sim

#endif // IFP_SIM_SMALL_FUNC_HH
