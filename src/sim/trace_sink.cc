/**
 * @file
 * Chrome-trace export for TraceSink.
 */

#include "sim/trace_sink.hh"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>

namespace ifp::sim {

const char *
stallReasonName(StallReason reason)
{
    switch (reason) {
      case StallReason::Running: return "running";
      case StallReason::Spin: return "spin";
      case StallReason::Waiting: return "waiting";
      case StallReason::SaveRestore: return "saveRestore";
      case StallReason::DispatchQueue: return "dispatchQueue";
      case StallReason::Memory: return "memory";
    }
    return "?";
}

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::WgDispatched: return "wg-dispatched";
      case TraceEventKind::WgActivated: return "wg-activated";
      case TraceEventKind::WgStalled: return "wg-stalled";
      case TraceEventKind::WgSwitchOut: return "wg-switch-out";
      case TraceEventKind::WgSwitchedOut: return "wg-switched-out";
      case TraceEventKind::WgResumed: return "wg-resumed";
      case TraceEventKind::WgSwapIn: return "wg-swap-in";
      case TraceEventKind::WgCompleted: return "wg-completed";
      case TraceEventKind::WgPreempted: return "wg-preempted";
      case TraceEventKind::CondArmed: return "cond-armed";
      case TraceEventKind::CondFired: return "cond-fired";
      case TraceEventKind::CondSpilled: return "cond-spilled";
      case TraceEventKind::LogAbsorb: return "log-absorb";
      case TraceEventKind::LogDrain: return "log-drain";
      case TraceEventKind::CuOffline: return "cu-offline";
      case TraceEventKind::CuOnline: return "cu-online";
      case TraceEventKind::FaultInjected: return "fault-injected";
      case TraceEventKind::KernelEnqueued: return "kernel-enqueued";
      case TraceEventKind::KernelAdmitted: return "kernel-admitted";
      case TraceEventKind::KernelPreempted: return "kernel-preempted";
      case TraceEventKind::KernelCompleted: return "kernel-completed";
    }
    return "?";
}

namespace {

// Chrome-trace process ids: CU tracks live in the GPU process, the
// sync monitor and command processor each get their own process row.
constexpr int pidGpu = 0;
constexpr int pidSyncMon = 1;
constexpr int pidCp = 2;
constexpr int pidKernels = 3;

// Ticks are picoseconds; Chrome-trace "ts" is microseconds. Format
// with fixed precision so exports are byte-stable across platforms.
std::string
ticksToUs(Tick tick)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64,
                  tick / 1000000, tick % 1000000);
    return buf;
}

bool
isSyncMonKind(TraceEventKind kind)
{
    return kind == TraceEventKind::CondArmed ||
           kind == TraceEventKind::CondFired ||
           kind == TraceEventKind::CondSpilled;
}

bool
isCpKind(TraceEventKind kind)
{
    return kind == TraceEventKind::LogAbsorb ||
           kind == TraceEventKind::LogDrain;
}

bool
isKernelKind(TraceEventKind kind)
{
    return kind == TraceEventKind::KernelEnqueued ||
           kind == TraceEventKind::KernelAdmitted ||
           kind == TraceEventKind::KernelPreempted ||
           kind == TraceEventKind::KernelCompleted;
}

void
writeMeta(std::ostream &os, int pid, int tid, const char *what,
          const std::string &name, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"ts\":0,\"name\":\"" << what
       << "\",\"args\":{\"name\":\"" << name << "\"}}";
}

// One async-span stream per WG and category ("wg" lifetime spans,
// "wg-phase" lifecycle segments). Segments within a stream are strictly
// sequential, so begin/end pairing is unambiguous for the viewer.
struct PhaseTracker
{
    std::string open;   // currently open phase name, empty if none
    bool alive = false; // lifetime span open
};

void
writeAsyncAt(std::ostream &os, const char *ph, const char *cat, int id,
             int pid, const std::string &name, Tick tick, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"ph\":\"" << ph << "\",\"cat\":\"" << cat
       << "\",\"id\":" << id << ",\"pid\":" << pid
       << ",\"tid\":0,\"ts\":" << ticksToUs(tick) << ",\"name\":\""
       << name << "\"}";
}

void
writeAsync(std::ostream &os, const char *ph, const char *cat, int id,
           const std::string &name, Tick tick, bool &first)
{
    writeAsyncAt(os, ph, cat, id, pidGpu, name, tick, first);
}

} // anonymous namespace

void
TraceSink::writeChromeTrace(std::ostream &os, unsigned num_cus) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;

    // Track naming: GPU process with one thread per CU plus a
    // dispatcher row, and dedicated SyncMon / CP processes.
    writeMeta(os, pidGpu, 0, "process_name", "GPU", first);
    for (unsigned c = 0; c < num_cus; ++c)
        writeMeta(os, pidGpu, static_cast<int>(c), "thread_name",
                  "cu" + std::to_string(c), first);
    writeMeta(os, pidGpu, static_cast<int>(num_cus), "thread_name",
              "dispatcher", first);
    writeMeta(os, pidSyncMon, 0, "process_name", "SyncMon", first);
    writeMeta(os, pidSyncMon, 0, "thread_name", "conditions", first);
    writeMeta(os, pidCp, 0, "process_name", "CommandProcessor", first);
    writeMeta(os, pidCp, 0, "thread_name", "monitor-log", first);

    // One track per dispatch context under a "Kernels" process; ctx
    // ids are carried in the event value field.
    bool any_kernel_events = false;
    int max_ctx = -1;
    for (const TraceEvent &ev : eventsVec) {
        if (isKernelKind(ev.kind)) {
            any_kernel_events = true;
            max_ctx = std::max(max_ctx, static_cast<int>(ev.value));
        }
    }
    if (any_kernel_events) {
        writeMeta(os, pidKernels, 0, "process_name", "Kernels", first);
        for (int c = 0; c <= max_ctx; ++c)
            writeMeta(os, pidKernels, c, "thread_name",
                      "kernel" + std::to_string(c), first);
    }

    std::map<int, PhaseTracker> wgPhase;
    std::map<int, std::string> kernelPhase;  // ctx -> open span name
    Tick last_tick = 0;

    auto openPhase = [&](int wg, const std::string &phase, Tick tick) {
        auto &t = wgPhase[wg];
        if (t.open == phase)
            return;
        if (!t.open.empty())
            writeAsync(os, "e", "wg-phase", wg, t.open, tick, first);
        t.open = phase;
        if (!phase.empty())
            writeAsync(os, "b", "wg-phase", wg, phase, tick, first);
    };

    for (const TraceEvent &ev : eventsVec) {
        last_tick = std::max(last_tick, ev.tick);

        // Instant marker on the emitting component's track.
        int pid = pidGpu;
        int tid = ev.cu >= 0 ? ev.cu : static_cast<int>(num_cus);
        if (isSyncMonKind(ev.kind)) {
            pid = pidSyncMon;
            tid = 0;
        } else if (isCpKind(ev.kind)) {
            pid = pidCp;
            tid = 0;
        } else if (isKernelKind(ev.kind)) {
            pid = pidKernels;
            tid = static_cast<int>(ev.value);
        }
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
           << ",\"tid\":" << tid << ",\"ts\":" << ticksToUs(ev.tick)
           << ",\"name\":\"" << traceEventKindName(ev.kind);
        if (ev.wg >= 0)
            os << " wg" << ev.wg;
        os << "\",\"args\":{";
        os << "\"wg\":" << ev.wg << ",\"cu\":" << ev.cu;
        if (ev.reason != StallReason::Running)
            os << ",\"reason\":\"" << stallReasonName(ev.reason) << "\"";
        if (ev.addr != 0)
            os << ",\"addr\":" << ev.addr;
        if (ev.value != 0)
            os << ",\"value\":" << ev.value;
        os << "}}";

        // Kernel async spans: queued (arrival to admission) and
        // resident (admission to completion) segments per context.
        if (isKernelKind(ev.kind)) {
            int ctx = static_cast<int>(ev.value);
            std::string &open = kernelPhase[ctx];
            auto switchSpan = [&](const char *next) {
                if (!open.empty())
                    writeAsyncAt(os, "e", "kernel", ctx, pidKernels,
                                 open, ev.tick, first);
                open = next;
                if (!open.empty())
                    writeAsyncAt(os, "b", "kernel", ctx, pidKernels,
                                 open, ev.tick, first);
            };
            if (ev.kind == TraceEventKind::KernelEnqueued)
                switchSpan("queued");
            else if (ev.kind == TraceEventKind::KernelAdmitted)
                switchSpan("resident");
            else if (ev.kind == TraceEventKind::KernelCompleted)
                switchSpan("");
            continue;
        }

        // WG async spans: lifetime plus lifecycle phase segments.
        if (ev.wg < 0)
            continue;
        auto &t = wgPhase[ev.wg];
        switch (ev.kind) {
          case TraceEventKind::WgDispatched:
            if (!t.alive) {
                t.alive = true;
                writeAsync(os, "b", "wg", ev.wg,
                           "wg" + std::to_string(ev.wg), ev.tick, first);
            }
            openPhase(ev.wg, "dispatch", ev.tick);
            break;
          case TraceEventKind::WgActivated:
            openPhase(ev.wg, "running", ev.tick);
            break;
          case TraceEventKind::WgStalled:
            openPhase(ev.wg, "stalled", ev.tick);
            break;
          case TraceEventKind::WgResumed:
            openPhase(ev.wg, ev.cu >= 0 ? "running" : "ready", ev.tick);
            break;
          case TraceEventKind::WgSwitchOut:
          case TraceEventKind::WgPreempted:
            openPhase(ev.wg, "save", ev.tick);
            break;
          case TraceEventKind::WgSwitchedOut:
            openPhase(ev.wg,
                      ev.reason == StallReason::Waiting ? "swapped-out"
                                                        : "ready",
                      ev.tick);
            break;
          case TraceEventKind::WgSwapIn:
            openPhase(ev.wg, "restore", ev.tick);
            break;
          case TraceEventKind::WgCompleted:
            openPhase(ev.wg, "", ev.tick);
            if (t.alive) {
                t.alive = false;
                writeAsync(os, "e", "wg", ev.wg,
                           "wg" + std::to_string(ev.wg), ev.tick, first);
            }
            break;
          default:
            break;
        }
    }

    // Close spans still open at the end of the run (deadlocked or
    // pre-empted WGs) so the viewer renders them to the last tick.
    for (auto &[wg, t] : wgPhase) {
        if (!t.open.empty())
            writeAsync(os, "e", "wg-phase", wg, t.open, last_tick, first);
        if (t.alive)
            writeAsync(os, "e", "wg", wg, "wg" + std::to_string(wg),
                       last_tick, first);
    }
    for (auto &[ctx, open] : kernelPhase) {
        if (!open.empty())
            writeAsyncAt(os, "e", "kernel", ctx, pidKernels, open,
                         last_tick, first);
    }

    os << "\n]}\n";
}

} // namespace ifp::sim
