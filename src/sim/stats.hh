/**
 * @file
 * Statistics framework: scalars, vectors, histograms and derived
 * formulas, grouped per component and dumpable as text or CSV.
 *
 * The design follows gem5's stats package in miniature: a component
 * creates a StatGroup, registers named statistics in it, and the
 * top-level System walks all groups at dump time.
 */

#ifndef IFP_SIM_STATS_HH
#define IFP_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace ifp::sim {

/** A single named scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(double v) { val += v; return *this; }
    Scalar &operator=(double v) { val = v; return *this; }

    double value() const { return val; }
    void reset() { val = 0; }

  private:
    double val = 0;
};

/** A fixed-size vector of scalar statistics. */
class Vector
{
  public:
    void
    init(std::size_t size)
    {
        vals.assign(size, 0.0);
    }

    double &
    operator[](std::size_t idx)
    {
        ifp_assert(idx < vals.size(), "stat vector index %zu out of %zu",
                   idx, vals.size());
        return vals[idx];
    }

    double
    at(std::size_t idx) const
    {
        ifp_assert(idx < vals.size(), "stat vector index %zu out of %zu",
                   idx, vals.size());
        return vals[idx];
    }

    std::size_t size() const { return vals.size(); }
    double total() const;
    void reset() { vals.assign(vals.size(), 0.0); }

  private:
    std::vector<double> vals;
};

/** A simple linear histogram with overflow/underflow buckets. */
class Histogram
{
  public:
    /** Configure @p buckets buckets covering [min, max). */
    void init(double min, double max, std::size_t buckets);

    void sample(double value, std::uint64_t count = 1);

    std::uint64_t samples() const { return count; }
    double mean() const { return count ? sum / count : 0.0; }
    double minSeen() const { return count ? observedMin : 0.0; }
    double maxSeen() const { return count ? observedMax : 0.0; }
    std::size_t numBuckets() const { return counts.size(); }
    std::uint64_t bucket(std::size_t idx) const { return counts.at(idx); }
    std::uint64_t underflows() const { return underflow; }
    std::uint64_t overflows() const { return overflow; }
    void reset();

  private:
    double lo = 0.0;
    double hi = 1.0;
    double bucketWidth = 1.0;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double observedMin = 0.0;
    double observedMax = 0.0;
};

/** A statistic computed on demand from other values. */
class Formula
{
  public:
    using Fn = std::function<double()>;

    Formula() = default;
    explicit Formula(Fn fn) : fn(std::move(fn)) {}

    void operator=(Fn f) { fn = std::move(f); }
    double value() const { return fn ? fn() : 0.0; }

  private:
    Fn fn;
};

/**
 * A named collection of statistics belonging to one component.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : groupName(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return groupName; }

    Scalar &addScalar(const std::string &name, std::string desc = "");
    Vector &addVector(const std::string &name, std::size_t size,
                      std::string desc = "");
    Histogram &addHistogram(const std::string &name, double min,
                            double max, std::size_t buckets,
                            std::string desc = "");
    Formula &addFormula(const std::string &name, Formula::Fn fn,
                        std::string desc = "");

    /** Look up a registered scalar; panics when missing. */
    const Scalar &scalar(const std::string &name) const;
    const Vector &vector(const std::string &name) const;
    const Histogram &histogram(const std::string &name) const;
    double formulaValue(const std::string &name) const;

    /**
     * Non-panicking lookups: nullptr when the stat was never
     * registered. Prefer these over hasScalar-then-scalar double
     * lookups when a stat is legitimately optional.
     */
    const Scalar *tryScalar(const std::string &name) const;
    const Vector *tryVector(const std::string &name) const;

    bool hasScalar(const std::string &name) const;

    /** Write "group.stat value # desc" lines. */
    void dump(std::ostream &os) const;

    /**
     * Write the group as one JSON object:
     * {"name":..., "scalars":{...}, "vectors":{...},
     *  "histograms":{...}, "formulas":{...}}.
     * Integral values print without a fraction so output is stable.
     */
    void dumpJson(std::ostream &os) const;

    /** Reset every contained statistic (formulas are stateless). */
    void reset();

  private:
    template <typename T>
    struct Named
    {
        std::string name;
        std::string desc;
        // Deque-like stability: elements are never moved after creation.
        std::unique_ptr<T> stat;
    };

    std::string groupName;
    std::vector<Named<Scalar>> scalars;
    std::vector<Named<Vector>> vectors;
    std::vector<Named<Histogram>> histograms;
    std::vector<Named<Formula>> formulas;
};

} // namespace ifp::sim

#endif // IFP_SIM_STATS_HH
