#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ifp::sim {

Event::~Event()
{
    ifp_assert(!_scheduled,
               "event '%s' destroyed while scheduled",
               description().c_str());
}

EventQueue::EventQueue()
{
    setTraceTickSource(&_curTick);
}

EventQueue::~EventQueue()
{
    setTraceTickSource(nullptr);
    // Squash whatever is left so owned events can be destroyed and
    // externally-owned events do not trip the Event destructor assert.
    while (!heap.empty()) {
        HeapEntry entry = heap.top();
        heap.pop();
        if (entry.event->_scheduled &&
            entry.event->_sequence == entry.sequence) {
            entry.event->_scheduled = false;
        }
    }
    owned.clear();
}

void
EventQueue::schedule(Event *event, Tick when)
{
    ifp_assert(event != nullptr, "scheduling null event");
    ifp_assert(!event->_scheduled, "event '%s' already scheduled",
               event->description().c_str());
    ifp_assert(when >= _curTick,
               "scheduling event '%s' in the past (%lu < %lu)",
               event->description().c_str(),
               static_cast<unsigned long>(when),
               static_cast<unsigned long>(_curTick));

    event->_scheduled = true;
    event->_squashed = false;
    event->_when = when;
    event->_sequence = nextSequence++;
    heap.push(HeapEntry{when, event->_sequence, event});
    ++liveEvents;
}

void
EventQueue::deschedule(Event *event)
{
    ifp_assert(event != nullptr, "descheduling null event");
    ifp_assert(event->_scheduled, "event '%s' not scheduled",
               event->description().c_str());
    event->_scheduled = false;
    event->_squashed = true;
    ifp_assert(liveEvents > 0, "live event underflow");
    --liveEvents;
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    if (event->_scheduled)
        deschedule(event);
    schedule(event, when);
}

void
EventQueue::schedule(Tick when, std::function<void()> fn, std::string desc)
{
    auto ev = std::make_unique<LambdaEvent>(std::move(fn),
                                            std::move(desc));
    schedule(ev.get(), when);
    owned.push_back(std::move(ev));
}

void
EventQueue::collectOwned()
{
    // Drop owned one-shot events that have already fired. Sweeping is
    // amortized: only run when the vector doubled since the last
    // sweep, keeping the total cost linear in events executed.
    if (owned.size() < 64 || owned.size() < 2 * ownedAfterSweep)
        return;
    std::erase_if(owned, [](const std::unique_ptr<LambdaEvent> &ev) {
        return !ev->scheduled();
    });
    ownedAfterSweep = owned.size();
}

bool
EventQueue::step()
{
    while (!heap.empty()) {
        HeapEntry entry = heap.top();
        heap.pop();
        Event *event = entry.event;
        // Stale entry: event was descheduled (and possibly rescheduled
        // with a newer sequence number).
        if (!event->_scheduled || event->_sequence != entry.sequence)
            continue;

        ifp_assert(entry.when >= _curTick, "time went backwards");
        _curTick = entry.when;
        event->_scheduled = false;
        ifp_assert(liveEvents > 0, "live event underflow");
        --liveEvents;
        ++executed;
        event->process();
        collectOwned();
        return true;
    }
    return false;
}

Tick
EventQueue::simulate(Tick limit)
{
    while (!heap.empty()) {
        const HeapEntry &top = heap.top();
        Event *event = top.event;
        if (!event->_scheduled || event->_sequence != top.sequence) {
            heap.pop();
            continue;
        }
        if (top.when > limit)
            break;
        step();
    }
    return _curTick;
}

} // namespace ifp::sim
