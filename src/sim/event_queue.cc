#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace ifp::sim {

Event::~Event()
{
    ifp_assert(!_scheduled,
               "event '%s' destroyed while scheduled",
               description().c_str());
}

namespace {

// Pre-sized heap storage: the evaluation geometry keeps hundreds of
// events in flight, and growing through the first few powers of two
// on every run is pure waste once sweeps construct one queue per run.
constexpr std::size_t initialHeapCapacity = 1024;

} // anonymous namespace

EventQueue::EventQueue()
{
    std::vector<HeapEntry> storage;
    storage.reserve(initialHeapCapacity);
    heap = Heap(std::greater<HeapEntry>(), std::move(storage));
}

EventQueue::~EventQueue()
{
    // Squash whatever is left so owned events can be destroyed and
    // externally-owned events do not trip the Event destructor assert.
    while (!heap.empty()) {
        HeapEntry entry = heap.top();
        heap.pop();
        if (entry.event->_scheduled &&
            entry.event->_sequence == entry.sequence) {
            entry.event->_scheduled = false;
        }
    }
    freeList.clear();
    owned.clear();
}

void
EventQueue::schedule(Event *event, Tick when)
{
    ifp_assert(event != nullptr, "scheduling null event");
    ifp_assert(!event->_scheduled, "event '%s' already scheduled",
               event->description().c_str());
    ifp_assert(when >= _curTick,
               "scheduling event '%s' in the past (%lu < %lu)",
               event->description().c_str(),
               static_cast<unsigned long>(when),
               static_cast<unsigned long>(_curTick));

    event->_scheduled = true;
    event->_squashed = false;
    event->_when = when;
    event->_sequence = nextSequence++;
    heap.push(HeapEntry{when, event->_sequence, event});
    ++liveEvents;
}

void
EventQueue::deschedule(Event *event)
{
    descheduleImpl(event, /*recycleOwned=*/true);
}

void
EventQueue::descheduleImpl(Event *event, bool recycleOwned)
{
    ifp_assert(event != nullptr, "descheduling null event");
    ifp_assert(event->_scheduled, "event '%s' not scheduled",
               event->description().c_str());
    event->_scheduled = false;
    event->_squashed = true;
    ifp_assert(liveEvents > 0, "live event underflow");
    --liveEvents;
    if (event->_owned && recycleOwned) {
        // Squashed queue-owned one-shot: release its captures and
        // recycle it now. The stale heap entry is harmless — reuse
        // assigns a strictly newer sequence number, so the pop loop
        // skips it — and never recycles (only this path and the
        // post-process path park events, so no double-free).
        auto *lam = static_cast<LambdaEvent *>(event);
        lam->release();
        freeList.push_back(lam);
    }
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    // Keep owned one-shots off the free-list across the gap: the
    // same object is re-armed immediately, and parking it would let
    // schedule(Tick, fn) hand it out while still in use here.
    if (event->_scheduled)
        descheduleImpl(event, /*recycleOwned=*/false);
    schedule(event, when);
}

Event *
EventQueue::schedule(Tick when, SmallFunc fn, std::string desc)
{
    // One-shots are recycled: a fired lambda is re-armed instead of
    // paying a fresh make_unique + std::function allocation. Stale
    // heap entries for a recycled event are harmless because reuse
    // assigns a strictly newer sequence number.
    LambdaEvent *ev;
    if (!freeList.empty()) {
        ev = freeList.back();
        freeList.pop_back();
        ev->reset(std::move(fn), std::move(desc));
    } else {
        owned.push_back(std::make_unique<LambdaEvent>(
            std::move(fn), std::move(desc)));
        ev = owned.back().get();
    }
    ev->_owned = true;
    schedule(ev, when);
    return ev;
}

bool
EventQueue::step()
{
    // Scope the trace hook to this step: queues may interleave on
    // one thread, and sweep workers each carry their own queue.
    TraceTickScope trace_scope(&_curTick);
    return stepOne();
}

bool
EventQueue::stepOne()
{
    while (!heap.empty()) {
        HeapEntry entry = heap.top();
        heap.pop();
        Event *event = entry.event;
        // Stale entry: event was descheduled (and possibly rescheduled
        // with a newer sequence number).
        if (!event->_scheduled || event->_sequence != entry.sequence)
            continue;

        ifp_assert(entry.when >= _curTick, "time went backwards");
        _curTick = entry.when;
        event->_scheduled = false;
        ifp_assert(liveEvents > 0, "live event underflow");
        --liveEvents;
        ++executed;
        event->process();
        if (event->_owned && !event->_scheduled) {
            // Queue-owned one-shot that did not re-arm itself: park it
            // on the free-list and drop its captures now.
            auto *lam = static_cast<LambdaEvent *>(event);
            lam->release();
            freeList.push_back(lam);
        }
        return true;
    }
    return false;
}

Tick
EventQueue::nextEventTick()
{
    while (!heap.empty()) {
        const HeapEntry &top = heap.top();
        if (top.event->_scheduled && top.event->_sequence == top.sequence)
            return top.when;
        heap.pop();
    }
    return maxTick;
}

Tick
EventQueue::simulate(Tick limit)
{
    // One scope for the whole run keeps the per-event cost at zero.
    TraceTickScope trace_scope(&_curTick);
    while (!heap.empty()) {
        const HeapEntry &top = heap.top();
        Event *event = top.event;
        if (!event->_scheduled || event->_sequence != top.sequence) {
            heap.pop();
            continue;
        }
        if (top.when > limit)
            break;
        stepOne();
    }
    return _curTick;
}

} // namespace ifp::sim
