#include "sim/event_domain.hh"

#include <algorithm>
#include <tuple>

#include "sim/logging.hh"

namespace ifp::sim {

EventDomain::EventDomain(unsigned id, unsigned stage, std::string name,
                         EventQueue *external, Tick lookahead)
    : _id(id), _stage(stage), _name(std::move(name)),
      ownedQueue(external ? nullptr : std::make_unique<EventQueue>()),
      q(external ? external : ownedQueue.get()), lookahead(lookahead)
{
}

EventDomain::~EventDomain()
{
    InboxNode *node = inboxHead.exchange(nullptr,
                                         std::memory_order_acquire);
    while (node) {
        InboxNode *next = node->next;
        delete node;
        node = next;
    }
}

void
EventDomain::send(EventDomain &dst, Tick when, SmallFunc fn,
                  const char *desc)
{
    ifp_assert(&dst != this,
               "domain '%s' sending '%s' to itself; schedule locally",
               _name.c_str(), desc);
    ifp_assert(dst._stage != _stage,
               "same-stage message '%s' (%s -> %s) is unsupported",
               desc, _name.c_str(), dst._name.c_str());
    if (dst._stage < _stage) {
        ifp_assert(when >= q->curTick() + lookahead,
                   "upward message '%s' (%s -> %s) violates lookahead: "
                   "when=%llu < now=%llu + L=%llu",
                   desc, _name.c_str(), dst._name.c_str(),
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(q->curTick()),
                   static_cast<unsigned long long>(lookahead));
    } else {
        ifp_assert(when >= q->curTick(),
                   "downward message '%s' (%s -> %s) in the sender's "
                   "past: when=%llu < now=%llu",
                   desc, _name.c_str(), dst._name.c_str(),
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(q->curTick()));
    }

    if (outSeq.size() <= dst._id)
        outSeq.resize(dst._id + 1, 0);

    auto *node = new InboxNode;
    node->msg.when = when;
    node->msg.src = _id;
    node->msg.seq = outSeq[dst._id]++;
    node->msg.fn = std::move(fn);
    node->msg.desc = desc;

    InboxNode *head = dst.inboxHead.load(std::memory_order_relaxed);
    do {
        node->next = head;
    } while (!dst.inboxHead.compare_exchange_weak(
        head, node, std::memory_order_release,
        std::memory_order_relaxed));
}

void
EventDomain::drainInbox()
{
    InboxNode *node = inboxHead.exchange(nullptr,
                                         std::memory_order_acquire);
    while (node) {
        staging.push_back(std::move(node->msg));
        InboxNode *next = node->next;
        delete node;
        node = next;
    }
}

void
EventDomain::applyStaged(Tick bound)
{
    if (staging.empty())
        return;
    // Deliverable messages (when < bound) move to the front; what
    // remains stays staged for a later superstep.
    auto mid = std::stable_partition(
        staging.begin(), staging.end(),
        [bound](const Msg &m) { return m.when < bound; });
    if (mid == staging.begin())
        return;
    // Canonical merge order. The key (when, src, seq) is unique:
    // per-edge sequence numbers break same-tick ties between messages
    // of one sender, source ids between senders.
    std::sort(staging.begin(), mid, [](const Msg &a, const Msg &b) {
        return std::tie(a.when, a.src, a.seq) <
               std::tie(b.when, b.src, b.seq);
    });
    for (auto it = staging.begin(); it != mid; ++it)
        q->schedule(it->when, std::move(it->fn), it->desc);
    staging.erase(staging.begin(), mid);
}

Tick
EventDomain::nextPendingTick()
{
    Tick next = q->nextEventTick();
    for (const Msg &m : staging)
        next = std::min(next, m.when);
    return next;
}

bool
EventDomain::idle() const
{
    return q->size() == 0 && staging.empty() &&
           inboxHead.load(std::memory_order_acquire) == nullptr;
}

DomainScheduler::DomainScheduler(Tick lookahead, unsigned threads)
    : lookahead(lookahead), nThreads(std::max(1u, threads))
{
    ifp_assert(lookahead >= 1, "lookahead must be at least one tick");
}

DomainScheduler::~DomainScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        shutdown = true;
    }
    cvStart.notify_all();
    for (std::thread &w : workers)
        w.join();
}

EventDomain &
DomainScheduler::addDomain(std::string name, unsigned stage,
                           EventQueue *external)
{
    ifp_assert(!started, "addDomain() after start()");
    auto id = static_cast<unsigned>(domains.size());
    domains.emplace_back(new EventDomain(id, stage, std::move(name),
                                         external, lookahead));
    return *domains.back();
}

void
DomainScheduler::start()
{
    ifp_assert(!started, "start() called twice");
    ifp_assert(!domains.empty(), "start() with no domains");
    started = true;
    nThreads = std::min<unsigned>(
        nThreads, static_cast<unsigned>(domains.size()));
    for (unsigned i = 1; i < nThreads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

Tick
DomainScheduler::safeBound(const EventDomain &d) const
{
    Tick bound = maxTick;
    for (const auto &e : domains) {
        if (e.get() == &d || e->_stage == d._stage)
            continue;
        Tick c = e->_stage > d._stage
                     ? (e->horizon > maxTick - lookahead
                            ? maxTick
                            : e->horizon + lookahead)
                     : e->horizon;
        bound = std::min(bound, c);
    }
    return bound;
}

void
DomainScheduler::runUntil(Tick limit)
{
    ifp_assert(started, "runUntil() before start()");
    for (;;) {
        // Barrier phase: all executors are parked, so inboxes are
        // complete and every domain's state is safe to touch.
        Tick next = maxTick;
        for (auto &d : domains) {
            d->drainInbox();
            next = std::min(next, d->nextPendingTick());
        }
        if (next == maxTick || next > limit)
            break;

        // Jump horizons across the globally idle region: next is the
        // earliest pending work anywhere, and every future message is
        // stamped at or after its sender's execution tick, so nothing
        // can ever arrive below next. Idle gaps cost one superstep
        // regardless of length instead of gap/lookahead supersteps.
        for (auto &d : domains)
            d->horizon = std::max(d->horizon, next);

        // Targets from the jumped horizons: execution this superstep
        // stays below what any concurrently-executing peer can send.
        Tick cap = limit == maxTick ? maxTick : limit + 1;
        for (auto &d : domains)
            d->target = std::min(safeBound(*d), cap);

        executeSuperstep();
        ++stepCount;
    }
}

void
DomainScheduler::runDomain(EventDomain &d)
{
    Tick target = d.target;
    if (target <= d.horizon)
        return;
    d.applyStaged(target);
    d.q->simulate(target - 1);
    d.horizon = target;
}

void
DomainScheduler::executeSuperstep()
{
    if (workers.empty()) {
        for (auto &d : domains)
            runDomain(*d);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mtx);
        // Ticket 0 is the root domain, reserved for this thread.
        ticket.store(1, std::memory_order_relaxed);
        domainsDone = 0;
        ++epoch;
    }
    cvStart.notify_all();

    runDomain(*domains[0]);
    {
        std::lock_guard<std::mutex> lock(mtx);
        ++domainsDone;
    }
    // Steal remaining domains rather than idling at the barrier; the
    // main thread can always finish the superstep alone, so a slow
    // worker wake-up costs parallelism, never progress.
    drainTickets();

    std::unique_lock<std::mutex> lock(mtx);
    cvDone.wait(lock, [this] { return domainsDone == domains.size(); });
}

void
DomainScheduler::drainTickets()
{
    for (;;) {
        std::size_t i = ticket.fetch_add(1, std::memory_order_relaxed);
        if (i >= domains.size())
            return;
        runDomain(*domains[i]);
        std::lock_guard<std::mutex> lock(mtx);
        if (++domainsDone == domains.size())
            cvDone.notify_one();
    }
}

void
DomainScheduler::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mtx);
            cvStart.wait(lock, [&] {
                return shutdown || epoch != seen;
            });
            if (shutdown)
                return;
            seen = epoch;
        }
        drainTickets();
    }
}

bool
DomainScheduler::allIdle() const
{
    for (const auto &d : domains) {
        if (!d->idle())
            return false;
    }
    return true;
}

std::uint64_t
DomainScheduler::numExecuted() const
{
    std::uint64_t total = 0;
    for (const auto &d : domains)
        total += d->q->numExecuted();
    return total;
}

namespace {

std::atomic<unsigned> externalWorkers{1};

} // anonymous namespace

void
setExternalConcurrency(unsigned workers)
{
    externalWorkers.store(workers ? workers : 1,
                          std::memory_order_relaxed);
}

unsigned
externalConcurrency()
{
    return externalWorkers.load(std::memory_order_relaxed);
}

} // namespace ifp::sim
