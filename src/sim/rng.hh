/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the simulator flows through explicitly seeded Rng
 * instances so that every run is reproducible bit-for-bit. The generator
 * is xoshiro256**, which is fast and has no observable bias for the
 * modest quantities of randomness the simulator consumes.
 */

#ifndef IFP_SIM_RNG_HH
#define IFP_SIM_RNG_HH

#include <cstdint>

namespace ifp::sim {

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    uniform(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + uniform(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace ifp::sim

#endif // IFP_SIM_RNG_HH
