/**
 * @file
 * Fixed-allocation FIFO for hot device queues.
 *
 * std::deque allocates and frees a node every time the cursor crosses
 * a block boundary, so a steady stream of requests through an L2 bank
 * or DRAM channel queue still churns the heap. RingQueue is a
 * power-of-two circular buffer: it grows (doubling) only while the
 * queue's high-water mark is still rising, after which push/pop touch
 * no allocator at all — the property the zero-steady-state-allocation
 * gate (tests/test_alloc_gate.cc) locks in for the memory path.
 *
 * Popped slots are overwritten with a default-constructed T so
 * refcounted payloads (MemRequestPtr) release their target at pop
 * time, not when the slot happens to be reused.
 */

#ifndef IFP_SIM_RING_QUEUE_HH
#define IFP_SIM_RING_QUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace ifp::sim {

/** Growable circular FIFO; steady-state push/pop never allocate. */
template <typename T>
class RingQueue
{
  public:
    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    /** Slots available before the next (doubling) growth. */
    std::size_t capacity() const { return buf.size(); }

    T &
    front()
    {
        ifp_assert(count > 0, "front() on empty RingQueue");
        return buf[head];
    }

    const T &
    front() const
    {
        ifp_assert(count > 0, "front() on empty RingQueue");
        return buf[head];
    }

    void
    push_back(T value)
    {
        if (count == buf.size())
            grow();
        buf[(head + count) & (buf.size() - 1)] = std::move(value);
        ++count;
    }

    void
    pop_front()
    {
        ifp_assert(count > 0, "pop_front() on empty RingQueue");
        buf[head] = T();   // drop payload (refcounts) immediately
        head = (head + 1) & (buf.size() - 1);
        --count;
    }

    void
    clear()
    {
        while (count > 0)
            pop_front();
    }

  private:
    void
    grow()
    {
        const std::size_t old_cap = buf.size();
        std::vector<T> bigger(old_cap == 0 ? 8 : old_cap * 2);
        for (std::size_t i = 0; i < count; ++i)
            bigger[i] = std::move(buf[(head + i) & (old_cap - 1)]);
        buf = std::move(bigger);
        head = 0;
    }

    std::vector<T> buf;     //!< power-of-two length (or empty)
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace ifp::sim

#endif // IFP_SIM_RING_QUEUE_HH
