#include "sim/logging.hh"

#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <mutex>
#include <set>

namespace ifp::sim {

namespace {

// Debug flags are process-wide state shared by every simulation
// thread: guarded by a mutex, with a relaxed atomic count so the
// common no-tracing case never takes the lock.
std::mutex flagMutex;
std::set<std::string> enabledFlags;
std::atomic<int> numEnabledFlags{0};

// The tick source is thread-local so each parallel-sweep worker
// traces against its own EventQueue (see logging.hh).
thread_local const std::uint64_t *traceTickSource = nullptr;

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // anonymous namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn: ", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info: ", fmt, args);
    va_end(args);
}

void
setDebugFlag(const std::string &flag)
{
    std::lock_guard<std::mutex> lock(flagMutex);
    enabledFlags.insert(flag);
    numEnabledFlags.store(static_cast<int>(enabledFlags.size()),
                          std::memory_order_relaxed);
}

void
clearDebugFlag(const std::string &flag)
{
    std::lock_guard<std::mutex> lock(flagMutex);
    enabledFlags.erase(flag);
    numEnabledFlags.store(static_cast<int>(enabledFlags.size()),
                          std::memory_order_relaxed);
}

bool
debugFlagEnabled(const std::string &flag)
{
    if (numEnabledFlags.load(std::memory_order_relaxed) == 0)
        return false;
    std::lock_guard<std::mutex> lock(flagMutex);
    return enabledFlags.count(flag) != 0;
}

void
tracePrintf(const std::string &flag, const char *fmt, ...)
{
    if (!debugFlagEnabled(flag))
        return;
    std::uint64_t tick = traceTickSource ? *traceTickSource : 0;
    std::fprintf(stderr, "%12" PRIu64 ": %s: ", tick, flag.c_str());
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

TraceTickScope::TraceTickScope(const std::uint64_t *tick_counter)
    : prev(traceTickSource), mine(tick_counter)
{
    traceTickSource = mine;
}

TraceTickScope::~TraceTickScope()
{
    // Restore only if still installed: a scope that was (incorrectly)
    // destroyed out of order must not clobber a newer installation.
    if (traceTickSource == mine)
        traceTickSource = prev;
}

std::uint64_t
traceCurrentTick()
{
    return traceTickSource ? *traceTickSource : 0;
}

} // namespace ifp::sim
