#include "sim/logging.hh"

#include <cinttypes>
#include <cstdint>
#include <mutex>
#include <set>

namespace ifp::sim {

namespace {

std::set<std::string> enabledFlags;
const std::uint64_t *traceTickSource = nullptr;

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // anonymous namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn: ", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info: ", fmt, args);
    va_end(args);
}

void
setDebugFlag(const std::string &flag)
{
    enabledFlags.insert(flag);
}

void
clearDebugFlag(const std::string &flag)
{
    enabledFlags.erase(flag);
}

bool
debugFlagEnabled(const std::string &flag)
{
    return enabledFlags.count(flag) != 0;
}

void
tracePrintf(const std::string &flag, const char *fmt, ...)
{
    if (!debugFlagEnabled(flag))
        return;
    std::uint64_t tick = traceTickSource ? *traceTickSource : 0;
    std::fprintf(stderr, "%12" PRIu64 ": %s: ", tick, flag.c_str());
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
setTraceTickSource(const std::uint64_t *tick_counter)
{
    traceTickSource = tick_counter;
}

} // namespace ifp::sim
