/**
 * @file
 * Schedule-choice oracle: the seam the exploration engine drives.
 *
 * The simulator is deterministic — every "which one next?" decision
 * (WG dispatch order, CU placement, SIMD wavefront arbitration,
 * SyncMon resume delivery, CP housekeeping order) has a single fixed
 * answer. All of those answers are nevertheless *unspecified* by the
 * programming model: a real GPU is free to pick any of the legal
 * candidates, and a progress property only holds if it holds under
 * every such schedule.
 *
 * A SchedOracle makes the decisions explicit. Each decision site
 * computes the candidate count and the index the stock scheduler
 * would take (`preferred`), then asks the oracle. With no oracle
 * installed the site never builds candidate lists and takes the
 * stock pick — runs are byte-identical to the pre-oracle simulator.
 * An oracle that always returns `preferred` reproduces stock
 * behavior choice-for-choice (tested).
 *
 * Oracles live in sim/ (not gpu/) because the dispatcher, the CUs,
 * the SyncMon and the CP all consult one; src/explore builds the
 * random-walk and bounded-exhaustive drivers on top.
 */

#ifndef IFP_SIM_SCHED_ORACLE_HH
#define IFP_SIM_SCHED_ORACLE_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace ifp::sim {

/** Which scheduling decision is being made. */
enum class ChoicePoint
{
    DispatchPick,    //!< which dispatchable WG the dispatcher places next
    HostCu,          //!< which capable CU hosts the picked WG
    WavefrontIssue,  //!< which issuable wavefront a SIMD issues
    ResumeOrder,     //!< delivery order of a SyncMon resume-all batch
    ResumeVictim,    //!< which waiter a SyncMon resume-one wakes
    SpillScan,       //!< order the CP resumes met spilled conditions
    RescueOrder,     //!< order the CP fires expired rescue timers
};

/** Printable name of a choice point (stable, used in JSON). */
inline const char *
choicePointName(ChoicePoint site)
{
    switch (site) {
      case ChoicePoint::DispatchPick:
        return "dispatch-pick";
      case ChoicePoint::HostCu:
        return "host-cu";
      case ChoicePoint::WavefrontIssue:
        return "wavefront-issue";
      case ChoicePoint::ResumeOrder:
        return "resume-order";
      case ChoicePoint::ResumeVictim:
        return "resume-victim";
      case ChoicePoint::SpillScan:
        return "spill-scan";
      case ChoicePoint::RescueOrder:
        return "rescue-order";
    }
    return "?";
}

/**
 * The decision interface. choose() is only called with n >= 2 —
 * sites short-circuit singleton candidate sets — and must return an
 * index < n. Returning `preferred` everywhere reproduces the stock
 * schedule.
 *
 * Sites whose candidates are work-groups call chooseWithActors()
 * instead, passing the candidate WG ids in choice order. The default
 * forwards to choose(), so plain oracles are unaffected; the
 * exploration engine's recording oracle overrides it to name each
 * alternative by its actor — the input the partial-order reduction's
 * independence relation needs. Sites whose candidates are not WGs
 * (HostCu picks a CU) keep calling choose().
 */
class SchedOracle
{
  public:
    virtual ~SchedOracle() = default;

    virtual unsigned choose(ChoicePoint site, unsigned n,
                            unsigned preferred) = 0;

    /** choose() plus the candidate WG ids (@p actor_wgs, size n). */
    virtual unsigned chooseWithActors(ChoicePoint site, unsigned n,
                                      unsigned preferred,
                                      const int *actor_wgs)
    {
        (void)actor_wgs;
        return choose(site, n, preferred);
    }
};

/**
 * In-place permutation of the WG ids in @p items by repeated
 * selection: position i is filled by asking the oracle to pick among
 * the remaining candidates (preferred = 0 keeps the original order).
 * Used by the order-valued sites (ResumeOrder, SpillScan,
 * RescueOrder) so a permutation costs n-1 unit choices, which keeps
 * the exhaustive driver's branching bookkeeping uniform. The
 * remaining candidates double as the actor list.
 */
inline void
oraclePermute(SchedOracle *oracle, ChoicePoint site,
              std::vector<int> &items)
{
    if (!oracle || items.size() < 2)
        return;
    for (std::size_t i = 0; i + 1 < items.size(); ++i) {
        unsigned remaining = static_cast<unsigned>(items.size() - i);
        unsigned pick = oracle->chooseWithActors(site, remaining, 0,
                                                 items.data() + i);
        if (pick != 0)
            std::swap(items[i], items[i + pick]);
    }
}

} // namespace ifp::sim

#endif // IFP_SIM_SCHED_ORACLE_HH
