/**
 * @file
 * Conservative parallel discrete-event simulation (PDES) layer.
 *
 * An EventDomain wraps one EventQueue plus a lock-free inbox for
 * events sent from other domains; a DomainScheduler advances a set of
 * domains in epoch-barrier supersteps. The decomposition used by the
 * simulator is a two-stage pipeline:
 *
 *   stage 0: the root domain (CUs, CP, SyncMon, dispatcher — the
 *            original monolithic queue), and
 *   stage 1: one memory domain per fused L2-bank/DRAM-channel pair.
 *
 * Conservatism comes from the cross-domain latencies. A downward
 * (root->mem) message is stamped at the sender's current tick or
 * later; an upward (mem->root) message carries at least L ticks of
 * latency (L = the scheduler's lookahead, the minimum mem->root
 * delay — the L2 hit latency in ticks). At each barrier the scheduler
 * derives every domain's execution target purely from the other
 * domains' horizons (the tick below which they are fully executed):
 *
 *   target(root) = min over mem domains of (horizon(mem) + L)
 *   target(mem)  = horizon(root)
 *
 * Any message a domain can still generate this superstep lies at or
 * past these bounds, so no domain ever receives an event in its past
 * and no rollback is needed. In steady state the two stages execute
 * concurrently, one lookahead window apart; across a globally idle
 * gap the scheduler jumps horizons directly to the next pending tick
 * (capped by the same bounds) instead of stepping through empty
 * windows.
 *
 * Determinism is non-negotiable: at each barrier the staged messages
 * of a domain are merged in canonical (tick, source-domain-id,
 * per-edge sequence) order before the window executes, so the
 * destination queue's same-tick scheduling order — and with it every
 * stat, trace and RunResult byte — is a pure function of the
 * simulated history, independent of thread count and wall-clock
 * interleaving. The parity test suite (ctest -L parity) enforces
 * byte-identical stats-JSON across shard/thread configurations.
 *
 * Threading contract: EventDomain::send() may be called concurrently
 * from any executing domain (the inbox is a lock-free Treiber stack);
 * everything else — drainInbox(), applyStaged(), the queue itself —
 * is scheduler-side and runs either on the main thread between
 * supersteps or on the single executor that owns the domain for the
 * current superstep. The mutex+condvar superstep barrier provides the
 * happens-before edge that lets a domain migrate between executor
 * threads across supersteps.
 */

#ifndef IFP_SIM_EVENT_DOMAIN_HH
#define IFP_SIM_EVENT_DOMAIN_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/small_func.hh"
#include "sim/types.hh"

namespace ifp::sim {

class DomainScheduler;

/**
 * One shard of the simulation: an event queue plus the machinery to
 * receive events from other domains deterministically.
 */
class EventDomain
{
  public:
    EventDomain(const EventDomain &) = delete;
    EventDomain &operator=(const EventDomain &) = delete;
    ~EventDomain();

    unsigned id() const { return _id; }
    unsigned stage() const { return _stage; }
    const std::string &name() const { return _name; }

    /** The domain's event queue (root: the system's original queue). */
    EventQueue &queue() { return *q; }
    const EventQueue &queue() const { return *q; }

    /**
     * Deliver @p fn to @p dst at absolute tick @p when. Callable from
     * the sender's executor thread while both domains are mid-
     * superstep. Lookahead is asserted, not assumed: a message to an
     * earlier pipeline stage (mem->root) must carry at least L ticks
     * of latency, a message to a later stage (root->mem) must not be
     * in the sender's past; same-stage messaging is unsupported.
     * @p desc must point at storage that outlives the run (device
     * description strings qualify).
     */
    void send(EventDomain &dst, Tick when, SmallFunc fn,
              const char *desc);

    /** No queued events, no staged messages, no in-flight messages. */
    bool idle() const;

  private:
    friend class DomainScheduler;

    EventDomain(unsigned id, unsigned stage, std::string name,
                EventQueue *external, Tick lookahead);

    /** One cross-domain message. */
    struct Msg
    {
        Tick when = 0;
        std::uint32_t src = 0;    //!< sender domain id
        std::uint64_t seq = 0;    //!< per-(src,dst) sequence number
        SmallFunc fn;
        const char *desc = "";
    };

    /** Treiber-stack node; nodes are heap-allocated per message. */
    struct InboxNode
    {
        Msg msg;
        InboxNode *next = nullptr;
    };

    /**
     * Move every pending inbox message into the consumer-side staging
     * vector. Barrier-only: runs on the main thread while all
     * executors are parked.
     */
    void drainInbox();

    /**
     * Schedule every staged message with when < @p bound into the
     * queue, in canonical (when, src, seq) order. Messages at or past
     * @p bound stay staged for a later superstep: conservatism
     * guarantees any message that could still arrive concurrently is
     * also at or past @p bound, so the scheduled set — and its order
     * — is deterministic.
     */
    void applyStaged(Tick bound);

    /** Earliest pending tick across queue and staged messages. */
    Tick nextPendingTick();

    unsigned _id;
    unsigned _stage;
    std::string _name;
    std::unique_ptr<EventQueue> ownedQueue;  //!< null for the root
    EventQueue *q;
    Tick lookahead;

    std::atomic<InboxNode *> inboxHead{nullptr};
    std::vector<Msg> staging;

    /** Per-destination-domain sequence counters (sender-side). */
    std::vector<std::uint64_t> outSeq;

    /**
     * Everything below horizon is fully executed, and no event or
     * message below it can ever appear again. Maintained by the
     * scheduler (advanced to target after each superstep, jumped
     * directly across globally idle regions).
     */
    Tick horizon = 0;
    /** Execution bound for the in-flight superstep. */
    Tick target = 0;
};

/**
 * Epoch-barrier executor for a set of EventDomains.
 *
 * The lookahead L must be a lower bound on the latency of every
 * upward (higher stage -> lower stage) message; EventDomain::send
 * asserts it per message. Each superstep the scheduler drains all
 * inboxes, derives per-domain targets from the other domains'
 * horizons (see the file comment), merges staged messages in
 * canonical order, and executes all domains concurrently up to their
 * targets. Progress per superstep is bounded by L in total across the
 * pipeline, so L also sets the barrier amortization.
 */
class DomainScheduler
{
  public:
    /**
     * @param lookahead  minimum upward cross-stage latency L (>= 1)
     * @param threads    executor threads including the caller;
     *                   clamped to the domain count at start().
     *                   1 = serial execution on the caller.
     */
    DomainScheduler(Tick lookahead, unsigned threads);
    ~DomainScheduler();

    DomainScheduler(const DomainScheduler &) = delete;
    DomainScheduler &operator=(const DomainScheduler &) = delete;

    /**
     * Add a domain before start(). Domain ids are assigned in call
     * order (the root must be added first, id 0); ids double as the
     * canonical same-tick merge key, so construction order is part of
     * the determinism contract. @p external lets the root adopt a
     * pre-existing queue; other domains own theirs.
     */
    EventDomain &addDomain(std::string name, unsigned stage,
                           EventQueue *external = nullptr);

    /** Freeze the domain set and launch the worker threads. */
    void start();

    /**
     * Run all domains up to and including @p limit (the analogue of
     * EventQueue::simulate(limit)): on return no domain holds an
     * executable event or deliverable message at a tick <= @p limit.
     * Caller must be the thread that constructed the scheduler; the
     * root domain always executes on it.
     */
    void runUntil(Tick limit);

    /** True when no queue holds events and no message is in flight. */
    bool allIdle() const;

    /** Total events executed across all domain queues. */
    std::uint64_t numExecuted() const;

    /** Superstep barriers crossed so far. */
    std::uint64_t supersteps() const { return stepCount; }

    /** Executor threads actually in use (>= 1, set at start()). */
    unsigned threads() const { return nThreads; }

    Tick lookaheadTicks() const { return lookahead; }

    std::size_t numDomains() const { return domains.size(); }
    EventDomain &domain(std::size_t i) { return *domains[i]; }

  private:
    /**
     * Latest tick domain @p d may safely execute to, given every
     * other domain's current horizon: lower-stage peers bound it by
     * their horizon (downward messages arrive at sender-now or
     * later), higher-stage peers by horizon + L (upward messages
     * carry >= L of latency).
     */
    Tick safeBound(const EventDomain &d) const;

    void runDomain(EventDomain &d);
    void workerLoop();
    /** Claim and execute ticketed domains until none remain. */
    void drainTickets();
    void executeSuperstep();

    Tick lookahead;
    unsigned nThreads;
    bool started = false;

    std::vector<std::unique_ptr<EventDomain>> domains;
    std::vector<std::thread> workers;

    std::uint64_t stepCount = 0;

    // Superstep barrier. Workers wait for epoch to advance, claim
    // domains through the ticket counter (index 0 is reserved for the
    // main thread: the root domain must run there so traces stay
    // main-thread-confined), and the last finisher signals cvDone.
    std::mutex mtx;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    std::uint64_t epoch = 0;
    std::size_t domainsDone = 0;
    bool shutdown = false;
    std::atomic<std::size_t> ticket{0};
};

/**
 * Cross-cutting concurrency hint: how many simulator instances the
 * process is already running in parallel (the SweepRunner worker
 * count). In-run shard executors divide the hardware budget by this
 * so sweep x shards never oversubscribes the machine silently.
 */
void setExternalConcurrency(unsigned workers);
unsigned externalConcurrency();

} // namespace ifp::sim

#endif // IFP_SIM_EVENT_DOMAIN_HH
