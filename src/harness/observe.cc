#include "harness/observe.hh"

#include <cstdlib>
#include <fstream>

#include "harness/results_io.hh"
#include "harness/runner.hh"
#include "sim/logging.hh"

namespace ifp::harness {

namespace {

void
replaceAll(std::string &s, const std::string &from,
           const std::string &to)
{
    std::size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, from.size(), to);
        pos += to.size();
    }
}

} // anonymous namespace

std::string
expandObservePath(const std::string &path, const Experiment &exp)
{
    std::string out = path;
    replaceAll(out, "{workload}", exp.workload);
    replaceAll(out, "{policy}", core::policyName(exp.policy));
    replaceAll(out, "{scenario}",
               exp.oversubscribed ? "oversub" : "steady");
    return out;
}

void
writeChromeTrace(std::ostream &os, const core::GpuSystem &system)
{
    const sim::TraceSink *sink = system.traceSink();
    ifp_assert(sink,
               "writeChromeTrace needs a traced run "
               "(ObserveOptions or RunConfig::traceEnabled)");
    sink->writeChromeTrace(os, system.config().gpu.numCus);
}

void
writeStatsJson(std::ostream &os, const Experiment &exp,
               const core::GpuSystem &system,
               const core::RunResult &result)
{
    os << "{\n\"experiment-result\": ";
    writeResultJson(os, exp, result);
    os << ",\n\"groups\": [";
    bool first = true;
    system.forEachStatGroup([&](const sim::StatGroup &group) {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
        group.dumpJson(os);
    });
    os << "\n]\n}\n";
}

void
exportRunArtifacts(const Experiment &exp,
                   const core::GpuSystem &system,
                   const core::RunResult &result)
{
    if (!exp.observe.traceOutPath.empty()) {
        std::string path =
            expandObservePath(exp.observe.traceOutPath, exp);
        std::ofstream os(path);
        if (!os)
            ifp_fatal("cannot open trace output '%s'", path.c_str());
        writeChromeTrace(os, system);
    }
    if (!exp.observe.statsJsonPath.empty()) {
        std::string path =
            expandObservePath(exp.observe.statsJsonPath, exp);
        std::ofstream os(path);
        if (!os)
            ifp_fatal("cannot open stats output '%s'", path.c_str());
        writeStatsJson(os, exp, system, result);
    }
}

bool
traceSmokeEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("IFP_BENCH_TRACE");
        return env && env[0] != '\0' && env[0] != '0';
    }();
    return enabled;
}

} // namespace ifp::harness
