/**
 * @file
 * Machine-readable result output: serialize an (Experiment,
 * RunResult) pair as JSON for plotting scripts and CI comparisons,
 * plus a minimal JSON reader used to validate the observability
 * exports (Chrome traces, stats-JSON) in tests.
 */

#ifndef IFP_HARNESS_RESULTS_IO_HH
#define IFP_HARNESS_RESULTS_IO_HH

#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hh"

namespace ifp::harness {

/** Write one experiment + result as a JSON object. */
void writeResultJson(std::ostream &os, const Experiment &exp,
                     const core::RunResult &result);

/**
 * Write many results as a JSON array (calls writeResultJson per
 * element).
 */
void writeResultsJson(
    std::ostream &os,
    const std::vector<std::pair<Experiment, core::RunResult>> &runs);

namespace json {

/**
 * A parsed JSON document node. Small by design: enough to round-trip
 * the simulator's own output (tests parse the exported trace and
 * stats files and assert structure), not a general-purpose library.
 */
struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    /** Members in document order (exports are deterministic). */
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;
};

bool operator==(const Value &a, const Value &b);
inline bool
operator!=(const Value &a, const Value &b)
{
    return !(a == b);
}

/** Parse a complete JSON document; nullopt on malformed input. */
std::optional<Value> tryParse(const std::string &text);

/** Serialize @p value (compact, document member order). */
void write(std::ostream &os, const Value &value);

} // namespace json

} // namespace ifp::harness

#endif // IFP_HARNESS_RESULTS_IO_HH
