/**
 * @file
 * Machine-readable result output: serialize an (Experiment,
 * RunResult) pair as JSON for plotting scripts and CI comparisons.
 */

#ifndef IFP_HARNESS_RESULTS_IO_HH
#define IFP_HARNESS_RESULTS_IO_HH

#include <ostream>

#include "harness/runner.hh"

namespace ifp::harness {

/** Write one experiment + result as a JSON object. */
void writeResultJson(std::ostream &os, const Experiment &exp,
                     const core::RunResult &result);

/**
 * Write many results as a JSON array (calls writeResultJson per
 * element).
 */
void writeResultsJson(
    std::ostream &os,
    const std::vector<std::pair<Experiment, core::RunResult>> &runs);

} // namespace ifp::harness

#endif // IFP_HARNESS_RESULTS_IO_HH
