#include "harness/campaign.hh"

#include <algorithm>

#include "harness/sweep.hh"
#include "harness/table.hh"
#include "workloads/registry.hh"

namespace ifp::harness {

namespace {

/**
 * One serve() run of the two-kernel mix under @p plan: both kernels
 * enqueued at tick 0, the CP admission scheduler shares the machine,
 * and the plan's faults land on whichever contexts are resident.
 */
CampaignServingRun
runServingMix(const CampaignConfig &cfg, const core::FaultPlan &plan,
              core::Policy policy)
{
    CampaignServingRun cell;
    cell.plan = &plan;
    cell.policy = policy;

    core::RunConfig run_cfg = cfg.runCfg;
    run_cfg.policy.policy = policy;
    run_cfg.faultPlan = plan;
    if (run_cfg.shards == 0)
        run_cfg.shards = runShardsFromEnv();

    workloads::WorkloadParams params = cfg.params;
    params.style = core::styleFor(policy);

    core::GpuSystem system(run_cfg);
    workloads::WorkloadPtr primary =
        workloads::makeWorkload(cfg.workload);
    workloads::WorkloadPtr mix =
        workloads::makeWorkload(cfg.mixWorkload);
    system.enqueueKernel(primary->build(system, params));
    system.enqueueKernel(mix->build(system, params));

    core::ServeResult serve = system.serve();
    cell.verdict = serve.run.verdict;
    cell.gpuCycles = serve.run.gpuCycles;
    for (const core::KernelRunStat &k : serve.kernels) {
        if (k.completed)
            ++cell.kernelsCompleted;
        cell.preemptions += k.preemptions;
        cell.swapIns += k.swapIns;
    }
    if (cell.kernelsCompleted == serve.kernels.size()) {
        std::string error;
        cell.validated =
            primary->validate(system.memory(), params, error) &&
            mix->validate(system.memory(), params, error);
    }
    return cell;
}

} // namespace

CampaignReport
runChaosCampaign(const CampaignConfig &cfg)
{
    CampaignReport report;
    report.policies = cfg.policies;

    core::ChaosSpec spec = cfg.chaos;
    spec.numCus = cfg.runCfg.gpu.numCus;

    report.plans.reserve(cfg.numPlans);
    for (unsigned i = 0; i < cfg.numPlans; ++i)
        report.plans.push_back(
            core::generateChaosPlan(spec, cfg.baseSeed + i));

    SweepRunner sweep(cfg.jobs);
    for (const core::FaultPlan &plan : report.plans) {
        for (core::Policy policy : cfg.policies) {
            Experiment exp;
            exp.workload = cfg.workload;
            exp.policy = policy;
            exp.params = cfg.params;
            exp.runCfg = cfg.runCfg;
            exp.runCfg.faultPlan = plan;
            sweep.enqueue(std::move(exp));
        }
    }
    const std::vector<core::RunResult> &results = sweep.run();

    report.runs.reserve(results.size());
    std::size_t idx = 0;
    for (const core::FaultPlan &plan : report.plans) {
        for (core::Policy policy : cfg.policies) {
            report.runs.push_back(
                CampaignRun{&plan, policy, results[idx]});
            ++idx;
        }
    }

    // Serving-mix pass: serial on purpose — each serve() is one
    // deterministic event-queue run, and submission order (plan-
    // major, like `runs`) is the row order, so the CSV is
    // byte-stable without any cross-run coordination.
    if (cfg.servingMix) {
        report.servingRuns.reserve(report.plans.size() *
                                   cfg.policies.size());
        for (const core::FaultPlan &plan : report.plans) {
            for (core::Policy policy : cfg.policies) {
                report.servingRuns.push_back(
                    runServingMix(cfg, plan, policy));
            }
        }
    }
    return report;
}

bool
CampaignReport::completesAllOf(core::Policy subject,
                               core::Policy reference) const
{
    auto index_of = [&](core::Policy p) -> std::size_t {
        auto it = std::find(policies.begin(), policies.end(), p);
        return static_cast<std::size_t>(it - policies.begin());
    };
    std::size_t subj = index_of(subject);
    std::size_t ref = index_of(reference);
    if (subj >= policies.size() || ref >= policies.size())
        return false;
    for (std::size_t p = 0; p < plans.size(); ++p) {
        if (run(p, ref).result.completed &&
            !run(p, subj).result.completed)
            return false;
    }
    return true;
}

void
CampaignReport::writeTable(std::ostream &os) const
{
    std::vector<std::string> headers = {"plan", "seed", "faults"};
    for (core::Policy p : policies)
        headers.push_back(core::policyName(p));
    TextTable table(std::move(headers));
    for (std::size_t i = 0; i < plans.size(); ++i) {
        std::vector<std::string> row = {
            plans[i].name,
            std::to_string(plans[i].seed),
            std::to_string(plans[i].events.size()),
        };
        for (std::size_t p = 0; p < policies.size(); ++p)
            row.push_back(run(i, p).result.verdictString());
        table.addRow(std::move(row));
    }
    table.print(os);
}

void
CampaignReport::writeCsv(std::ostream &os) const
{
    os << "plan,seed,policy,verdict,completed,gpuCycles,"
          "injectedFaults,forcedPreemptions,droppedResumes,"
          "delayedResumes,spills,logFullRetries,lostWakeups,"
          "recoveries\n";
    for (std::size_t i = 0; i < plans.size(); ++i) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const core::RunResult &r = run(i, p).result;
            os << plans[i].name << ',' << plans[i].seed << ','
               << core::policyName(policies[p]) << ','
               << core::verdictName(r.verdict) << ','
               << (r.completed ? 1 : 0) << ',' << r.gpuCycles << ','
               << r.injectedFaults << ',' << r.forcedPreemptions << ','
               << r.droppedResumes << ',' << r.delayedResumes << ','
               << r.spills << ',' << r.logFullRetries << ','
               << r.lostWakeups.size() << ','
               << r.faultRecoveries.size() << '\n';
        }
    }
}

void
CampaignReport::writeServingCsv(std::ostream &os) const
{
    if (servingRuns.empty())
        return;
    os << "plan,seed,policy,verdict,kernelsCompleted,validated,"
          "gpuCycles,preemptions,swapIns\n";
    for (const CampaignServingRun &cell : servingRuns) {
        os << cell.plan->name << ',' << cell.plan->seed << ','
           << core::policyName(cell.policy) << ','
           << core::verdictName(cell.verdict) << ','
           << cell.kernelsCompleted << ','
           << (cell.validated ? 1 : 0) << ',' << cell.gpuCycles
           << ',' << cell.preemptions << ',' << cell.swapIns
           << '\n';
    }
}

} // namespace ifp::harness
