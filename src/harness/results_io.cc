#include "harness/results_io.hh"

namespace ifp::harness {

namespace {

/** Minimal JSON string escaping (names are ASCII identifiers). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

} // anonymous namespace

void
writeResultJson(std::ostream &os, const Experiment &exp,
                const core::RunResult &r)
{
    os << "{";
    os << "\"workload\":\"" << jsonEscape(exp.workload) << "\",";
    os << "\"policy\":\"" << core::policyName(exp.policy) << "\",";
    os << "\"oversubscribed\":"
       << (exp.oversubscribed ? "true" : "false") << ",";
    os << "\"numWgs\":" << exp.params.numWgs << ",";
    os << "\"wgsPerGroup\":" << exp.params.wgsPerGroup << ",";
    os << "\"iters\":" << exp.params.iters << ",";
    os << "\"completed\":" << (r.completed ? "true" : "false") << ",";
    os << "\"deadlocked\":" << (r.deadlocked ? "true" : "false")
       << ",";
    os << "\"validated\":" << (r.validated ? "true" : "false") << ",";
    os << "\"gpuCycles\":" << r.gpuCycles << ",";
    os << "\"instructions\":" << r.instructions << ",";
    os << "\"atomicInstructions\":" << r.atomicInstructions << ",";
    os << "\"waitingAtomics\":" << r.waitingAtomics << ",";
    os << "\"armWaits\":" << r.armWaits << ",";
    os << "\"sleeps\":" << r.sleeps << ",";
    os << "\"contextSaves\":" << r.contextSaves << ",";
    os << "\"contextRestores\":" << r.contextRestores << ",";
    os << "\"forcedPreemptions\":" << r.forcedPreemptions << ",";
    os << "\"condResumesAll\":" << r.condResumesAll << ",";
    os << "\"condResumesOne\":" << r.condResumesOne << ",";
    os << "\"cpRescues\":" << r.cpRescues << ",";
    os << "\"spills\":" << r.spills << ",";
    os << "\"logFullRetries\":" << r.logFullRetries << ",";
    os << "\"maxConditions\":" << r.maxConditions << ",";
    os << "\"maxWaiters\":" << r.maxWaiters << ",";
    os << "\"maxMonitoredLines\":" << r.maxMonitoredLines << ",";
    os << "\"maxLogEntries\":" << r.maxLogEntries << ",";
    os << "\"totalWgExecCycles\":" << r.totalWgExecCycles << ",";
    os << "\"totalWgWaitCycles\":" << r.totalWgWaitCycles;
    os << "}";
}

void
writeResultsJson(
    std::ostream &os,
    const std::vector<std::pair<Experiment, core::RunResult>> &runs)
{
    os << "[\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        os << "  ";
        writeResultJson(os, runs[i].first, runs[i].second);
        if (i + 1 < runs.size())
            os << ",";
        os << "\n";
    }
    os << "]\n";
}

} // namespace ifp::harness
