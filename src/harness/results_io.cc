#include "harness/results_io.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/trace_sink.hh"

namespace ifp::harness {

namespace {

/** Minimal JSON string escaping (names are ASCII identifiers). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

} // anonymous namespace

void
writeResultJson(std::ostream &os, const Experiment &exp,
                const core::RunResult &r)
{
    os << "{";
    os << "\"workload\":\"" << jsonEscape(exp.workload) << "\",";
    os << "\"policy\":\"" << core::policyName(exp.policy) << "\",";
    os << "\"oversubscribed\":"
       << (exp.oversubscribed ? "true" : "false") << ",";
    os << "\"numWgs\":" << exp.params.numWgs << ",";
    os << "\"wgsPerGroup\":" << exp.params.wgsPerGroup << ",";
    os << "\"iters\":" << exp.params.iters << ",";
    os << "\"completed\":" << (r.completed ? "true" : "false") << ",";
    os << "\"deadlocked\":" << (r.deadlocked ? "true" : "false")
       << ",";
    os << "\"verdict\":\"" << core::verdictName(r.verdict) << "\",";
    os << "\"validated\":" << (r.validated ? "true" : "false") << ",";
    os << "\"gpuCycles\":" << r.gpuCycles << ",";
    os << "\"instructions\":" << r.instructions << ",";
    os << "\"atomicInstructions\":" << r.atomicInstructions << ",";
    os << "\"waitingAtomics\":" << r.waitingAtomics << ",";
    os << "\"armWaits\":" << r.armWaits << ",";
    os << "\"sleeps\":" << r.sleeps << ",";
    os << "\"contextSaves\":" << r.contextSaves << ",";
    os << "\"contextRestores\":" << r.contextRestores << ",";
    os << "\"forcedPreemptions\":" << r.forcedPreemptions << ",";
    os << "\"condResumesAll\":" << r.condResumesAll << ",";
    os << "\"condResumesOne\":" << r.condResumesOne << ",";
    os << "\"cpRescues\":" << r.cpRescues << ",";
    os << "\"predictedResumes\":" << r.predictedResumes << ",";
    os << "\"mispredictedResumes\":" << r.mispredictedResumes << ",";
    os << "\"spills\":" << r.spills << ",";
    os << "\"logFullRetries\":" << r.logFullRetries << ",";
    os << "\"faultPlan\":\"" << jsonEscape(exp.runCfg.faultPlan.name)
       << "\",";
    os << "\"chaosSeed\":" << exp.runCfg.faultPlan.seed << ",";
    os << "\"injectedFaults\":" << r.injectedFaults << ",";
    os << "\"droppedResumes\":" << r.droppedResumes << ",";
    os << "\"delayedResumes\":" << r.delayedResumes << ",";
    os << "\"lostWakeups\":[";
    for (std::size_t i = 0; i < r.lostWakeups.size(); ++i) {
        const core::LostWakeupRecord &lw = r.lostWakeups[i];
        if (i)
            os << ",";
        os << "{\"wg\":" << lw.wgId << ",\"addr\":" << lw.addr
           << ",\"expected\":" << lw.expected
           << ",\"heldCycles\":" << lw.heldCycles << "}";
    }
    os << "],";
    os << "\"faultRecoveries\":[";
    for (std::size_t i = 0; i < r.faultRecoveries.size(); ++i) {
        const core::FaultRecovery &fr = r.faultRecoveries[i];
        if (i)
            os << ",";
        os << "{\"restoreCycle\":" << fr.restoreCycle
           << ",\"cyclesToFirstSwapIn\":" << fr.cyclesToFirstSwapIn
           << "}";
    }
    os << "],";
    os << "\"maxConditions\":" << r.maxConditions << ",";
    os << "\"maxWaiters\":" << r.maxWaiters << ",";
    os << "\"maxMonitoredLines\":" << r.maxMonitoredLines << ",";
    os << "\"maxLogEntries\":" << r.maxLogEntries << ",";
    os << "\"totalWgExecCycles\":" << r.totalWgExecCycles << ",";
    os << "\"totalWgWaitCycles\":" << r.totalWgWaitCycles << ",";
    os << "\"wgLifetimeCycles\":" << r.wgLifetimeCycles << ",";
    os << "\"stallCycles\":{";
    for (std::size_t i = 0; i < sim::numStallReasons; ++i) {
        if (i)
            os << ",";
        os << "\""
           << sim::stallReasonName(static_cast<sim::StallReason>(i))
           << "\":" << r.wgCycleBreakdown[i];
    }
    os << "}";
    os << "}";
}

void
writeResultsJson(
    std::ostream &os,
    const std::vector<std::pair<Experiment, core::RunResult>> &runs)
{
    os << "[\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        os << "  ";
        writeResultJson(os, runs[i].first, runs[i].second);
        if (i + 1 < runs.size())
            os << ",";
        os << "\n";
    }
    os << "]\n";
}

namespace json {

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

bool
operator==(const Value &a, const Value &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case Value::Kind::Null:
        return true;
      case Value::Kind::Bool:
        return a.boolean == b.boolean;
      case Value::Kind::Number:
        return a.number == b.number;
      case Value::Kind::String:
        return a.string == b.string;
      case Value::Kind::Array:
        return a.array == b.array;
      case Value::Kind::Object:
        return a.object == b.object;
    }
    return false;
}

namespace {

/** Recursive-descent parser over a character range. */
class Parser
{
  public:
    Parser(const char *begin, const char *end) : p(begin), end(end) {}

    bool
    parseDocument(Value &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return p == end;
    }

  private:
    void
    skipWs()
    {
        while (p != end &&
               (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
            ++p;
    }

    bool
    literal(const char *text)
    {
        const char *q = p;
        for (; *text; ++text, ++q) {
            if (q == end || *q != *text)
                return false;
        }
        p = q;
        return true;
    }

    bool
    parseValue(Value &out)
    {
        if (p == end)
            return false;
        switch (*p) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = Value::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = Value::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseString(std::string &out)
    {
        if (p == end || *p != '"')
            return false;
        ++p;
        out.clear();
        while (p != end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p == end)
                return false;
            char esc = *p++;
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                  // The exporters only emit ASCII; decode the BMP
                  // escape into its low byte to stay lossless there.
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      if (p == end || !std::isxdigit(
                                          static_cast<unsigned char>(
                                              *p)))
                          return false;
                      char h = *p++;
                      code = code * 16 +
                             (h <= '9'   ? h - '0'
                              : h <= 'F' ? h - 'A' + 10
                                         : h - 'a' + 10);
                  }
                  out += static_cast<char>(code & 0xff);
                  break;
              }
              default:
                return false;
            }
        }
        if (p == end)
            return false;
        ++p; // closing quote
        return true;
    }

    bool
    parseNumber(Value &out)
    {
        const char *start = p;
        if (p != end && (*p == '-' || *p == '+'))
            ++p;
        bool digits = false;
        while (p != end &&
               (std::isdigit(static_cast<unsigned char>(*p)) ||
                *p == '.' || *p == 'e' || *p == 'E' || *p == '+' ||
                *p == '-')) {
            if (std::isdigit(static_cast<unsigned char>(*p)))
                digits = true;
            ++p;
        }
        if (!digits)
            return false;
        out.kind = Value::Kind::Number;
        out.number = std::strtod(std::string(start, p).c_str(),
                                 nullptr);
        return true;
    }

    bool
    parseArray(Value &out)
    {
        ++p; // '['
        out.kind = Value::Kind::Array;
        skipWs();
        if (p != end && *p == ']') {
            ++p;
            return true;
        }
        while (true) {
            Value elem;
            skipWs();
            if (!parseValue(elem))
                return false;
            out.array.push_back(std::move(elem));
            skipWs();
            if (p == end)
                return false;
            if (*p == ',') {
                ++p;
                continue;
            }
            if (*p == ']') {
                ++p;
                return true;
            }
            return false;
        }
    }

    bool
    parseObject(Value &out)
    {
        ++p; // '{'
        out.kind = Value::Kind::Object;
        skipWs();
        if (p != end && *p == '}') {
            ++p;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (p == end || *p != ':')
                return false;
            ++p;
            skipWs();
            Value val;
            if (!parseValue(val))
                return false;
            out.object.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (p == end)
                return false;
            if (*p == ',') {
                ++p;
                continue;
            }
            if (*p == '}') {
                ++p;
                return true;
            }
            return false;
        }
    }

    const char *p;
    const char *end;
};

void
writeNumber(std::ostream &os, double v)
{
    char buf[32];
    if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    os << buf;
}

} // anonymous namespace

std::optional<Value>
tryParse(const std::string &text)
{
    Value root;
    Parser parser(text.data(), text.data() + text.size());
    if (!parser.parseDocument(root))
        return std::nullopt;
    return root;
}

void
write(std::ostream &os, const Value &value)
{
    switch (value.kind) {
      case Value::Kind::Null:
        os << "null";
        break;
      case Value::Kind::Bool:
        os << (value.boolean ? "true" : "false");
        break;
      case Value::Kind::Number:
        writeNumber(os, value.number);
        break;
      case Value::Kind::String:
        os << '"' << jsonEscape(value.string) << '"';
        break;
      case Value::Kind::Array: {
        os << '[';
        for (std::size_t i = 0; i < value.array.size(); ++i) {
            if (i)
                os << ',';
            write(os, value.array[i]);
        }
        os << ']';
        break;
      }
      case Value::Kind::Object: {
        os << '{';
        for (std::size_t i = 0; i < value.object.size(); ++i) {
            if (i)
                os << ',';
            os << '"' << jsonEscape(value.object[i].first) << "\":";
            write(os, value.object[i].second);
        }
        os << '}';
        break;
      }
    }
}

} // namespace json

} // namespace ifp::harness
