#include "harness/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "sim/event_domain.hh"
#include "sim/logging.hh"

namespace ifp::harness {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // anonymous namespace

SweepRunner::SweepRunner(unsigned jobs)
    : numJobs(jobs == 0 ? jobsFromEnv() : jobs)
{
}

unsigned
SweepRunner::jobsFromEnv()
{
    if (const char *env = std::getenv("IFP_BENCH_JOBS")) {
        char *end = nullptr;
        long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed >= 1)
            return static_cast<unsigned>(parsed);
        sim::warnImpl("ignoring invalid IFP_BENCH_JOBS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::size_t
SweepRunner::enqueue(Experiment exp)
{
    ifp_assert(!ran, "enqueue after run()");
    experiments.push_back(std::move(exp));
    return experiments.size() - 1;
}

const std::vector<core::RunResult> &
SweepRunner::run()
{
    if (ran)
        return resultsVec;
    ran = true;

    const std::size_t n = experiments.size();
    resultsVec.resize(n);
    pointSecs.assign(n, 0.0);

    const auto sweepStart = Clock::now();
    auto runOne = [&](std::size_t i) {
        const auto start = Clock::now();
        resultsVec[i] = runExperiment(experiments[i]);
        pointSecs[i] = secondsSince(start);
    };

    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(numJobs, n));
    // Publish the sweep's own parallelism so in-run shard executors
    // divide the hardware budget by it: jobs x shards never
    // oversubscribes the machine silently (the clamp prints one
    // [shards] note). Reset after the join: later single runs may
    // use the full machine again.
    sim::setExternalConcurrency(workers);
    if (workers <= 1) {
        // Legacy serial path: no threads, no pool overhead.
        for (std::size_t i = 0; i < n; ++i)
            runOne(i);
    } else {
        // Work-stealing by atomic ticket: workers pull the next
        // un-run experiment, so long and short runs balance without
        // any static partitioning.
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&] {
                for (std::size_t i;
                     (i = next.fetch_add(1,
                                         std::memory_order_relaxed)) < n;)
                    runOne(i);
            });
        }
        for (std::thread &t : pool)
            t.join();
    }
    sim::setExternalConcurrency(1);

    wall = secondsSince(sweepStart);
    serial = 0.0;
    for (double s : pointSecs)
        serial += s;
    return resultsVec;
}

const std::vector<double> &
SweepRunner::pointSeconds() const
{
    ifp_assert(ran, "pointSeconds() before run()");
    return pointSecs;
}

const core::RunResult &
SweepRunner::result(std::size_t index) const
{
    ifp_assert(ran, "result() before run()");
    ifp_assert(index < resultsVec.size(), "result index %zu out of %zu",
               index, resultsVec.size());
    return resultsVec[index];
}

const std::vector<core::RunResult> &
SweepRunner::results() const
{
    ifp_assert(ran, "results() before run()");
    return resultsVec;
}

void
SweepRunner::reportPerf(const std::string &label) const
{
    if (!ran)
        return;
    const double speedup = wall > 0.0 ? serial / wall : 1.0;
    std::fprintf(stderr,
                 "[sweep] %s: %zu runs, jobs=%u, wall %.3fs, "
                 "serial %.3fs, speedup %.2fx\n",
                 label.c_str(), experiments.size(), numJobs, wall,
                 serial, speedup);
}

std::vector<core::RunResult>
runSweep(const std::vector<Experiment> &exps, unsigned jobs)
{
    SweepRunner runner(jobs);
    for (const Experiment &exp : exps)
        runner.enqueue(exp);
    return runner.run();
}

} // namespace ifp::harness
