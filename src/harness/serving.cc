#include "harness/serving.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "harness/observe.hh"
#include "harness/runner.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/registry.hh"

namespace ifp::harness {

namespace {

/** Fixed-precision double formatting (byte-stable exports). */
std::string
fmtDouble(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    return buf;
}

std::uint64_t
percentile(std::vector<std::uint64_t> values, unsigned pct)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    std::size_t idx = (pct * (values.size() - 1)) / 100;
    return values[idx];
}

/** Resolve an admission policy name into CP knobs; fatal on unknown. */
cp::AdmissionConfig
admissionConfigFor(const std::string &name)
{
    cp::AdmissionConfig adm;
    if (name == "serial") {
        adm.maxResidentKernels = 1;
        adm.cuShareFloor = 0;
    } else if (name == "share") {
        adm.maxResidentKernels = 4;
        adm.cuShareFloor = 2;
    } else if (name == "priority") {
        adm.maxResidentKernels = 4;
        adm.cuShareFloor = 0;
    } else {
        ifp_fatal("unknown admission policy '%s' (serial|share|"
                  "priority)", name.c_str());
    }
    return adm;
}

/**
 * Event-driven serving statistics: the typed per-context listener
 * records the completion order as it happens — no dispatcher polling.
 */
class ServingObserver : public gpu::KernelListener
{
  public:
    void
    kernelCompleted(const gpu::DispatchContext &ctx) override
    {
        completionOrder.push_back(ctx.id);
    }

    std::vector<int> completionOrder;
};

} // anonymous namespace

std::vector<ServingTenant>
defaultServingTenants()
{
    // The Figure 2 situation as a tenant mix: a latency-sensitive
    // high-priority stream sharing the machine with throughput and
    // batch work.
    return {
        ServingTenant{"latency", "HT", 2, 8'000, 1.0},
        ServingTenant{"throughput", "SPM_G", 1, 0, 1.0},
        ServingTenant{"batch", "BA", 0, 0, 1.0},
    };
}

workloads::WorkloadParams
defaultServingParams()
{
    workloads::WorkloadParams params;
    params.numWgs = 16;      // quarter-size grid: kernels churn fast
    params.wgsPerGroup = 4;
    params.wiPerWg = 64;
    params.iters = 2;
    params.csValuCycles = 20;
    return params;
}

ServingReport
runServingScenario(const ServingConfig &cfg)
{
    std::vector<ServingTenant> tenants =
        cfg.tenants.empty() ? defaultServingTenants() : cfg.tenants;
    ifp_assert(!tenants.empty(), "serving scenario with no tenants");
    ifp_assert(cfg.numLaunches > 0, "serving scenario with no launches");

    workloads::WorkloadParams params = cfg.params;
    params.style = core::styleFor(cfg.policy);
    params.backoffMaxCycles = static_cast<std::int64_t>(
        cfg.runCfg.policy.sleepMaxBackoffCycles);

    core::RunConfig run_cfg = cfg.runCfg;
    run_cfg.policy.policy = cfg.policy;
    run_cfg.cp.admission = admissionConfigFor(cfg.admission);
    if (!cfg.traceOutPath.empty() || traceSmokeEnabled())
        run_cfg.traceEnabled = true;
    if (run_cfg.shards == 0)
        run_cfg.shards = runShardsFromEnv();

    core::GpuSystem system(run_cfg);
    ServingObserver observer;

    // The whole arrival schedule is drawn up front from one seeded
    // generator: tenant pick, then an exponential inter-arrival gap.
    // Kernels are pre-built before simulation starts, so every launch
    // owns disjoint buffers from the bump allocator.
    sim::Rng rng(cfg.seed);
    double total_weight = 0.0;
    for (const ServingTenant &t : tenants)
        total_weight += t.weight;

    struct Launch
    {
        const ServingTenant *tenant;
        workloads::WorkloadPtr workload;
        isa::Kernel kernel;
        int ctxId = -1;
    };
    std::vector<Launch> launches;
    launches.reserve(cfg.numLaunches);

    double t_us = 0.0;
    for (unsigned i = 0; i < cfg.numLaunches; ++i) {
        double pick = rng.real() * total_weight;
        const ServingTenant *tenant = &tenants.back();
        for (const ServingTenant &t : tenants) {
            if (pick < t.weight) {
                tenant = &t;
                break;
            }
            pick -= t.weight;
        }
        t_us -= cfg.meanInterarrivalUs * std::log(1.0 - rng.real());

        Launch launch;
        launch.tenant = tenant;
        launch.workload = workloads::makeWorkload(tenant->workload);
        launch.kernel = launch.workload->build(system, params);

        gpu::LaunchOptions opts;
        opts.tenant = tenant->name;
        opts.priority = tenant->priority;
        opts.deadlineCycles = tenant->deadlineCycles;
        opts.listener = &observer;
        auto at = static_cast<sim::Tick>(
            std::llround(t_us * 1'000'000.0));
        launch.ctxId =
            system.enqueueKernelAt(launch.kernel, opts, at);
        launches.push_back(std::move(launch));
    }

    core::ServeResult serve_result = system.serve();

    // Validate every completed kernel's memory image (each launch has
    // its own buffers, so they are independent).
    for (const Launch &launch : launches) {
        const core::KernelRunStat &ks =
            serve_result.kernels[static_cast<std::size_t>(
                launch.ctxId)];
        if (!ks.completed)
            continue;
        std::string err;
        if (!launch.workload->validate(system.memory(), params, err)) {
            ifp_fatal("serving %s/%s ctx%d: validation failed: %s",
                      launch.tenant->workload.c_str(),
                      core::policyName(cfg.policy), launch.ctxId,
                      err.c_str());
        }
    }

    if (!cfg.traceOutPath.empty()) {
        std::ofstream os(cfg.traceOutPath);
        if (!os) {
            ifp_fatal("cannot write trace file '%s'",
                      cfg.traceOutPath.c_str());
        }
        writeChromeTrace(os, system);
    }

    ServingReport report;
    report.policy = core::policyName(cfg.policy);
    report.admission = cfg.admission;
    report.launches = cfg.numLaunches;
    report.seed = cfg.seed;
    report.verdict = serve_result.run.verdictString();
    report.makespanCycles = serve_result.run.gpuCycles;
    report.completionOrder = std::move(observer.completionOrder);
    report.kernels = std::move(serve_result.kernels);
    report.run = std::move(serve_result.run);

    std::vector<std::uint64_t> turnarounds;
    report.allCompleted = true;
    for (const core::KernelRunStat &ks : report.kernels) {
        if (ks.completed)
            turnarounds.push_back(ks.turnaroundCycles);
        else
            report.allCompleted = false;
        report.maxQueueCycles =
            std::max(report.maxQueueCycles,
                     static_cast<std::uint64_t>(ks.queueCycles));
        if (ks.tenant.empty())
            continue;
    }
    report.p50TurnaroundCycles = percentile(turnarounds, 50);
    report.p99TurnaroundCycles = percentile(turnarounds, 99);

    for (std::size_t i = 0; i < report.kernels.size(); ++i) {
        const core::KernelRunStat &ks = report.kernels[i];
        const ServingTenant *tenant = launches[i].tenant;
        if (tenant->deadlineCycles > 0) {
            ++report.sloTracked;
            if (ks.sloMissed)
                ++report.sloMisses;
        }
        report.preemptions += ks.preemptions;
        report.swapOuts += ks.swapOuts;
        report.swapIns += ks.swapIns;
    }

    const sim::StatGroup &ds = system.dispatcher().stats();
    report.cuReassignments = static_cast<std::uint64_t>(
        ds.scalar("cuReassignments").value());
    report.admissionPasses =
        system.commandProcessor().admissionScheduler().recomputePasses();

    // Jain fairness over per-tenant mean turnaround. Delivered-work
    // counts would be identical across policies whenever every kernel
    // completes; latency is what admission policies actually
    // redistribute between tenants.
    std::vector<double> service;
    for (const ServingTenant &t : tenants) {
        double sum_turnaround = 0.0;
        unsigned n = 0;
        for (std::size_t i = 0; i < report.kernels.size(); ++i) {
            if (launches[i].tenant != &t ||
                !report.kernels[i].completed)
                continue;
            sum_turnaround +=
                static_cast<double>(report.kernels[i].turnaroundCycles);
            ++n;
        }
        if (n > 0)
            service.push_back(sum_turnaround / n);
    }
    double sum = 0.0, sumsq = 0.0;
    for (double s : service) {
        sum += s;
        sumsq += s * s;
    }
    report.fairness =
        sumsq > 0.0
            ? (sum * sum) /
                  (static_cast<double>(service.size()) * sumsq)
            : 1.0;

    return report;
}

void
writeServingJson(std::ostream &os, const ServingReport &report)
{
    os << "{\n"
       << "  \"schema\": \"ifp-serving-v1\",\n"
       << "  \"policy\": \"" << report.policy << "\",\n"
       << "  \"admission\": \"" << report.admission << "\",\n"
       << "  \"launches\": " << report.launches << ",\n"
       << "  \"seed\": " << report.seed << ",\n"
       << "  \"verdict\": \"" << report.verdict << "\",\n"
       << "  \"allCompleted\": "
       << (report.allCompleted ? "true" : "false") << ",\n"
       << "  \"makespanCycles\": " << report.makespanCycles << ",\n"
       << "  \"p50TurnaroundCycles\": " << report.p50TurnaroundCycles
       << ",\n"
       << "  \"p99TurnaroundCycles\": " << report.p99TurnaroundCycles
       << ",\n"
       << "  \"maxQueueCycles\": " << report.maxQueueCycles << ",\n"
       << "  \"sloTracked\": " << report.sloTracked << ",\n"
       << "  \"sloMisses\": " << report.sloMisses << ",\n"
       << "  \"preemptions\": " << report.preemptions << ",\n"
       << "  \"swapOuts\": " << report.swapOuts << ",\n"
       << "  \"swapIns\": " << report.swapIns << ",\n"
       << "  \"cuReassignments\": " << report.cuReassignments << ",\n"
       << "  \"admissionPasses\": " << report.admissionPasses << ",\n"
       << "  \"fairness\": " << fmtDouble(report.fairness) << ",\n";

    os << "  \"completionOrder\": [";
    for (std::size_t i = 0; i < report.completionOrder.size(); ++i) {
        if (i)
            os << ", ";
        os << report.completionOrder[i];
    }
    os << "],\n";

    os << "  \"kernels\": [\n";
    for (std::size_t i = 0; i < report.kernels.size(); ++i) {
        const core::KernelRunStat &ks = report.kernels[i];
        os << "    {\"ctx\": " << ks.ctxId << ", \"kernel\": \""
           << ks.kernelName << "\", \"tenant\": \"" << ks.tenant
           << "\", \"priority\": " << ks.priority
           << ", \"completed\": " << (ks.completed ? "true" : "false")
           << ", \"enqueueCycle\": " << ks.enqueueCycle
           << ", \"admitCycle\": " << ks.admitCycle
           << ", \"firstDispatchCycle\": " << ks.firstDispatchCycle
           << ", \"completeCycle\": " << ks.completeCycle
           << ", \"queueCycles\": " << ks.queueCycles
           << ", \"turnaroundCycles\": " << ks.turnaroundCycles
           << ", \"sloMissed\": " << (ks.sloMissed ? "true" : "false")
           << ", \"dispatches\": " << ks.dispatches
           << ", \"swapOuts\": " << ks.swapOuts
           << ", \"swapIns\": " << ks.swapIns
           << ", \"preemptions\": " << ks.preemptions
           << ", \"cusGained\": " << ks.cusGained
           << ", \"cusLost\": " << ks.cusLost
           << ", \"wgsCompleted\": " << ks.wgsCompleted
           << ", \"numWgs\": " << ks.numWgs << "}"
           << (i + 1 < report.kernels.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

void
writeServingTable(std::ostream &os,
                  const std::vector<ServingReport> &reports)
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-10s %-9s %8s %12s %12s %9s %9s %9s %s\n",
                  "policy", "admission", "launches", "p50(cyc)",
                  "p99(cyc)", "sloMiss", "preempt", "fairness",
                  "verdict");
    os << line;
    for (const ServingReport &r : reports) {
        char slo[32];
        std::snprintf(slo, sizeof(slo), "%u/%u", r.sloMisses,
                      r.sloTracked);
        std::snprintf(
            line, sizeof(line),
            "%-10s %-9s %8u %12llu %12llu %9s %9llu %9s %s\n",
            r.policy.c_str(), r.admission.c_str(), r.launches,
            static_cast<unsigned long long>(r.p50TurnaroundCycles),
            static_cast<unsigned long long>(r.p99TurnaroundCycles),
            slo, static_cast<unsigned long long>(r.preemptions),
            fmtDouble(r.fairness).c_str(), r.verdict.c_str());
        os << line;
    }
}

} // namespace ifp::harness
