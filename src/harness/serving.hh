/**
 * @file
 * Multi-tenant kernel-stream serving scenarios.
 *
 * Builds one GpuSystem, pre-builds a stream of kernels from a tenant
 * mix (each launch gets its own workload instance and therefore its
 * own buffers), enqueues them with seeded Poisson arrivals and
 * per-tenant priorities/deadlines, and serves the stream through the
 * CP admission scheduler. The report carries the serving metrics the
 * paper's Figure 2 motivates: turnaround percentiles, SLO misses,
 * preemption counts and cross-tenant fairness.
 *
 * Everything is deterministic from (config, seed): arrivals come from
 * a seeded sim::Rng, admission runs synchronously, and the JSON
 * writer uses fixed-precision formatting — the same config produces a
 * byte-identical report on every rerun and across IFP_BENCH_JOBS.
 *
 * Per-kernel statistics are event-driven via the typed KernelListener
 * hooks and the DispatchContext stat shadows; nothing polls the
 * dispatcher during the run.
 */

#ifndef IFP_HARNESS_SERVING_HH
#define IFP_HARNESS_SERVING_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/gpu_system.hh"
#include "workloads/workload.hh"

namespace ifp::harness {

/** One tenant of the serving mix. */
struct ServingTenant
{
    std::string name;
    /** Workload abbrev (registry name), e.g. "HT", "SPM_G", "BA". */
    std::string workload;
    int priority = 0;
    /** Turnaround SLO in GPU cycles (0 = no deadline). */
    sim::Cycles deadlineCycles = 0;
    /** Relative arrival weight in the mix. */
    double weight = 1.0;
};

/** The paper-motivated default mix: latency / throughput / batch. */
std::vector<ServingTenant> defaultServingTenants();

/** Configuration of one serving scenario. */
struct ServingConfig
{
    core::Policy policy = core::Policy::Awg;
    /**
     * Admission policy name: "serial" (one resident kernel at a
     * time), "share" (up to 4 residents, CU-share floor 2) or
     * "priority" (up to 4 residents, pure priority cascade, floor 0).
     */
    std::string admission = "share";
    unsigned numLaunches = 20;
    std::uint64_t seed = 1;
    /** Mean Poisson inter-arrival gap, microseconds. */
    double meanInterarrivalUs = 10.0;
    /** Tenant mix; empty = defaultServingTenants(). */
    std::vector<ServingTenant> tenants;
    /** Per-kernel geometry (style is overwritten from the policy). */
    workloads::WorkloadParams params;
    /** Machine configuration (admission knobs are overwritten). */
    core::RunConfig runCfg;
    /** Chrome-trace destination ("" = no trace file). */
    std::string traceOutPath;
};

/** Small serving kernels (quarter-size grid, short critical section). */
workloads::WorkloadParams defaultServingParams();

/** The outcome of one serving scenario. */
struct ServingReport
{
    std::string policy;      //!< waiting-policy name
    std::string admission;   //!< admission policy name
    unsigned launches = 0;
    std::uint64_t seed = 0;
    std::string verdict;     //!< RunResult verdict string
    bool allCompleted = false;
    std::uint64_t makespanCycles = 0;

    /// @name Turnaround aggregates over completed kernels, GPU cycles
    /// @{
    std::uint64_t p50TurnaroundCycles = 0;
    std::uint64_t p99TurnaroundCycles = 0;
    std::uint64_t maxQueueCycles = 0;
    /// @}

    unsigned sloTracked = 0;  //!< launches with a deadline
    unsigned sloMisses = 0;

    /// @name Scheduling activity (summed over kernels / machine-wide)
    /// @{
    std::uint64_t preemptions = 0;
    std::uint64_t swapOuts = 0;
    std::uint64_t swapIns = 0;
    std::uint64_t cuReassignments = 0;
    std::uint64_t admissionPasses = 0;
    /// @}

    /**
     * Jain fairness index over per-tenant mean turnaround (tenants
     * with at least one completed kernel); 1.0 = every tenant sees
     * the same latency, 1/N = one tenant absorbs all the queueing.
     */
    double fairness = 0.0;

    /** Completion order of context ids (from the KernelListener). */
    std::vector<int> completionOrder;

    /** Per-kernel outcomes, in ctx-id (creation) order. */
    std::vector<core::KernelRunStat> kernels;

    core::RunResult run;
};

/** Run one serving scenario to completion (or deadlock/budget). */
ServingReport runServingScenario(const ServingConfig &cfg);

/**
 * Serialize @p report as one JSON object (schema "ifp-serving-v1").
 * Fixed-precision formatting: byte-identical across reruns of the
 * same (config, seed).
 */
void writeServingJson(std::ostream &os, const ServingReport &report);

/** Human-readable one-line-per-report comparison table. */
void writeServingTable(std::ostream &os,
                       const std::vector<ServingReport> &reports);

} // namespace ifp::harness

#endif // IFP_HARNESS_SERVING_HH
