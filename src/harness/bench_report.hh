/**
 * @file
 * Machine-readable perf baselines for the bench binaries.
 *
 * When the IFP_BENCH_JSON_OUT environment variable names an output
 * file, every sweep a bench binary executes (via bench_common.hh's
 * runSweep) is recorded: host wall/serial seconds, per-point runtime,
 * and the host-side work counters harvested from each run (events
 * executed, memory requests allocated). From those the document
 * derives the events-per-second and requests-per-second rates that
 * `tools/bench_check` compares against a committed baseline.
 *
 * The file is rewritten after every sweep, so an interrupted bench
 * still leaves a valid document covering the sweeps that finished.
 * Schema "ifp-bench-v1"; the layout is documented in EXPERIMENTS.md.
 */

#ifndef IFP_HARNESS_BENCH_REPORT_HH
#define IFP_HARNESS_BENCH_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace ifp::harness {

/** Process-wide collector behind IFP_BENCH_JSON_OUT. */
class BenchReport
{
  public:
    /** The process's collector (reads the environment once). */
    static BenchReport &instance();

    /** True when a report file was requested for this process. */
    bool enabled() const { return !outPath.empty(); }

    /**
     * Record one completed sweep under @p label and rewrite the
     * report file. No-op (and no I/O) when not enabled().
     */
    void addSweep(const std::string &label, const SweepRunner &sweep);

    /**
     * One externally-timed run for addExternalSweep() — used by bench
     * binaries whose evaluation does not go through a SweepRunner
     * (e.g. the multi-kernel serving scenarios, which are one
     * GpuSystem serving many kernels rather than many experiments).
     */
    struct ExternalPoint
    {
        std::string workload;
        std::string policy;
        bool completed = false;
        double seconds = 0.0;
        std::uint64_t gpuCycles = 0;
        std::uint64_t hostEvents = 0;
        std::uint64_t memRequests = 0;
    };

    /**
     * Record a set of externally-timed points as one sweep under
     * @p label and rewrite the report file. The sweep's wall and
     * serial seconds are both the sum of the point timings (external
     * runs are serial by construction). No-op when not enabled().
     */
    void addExternalSweep(const std::string &label,
                          const std::vector<ExternalPoint> &points);

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

  private:
    BenchReport();

    struct Point
    {
        std::string workload;
        std::string policy;
        bool oversubscribed = false;
        bool completed = false;
        double seconds = 0.0;
        std::uint64_t gpuCycles = 0;
        std::uint64_t hostEvents = 0;
        std::uint64_t memRequests = 0;
    };

    struct Sweep
    {
        std::string label;
        unsigned jobs = 1;
        double wallSeconds = 0.0;
        double serialSeconds = 0.0;
        std::vector<Point> points;

        std::uint64_t hostEvents() const;
        std::uint64_t memRequests() const;
    };

    void writeFile() const;

    std::string outPath;    //!< empty: reporting disabled
    std::string benchName;  //!< from the output file's basename
    std::vector<Sweep> sweeps;
};

} // namespace ifp::harness

#endif // IFP_HARNESS_BENCH_REPORT_HH
