/**
 * @file
 * Run observability: exporting a finished run's trace and statistics.
 *
 * The harness side of the observability layer (see sim/trace_sink.hh
 * for the in-simulator side). An Experiment carries an ObserveOptions;
 * when any output is requested the runner enables RunConfig::
 * traceEnabled and, after the run, writes
 *
 *  - a Chrome-trace JSON file (load it in Perfetto / chrome://tracing:
 *    one track per CU plus dispatcher/SyncMon/CP rows, one async span
 *    per WG with lifecycle phase segments), and/or
 *  - a stats-JSON file: the experiment, the RunResult and every
 *    component StatGroup in one machine-readable object.
 *
 * Output paths may contain the placeholders {workload}, {policy} and
 * {scenario}, which expand per run — handy when one bench process
 * performs many runs.
 */

#ifndef IFP_HARNESS_OBSERVE_HH
#define IFP_HARNESS_OBSERVE_HH

#include <ostream>
#include <string>

#include "core/gpu_system.hh"
#include "core/run_result.hh"

namespace ifp::harness {

struct Experiment;

/** Per-experiment observability outputs. */
struct ObserveOptions
{
    /** Chrome-trace JSON destination ("" = no trace file). */
    std::string traceOutPath;
    /** Stats-JSON destination ("" = no stats file). */
    std::string statsJsonPath;
    /**
     * Collect trace events even without an output file (tests read
     * them through GpuSystem::traceSink()).
     */
    bool captureTrace = false;

    /** Whether the run needs a TraceSink at all. */
    bool
    wantsCapture() const
    {
        return captureTrace || !traceOutPath.empty() ||
               !statsJsonPath.empty();
    }
};

/**
 * Expand {workload}, {policy} and {scenario} in an output path.
 * {scenario} becomes "oversub" or "steady".
 */
std::string expandObservePath(const std::string &path,
                              const Experiment &exp);

/** Write @p system's collected trace as Chrome-trace JSON. */
void writeChromeTrace(std::ostream &os, const core::GpuSystem &system);

/**
 * Write the run's statistics as one JSON object:
 * {"experiment-result": <writeResultJson>, "groups": [<StatGroup>...]}.
 */
void writeStatsJson(std::ostream &os, const Experiment &exp,
                    const core::GpuSystem &system,
                    const core::RunResult &result);

/**
 * Write the files requested by @p exp.observe (no-op when none).
 * Called by the runner after every experiment.
 */
void exportRunArtifacts(const Experiment &exp,
                        const core::GpuSystem &system,
                        const core::RunResult &result);

/**
 * Whether IFP_BENCH_TRACE=1 is set: benches then run with tracing
 * enabled (but no output files) to prove tracing does not perturb
 * results.
 */
bool traceSmokeEnabled();

} // namespace ifp::harness

#endif // IFP_HARNESS_OBSERVE_HH
