/**
 * @file
 * Parallel sweep execution for the evaluation harness.
 *
 * Every paper figure is a sweep of independent (workload x policy x
 * scenario) simulations. SweepRunner fans those runs out across a
 * thread pool — each worker owns its GpuSystem, EventQueue and RNG,
 * so runs never share mutable state — and hands results back in
 * submission order. Tables and CSV output assembled from the results
 * are therefore byte-identical to a serial run; only the wall clock
 * changes. jobs=1 bypasses the pool entirely (legacy serial path).
 */

#ifndef IFP_HARNESS_SWEEP_HH
#define IFP_HARNESS_SWEEP_HH

#include <cstddef>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace ifp::harness {

/** Batch of independent experiments executed by a worker pool. */
class SweepRunner
{
  public:
    /**
     * @param jobs worker count; 0 means "use jobsFromEnv()", 1 runs
     *             everything serially on the calling thread.
     */
    explicit SweepRunner(unsigned jobs = 0);

    /** Queue one experiment; @return its index into results(). */
    std::size_t enqueue(Experiment exp);

    /** Number of experiments queued so far. */
    std::size_t size() const { return experiments.size(); }

    /**
     * Execute every queued experiment and return the results in
     * submission order. Idempotent: later calls return the same
     * vector without re-running.
     */
    const std::vector<core::RunResult> &run();

    /** Result of the @p index-th enqueued experiment (after run()). */
    const core::RunResult &result(std::size_t index) const;

    /** All results, in submission order (after run()). */
    const std::vector<core::RunResult> &results() const;

    /** Worker count this runner resolved to. */
    unsigned jobs() const { return numJobs; }

    /** Wall-clock seconds spent inside run(). */
    double wallSeconds() const { return wall; }

    /** Sum of per-run seconds: the serial-equivalent cost. */
    double serialSeconds() const { return serial; }

    /** Host seconds each experiment took, by index (after run()). */
    const std::vector<double> &pointSeconds() const;

    /** The experiments queued so far, in submission order. */
    const std::vector<Experiment> &
    queuedExperiments() const
    {
        return experiments;
    }

    /**
     * Print a one-line wall-clock/speedup report for this sweep to
     * stderr (stdout stays reserved for tables/CSV so parallel and
     * serial output remain diffable).
     */
    void reportPerf(const std::string &label) const;

    /**
     * Worker count from the IFP_BENCH_JOBS environment variable;
     * unset or invalid falls back to hardware concurrency.
     */
    static unsigned jobsFromEnv();

  private:
    unsigned numJobs;
    std::vector<Experiment> experiments;
    std::vector<core::RunResult> resultsVec;
    std::vector<double> pointSecs;
    double wall = 0.0;
    double serial = 0.0;
    bool ran = false;
};

/** One-shot convenience: run @p exps on @p jobs workers. */
std::vector<core::RunResult>
runSweep(const std::vector<Experiment> &exps, unsigned jobs = 0);

} // namespace ifp::harness

#endif // IFP_HARNESS_SWEEP_HH
