/**
 * @file
 * Experiment runner: one call = one (benchmark, policy, scenario)
 * simulation, with the codegen style and controller derived from the
 * policy. The benches and tests drive all paper experiments through
 * this interface.
 */

#ifndef IFP_HARNESS_RUNNER_HH
#define IFP_HARNESS_RUNNER_HH

#include <functional>
#include <string>

#include "core/gpu_system.hh"
#include "core/run_result.hh"
#include "harness/observe.hh"
#include "workloads/registry.hh"

namespace ifp::harness {

/** Everything configuring one experiment run. */
struct Experiment
{
    std::string workload = "SPM_G";
    core::Policy policy = core::Policy::Awg;
    bool oversubscribed = false;

    /**
     * Optional workload factory. When set it overrides the registry
     * lookup of `workload`, so sweeps can vary constructor parameters
     * the registry defaults (queue depth, producer:consumer ratio).
     * `workload` stays the experiment's label either way. Must be a
     * pure factory (callable repeatedly — sharded runs rebuild).
     */
    std::function<workloads::WorkloadPtr()> makeWorkload;

    /** Workload geometry (style is overwritten from the policy). */
    workloads::WorkloadParams params;

    /**
     * Machine/scenario configuration (policy enum overwritten from
     * `policy` above). Policy parameters live here, in
     * runCfg.policy: e.g. Figure 8 sweeps
     * runCfg.policy.timeoutIntervalCycles and Figure 7 sweeps
     * runCfg.policy.sleepMaxBackoffCycles.
     */
    core::RunConfig runCfg;

    /** Observability outputs (trace / stats-JSON files). */
    ObserveOptions observe;
};

/** Run one experiment and return its result. */
core::RunResult runExperiment(const Experiment &exp);

/**
 * Run one experiment with a caller-provided system hook, letting
 * tests inspect the composed GpuSystem after the run. @p inspect may
 * be null.
 */
core::RunResult
runExperimentWithSystem(const Experiment &exp,
                        const std::function<void(core::GpuSystem &)>
                            &inspect);

/** The default evaluation geometry used by all paper benches. */
workloads::WorkloadParams defaultEvalParams();

/**
 * In-run shard count from IFP_RUN_SHARDS (default 1, the serial
 * core). Experiments whose runCfg.shards is 0 ("unset") resolve
 * through this, so a whole bench can be switched to the PDES core
 * from the environment without touching every call site.
 */
unsigned runShardsFromEnv();

} // namespace ifp::harness

#endif // IFP_HARNESS_RUNNER_HH
