/**
 * @file
 * Experiment runner: one call = one (benchmark, policy, scenario)
 * simulation, with the codegen style and controller derived from the
 * policy. The benches and tests drive all paper experiments through
 * this interface.
 */

#ifndef IFP_HARNESS_RUNNER_HH
#define IFP_HARNESS_RUNNER_HH

#include <functional>
#include <string>

#include "core/gpu_system.hh"
#include "core/run_result.hh"
#include "workloads/registry.hh"

namespace ifp::harness {

/** Everything configuring one experiment run. */
struct Experiment
{
    std::string workload = "SPM_G";
    core::Policy policy = core::Policy::Awg;
    bool oversubscribed = false;

    /** Workload geometry (style is overwritten from the policy). */
    workloads::WorkloadParams params;

    /** Machine/scenario configuration (policy overwritten). */
    core::RunConfig runCfg;

    /** Timeout policy interval (Figure 8 sweeps this). */
    sim::Cycles timeoutIntervalCycles = 20'000;
    /** Sleep policy maximum backoff (Figure 7 sweeps this). */
    sim::Cycles sleepMaxBackoffCycles = 16'384;
};

/** Run one experiment and return its result. */
core::RunResult runExperiment(const Experiment &exp);

/**
 * Run one experiment with a caller-provided system hook, letting
 * tests inspect the composed GpuSystem after the run. @p inspect may
 * be null.
 */
core::RunResult
runExperimentWithSystem(const Experiment &exp,
                        const std::function<void(core::GpuSystem &)>
                            &inspect);

/** The default evaluation geometry used by all paper benches. */
workloads::WorkloadParams defaultEvalParams();

} // namespace ifp::harness

#endif // IFP_HARNESS_RUNNER_HH
