/**
 * @file
 * Aligned text tables and small numeric helpers for the benchmark
 * harness (the benches print the same rows/series as the paper's
 * tables and figures).
 */

#ifndef IFP_HARNESS_TABLE_HH
#define IFP_HARNESS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace ifp::harness {

/** A simple aligned-column text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Print with a header rule; columns auto-sized. */
    void print(std::ostream &os) const;

    /** Print as CSV (for plotting scripts). */
    void printCsv(std::ostream &os) const;

    /**
     * Print the aligned table and, when the IFP_BENCH_CSV environment
     * variable is set, a machine-readable CSV block after it. Every
     * bench binary funnels its output through here, so serial and
     * parallel sweeps share one (diffable) output path.
     */
    void emit(std::ostream &os) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Format @p value with @p precision digits after the point. */
std::string formatDouble(double value, int precision = 2);

/** Geometric mean; ignores non-positive entries. */
double geomean(const std::vector<double> &values);

} // namespace ifp::harness

#endif // IFP_HARNESS_TABLE_HH
