#include "harness/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace ifp::harness {

TextTable::TextTable(std::vector<std::string> hdrs)
    : headers(std::move(hdrs))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    ifp_assert(cells.size() == headers.size(),
               "row has %zu cells, table has %zu columns",
               cells.size(), headers.size());
    rows.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size()) {
                os << std::string(widths[c] - cells[c].size() + 2,
                                  ' ');
            }
        }
        os << '\n';
    };

    emit_row(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit(headers);
    for (const auto &row : rows)
        emit(row);
}

void
TextTable::emit(std::ostream &os) const
{
    print(os);
    if (std::getenv("IFP_BENCH_CSV")) {
        os << "\n[csv]\n";
        printCsv(os);
    }
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double v : values) {
        if (v <= 0.0)
            continue;
        log_sum += std::log(v);
        ++n;
    }
    return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

} // namespace ifp::harness
