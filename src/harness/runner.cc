#include "harness/runner.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace ifp::harness {

unsigned
runShardsFromEnv()
{
    if (const char *env = std::getenv("IFP_RUN_SHARDS")) {
        char *end = nullptr;
        long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed >= 1)
            return static_cast<unsigned>(parsed);
        sim::warnImpl("ignoring invalid IFP_RUN_SHARDS='%s'", env);
    }
    return 1;
}

workloads::WorkloadParams
defaultEvalParams()
{
    workloads::WorkloadParams params;
    params.numWgs = 64;       // 8 WGs per CU on the 8-CU machine
    params.wgsPerGroup = 8;   // L: one locality group per CU
    params.wiPerWg = 64;      // n: one wavefront per WG
    params.iters = 4;
    params.csValuCycles = 30;
    return params;
}

core::RunResult
runExperimentWithSystem(const Experiment &exp,
                        const std::function<void(core::GpuSystem &)>
                            &inspect)
{
    workloads::WorkloadPtr workload =
        exp.makeWorkload ? exp.makeWorkload()
                         : workloads::makeWorkload(exp.workload);

    workloads::WorkloadParams params = exp.params;
    params.style = core::styleFor(exp.policy);
    params.backoffMaxCycles = static_cast<std::int64_t>(
        exp.runCfg.policy.sleepMaxBackoffCycles);

    core::RunConfig run_cfg = exp.runCfg;
    run_cfg.policy.policy = exp.policy;
    run_cfg.oversubscribed = exp.oversubscribed;
    if (exp.observe.wantsCapture() || traceSmokeEnabled())
        run_cfg.traceEnabled = true;
    if (run_cfg.shards == 0)
        run_cfg.shards = runShardsFromEnv();

    core::GpuSystem system(run_cfg);
    isa::Kernel kernel = workload->build(system, params);

    core::RunResult result = system.run(
        kernel,
        [&](const mem::BackingStore &store, std::string &err) {
            return workload->validate(store, params, err);
        });

    if (result.completed && !result.validated) {
        ifp_fatal("%s/%s: validation failed: %s", exp.workload.c_str(),
                  core::policyName(exp.policy),
                  result.validationError.c_str());
    }
    exportRunArtifacts(exp, system, result);
    if (inspect)
        inspect(system);
    return result;
}

core::RunResult
runExperiment(const Experiment &exp)
{
    return runExperimentWithSystem(exp, nullptr);
}

} // namespace ifp::harness
