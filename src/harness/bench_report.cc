#include "harness/bench_report.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/policy.hh"
#include "sim/logging.hh"

namespace ifp::harness {

namespace {

/** Minimal JSON string escaping (labels are plain identifiers). */
std::string
escaped(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
num(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    return buf;
}

double
rate(std::uint64_t count, double seconds)
{
    return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

} // anonymous namespace

std::uint64_t
BenchReport::Sweep::hostEvents() const
{
    std::uint64_t total = 0;
    for (const Point &p : points)
        total += p.hostEvents;
    return total;
}

std::uint64_t
BenchReport::Sweep::memRequests() const
{
    std::uint64_t total = 0;
    for (const Point &p : points)
        total += p.memRequests;
    return total;
}

BenchReport &
BenchReport::instance()
{
    static BenchReport report;
    return report;
}

BenchReport::BenchReport()
{
    const char *env = std::getenv("IFP_BENCH_JSON_OUT");
    if (env == nullptr || *env == '\0')
        return;
    outPath = env;

    // BENCH_<name>.json -> <name>; anything else is used as-is.
    std::string base = outPath;
    if (std::size_t slash = base.find_last_of('/');
        slash != std::string::npos)
        base = base.substr(slash + 1);
    if (base.rfind("BENCH_", 0) == 0)
        base = base.substr(6);
    if (base.size() > 5 && base.compare(base.size() - 5, 5, ".json") == 0)
        base = base.substr(0, base.size() - 5);
    benchName = base;
}

void
BenchReport::addSweep(const std::string &label, const SweepRunner &sweep)
{
    if (!enabled())
        return;

    Sweep record;
    record.label = label;
    record.jobs = sweep.jobs();
    record.wallSeconds = sweep.wallSeconds();
    record.serialSeconds = sweep.serialSeconds();

    const std::vector<Experiment> &exps = sweep.queuedExperiments();
    const std::vector<core::RunResult> &results = sweep.results();
    const std::vector<double> &seconds = sweep.pointSeconds();
    for (std::size_t i = 0; i < results.size(); ++i) {
        Point p;
        p.workload = exps[i].workload;
        p.policy = core::policyName(exps[i].policy);
        p.oversubscribed = exps[i].oversubscribed;
        p.completed = results[i].completed;
        p.seconds = seconds[i];
        p.gpuCycles = results[i].gpuCycles;
        p.hostEvents = results[i].hostEvents;
        p.memRequests = results[i].memRequests;
        record.points.push_back(std::move(p));
    }
    sweeps.push_back(std::move(record));
    writeFile();
}

void
BenchReport::addExternalSweep(const std::string &label,
                              const std::vector<ExternalPoint> &points)
{
    if (!enabled())
        return;

    Sweep record;
    record.label = label;
    record.jobs = 1;
    for (const ExternalPoint &ep : points) {
        Point p;
        p.workload = ep.workload;
        p.policy = ep.policy;
        p.completed = ep.completed;
        p.seconds = ep.seconds;
        p.gpuCycles = ep.gpuCycles;
        p.hostEvents = ep.hostEvents;
        p.memRequests = ep.memRequests;
        record.points.push_back(std::move(p));
        record.wallSeconds += ep.seconds;
        record.serialSeconds += ep.seconds;
    }
    sweeps.push_back(std::move(record));
    writeFile();
}

void
BenchReport::writeFile() const
{
    std::ofstream os(outPath, std::ios::trunc);
    if (!os) {
        sim::warnImpl("cannot write bench report to '%s'",
                      outPath.c_str());
        return;
    }

    double wall = 0.0;
    std::uint64_t events = 0, requests = 0;
    for (const Sweep &s : sweeps) {
        wall += s.wallSeconds;
        events += s.hostEvents();
        requests += s.memRequests();
    }

    os << "{\"schema\":\"ifp-bench-v1\",";
    os << "\"bench\":\"" << escaped(benchName) << "\",";
    os << "\"sweeps\":[";
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const Sweep &s = sweeps[i];
        if (i > 0)
            os << ",";
        os << "{\"label\":\"" << escaped(s.label) << "\",";
        os << "\"jobs\":" << s.jobs << ",";
        os << "\"runs\":" << s.points.size() << ",";
        os << "\"wallSeconds\":" << num(s.wallSeconds) << ",";
        os << "\"serialSeconds\":" << num(s.serialSeconds) << ",";
        os << "\"hostEvents\":" << s.hostEvents() << ",";
        os << "\"memRequests\":" << s.memRequests() << ",";
        os << "\"eventsPerSecond\":"
           << num(rate(s.hostEvents(), s.wallSeconds)) << ",";
        os << "\"requestsPerSecond\":"
           << num(rate(s.memRequests(), s.wallSeconds)) << ",";
        os << "\"points\":[";
        for (std::size_t j = 0; j < s.points.size(); ++j) {
            const Point &p = s.points[j];
            if (j > 0)
                os << ",";
            os << "{\"workload\":\"" << escaped(p.workload) << "\",";
            os << "\"policy\":\"" << escaped(p.policy) << "\",";
            os << "\"oversubscribed\":"
               << (p.oversubscribed ? "true" : "false") << ",";
            os << "\"completed\":" << (p.completed ? "true" : "false")
               << ",";
            os << "\"seconds\":" << num(p.seconds) << ",";
            os << "\"gpuCycles\":" << p.gpuCycles << ",";
            os << "\"hostEvents\":" << p.hostEvents << ",";
            os << "\"memRequests\":" << p.memRequests << "}";
        }
        os << "]}";
    }
    os << "],";
    os << "\"totals\":{";
    os << "\"wallSeconds\":" << num(wall) << ",";
    os << "\"hostEvents\":" << events << ",";
    os << "\"memRequests\":" << requests << ",";
    os << "\"eventsPerSecond\":" << num(rate(events, wall)) << ",";
    os << "\"requestsPerSecond\":" << num(rate(requests, wall));
    os << "}}\n";
}

} // namespace ifp::harness
