/**
 * @file
 * Chaos-campaign runner: seeded fault-plan sweeps with liveness
 * verdicts.
 *
 * A campaign generates N fault plans from (ChaosSpec, baseSeed + i),
 * runs every plan against every policy under test through the
 * parallel SweepRunner, and reports the verdict matrix. Results come
 * back in submission order, so campaign tables/CSV are byte-identical
 * between serial and parallel execution — and, because every fault is
 * an event-queue event derived from (plan, seed), between repeated
 * runs of the same campaign.
 */

#ifndef IFP_HARNESS_CAMPAIGN_HH
#define IFP_HARNESS_CAMPAIGN_HH

#include <ostream>
#include <vector>

#include "core/fault_plan.hh"
#include "harness/runner.hh"

namespace ifp::harness {

/** Configuration of one chaos campaign. */
struct CampaignConfig
{
    std::string workload = "SPM_G";
    /** Policies each plan is run against. */
    std::vector<core::Policy> policies = {core::Policy::Timeout,
                                          core::Policy::Awg,
                                          core::Policy::MonNRAll};
    /** Number of generated fault plans. */
    unsigned numPlans = 20;
    /** Plan i uses seed baseSeed + i. */
    std::uint64_t baseSeed = 1;
    /** Fault-mix knobs (numCus is overwritten from runCfg.gpu). */
    core::ChaosSpec chaos;

    workloads::WorkloadParams params;
    core::RunConfig runCfg;

    /** Sweep worker count (0 = IFP_BENCH_JOBS / hardware). */
    unsigned jobs = 0;

    /**
     * Also drive every plan through serve() with a two-kernel mix
     * (`workload` + `mixWorkload` enqueued together), exercising the
     * fault engine against the CP admission scheduler rather than
     * the single-kernel run loop. Opt-in: with it off, campaign
     * tables and CSV stay byte-identical to earlier releases.
     */
    bool servingMix = false;
    /** Second kernel of the serving mix. */
    std::string mixWorkload = "BA";
};

/** One (plan, policy) cell of the campaign matrix. */
struct CampaignRun
{
    const core::FaultPlan *plan = nullptr;
    core::Policy policy{};
    core::RunResult result;
};

/** One (plan, policy) serve() cell of the serving-mix matrix. */
struct CampaignServingRun
{
    const core::FaultPlan *plan = nullptr;
    core::Policy policy{};
    core::Verdict verdict = core::Verdict::Unknown;
    /** Kernels of the mix that completed (0..2). */
    unsigned kernelsCompleted = 0;
    /** Both completed kernels' memory images validated. */
    bool validated = false;
    std::uint64_t gpuCycles = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t swapIns = 0;
};

/** Everything a finished campaign produced. */
struct CampaignReport
{
    std::vector<core::FaultPlan> plans;
    std::vector<core::Policy> policies;
    /** Plan-major: runs[plan_idx * policies.size() + policy_idx]. */
    std::vector<CampaignRun> runs;

    /**
     * Serving-mix cells, plan-major like `runs`. Empty unless
     * CampaignConfig::servingMix was set.
     */
    std::vector<CampaignServingRun> servingRuns;

    const CampaignRun &
    run(std::size_t plan_idx, std::size_t policy_idx) const
    {
        return runs[plan_idx * policies.size() + policy_idx];
    }

    /**
     * The campaign's forward-progress ordering check: @p subject
     * completes every plan @p reference completes. Plans where the
     * reference itself stalls don't count against the subject.
     */
    bool completesAllOf(core::Policy subject,
                        core::Policy reference) const;

    /** Verdicts per plan, one row per plan (aligned text + CSV). */
    void writeTable(std::ostream &os) const;
    void writeCsv(std::ostream &os) const;

    /** Serving-mix cells as CSV (empty output without servingMix). */
    void writeServingCsv(std::ostream &os) const;
};

/** Generate the plans and run the full matrix. */
CampaignReport runChaosCampaign(const CampaignConfig &cfg);

} // namespace ifp::harness

#endif // IFP_HARNESS_CAMPAIGN_HH
