#include "isa/builder.hh"

#include "sim/logging.hh"

namespace ifp::isa {

Instr &
KernelBuilder::emit(Opcode op)
{
    code.emplace_back();
    code.back().op = op;
    return code.back();
}

Label
KernelBuilder::label()
{
    labelTargets.push_back(-1);
    return Label(labelTargets.size() - 1);
}

void
KernelBuilder::bind(Label &l)
{
    ifp_assert(l.validLabel, "binding an invalid label");
    ifp_assert(labelTargets[l.index] < 0, "label bound twice");
    labelTargets[l.index] = static_cast<std::int64_t>(code.size());
}

Label
KernelBuilder::here()
{
    Label l = label();
    bind(l);
    return l;
}

void
KernelBuilder::nop()
{
    emit(Opcode::Nop);
}

void
KernelBuilder::movi(Reg dst, std::int64_t imm)
{
    Instr &i = emit(Opcode::Movi);
    i.dst = dst;
    i.imm = imm;
}

void
KernelBuilder::mov(Reg dst, Reg src)
{
    Instr &i = emit(Opcode::Mov);
    i.dst = dst;
    i.src0 = src;
}

namespace {

void
binOpReg(Instr &i, Reg dst, Reg a, Reg b)
{
    i.dst = dst;
    i.src0 = a;
    i.src1 = b;
}

void
binOpImm(Instr &i, Reg dst, Reg a, std::int64_t imm)
{
    i.dst = dst;
    i.src0 = a;
    i.useImm = true;
    i.imm = imm;
}

} // anonymous namespace

void KernelBuilder::add(Reg dst, Reg a, Reg b)
{ binOpReg(emit(Opcode::Add), dst, a, b); }
void KernelBuilder::addi(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::Add), dst, a, imm); }
void KernelBuilder::sub(Reg dst, Reg a, Reg b)
{ binOpReg(emit(Opcode::Sub), dst, a, b); }
void KernelBuilder::subi(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::Sub), dst, a, imm); }
void KernelBuilder::mul(Reg dst, Reg a, Reg b)
{ binOpReg(emit(Opcode::Mul), dst, a, b); }
void KernelBuilder::muli(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::Mul), dst, a, imm); }
void KernelBuilder::divi(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::Div), dst, a, imm); }
void KernelBuilder::remi(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::Rem), dst, a, imm); }
void KernelBuilder::andi(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::And), dst, a, imm); }
void KernelBuilder::ori(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::Or), dst, a, imm); }
void KernelBuilder::xori(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::Xor), dst, a, imm); }
void KernelBuilder::shli(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::Shl), dst, a, imm); }
void KernelBuilder::shri(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::Shr), dst, a, imm); }
void KernelBuilder::cmpEq(Reg dst, Reg a, Reg b)
{ binOpReg(emit(Opcode::CmpEq), dst, a, b); }
void KernelBuilder::cmpEqi(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::CmpEq), dst, a, imm); }
void KernelBuilder::cmpNe(Reg dst, Reg a, Reg b)
{ binOpReg(emit(Opcode::CmpNe), dst, a, b); }
void KernelBuilder::cmpNei(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::CmpNe), dst, a, imm); }
void KernelBuilder::cmpLt(Reg dst, Reg a, Reg b)
{ binOpReg(emit(Opcode::CmpLt), dst, a, b); }
void KernelBuilder::cmpLti(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::CmpLt), dst, a, imm); }
void KernelBuilder::cmpLe(Reg dst, Reg a, Reg b)
{ binOpReg(emit(Opcode::CmpLe), dst, a, b); }
void KernelBuilder::cmpLei(Reg dst, Reg a, std::int64_t imm)
{ binOpImm(emit(Opcode::CmpLe), dst, a, imm); }

void
KernelBuilder::branch(Opcode op, Reg cond, const Label &target)
{
    ifp_assert(target.validLabel, "branch to invalid label");
    Instr &i = emit(op);
    i.src0 = cond;
    fixups.push_back(Fixup{code.size() - 1, target.index});
}

void
KernelBuilder::bz(Reg cond, const Label &target)
{
    branch(Opcode::Bz, cond, target);
}

void
KernelBuilder::bnz(Reg cond, const Label &target)
{
    branch(Opcode::Bnz, cond, target);
}

void
KernelBuilder::br(const Label &target)
{
    branch(Opcode::Br, 0, target);
}

void
KernelBuilder::halt()
{
    emit(Opcode::Halt);
}

void
KernelBuilder::ld(Reg dst, Reg addr, std::int64_t offset)
{
    Instr &i = emit(Opcode::Ld);
    i.dst = dst;
    i.src0 = addr;
    i.imm = offset;
}

void
KernelBuilder::st(Reg addr, Reg value, std::int64_t offset)
{
    Instr &i = emit(Opcode::St);
    i.src0 = addr;
    i.src1 = value;
    i.imm = offset;
}

void
KernelBuilder::ldLds(Reg dst, Reg addr, std::int64_t offset)
{
    Instr &i = emit(Opcode::LdLds);
    i.dst = dst;
    i.src0 = addr;
    i.imm = offset;
}

void
KernelBuilder::stLds(Reg addr, Reg value, std::int64_t offset)
{
    Instr &i = emit(Opcode::StLds);
    i.src0 = addr;
    i.src1 = value;
    i.imm = offset;
}

void
KernelBuilder::atom(Reg dst, mem::AtomicOpcode aop, Reg addr,
                    std::int64_t offset, Reg operand, Reg cas_compare,
                    bool acquire, bool release)
{
    Instr &i = emit(Opcode::Atom);
    i.dst = dst;
    i.src0 = addr;
    i.src1 = operand;
    i.src2 = cas_compare;
    i.imm = offset;
    i.aop = aop;
    i.acquire = acquire;
    i.release = release;
}

void
KernelBuilder::atomWait(Reg dst, mem::AtomicOpcode aop, Reg addr,
                        std::int64_t offset, Reg operand, Reg expected,
                        bool acquire, bool release)
{
    Instr &i = emit(Opcode::AtomWait);
    i.dst = dst;
    i.src0 = addr;
    i.src1 = operand;
    i.src2 = expected;
    i.imm = offset;
    i.aop = aop;
    i.acquire = acquire;
    i.release = release;
}

void
KernelBuilder::armWait(Reg addr, std::int64_t offset, Reg expected)
{
    Instr &i = emit(Opcode::ArmWait);
    i.src0 = addr;
    i.src1 = expected;
    i.imm = offset;
}

void
KernelBuilder::sleepR(Reg cycles)
{
    Instr &i = emit(Opcode::SleepR);
    i.src0 = cycles;
}

void
KernelBuilder::valu(std::int64_t cycles)
{
    ifp_assert(cycles > 0, "valu must occupy at least one cycle");
    Instr &i = emit(Opcode::Valu);
    i.imm = cycles;
}

void
KernelBuilder::bar()
{
    emit(Opcode::Bar);
}

void
KernelBuilder::suppressLint(const std::string &code_,
                            const std::string &reason)
{
    for (const LintSuppression &s : lintSuppressions) {
        if (s.code == code_)
            return;
    }
    lintSuppressions.push_back(LintSuppression{code_, reason});
}

std::vector<Instr>
KernelBuilder::build()
{
    for (const Fixup &fixup : fixups) {
        std::int64_t target = labelTargets[fixup.labelIndex];
        if (target < 0) {
            ifp_fatal("branch at pc %zu references label %zu, which "
                      "was never bound; bind() it before build()",
                      fixup.instrIndex, fixup.labelIndex);
        }
        if (target >= static_cast<std::int64_t>(code.size())) {
            ifp_fatal("branch at pc %zu targets label %zu bound at "
                      "position %lld, past the last instruction "
                      "(code size %zu); emit the branch target (or a "
                      "halt) before build()",
                      fixup.instrIndex, fixup.labelIndex,
                      static_cast<long long>(target), code.size());
        }
        code[fixup.instrIndex].imm = target;
    }
    fixups.clear();
    return code;
}

} // namespace ifp::isa
