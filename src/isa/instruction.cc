#include "isa/instruction.hh"

#include <sstream>

#include "sim/logging.hh"

namespace ifp::isa {

bool
accessesGlobalMemory(const Instr &instr)
{
    switch (instr.op) {
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::Atom:
      case Opcode::AtomWait:
      case Opcode::ArmWait:
        return true;
      default:
        return false;
    }
}

bool
isBranch(const Instr &instr)
{
    return instr.op == Opcode::Bz || instr.op == Opcode::Bnz ||
           instr.op == Opcode::Br;
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Movi: return "movi";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::CmpEq: return "cmp.eq";
      case Opcode::CmpNe: return "cmp.ne";
      case Opcode::CmpLt: return "cmp.lt";
      case Opcode::CmpLe: return "cmp.le";
      case Opcode::Bz: return "bz";
      case Opcode::Bnz: return "bnz";
      case Opcode::Br: return "br";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::LdLds: return "ld.lds";
      case Opcode::StLds: return "st.lds";
      case Opcode::Atom: return "atom";
      case Opcode::AtomWait: return "atom.wait";
      case Opcode::ArmWait: return "wait";
      case Opcode::SleepR: return "s_sleep";
      case Opcode::Valu: return "valu";
      case Opcode::Bar: return "bar.wg";
      case Opcode::Halt: return "halt";
    }
    ifp_panic("unknown opcode %d", static_cast<int>(op));
}

std::string
disassemble(const Instr &instr)
{
    std::ostringstream os;
    auto reg = [](Reg r) { return "r" + std::to_string(r); };

    switch (instr.op) {
      case Opcode::Nop:
      case Opcode::Bar:
      case Opcode::Halt:
        os << opcodeName(instr.op);
        break;
      case Opcode::Movi:
        os << "movi " << reg(instr.dst) << ", " << instr.imm;
        break;
      case Opcode::Mov:
        os << "mov " << reg(instr.dst) << ", " << reg(instr.src0);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
      case Opcode::CmpLt:
      case Opcode::CmpLe:
        os << opcodeName(instr.op) << ' ' << reg(instr.dst) << ", "
           << reg(instr.src0) << ", ";
        if (instr.useImm)
            os << instr.imm;
        else
            os << reg(instr.src1);
        break;
      case Opcode::Bz:
      case Opcode::Bnz:
        os << opcodeName(instr.op) << ' ' << reg(instr.src0) << ", @"
           << instr.imm;
        break;
      case Opcode::Br:
        os << "br @" << instr.imm;
        break;
      case Opcode::Ld:
      case Opcode::LdLds:
        os << opcodeName(instr.op) << ' ' << reg(instr.dst) << ", ["
           << reg(instr.src0) << '+' << instr.imm << ']';
        break;
      case Opcode::St:
      case Opcode::StLds:
        os << opcodeName(instr.op) << " [" << reg(instr.src0) << '+'
           << instr.imm << "], " << reg(instr.src1);
        break;
      case Opcode::Atom:
      case Opcode::AtomWait:
        os << opcodeName(instr.op) << '.'
           << mem::atomicOpcodeName(instr.aop) << ' ' << reg(instr.dst)
           << ", [" << reg(instr.src0) << '+' << instr.imm << "], "
           << reg(instr.src1);
        if (instr.op == Opcode::AtomWait ||
            instr.aop == mem::AtomicOpcode::Cas) {
            os << ", " << reg(instr.src2);
        }
        if (instr.acquire)
            os << " acq";
        if (instr.release)
            os << " rel";
        break;
      case Opcode::ArmWait:
        os << "wait [" << reg(instr.src0) << '+' << instr.imm << "], "
           << reg(instr.src1);
        break;
      case Opcode::SleepR:
        os << "s_sleep " << reg(instr.src0);
        break;
      case Opcode::Valu:
        os << "valu " << instr.imm;
        break;
    }
    return os.str();
}

} // namespace ifp::isa
