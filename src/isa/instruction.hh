/**
 * @file
 * The simulator's miniature GPU ISA.
 *
 * Workloads (the HeteroSync suite and the example kernels) are written
 * against this ISA through the KernelBuilder assembler. Execution is
 * modeled at wavefront granularity: one instruction stream per
 * wavefront, with per-lane vector work represented by the `Valu`
 * occupancy instruction. This matches the structure of the HeteroSync
 * kernels, where a master lane performs all synchronization.
 *
 * Synchronization instructions:
 *  - Atom      : regular atomic performed at the L2
 *  - AtomWait  : *waiting atomic* (the paper's new instruction family);
 *                carries an expected value, and on failure the WG
 *                enters a waiting state with no window of vulnerability
 *  - ArmWait   : wait-instruction (MonR/MonRS styles); arms the monitor
 *                *after* the preceding check — exposing the paper's
 *                window-of-vulnerability race
 *  - SleepR    : s_sleep-style fixed-duration wavefront sleep
 *  - Bar       : intra-WG barrier (__syncthreads)
 */

#ifndef IFP_ISA_INSTRUCTION_HH
#define IFP_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "mem/atomic_op.hh"
#include "sim/types.hh"

namespace ifp::isa {

/** Number of general-purpose registers per wavefront. */
constexpr unsigned numRegs = 32;

/** Register index. */
using Reg = std::uint8_t;

/** Instruction opcodes. */
enum class Opcode : std::uint8_t
{
    Nop,
    Movi,    //!< dst = imm
    Mov,     //!< dst = r[src0]
    Add,     //!< dst = r[src0] + (useImm ? imm : r[src1])
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    CmpEq,   //!< dst = (r[src0] == rhs) ? 1 : 0
    CmpNe,
    CmpLt,   //!< signed
    CmpLe,
    Bz,      //!< if (r[src0] == 0) pc = imm
    Bnz,     //!< if (r[src0] != 0) pc = imm
    Br,      //!< pc = imm
    Ld,      //!< dst = mem[r[src0] + imm]           (global, 8 B)
    St,      //!< mem[r[src0] + imm] = r[src1]       (global, 8 B)
    LdLds,   //!< dst = lds[r[src0] + imm]
    StLds,   //!< lds[r[src0] + imm] = r[src1]
    Atom,    //!< dst = atomic(aop, r[src0]+imm, r[src1], cas: r[src2])
    AtomWait,//!< waiting atomic; expected value in r[src2]
    ArmWait, //!< arm monitor on (r[src0]+imm, expected r[src1])
    SleepR,  //!< sleep for r[src0] cycles (s_sleep)
    Valu,    //!< occupy the SIMD for imm cycles (per-lane work)
    Bar,     //!< work-group barrier
    Halt,    //!< wavefront terminates
};

/** One decoded instruction. */
struct Instr
{
    Opcode op = Opcode::Nop;
    Reg dst = 0;
    Reg src0 = 0;
    Reg src1 = 0;
    Reg src2 = 0;
    bool useImm = false;      //!< ALU: replace r[src1] with imm
    std::int64_t imm = 0;     //!< immediate / offset / branch target
    mem::AtomicOpcode aop = mem::AtomicOpcode::Load;
    bool acquire = false;     //!< memory-order acquire (atomics)
    bool release = false;     //!< memory-order release (atomics)
};

/** True for instructions that access global memory. */
bool accessesGlobalMemory(const Instr &instr);

/** True for branch instructions. */
bool isBranch(const Instr &instr);

/** Render one instruction as assembly-like text. */
std::string disassemble(const Instr &instr);

/** Mnemonic for an opcode. */
std::string opcodeName(Opcode op);

} // namespace ifp::isa

#endif // IFP_ISA_INSTRUCTION_HH
