/**
 * @file
 * Kernel descriptor: code plus launch geometry and resource usage.
 *
 * Resource declarations drive both occupancy (how many WGs fit on a CU)
 * and the WG context size used for context-switch cost and Figure 5.
 */

#ifndef IFP_ISA_KERNEL_HH
#define IFP_ISA_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace ifp::isa {

/** Wavefront width (work-items per wavefront). */
constexpr unsigned wavefrontSize = 64;

/**
 * A kernel-scoped waiver for one static-analysis diagnostic code.
 *
 * The verifier (analysis/lint) demotes matching diagnostics to
 * suppressed notes instead of dropping them, so --Werror gates hold
 * while deliberately racy kernels (e.g. the split check/ArmWait
 * window-of-vulnerability emitters) stay annotated with the reason
 * the race is intentional.
 */
struct LintSuppression
{
    std::string code;   //!< diagnostic code, e.g. "wov"
    std::string reason; //!< why the pattern is intentional
};

/** A compiled kernel ready for dispatch. */
struct Kernel
{
    std::string name;
    std::vector<Instr> code;

    /// @name Launch geometry
    /// @{
    unsigned wiPerWg = 64;      //!< n: work-items per work-group
    unsigned numWgs = 1;        //!< G: grid size in work-groups
    /// @}

    /// @name Declared resource usage (drives occupancy + context size)
    /// @{
    unsigned vgprsPerWi = 16;   //!< vector registers per work-item
    unsigned sgprsPerWf = 32;   //!< scalar registers per wavefront
    unsigned ldsBytes = 1024;   //!< LDS allocated per work-group
    unsigned maxWgsPerCu = 8;   //!< register-file occupancy bound
    /// @}

    /** Kernel arguments, loaded into r8.. at wavefront launch. */
    std::vector<mem::MemValue> args;

    /** Waived static-analysis diagnostics (see LintSuppression). */
    std::vector<LintSuppression> lintSuppressions;

    /** Wavefronts per work-group. */
    unsigned
    wavefrontsPerWg() const
    {
        return (wiPerWg + wavefrontSize - 1) / wavefrontSize;
    }

    /**
     * Architectural context of one WG, in bytes: vector registers,
     * scalar registers, the LDS image and fixed hardware state
     * (program counters, barrier state, EXEC masks). This is what a
     * context switch must move (Figure 5 of the paper).
     */
    std::uint64_t
    contextBytes() const
    {
        std::uint64_t vgpr = std::uint64_t(wiPerWg) * vgprsPerWi * 4;
        std::uint64_t sgpr =
            std::uint64_t(wavefrontsPerWg()) * sgprsPerWf * 4;
        std::uint64_t hw_state = 64 + 48ULL * wavefrontsPerWg();
        return vgpr + sgpr + ldsBytes + hw_state;
    }
};

} // namespace ifp::isa

#endif // IFP_ISA_KERNEL_HH
