/**
 * @file
 * KernelBuilder: a tiny assembler for the mini GPU ISA.
 *
 * Provides labels with forward references, convenience emitters for
 * every opcode, and register-allocation conventions:
 *
 *   r0          always-zero (initialized to 0; by convention not
 *               written)
 *   r1          global work-group id
 *   r2          wavefront id within the WG
 *   r3          total number of WGs in the grid (G)
 *   r4          wavefronts per WG
 *   r8..r15     kernel arguments
 *   r16..r31    scratch (suggested)
 *
 * Example — a spin lock acquire:
 * @code
 *   KernelBuilder b;
 *   auto spin = b.here();
 *   b.atom(r20, AtomicOpcode::Exch, rLock, 0, rOne);  // try lock
 *   b.bnz(r20, spin);                                 // retry
 * @endcode
 */

#ifndef IFP_ISA_BUILDER_HH
#define IFP_ISA_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/kernel.hh"

namespace ifp::isa {

/// @name Register conventions
/// @{
constexpr Reg rZero = 0;
constexpr Reg rWgId = 1;
constexpr Reg rWfId = 2;
constexpr Reg rNumWgs = 3;
constexpr Reg rWfPerWg = 4;
constexpr Reg rArg0 = 8;
/// @}

/** A branch target; create with label(), place with bind(). */
class Label
{
  public:
    Label() = default;

  private:
    friend class KernelBuilder;
    explicit Label(std::size_t idx) : index(idx), validLabel(true) {}
    std::size_t index = 0;
    bool validLabel = false;
};

/** Assembler for Kernel code. */
class KernelBuilder
{
  public:
    KernelBuilder() = default;

    /// @name Labels
    /// @{

    /** Create an unbound label for forward branches. */
    Label label();

    /** Bind @p l to the next emitted instruction. */
    void bind(Label &l);

    /** A label bound to the current position (backward branches). */
    Label here();
    /// @}

    /// @name ALU
    /// @{
    void nop();
    void movi(Reg dst, std::int64_t imm);
    void mov(Reg dst, Reg src);
    void add(Reg dst, Reg a, Reg b);
    void addi(Reg dst, Reg a, std::int64_t imm);
    void sub(Reg dst, Reg a, Reg b);
    void subi(Reg dst, Reg a, std::int64_t imm);
    void mul(Reg dst, Reg a, Reg b);
    void muli(Reg dst, Reg a, std::int64_t imm);
    void divi(Reg dst, Reg a, std::int64_t imm);
    void remi(Reg dst, Reg a, std::int64_t imm);
    void andi(Reg dst, Reg a, std::int64_t imm);
    void ori(Reg dst, Reg a, std::int64_t imm);
    void xori(Reg dst, Reg a, std::int64_t imm);
    void shli(Reg dst, Reg a, std::int64_t imm);
    void shri(Reg dst, Reg a, std::int64_t imm);
    void cmpEq(Reg dst, Reg a, Reg b);
    void cmpEqi(Reg dst, Reg a, std::int64_t imm);
    void cmpNe(Reg dst, Reg a, Reg b);
    void cmpNei(Reg dst, Reg a, std::int64_t imm);
    void cmpLt(Reg dst, Reg a, Reg b);
    void cmpLti(Reg dst, Reg a, std::int64_t imm);
    void cmpLe(Reg dst, Reg a, Reg b);
    void cmpLei(Reg dst, Reg a, std::int64_t imm);
    /// @}

    /// @name Control flow
    /// @{
    void bz(Reg cond, const Label &target);
    void bnz(Reg cond, const Label &target);
    void br(const Label &target);
    void halt();
    /// @}

    /// @name Memory
    /// @{
    void ld(Reg dst, Reg addr, std::int64_t offset = 0);
    void st(Reg addr, Reg value, std::int64_t offset = 0);
    void ldLds(Reg dst, Reg addr, std::int64_t offset = 0);
    void stLds(Reg addr, Reg value, std::int64_t offset = 0);
    /// @}

    /// @name Synchronization
    /// @{

    /** Regular atomic: dst = old value. @p cas_compare for CAS only. */
    void atom(Reg dst, mem::AtomicOpcode aop, Reg addr,
              std::int64_t offset, Reg operand, Reg cas_compare = 0,
              bool acquire = false, bool release = false);

    /**
     * Waiting atomic (the paper's instruction family): expected value
     * in @p expected; on failure the WG enters a waiting state and the
     * instruction re-executes when resumed (Mesa semantics).
     */
    void atomWait(Reg dst, mem::AtomicOpcode aop, Reg addr,
                  std::int64_t offset, Reg operand, Reg expected,
                  bool acquire = false, bool release = false);

    /** Wait-instruction (MonR/MonRS): arm monitor on (addr, expected). */
    void armWait(Reg addr, std::int64_t offset, Reg expected);

    /** Sleep the wavefront for r[cycles] cycles (s_sleep). */
    void sleepR(Reg cycles);

    /** Occupy the SIMD for @p cycles (models per-lane vector work). */
    void valu(std::int64_t cycles);

    /** Work-group barrier (__syncthreads). */
    void bar();
    /// @}

    /** Number of instructions emitted so far. */
    std::size_t size() const { return code.size(); }

    /**
     * Waive static-analysis diagnostic @p code for the kernel under
     * construction, with the reason the flagged pattern is intended
     * (e.g. "wov" for the split check/ArmWait monitor emitters).
     * Duplicate codes are ignored. Callers that assemble a Kernel by
     * hand copy suppressions() into Kernel::lintSuppressions.
     */
    void suppressLint(const std::string &code, const std::string &reason);

    /** Suppressions recorded via suppressLint(). */
    const std::vector<LintSuppression> &
    suppressions() const
    {
        return lintSuppressions;
    }

    /**
     * Finalize: patches all label references and returns the code.
     * Exits with a diagnostic if any referenced label is unbound or
     * bound past the last instruction (a branch to it could never
     * land on a valid pc).
     */
    std::vector<Instr> build();

  private:
    Instr &emit(Opcode op);
    void branch(Opcode op, Reg cond, const Label &target);

    struct Fixup
    {
        std::size_t instrIndex;
        std::size_t labelIndex;
    };

    std::vector<Instr> code;
    /** Bound position per label index; -1 when unbound. */
    std::vector<std::int64_t> labelTargets;
    std::vector<Fixup> fixups;
    std::vector<LintSuppression> lintSuppressions;
};

} // namespace ifp::isa

#endif // IFP_ISA_BUILDER_HH
