/**
 * @file
 * Per-CU L1 data cache.
 *
 * GPU-style: write-through, no write-allocate, and all atomics bypass
 * the L1 and are performed at the shared L2 (GCN semantics). Atomic
 * responses carrying acquire semantics invalidate the entire L1, which
 * models the buffer_wbinvl1-style flush GPUs issue at acquire points.
 *
 * The L1 is a timing filter only; data lives in the BackingStore and is
 * accessed at the point of service (L2/DRAM).
 */

#ifndef IFP_MEM_L1_CACHE_HH
#define IFP_MEM_L1_CACHE_HH

#include <unordered_map>
#include <vector>

#include "mem/cache_tags.hh"
#include "mem/request.hh"
#include "sim/clocked.hh"
#include "sim/stats.hh"

namespace ifp::mem {

/** L1 cache configuration (defaults per Table 1). */
struct L1Config
{
    std::size_t sizeBytes = 32 * 1024;
    unsigned assoc = 16;
    unsigned lineBytes = 64;
    /** Load-to-use latency on a hit, in GPU cycles. */
    sim::Cycles hitLatency = 30;
    /** Extra cycles for requests that bypass the L1 (atomics). */
    sim::Cycles bypassLatency = 4;
    sim::Tick clockPeriod = sim::periodFromFrequency(2'000'000'000ULL);
};

/** Write-through, no-write-allocate L1 data cache. */
class L1Cache : public sim::Clocked, public MemDevice,
                public MemResponder
{
  public:
    L1Cache(std::string name, sim::EventQueue &eq, const L1Config &cfg,
            MemDevice &next_level, MemRequestPool &request_pool);

    void access(const MemRequestPtr &req) override;

    /** Fill completion (the tag carries the line address). */
    void onMemResponse(MemRequest &req, std::uint64_t tag) override;

    /** Drop every line (acquire semantics / context switch). */
    void invalidateAll();

    sim::StatGroup &stats() { return statGroup; }
    const sim::StatGroup &stats() const { return statGroup; }

  private:
    void handleRead(const MemRequestPtr &req);
    void handleFill(Addr line_addr);

    /**
     * Chained into acquire responses: flushes the L1 before the
     * requester's own responder runs (buffer_wbinvl1 semantics).
     */
    struct AcquireHook : MemResponder
    {
        explicit AcquireHook(L1Cache &c) : cache(c) {}

        void
        onMemResponse(MemRequest &, std::uint64_t) override
        {
            cache.invalidateAll();
        }

        L1Cache &cache;
    };

    L1Config config;
    CacheTags tags;
    MemDevice &next;
    MemRequestPool &pool;
    AcquireHook acquireHook{*this};

    /** Reads outstanding per missing line (MSHR-style merging). */
    std::unordered_map<Addr, std::vector<MemRequestPtr>> mshrs;

    /// @name Precomputed event descriptions (hot path: no concats)
    /// @{
    std::string descHit;
    std::string descFill;
    std::string descBypass;
    /// @}

    sim::StatGroup statGroup;
    sim::Scalar &hits;
    sim::Scalar &misses;
    sim::Scalar &writethroughs;
    sim::Scalar &bypasses;
    sim::Scalar &invalidations;
};

} // namespace ifp::mem

#endif // IFP_MEM_L1_CACHE_HH
