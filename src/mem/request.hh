/**
 * @file
 * Memory request/response transport.
 *
 * A MemRequest travels from a compute unit through the L1 to the shared
 * L2 (and possibly DRAM). The response is delivered by invoking the
 * request's onResponse callback; intermediate devices may chain their
 * own bookkeeping around it.
 *
 * Waiting atomics (the paper's new instructions) are ordinary atomics
 * with `waiting == true` and an `expected` operand. When a waiting
 * atomic fails its comparison at the L2, the response carries a
 * WaitDecision telling the issuing work-group how to wait (stall on the
 * CU, context switch out, or retry because the Monitor Log is full).
 */

#ifndef IFP_MEM_REQUEST_HH
#define IFP_MEM_REQUEST_HH

#include <functional>
#include <memory>
#include <string>

#include "mem/atomic_op.hh"
#include "sim/types.hh"

namespace ifp::mem {

/** Kind of memory access. */
enum class MemOp
{
    Read,     //!< plain load
    Write,    //!< plain store
    Atomic,   //!< RMW performed at the L2 (possibly waiting)
    ArmWait,  //!< wait-instruction: arm the monitor (MonR/MonRS styles)
};

/** How a failed waiting atomic / armed wait should behave. */
enum class WaitKind
{
    Proceed,  //!< operation succeeded, keep executing
    Stall,    //!< wait while keeping CU resources
    Switch,   //!< yield resources: context switch the WG out
    Retry,    //!< Monitor Log full: re-execute the atomic (Mesa)
};

/** Decision attached to the response of a waiting operation. */
struct WaitDecision
{
    WaitKind kind = WaitKind::Proceed;
    /**
     * A rescue/timeout interval in GPU cycles; 0 means none. For the
     * Timeout policy this is the policy interval itself; for monitor
     * policies it is the backstop that re-activates the WG if the
     * monitor misses or mispredicts.
     */
    sim::Cycles timeoutCycles = 0;
};

/** A memory transaction in flight. */
struct MemRequest
{
    MemOp op = MemOp::Read;
    Addr addr = 0;
    unsigned size = 8;

    /// @name Atomic payload
    /// @{
    AtomicOpcode aop = AtomicOpcode::Load;
    MemValue operand = 0;
    MemValue compare = 0;    //!< CAS comparison operand
    bool waiting = false;    //!< waiting-atomic semantics requested
    MemValue expected = 0;   //!< expected value for waiting forms
    bool acquire = false;    //!< acquire semantics (invalidates L1)
    bool release = false;    //!< release semantics
    /// @}

    /// @name Requester identity
    /// @{
    int cuId = -1;
    int wgId = -1;
    int wfId = -1;
    /// @}

    /// @name Response payload
    /// @{
    MemValue result = 0;        //!< loaded / observed-old value
    bool waitFailed = false;    //!< waiting atomic failed its compare
    WaitDecision decision;      //!< how the WG should wait
    /// @}

    sim::Tick issueTick = 0;

    /** Completion callback; invoked exactly once, at response time. */
    std::function<void()> onResponse;

    /**
     * Fire the completion callback. The callback is moved out before
     * the call: it typically captures the MemRequestPtr that owns it
     * (a shared_ptr cycle), so leaving it in place would keep every
     * responded request alive forever. Clearing it also makes the
     * invoked-exactly-once contract structural.
     */
    void
    respond()
    {
        if (onResponse) {
            auto callback = std::move(onResponse);
            onResponse = nullptr;
            callback();
        }
    }

    bool isUpdate() const
    {
        return op == MemOp::Write || op == MemOp::Atomic;
    }
};

using MemRequestPtr = std::shared_ptr<MemRequest>;

/**
 * The expected value a waiting atomic compares against: the CAS
 * comparison operand for CAS, the explicit expected operand otherwise.
 */
inline MemValue
waitExpectedOf(const MemRequest &req)
{
    return req.aop == AtomicOpcode::Cas ? req.compare : req.expected;
}

inline MemValue
waitExpectedOf(const MemRequestPtr &req)
{
    return waitExpectedOf(*req);
}

/** Generic interface of anything that accepts memory requests. */
class MemDevice
{
  public:
    virtual ~MemDevice() = default;

    /** Hand over a request; the device responds asynchronously. */
    virtual void access(const MemRequestPtr &req) = 0;
};

} // namespace ifp::mem

#endif // IFP_MEM_REQUEST_HH
