/**
 * @file
 * Memory request/response transport.
 *
 * A MemRequest travels from a compute unit through the L1 to the shared
 * L2 (and possibly DRAM). Requests are pooled: every GpuSystem owns one
 * MemRequestPool, allocate() hands out intrusive-refcount MemRequestPtr
 * handles, and a request whose last handle drops returns to the pool —
 * the CU->L1->L2->DRAM round trip performs no heap allocation in steady
 * state. The pool asserts on destruction that no request leaked, which
 * catches the "response callback keeps its own request alive" bug class
 * structurally instead of by LeakSanitizer luck.
 *
 * Responses are delivered through a typed, non-allocating callback: a
 * MemResponder object plus a 64-bit tag, set at issue time. Devices
 * that need bookkeeping *around* the requester's completion (the L1's
 * acquire-invalidate) install themselves in the separate chain slot,
 * which fires before the primary responder. Neither slot can capture a
 * MemRequestPtr, so the self-cycle class that std::function callbacks
 * invited (a request owning itself through its captured handle) is
 * impossible by construction. A request that must keep another request
 * alive across an asynchronous hop (the L2 fill carrying its blocked
 * original) uses the dedicated `parent` handle, which the pool releases
 * on recycle even when the simulation tears down mid-flight.
 *
 * Waiting atomics (the paper's new instructions) are ordinary atomics
 * with `waiting == true` and an `expected` operand. When a waiting
 * atomic fails its comparison at the L2, the response carries a
 * WaitDecision telling the issuing work-group how to wait (stall on the
 * CU, context switch out, or retry because the Monitor Log is full).
 *
 * Thread-affinity: a pool and its requests belong to one GpuSystem
 * and, in the serial core, are confined to its thread (one per
 * parallel-sweep worker), so the refcounts are plain integers, not
 * atomics. The sharded core (--shards N, DESIGN.md §9) keeps that
 * invariant per *event domain* by move discipline instead of
 * locking: a root-pool request crossing into an L2-bank domain is
 * handed over as the single live handle inside a cross-domain
 * message, every intermediate hop moves rather than copies, and the
 * handle returns to root context before release — so at any instant
 * all handles of a request live in one domain, and refcount bumps
 * stay unsynchronized. Bank-local traffic (fills, writebacks) uses
 * per-bank pools that never cross at all; executors are parked at a
 * superstep barrier whenever pools are created, folded or destroyed.
 */

#ifndef IFP_MEM_REQUEST_HH
#define IFP_MEM_REQUEST_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "mem/atomic_op.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace ifp::mem {

class MemRequest;
class MemRequestPool;

/** Kind of memory access. */
enum class MemOp
{
    Read,     //!< plain load
    Write,    //!< plain store
    Atomic,   //!< RMW performed at the L2 (possibly waiting)
    ArmWait,  //!< wait-instruction: arm the monitor (MonR/MonRS styles)
};

/** How a failed waiting atomic / armed wait should behave. */
enum class WaitKind
{
    Proceed,  //!< operation succeeded, keep executing
    Stall,    //!< wait while keeping CU resources
    Switch,   //!< yield resources: context switch the WG out
    Retry,    //!< Monitor Log full: re-execute the atomic (Mesa)
};

/** Decision attached to the response of a waiting operation. */
struct WaitDecision
{
    WaitKind kind = WaitKind::Proceed;
    /**
     * A rescue/timeout interval in GPU cycles; 0 means none. For the
     * Timeout policy this is the policy interval itself; for monitor
     * policies it is the backstop that re-activates the WG if the
     * monitor misses or mispredicts.
     */
    sim::Cycles timeoutCycles = 0;
};

/**
 * Typed completion callback: the issuing device registers itself (plus
 * a tag encoding per-request context — a wavefront pointer, a line
 * address) instead of a heap-backed std::function. onMemResponse runs
 * at response time, exactly once per registered slot.
 */
class MemResponder
{
  public:
    virtual ~MemResponder() = default;

    virtual void onMemResponse(MemRequest &req, std::uint64_t tag) = 0;
};

/** Owning handle to a pooled MemRequest (intrusive refcount). */
class MemRequestPtr
{
  public:
    MemRequestPtr() = default;
    MemRequestPtr(std::nullptr_t) {}

    // The copy operations are noexcept (plain refcount bumps) and
    // must say so: devices capture handles from `const MemRequestPtr&`
    // parameters, which makes the lambda member const and its implicit
    // move a copy — SmallFunc only stores nothrow-movable callables
    // inline, so a throwing copy would silently put every scheduled
    // response on the heap (tests/test_alloc_gate.cc pins this).
    MemRequestPtr(const MemRequestPtr &other) noexcept : req(other.req)
    {
        retain();
    }

    MemRequestPtr(MemRequestPtr &&other) noexcept : req(other.req)
    {
        other.req = nullptr;
    }

    MemRequestPtr &
    operator=(const MemRequestPtr &other) noexcept
    {
        MemRequestPtr copy(other);
        std::swap(req, copy.req);
        return *this;
    }

    MemRequestPtr &
    operator=(MemRequestPtr &&other) noexcept
    {
        std::swap(req, other.req);
        return *this;
    }

    ~MemRequestPtr() { release(); }

    MemRequest *operator->() const { return req; }
    MemRequest &operator*() const { return *req; }
    MemRequest *get() const { return req; }
    explicit operator bool() const { return req != nullptr; }

    void
    reset()
    {
        release();
        req = nullptr;
    }

    bool operator==(const MemRequestPtr &o) const { return req == o.req; }
    bool operator!=(const MemRequestPtr &o) const { return req != o.req; }

  private:
    friend class MemRequestPool;

    /** Adopt an already-retained raw pointer (pool allocate()). */
    explicit MemRequestPtr(MemRequest *raw) : req(raw) {}

    inline void retain() const noexcept;
    inline void release() const noexcept;

    MemRequest *req = nullptr;
};

/** A memory transaction in flight. */
class MemRequest
{
  public:
    MemOp op = MemOp::Read;
    Addr addr = 0;
    unsigned size = 8;

    /// @name Atomic payload
    /// @{
    AtomicOpcode aop = AtomicOpcode::Load;
    MemValue operand = 0;
    MemValue compare = 0;    //!< CAS comparison operand
    bool waiting = false;    //!< waiting-atomic semantics requested
    MemValue expected = 0;   //!< expected value for waiting forms
    bool acquire = false;    //!< acquire semantics (invalidates L1)
    bool release = false;    //!< release semantics
    /// @}

    /// @name Requester identity
    /// @{
    int cuId = -1;
    int wgId = -1;
    int wfId = -1;
    /// @}

    /// @name Response payload
    /// @{
    MemValue result = 0;        //!< loaded / observed-old value
    bool waitFailed = false;    //!< waiting atomic failed its compare
    WaitDecision decision;      //!< how the WG should wait
    /// @}

    sim::Tick issueTick = 0;

    /**
     * A request this one keeps alive until it completes or is
     * recycled — the L2 fill's blocked original. Held here (not
     * smuggled through a tag) so teardown of an in-flight fill still
     * releases the original back to the pool.
     */
    MemRequestPtr parent;

    /** Register the requester's completion callback. */
    void
    setResponder(MemResponder *r, std::uint64_t t = 0)
    {
        ifp_assert(responder == nullptr,
                   "request already has a responder");
        responder = r;
        tag = t;
    }

    /**
     * Install bookkeeping that must run *before* the primary
     * responder at completion (L1 acquire-invalidate). One slot:
     * at most one device may chain per trip.
     */
    void
    chainResponder(MemResponder *r, std::uint64_t t = 0)
    {
        ifp_assert(chained == nullptr,
                   "request already has a chained responder");
        chained = r;
        chainTag = t;
    }

    /**
     * Fire the completion callbacks: the chained slot first, then the
     * primary responder. Both slots are cleared before the calls, so
     * the invoked-exactly-once contract is structural and a recycled
     * request never re-fires a stale responder.
     */
    void
    respond()
    {
        MemResponder *pre = chained;
        std::uint64_t pre_tag = chainTag;
        chained = nullptr;
        chainTag = 0;
        MemResponder *fin = responder;
        std::uint64_t fin_tag = tag;
        responder = nullptr;
        tag = 0;
        if (pre)
            pre->onMemResponse(*this, pre_tag);
        if (fin)
            fin->onMemResponse(*this, fin_tag);
    }

    bool isUpdate() const
    {
        return op == MemOp::Write || op == MemOp::Atomic;
    }

  private:
    friend class MemRequestPool;
    friend class MemRequestPtr;

    MemResponder *responder = nullptr;
    std::uint64_t tag = 0;
    MemResponder *chained = nullptr;
    std::uint64_t chainTag = 0;

    MemRequestPool *pool = nullptr;
    std::uint32_t refs = 0;
};

/**
 * Slab allocator for MemRequests. Grows in slabs, never shrinks, and
 * recycles through a free-list: after warm-up, allocate() is a pop
 * plus field reset. Destroying the pool with requests still live is a
 * leak of the callback-capture class and fatals.
 */
class MemRequestPool
{
  public:
    explicit MemRequestPool(std::size_t slab_size = 256)
        : slabSize(slab_size)
    {
        ifp_assert(slabSize > 0, "pool slabs need a size");
    }

    ~MemRequestPool()
    {
        ifp_assert(live == 0,
                   "%zu MemRequest(s) leaked: some handle or callback "
                   "outlived its response", live);
    }

    MemRequestPool(const MemRequestPool &) = delete;
    MemRequestPool &operator=(const MemRequestPool &) = delete;

    /** Hand out a fresh request (refcount 1, default fields). */
    MemRequestPtr
    allocate()
    {
        if (freeList.empty())
            grow();
        MemRequest *req = freeList.back();
        freeList.pop_back();
        resetRequest(*req);
        req->refs = 1;
        ++live;
        ++allocations;
        if (live > maxLive)
            maxLive = live;
        return MemRequestPtr(req);
    }

    /** Requests currently out of the pool. */
    std::size_t inUse() const { return live; }

    /** Requests the pool has ever materialized. */
    std::size_t capacity() const { return slabs.size() * slabSize; }

    /** Total allocate() calls (the run's memory-request count). */
    std::uint64_t totalAllocations() const { return allocations; }

    /** High-water mark of simultaneously live requests. */
    std::size_t maxInUse() const { return maxLive; }

  private:
    friend class MemRequestPtr;

    void
    grow()
    {
        slabs.push_back(std::make_unique<MemRequest[]>(slabSize));
        MemRequest *slab = slabs.back().get();
        freeList.reserve(freeList.size() + slabSize);
        for (std::size_t i = 0; i < slabSize; ++i) {
            slab[i].pool = this;
            freeList.push_back(&slab[i]);
        }
    }

    static void
    resetRequest(MemRequest &req)
    {
        req.op = MemOp::Read;
        req.addr = 0;
        req.size = 8;
        req.aop = AtomicOpcode::Load;
        req.operand = 0;
        req.compare = 0;
        req.waiting = false;
        req.expected = 0;
        req.acquire = false;
        req.release = false;
        req.cuId = -1;
        req.wgId = -1;
        req.wfId = -1;
        req.result = 0;
        req.waitFailed = false;
        req.decision = WaitDecision{};
        req.issueTick = 0;
        req.responder = nullptr;
        req.tag = 0;
        req.chained = nullptr;
        req.chainTag = 0;
    }

    void
    recycle(MemRequest *req)
    {
        // May recurse once through the parent chain; depth is bounded
        // by the fill nesting (L1 fill -> L2 fill), not by load.
        req->parent.reset();
        req->responder = nullptr;
        req->chained = nullptr;
        ifp_assert(live > 0, "pool live-count underflow");
        --live;
        freeList.push_back(req);
    }

    std::size_t slabSize;
    std::vector<std::unique_ptr<MemRequest[]>> slabs;
    std::vector<MemRequest *> freeList;
    std::size_t live = 0;
    std::size_t maxLive = 0;
    std::uint64_t allocations = 0;
};

inline void
MemRequestPtr::retain() const noexcept
{
    if (req)
        ++req->refs;
}

inline void
MemRequestPtr::release() const noexcept
{
    if (req && --req->refs == 0)
        req->pool->recycle(req);
}

/**
 * The expected value a waiting atomic compares against: the CAS
 * comparison operand for CAS, the explicit expected operand otherwise.
 */
inline MemValue
waitExpectedOf(const MemRequest &req)
{
    return req.aop == AtomicOpcode::Cas ? req.compare : req.expected;
}

inline MemValue
waitExpectedOf(const MemRequestPtr &req)
{
    return waitExpectedOf(*req);
}

/** Generic interface of anything that accepts memory requests. */
class MemDevice
{
  public:
    virtual ~MemDevice() = default;

    /** Hand over a request; the device responds asynchronously. */
    virtual void access(const MemRequestPtr &req) = 0;
};

} // namespace ifp::mem

#endif // IFP_MEM_REQUEST_HH
