#include "mem/l1_cache.hh"

#include "sim/logging.hh"

namespace ifp::mem {

L1Cache::L1Cache(std::string name, sim::EventQueue &eq,
                 const L1Config &cfg, MemDevice &next_level,
                 MemRequestPool &request_pool)
    : Clocked(std::move(name), eq, cfg.clockPeriod),
      config(cfg),
      tags(cfg.sizeBytes, cfg.assoc, cfg.lineBytes),
      next(next_level),
      pool(request_pool),
      descHit(this->name() + ".hit"),
      descFill(this->name() + ".fill"),
      descBypass(this->name() + ".bypass"),
      statGroup(this->name()),
      hits(statGroup.addScalar("hits", "read hits")),
      misses(statGroup.addScalar("misses", "read misses")),
      writethroughs(statGroup.addScalar("writethroughs",
                                        "stores forwarded to the L2")),
      bypasses(statGroup.addScalar("bypasses",
                                   "atomics/waits bypassing the L1")),
      invalidations(statGroup.addScalar("invalidations",
                                        "whole-cache invalidations"))
{
}

void
L1Cache::invalidateAll()
{
    tags.invalidateAll();
    ++invalidations;
}

void
L1Cache::access(const MemRequestPtr &req)
{
    switch (req->op) {
      case MemOp::Read:
        handleRead(req);
        return;
      case MemOp::Write: {
        // Write-through, no write-allocate. Keep a present line's
        // replacement state fresh; the store is performed at the L2.
        ++writethroughs;
        if (CacheTags::Line *line = tags.lookup(req->addr))
            tags.touch(*line);
        next.access(req);
        return;
      }
      case MemOp::Atomic:
      case MemOp::ArmWait: {
        // Atomics are performed at the L2 (GCN-style). Acquire
        // semantics invalidate the local L1 when the response
        // returns, before the requester sees it.
        ++bypasses;
        if (req->acquire)
            req->chainResponder(&acquireHook);
        // Charge the bypass latency on the way in.
        eventq().schedule(clockEdge(config.bypassLatency),
                          [this, req] { next.access(req); },
                          descBypass);
        return;
      }
    }
    ifp_panic("unhandled memory op");
}

void
L1Cache::handleRead(const MemRequestPtr &req)
{
    if (CacheTags::Line *line = tags.lookup(req->addr)) {
        ++hits;
        tags.touch(*line);
        eventq().schedule(clockEdge(config.hitLatency),
                          [req] { req->respond(); }, descHit);
        return;
    }

    ++misses;
    Addr line_addr = tags.lineOf(req->addr);
    auto [it, first] = mshrs.try_emplace(line_addr);
    it->second.push_back(req);
    if (!first)
        return;  // fill already outstanding

    MemRequestPtr fill = pool.allocate();
    fill->op = MemOp::Read;
    fill->addr = line_addr;
    fill->size = config.lineBytes;
    fill->cuId = req->cuId;
    fill->issueTick = curTick();
    fill->setResponder(this, line_addr);
    next.access(fill);
}

void
L1Cache::onMemResponse(MemRequest &, std::uint64_t tag)
{
    handleFill(static_cast<Addr>(tag));
}

void
L1Cache::handleFill(Addr line_addr)
{
    CacheTags::Victim victim = tags.insert(line_addr);
    (void)victim;  // clean write-through lines need no writeback

    auto it = mshrs.find(line_addr);
    ifp_assert(it != mshrs.end(), "fill with no MSHR");
    std::vector<MemRequestPtr> waiting = std::move(it->second);
    mshrs.erase(it);

    for (const MemRequestPtr &req : waiting) {
        eventq().schedule(clockEdge(config.hitLatency),
                          [req] { req->respond(); }, descFill);
    }
}

} // namespace ifp::mem
