/**
 * @file
 * DMA engine used by the Command Processor for WG context save/restore.
 *
 * Context switching a WG moves its full architectural context (vector
 * and scalar registers, LDS image, hardware state) between the CU and
 * the context store in global memory. The engine models this as a bulk
 * transfer: a fixed setup cost plus a bandwidth-bound streaming phase.
 * Transfers serialize through the engine, so concurrent context
 * switches queue behind each other — an effect that matters in the
 * oversubscribed experiments.
 */

#ifndef IFP_MEM_DMA_HH
#define IFP_MEM_DMA_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/clocked.hh"
#include "sim/stats.hh"

namespace ifp::mem {

/** DMA engine configuration. */
struct DmaConfig
{
    /** Fixed cycles of setup per transfer (descriptor, TLB, etc.). */
    sim::Cycles setupCycles = 200;
    /** Streaming bandwidth, bytes per GPU cycle. */
    unsigned bytesPerCycle = 32;
    sim::Tick clockPeriod = sim::periodFromFrequency(2'000'000'000ULL);
};

/** Serializing bulk-transfer engine. */
class DmaEngine : public sim::Clocked
{
  public:
    DmaEngine(std::string name, sim::EventQueue &eq,
              const DmaConfig &cfg);

    /**
     * Enqueue a transfer of @p bytes; @p on_done fires when the data
     * has fully moved.
     */
    void transfer(std::uint64_t bytes, std::function<void()> on_done);

    /** Cycles a transfer of @p bytes occupies the engine. */
    sim::Cycles transferCycles(std::uint64_t bytes) const;

    bool idle() const { return !busy && pending.empty(); }

    sim::StatGroup &stats() { return statGroup; }
    const sim::StatGroup &stats() const { return statGroup; }

  private:
    struct Transfer
    {
        std::uint64_t bytes;
        std::function<void()> onDone;
    };

    void startNext();

    DmaConfig config;
    std::deque<Transfer> pending;
    bool busy = false;

    sim::StatGroup statGroup;
    sim::Scalar &numTransfers;
    sim::Scalar &bytesMoved;
    sim::Scalar &busyTicks;
};

} // namespace ifp::mem

#endif // IFP_MEM_DMA_HH
