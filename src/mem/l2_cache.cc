#include "mem/l2_cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ifp::mem {

L2Cache::L2Cache(std::string name, sim::EventQueue &eq,
                 const L2Config &config, MemDevice &dram_dev,
                 BackingStore &backing, MemRequestPool &request_pool)
    : Clocked(std::move(name), eq, config.clockPeriod),
      cfg(config),
      dram(dram_dev),
      store(backing),
      pool(request_pool),
      tags(config.sizeBytes, config.assoc, config.lineBytes),
      banks(config.banks),
      descDrain(this->name() + ".drain"),
      descLineBusy(this->name() + ".lineBusy"),
      descFinish(this->name() + ".finish"),
      statGroup(this->name()),
      hits(statGroup.addScalar("hits", "accesses hitting in the tags")),
      misses(statGroup.addScalar("misses", "accesses missing")),
      atomics(statGroup.addScalar("atomics", "atomic RMWs performed")),
      waitingAtomics(statGroup.addScalar("waitingAtomics",
                                         "waiting atomics seen")),
      waitFails(statGroup.addScalar("waitFails",
                                    "waiting atomics that failed")),
      armWaits(statGroup.addScalar("armWaits",
                                   "wait-instructions armed")),
      monitoredNotifies(statGroup.addScalar(
          "monitoredNotifies", "accesses to monitored lines reported")),
      writebacks(statGroup.addScalar("writebacks",
                                     "dirty victims written to DRAM")),
      queueTicks(statGroup.addScalar(
          "queueTicks", "cumulative ticks spent in bank queues"))
{
    ifp_assert(cfg.banks > 0, "L2 needs at least one bank");
}

unsigned
L2Cache::bankFor(Addr addr) const
{
    return (addr / cfg.lineBytes) % cfg.banks;
}

void
L2Cache::setMonitored(Addr addr, bool monitored)
{
    Addr line_addr = tags.lineOf(addr);
    if (monitored) {
        monitoredLines.insert(line_addr);
        maxMonitoredLines =
            std::max(maxMonitoredLines, monitoredLines.size());
        if (CacheTags::Line *line = tags.lookup(line_addr))
            line->pinned = true;
    } else {
        monitoredLines.erase(line_addr);
        if (CacheTags::Line *line = tags.lookup(line_addr))
            line->pinned = false;
    }
}

bool
L2Cache::isMonitored(Addr addr) const
{
    return monitoredLines.count(tags.lineOf(addr)) != 0;
}

void
L2Cache::access(const MemRequestPtr &req)
{
    unsigned idx = bankFor(req->addr);
    Bank &bank = banks[idx];
    // Remember entry time for queueing statistics.
    req->issueTick = curTick();
    bank.queue.push_back(req);
    if (!bank.drainScheduled)
        drainBank(idx);
}

void
L2Cache::drainBank(unsigned idx)
{
    Bank &bank = banks[idx];
    if (bank.queue.empty()) {
        bank.drainScheduled = false;
        return;
    }

    sim::Tick now = curTick();
    if (bank.busyUntil > now) {
        bank.drainScheduled = true;
        eventq().schedule(bank.busyUntil, [this, idx] {
            banks[idx].drainScheduled = false;
            drainBank(idx);
        }, descDrain);
        return;
    }

    MemRequestPtr req = bank.queue.front();
    bool is_atomic = req->op == MemOp::Atomic;
    Addr line_addr = tags.lineOf(req->addr);

    if (is_atomic) {
        // Same-line read-modify-write turnaround: the head atomic
        // waits until the line's previous RMW retires (head-of-line
        // blocking, as in a banked FIFO).
        auto it = bank.lineBusyUntil.find(line_addr);
        if (it != bank.lineBusyUntil.end() && it->second > now) {
            bank.drainScheduled = true;
            eventq().schedule(it->second, [this, idx] {
                banks[idx].drainScheduled = false;
                drainBank(idx);
            }, descLineBusy);
            return;
        }
    }

    bank.queue.pop_front();
    queueTicks += static_cast<double>(now - req->issueTick);

    sim::Cycles occupancy =
        is_atomic ? cfg.atomicServiceCycles : cfg.serviceCycles;
    bank.busyUntil = now + cyclesToTicks(occupancy);
    if (is_atomic) {
        bank.lineBusyUntil[line_addr] =
            now + cyclesToTicks(cfg.sameLineAtomicGapCycles);
    }

    serviceRequest(req);

    if (!bank.queue.empty()) {
        bank.drainScheduled = true;
        eventq().schedule(bank.busyUntil, [this, idx] {
            banks[idx].drainScheduled = false;
            drainBank(idx);
        }, descDrain);
    }
}

void
L2Cache::scheduleFinish(const MemRequestPtr &req)
{
    eventq().schedule(clockEdge(cfg.hitLatency),
                      [this, req] { finishAccess(req); }, descFinish);
}

void
L2Cache::serviceRequest(const MemRequestPtr &req)
{
    if (CacheTags::Line *line = tags.lookup(req->addr)) {
        ++hits;
        tags.touch(*line);
        if (req->isUpdate())
            line->dirty = true;
        scheduleFinish(req);
        return;
    }

    ++misses;
    MemRequestPtr fill = pool.allocate();
    fill->op = MemOp::Read;
    fill->addr = tags.lineOf(req->addr);
    fill->size = cfg.lineBytes;
    fill->issueTick = curTick();
    // The blocked request rides in the fill's parent slot (owned, so
    // a torn-down in-flight fill still releases it to the pool).
    fill->parent = req;
    fill->setResponder(this);
    dram.access(fill);
}

void
L2Cache::onMemResponse(MemRequest &fill, std::uint64_t)
{
    MemRequestPtr req = std::move(fill.parent);
    CacheTags::Line *line = nullptr;
    CacheTags::Victim victim = tags.insert(req->addr, &line);
    if (!victim.noWayFree) {
        if (victim.evicted && victim.wasDirty) {
            ++writebacks;
            MemRequestPtr wb = pool.allocate();
            wb->op = MemOp::Write;
            wb->addr = victim.lineAddr;
            wb->size = cfg.lineBytes;
            wb->issueTick = curTick();
            dram.access(wb);  // fire and forget: recycled by refcount
        }
        if (req->isUpdate())
            line->dirty = true;
        if (monitoredLines.count(tags.lineOf(req->addr)))
            line->pinned = true;
    }
    scheduleFinish(req);
}

void
L2Cache::finishAccess(const MemRequestPtr &req)
{
    bool monitored = isMonitored(req->addr);

    switch (req->op) {
      case MemOp::Read: {
        req->result = store.read(req->addr, std::min(req->size, 8u));
        if (monitored && observer) {
            ++monitoredNotifies;
            observer->onMonitoredAccess(req->addr, req->result, false,
                                        req->wgId);
        }
        req->respond();
        return;
      }
      case MemOp::Write: {
        store.write(req->addr, req->operand, std::min(req->size, 8u));
        if (monitored && observer) {
            ++monitoredNotifies;
            observer->onMonitoredAccess(req->addr, req->operand, true,
                                        req->wgId);
        }
        req->respond();
        return;
      }
      case MemOp::Atomic: {
        ++atomics;
        MemValue old_value = store.read(req->addr, req->size);
        bool success = true;
        if (req->waiting) {
            ++waitingAtomics;
            MemValue exp = req->aop == AtomicOpcode::Cas ? req->compare
                                                         : req->expected;
            success = waitingAtomicSucceeded(req->aop, old_value, exp);
        }

        if (success) {
            AtomicResult res = applyAtomic(req->aop, old_value,
                                           req->operand, req->compare);
            if (res.wrote)
                store.write(req->addr, res.newValue, req->size);
            req->result = old_value;
            req->waitFailed = false;
            if (monitored && observer) {
                ++monitoredNotifies;
                observer->onMonitoredAccess(req->addr, res.newValue,
                                            res.wrote, req->wgId);
            }
        } else {
            ++waitFails;
            req->result = old_value;
            req->waitFailed = true;
            // The observer registers the waiting condition and decides
            // how the WG should wait. With no observer installed
            // (Baseline/Sleep policies) the code's own retry loop runs.
            if (observer) {
                req->decision = observer->onWaitFail(*req, old_value);
            } else {
                req->decision = WaitDecision{WaitKind::Proceed, 0};
            }
            // A failed waiting atomic still *accessed* the line; the
            // sporadic policy (MonRS) wants to hear about it.
            if (monitored && observer) {
                ++monitoredNotifies;
                observer->onMonitoredAccess(req->addr, old_value, false,
                                            req->wgId);
            }
        }
        req->respond();
        return;
      }
      case MemOp::ArmWait: {
        ++armWaits;
        req->decision = observer ? observer->onArmWait(*req)
                                 : WaitDecision{WaitKind::Proceed, 0};
        req->respond();
        return;
      }
    }
    ifp_panic("unhandled memory op at L2");
}

} // namespace ifp::mem
