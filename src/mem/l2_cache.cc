#include "mem/l2_cache.hh"

#include <algorithm>
#include <utility>

#include "sim/event_domain.hh"
#include "sim/logging.hh"

namespace ifp::mem {

namespace {

/**
 * Clocked::clockEdge() for a caller-supplied tick: bank code runs on
 * the bank's own event queue in shard mode, so the edge must be
 * computed from that clock, not the root's.
 */
sim::Tick
edgeAfter(sim::Tick now, sim::Tick period, sim::Cycles cycles)
{
    sim::Tick edge = ((now + period - 1) / period) * period;
    return edge + cycles * period;
}

} // anonymous namespace

L2Cache::L2Cache(std::string name, sim::EventQueue &eq,
                 const L2Config &config, MemDevice &dram_dev,
                 BackingStore &backing, MemRequestPool &request_pool)
    : Clocked(std::move(name), eq, config.clockPeriod),
      cfg(config),
      dram(dram_dev),
      store(backing),
      pool(request_pool),
      tags(config.sizeBytes, config.assoc, config.lineBytes),
      banks(config.banks),
      descDrain(this->name() + ".drain"),
      descLineBusy(this->name() + ".lineBusy"),
      descFinish(this->name() + ".finish"),
      descEnqueue(this->name() + ".enqueue"),
      descPin(this->name() + ".pin"),
      statGroup(this->name()),
      hits(statGroup.addScalar("hits", "accesses hitting in the tags")),
      misses(statGroup.addScalar("misses", "accesses missing")),
      atomics(statGroup.addScalar("atomics", "atomic RMWs performed")),
      waitingAtomics(statGroup.addScalar("waitingAtomics",
                                         "waiting atomics seen")),
      waitFails(statGroup.addScalar("waitFails",
                                    "waiting atomics that failed")),
      armWaits(statGroup.addScalar("armWaits",
                                   "wait-instructions armed")),
      monitoredNotifies(statGroup.addScalar(
          "monitoredNotifies", "accesses to monitored lines reported")),
      writebacks(statGroup.addScalar("writebacks",
                                     "dirty victims written to DRAM")),
      queueTicks(statGroup.addScalar(
          "queueTicks", "cumulative ticks spent in bank queues"))
{
    ifp_assert(cfg.banks > 0, "L2 needs at least one bank");
    for (Bank &bank : banks) {
        bank.eq = &eventq();
        bank.fillPool = &pool;
    }
}

unsigned
L2Cache::bankFor(Addr addr) const
{
    return (addr / cfg.lineBytes) % cfg.banks;
}

void
L2Cache::bindShardDomains(
    sim::EventDomain &root,
    const std::vector<sim::EventDomain *> &bank_domains,
    const std::vector<MemRequestPool *> &bank_pools)
{
    ifp_assert(bank_domains.size() == banks.size(),
               "shard domain count (%zu) != bank count (%zu)",
               bank_domains.size(), banks.size());
    ifp_assert(bank_pools.size() == banks.size(),
               "shard pool count (%zu) != bank count (%zu)",
               bank_pools.size(), banks.size());
    // Banks partition the tag array only if whole sets map to one
    // bank; with power-of-two sets this needs banks | sets.
    ifp_assert(tags.sets() % cfg.banks == 0,
               "L2 sets (%zu) not divisible by banks (%u)",
               tags.sets(), cfg.banks);
    rootDomain = &root;
    for (std::size_t i = 0; i < banks.size(); ++i) {
        ifp_assert(bank_domains[i] && bank_pools[i],
                   "null shard domain or pool");
        banks[i].domain = bank_domains[i];
        banks[i].eq = &bank_domains[i]->queue();
        banks[i].fillPool = bank_pools[i];
    }
}

void
L2Cache::foldShardStats()
{
    for (Bank &bank : banks) {
        hits += bank.shHits;
        misses += bank.shMisses;
        writebacks += bank.shWritebacks;
        queueTicks += bank.shQueueTicks;
        bank.shHits = bank.shMisses = 0;
        bank.shWritebacks = bank.shQueueTicks = 0;
    }
}

void
L2Cache::applyMonitored(unsigned idx, Addr line_addr, bool monitored)
{
    // Bank context: the mirror set and the pin bit live with the
    // bank because the eviction path (onMemResponse) consults them.
    Bank &bank = banks[idx];
    if (monitored) {
        bank.monitored.insert(line_addr);
        if (CacheTags::Line *line = tags.lookup(line_addr))
            line->pinned = true;
    } else {
        bank.monitored.erase(line_addr);
        if (CacheTags::Line *line = tags.lookup(line_addr))
            line->pinned = false;
    }
}

void
L2Cache::setMonitored(Addr addr, bool monitored)
{
    // Root context. The authoritative set updates synchronously (the
    // policy reads it through isMonitored() within the same event);
    // the bank-side mirror and pin bit follow either synchronously
    // (classic) or via a downward message (sharded).
    Addr line_addr = tags.lineOf(addr);
    unsigned idx = bankFor(line_addr);
    if (monitored) {
        monitoredLines.insert(line_addr);
        maxMonitoredLines =
            std::max(maxMonitoredLines, monitoredLines.size());
    } else {
        monitoredLines.erase(line_addr);
    }

    Bank &bank = banks[idx];
    if (bank.domain) {
        rootDomain->send(*bank.domain, curTick(),
                         [this, idx, line_addr, monitored] {
                             applyMonitored(idx, line_addr, monitored);
                         },
                         descPin.c_str());
    } else {
        applyMonitored(idx, line_addr, monitored);
    }
}

bool
L2Cache::isMonitored(Addr addr) const
{
    return monitoredLines.count(tags.lineOf(addr)) != 0;
}

void
L2Cache::access(const MemRequestPtr &req)
{
    // Root context (L1s and the DMA engine live in the root domain).
    unsigned idx = bankFor(req->addr);
    // Remember entry time for queueing statistics.
    req->issueTick = curTick();
    Bank &bank = banks[idx];
    if (bank.domain) {
        // Hand the request to the bank's domain at the current tick;
        // the handle crosses the thread boundary by move, so its
        // refcount never needs to be atomic.
        rootDomain->send(*bank.domain, curTick(),
                         [this, idx, r = req]() mutable {
                             enqueue(idx, std::move(r));
                         },
                         descEnqueue.c_str());
        return;
    }
    enqueue(idx, req);
}

void
L2Cache::enqueue(unsigned idx, MemRequestPtr req)
{
    Bank &bank = banks[idx];
    bank.queue.push_back(std::move(req));
    if (!bank.drainScheduled)
        drainBank(idx);
}

void
L2Cache::drainBank(unsigned idx)
{
    // Bank context from here down to the DRAM model.
    Bank &bank = banks[idx];
    if (bank.queue.empty()) {
        bank.drainScheduled = false;
        return;
    }

    sim::Tick now = bank.eq->curTick();
    if (bank.busyUntil > now) {
        bank.drainScheduled = true;
        bank.eq->schedule(bank.busyUntil, [this, idx] {
            banks[idx].drainScheduled = false;
            drainBank(idx);
        }, descDrain);
        return;
    }

    bool is_atomic;
    Addr line_addr;
    {
        const MemRequestPtr &head = bank.queue.front();
        is_atomic = head->op == MemOp::Atomic;
        line_addr = tags.lineOf(head->addr);
    }

    if (is_atomic) {
        // Same-line read-modify-write turnaround: the head atomic
        // waits until the line's previous RMW retires (head-of-line
        // blocking, as in a banked FIFO).
        auto it = bank.lineBusyUntil.find(line_addr);
        if (it != bank.lineBusyUntil.end() && it->second > now) {
            bank.drainScheduled = true;
            bank.eq->schedule(it->second, [this, idx] {
                banks[idx].drainScheduled = false;
                drainBank(idx);
            }, descLineBusy);
            return;
        }
    }

    MemRequestPtr req = std::move(bank.queue.front());
    bank.queue.pop_front();
    double queue_ticks = static_cast<double>(now - req->issueTick);
    if (bank.domain)
        bank.shQueueTicks += queue_ticks;
    else
        queueTicks += queue_ticks;

    sim::Cycles occupancy =
        is_atomic ? cfg.atomicServiceCycles : cfg.serviceCycles;
    bank.busyUntil = now + cyclesToTicks(occupancy);
    if (is_atomic) {
        bank.lineBusyUntil[line_addr] =
            now + cyclesToTicks(cfg.sameLineAtomicGapCycles);
    }

    serviceRequest(idx, std::move(req));

    if (!bank.queue.empty()) {
        bank.drainScheduled = true;
        bank.eq->schedule(bank.busyUntil, [this, idx] {
            banks[idx].drainScheduled = false;
            drainBank(idx);
        }, descDrain);
    }
}

void
L2Cache::scheduleFinish(unsigned idx, MemRequestPtr req)
{
    // The response leaves bank context here: finishAccess() touches
    // the backing store, the policy observer and the root-side stats,
    // so it must run in the root domain. The hit latency is exactly
    // the scheduler's lookahead, which is what makes the upward
    // message legal.
    Bank &bank = banks[idx];
    sim::Tick when =
        edgeAfter(bank.eq->curTick(), clockPeriod(), cfg.hitLatency);
    if (bank.domain) {
        bank.domain->send(*rootDomain, when,
                          [this, r = std::move(req)] {
                              finishAccess(r);
                          },
                          descFinish.c_str());
        return;
    }
    bank.eq->schedule(when,
                      [this, r = std::move(req)] { finishAccess(r); },
                      descFinish);
}

void
L2Cache::serviceRequest(unsigned idx, MemRequestPtr req)
{
    Bank &bank = banks[idx];
    if (CacheTags::Line *line = tags.lookup(req->addr)) {
        if (bank.domain)
            bank.shHits += 1;
        else
            ++hits;
        tags.touch(*line);
        if (req->isUpdate())
            line->dirty = true;
        scheduleFinish(idx, std::move(req));
        return;
    }

    if (bank.domain)
        bank.shMisses += 1;
    else
        ++misses;
    MemRequestPtr fill = bank.fillPool->allocate();
    fill->op = MemOp::Read;
    fill->addr = tags.lineOf(req->addr);
    fill->size = cfg.lineBytes;
    fill->issueTick = bank.eq->curTick();
    // The blocked request rides in the fill's parent slot (owned, so
    // a torn-down in-flight fill still releases it to the pool).
    fill->parent = std::move(req);
    fill->setResponder(this, idx);
    dram.access(fill);
}

void
L2Cache::onMemResponse(MemRequest &fill, std::uint64_t tag)
{
    // Bank context: the fused DRAM channel delivered the fill on the
    // bank's own queue; the tag routes it back to its bank.
    auto idx = static_cast<unsigned>(tag);
    Bank &bank = banks[idx];
    MemRequestPtr req = std::move(fill.parent);
    CacheTags::Line *line = nullptr;
    CacheTags::Victim victim = tags.insert(req->addr, &line);
    if (!victim.noWayFree) {
        if (victim.evicted && victim.wasDirty) {
            if (bank.domain)
                bank.shWritebacks += 1;
            else
                ++writebacks;
            MemRequestPtr wb = bank.fillPool->allocate();
            wb->op = MemOp::Write;
            wb->addr = victim.lineAddr;
            wb->size = cfg.lineBytes;
            wb->issueTick = bank.eq->curTick();
            dram.access(wb);  // fire and forget: recycled by refcount
        }
        if (req->isUpdate())
            line->dirty = true;
        if (bank.monitored.count(tags.lineOf(req->addr)))
            line->pinned = true;
    }
    scheduleFinish(idx, std::move(req));
}

void
L2Cache::finishAccess(const MemRequestPtr &req)
{
    bool monitored = isMonitored(req->addr);

    switch (req->op) {
      case MemOp::Read: {
        req->result = store.read(req->addr, std::min(req->size, 8u));
        if (monitored && observer) {
            ++monitoredNotifies;
            observer->onMonitoredAccess(req->addr, req->result, false,
                                        req->wgId);
        }
        req->respond();
        return;
      }
      case MemOp::Write: {
        store.write(req->addr, req->operand, std::min(req->size, 8u));
        if (monitored && observer) {
            ++monitoredNotifies;
            observer->onMonitoredAccess(req->addr, req->operand, true,
                                        req->wgId);
        }
        req->respond();
        return;
      }
      case MemOp::Atomic: {
        ++atomics;
        MemValue old_value = store.read(req->addr, req->size);
        bool success = true;
        if (req->waiting) {
            ++waitingAtomics;
            MemValue exp = req->aop == AtomicOpcode::Cas ? req->compare
                                                         : req->expected;
            success = waitingAtomicSucceeded(req->aop, old_value, exp);
        }

        if (success) {
            AtomicResult res = applyAtomic(req->aop, old_value,
                                           req->operand, req->compare);
            if (res.wrote)
                store.write(req->addr, res.newValue, req->size);
            req->result = old_value;
            req->waitFailed = false;
            if (monitored && observer) {
                ++monitoredNotifies;
                observer->onMonitoredAccess(req->addr, res.newValue,
                                            res.wrote, req->wgId);
            }
        } else {
            ++waitFails;
            req->result = old_value;
            req->waitFailed = true;
            // The observer registers the waiting condition and decides
            // how the WG should wait. With no observer installed
            // (Baseline/Sleep policies) the code's own retry loop runs.
            if (observer) {
                req->decision = observer->onWaitFail(*req, old_value);
            } else {
                req->decision = WaitDecision{WaitKind::Proceed, 0};
            }
            // A failed waiting atomic still *accessed* the line; the
            // sporadic policy (MonRS) wants to hear about it.
            if (monitored && observer) {
                ++monitoredNotifies;
                observer->onMonitoredAccess(req->addr, old_value, false,
                                            req->wgId);
            }
        }
        req->respond();
        return;
      }
      case MemOp::ArmWait: {
        ++armWaits;
        req->decision = observer ? observer->onArmWait(*req)
                                 : WaitDecision{WaitKind::Proceed, 0};
        req->respond();
        return;
      }
    }
    ifp_panic("unhandled memory op at L2");
}

} // namespace ifp::mem
