/**
 * @file
 * Sparse functional memory.
 *
 * The timing model in this simulator is *decoupled* from data: caches
 * and DRAM model latency/occupancy only, while all values live in one
 * globally consistent BackingStore that devices access functionally at
 * service time. This is sound for the workloads modeled here because
 * GPU L1s are write-through and all synchronization operations are
 * performed at the shared L2 — there is no coherence-visible staleness
 * to capture. (The paper's window-of-vulnerability race is an *event
 * ordering* race between monitor arming and atomic updates; it is fully
 * represented by the timing model.)
 *
 * The store also maintains a mutation counter used by the deadlock
 * detector: a counter that only advances when some write actually
 * changes a memory value.
 */

#ifndef IFP_MEM_BACKING_STORE_HH
#define IFP_MEM_BACKING_STORE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "mem/atomic_op.hh"
#include "sim/types.hh"

namespace ifp::mem {

/** Sparse, page-granular functional memory image. */
class BackingStore
{
  public:
    static constexpr unsigned pageBytes = 4096;

    /** Read @p size (<= 8) bytes at @p addr as a little-endian value. */
    MemValue read(Addr addr, unsigned size = 8) const;

    /** Write @p size (<= 8) bytes at @p addr. */
    void write(Addr addr, MemValue value, unsigned size = 8);

    /**
     * Functionally perform an atomic RMW.
     * Bumps the mutation counter only when the stored value changes.
     */
    AtomicResult atomic(Addr addr, AtomicOpcode op, MemValue operand,
                        MemValue compare, unsigned size = 8);

    /**
     * Monotonic counter of value-changing writes. The deadlock detector
     * samples this: spinning reads and failed CASes do not advance it.
     */
    std::uint64_t mutations() const { return mutationCount; }

    /** Number of pages currently instantiated. */
    std::size_t numPages() const { return pages.size(); }

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
    std::uint64_t mutationCount = 0;

    /**
     * Last-page lookup cache. Accesses cluster heavily (a spinning WG
     * hammers one synchronization word; streaming code walks a page
     * before leaving it), so one entry removes the hash lookup from
     * almost every read/write. Safe because pages are never erased
     * and unique_ptr keeps their addresses stable across rehashing.
     * Mutable: the cache is an optimization of const reads too.
     */
    mutable Addr cachedPageAddr = ~Addr{0};
    mutable Page *cachedPage = nullptr;
};

} // namespace ifp::mem

#endif // IFP_MEM_BACKING_STORE_HH
