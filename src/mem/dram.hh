/**
 * @file
 * DRAM timing model.
 *
 * Models the DDR3 main memory of Table 1: a number of independent
 * channels selected by address interleaving at cacheline granularity.
 * Each channel services requests first-come-first-served with a fixed
 * access latency plus a per-request occupancy that bounds channel
 * bandwidth. Data is not stored here (see mem/backing_store.hh).
 */

#ifndef IFP_MEM_DRAM_HH
#define IFP_MEM_DRAM_HH

#include <vector>

#include "mem/request.hh"
#include "sim/clocked.hh"
#include "sim/ring_queue.hh"
#include "sim/stats.hh"

namespace ifp::mem {

/** Configuration of the DRAM model. */
struct DramConfig
{
    unsigned channels = 4;
    sim::Tick clockPeriod = sim::periodFromFrequency(1'000'000'000ULL);
    /** Fixed access latency, in DRAM cycles. */
    sim::Cycles accessLatency = 50;
    /** Channel occupancy per request (bandwidth bound), in cycles. */
    sim::Cycles burstCycles = 4;
    /** Interleaving granularity in bytes. */
    unsigned interleaveBytes = 64;
};

/**
 * Multi-channel DRAM. Implements MemDevice; responds to each request
 * after queueing + latency.
 */
class Dram : public sim::Clocked, public MemDevice
{
  public:
    Dram(std::string name, sim::EventQueue &eq, const DramConfig &cfg);

    void access(const MemRequestPtr &req) override;

    /**
     * Shard mode: run channel @p idx on @p queue instead of the root
     * event queue. The caller (GpuSystem) fuses each channel with the
     * matching L2 bank into one event domain; all channel events and
     * stats then live in that domain's context, and the channel-side
     * stat shadows must be folded back via foldShardStats() before
     * the run's statistics are read.
     */
    void bindShardQueues(const std::vector<sim::EventQueue *> &queues);

    /** Fold channel-context stat shadows into the Scalars (root). */
    void foldShardStats();

    sim::StatGroup &stats() { return statGroup; }
    const sim::StatGroup &stats() const { return statGroup; }

  private:
    struct Channel
    {
        sim::RingQueue<MemRequestPtr> queue;
        /** Tick at which the channel becomes free again. */
        sim::Tick busyUntil = 0;
        bool drainScheduled = false;
        /** Event queue channel events run on (root unless sharded). */
        sim::EventQueue *eq = nullptr;
        bool sharded = false;
        /// @name Channel-context stat shadows (sharded mode only)
        /// @{
        double shReads = 0;
        double shWrites = 0;
        double shQueueTicks = 0;
        /// @}
    };

    unsigned channelFor(Addr addr) const;
    void drainChannel(unsigned idx);

    DramConfig config;
    std::vector<Channel> channelState;

    /// @name Precomputed event descriptions (hot path: no concats)
    /// @{
    std::string descDrain;
    std::string descResp;
    /// @}

    sim::StatGroup statGroup;
    sim::Scalar &numReads;
    sim::Scalar &numWrites;
    sim::Scalar &totalQueueTicks;
};

} // namespace ifp::mem

#endif // IFP_MEM_DRAM_HH
