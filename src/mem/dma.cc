#include "mem/dma.hh"

#include "sim/logging.hh"

namespace ifp::mem {

DmaEngine::DmaEngine(std::string name, sim::EventQueue &eq,
                     const DmaConfig &cfg)
    : Clocked(std::move(name), eq, cfg.clockPeriod),
      config(cfg),
      statGroup(this->name()),
      numTransfers(statGroup.addScalar("transfers",
                                       "bulk transfers completed")),
      bytesMoved(statGroup.addScalar("bytes", "total bytes moved")),
      busyTicks(statGroup.addScalar("busyTicks",
                                    "ticks the engine was busy"))
{
    ifp_assert(config.bytesPerCycle > 0, "DMA bandwidth must be > 0");
}

sim::Cycles
DmaEngine::transferCycles(std::uint64_t bytes) const
{
    std::uint64_t stream =
        (bytes + config.bytesPerCycle - 1) / config.bytesPerCycle;
    return config.setupCycles + stream;
}

void
DmaEngine::transfer(std::uint64_t bytes, std::function<void()> on_done)
{
    pending.push_back(Transfer{bytes, std::move(on_done)});
    if (!busy)
        startNext();
}

void
DmaEngine::startNext()
{
    if (pending.empty()) {
        busy = false;
        return;
    }
    busy = true;
    Transfer xfer = std::move(pending.front());
    pending.pop_front();

    sim::Cycles cycles = transferCycles(xfer.bytes);
    sim::Tick done = clockEdge(cycles);
    busyTicks += static_cast<double>(done - curTick());
    ++numTransfers;
    bytesMoved += static_cast<double>(xfer.bytes);

    eventq().schedule(done, [this, cb = std::move(xfer.onDone)] {
        if (cb)
            cb();
        startNext();
    }, name() + ".xfer");
}

} // namespace ifp::mem
