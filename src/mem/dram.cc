#include "mem/dram.hh"

#include "sim/logging.hh"

namespace ifp::mem {

Dram::Dram(std::string name, sim::EventQueue &eq, const DramConfig &cfg)
    : Clocked(std::move(name), eq, cfg.clockPeriod),
      config(cfg),
      channelState(cfg.channels),
      descDrain(this->name() + ".drain"),
      descResp(this->name() + ".resp"),
      statGroup(this->name()),
      numReads(statGroup.addScalar("reads", "requests serviced (reads)")),
      numWrites(statGroup.addScalar("writes",
                                    "requests serviced (writes)")),
      totalQueueTicks(statGroup.addScalar(
          "queueTicks", "cumulative ticks requests spent queued"))
{
    ifp_assert(cfg.channels > 0, "DRAM needs at least one channel");
}

unsigned
Dram::channelFor(Addr addr) const
{
    return (addr / config.interleaveBytes) % config.channels;
}

void
Dram::access(const MemRequestPtr &req)
{
    unsigned idx = channelFor(req->addr);
    Channel &ch = channelState[idx];
    ch.queue.push_back(req);
    if (!ch.drainScheduled)
        drainChannel(idx);
}

void
Dram::drainChannel(unsigned idx)
{
    Channel &ch = channelState[idx];
    if (ch.queue.empty()) {
        ch.drainScheduled = false;
        return;
    }

    sim::Tick now = curTick();
    if (ch.busyUntil > now) {
        // Channel occupied: try again when it frees up.
        ch.drainScheduled = true;
        eventq().schedule(ch.busyUntil, [this, idx] {
            channelState[idx].drainScheduled = false;
            drainChannel(idx);
        }, descDrain);
        return;
    }

    MemRequestPtr req = ch.queue.front();
    ch.queue.pop_front();

    totalQueueTicks += static_cast<double>(now - req->issueTick);
    if (req->op == MemOp::Write)
        ++numWrites;
    else
        ++numReads;

    ch.busyUntil = now + cyclesToTicks(config.burstCycles);
    sim::Tick done = now + cyclesToTicks(config.accessLatency);
    eventq().schedule(done, [req] { req->respond(); }, descResp);

    if (!ch.queue.empty()) {
        ch.drainScheduled = true;
        eventq().schedule(ch.busyUntil, [this, idx] {
            channelState[idx].drainScheduled = false;
            drainChannel(idx);
        }, descDrain);
    }
}

} // namespace ifp::mem
