#include "mem/dram.hh"

#include <utility>

#include "sim/logging.hh"

namespace ifp::mem {

Dram::Dram(std::string name, sim::EventQueue &eq, const DramConfig &cfg)
    : Clocked(std::move(name), eq, cfg.clockPeriod),
      config(cfg),
      channelState(cfg.channels),
      descDrain(this->name() + ".drain"),
      descResp(this->name() + ".resp"),
      statGroup(this->name()),
      numReads(statGroup.addScalar("reads", "requests serviced (reads)")),
      numWrites(statGroup.addScalar("writes",
                                    "requests serviced (writes)")),
      totalQueueTicks(statGroup.addScalar(
          "queueTicks", "cumulative ticks requests spent queued"))
{
    ifp_assert(cfg.channels > 0, "DRAM needs at least one channel");
    for (Channel &ch : channelState)
        ch.eq = &eventq();
}

void
Dram::bindShardQueues(const std::vector<sim::EventQueue *> &queues)
{
    ifp_assert(queues.size() == channelState.size(),
               "shard queue count (%zu) != channel count (%zu)",
               queues.size(), channelState.size());
    for (std::size_t i = 0; i < channelState.size(); ++i) {
        ifp_assert(queues[i] != nullptr, "null shard queue");
        channelState[i].eq = queues[i];
        channelState[i].sharded = true;
    }
}

void
Dram::foldShardStats()
{
    for (Channel &ch : channelState) {
        numReads += ch.shReads;
        numWrites += ch.shWrites;
        totalQueueTicks += ch.shQueueTicks;
        ch.shReads = ch.shWrites = ch.shQueueTicks = 0;
    }
}

unsigned
Dram::channelFor(Addr addr) const
{
    return (addr / config.interleaveBytes) % config.channels;
}

void
Dram::access(const MemRequestPtr &req)
{
    unsigned idx = channelFor(req->addr);
    Channel &ch = channelState[idx];
    ch.queue.push_back(req);
    if (!ch.drainScheduled)
        drainChannel(idx);
}

void
Dram::drainChannel(unsigned idx)
{
    // Runs in the channel's own context: in shard mode that is the
    // fused bank/channel domain, so the clock and event schedules
    // must come from ch.eq, never the root queue.
    Channel &ch = channelState[idx];
    if (ch.queue.empty()) {
        ch.drainScheduled = false;
        return;
    }

    sim::Tick now = ch.eq->curTick();
    if (ch.busyUntil > now) {
        // Channel occupied: try again when it frees up.
        ch.drainScheduled = true;
        ch.eq->schedule(ch.busyUntil, [this, idx] {
            channelState[idx].drainScheduled = false;
            drainChannel(idx);
        }, descDrain);
        return;
    }

    MemRequestPtr req = std::move(ch.queue.front());
    ch.queue.pop_front();

    double queue_ticks = static_cast<double>(now - req->issueTick);
    bool is_write = req->op == MemOp::Write;
    if (ch.sharded) {
        ch.shQueueTicks += queue_ticks;
        (is_write ? ch.shWrites : ch.shReads) += 1;
    } else {
        totalQueueTicks += queue_ticks;
        if (is_write)
            ++numWrites;
        else
            ++numReads;
    }

    ch.busyUntil = now + cyclesToTicks(config.burstCycles);
    sim::Tick done = now + cyclesToTicks(config.accessLatency);
    ch.eq->schedule(done, [r = std::move(req)] { r->respond(); },
                    descResp);

    if (!ch.queue.empty()) {
        ch.drainScheduled = true;
        ch.eq->schedule(ch.busyUntil, [this, idx] {
            channelState[idx].drainScheduled = false;
            drainChannel(idx);
        }, descDrain);
    }
}

} // namespace ifp::mem
