/**
 * @file
 * Set-associative tag array with LRU replacement and line pinning.
 *
 * Shared by the L1 and L2 models. The tag array tracks presence and
 * replacement state only; data lives in the functional BackingStore.
 * Lines can be pinned (the L2 pins lines whose monitored bit is set,
 * per the paper) and pinned lines are never chosen as victims.
 */

#ifndef IFP_MEM_CACHE_TAGS_HH
#define IFP_MEM_CACHE_TAGS_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace ifp::mem {

/** Tag array of a single cache (or cache bank). */
class CacheTags
{
  public:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        bool pinned = false;
        Addr lineAddr = 0;      //!< address of first byte in the line
        std::uint64_t lastUsed = 0;
    };

    /** Outcome of inserting a new line. */
    struct Victim
    {
        bool evicted = false;     //!< an existing line was displaced
        bool wasDirty = false;
        Addr lineAddr = 0;
        bool noWayFree = false;   //!< all ways pinned: insertion failed
    };

    CacheTags(std::size_t size_bytes, unsigned assoc, unsigned line_bytes)
        : lineBytes(line_bytes), associativity(assoc),
          numSets(size_bytes / (assoc * line_bytes)),
          lines(numSets * assoc), useCounters(numSets, 0)
    {
        ifp_assert(numSets > 0, "cache too small for its associativity");
        ifp_assert((numSets & (numSets - 1)) == 0,
                   "number of sets must be a power of two");
    }

    /** Align an address down to its line base. */
    Addr lineOf(Addr addr) const { return addr & ~Addr(lineBytes - 1); }

    /** Find the line containing @p addr; nullptr on miss. */
    Line *
    lookup(Addr addr)
    {
        Addr line_addr = lineOf(addr);
        std::size_t set = setOf(line_addr);
        for (unsigned way = 0; way < associativity; ++way) {
            Line &line = lines[set * associativity + way];
            if (line.valid && line.lineAddr == line_addr)
                return &line;
        }
        return nullptr;
    }

    /**
     * Mark @p line most recently used. The recency counter is
     * per-set: replacement only ever compares lines within one set,
     * and per-set counters keep banked callers (the sharded L2 runs
     * one bank per thread, sets partitioned by bank) free of any
     * shared mutable state in the tag array.
     */
    void
    touch(Line &line)
    {
        line.lastUsed = ++useCounters[setOf(line.lineAddr)];
    }

    /**
     * Allocate a way for the line containing @p addr, evicting the LRU
     * non-pinned way if necessary. The returned Victim describes what
     * was displaced; on success the new line is valid and MRU.
     */
    Victim
    insert(Addr addr, Line **out_line = nullptr)
    {
        Addr line_addr = lineOf(addr);
        std::size_t set = setOf(line_addr);
        Line *victim = nullptr;
        for (unsigned way = 0; way < associativity; ++way) {
            Line &line = lines[set * associativity + way];
            if (!line.valid) {
                victim = &line;
                break;
            }
            if (line.pinned)
                continue;
            if (!victim || line.lastUsed < victim->lastUsed)
                victim = &line;
        }

        Victim result;
        if (!victim) {
            result.noWayFree = true;
            return result;
        }
        if (victim->valid) {
            result.evicted = true;
            result.wasDirty = victim->dirty;
            result.lineAddr = victim->lineAddr;
        }
        victim->valid = true;
        victim->dirty = false;
        victim->pinned = false;
        victim->lineAddr = line_addr;
        touch(*victim);
        if (out_line)
            *out_line = victim;
        return result;
    }

    /** Invalidate every line (pinned lines included). */
    void
    invalidateAll()
    {
        for (Line &line : lines)
            line.valid = false;
    }

    /** Invalidate one line if present. */
    void
    invalidate(Addr addr)
    {
        if (Line *line = lookup(addr))
            line->valid = false;
    }

    std::size_t sets() const { return numSets; }
    unsigned ways() const { return associativity; }
    unsigned lineSize() const { return lineBytes; }

    /** Count currently valid lines (used by tests). */
    std::size_t
    numValid() const
    {
        std::size_t n = 0;
        for (const Line &line : lines)
            n += line.valid ? 1 : 0;
        return n;
    }

  private:
    std::size_t setOf(Addr line_addr) const
    {
        return (line_addr / lineBytes) & (numSets - 1);
    }

    unsigned lineBytes;
    unsigned associativity;
    std::size_t numSets;
    std::vector<Line> lines;
    std::vector<std::uint64_t> useCounters;
};

} // namespace ifp::mem

#endif // IFP_MEM_CACHE_TAGS_HH
