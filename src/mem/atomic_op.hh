/**
 * @file
 * Atomic read-modify-write opcodes and their functional semantics.
 *
 * GPU atomics in this model are performed at the shared L2 cache (as on
 * GCN-class hardware); the L2 bank ALU evaluates these operations. The
 * same definitions drive both regular atomics and the paper's *waiting*
 * atomics, which add an expected-value operand (see mem/request.hh).
 */

#ifndef IFP_MEM_ATOMIC_OP_HH
#define IFP_MEM_ATOMIC_OP_HH

#include <string>

#include "sim/types.hh"

namespace ifp::mem {

/** The RMW operation an atomic request performs at the L2 ALU. */
enum class AtomicOpcode
{
    Load,    //!< atomic load; no modification
    Store,   //!< atomic store of operand
    Add,     //!< fetch-and-add operand
    Sub,     //!< fetch-and-subtract operand
    Exch,    //!< exchange with operand
    Cas,     //!< compare(compare)-and-swap(operand)
    Min,     //!< fetch-and-min
    Max,     //!< fetch-and-max
    And,     //!< fetch-and-and
    Or,      //!< fetch-and-or
    Xor,     //!< fetch-and-xor
    Inc,     //!< fetch-and-increment (operand ignored)
    Dec,     //!< fetch-and-decrement (operand ignored)
};

/** Result of functionally applying an atomic operation. */
struct AtomicResult
{
    MemValue oldValue;  //!< value observed before the operation
    MemValue newValue;  //!< value stored back (== oldValue for loads)
    bool wrote;         //!< whether memory changed at all
};

/**
 * Functionally apply @p op to @p old_value.
 *
 * @param op       the RMW opcode
 * @param old_value value currently in memory
 * @param operand  the instruction's data operand
 * @param compare  the comparison operand (CAS only)
 * @return the old value, the value to write back, and whether memory
 *         contents actually change.
 */
AtomicResult applyAtomic(AtomicOpcode op, MemValue old_value,
                         MemValue operand, MemValue compare);

/**
 * Whether a *waiting* form of @p op succeeded.
 *
 * A waiting atomic carries an expected value; it succeeds when the value
 * it observed equals the expectation (for CAS, when the swap happened).
 *
 * @param op        the RMW opcode
 * @param observed  the old value the atomic observed
 * @param expected  the expected-value operand
 */
bool waitingAtomicSucceeded(AtomicOpcode op, MemValue observed,
                            MemValue expected);

/** Short mnemonic for tracing/disassembly, e.g. "add", "cas". */
std::string atomicOpcodeName(AtomicOpcode op);

} // namespace ifp::mem

#endif // IFP_MEM_ATOMIC_OP_HH
