#include "mem/backing_store.hh"

#include "sim/logging.hh"

namespace ifp::mem {

BackingStore::Page &
BackingStore::pageFor(Addr addr)
{
    Addr page_addr = addr / pageBytes;
    if (page_addr == cachedPageAddr)
        return *cachedPage;
    auto it = pages.find(page_addr);
    if (it == pages.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages.emplace(page_addr, std::move(page)).first;
    }
    cachedPageAddr = page_addr;
    cachedPage = it->second.get();
    return *it->second;
}

const BackingStore::Page *
BackingStore::pageForConst(Addr addr) const
{
    Addr page_addr = addr / pageBytes;
    if (page_addr == cachedPageAddr)
        return cachedPage;
    auto it = pages.find(page_addr);
    if (it == pages.end())
        return nullptr;
    cachedPageAddr = page_addr;
    cachedPage = it->second.get();
    return cachedPage;
}

MemValue
BackingStore::read(Addr addr, unsigned size) const
{
    ifp_assert(size >= 1 && size <= 8, "bad access size %u", size);
    ifp_assert(addr / pageBytes == (addr + size - 1) / pageBytes,
               "access crosses page boundary");
    const Page *page = pageForConst(addr);
    if (!page)
        return 0;
    std::uint64_t raw = 0;
    unsigned offset = addr % pageBytes;
    for (unsigned i = 0; i < size; ++i)
        raw |= static_cast<std::uint64_t>((*page)[offset + i]) << (8 * i);
    // Sign-extend so that e.g. a 4-byte -1 reads back as -1.
    if (size < 8) {
        unsigned shift = 64 - 8 * size;
        return static_cast<MemValue>(
            static_cast<std::int64_t>(raw << shift) >> shift);
    }
    return static_cast<MemValue>(raw);
}

void
BackingStore::write(Addr addr, MemValue value, unsigned size)
{
    ifp_assert(size >= 1 && size <= 8, "bad access size %u", size);
    ifp_assert(addr / pageBytes == (addr + size - 1) / pageBytes,
               "access crosses page boundary");
    if (read(addr, size) != value)
        ++mutationCount;
    Page &page = pageFor(addr);
    unsigned offset = addr % pageBytes;
    auto raw = static_cast<std::uint64_t>(value);
    for (unsigned i = 0; i < size; ++i)
        page[offset + i] = static_cast<std::uint8_t>(raw >> (8 * i));
}

AtomicResult
BackingStore::atomic(Addr addr, AtomicOpcode op, MemValue operand,
                     MemValue compare, unsigned size)
{
    MemValue old_value = read(addr, size);
    AtomicResult res = applyAtomic(op, old_value, operand, compare);
    if (res.wrote)
        write(addr, res.newValue, size);
    return res;
}

} // namespace ifp::mem
