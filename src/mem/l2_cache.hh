/**
 * @file
 * Shared, banked L2 cache — the GPU's synchronization point.
 *
 * All global atomics are performed here by the bank ALUs (GCN-style).
 * The L2 is where the paper's machinery attaches:
 *
 *  - every L2 tag carries a *monitored bit*; accesses to monitored
 *    lines are reported to the installed SyncObserver,
 *  - failed waiting atomics and arriving wait-instructions ask the
 *    SyncObserver for a WaitDecision,
 *  - monitored lines are pinned so they cannot be evicted.
 *
 * Timing: requests are address-interleaved across banks; each bank
 * services its queue in order. A serviced request occupies the bank for
 * a configurable number of cycles (larger for atomics, modeling the
 * read-modify-write turnaround), which is what makes busy-wait
 * spinning on one synchronization variable collapse throughput — the
 * effect the paper's Baseline suffers from.
 */

#ifndef IFP_MEM_L2_CACHE_HH
#define IFP_MEM_L2_CACHE_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/cache_tags.hh"
#include "mem/request.hh"
#include "mem/sync_hooks.hh"
#include "sim/clocked.hh"
#include "sim/ring_queue.hh"
#include "sim/stats.hh"

namespace ifp::sim {
class EventDomain;
} // namespace ifp::sim

namespace ifp::mem {

/** L2 configuration (defaults per Table 1). */
struct L2Config
{
    std::size_t sizeBytes = 512 * 1024;
    unsigned assoc = 16;
    unsigned lineBytes = 64;
    unsigned banks = 4;
    /** Hit latency (request to response), in GPU cycles. */
    sim::Cycles hitLatency = 50;
    /** Bank occupancy per plain read/write, in cycles. */
    sim::Cycles serviceCycles = 4;
    /**
     * Bank occupancy per atomic, in cycles. Independent atomics
     * pipeline at this rate.
     */
    sim::Cycles atomicServiceCycles = 4;
    /**
     * Minimum spacing between atomics to the *same cacheline*, in
     * cycles. Models the read-modify-write turnaround plus the
     * coherence/ordering round trip same-line atomics pay on a
     * write-through GPU memory system (Ruby-style GETX ping-pong in
     * the paper's gem5 APU substrate). This is what makes busy-wait
     * spinning on one synchronization variable collapse throughput —
     * the effect the paper's Baseline suffers from (cf. Figure 7,
     * where backoff alone buys an order of magnitude).
     */
    sim::Cycles sameLineAtomicGapCycles = 150;
    sim::Tick clockPeriod = sim::periodFromFrequency(2'000'000'000ULL);
};

/**
 * The shared L2. Implements MemDevice for the L1s; talks to DRAM below.
 */
class L2Cache : public sim::Clocked, public MemDevice,
                public MemResponder
{
  public:
    L2Cache(std::string name, sim::EventQueue &eq, const L2Config &cfg,
            MemDevice &dram, BackingStore &store,
            MemRequestPool &request_pool);

    void access(const MemRequestPtr &req) override;

    /** DRAM fill completion; the fill's parent is the blocked req. */
    void onMemResponse(MemRequest &fill, std::uint64_t tag) override;

    /** Install the waiting-policy controller (may be nullptr). */
    void setSyncObserver(SyncObserver *obs) { observer = obs; }

    /**
     * Shard mode: run each bank inside its own event domain. Bank i
     * executes on @p bank_domains[i] (fused with DRAM channel i) and
     * allocates fills/writebacks from @p bank_pools[i]; requests
     * enter through a root->bank mailbox message and responses return
     * through a bank->root message carrying the hit latency, so
     * finishAccess() — the policy-observer boundary — always runs in
     * root context. Call before the first access; requires the
     * address interleaving of banks and channels to coincide.
     */
    void bindShardDomains(sim::EventDomain &root,
                          const std::vector<sim::EventDomain *>
                              &bank_domains,
                          const std::vector<MemRequestPool *>
                              &bank_pools);

    /** Fold bank-context stat shadows into the Scalars (root). */
    void foldShardStats();

    /**
     * Set/clear the monitored bit of the line containing @p addr.
     * Monitored lines are pinned in the tags.
     */
    void setMonitored(Addr addr, bool monitored);

    /** Whether the line containing @p addr has its monitored bit set. */
    bool isMonitored(Addr addr) const;

    /** Number of lines currently monitored (hardware-budget stat). */
    std::size_t numMonitored() const { return monitoredLines.size(); }

    /** High-water mark of simultaneously monitored lines. */
    std::size_t maxMonitored() const { return maxMonitoredLines; }

    sim::StatGroup &stats() { return statGroup; }
    const sim::StatGroup &stats() const { return statGroup; }

    const L2Config &config() const { return cfg; }

  private:
    struct Bank
    {
        sim::RingQueue<MemRequestPtr> queue;
        sim::Tick busyUntil = 0;
        bool drainScheduled = false;
        /** Per-line RMW turnaround state (atomics only). */
        std::unordered_map<Addr, sim::Tick> lineBusyUntil;
        /** Event queue bank events run on (root unless sharded). */
        sim::EventQueue *eq = nullptr;
        /** The bank's event domain; null in classic serial mode. */
        sim::EventDomain *domain = nullptr;
        /** Pool for fills/writebacks born in this bank's context. */
        MemRequestPool *fillPool = nullptr;
        /**
         * Bank-context mirror of the monitored-line set, restricted
         * to this bank's addresses; the authoritative set stays
         * root-side (setMonitored/isMonitored). Maintained in both
         * modes so the eviction-pinning path behaves identically.
         */
        std::unordered_set<Addr> monitored;
        /// @name Bank-context stat shadows (sharded mode only)
        /// @{
        double shHits = 0;
        double shMisses = 0;
        double shWritebacks = 0;
        double shQueueTicks = 0;
        /// @}
    };

    unsigned bankFor(Addr addr) const;
    void enqueue(unsigned idx, MemRequestPtr req);
    void drainBank(unsigned idx);
    void serviceRequest(unsigned idx, MemRequestPtr req);
    void finishAccess(const MemRequestPtr &req);
    void scheduleFinish(unsigned idx, MemRequestPtr req);
    /** Bank-context half of setMonitored (mirror set + pin bit). */
    void applyMonitored(unsigned idx, Addr line_addr, bool monitored);

    L2Config cfg;
    MemDevice &dram;
    BackingStore &store;
    MemRequestPool &pool;
    SyncObserver *observer = nullptr;

    CacheTags tags;
    std::vector<Bank> banks;
    sim::EventDomain *rootDomain = nullptr;
    std::unordered_set<Addr> monitoredLines;
    std::size_t maxMonitoredLines = 0;

    /// @name Precomputed event descriptions (hot path: no concats)
    /// @{
    std::string descDrain;
    std::string descLineBusy;
    std::string descFinish;
    std::string descEnqueue;
    std::string descPin;
    /// @}

    sim::StatGroup statGroup;
    sim::Scalar &hits;
    sim::Scalar &misses;
    sim::Scalar &atomics;
    sim::Scalar &waitingAtomics;
    sim::Scalar &waitFails;
    sim::Scalar &armWaits;
    sim::Scalar &monitoredNotifies;
    sim::Scalar &writebacks;
    sim::Scalar &queueTicks;
};

} // namespace ifp::mem

#endif // IFP_MEM_L2_CACHE_HH
