/**
 * @file
 * Hook interface between the L2 cache and the synchronization
 * machinery (SyncMon / waiting-policy controllers).
 *
 * The L2 performs all atomics. When a *waiting* atomic fails its
 * expected-value comparison, or a wait-instruction arrives to arm the
 * monitor, the L2 consults the installed SyncObserver for a
 * WaitDecision. Whenever an access touches a cacheline whose monitored
 * bit is set, the L2 reports it so the observer can run its resume
 * policy.
 */

#ifndef IFP_MEM_SYNC_HOOKS_HH
#define IFP_MEM_SYNC_HOOKS_HH

#include "mem/request.hh"
#include "sim/types.hh"

namespace ifp::mem {

/**
 * Interface implemented by waiting-policy controllers (Timeout,
 * MonRS/MonR/MonNR variants, AWG, MinResume).
 */
class SyncObserver
{
  public:
    virtual ~SyncObserver() = default;

    /**
     * A waiting atomic failed its comparison at the L2.
     *
     * Observers receive a plain reference: they inspect the request
     * during the call and must not retain it (retaining would require
     * a MemRequestPtr and reintroduce the ownership cycles the pooled
     * lifecycle is designed to rule out).
     *
     * @param req      the failing request (expected value, WG identity)
     * @param observed the value the atomic observed
     * @return how the issuing WG should wait
     */
    virtual WaitDecision onWaitFail(const MemRequest &req,
                                    MemValue observed) = 0;

    /**
     * A wait-instruction (MonR/MonRS style) arrived to arm the
     * monitor for (req.addr, req.expected).
     */
    virtual WaitDecision onArmWait(const MemRequest &req) = 0;

    /**
     * An access touched a line whose monitored bit is set.
     *
     * @param addr      the word address accessed
     * @param new_value value after the access (== old for reads)
     * @param is_update true for writes / value-producing atomics
     * @param by_wg     WG id of the accessor (-1 for external agents)
     */
    virtual void onMonitoredAccess(Addr addr, MemValue new_value,
                                   bool is_update, int by_wg) = 0;

    /**
     * The stall/rescue timer of a waiting WG expired before its
     * condition was met. The controller decides what happens next:
     * Proceed resumes the WG (it retries, Mesa-style), Stall re-arms
     * the stall, Switch context switches the WG out (AWG's stall-
     * period misprediction path).
     */
    virtual WaitDecision
    onStallTimeout(int wg_id, Addr addr, MemValue expected)
    {
        (void)wg_id;
        (void)addr;
        (void)expected;
        return WaitDecision{WaitKind::Proceed, 0};
    }
};

} // namespace ifp::mem

#endif // IFP_MEM_SYNC_HOOKS_HH
