#include "mem/atomic_op.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ifp::mem {

AtomicResult
applyAtomic(AtomicOpcode op, MemValue old_value, MemValue operand,
            MemValue compare)
{
    AtomicResult res{old_value, old_value, false};
    switch (op) {
      case AtomicOpcode::Load:
        return res;
      case AtomicOpcode::Store:
        res.newValue = operand;
        break;
      case AtomicOpcode::Add:
        res.newValue = old_value + operand;
        break;
      case AtomicOpcode::Sub:
        res.newValue = old_value - operand;
        break;
      case AtomicOpcode::Exch:
        res.newValue = operand;
        break;
      case AtomicOpcode::Cas:
        res.newValue = (old_value == compare) ? operand : old_value;
        break;
      case AtomicOpcode::Min:
        res.newValue = std::min(old_value, operand);
        break;
      case AtomicOpcode::Max:
        res.newValue = std::max(old_value, operand);
        break;
      case AtomicOpcode::And:
        res.newValue = old_value & operand;
        break;
      case AtomicOpcode::Or:
        res.newValue = old_value | operand;
        break;
      case AtomicOpcode::Xor:
        res.newValue = old_value ^ operand;
        break;
      case AtomicOpcode::Inc:
        res.newValue = old_value + 1;
        break;
      case AtomicOpcode::Dec:
        res.newValue = old_value - 1;
        break;
    }
    res.wrote = res.newValue != old_value;
    return res;
}

bool
waitingAtomicSucceeded(AtomicOpcode op, MemValue observed,
                       MemValue expected)
{
    // CAS succeeds when the exchange happened, i.e. the observed value
    // matched its comparison operand; all other waiting atomics succeed
    // when the observed value equals the expectation. For CAS the
    // caller passes the CAS compare operand as @p expected.
    (void)op;
    return observed == expected;
}

std::string
atomicOpcodeName(AtomicOpcode op)
{
    switch (op) {
      case AtomicOpcode::Load: return "load";
      case AtomicOpcode::Store: return "store";
      case AtomicOpcode::Add: return "add";
      case AtomicOpcode::Sub: return "sub";
      case AtomicOpcode::Exch: return "exch";
      case AtomicOpcode::Cas: return "cas";
      case AtomicOpcode::Min: return "min";
      case AtomicOpcode::Max: return "max";
      case AtomicOpcode::And: return "and";
      case AtomicOpcode::Or: return "or";
      case AtomicOpcode::Xor: return "xor";
      case AtomicOpcode::Inc: return "inc";
      case AtomicOpcode::Dec: return "dec";
    }
    ifp_panic("unknown atomic opcode %d", static_cast<int>(op));
}

} // namespace ifp::mem
