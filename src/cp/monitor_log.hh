/**
 * @file
 * The Monitor Log: the paper's virtualization interface between the
 * SyncMon and the Command Processor.
 *
 * A circular buffer residing in global memory. Each entry holds the
 * monitored address, the waiting value and the waiting WG id. When the
 * SyncMon's condition cache or waiting-WG list reaches capacity, it
 * appends entries here; the CP periodically drains them into its own
 * lookup structure and checks the spilled conditions. When the log
 * itself is full, the failing waiting atomic does *not* enter a
 * waiting state — the WG keeps executing and retries (Mesa semantics)
 * until the CP frees entries.
 */

#ifndef IFP_CP_MONITOR_LOG_HH
#define IFP_CP_MONITOR_LOG_HH

#include <cstdint>
#include <optional>

#include "mem/backing_store.hh"
#include "mem/request.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ifp::cp {

/** One Monitor Log record. */
struct MonitorLogEntry
{
    mem::Addr addr = 0;
    mem::MemValue expected = 0;
    int wgId = -1;
};

/** Byte size of one log record in global memory. */
constexpr unsigned monitorLogEntryBytes = 24;

/** Circular buffer in global memory. */
class MonitorLog
{
  public:
    /**
     * @param base     address of the buffer in global memory
     * @param capacity number of entries
     * @param store    functional memory holding the buffer
     * @param l2       optional device to charge timing writes against
     * @param pool     request pool for the timing writes (required
     *                 when @p l2 is set)
     */
    MonitorLog(mem::Addr base, unsigned capacity,
               mem::BackingStore &store, mem::MemDevice *l2 = nullptr,
               mem::MemRequestPool *pool = nullptr);

    /** Append at the tail. @return false when the log is full. */
    bool append(const MonitorLogEntry &entry);

    /** Pop the head entry, if any. */
    std::optional<MonitorLogEntry> pop();

    /** Buffer base address in global memory. */
    mem::Addr baseAddr() const { return base; }

    bool empty() const { return count == 0; }
    bool full() const { return count == capacity; }
    unsigned size() const { return count; }
    unsigned maxSize() const { return maxCount; }
    unsigned capacityEntries() const { return capacity; }
    unsigned freeEntries() const { return capacity - count; }
    std::uint64_t totalAppends() const { return appends; }
    std::uint64_t totalRejected() const { return rejected; }

  private:
    mem::Addr entryAddr(unsigned index) const
    {
        return base + static_cast<mem::Addr>(index) *
                          monitorLogEntryBytes;
    }

    mem::Addr base;
    unsigned capacity;
    mem::BackingStore &store;
    mem::MemDevice *l2;
    mem::MemRequestPool *pool;

    unsigned head = 0;
    unsigned tail = 0;
    unsigned count = 0;
    unsigned maxCount = 0;
    std::uint64_t appends = 0;
    std::uint64_t rejected = 0;
};

} // namespace ifp::cp

#endif // IFP_CP_MONITOR_LOG_HH
