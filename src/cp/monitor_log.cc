#include "cp/monitor_log.hh"

#include "sim/logging.hh"

namespace ifp::cp {

MonitorLog::MonitorLog(mem::Addr log_base, unsigned log_capacity,
                       mem::BackingStore &backing,
                       mem::MemDevice *l2_dev,
                       mem::MemRequestPool *request_pool)
    : base(log_base), capacity(log_capacity), store(backing), l2(l2_dev),
      pool(request_pool)
{
    ifp_assert(capacity > 0, "monitor log needs capacity");
    ifp_assert(!l2 || pool, "timing writes need a request pool");
}

bool
MonitorLog::append(const MonitorLogEntry &entry)
{
    if (full()) {
        ++rejected;
        return false;
    }

    mem::Addr at = entryAddr(tail);
    store.write(at, static_cast<mem::MemValue>(entry.addr), 8);
    store.write(at + 8, entry.expected, 8);
    store.write(at + 16, entry.wgId, 8);

    if (l2) {
        // Charge one timing write for the record (fire and forget:
        // the refcount recycles it once the L2 responds). The L2
        // write path is functional too — it stores the operand's
        // first 8 bytes at req->addr — so the operand must be the
        // record's own first word (the monitored address), not the
        // expected value: anything else clobbers the record and the
        // CP later drains a condition for a garbage address.
        mem::MemRequestPtr req = pool->allocate();
        req->op = mem::MemOp::Write;
        req->addr = at;
        req->size = monitorLogEntryBytes;
        req->operand = static_cast<mem::MemValue>(entry.addr);
        l2->access(req);
    }

    tail = (tail + 1) % capacity;
    ++count;
    ++appends;
    maxCount = std::max(maxCount, count);
    return true;
}

std::optional<MonitorLogEntry>
MonitorLog::pop()
{
    if (empty())
        return std::nullopt;

    mem::Addr at = entryAddr(head);
    MonitorLogEntry entry;
    entry.addr = static_cast<mem::Addr>(store.read(at, 8));
    entry.expected = store.read(at + 8, 8);
    entry.wgId = static_cast<int>(store.read(at + 16, 8));

    head = (head + 1) % capacity;
    --count;
    return entry;
}

} // namespace ifp::cp
