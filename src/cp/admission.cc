#include "cp/admission.hh"

#include <algorithm>
#include <vector>

namespace ifp::cp {

namespace {

/**
 * Admission/carving rank: priority desc, arrival asc, ctx id asc.
 * Total order over distinct contexts (ids are unique), so every pass
 * is deterministic.
 */
bool
ranksBefore(const gpu::DispatchContext &a, const gpu::DispatchContext &b)
{
    if (a.opts.priority != b.opts.priority)
        return a.opts.priority > b.opts.priority;
    if (a.enqueueTick != b.enqueueTick)
        return a.enqueueTick < b.enqueueTick;
    return a.id < b.id;
}

} // anonymous namespace

void
AdmissionScheduler::contextEnqueued(int)
{
    recompute();
}

void
AdmissionScheduler::contextCompleted(int)
{
    recompute();
}

void
AdmissionScheduler::cuAvailabilityChanged()
{
    recompute();
}

void
AdmissionScheduler::recompute()
{
    if (!dispatcher)
        return;
    ++passes;

    const auto &contexts = dispatcher->dispatchContexts();
    const unsigned online = dispatcher->numOnlineCus();

    // Phase 1: admission. Queued contexts in rank order, while the
    // residency cap and (with a floor) the per-kernel CU guarantee
    // still hold. admitContext() runs synchronously, so the resident
    // count grows as we go.
    std::vector<gpu::DispatchContext *> queued;
    unsigned resident = 0;
    for (const auto &ctx : contexts) {
        if (ctx->state == gpu::ContextState::Queued)
            queued.push_back(ctx.get());
        else if (ctx->state == gpu::ContextState::Resident)
            ++resident;
    }
    std::sort(queued.begin(), queued.end(),
              [](const gpu::DispatchContext *a,
                 const gpu::DispatchContext *b) {
                  return ranksBefore(*a, *b);
              });
    for (gpu::DispatchContext *ctx : queued) {
        if (resident >= config.maxResidentKernels)
            break;
        if (config.cuShareFloor > 0 &&
            (resident + 1) * config.cuShareFloor > online)
            break;
        dispatcher->admitContext(ctx->id);
        ++resident;
    }

    // Phase 2: quotas for the resident contexts, in rank order.
    // Demand is the context's live (not-yet-completed) WG count, so a
    // nearly-finished kernel never hoards CUs it cannot fill.
    std::vector<gpu::DispatchContext *> ranked;
    for (const auto &ctx : contexts) {
        if (ctx->state == gpu::ContextState::Resident)
            ranked.push_back(ctx.get());
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const gpu::DispatchContext *a,
                 const gpu::DispatchContext *b) {
                  return ranksBefore(*a, *b);
              });

    std::vector<unsigned> quota(ranked.size(), 0);
    unsigned granted = 0;
    // Floor pass: every resident kernel gets its guaranteed share
    // (capped by demand) before anyone gets more.
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        unsigned demand = ranked[i]->liveWgs();
        unsigned give = std::min({config.cuShareFloor, demand,
                                  online - granted});
        quota[i] = give;
        granted += give;
    }
    // Cascade pass: leftover CUs flow to the highest-ranked contexts
    // up to their demand.
    for (std::size_t i = 0; i < ranked.size() && granted < online; ++i) {
        unsigned demand = ranked[i]->liveWgs();
        if (demand <= quota[i])
            continue;
        unsigned give = std::min(demand - quota[i], online - granted);
        quota[i] += give;
        granted += give;
    }
    // Surplus pass: when total demand is below the machine size, the
    // remaining CUs still get an owner (top rank). Leaving them
    // unowned would evict running WGs from a winding-down kernel for
    // nobody's benefit.
    if (!ranked.empty() && granted < online) {
        quota[0] += online - granted;
        granted = online;
    }

    // Phase 3: stable mapping. Offline CUs keep their owner while it
    // is resident (nothing can run there, and the owner reclaims the
    // CU on restoration without a reassignment). Each context first
    // keeps CUs it already owns, in CU id order, up to its quota;
    // then free online CUs fill the remainder in rank order.
    const std::vector<int> &current = dispatcher->cuAssignment();
    const unsigned num_cus = dispatcher->numCus();
    std::vector<int> owner(num_cus, -1);
    std::vector<bool> cuFree(num_cus, false);
    for (unsigned cu = 0; cu < num_cus; ++cu) {
        int cur = current[cu];
        bool cur_resident =
            cur >= 0 &&
            dispatcher->context(cur)->state ==
                gpu::ContextState::Resident;
        if (dispatcher->cuOnline(cu)) {
            cuFree[cu] = true;
        } else if (cur_resident) {
            owner[cu] = cur;
        }
    }
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        gpu::DispatchContext *ctx = ranked[i];
        unsigned kept = 0;
        // Among the CUs a shrinking context keeps, prefer the ones
        // hosting its work-groups: keeping an idle CU while evicting a
        // running WG would trade a free CU for a context save.
        for (int hosted = 1; hosted >= 0; --hosted) {
            for (unsigned cu = 0; cu < num_cus && kept < quota[i];
                 ++cu) {
                if (cuFree[cu] && current[cu] == ctx->id &&
                    static_cast<int>(dispatcher->cuHostsContext(
                        cu, ctx->id)) == hosted) {
                    owner[cu] = ctx->id;
                    cuFree[cu] = false;
                    ++kept;
                }
            }
        }
        quota[i] -= kept;
    }
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        gpu::DispatchContext *ctx = ranked[i];
        for (unsigned cu = 0; cu < num_cus && quota[i] > 0; ++cu) {
            if (cuFree[cu]) {
                owner[cu] = ctx->id;
                cuFree[cu] = false;
                --quota[i];
            }
        }
    }

    dispatcher->setCuAssignment(owner);
}

} // namespace ifp::cp
