/**
 * @file
 * Command Processor firmware model.
 *
 * The paper extends the firmware of the GPU's existing programmable
 * micro-controller (the CP) to:
 *
 *  - perform WG context switches (save/restore through the DMA
 *    engine into a context store in global memory),
 *  - track waiting WGs and their state transitions (stalled /
 *    switching out / waiting / ready / switching in),
 *  - drain the Monitor Log into a lookup-efficient in-memory table
 *    and periodically check the spilled waiting conditions,
 *  - provide the timeout backstop ("rescue") that re-activates
 *    waiting WGs after monitor misses or mispredictions (Mesa
 *    semantics: resumed WGs re-check their condition).
 *
 * The CP is off the critical path: it is only involved in the
 * uncommon, high-latency operations.
 */

#ifndef IFP_CP_COMMAND_PROCESSOR_HH
#define IFP_CP_COMMAND_PROCESSOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cp/admission.hh"
#include "cp/monitor_log.hh"
#include "gpu/sched_iface.hh"
#include "gpu/workgroup.hh"
#include "mem/backing_store.hh"
#include "mem/dma.hh"
#include "sim/clocked.hh"
#include "sim/sched_oracle.hh"
#include "sim/stats.hh"
#include "sim/trace_sink.hh"

namespace ifp::cp {

/** CP firmware configuration. */
struct CpConfig
{
    /** Period of the firmware's housekeeping loop, in GPU cycles. */
    sim::Cycles checkIntervalCycles = 2000;
    /** Monitor Log entries drained per housekeeping pass. */
    unsigned logDrainPerCheck = 64;
    /** Monitor Log capacity, in entries. */
    unsigned monitorLogCapacity = 4096;
    /** Monitor Log base address in global memory. */
    mem::Addr monitorLogBase = 0x4000'0000ULL;
    /** Context store base address in global memory. */
    mem::Addr contextStoreBase = 0x5000'0000ULL;
    sim::Tick clockPeriod = sim::periodFromFrequency(2'000'000'000ULL);
    /** Multi-kernel admission/preemption policy knobs. */
    AdmissionConfig admission;
};

/**
 * Listener for the lifecycle of spilled waiting conditions. The
 * SyncMon implements this so conditions virtualized into the Monitor
 * Log keep participating in its per-line accounting (monitored bits,
 * lazy cleanup, Bloom-filter lifetime) while the CP owns them. Kept
 * here so the CP never depends on the syncmon layer.
 */
class SpillObserver
{
  public:
    virtual ~SpillObserver() = default;
    /**
     * A spilled condition left the CP's tables: its waiter resumed
     * (condition met or rescue) or was dropped as stale.
     */
    virtual void onSpilledCondRemoved(mem::Addr addr, int wg_id) = 0;
};

/** The Command Processor. */
class CommandProcessor : public sim::Clocked,
                         public gpu::ContextSwitcher
{
  public:
    CommandProcessor(std::string name, sim::EventQueue &eq,
                     const CpConfig &cfg, mem::DmaEngine &dma,
                     mem::BackingStore &store,
                     mem::MemDevice *l2 = nullptr,
                     mem::MemRequestPool *request_pool = nullptr);

    void setScheduler(gpu::WgScheduler *s) { scheduler = s; }
    void setTraceSink(sim::TraceSink *sink) { trace = sink; }
    /** Spilled-condition lifecycle listener (the SyncMon). */
    void setSpillObserver(SpillObserver *o) { spillObserver = o; }
    /** Schedule-choice oracle for housekeeping resume ordering. */
    void setSchedOracle(sim::SchedOracle *o) { oracle = o; }

    /**
     * The firmware's kernel admission/preemption scheduler. The
     * GpuSystem wires it to the dispatcher; it runs synchronously
     * inside dispatcher notifications (no events of its own).
     */
    AdmissionScheduler &admissionScheduler() { return admScheduler; }
    const AdmissionScheduler &admissionScheduler() const
    {
        return admScheduler;
    }

    /// @name ContextSwitcher
    /// @{
    void saveContext(gpu::WorkGroup *wg,
                     std::function<void()> done) override;
    void restoreContext(gpu::WorkGroup *wg,
                        std::function<void()> done) override;
    void armRescue(int wg_id, sim::Cycles timeout_cycles) override;
    void cancelRescue(int wg_id) override;
    /// @}

    /// @name Monitor Log interface (called by the SyncMon)
    /// @{

    /**
     * Spill a waiting condition the SyncMon could not hold.
     * @return false when the log is full (the waiting atomic then
     *         fails without entering a waiting state).
     */
    bool spillCondition(mem::Addr addr, mem::MemValue expected,
                        int wg_id);

    /** Remove spilled conditions belonging to a resumed WG. */
    void dropSpilledFor(int wg_id);
    /// @}

    /// @name Fault-injection hooks (core/fault_plan.hh)
    /// @{
    /**
     * LogJam window: the Monitor Log rejects every append, so waiting
     * atomics that would spill fail immediately (Mesa retry) — the
     * sustained log-full phase without actually filling the log.
     */
    void beginLogJam() { ++jamDepth; }
    void endLogJam() { if (jamDepth) --jamDepth; }

    /**
     * CpStall fault: the firmware is wedged until @p until. The
     * housekeeping loop keeps its schedule but performs no work (no
     * drains, no condition checks, no rescues) before that tick.
     */
    void stallFirmware(sim::Tick until);
    /// @}

    /// @name Introspection (Figure 13 accounting)
    /// @{
    const MonitorLog &monitorLog() const { return log; }
    unsigned maxSpilledConditions() const { return maxSpilled; }
    unsigned maxTrackedRescues() const { return maxRescues; }
    std::uint64_t maxContextStoreBytes() const
    {
        return maxContextBytes;
    }
    std::uint64_t rescueResumes() const { return rescuesFiredCount; }
    /// @}

    sim::StatGroup &stats() { return statGroup; }
    const sim::StatGroup &stats() const { return statGroup; }

  private:
    struct SpilledCond
    {
        mem::Addr addr;
        mem::MemValue expected;
        int wgId;
    };

    void housekeeping();
    void ensureHousekeeping();
    bool hasWork() const;

    CpConfig config;
    mem::DmaEngine &dma;
    mem::BackingStore &store;
    gpu::WgScheduler *scheduler = nullptr;
    sim::TraceSink *trace = nullptr;
    sim::SchedOracle *oracle = nullptr;
    SpillObserver *spillObserver = nullptr;

    MonitorLog log;
    AdmissionScheduler admScheduler;
    /** The "monitor table": drained, lookup-efficient conditions. */
    std::vector<SpilledCond> spilled;
    /** Rescue deadlines for waiting WGs, keyed by WG id. */
    std::unordered_map<int, sim::Tick> rescueDeadlines;

    bool housekeepingScheduled = false;

    /// @name Active fault-window state
    /// @{
    unsigned jamDepth = 0;
    sim::Tick firmwareStalledUntil = 0;
    /// @}

    std::uint64_t currentContextBytes = 0;
    std::uint64_t maxContextBytes = 0;
    unsigned maxSpilled = 0;
    unsigned maxRescues = 0;
    std::uint64_t rescuesFiredCount = 0;

    sim::StatGroup statGroup;
    sim::Scalar &contextSavesStat;
    sim::Scalar &contextRestoresStat;
    sim::Scalar &logDrained;
    sim::Scalar &spilledResumes;
    sim::Scalar &rescuesFired;
    sim::Scalar &jamRejects;
    sim::Scalar &stallDeferrals;
};

} // namespace ifp::cp

#endif // IFP_CP_COMMAND_PROCESSOR_HH
