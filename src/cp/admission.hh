/**
 * @file
 * CP admission/preemption scheduler for multi-tenant kernel serving.
 *
 * The Command Processor firmware decides which enqueued kernels are
 * resident and how the CUs are carved between them. The policy is
 * priority-preemptive with a configurable CU-share floor:
 *
 *  - Admission: queued contexts are admitted in rank order (priority
 *    desc, arrival asc, ctx id asc) while fewer than
 *    `maxResidentKernels` are resident and, with a non-zero floor,
 *    every resident kernel can still be guaranteed `cuShareFloor`
 *    online CUs.
 *  - CU carving: every resident context first receives its floor
 *    (capped by its remaining WG demand), then the leftover CUs
 *    cascade to the highest-ranked contexts up to their demand. The
 *    mapping is stable: a context keeps the CUs it already owns up to
 *    its new quota (in CU id order) before free CUs are granted, so
 *    churn — and therefore preemption — is minimized.
 *
 * Every hook runs synchronously inside the dispatcher notification
 * that triggered it; the scheduler never schedules events of its own,
 * so admission decisions add nothing to the event queue and runs stay
 * deterministic (and byte-identical for single-kernel legacy runs:
 * one context is admitted immediately and granted every CU).
 *
 * Revoking a CU pre-empts the previous owner's WGs through the
 * drain/context-save machinery of the §VI oversubscription scenario —
 * multi-tenant CU churn is the organic, recurring form of that fault,
 * and only swap-in-capable policies (the paper's point) survive it.
 */

#ifndef IFP_CP_ADMISSION_HH
#define IFP_CP_ADMISSION_HH

#include "gpu/dispatcher.hh"

namespace ifp::cp {

/** Admission policy knobs (part of CpConfig). */
struct AdmissionConfig
{
    /** Max concurrently-resident kernels (1 = serial execution). */
    unsigned maxResidentKernels = 4;
    /**
     * Guaranteed online CUs per resident kernel. 0 disables the
     * guarantee: low-priority kernels may hold zero CUs while
     * higher-priority work runs (pure priority cascade).
     */
    unsigned cuShareFloor = 1;
};

/** The CP's admission/preemption scheduler. */
class AdmissionScheduler : public gpu::AdmissionPolicy
{
  public:
    explicit AdmissionScheduler(const AdmissionConfig &cfg)
        : config(cfg)
    {
    }

    void setDispatcher(gpu::Dispatcher *d) { dispatcher = d; }

    /// @name gpu::AdmissionPolicy
    /// @{
    void contextEnqueued(int ctx_id) override;
    void contextCompleted(int ctx_id) override;
    void cuAvailabilityChanged() override;
    /// @}

    /** Number of full admission/carving passes run. */
    std::uint64_t recomputePasses() const { return passes; }

  private:
    /**
     * One full pass: admit what fits, recompute quotas, install the
     * stable CU assignment. Idempotent — safe to run on any trigger.
     */
    void recompute();

    AdmissionConfig config;
    gpu::Dispatcher *dispatcher = nullptr;
    std::uint64_t passes = 0;
};

} // namespace ifp::cp

#endif // IFP_CP_ADMISSION_HH
