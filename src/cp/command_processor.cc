#include "cp/command_processor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ifp::cp {

CommandProcessor::CommandProcessor(std::string name, sim::EventQueue &eq,
                                   const CpConfig &cfg,
                                   mem::DmaEngine &dma_engine,
                                   mem::BackingStore &backing,
                                   mem::MemDevice *l2,
                                   mem::MemRequestPool *request_pool)
    : Clocked(std::move(name), eq, cfg.clockPeriod),
      config(cfg),
      dma(dma_engine),
      store(backing),
      log(cfg.monitorLogBase, cfg.monitorLogCapacity, backing, l2,
          request_pool),
      admScheduler(cfg.admission),
      statGroup(this->name()),
      contextSavesStat(statGroup.addScalar("contextSaves",
                                           "WG contexts saved")),
      contextRestoresStat(statGroup.addScalar("contextRestores",
                                              "WG contexts restored")),
      logDrained(statGroup.addScalar("logDrained",
                                     "monitor log entries drained")),
      spilledResumes(statGroup.addScalar(
          "spilledResumes", "resumes from spilled-condition checks")),
      rescuesFired(statGroup.addScalar("rescuesFired",
                                       "CP rescue timeouts fired")),
      jamRejects(statGroup.addScalar(
          "jamRejects", "spills rejected by LogJam fault windows")),
      stallDeferrals(statGroup.addScalar(
          "stallDeferrals",
          "housekeeping passes skipped while the firmware was stalled"))
{
}

void
CommandProcessor::stallFirmware(sim::Tick until)
{
    firmwareStalledUntil = std::max(firmwareStalledUntil, until);
}

void
CommandProcessor::saveContext(gpu::WorkGroup *wg,
                              std::function<void()> done)
{
    ++contextSavesStat;
    std::uint64_t bytes = wg->kernel->contextBytes();
    currentContextBytes += bytes;
    maxContextBytes = std::max(maxContextBytes, currentContextBytes);
    dma.transfer(bytes, std::move(done));
}

void
CommandProcessor::restoreContext(gpu::WorkGroup *wg,
                                 std::function<void()> done)
{
    ++contextRestoresStat;
    std::uint64_t bytes = wg->kernel->contextBytes();
    ifp_assert(currentContextBytes >= bytes,
               "context store underflow for wg%d", wg->id);
    dma.transfer(bytes, [this, bytes, cb = std::move(done)] {
        currentContextBytes -= bytes;
        cb();
    });
}

void
CommandProcessor::armRescue(int wg_id, sim::Cycles timeout_cycles)
{
    rescueDeadlines[wg_id] = clockEdge(timeout_cycles);
    maxRescues = std::max(maxRescues,
                          static_cast<unsigned>(
                              rescueDeadlines.size()));
    ensureHousekeeping();
}

void
CommandProcessor::cancelRescue(int wg_id)
{
    rescueDeadlines.erase(wg_id);
    // A resuming WG's spilled conditions are stale: it will re-check
    // and, if needed, re-register (Mesa semantics).
    dropSpilledFor(wg_id);
}

bool
CommandProcessor::spillCondition(mem::Addr addr, mem::MemValue expected,
                                 int wg_id)
{
    if (jamDepth > 0) {
        ++jamRejects;
        return false;
    }
    bool ok = log.append(MonitorLogEntry{addr, expected, wg_id});
    if (ok) {
        sim::emitTrace(trace, curTick(), sim::TraceEventKind::LogAbsorb,
                       wg_id, -1, sim::StallReason::Running, addr,
                       static_cast<std::int64_t>(log.size()));
        ensureHousekeeping();
    }
    return ok;
}

void
CommandProcessor::dropSpilledFor(int wg_id)
{
    std::erase_if(spilled, [this, wg_id](const SpilledCond &c) {
        if (c.wgId != wg_id)
            return false;
        if (spillObserver)
            spillObserver->onSpilledCondRemoved(c.addr, c.wgId);
        return true;
    });
}

bool
CommandProcessor::hasWork() const
{
    return !log.empty() || !spilled.empty() || !rescueDeadlines.empty();
}

void
CommandProcessor::ensureHousekeeping()
{
    if (housekeepingScheduled || !hasWork())
        return;
    housekeepingScheduled = true;
    eventq().schedule(clockEdge(config.checkIntervalCycles),
                      [this] { housekeeping(); },
                      name() + ".housekeeping");
}

void
CommandProcessor::housekeeping()
{
    housekeepingScheduled = false;
    sim::Tick now = curTick();

    if (now < firmwareStalledUntil) {
        // CpStall fault: keep ticking but do no work until the stall
        // window closes; pending drains, checks and rescues all wait.
        ++stallDeferrals;
        ensureHousekeeping();
        return;
    }

    // 1. Drain the Monitor Log into the lookup-efficient table.
    unsigned drained = 0;
    for (unsigned i = 0; i < config.logDrainPerCheck; ++i) {
        auto entry = log.pop();
        if (!entry)
            break;
        ++logDrained;
        ++drained;
        spilled.push_back(
            SpilledCond{entry->addr, entry->expected, entry->wgId});
    }
    if (drained > 0) {
        sim::emitTrace(trace, now, sim::TraceEventKind::LogDrain, -1,
                       -1, sim::StallReason::Running, 0,
                       static_cast<std::int64_t>(drained));
    }
    maxSpilled =
        std::max(maxSpilled, static_cast<unsigned>(spilled.size()));

    // 2. Check spilled waiting conditions against memory.
    std::vector<int> to_resume;
    std::erase_if(spilled, [&](const SpilledCond &c) {
        if (store.read(c.addr, 8) == c.expected) {
            to_resume.push_back(c.wgId);
            if (spillObserver)
                spillObserver->onSpilledCondRemoved(c.addr, c.wgId);
            return true;
        }
        return false;
    });
    sim::oraclePermute(oracle, sim::ChoicePoint::SpillScan, to_resume);
    for (int wg_id : to_resume) {
        ++spilledResumes;
        if (scheduler)
            scheduler->resumeWg(wg_id);
    }

    // 3. Fire expired rescue timers (Mesa: resumed WGs re-check).
    std::vector<int> rescued;
    for (const auto &[wg_id, deadline] : rescueDeadlines) {
        if (deadline <= now)
            rescued.push_back(wg_id);
    }
    if (oracle) {
        // rescueDeadlines is an unordered_map: its iteration order is
        // per-run deterministic but opaque. Canonicalize before the
        // oracle permutes so a replayed choice sequence means the
        // same thing in every run; the no-oracle path keeps the raw
        // order byte-for-byte.
        std::sort(rescued.begin(), rescued.end());
        sim::oraclePermute(oracle, sim::ChoicePoint::RescueOrder,
                           rescued);
    }
    for (int wg_id : rescued) {
        rescueDeadlines.erase(wg_id);
        ++rescuesFired;
        ++rescuesFiredCount;
        if (scheduler)
            scheduler->resumeWg(wg_id);
    }

    ensureHousekeeping();
}

} // namespace ifp::cp
