/**
 * @file
 * Inter-WG interference analysis: whole-launch memory-footprint
 * summaries, sync-object aliasing, and a static wait-for graph —
 * plus the commutativity oracle the schedule explorer's partial-order
 * reduction is built on.
 *
 * The per-kernel interval dataflow (analysis/dataflow.hh) is re-run
 * once per work-group with r1 *pinned* to that WG's id
 * (LaunchContext::pinnedWg), so per-WG addresses (flag arrays indexed
 * by wg id) materialize as exact constants and the footprints of
 * different WGs become comparable address sets. Three artifacts come
 * out of that:
 *
 *  - **Footprints**: per WG, the abstract address intervals it may
 *    read / write / wait on (globals only; LDS is WG-private).
 *    Unbounded abstract addresses set a per-class `unbounded` flag
 *    instead of silently widening — every consumer treats unbounded
 *    as "overlaps everything".
 *  - **Wait-for graph**: static wait sites (AtomWait / ArmWait /
 *    spin-wait loops) matched against notify sites (global writes to
 *    an overlapping abstract address). A wait whose every overlapping
 *    notify is *guarded* — dominated by a wait of the notifying WG
 *    that is itself stuck — can never be satisfied; the greatest
 *    fixpoint of that rule is the static circular-wait set, reported
 *    by the "interference" lint pass (code static-circular-wait).
 *    Memory is zero-initialized at launch, so waits whose expected
 *    interval may include 0 (TAS locks waiting for "free") are never
 *    candidates.
 *  - **Commutativity oracle**: maps pairs of scheduler choice points
 *    (site x actor WG at its current pc) to independent/dependent.
 *    Two actions are independent only when both sites are reorderable
 *    tie-breaks, the actors are distinct WGs, and the WGs' *suffix*
 *    footprints (everything reachable from their current pcs) are
 *    bounded and disjoint. Everything else — unknown actors,
 *    unbounded footprints, capped launches — is dependent, which
 *    keeps the reduction sound (explore::exhaustive only ever *skips*
 *    alternatives proven independent).
 */

#ifndef IFP_ANALYSIS_INTERFERENCE_HH
#define IFP_ANALYSIS_INTERFERENCE_HH

#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/dataflow.hh"
#include "isa/kernel.hh"
#include "sim/sched_oracle.hh"

namespace ifp::analysis {

/**
 * A set of abstract addresses: sorted, merged, bounded intervals plus
 * an "anything else" flag for accesses whose abstract address is
 * unbounded.
 */
struct AccessList
{
    std::vector<Interval> intervals;  //!< bounded, sorted by lo, merged
    bool unbounded = false;

    void add(const Interval &addr);
    /** Sort + merge the bounded intervals (idempotent). */
    void normalize();

    bool empty() const { return intervals.empty() && !unbounded; }

    /** May the two sets share an address? Unbounded overlaps all. */
    bool overlaps(const AccessList &o) const;
    bool overlapsInterval(const Interval &addr) const;
};

/** One WG's abstract memory footprint, per access class. */
struct Footprint
{
    AccessList reads;   //!< Ld / Atom / AtomWait / ArmWait addresses
    AccessList writes;  //!< St / mutating Atom / AtomWait addresses
    AccessList waits;   //!< waited addresses (subset of reads)

    /** No access class fell back to the unbounded flag. */
    bool bounded() const
    {
        return !reads.unbounded && !writes.unbounded && !waits.unbounded;
    }

    /** write/read or write/write overlap in either direction. */
    bool conflictsWith(const Footprint &o) const;
};

/** One static wait site of one (pinned) WG. */
struct WaitSite
{
    unsigned wg = 0;
    std::size_t pc = 0;
    Interval addr;      //!< abstract waited address
    Interval expected;  //!< awaited value (top when unknown)
    bool spin = false;  //!< spin-wait loop vs AtomWait/ArmWait
};

/** One may-unblock edge of the static wait-for graph. */
struct WaitForEdge
{
    unsigned waiter = 0;    //!< WG owning the wait site
    unsigned notifier = 0;  //!< WG owning the overlapping write
    std::size_t waitPc = 0;
    std::size_t notifyPc = 0;
    /** The notify sits behind a (candidate-stuck) wait of its WG. */
    bool guarded = false;
};

/**
 * Whole-launch interference facts for one kernel: per-WG footprints,
 * pairwise conflict/aliasing queries, and the static wait-for graph.
 *
 * Launches beyond kMaxAnalyzedWgs work-groups are not analyzed per-WG
 * (capped() == true): every query then answers conservatively
 * (conflicting / dependent) and the circular-wait set is empty.
 */
class InterferenceAnalysis
{
  public:
    /** Per-WG analysis cap; beyond it everything is conservative. */
    static constexpr unsigned kMaxAnalyzedWgs = 64;

    InterferenceAnalysis(const isa::Kernel &kernel,
                         const LaunchContext &launch);

    unsigned numWgs() const { return ctx.numWgs; }
    bool capped() const { return isCapped; }
    const Cfg &cfg() const { return graph; }

    /** Whole-kernel footprint of @p wg (!capped(), wg < numWgs()). */
    const Footprint &footprint(unsigned wg) const { return prints[wg]; }

    /**
     * Footprint of everything @p wg can still execute from @p pc
     * (block granularity, following back edges). Conservatively
     * unbounded for out-of-range pcs or capped launches. Memoized.
     */
    const Footprint &suffixFootprint(unsigned wg, std::size_t pc) const;

    /** May the two WGs' whole-kernel footprints conflict? */
    bool mayConflict(unsigned a, unsigned b) const;

    /** Suffix-footprint conflict from the WGs' current pcs. */
    bool mayConflictFrom(unsigned a, std::size_t pc_a,
                         unsigned b, std::size_t pc_b) const;

    /** May the two WGs wait on / notify a common sync address? */
    bool syncAliases(unsigned a, unsigned b) const;

    /** All static wait sites, ordered by (wg, pc). */
    const std::vector<WaitSite> &waitSites() const { return waits; }

    /** The static wait-for graph (candidate waits x notifies). */
    const std::vector<WaitForEdge> &waitForEdges() const
    {
        return edges;
    }

    /** Wait sites stuck in a static circular wait (the gfp). */
    const std::vector<WaitSite> &circularWaits() const
    {
        return circular;
    }

  private:
    struct NotifySite
    {
        unsigned wg;
        std::size_t pc;
        Interval addr;
    };

    void buildWaitForGraph();

    Cfg graph;
    LaunchContext ctx;
    bool isCapped = false;
    std::vector<std::unique_ptr<Dataflow>> flows;  //!< per WG, pinned
    std::vector<Footprint> prints;                 //!< per WG
    std::vector<std::set<std::size_t>> spinPcs;    //!< per WG
    std::vector<WaitSite> waits;
    std::vector<NotifySite> notifies;
    std::vector<WaitForEdge> edges;
    std::vector<WaitSite> circular;
    Footprint unboundedPrint;  //!< the conservative answer
    mutable std::map<std::pair<unsigned, int>, Footprint> suffixMemo;
};

/**
 * One scheduler choice-point alternative, named by its actor: taking
 * it lets work-group @p wg (currently at @p pc) proceed next at a
 * @p site tie-break. Unknown actors (wg or pc < 0) are never
 * independent of anything.
 */
struct SchedAction
{
    sim::ChoicePoint site = sim::ChoicePoint::DispatchPick;
    int wg = -1;
    int pc = -1;

    bool known() const { return wg >= 0 && pc >= 0; }
    bool operator==(const SchedAction &o) const
    {
        return site == o.site && wg == o.wg && pc == o.pc;
    }
};

/**
 * The independence relation for partial-order reduction, built on one
 * InterferenceAnalysis. independent(a, b) holds only when
 *
 *  - both sites are pure tie-breaks whose alternatives commute at the
 *    machine level (WavefrontIssue, ResumeOrder, SpillScan,
 *    RescueOrder always; DispatchPick only when every WG can be
 *    resident at once, so dispatch order cannot change *who* runs);
 *    HostCu and ResumeVictim choices change machine placement /
 *    monitor state and are always dependent,
 *  - the actors are distinct WGs with known pcs, and
 *  - the two WGs' suffix footprints from those pcs are bounded and
 *    conflict-free.
 *
 * Anything unknown or unbounded falls back to "dependent".
 */
class CommutativityOracle
{
  public:
    CommutativityOracle(const isa::Kernel &kernel,
                        const LaunchContext &launch);

    bool independent(const SchedAction &a, const SchedAction &b) const;

    const InterferenceAnalysis &analysis() const { return ia; }

  private:
    static bool reorderableSite(sim::ChoicePoint site);

    InterferenceAnalysis ia;
    bool dispatchUncontended = false;
};

/**
 * Plain-data interference report for one kernel, the unit behind
 * `ifplint --interference` (text and deterministic JSON).
 */
struct InterferenceSummary
{
    std::string kernel;
    unsigned numWgs = 0;
    bool capped = false;
    std::vector<Footprint> wgFootprints;  //!< empty when capped
    unsigned conflictPairs = 0;
    unsigned syncAliasPairs = 0;
    unsigned independentPairs = 0;
    std::vector<WaitSite> waitSites;
    unsigned waitForEdges = 0;
    unsigned guardedEdges = 0;
    std::vector<WaitSite> circular;
};

InterferenceSummary summarizeInterference(const isa::Kernel &kernel,
                                          const LaunchContext &launch);

/** Render one interval with -inf/+inf sentinels ("[8, 8]"). */
std::string intervalToString(const Interval &iv);

void printInterferenceSummary(const InterferenceSummary &summary,
                              std::ostream &os);

/** Deterministic JSON array over all summaries. */
void writeInterferenceSummariesJson(
    const std::vector<InterferenceSummary> &summaries, std::ostream &os);

} // namespace ifp::analysis

#endif // IFP_ANALYSIS_INTERFERENCE_HH
