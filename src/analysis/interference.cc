/**
 * @file
 * Implementation of the inter-WG interference analysis: per-WG pinned
 * dataflow footprints, the static wait-for graph and its circular-wait
 * greatest fixpoint, the commutativity oracle, and the text/JSON
 * surfaces behind `ifplint --interference`.
 */

#include "analysis/interference.hh"

#include <algorithm>
#include <ostream>
#include <set>

#include "analysis/passes.hh"

namespace ifp::analysis {

using isa::Opcode;

// ---------------------------------------------------------------------
// AccessList / Footprint
// ---------------------------------------------------------------------

void
AccessList::add(const Interval &addr)
{
    if (!addr.bounded()) {
        unbounded = true;
        return;
    }
    intervals.push_back(addr);
}

void
AccessList::normalize()
{
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
              });
    std::vector<Interval> merged;
    for (const Interval &iv : intervals) {
        if (!merged.empty() && iv.lo <= merged.back().hi) {
            merged.back().hi = std::max(merged.back().hi, iv.hi);
        } else {
            merged.push_back(iv);
        }
    }
    intervals = std::move(merged);
}

bool
AccessList::overlaps(const AccessList &o) const
{
    if (empty() || o.empty())
        return false;
    if (unbounded || o.unbounded)
        return true;
    // Both sorted and merged: one linear sweep.
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < intervals.size() && j < o.intervals.size()) {
        if (intervals[i].overlaps(o.intervals[j]))
            return true;
        if (intervals[i].hi < o.intervals[j].hi)
            ++i;
        else
            ++j;
    }
    return false;
}

bool
AccessList::overlapsInterval(const Interval &addr) const
{
    if (empty())
        return false;
    if (unbounded || !addr.bounded())
        return true;
    for (const Interval &iv : intervals) {
        if (iv.overlaps(addr))
            return true;
    }
    return false;
}

bool
Footprint::conflictsWith(const Footprint &o) const
{
    return writes.overlaps(o.reads) || writes.overlaps(o.writes) ||
           o.writes.overlaps(reads);
}

namespace {

/** Fold one global-memory instruction into a footprint. */
void
addAccess(Footprint &fp, const isa::Instr &instr, const Interval &addr,
          bool spin_read)
{
    switch (instr.op) {
      case Opcode::Ld:
        fp.reads.add(addr);
        break;
      case Opcode::St:
        fp.writes.add(addr);
        break;
      case Opcode::Atom:
        fp.reads.add(addr);
        if (instr.aop != mem::AtomicOpcode::Load)
            fp.writes.add(addr);
        break;
      case Opcode::AtomWait:
        fp.reads.add(addr);
        fp.waits.add(addr);
        if (instr.aop != mem::AtomicOpcode::Load)
            fp.writes.add(addr);
        break;
      case Opcode::ArmWait:
        fp.reads.add(addr);
        fp.waits.add(addr);
        break;
      default:
        return;
    }
    if (spin_read)
        fp.waits.add(addr);
}

/** True when the write at @p instr can satisfy a waited condition. */
bool
isNotify(const isa::Instr &instr)
{
    if (instr.op == Opcode::St)
        return true;
    if (instr.op == Opcode::Atom || instr.op == Opcode::AtomWait)
        return instr.aop != mem::AtomicOpcode::Load;
    return false;
}

/**
 * Awaited-value interval of a spin wait: the loop exits through an
 * equality compare between the global read's value and the expected
 * operand. Only the wait-for-equal polarity (exit taken when the
 * compare holds for CmpEq, when it fails for CmpNe) yields an
 * interval; everything else is top (unknown).
 */
Interval
spinExpected(const Dataflow &df, const Cfg &cfg, const SpinWait &sw)
{
    const auto &code = cfg.code();
    const isa::Instr &br = code[sw.branchPc];
    if (br.op != Opcode::Bz && br.op != Opcode::Bnz)
        return Interval::top();
    int target = cfg.blockOf(static_cast<std::size_t>(br.imm));
    if (target < 0)
        return Interval::top();
    bool targetInLoop = sw.loop->contains(target);
    // Bz jumps on false (r == 0): the loop exits on a true compare
    // exactly when the jump target stays inside the loop.
    bool exitOnTrue =
        br.op == Opcode::Bz ? targetInLoop : !targetInLoop;
    for (int d : df.reachingDefs(sw.branchPc, br.src0)) {
        if (d < 0)
            continue;
        const isa::Instr &cmp = code[d];
        if (cmp.op != Opcode::CmpEq && cmp.op != Opcode::CmpNe)
            continue;
        bool waitForEqual = (cmp.op == Opcode::CmpEq) == exitOnTrue;
        if (!waitForEqual)
            continue;
        auto fed_by_read = [&](isa::Reg reg) {
            for (int rd : df.reachingDefs(d, reg)) {
                if (rd == static_cast<int>(sw.readPc))
                    return true;
            }
            return false;
        };
        if (fed_by_read(cmp.src0)) {
            return cmp.useImm ? Interval::constant(cmp.imm)
                              : df.value(d, cmp.src1);
        }
        if (!cmp.useImm && fed_by_read(cmp.src1))
            return df.value(d, cmp.src0);
    }
    return Interval::top();
}

/**
 * Candidate for the stuck set: the waited address is a concrete
 * object and the awaited value provably differs from the launch-time
 * zero initialization (otherwise the wait can satisfy immediately).
 */
bool
candidateStuck(const WaitSite &w)
{
    if (!w.addr.bounded())
        return false;
    return !w.expected.overlaps(Interval::constant(0));
}

/** Every path to @p pc executes the wait at @p w first. */
bool
waitDominates(const Cfg &cfg, const WaitSite &w, std::size_t pc)
{
    int wb = cfg.blockOf(w.pc);
    int nb = cfg.blockOf(pc);
    if (wb < 0 || nb < 0)
        return false;
    if (wb == nb)
        return w.pc < pc;
    return cfg.dominates(wb, nb);
}

} // anonymous namespace

// ---------------------------------------------------------------------
// InterferenceAnalysis
// ---------------------------------------------------------------------

InterferenceAnalysis::InterferenceAnalysis(const isa::Kernel &kernel,
                                           const LaunchContext &launch)
    : graph(kernel.code), ctx(launch)
{
    unboundedPrint.reads.unbounded = true;
    unboundedPrint.writes.unbounded = true;
    unboundedPrint.waits.unbounded = true;

    isCapped = ctx.numWgs > kMaxAnalyzedWgs;
    if (isCapped)
        return;

    std::vector<std::size_t> reachable_pcs;
    for (std::size_t pc = 0; pc < graph.code().size(); ++pc) {
        int blk = graph.blockOf(pc);
        if (blk >= 0 && graph.block(blk).reachable)
            reachable_pcs.push_back(pc);
    }

    for (unsigned wg = 0; wg < ctx.numWgs; ++wg) {
        LaunchContext pinned = ctx;
        pinned.pinnedWg = static_cast<int>(wg);
        flows.push_back(std::make_unique<Dataflow>(graph, pinned));
        const Dataflow &df = *flows.back();
        PassContext pctx{kernel, graph, df};
        std::vector<SpinWait> spins = findSpinWaits(pctx);
        spinPcs.emplace_back();
        for (const SpinWait &sw : spins)
            spinPcs.back().insert(sw.readPc);

        Footprint fp;
        for (std::size_t pc : reachable_pcs) {
            const isa::Instr &instr = graph.code()[pc];
            if (!InstrEffects::hasGlobalAddress(instr))
                continue;
            addAccess(fp, instr, df.addressOf(pc),
                      spinPcs[wg].count(pc) > 0);
        }
        fp.reads.normalize();
        fp.writes.normalize();
        fp.waits.normalize();
        prints.push_back(std::move(fp));

        // Wait sites, in pc order per WG.
        std::vector<WaitSite> wg_waits;
        for (std::size_t pc : reachable_pcs) {
            const isa::Instr &instr = graph.code()[pc];
            if (instr.op == Opcode::AtomWait) {
                wg_waits.push_back({wg, pc, df.addressOf(pc),
                                    df.value(pc, instr.src2), false});
            } else if (instr.op == Opcode::ArmWait) {
                wg_waits.push_back({wg, pc, df.addressOf(pc),
                                    df.value(pc, instr.src1), false});
            }
        }
        for (const SpinWait &sw : spins) {
            wg_waits.push_back({wg, sw.readPc, df.addressOf(sw.readPc),
                                spinExpected(df, graph, sw), true});
        }
        std::sort(wg_waits.begin(), wg_waits.end(),
                  [](const WaitSite &a, const WaitSite &b) {
                      return a.pc < b.pc;
                  });
        waits.insert(waits.end(), wg_waits.begin(), wg_waits.end());

        for (std::size_t pc : reachable_pcs) {
            const isa::Instr &instr = graph.code()[pc];
            if (isNotify(instr))
                notifies.push_back({wg, pc, df.addressOf(pc)});
        }
    }

    buildWaitForGraph();
}

void
InterferenceAnalysis::buildWaitForGraph()
{
    // Greatest fixpoint of "stuck": start from every candidate wait
    // and remove any wait some WG can notify without first passing a
    // wait that is itself still stuck.
    std::vector<char> stuck(waits.size(), 0);
    for (std::size_t i = 0; i < waits.size(); ++i)
        stuck[i] = candidateStuck(waits[i]) ? 1 : 0;

    auto guarded_by_stuck = [&](const NotifySite &n) {
        for (std::size_t j = 0; j < waits.size(); ++j) {
            if (stuck[j] && waits[j].wg == n.wg &&
                waitDominates(graph, waits[j], n.pc)) {
                return true;
            }
        }
        return false;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < waits.size(); ++i) {
            if (!stuck[i])
                continue;
            for (const NotifySite &n : notifies) {
                bool may_overlap = !n.addr.bounded() ||
                                   n.addr.overlaps(waits[i].addr);
                if (!may_overlap)
                    continue;
                if (!guarded_by_stuck(n)) {
                    stuck[i] = 0;
                    changed = true;
                    break;
                }
            }
        }
    }

    // Report edges relative to the *final* stuck set, waiter-major.
    for (std::size_t i = 0; i < waits.size(); ++i) {
        if (!candidateStuck(waits[i]))
            continue;
        for (const NotifySite &n : notifies) {
            bool may_overlap = !n.addr.bounded() ||
                               n.addr.overlaps(waits[i].addr);
            if (!may_overlap || n.wg == waits[i].wg)
                continue;
            edges.push_back({waits[i].wg, n.wg, waits[i].pc, n.pc,
                             guarded_by_stuck(n)});
        }
        if (stuck[i])
            circular.push_back(waits[i]);
    }
}

const Footprint &
InterferenceAnalysis::suffixFootprint(unsigned wg, std::size_t pc) const
{
    int blk = graph.blockOf(pc);
    if (isCapped || wg >= ctx.numWgs || blk < 0)
        return unboundedPrint;
    auto key = std::make_pair(wg, blk);
    auto it = suffixMemo.find(key);
    if (it != suffixMemo.end())
        return it->second;

    std::vector<bool> live = graph.reachableFrom(blk, /*barrier=*/-1,
                                                 /*followBack=*/true);
    const Dataflow &df = *flows[wg];
    Footprint fp;
    for (std::size_t p = 0; p < graph.code().size(); ++p) {
        int b = graph.blockOf(p);
        if (b < 0 || !graph.block(b).reachable || !live[b])
            continue;
        const isa::Instr &instr = graph.code()[p];
        if (!InstrEffects::hasGlobalAddress(instr))
            continue;
        addAccess(fp, instr, df.addressOf(p), spinPcs[wg].count(p) > 0);
    }
    fp.reads.normalize();
    fp.writes.normalize();
    fp.waits.normalize();
    return suffixMemo.emplace(key, std::move(fp)).first->second;
}

bool
InterferenceAnalysis::mayConflict(unsigned a, unsigned b) const
{
    if (isCapped || a == b || a >= ctx.numWgs || b >= ctx.numWgs)
        return true;
    return prints[a].conflictsWith(prints[b]);
}

bool
InterferenceAnalysis::mayConflictFrom(unsigned a, std::size_t pc_a,
                                      unsigned b, std::size_t pc_b) const
{
    if (isCapped || a == b || a >= ctx.numWgs || b >= ctx.numWgs)
        return true;
    return suffixFootprint(a, pc_a)
        .conflictsWith(suffixFootprint(b, pc_b));
}

bool
InterferenceAnalysis::syncAliases(unsigned a, unsigned b) const
{
    if (isCapped || a >= ctx.numWgs || b >= ctx.numWgs)
        return true;
    const Footprint &fa = prints[a];
    const Footprint &fb = prints[b];
    return fa.waits.overlaps(fb.writes) || fa.waits.overlaps(fb.waits) ||
           fb.waits.overlaps(fa.writes);
}

// ---------------------------------------------------------------------
// CommutativityOracle
// ---------------------------------------------------------------------

CommutativityOracle::CommutativityOracle(const isa::Kernel &kernel,
                                         const LaunchContext &launch)
    : ia(kernel, launch)
{
    // Dispatch order is a pure tie-break only when every WG can be
    // resident at once; under contention it decides *who* occupies
    // the machine, which deadlock/livelock verdicts depend on.
    dispatchUncontended = launch.maxResidentWgs >= launch.numWgs;
}

bool
CommutativityOracle::reorderableSite(sim::ChoicePoint site)
{
    switch (site) {
      case sim::ChoicePoint::WavefrontIssue:
      case sim::ChoicePoint::ResumeOrder:
      case sim::ChoicePoint::SpillScan:
      case sim::ChoicePoint::RescueOrder:
        return true;
      default:
        return false;
    }
}

bool
CommutativityOracle::independent(const SchedAction &a,
                                 const SchedAction &b) const
{
    if (ia.capped() || !a.known() || !b.known() || a.wg == b.wg)
        return false;
    auto site_ok = [&](sim::ChoicePoint site) {
        if (site == sim::ChoicePoint::DispatchPick)
            return dispatchUncontended;
        return reorderableSite(site);
    };
    if (!site_ok(a.site) || !site_ok(b.site))
        return false;
    return !ia.mayConflictFrom(static_cast<unsigned>(a.wg),
                               static_cast<std::size_t>(a.pc),
                               static_cast<unsigned>(b.wg),
                               static_cast<std::size_t>(b.pc));
}

// ---------------------------------------------------------------------
// The "interference" lint pass (static-circular-wait)
// ---------------------------------------------------------------------

void
runInterferencePass(const PassContext &ctx, std::vector<Diagnostic> &out)
{
    InterferenceAnalysis ia(ctx.kernel, ctx.df.launch());
    if (ia.capped() || ia.circularWaits().empty())
        return;

    // One diagnostic per wait pc; the WGs stuck there are aggregated.
    std::map<std::size_t, std::vector<unsigned>> by_pc;
    for (const WaitSite &w : ia.circularWaits())
        by_pc[w.pc].push_back(w.wg);

    for (const auto &[pc, wgs] : by_pc) {
        std::string who;
        for (unsigned wg : wgs) {
            if (!who.empty())
                who += ",";
            who += std::to_string(wg);
        }
        Diagnostic d;
        d.pass = "interference";
        d.code = "static-circular-wait";
        d.severity = Severity::Warning;
        d.pc = static_cast<int>(pc);
        d.message =
            "WG " + who + " wait(s) here for a value no other WG can "
            "publish first: every overlapping notify site is behind a "
            "wait that is itself stuck (static circular wait)";
        d.disasm = isa::disassemble(ctx.kernel.code[pc]);
        d.hint = "publish (store/atomic) before waiting, or break the "
                 "wait cycle so some WG's notify is reachable without "
                 "waiting";
        out.push_back(std::move(d));
    }
}

// ---------------------------------------------------------------------
// Summaries: ifplint --interference text + JSON
// ---------------------------------------------------------------------

std::string
intervalToString(const Interval &iv)
{
    auto end = [](std::int64_t v) -> std::string {
        if (v == std::numeric_limits<std::int64_t>::min())
            return "-inf";
        if (v == std::numeric_limits<std::int64_t>::max())
            return "+inf";
        return std::to_string(v);
    };
    std::string s = "[";
    s += end(iv.lo);
    s += ", ";
    s += end(iv.hi);
    s += "]";
    return s;
}

namespace {

std::string
accessListToString(const AccessList &al)
{
    std::string s = "{";
    for (std::size_t i = 0; i < al.intervals.size(); ++i) {
        if (i)
            s += " ";
        s += intervalToString(al.intervals[i]);
    }
    if (al.unbounded)
        s += std::string(al.intervals.empty() ? "" : " ") + "unbounded";
    return s + "}";
}

} // anonymous namespace

InterferenceSummary
summarizeInterference(const isa::Kernel &kernel,
                      const LaunchContext &launch)
{
    InterferenceAnalysis ia(kernel, launch);
    InterferenceSummary s;
    s.kernel = kernel.name;
    s.numWgs = launch.numWgs;
    s.capped = ia.capped();
    if (s.capped)
        return s;
    for (unsigned wg = 0; wg < s.numWgs; ++wg)
        s.wgFootprints.push_back(ia.footprint(wg));
    for (unsigned a = 0; a < s.numWgs; ++a) {
        for (unsigned b = a + 1; b < s.numWgs; ++b) {
            if (ia.mayConflict(a, b))
                ++s.conflictPairs;
            else
                ++s.independentPairs;
            if (ia.syncAliases(a, b))
                ++s.syncAliasPairs;
        }
    }
    s.waitSites = ia.waitSites();
    s.waitForEdges = static_cast<unsigned>(ia.waitForEdges().size());
    for (const WaitForEdge &e : ia.waitForEdges())
        s.guardedEdges += e.guarded ? 1 : 0;
    s.circular = ia.circularWaits();
    return s;
}

void
printInterferenceSummary(const InterferenceSummary &s, std::ostream &os)
{
    os << s.kernel << ": " << s.numWgs << " WGs";
    if (s.capped) {
        os << " (beyond per-WG analysis cap; all queries conservative)\n";
        return;
    }
    os << ", " << s.conflictPairs << " conflicting / "
       << s.independentPairs << " independent WG pairs, "
       << s.syncAliasPairs << " sync-aliasing pairs\n";
    const unsigned shown =
        std::min<unsigned>(8, static_cast<unsigned>(s.wgFootprints.size()));
    for (unsigned wg = 0; wg < shown; ++wg) {
        const Footprint &fp = s.wgFootprints[wg];
        os << "  wg " << wg << ": reads "
           << accessListToString(fp.reads) << " writes "
           << accessListToString(fp.writes) << " waits "
           << accessListToString(fp.waits) << "\n";
    }
    if (s.wgFootprints.size() > shown) {
        os << "  ... (" << s.wgFootprints.size() - shown
           << " more WGs)\n";
    }
    os << "  wait-for graph: " << s.waitSites.size() << " wait sites, "
       << s.waitForEdges << " may-unblock edges (" << s.guardedEdges
       << " guarded)\n";
    for (const WaitSite &w : s.circular) {
        os << "  STATIC CIRCULAR WAIT: wg " << w.wg << " pc " << w.pc
           << (w.spin ? " (spin)" : "") << " addr "
           << intervalToString(w.addr) << " expects "
           << intervalToString(w.expected) << "\n";
    }
}

namespace {

void
writeAccessListJson(const AccessList &al, std::ostream &os)
{
    os << "{\"intervals\": [";
    for (std::size_t i = 0; i < al.intervals.size(); ++i) {
        if (i)
            os << ", ";
        os << "[" << al.intervals[i].lo << ", " << al.intervals[i].hi
           << "]";
    }
    os << "], \"unbounded\": " << (al.unbounded ? "true" : "false")
       << "}";
}

void
writeWaitSiteJson(const WaitSite &w, std::ostream &os)
{
    os << "{\"wg\": " << w.wg << ", \"pc\": " << w.pc
       << ", \"spin\": " << (w.spin ? "true" : "false")
       << ", \"addr\": \"" << intervalToString(w.addr)
       << "\", \"expected\": \"" << intervalToString(w.expected)
       << "\"}";
}

} // anonymous namespace

void
writeInterferenceSummariesJson(
    const std::vector<InterferenceSummary> &summaries, std::ostream &os)
{
    os << "[\n";
    for (std::size_t k = 0; k < summaries.size(); ++k) {
        const InterferenceSummary &s = summaries[k];
        os << "  {\"kernel\": \"" << s.kernel << "\", \"numWgs\": "
           << s.numWgs << ", \"capped\": "
           << (s.capped ? "true" : "false");
        if (!s.capped) {
            os << ",\n   \"wgs\": [";
            for (std::size_t wg = 0; wg < s.wgFootprints.size(); ++wg) {
                const Footprint &fp = s.wgFootprints[wg];
                os << (wg ? ",\n           " : "") << "{\"wg\": " << wg
                   << ", \"reads\": ";
                writeAccessListJson(fp.reads, os);
                os << ", \"writes\": ";
                writeAccessListJson(fp.writes, os);
                os << ", \"waits\": ";
                writeAccessListJson(fp.waits, os);
                os << "}";
            }
            os << "],\n   \"conflictPairs\": " << s.conflictPairs
               << ", \"independentPairs\": " << s.independentPairs
               << ", \"syncAliasPairs\": " << s.syncAliasPairs
               << ", \"waitForEdges\": " << s.waitForEdges
               << ", \"guardedEdges\": " << s.guardedEdges;
            os << ",\n   \"waitSites\": [";
            for (std::size_t i = 0; i < s.waitSites.size(); ++i) {
                if (i)
                    os << ", ";
                writeWaitSiteJson(s.waitSites[i], os);
            }
            os << "],\n   \"circularWaits\": [";
            for (std::size_t i = 0; i < s.circular.size(); ++i) {
                if (i)
                    os << ", ";
                writeWaitSiteJson(s.circular[i], os);
            }
            os << "]";
        }
        os << "}" << (k + 1 < summaries.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

} // namespace ifp::analysis
