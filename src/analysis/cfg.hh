/**
 * @file
 * Control-flow graph over isa::Kernel code.
 *
 * Basic blocks are built from the branch structure (Bz/Bnz/Br leaders
 * and targets); on top of them the Cfg provides reachability, reverse
 * postorder, dominators, postdominators (against a virtual exit that
 * every Halt block and every fall-off-the-end block feeds), and
 * natural loops found from back edges. Kernels are tiny (tens to a
 * few hundred instructions), so everything uses the simple iterative
 * algorithms.
 *
 * Out-of-range branch targets are tolerated: the edge is dropped so
 * the structural verifier can report it as a diagnostic instead of
 * the analysis crashing.
 */

#ifndef IFP_ANALYSIS_CFG_HH
#define IFP_ANALYSIS_CFG_HH

#include <cstddef>
#include <vector>

#include "isa/kernel.hh"

namespace ifp::analysis {

/** One basic block: the half-open pc range [first, last]. */
struct BasicBlock
{
    int id = 0;
    std::size_t first = 0;  //!< pc of the first instruction
    std::size_t last = 0;   //!< pc of the last instruction (inclusive)
    std::vector<int> succs;
    std::vector<int> preds;
    bool reachable = false;
    /** Control flow can leave the last pc past the end of the code. */
    bool fallsOffEnd = false;
};

/** A natural loop discovered from a back edge. */
struct Loop
{
    int head = 0;               //!< loop header block
    int backEdgeSrc = 0;        //!< block whose edge to head closes it
    std::vector<int> blocks;    //!< all member blocks (sorted)

    bool contains(int block) const;
};

/** The control-flow graph of one kernel. */
class Cfg
{
  public:
    explicit Cfg(const std::vector<isa::Instr> &code);

    const std::vector<isa::Instr> &code() const { return instrs; }
    const std::vector<BasicBlock> &blocks() const { return bbs; }
    const BasicBlock &block(int id) const { return bbs[id]; }
    std::size_t numBlocks() const { return bbs.size(); }

    /** Block containing @p pc (-1 when pc is out of range). */
    int blockOf(std::size_t pc) const;

    /** Reachable blocks in reverse postorder from the entry. */
    const std::vector<int> &reversePostorder() const { return rpo; }

    /**
     * Immediate dominator per block; -1 for the entry and for
     * unreachable blocks.
     */
    int idom(int block) const { return idoms[block]; }

    /** True when @p a dominates @p b (reflexive). */
    bool dominates(int a, int b) const;

    /**
     * Immediate postdominator per block; -1 when the block is the
     * virtual exit's only feeder or cannot reach the exit.
     */
    int ipdom(int block) const { return ipdoms[block]; }

    /**
     * True when every path from block @p from to the kernel's exit
     * passes through block @p through (reflexive).
     */
    bool postDominates(int through, int from) const;

    /** Natural loops (one per back edge), outermost first. */
    const std::vector<Loop> &loops() const { return loopList; }

    /** Innermost loop containing @p block, or nullptr. */
    const Loop *innermostLoop(int block) const;

    /**
     * Blocks reachable from @p from following forward edges only,
     * optionally treating @p barrier as removed (pass -1 for none).
     * Used for divergent-region queries (reachable-before-reconverge)
     * and DAG precedes-on-some-path queries.
     */
    std::vector<bool> reachableFrom(int from, int barrier,
                                    bool follow_back_edges) const;

    /** True when the edge src->dst is a back edge (dst dominates src). */
    bool isBackEdge(int src, int dst) const;

  private:
    void buildBlocks();
    void buildEdges();
    void computeReachability();
    void computeDominators();
    void computePostDominators();
    void findLoops();

    std::vector<isa::Instr> instrs;
    std::vector<BasicBlock> bbs;
    std::vector<int> blockIndex;  //!< pc -> block id
    std::vector<int> rpo;
    std::vector<int> idoms;
    std::vector<int> ipdoms;
    std::vector<Loop> loopList;
};

} // namespace ifp::analysis

#endif // IFP_ANALYSIS_CFG_HH
