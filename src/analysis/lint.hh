/**
 * @file
 * Lint driver: run every verifier pass over a kernel and collect the
 * report.
 *
 * The analysis layer depends only on isa/ and sim/; callers that know
 * the machine (tools/ifplint, the dispatcher's lintBeforeDispatch
 * hook) describe the launch with a plain LaunchContext, for which
 * makeLaunchContext() mirrors the dispatcher's Baseline occupancy
 * arithmetic (ComputeUnit::canHost).
 *
 * Kernel-scoped suppressions (isa::Kernel::lintSuppressions) are
 * applied here: a matching diagnostic stays in the report but is
 * demoted to a suppressed Note, so --Werror gates can hold while the
 * intentionally racy emitters (the MonR/MonRS window-of-vulnerability
 * patterns) stay annotated rather than hidden.
 *
 * Reports serialize to JSON deterministically: diagnostics are sorted
 * by (pc, pass, code, message) and all output is plain ASCII, so two
 * runs over the same kernels are byte-identical.
 */

#ifndef IFP_ANALYSIS_LINT_HH
#define IFP_ANALYSIS_LINT_HH

#include <iosfwd>
#include <vector>

#include "analysis/dataflow.hh"
#include "analysis/diagnostics.hh"
#include "isa/kernel.hh"

namespace ifp::analysis {

/**
 * WGs of @p kernel concurrently resident under Baseline (no swap):
 * min(G, CUs * per-CU occupancy), with per-CU occupancy bounded by
 * the kernel's maxWgsPerCu, the SIMD wavefront slots and the LDS
 * capacity — the same limits ComputeUnit::canHost enforces.
 */
unsigned baselineResidency(const isa::Kernel &kernel, unsigned num_cus,
                           unsigned simds_per_cu,
                           unsigned wavefronts_per_simd,
                           unsigned lds_bytes_per_cu);

/** Build the LaunchContext for @p kernel on the described machine. */
LaunchContext makeLaunchContext(const isa::Kernel &kernel,
                                unsigned num_cus, unsigned simds_per_cu,
                                unsigned wavefronts_per_simd,
                                unsigned lds_bytes_per_cu);

/** Run all passes over @p kernel and return the (sorted) report. */
Report runLint(const isa::Kernel &kernel, const LaunchContext &launch);

/** Human-readable report (one line per diagnostic plus hints). */
void printReport(const Report &report, std::ostream &os);

/** Deterministic JSON for a batch of reports. */
void writeReportsJson(const std::vector<Report> &reports,
                      std::ostream &os);

} // namespace ifp::analysis

#endif // IFP_ANALYSIS_LINT_HH
