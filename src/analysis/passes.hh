/**
 * @file
 * The diagnostic passes of the static kernel verifier (ifplint).
 *
 * Each pass walks the Cfg/Dataflow results of one kernel and appends
 * Diagnostics. Pass catalogue (pass name / codes):
 *
 *  - "structural": branch-range, fall-off-end, no-halt, unreachable,
 *    use-before-def, atom-shape, valu-cycles, sleep-cycles, div-zero,
 *    writes-r0 — well-formedness of the instruction stream.
 *  - "barrier-divergence": bar-divergence — a Bar reachable from a
 *    divergent branch before its reconvergence point (wavefronts of
 *    one WG can disagree about reaching the barrier).
 *  - "wov": wov — the paper's window of vulnerability: a load-class
 *    check of an address guards a branch, and a later ArmWait arms
 *    the monitor on the same abstract address as a *separate* step;
 *    a notification between check and arm is lost (Figure 10 top,
 *    provoked dynamically by test_window_of_vulnerability.cc).
 *  - "lost-wakeup": lost-wakeup — a plain St to an address some path
 *    waits on via AtomWait/ArmWait; plain stores do not notify the
 *    monitor.
 *  - "progress": wait-no-notify, insufficient-residency — the static
 *    inter-WG progress check. Spin-wait sites (loops whose exit
 *    condition consumes a global read) are matched against notify
 *    sites (global writes to an overlapping abstract address);
 *    reaching a notify site may require passing counter gates
 *    (a branch on `fetch-add result == k`, i.e. k+1 arrivals).
 *    Multiplying the gates on a notifier's path gives the number of
 *    WGs that must be *concurrently resident* for the notify to ever
 *    execute under a non-yielding policy; when that exceeds Baseline
 *    occupancy, the kernel deadlocks (paper Figure 1). Only kernels
 *    with no waiting instructions (AtomWait/ArmWait) are checked —
 *    waiting WGs can be swapped out, which is the paper's fix.
 */

#ifndef IFP_ANALYSIS_PASSES_HH
#define IFP_ANALYSIS_PASSES_HH

#include <vector>

#include "analysis/dataflow.hh"
#include "analysis/diagnostics.hh"
#include "isa/kernel.hh"

namespace ifp::analysis {

/** Everything a pass needs about one kernel. */
struct PassContext
{
    const isa::Kernel &kernel;
    const Cfg &cfg;
    const Dataflow &df;
};

void runStructuralPass(const PassContext &ctx,
                       std::vector<Diagnostic> &out);
void runBarrierDivergencePass(const PassContext &ctx,
                              std::vector<Diagnostic> &out);
void runWovPass(const PassContext &ctx, std::vector<Diagnostic> &out);
void runLostWakeupPass(const PassContext &ctx,
                       std::vector<Diagnostic> &out);
void runProgressPass(const PassContext &ctx,
                     std::vector<Diagnostic> &out);

/** A spin-wait: a loop whose exit consumes a global read's value. */
struct SpinWait
{
    std::size_t readPc;
    std::size_t branchPc;
    Interval addr;
    const Loop *loop;
};

/**
 * Spin-wait sites of one kernel (shared between the progress pass and
 * the interference analysis, which re-runs it per pinned WG).
 */
std::vector<SpinWait> findSpinWaits(const PassContext &ctx);

/**
 * The inter-WG interference pass ("interference" /
 * static-circular-wait): builds per-WG footprints and the static
 * wait-for graph (analysis/interference.hh) and reports wait sites
 * provably stuck in a circular wait. Skipped (no diagnostics) when
 * the launch exceeds the per-WG analysis cap.
 */
void runInterferencePass(const PassContext &ctx,
                         std::vector<Diagnostic> &out);

} // namespace ifp::analysis

#endif // IFP_ANALYSIS_PASSES_HH
