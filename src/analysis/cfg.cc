#include "analysis/cfg.hh"

#include <algorithm>
#include <deque>

namespace ifp::analysis {

using isa::Opcode;

namespace {

bool
endsBlock(const isa::Instr &instr)
{
    return isBranch(instr) || instr.op == Opcode::Halt;
}

bool
targetInRange(const isa::Instr &instr, std::size_t code_size)
{
    return instr.imm >= 0 &&
           instr.imm < static_cast<std::int64_t>(code_size);
}

} // anonymous namespace

bool
Loop::contains(int block) const
{
    return std::binary_search(blocks.begin(), blocks.end(), block);
}

Cfg::Cfg(const std::vector<isa::Instr> &code) : instrs(code)
{
    buildBlocks();
    buildEdges();
    computeReachability();
    computeDominators();
    computePostDominators();
    findLoops();
}

void
Cfg::buildBlocks()
{
    const std::size_t n = instrs.size();
    blockIndex.assign(n, -1);
    if (n == 0)
        return;

    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (std::size_t pc = 0; pc < n; ++pc) {
        const isa::Instr &in = instrs[pc];
        if (isBranch(in) && targetInRange(in, n))
            leader[static_cast<std::size_t>(in.imm)] = true;
        if (endsBlock(in) && pc + 1 < n)
            leader[pc + 1] = true;
    }

    for (std::size_t pc = 0; pc < n; ++pc) {
        if (leader[pc]) {
            BasicBlock bb;
            bb.id = static_cast<int>(bbs.size());
            bb.first = pc;
            bbs.push_back(bb);
        }
        blockIndex[pc] = static_cast<int>(bbs.size()) - 1;
        bbs.back().last = pc;
    }
}

void
Cfg::buildEdges()
{
    const std::size_t n = instrs.size();
    for (BasicBlock &bb : bbs) {
        const isa::Instr &in = instrs[bb.last];
        auto addSucc = [&](int succ) {
            if (std::find(bb.succs.begin(), bb.succs.end(), succ) ==
                bb.succs.end()) {
                bb.succs.push_back(succ);
            }
        };

        if (in.op == Opcode::Halt)
            continue;
        if (isBranch(in)) {
            // Out-of-range targets get no edge; the structural pass
            // reports them.
            if (targetInRange(in, n))
                addSucc(blockIndex[static_cast<std::size_t>(in.imm)]);
            if (in.op == Opcode::Br)
                continue;
        }
        if (bb.last + 1 < n)
            addSucc(blockIndex[bb.last + 1]);
        else
            bb.fallsOffEnd = true;
    }
    for (const BasicBlock &bb : bbs) {
        for (int succ : bb.succs)
            bbs[succ].preds.push_back(bb.id);
    }
}

void
Cfg::computeReachability()
{
    if (bbs.empty())
        return;
    // Iterative DFS producing reverse postorder.
    std::vector<int> state(bbs.size(), 0);  // 0 new, 1 open, 2 done
    std::vector<int> postorder;
    std::vector<std::pair<int, std::size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
        auto &[id, next] = stack.back();
        if (next < bbs[id].succs.size()) {
            int succ = bbs[id].succs[next++];
            if (state[succ] == 0) {
                state[succ] = 1;
                stack.emplace_back(succ, 0);
            }
        } else {
            state[id] = 2;
            postorder.push_back(id);
            stack.pop_back();
        }
    }
    rpo.assign(postorder.rbegin(), postorder.rend());
    for (int id : rpo)
        bbs[id].reachable = true;
}

void
Cfg::computeDominators()
{
    // Cooper/Harvey/Kennedy iterative idom algorithm over the RPO.
    idoms.assign(bbs.size(), -1);
    if (rpo.empty())
        return;
    std::vector<int> rpoNumber(bbs.size(), -1);
    for (std::size_t i = 0; i < rpo.size(); ++i)
        rpoNumber[rpo[i]] = static_cast<int>(i);

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoNumber[a] > rpoNumber[b])
                a = idoms[a];
            while (rpoNumber[b] > rpoNumber[a])
                b = idoms[b];
        }
        return a;
    };

    idoms[rpo[0]] = rpo[0];
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 1; i < rpo.size(); ++i) {
            int id = rpo[i];
            int new_idom = -1;
            for (int pred : bbs[id].preds) {
                if (!bbs[pred].reachable || idoms[pred] < 0)
                    continue;
                new_idom = new_idom < 0 ? pred
                                        : intersect(pred, new_idom);
            }
            if (new_idom >= 0 && idoms[id] != new_idom) {
                idoms[id] = new_idom;
                changed = true;
            }
        }
    }
    idoms[rpo[0]] = -1;  // entry has no idom
}

bool
Cfg::dominates(int a, int b) const
{
    for (int walk = b; walk >= 0; walk = idoms[walk]) {
        if (walk == a)
            return true;
    }
    return false;
}

void
Cfg::computePostDominators()
{
    // Same algorithm on the reverse graph, against a virtual exit
    // (id = numBlocks) fed by Halt blocks, fall-off-the-end blocks
    // and dead ends (dropped out-of-range targets).
    const int n = static_cast<int>(bbs.size());
    const int exitId = n;
    ipdoms.assign(bbs.size(), -1);
    if (bbs.empty())
        return;

    std::vector<std::vector<int>> rsuccs(n + 1), rpreds(n + 1);
    for (const BasicBlock &bb : bbs) {
        if (!bb.reachable)
            continue;
        std::vector<int> succs = bb.succs;
        if (succs.empty() || bb.fallsOffEnd)
            succs.push_back(exitId);
        for (int succ : succs) {
            rsuccs[succ].push_back(bb.id);  // reverse edge succ -> bb
            rpreds[bb.id].push_back(succ);
        }
    }

    // RPO of the reverse graph from the virtual exit.
    std::vector<int> state(n + 1, 0);
    std::vector<int> postorder;
    std::vector<std::pair<int, std::size_t>> stack;
    stack.emplace_back(exitId, 0);
    state[exitId] = 1;
    while (!stack.empty()) {
        auto &[id, next] = stack.back();
        if (next < rsuccs[id].size()) {
            int succ = rsuccs[id][next++];
            if (state[succ] == 0) {
                state[succ] = 1;
                stack.emplace_back(succ, 0);
            }
        } else {
            state[id] = 2;
            postorder.push_back(id);
            stack.pop_back();
        }
    }
    std::vector<int> order(postorder.rbegin(), postorder.rend());
    std::vector<int> number(n + 1, -1);
    for (std::size_t i = 0; i < order.size(); ++i)
        number[order[i]] = static_cast<int>(i);

    std::vector<int> pd(n + 1, -1);
    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (number[a] > number[b])
                a = pd[a];
            while (number[b] > number[a])
                b = pd[b];
        }
        return a;
    };

    pd[exitId] = exitId;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 1; i < order.size(); ++i) {
            int id = order[i];
            int new_pd = -1;
            for (int pred : rpreds[id]) {
                if (number[pred] < 0 || pd[pred] < 0)
                    continue;
                new_pd = new_pd < 0 ? pred : intersect(pred, new_pd);
            }
            if (new_pd >= 0 && pd[id] != new_pd) {
                pd[id] = new_pd;
                changed = true;
            }
        }
    }
    for (int id = 0; id < n; ++id)
        ipdoms[id] = pd[id] == exitId ? exitId : pd[id];
}

bool
Cfg::postDominates(int through, int from) const
{
    const int exitId = static_cast<int>(bbs.size());
    for (int walk = from; walk >= 0 && walk != exitId;
         walk = ipdoms[walk]) {
        if (walk == through)
            return true;
    }
    return false;
}

void
Cfg::findLoops()
{
    for (const BasicBlock &bb : bbs) {
        if (!bb.reachable)
            continue;
        for (int succ : bb.succs) {
            if (!dominates(succ, bb.id))
                continue;
            Loop loop;
            loop.head = succ;
            loop.backEdgeSrc = bb.id;
            // Natural loop: head plus everything reaching the back
            // edge source without passing through the head.
            std::vector<bool> in(bbs.size(), false);
            in[succ] = true;
            std::deque<int> work;
            if (!in[bb.id]) {
                in[bb.id] = true;
                work.push_back(bb.id);
            }
            while (!work.empty()) {
                int id = work.front();
                work.pop_front();
                for (int pred : bbs[id].preds) {
                    if (!in[pred]) {
                        in[pred] = true;
                        work.push_back(pred);
                    }
                }
            }
            for (std::size_t i = 0; i < bbs.size(); ++i) {
                if (in[i])
                    loop.blocks.push_back(static_cast<int>(i));
            }
            loopList.push_back(std::move(loop));
        }
    }
    // Outermost (largest) first, then by header for determinism.
    std::sort(loopList.begin(), loopList.end(),
              [](const Loop &a, const Loop &b) {
                  if (a.blocks.size() != b.blocks.size())
                      return a.blocks.size() > b.blocks.size();
                  return a.head < b.head;
              });
}

const Loop *
Cfg::innermostLoop(int block) const
{
    const Loop *best = nullptr;
    for (const Loop &loop : loopList) {
        if (loop.contains(block) &&
            (!best || loop.blocks.size() < best->blocks.size())) {
            best = &loop;
        }
    }
    return best;
}

std::vector<bool>
Cfg::reachableFrom(int from, int barrier, bool follow_back_edges) const
{
    std::vector<bool> seen(bbs.size(), false);
    if (from < 0 || from >= static_cast<int>(bbs.size()) ||
        from == barrier) {
        return seen;
    }
    std::deque<int> work{from};
    seen[from] = true;
    while (!work.empty()) {
        int id = work.front();
        work.pop_front();
        for (int succ : bbs[id].succs) {
            if (succ == barrier || seen[succ])
                continue;
            if (!follow_back_edges && isBackEdge(id, succ))
                continue;
            seen[succ] = true;
            work.push_back(succ);
        }
    }
    return seen;
}

bool
Cfg::isBackEdge(int src, int dst) const
{
    return dominates(dst, src);
}

int
Cfg::blockOf(std::size_t pc) const
{
    if (pc >= blockIndex.size())
        return -1;
    return blockIndex[pc];
}

} // namespace ifp::analysis
