#include "analysis/dataflow.hh"

#include <algorithm>
#include <deque>

#include "isa/builder.hh"

namespace ifp::analysis {

using isa::Opcode;
using isa::Reg;

namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

/** Joins into one block entry before bounds widen to the sentinels. */
constexpr unsigned widenThreshold = 4;

std::int64_t
satAdd(std::int64_t a, std::int64_t b)
{
    if (a == kMin || b == kMin)
        return kMin;
    if (a == kMax || b == kMax)
        return kMax;
    std::int64_t out;
    if (__builtin_add_overflow(a, b, &out))
        return b > 0 ? kMax : kMin;
    return out;
}

std::int64_t
satSub(std::int64_t a, std::int64_t b)
{
    if (a == kMin || b == kMax)
        return kMin;
    if (a == kMax || b == kMin)
        return kMax;
    std::int64_t out;
    if (__builtin_sub_overflow(a, b, &out))
        return b < 0 ? kMax : kMin;
    return out;
}

bool
isAlu(Opcode op)
{
    return op >= Opcode::Add && op <= Opcode::CmpLe;
}

Interval
aluAdd(const Interval &a, const Interval &b)
{
    return {satAdd(a.lo, b.lo), satAdd(a.hi, b.hi)};
}

Interval
aluSub(const Interval &a, const Interval &b)
{
    return {satSub(a.lo, b.hi), satSub(a.hi, b.lo)};
}

/** x * c for finite positive c, preserving the unbounded sentinels. */
std::int64_t
satMulEnd(std::int64_t x, std::int64_t c, bool is_lo)
{
    if (x == kMin || x == kMax)
        return x;
    std::int64_t p;
    if (__builtin_mul_overflow(x, c, &p))
        return is_lo ? kMin : kMax;
    return p;
}

Interval
aluMul(const Interval &a, const Interval &b)
{
    // Constant multiplier: monotonic, works on half-bounded intervals
    // too (important for addresses derived from widened loop indices).
    const Interval *ival = &a;
    const Interval *cval = &b;
    if (!cval->isConst() && ival->isConst())
        std::swap(ival, cval);
    if (cval->isConst()) {
        std::int64_t c = cval->lo;
        if (c == 0)
            return Interval::constant(0);
        if (c > 0) {
            return {satMulEnd(ival->lo, c, true),
                    satMulEnd(ival->hi, c, false)};
        }
        // Negative multiplier: precise only for bounded intervals,
        // handled by the generic product below.
    }
    if (!a.bounded() || !b.bounded())
        return Interval::top();
    std::int64_t lo = kMax, hi = kMin;
    for (std::int64_t x : {a.lo, a.hi}) {
        for (std::int64_t y : {b.lo, b.hi}) {
            std::int64_t p;
            if (__builtin_mul_overflow(x, y, &p))
                return Interval::top();
            lo = std::min(lo, p);
            hi = std::max(hi, p);
        }
    }
    return {lo, hi};
}

Interval
aluDiv(const Interval &a, const Interval &b)
{
    // Only the easy precise case: constant positive divisor
    // (truncating division is monotonic then). Anything else goes to
    // top; the div-zero structural check reads b separately.
    if (!b.isConst() || b.lo <= 0)
        return Interval::top();
    return {a.lo == kMin ? kMin : a.lo / b.lo,
            a.hi == kMax ? kMax : a.hi / b.lo};
}

Interval
aluRem(const Interval &a, const Interval &b)
{
    if (!b.isConst() || b.lo == 0 || b.lo == kMin)
        return Interval::top();
    std::int64_t m = b.lo < 0 ? -b.lo : b.lo;
    if (a.lo >= 0)
        return {0, std::min(a.hi, m - 1)};
    return {-(m - 1), m - 1};
}

Interval
aluShl(const Interval &a, const Interval &b)
{
    if (!a.bounded() || !b.isConst() || b.lo < 0 || b.lo > 62)
        return Interval::top();
    std::int64_t factor = std::int64_t{1} << b.lo;
    return aluMul(a, Interval::constant(factor));
}

Interval
aluShr(const Interval &a, const Interval &b)
{
    // Logical shift; precise only for non-negative bounded values.
    if (!a.bounded() || a.lo < 0 || !b.isConst() || b.lo < 0 ||
        b.lo > 63) {
        return Interval::top();
    }
    return {a.lo >> b.lo, a.hi >> b.lo};
}

Interval
aluAnd(const Interval &a, const Interval &b)
{
    if (a.isConst() && b.isConst())
        return Interval::constant(a.lo & b.lo);
    if (b.isConst() && b.lo >= 0)
        return {0, b.lo};
    if (a.isConst() && a.lo >= 0)
        return {0, a.lo};
    return Interval::top();
}

Interval
cmp(Opcode op, const Interval &a, const Interval &b)
{
    auto boolean = [](int known) {
        return known < 0 ? Interval::range(0, 1)
                         : Interval::constant(known);
    };
    switch (op) {
      case Opcode::CmpEq:
        if (a.isConst() && b.isConst())
            return boolean(a.lo == b.lo);
        if (!a.overlaps(b))
            return boolean(0);
        return boolean(-1);
      case Opcode::CmpNe:
        if (a.isConst() && b.isConst())
            return boolean(a.lo != b.lo);
        if (!a.overlaps(b))
            return boolean(1);
        return boolean(-1);
      case Opcode::CmpLt:
        if (a.hi < b.lo)
            return boolean(1);
        if (a.lo >= b.hi)
            return boolean(0);
        return boolean(-1);
      case Opcode::CmpLe:
        if (a.hi <= b.lo)
            return boolean(1);
        if (a.lo > b.hi)
            return boolean(0);
        return boolean(-1);
      default:
        return Interval::range(0, 1);
    }
}

} // anonymous namespace

bool
Interval::bounded() const
{
    return lo != kMin && hi != kMax;
}

Interval
Interval::join(const Interval &o) const
{
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

std::vector<Reg>
InstrEffects::reads(const isa::Instr &instr)
{
    // Mirrors ComputeUnit::executeInstr's register reads exactly.
    switch (instr.op) {
      case Opcode::Mov:
      case Opcode::Bz:
      case Opcode::Bnz:
      case Opcode::Ld:
      case Opcode::LdLds:
      case Opcode::SleepR:
        return {instr.src0};
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
      case Opcode::CmpLt:
      case Opcode::CmpLe:
        if (instr.useImm)
            return {instr.src0};
        return {instr.src0, instr.src1};
      case Opcode::St:
      case Opcode::StLds:
        return {instr.src0, instr.src1};
      case Opcode::Atom:
      case Opcode::AtomWait:
        return {instr.src0, instr.src1, instr.src2};
      case Opcode::ArmWait:
        return {instr.src0, instr.src1};
      default:
        return {};
    }
}

bool
InstrEffects::writesDst(const isa::Instr &instr)
{
    switch (instr.op) {
      case Opcode::Movi:
      case Opcode::Mov:
      case Opcode::Ld:
      case Opcode::LdLds:
      case Opcode::Atom:
      case Opcode::AtomWait:
        return true;
      default:
        return isAlu(instr.op);
    }
}

bool
InstrEffects::hasGlobalAddress(const isa::Instr &instr)
{
    switch (instr.op) {
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::Atom:
      case Opcode::AtomWait:
      case Opcode::ArmWait:
        return true;
      default:
        return false;
    }
}

bool
InstrEffects::isWaitOp(const isa::Instr &instr)
{
    return instr.op == Opcode::AtomWait || instr.op == Opcode::ArmWait;
}

Dataflow::Dataflow(const Cfg &cfg, const LaunchContext &launch)
    : graph(cfg), ctx(launch)
{
    // Registers are zero-initialized at wavefront launch; the launch
    // conventions then fill r0..r4 and the argument registers.
    for (Reg r = 0; r < isa::numRegs; ++r)
        entry.regs[r] = Interval::constant(0);
    entry.regs[isa::rWgId] =
        ctx.pinnedWg >= 0
            ? Interval::constant(ctx.pinnedWg)
            : Interval::range(0, std::int64_t(ctx.numWgs) - 1);
    entry.regs[isa::rWfId] =
        Interval::range(0, std::int64_t(ctx.wavefrontsPerWg) - 1);
    entry.regs[isa::rNumWgs] = Interval::constant(ctx.numWgs);
    entry.regs[isa::rWfPerWg] =
        Interval::constant(ctx.wavefrontsPerWg);
    for (std::size_t i = 0;
         i < ctx.args.size() && isa::rArg0 + i < isa::numRegs; ++i) {
        entry.regs[isa::rArg0 + i] = Interval::constant(ctx.args[i]);
    }
    for (Reg r = isa::rZero; r <= isa::rWfPerWg; ++r)
        entry.defined[r] = true;
    for (std::size_t i = 0;
         i < ctx.args.size() && isa::rArg0 + i < isa::numRegs; ++i) {
        entry.defined[isa::rArg0 + i] = true;
    }
    // The wavefront id differs across the wavefronts of one WG: the
    // one launch-time divergence source.
    entry.divergent[isa::rWfId] = true;

    states.assign(graph.code().size(), AbstractState{});
    runFixpoint();
    runReachingDefs();
}

AbstractState
Dataflow::transfer(const AbstractState &in,
                   const isa::Instr &instr) const
{
    AbstractState out = in;
    if (!InstrEffects::writesDst(instr))
        return out;

    bool taint = false;
    for (Reg r : InstrEffects::reads(instr))
        taint = taint || in.divergent[r];

    Interval v = Interval::top();
    const Interval a = in.regs[instr.src0];
    const Interval b = instr.useImm ? Interval::constant(instr.imm)
                                    : in.regs[instr.src1];
    switch (instr.op) {
      case Opcode::Movi:
        v = Interval::constant(instr.imm);
        taint = false;
        break;
      case Opcode::Mov:
        v = a;
        break;
      case Opcode::Add:
        v = aluAdd(a, b);
        break;
      case Opcode::Sub:
        v = aluSub(a, b);
        break;
      case Opcode::Mul:
        v = aluMul(a, b);
        break;
      case Opcode::Div:
        v = aluDiv(a, b);
        break;
      case Opcode::Rem:
        v = aluRem(a, b);
        break;
      case Opcode::And:
        v = aluAnd(a, b);
        break;
      case Opcode::Or:
      case Opcode::Xor:
        if (a.isConst() && b.isConst()) {
            v = Interval::constant(instr.op == Opcode::Or
                                       ? (a.lo | b.lo)
                                       : (a.lo ^ b.lo));
        }
        break;
      case Opcode::Shl:
        v = aluShl(a, b);
        break;
      case Opcode::Shr:
        v = aluShr(a, b);
        break;
      case Opcode::CmpEq:
      case Opcode::CmpNe:
      case Opcode::CmpLt:
      case Opcode::CmpLe:
        v = cmp(instr.op, a, b);
        break;
      case Opcode::Ld:
      case Opcode::LdLds:
      case Opcode::Atom:
      case Opcode::AtomWait:
        // Memory results are unknown and, in general, differ across
        // the wavefronts that executed the access.
        v = Interval::top();
        taint = true;
        break;
      default:
        break;
    }

    out.regs[instr.dst] = v;
    out.defined[instr.dst] = true;
    out.divergent[instr.dst] = taint;
    return out;
}

void
Dataflow::runFixpoint()
{
    const auto &blocks = graph.blocks();
    if (blocks.empty())
        return;

    std::vector<AbstractState> blockIn(blocks.size());
    std::vector<bool> hasIn(blocks.size(), false);
    std::vector<unsigned> joins(blocks.size(), 0);
    blockIn[0] = entry;
    hasIn[0] = true;

    auto joinInto = [&](int succ, const AbstractState &out) {
        if (!hasIn[succ]) {
            blockIn[succ] = out;
            hasIn[succ] = true;
            return true;
        }
        AbstractState merged = blockIn[succ];
        bool widen = ++joins[succ] > widenThreshold;
        bool changed = false;
        for (Reg r = 0; r < isa::numRegs; ++r) {
            Interval j = merged.regs[r].join(out.regs[r]);
            if (widen && j != merged.regs[r]) {
                if (j.lo < merged.regs[r].lo)
                    j.lo = kMin;
                if (j.hi > merged.regs[r].hi)
                    j.hi = kMax;
            }
            if (j != merged.regs[r]) {
                merged.regs[r] = j;
                changed = true;
            }
            if (out.defined[r] && !merged.defined[r]) {
                merged.defined[r] = true;
                changed = true;
            }
            if (out.divergent[r] && !merged.divergent[r]) {
                merged.divergent[r] = true;
                changed = true;
            }
        }
        if (changed)
            blockIn[succ] = merged;
        return changed;
    };

    std::deque<int> work(graph.reversePostorder().begin(),
                         graph.reversePostorder().end());
    std::vector<bool> queued(blocks.size(), false);
    for (int id : work)
        queued[id] = true;

    while (!work.empty()) {
        int id = work.front();
        work.pop_front();
        queued[id] = false;
        if (!hasIn[id])
            continue;
        AbstractState state = blockIn[id];
        for (std::size_t pc = blocks[id].first; pc <= blocks[id].last;
             ++pc) {
            state = transfer(state, graph.code()[pc]);
        }
        for (int succ : blocks[id].succs) {
            if (joinInto(succ, state) && !queued[succ]) {
                queued[succ] = true;
                work.push_back(succ);
            }
        }
    }

    // Record the environment before every pc of every reached block.
    for (const BasicBlock &bb : blocks) {
        if (!hasIn[bb.id])
            continue;
        AbstractState state = blockIn[bb.id];
        for (std::size_t pc = bb.first; pc <= bb.last; ++pc) {
            states[pc] = state;
            state = transfer(state, graph.code()[pc]);
        }
    }
}

void
Dataflow::runReachingDefs()
{
    const auto &blocks = graph.blocks();
    const auto &code = graph.code();

    // Site 0..numRegs-1: the entry (launch) definition of each reg.
    for (Reg r = 0; r < isa::numRegs; ++r)
        defSites.push_back({-1, r});
    std::vector<int> siteOfPc(code.size(), -1);
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
        if (InstrEffects::writesDst(code[pc])) {
            siteOfPc[pc] = static_cast<int>(defSites.size());
            defSites.push_back({static_cast<int>(pc), code[pc].dst});
        }
    }

    const std::size_t nSites = defSites.size();
    reachIn.assign(code.size(), std::vector<bool>(nSites, false));
    if (blocks.empty())
        return;

    auto transferBlock = [&](const BasicBlock &bb,
                             std::vector<bool> set) {
        for (std::size_t pc = bb.first; pc <= bb.last; ++pc) {
            int site = siteOfPc[pc];
            if (site < 0)
                continue;
            Reg dst = code[pc].dst;
            for (std::size_t s = 0; s < nSites; ++s) {
                if (defSites[s].reg == dst)
                    set[s] = false;
            }
            set[site] = true;
        }
        return set;
    };

    std::vector<std::vector<bool>> blockInSet(
        blocks.size(), std::vector<bool>(nSites, false));
    for (Reg r = 0; r < isa::numRegs; ++r)
        blockInSet[0][r] = true;

    bool changed = true;
    while (changed) {
        changed = false;
        for (int id : graph.reversePostorder()) {
            std::vector<bool> in = blockInSet[id];
            for (int pred : blocks[id].preds) {
                std::vector<bool> out =
                    transferBlock(blocks[pred], blockInSet[pred]);
                for (std::size_t s = 0; s < nSites; ++s)
                    in[s] = in[s] || out[s];
            }
            if (in != blockInSet[id]) {
                blockInSet[id] = std::move(in);
                changed = true;
            }
        }
    }

    for (const BasicBlock &bb : blocks) {
        std::vector<bool> set = blockInSet[bb.id];
        for (std::size_t pc = bb.first; pc <= bb.last; ++pc) {
            reachIn[pc] = set;
            int site = siteOfPc[pc];
            if (site < 0)
                continue;
            Reg dst = code[pc].dst;
            for (std::size_t s = 0; s < nSites; ++s) {
                if (defSites[s].reg == dst)
                    set[s] = false;
            }
            set[site] = true;
        }
    }
}

Interval
Dataflow::addressOf(std::size_t pc) const
{
    const isa::Instr &instr = graph.code()[pc];
    return aluAdd(states[pc].regs[instr.src0],
                  Interval::constant(instr.imm));
}

std::vector<int>
Dataflow::reachingDefs(std::size_t pc, Reg reg) const
{
    std::vector<int> defs;
    for (std::size_t s = 0; s < defSites.size(); ++s) {
        if (defSites[s].reg == reg && reachIn[pc][s])
            defs.push_back(defSites[s].pc);
    }
    std::sort(defs.begin(), defs.end());
    return defs;
}

} // namespace ifp::analysis
