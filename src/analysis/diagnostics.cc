#include "analysis/diagnostics.hh"

namespace ifp::analysis {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "unknown";
}

unsigned
Report::count(Severity severity) const
{
    unsigned n = 0;
    for (const Diagnostic &d : diagnostics) {
        if (!d.suppressed && d.severity == severity)
            ++n;
    }
    return n;
}

bool
Report::clean(bool werror) const
{
    if (count(Severity::Error) > 0)
        return false;
    return !werror || count(Severity::Warning) == 0;
}

} // namespace ifp::analysis
